module fpstudy

go 1.22
