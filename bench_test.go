package fpstudy

// The benchmark harness regenerates every table and figure of the
// paper. Running
//
//	go test -bench=. -benchmem
//
// prints each figure once (measured data side by side with the paper's
// published values) and measures the cost of regenerating it. The
// Benchmark names map to the paper's figure numbers; see DESIGN.md's
// per-experiment index.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"fpstudy/internal/audit"
	"fpstudy/internal/core"
	"fpstudy/internal/eft"
	"fpstudy/internal/expr"
	"fpstudy/internal/fpvm"
	"fpstudy/internal/ieee754"
	"fpstudy/internal/interval"
	"fpstudy/internal/kernels"
	"fpstudy/internal/monitor"
	"fpstudy/internal/mpfloat"
	"fpstudy/internal/optsim"
	"fpstudy/internal/quiz"
	"fpstudy/internal/respondent"
	"fpstudy/internal/telemetry"
	"fpstudy/internal/tuner"
)

var (
	studyOnce    sync.Once
	studyResults *core.Results
	printedOnce  sync.Map
)

func results() *core.Results {
	studyOnce.Do(func() {
		studyResults = core.DefaultStudy().Run()
	})
	return studyResults
}

// printFigure emits the regenerated figure exactly once per process.
func printFigure(num int) {
	if _, loaded := printedOnce.LoadOrStore(num, true); loaded {
		return
	}
	fmt.Fprintf(os.Stdout, "\n%s\n", results().Figure(num).String())
}

func benchFigure(b *testing.B, num int) {
	r := results()
	printFigure(num)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Figure(num)
	}
}

// Figures 1-11: participant background tables.

func BenchmarkFig01Positions(b *testing.B)        { benchFigure(b, 1) }
func BenchmarkFig02Areas(b *testing.B)            { benchFigure(b, 2) }
func BenchmarkFig03FormalTraining(b *testing.B)   { benchFigure(b, 3) }
func BenchmarkFig04InformalTraining(b *testing.B) { benchFigure(b, 4) }
func BenchmarkFig05Roles(b *testing.B)            { benchFigure(b, 5) }
func BenchmarkFig06FPLanguages(b *testing.B)      { benchFigure(b, 6) }
func BenchmarkFig07ArbPrec(b *testing.B)          { benchFigure(b, 7) }
func BenchmarkFig08ContribSize(b *testing.B)      { benchFigure(b, 8) }
func BenchmarkFig09ContribExtent(b *testing.B)    { benchFigure(b, 9) }
func BenchmarkFig10InvolvedSize(b *testing.B)     { benchFigure(b, 10) }
func BenchmarkFig11InvolvedExtent(b *testing.B)   { benchFigure(b, 11) }

// Figures 12-15: quiz performance tables.

func BenchmarkFig12AverageScores(b *testing.B) { benchFigure(b, 12) }
func BenchmarkFig13CoreHistogram(b *testing.B) { benchFigure(b, 13) }
func BenchmarkFig14CoreBreakdown(b *testing.B) { benchFigure(b, 14) }
func BenchmarkFig15OptBreakdown(b *testing.B)  { benchFigure(b, 15) }

// Figures 16-21: factor effects.

func BenchmarkFig16EffectContribSize(b *testing.B) { benchFigure(b, 16) }
func BenchmarkFig17EffectArea(b *testing.B)        { benchFigure(b, 17) }
func BenchmarkFig18EffectRole(b *testing.B)        { benchFigure(b, 18) }
func BenchmarkFig19EffectTraining(b *testing.B)    { benchFigure(b, 19) }
func BenchmarkFig20OptEffectArea(b *testing.B)     { benchFigure(b, 20) }
func BenchmarkFig21OptEffectRole(b *testing.B)     { benchFigure(b, 21) }

// Figure 22: suspicion distributions (both cohorts).

func BenchmarkFig22Suspicion(b *testing.B) { benchFigure(b, 22) }

// Headline claims (Section IV text).

func BenchmarkHeadlineClaims(b *testing.B) {
	r := results()
	if _, loaded := printedOnce.LoadOrStore("claims", true); !loaded {
		fmt.Println("\nHeadline claims (Section IV)")
		fmt.Println("============================")
		for _, c := range r.HeadlineClaims() {
			status := "PASS"
			if !c.Pass {
				status = "FAIL"
			}
			fmt.Printf("  [%s] %-34s %s\n", status, c.Name, c.Detail)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.HeadlineClaims()
	}
}

// End-to-end population generation (the paper's data collection step).

func BenchmarkPopulationGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = respondent.GenerateMain(int64(i), 199)
	}
}

// BenchmarkStudyPipeline times the full pipeline — cohort generation,
// calibration, and oracle-keyed grading — end to end at several cohort
// sizes and worker counts, reporting respondents/sec. workers=0 means
// GOMAXPROCS; workers=1 is the sequential baseline the parallel runs
// are compared against. The 1M-respondent case takes minutes and is
// gated behind FPSTUDY_BENCH_LARGE=1.
func BenchmarkStudyPipeline(b *testing.B) {
	for _, n := range []int{199, 10000, 1000000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			if n >= 1000000 && os.Getenv("FPSTUDY_BENCH_LARGE") == "" {
				b.Skip("set FPSTUDY_BENCH_LARGE=1 to run the 1M-respondent benchmark")
			}
			for _, workers := range []int{1, 0} {
				b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
					s := core.Study{Seed: 42, NMain: n, NStudent: 52, Workers: workers}
					// Prime the one-time oracle answer-key cache so the
					// first timed run isn't charged for it.
					core.Study{Seed: 1, NMain: 8, NStudent: 2, Workers: workers}.Run()
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						r := s.Run()
						if len(r.CoreTallies) != n {
							b.Fatalf("pipeline produced %d tallies, want %d", len(r.CoreTallies), n)
						}
					}
					b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "respondents/s")
				})
			}
		})
	}
}

// BenchmarkStudyPipelineTelemetry is BenchmarkStudyPipeline's n=10000
// case with the full telemetry stack installed — metrics registry,
// span recorder, parallel worker-pool hooks, the FP-exception bridge,
// and the latency observatory (sharded log-linear histograms on every
// block-level stage). Comparing it against
// BenchmarkStudyPipeline/n=10000 measures total observability
// overhead; the budget is <5%.
func BenchmarkStudyPipelineTelemetry(b *testing.B) {
	const n = 10000
	reg := telemetry.NewRegistry()
	core.InstallPipelineTelemetry(reg)
	defer core.UninstallPipelineTelemetry()
	for _, workers := range []int{1, 0} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			rec := telemetry.NewRecorder(reg)
			s := core.Study{Seed: 42, NMain: n, NStudent: 52, Workers: workers, Telemetry: rec}
			// Prime the one-time oracle answer-key cache so the first
			// timed run isn't charged for it.
			core.Study{Seed: 1, NMain: 8, NStudent: 2, Workers: workers}.Run()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := s.Run()
				if len(r.CoreTallies) != n {
					b.Fatalf("pipeline produced %d tallies, want %d", len(r.CoreTallies), n)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "respondents/s")
		})
	}
}

// BenchmarkStudyPipelineLatency pins the latency observatory's overhead
// budget by name: the full telemetry stack (which wires the sharded
// latency histograms into sampling, calibration, grading, and the
// worker pool) at n=10000, with a post-run assertion that the
// histograms actually observed every instrumented pipeline stage — so
// the number cannot go green by the hooks silently not firing.
// Comparing against BenchmarkStudyPipeline/n=10000 must stay <5%.
func BenchmarkStudyPipelineLatency(b *testing.B) {
	const n = 10000
	reg := telemetry.NewRegistry()
	core.InstallPipelineTelemetry(reg)
	defer core.UninstallPipelineTelemetry()
	for _, workers := range []int{1, 0} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			rec := telemetry.NewRecorder(reg)
			s := core.Study{Seed: 42, NMain: n, NStudent: 52, Workers: workers, Telemetry: rec}
			// Prime the one-time oracle answer-key cache so the first
			// timed run isn't charged for it.
			core.Study{Seed: 1, NMain: 8, NStudent: 2, Workers: workers}.Run()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := s.Run()
				if len(r.CoreTallies) != n {
					b.Fatalf("pipeline produced %d tallies, want %d", len(r.CoreTallies), n)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "respondents/s")
		})
	}
	snap := reg.Snapshot()
	for _, name := range []string{
		core.LatencySampleBlock, core.LatencyCalibrate, core.LatencyGradeBatch,
		core.LatencyParallelShard, core.LatencyWorkerBusy, core.LatencyParallelWait,
	} {
		if ls, ok := snap.Latencies[name]; !ok || ls.Count == 0 {
			b.Fatalf("%s: latency observatory recorded nothing during the benchmark", name)
		}
	}
}

// BenchmarkStudyPipelineTrace is BenchmarkStudyPipelineTelemetry plus
// an installed tracer: the full observability stack with structured
// event recording (stage/worker/shard/batch events into per-lane ring
// buffers). Comparing it against BenchmarkStudyPipeline/n=10000
// measures total tracing overhead; the budget is <5%.
func BenchmarkStudyPipelineTrace(b *testing.B) {
	const n = 10000
	reg := telemetry.NewRegistry()
	core.InstallPipelineTelemetry(reg)
	defer core.UninstallPipelineTelemetry()
	tracer := telemetry.NewDefaultTracer()
	telemetry.SetTracer(tracer)
	defer telemetry.SetTracer(nil)
	for _, workers := range []int{1, 0} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			rec := telemetry.NewRecorder(reg)
			s := core.Study{Seed: 42, NMain: n, NStudent: 52, Workers: workers, Telemetry: rec}
			// Prime the one-time oracle answer-key cache so the first
			// timed run isn't charged for it.
			core.Study{Seed: 1, NMain: 8, NStudent: 2, Workers: workers}.Run()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := s.Run()
				if len(r.CoreTallies) != n {
					b.Fatalf("pipeline produced %d tallies, want %d", len(r.CoreTallies), n)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "respondents/s")
		})
	}
	if tracer.Recorded() == 0 {
		b.Fatal("tracer recorded no events during the traced benchmark")
	}
}

// Softfloat operation throughput (the substrate the oracles run on).

func benchOp(b *testing.B, fn func(e *ieee754.Env, x, y uint64) uint64) {
	var e ieee754.Env
	x, y := ieee754.Binary64.FromFloat64(&e, 1.2345), ieee754.Binary64.FromFloat64(&e, 6.789)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = fn(&e, x, y) & 0x7fffffffffffff // keep finite-ish
		x |= 0x3ff0000000000000
	}
}

func BenchmarkSoftfloatAdd(b *testing.B) {
	benchOp(b, func(e *ieee754.Env, x, y uint64) uint64 { return ieee754.Binary64.Add(e, x, y) })
}
func BenchmarkSoftfloatMul(b *testing.B) {
	benchOp(b, func(e *ieee754.Env, x, y uint64) uint64 { return ieee754.Binary64.Mul(e, x, y) })
}
func BenchmarkSoftfloatDiv(b *testing.B) {
	benchOp(b, func(e *ieee754.Env, x, y uint64) uint64 { return ieee754.Binary64.Div(e, x, y) })
}
func BenchmarkSoftfloatFMA(b *testing.B) {
	var e ieee754.Env
	x := ieee754.Binary64.FromFloat64(&e, 1.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ieee754.Binary64.FMA(&e, x, x, x)
	}
}
func BenchmarkSoftfloatSqrt(b *testing.B) {
	var e ieee754.Env
	x := ieee754.Binary64.FromFloat64(&e, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ieee754.Binary64.Sqrt(&e, x)
	}
}

// Kernel workloads under the exception monitor.

func BenchmarkKernelLorenz(b *testing.B) {
	k := kernels.Lorenz(1000, 0.005)
	for i := 0; i < b.N; i++ {
		_, _ = monitor.Run(ieee754.Binary64, k.Run)
	}
}

func BenchmarkKernelNBody(b *testing.B) {
	k := kernels.NBody(100, 0.01)
	for i := 0; i < b.N; i++ {
		_, _ = monitor.Run(ieee754.Binary64, k.Run)
	}
}

// Ablation: compensated vs naive summation (design-choice benchmark
// from DESIGN.md).

func BenchmarkAblationSumNaive(b *testing.B) {
	k := kernels.SumNaive(5000)
	var e ieee754.Env
	for i := 0; i < b.N; i++ {
		_ = k.Run(&e, ieee754.Binary64)
	}
}

func BenchmarkAblationSumKahan(b *testing.B) {
	k := kernels.SumKahan(5000)
	var e ieee754.Env
	for i := 0; i < b.N; i++ {
		_ = k.Run(&e, ieee754.Binary64)
	}
}

// Ablation: fused vs separate multiply-add (the MADD question).

func BenchmarkAblationDotSeparate(b *testing.B) {
	k := kernels.DotProduct(2000, false)
	var e ieee754.Env
	for i := 0; i < b.N; i++ {
		_ = k.Run(&e, ieee754.Binary64)
	}
}

func BenchmarkAblationDotFused(b *testing.B) {
	k := kernels.DotProduct(2000, true)
	var e ieee754.Env
	for i := 0; i < b.N; i++ {
		_ = k.Run(&e, ieee754.Binary64)
	}
}

// Ablation: IEEE gradual underflow vs FTZ/DAZ mode.

func BenchmarkAblationDecayIEEE(b *testing.B) {
	k := kernels.DecayUnderflow()
	var e ieee754.Env
	for i := 0; i < b.N; i++ {
		_ = k.Run(&e, ieee754.Binary64)
	}
}

func BenchmarkAblationDecayFTZ(b *testing.B) {
	k := kernels.DecayUnderflow()
	e := ieee754.Env{FTZ: true, DAZ: true}
	for i := 0; i < b.N; i++ {
		_ = k.Run(&e, ieee754.Binary64)
	}
}

// Optimization simulator compliance sweep (the optimization quiz
// oracle's workload).

func BenchmarkOptsimFastMathCheck(b *testing.B) {
	p := expr.MustParse("(a + b) + c")
	corpus := optsim.GenCorpus(ieee754.Binary64, p, 500, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = optsim.Check(ieee754.Binary64, p, optsim.FastMath(), corpus)
	}
}

func BenchmarkOptsimLevelSweep(b *testing.B) {
	progs := optsim.WitnessPrograms()
	for i := 0; i < b.N; i++ {
		_ = optsim.HighestCompliantLevel(ieee754.Binary64, progs, 200, 42)
	}
}

// Arbitrary-precision shadow execution.

func BenchmarkMPFloatShadow(b *testing.B) {
	ctx := mpfloat.NewContext(200)
	n := expr.MustParse("(a + b) - a")
	var e ieee754.Env
	vars := map[string]uint64{
		"a": ieee754.Binary64.FromFloat64(&e, 1e10),
		"b": ieee754.Binary64.FromFloat64(&e, 1e-10),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ctx.Shadow(ieee754.Binary64, n, vars)
	}
}

// Quiz oracle evaluation (deriving the full answer key from scratch).

func BenchmarkOracleAnswerKey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, q := range quiz.CoreQuestions() {
			_ = q.Oracle()
		}
	}
}

// Custom-format throughput: an FP8 minifloat (the parametric path).

func BenchmarkSoftfloatFP8Mul(b *testing.B) {
	fp8 := ieee754.Format{ExpBits: 4, FracBits: 3, Name: "fp8"}
	var e ieee754.Env
	x := fp8.FromFloat64(&e, 1.5)
	y := fp8.FromFloat64(&e, 2.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fp8.Mul(&e, x, y)
	}
}

// Arbitrary-precision decimal rendering (the paranoid display path).

func BenchmarkMPFloatDecimal50(b *testing.B) {
	ctx := mpfloat.NewContext(200)
	third := ctx.Div(mpfloat.FromInt64(1), mpfloat.FromInt64(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = third.DecimalString(50)
	}
}

// Vectorized-summation divergence measurement (fast-math reduction
// ablation).

func BenchmarkVectorizedSumDivergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = optsim.SumChainDivergence(ieee754.Binary64, 16, 4, 200, 3)
	}
}

// Ablation: LU with and without pivoting.

func BenchmarkAblationLUPivot(b *testing.B) {
	k := kernels.LUSolve(20, true)
	var e ieee754.Env
	for i := 0; i < b.N; i++ {
		_ = k.Run(&e, ieee754.Binary64)
	}
}

func BenchmarkAblationLUNoPivot(b *testing.B) {
	k := kernels.LUSolve(20, false)
	var e ieee754.Env
	for i := 0; i < b.N; i++ {
		_ = k.Run(&e, ieee754.Binary64)
	}
}

// Ablation: Euler vs RK4 Lorenz integration.

func BenchmarkAblationLorenzEuler(b *testing.B) {
	k := kernels.Lorenz(1000, 0.002)
	var e ieee754.Env
	for i := 0; i < b.N; i++ {
		_ = k.Run(&e, ieee754.Binary64)
	}
}

func BenchmarkAblationLorenzRK4(b *testing.B) {
	k := kernels.LorenzRK4(100, 0.02)
	var e ieee754.Env
	for i := 0; i < b.N; i++ {
		_ = k.Run(&e, ieee754.Binary64)
	}
}

// Supplementary analyses printed once: confidence calibration and the
// chi-square calibration report.

func BenchmarkConfidenceAnalysis(b *testing.B) {
	r := results()
	if _, loaded := printedOnce.LoadOrStore("confidence", true); !loaded {
		fmt.Printf("\n%s\n", r.ConfidenceReport().String())
		fmt.Printf("overconfidence index: %+.3f; optimization humility: %.2f\n",
			r.OverconfidenceIndex(), r.OptHumilityIndex())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.ConfidenceReport()
	}
}

func BenchmarkCalibrationReport(b *testing.B) {
	r := results()
	if _, loaded := printedOnce.LoadOrStore("calibration", true); !loaded {
		fmt.Printf("\n%s\n", r.CalibrationReport().String())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.CalibrationReport()
	}
}

// Error-free transformation throughput.

func BenchmarkEFTSum2(b *testing.B) {
	var e ieee754.Env
	xs := make([]uint64, 1000)
	for i := range xs {
		xs[i] = ieee754.Binary64.FromFloat64(&e, float64(i)*0.1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eft.Sum2(&e, ieee754.Binary64, xs)
	}
}

func BenchmarkEFTSumNaive(b *testing.B) {
	var e ieee754.Env
	xs := make([]uint64, 1000)
	for i := range xs {
		xs[i] = ieee754.Binary64.FromFloat64(&e, float64(i)*0.1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eft.SumNaive(&e, ieee754.Binary64, xs)
	}
}

// Interval evaluation throughput.

func BenchmarkIntervalHypot(b *testing.B) {
	a := interval.New(ieee754.Binary64)
	n := expr.MustParse("sqrt(x*x + y*y)")
	vars := map[string]interval.Interval{
		"x": a.FromFloat64(3.01),
		"y": a.FromFloat64(4.02),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.EvalExpr(n, vars)
	}
}

// VM execution under the monitor (the runtime-tool workload).

func BenchmarkVMHarmonic(b *testing.B) {
	vm := fpvm.New(ieee754.Binary64)
	var e ieee754.Env
	vars := map[string]uint64{"n": ieee754.Binary64.FromFloat64(&e, 1000)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vm.Run(fpvm.HarmonicSum, vars); err != nil {
			b.Fatal(err)
		}
	}
}

// Precision tuning search cost.

func BenchmarkTunerHypot(b *testing.B) {
	n := expr.MustParse("sqrt(x*x + y*y)")
	corpus := tuner.Corpus(n, 100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tuner.Tune(n, corpus, 1e-6)
	}
}

// Combined audit (the paper's low-barrier tool).

func BenchmarkAuditCancellation(b *testing.B) {
	n := expr.MustParse("(a + b) - a")
	var e ieee754.Env
	vars := map[string]uint64{
		"a": ieee754.Binary64.FromFloat64(&e, 1e16),
		"b": ieee754.Binary64.FromFloat64(&e, 1),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = audit.Run(n, vars)
	}
}

// Suspicion-ranking empirical validation (printed once).

func BenchmarkSuspicionValidation(b *testing.B) {
	if _, loaded := printedOnce.LoadOrStore("suspicion-evidence", true); !loaded {
		fmt.Printf("\nSuspicion ranking, empirically validated on the kernel corpus\n")
		fmt.Printf("==============================================================\n%s\n",
			monitor.FormatEvidence(monitor.ValidateSuspicionRanking(0.01)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = monitor.ValidateSuspicionRanking(0.01)
	}
}
