package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	rec := NewRecorder(NewRegistry())
	root := rec.StartSpan("run")

	// Children opened concurrently, as the pipeline does.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := root.StartChild(fmt.Sprintf("stage-%d", i))
			c.AddItems(100)
			c.End()
		}(i)
	}
	wg.Wait()
	root.AddItems(400)
	root.End()

	spans := rec.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d root spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Name != "run" || s.Items != 400 {
		t.Errorf("root = %+v", s)
	}
	if s.Running {
		t.Error("ended root span still marked running")
	}
	if len(s.Children) != 4 {
		t.Fatalf("got %d children, want 4", len(s.Children))
	}
	for _, c := range s.Children {
		if c.Items != 100 {
			t.Errorf("child %s items = %d, want 100", c.Name, c.Items)
		}
		if c.Items > 0 && c.Seconds > 0 && c.ItemsPerSec <= 0 {
			t.Errorf("child %s has no items/sec", c.Name)
		}
	}
}

func TestSpanLiveSnapshot(t *testing.T) {
	rec := NewRecorder(nil)
	sp := rec.StartSpan("in-flight")
	sp.AddItems(7)
	time.Sleep(time.Millisecond)
	snap := sp.Snapshot() // not ended
	if !snap.Running {
		t.Error("open span not marked running")
	}
	if snap.Seconds <= 0 {
		t.Error("open span has zero duration")
	}
	sp.End()
	d1 := sp.Snapshot().Seconds
	time.Sleep(time.Millisecond)
	if d2 := sp.Snapshot().Seconds; d2 != d1 {
		t.Errorf("ended span duration moved: %g -> %g", d1, d2)
	}
	sp.End() // idempotent
}

// TestServeExpvar boots the introspection server on an ephemeral port
// and checks that /debug/vars serves a published registry and that the
// pprof index responds.
func TestServeExpvar(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pipeline.respondents").Add(42)
	rec := NewRecorder(reg)
	sp := rec.StartSpan("run")
	sp.AddItems(42)
	sp.End()
	rec.PublishExpvar("fpstudy-test")

	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v\n%s", err, body)
	}
	raw, ok := vars["fpstudy-test"]
	if !ok {
		t.Fatalf("fpstudy-test var missing from /debug/vars: %s", body)
	}
	var published struct {
		Metrics Snapshot       `json:"metrics"`
		Spans   []SpanSnapshot `json:"spans"`
	}
	if err := json.Unmarshal(raw, &published); err != nil {
		t.Fatal(err)
	}
	if published.Metrics.Counters["pipeline.respondents"] != 42 {
		t.Errorf("counter over expvar = %d, want 42", published.Metrics.Counters["pipeline.respondents"])
	}
	if len(published.Spans) != 1 || published.Spans[0].Name != "run" {
		t.Errorf("spans over expvar = %+v", published.Spans)
	}

	pp, err := http.Get("http://" + srv.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	ppBody, _ := io.ReadAll(pp.Body)
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK || !strings.Contains(string(ppBody), "goroutine") {
		t.Errorf("pprof index bad: status %d", pp.StatusCode)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("fp.ops").Add(9)
	rec := NewRecorder(reg)
	sp := rec.StartSpan("generate")
	sp.AddItems(199)
	sp.End()

	m := rec.Manifest("fpgen", 42, 199, 4)
	path := t.TempDir() + "/out.json.manifest.json"
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Tool != "fpgen" || got.Seed != 42 || got.N != 199 || got.Workers != 4 {
		t.Errorf("manifest header = %+v", got)
	}
	if got.NumCPU != runtime.NumCPU() {
		t.Errorf("manifest num_cpu = %d, want %d", got.NumCPU, runtime.NumCPU())
	}
	if want := runtime.GOMAXPROCS(0) == 1; got.SerialHost != want {
		t.Errorf("manifest serial_host = %v, want %v", got.SerialHost, want)
	}
	if got.Metrics.Counters["fp.ops"] != 9 {
		t.Errorf("manifest metrics = %+v", got.Metrics)
	}
	if len(got.Spans) != 1 || got.Spans[0].Items != 199 {
		t.Errorf("manifest spans = %+v", got.Spans)
	}
	if ManifestPath("x/out.json") != "x/out.json.manifest.json" {
		t.Errorf("ManifestPath = %q", ManifestPath("x/out.json"))
	}
}
