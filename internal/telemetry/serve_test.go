package telemetry

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestServerShutdownReleasesPort pins the graceful-shutdown satellite:
// after Shutdown returns, the port is free to rebind immediately.
func TestServerShutdownReleasesPort(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatalf("server not reachable before shutdown: %v", err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// The exact address must be rebindable: the listener is closed, not
	// lingering until process exit.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port not released after Shutdown: %v", err)
	}
	ln.Close()

	if _, err := http.Get("http://" + addr + "/debug/vars"); err == nil {
		t.Fatal("server still serving after Shutdown")
	}
}

func TestServerShutdownNil(t *testing.T) {
	var srv *Server
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("nil Shutdown: %v", err)
	}
}

// TestServerShutdownIdempotent: calling Shutdown twice (and Close after
// Shutdown) must not panic or error in a way that breaks deferred
// cleanup stacks — tools defer both on some exit paths.
func TestServerShutdownIdempotent(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("first Shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil && err != http.ErrServerClosed {
		t.Fatalf("second Shutdown: %v", err)
	}
	if err := srv.Close(); err != nil && err != http.ErrServerClosed {
		t.Fatalf("Close after Shutdown: %v", err)
	}
}

// TestServerMetricsScrapeDuringShutdown races /metrics scrapes against
// Shutdown under -race: scrapes either complete (the graceful drain)
// or fail with a connection error — never a partial write that parses
// as truncated exposition, and never a data race on the registry.
func TestServerMetricsScrapeDuringShutdown(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("scrape.test").Add(7)
	reg.Latency("latency.scrape_test").Observe(time.Millisecond)
	reg.PublishExpvar("scrapetest")

	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 50; j++ {
				resp, err := http.Get("http://" + addr + "/metrics")
				if err != nil {
					return // listener closed: expected once shutdown begins
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					return // connection dropped mid-read during forced close
				}
				if resp.StatusCode == http.StatusOK && !strings.Contains(string(body), "scrapetest_scrape_test 7") {
					t.Errorf("scrape missing counter:\n%s", body)
					return
				}
			}
		}()
	}
	close(start)
	// Let the scrapers get going, then shut down underneath them.
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown during scrapes: %v", err)
	}
	wg.Wait()
}
