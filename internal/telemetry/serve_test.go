package telemetry

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestServerShutdownReleasesPort pins the graceful-shutdown satellite:
// after Shutdown returns, the port is free to rebind immediately.
func TestServerShutdownReleasesPort(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatalf("server not reachable before shutdown: %v", err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// The exact address must be rebindable: the listener is closed, not
	// lingering until process exit.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port not released after Shutdown: %v", err)
	}
	ln.Close()

	if _, err := http.Get("http://" + addr + "/debug/vars"); err == nil {
		t.Fatal("server still serving after Shutdown")
	}
}

func TestServerShutdownNil(t *testing.T) {
	var srv *Server
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("nil Shutdown: %v", err)
	}
}
