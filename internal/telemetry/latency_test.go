package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestLatencyBucketGeometry pins the log-linear grid: exact 1 ns bins
// below 64 ns, then 32 linear sub-buckets per octave, with every value
// landing in a bucket whose bounds contain it.
func TestLatencyBucketGeometry(t *testing.T) {
	for _, ns := range []int64{0, 1, 31, 32, 63, 64, 65, 127, 128, 1000,
		4096, 1_000_000, 123_456_789, 5_000_000_000, int64(time.Hour)} {
		i := latBucketIndex(ns)
		lo, hi := latBucketLower(i), latBucketUpper(i)
		if ns < lo || ns >= hi {
			t.Errorf("ns=%d: bucket %d bounds [%d,%d) do not contain it", ns, i, lo, hi)
		}
		if ns < 64 && i != int(ns) {
			t.Errorf("ns=%d: want exact bin %d, got %d", ns, ns, i)
		}
		// Relative width bound: 1/32 above the exact range.
		if ns >= 64 && float64(hi-lo)/float64(lo) > 1.0/32+1e-12 {
			t.Errorf("ns=%d: bucket %d relative width %g > 1/32", ns, i, float64(hi-lo)/float64(lo))
		}
	}
	// Monotone: index never decreases with the value.
	prev := -1
	for ns := int64(0); ns < 100_000; ns += 7 {
		i := latBucketIndex(ns)
		if i < prev {
			t.Fatalf("ns=%d: index %d < previous %d", ns, i, prev)
		}
		prev = i
	}
	// Overflow clamps to the last bucket.
	if i := latBucketIndex(math.MaxInt64); i != latBuckets-1 {
		t.Errorf("MaxInt64 bucket = %d, want %d", i, latBuckets-1)
	}
}

// TestLatencyQuantiles checks the estimation error bound on a known
// distribution: quantiles of uniformly spread observations must land
// within one sub-bucket width (≈3.1%) of the true value.
func TestLatencyQuantiles(t *testing.T) {
	l := newLatencyHist()
	const n = 100_000
	for i := 1; i <= n; i++ {
		l.ObserveShard(i, time.Duration(i)*time.Microsecond)
	}
	snap := l.Snapshot()
	if snap.Count != n {
		t.Fatalf("count = %d, want %d", snap.Count, n)
	}
	for _, tc := range []struct {
		q    float64
		want float64 // ns
	}{
		{0.50, 50_000_000}, {0.90, 90_000_000}, {0.99, 99_000_000}, {0.999, 99_900_000},
	} {
		got := snap.Quantile(tc.q)
		if rel := math.Abs(got-tc.want) / tc.want; rel > 1.0/32 {
			t.Errorf("q=%g: got %.0f ns, want %.0f ns (rel err %.3f > 1/32)", tc.q, got, tc.want, rel)
		}
	}
	if snap.P50NS != snap.Quantile(0.50) || snap.P99NS != snap.Quantile(0.99) {
		t.Errorf("precomputed quantiles disagree with Quantile()")
	}
	var sum int64
	for _, b := range snap.Buckets {
		sum += b.Count
	}
	if sum != snap.Count {
		t.Errorf("buckets sum to %d, count says %d", sum, snap.Count)
	}
}

// TestLatencySnapshotSubMerge: two cumulative snapshots of one
// histogram subtract into the interval between them, and merging the
// delta back reproduces the later snapshot.
func TestLatencySnapshotSubMerge(t *testing.T) {
	l := newLatencyHist()
	for i := 0; i < 1000; i++ {
		l.Observe(time.Duration(100+i) * time.Nanosecond)
	}
	before := l.Snapshot()
	for i := 0; i < 500; i++ {
		l.Observe(time.Duration(1_000_000+i) * time.Nanosecond)
	}
	after := l.Snapshot()

	delta := after.Sub(before)
	if delta.Count != 500 {
		t.Fatalf("delta count = %d, want 500", delta.Count)
	}
	if delta.P50NS < 900_000 || delta.P50NS > 1_100_000 {
		t.Errorf("delta p50 = %.0f ns, want ≈1ms (the interval's observations only)", delta.P50NS)
	}
	if got, want := delta.SumNS, after.SumNS-before.SumNS; got != want {
		t.Errorf("delta sum = %d, want %d", got, want)
	}

	rebuilt := before
	rebuilt.Merge(delta)
	if rebuilt.Count != after.Count || rebuilt.SumNS != after.SumNS {
		t.Errorf("merge(before, delta) = count %d sum %d, want %d/%d",
			rebuilt.Count, rebuilt.SumNS, after.Count, after.SumNS)
	}
	if len(rebuilt.Buckets) != len(after.Buckets) {
		t.Fatalf("merged buckets = %d, want %d", len(rebuilt.Buckets), len(after.Buckets))
	}
	for i, b := range rebuilt.Buckets {
		if b != after.Buckets[i] {
			t.Errorf("merged bucket %d = %+v, want %+v", i, b, after.Buckets[i])
		}
	}
}

// TestLatencyConcurrent hammers all shards from concurrent writers
// while snapshots run: every snapshot must be internally consistent
// (buckets sum to count), and the final count must be exact.
func TestLatencyConcurrent(t *testing.T) {
	l := newLatencyHist()
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := l.Snapshot()
			var sum int64
			for _, b := range s.Buckets {
				sum += b.Count
			}
			if sum != s.Count {
				t.Errorf("torn snapshot: buckets sum %d != count %d", sum, s.Count)
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l.ObserveShard(w, time.Duration(i)*time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if got := l.Count(); got != writers*perWriter {
		t.Errorf("final count = %d, want %d", got, writers*perWriter)
	}
}

// TestLatencyNilSafety: the nil histogram accepts the full method set.
func TestLatencyNilSafety(t *testing.T) {
	var l *LatencyHist
	l.Observe(time.Second)
	l.ObserveShard(3, time.Second)
	if l.Count() != 0 {
		t.Error("nil Count != 0")
	}
	if s := l.Snapshot(); s.Count != 0 || len(s.Buckets) != 0 {
		t.Errorf("nil Snapshot = %+v", s)
	}
	var r *Registry
	if r.Latency("x") != nil {
		t.Error("nil Registry.Latency != nil")
	}
	var snap *LatencySnapshot
	if snap.Quantile(0.5) != 0 {
		t.Error("nil snapshot Quantile != 0")
	}
}

// TestLatencyObserveZeroAlloc pins the hot path at 0 allocs for both
// the enabled and nil-disabled forms.
func TestLatencyObserveZeroAlloc(t *testing.T) {
	l := newLatencyHist()
	if n := testing.AllocsPerRun(1000, func() { l.ObserveShard(2, 123*time.Microsecond) }); n != 0 {
		t.Errorf("ObserveShard allocs = %g, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { l.Observe(123 * time.Microsecond) }); n != 0 {
		t.Errorf("Observe allocs = %g, want 0", n)
	}
	var nilHist *LatencyHist
	if n := testing.AllocsPerRun(1000, func() { nilHist.ObserveShard(0, time.Second) }); n != 0 {
		t.Errorf("nil ObserveShard allocs = %g, want 0", n)
	}
}

// TestRegistryLatencySnapshot: registry-created latency hists appear in
// the registry snapshot with quantiles filled.
func TestRegistryLatencySnapshot(t *testing.T) {
	reg := NewRegistry()
	lh := reg.Latency("latency.grade_batch")
	if reg.Latency("latency.grade_batch") != lh {
		t.Fatal("Latency not idempotent")
	}
	lh.Observe(2 * time.Millisecond)
	lh.Observe(4 * time.Millisecond)
	s := reg.Snapshot()
	ls, ok := s.Latencies["latency.grade_batch"]
	if !ok {
		t.Fatal("latency hist missing from snapshot")
	}
	if ls.Count != 2 || ls.P50NS <= 0 {
		t.Errorf("latency snapshot = %+v", ls)
	}
}

// TestLatencyQuantileEdgeCases pins the degenerate shapes the report
// and exposition layers must survive: an empty histogram (no
// observations) yields zero quantiles and no buckets, and a
// single-bucket histogram (every observation identical) yields
// quantiles inside that bucket for every q.
func TestLatencyQuantileEdgeCases(t *testing.T) {
	empty := newLatencyHist().Snapshot()
	if empty.Count != 0 || len(empty.Buckets) != 0 {
		t.Fatalf("empty snapshot: count=%d buckets=%d", empty.Count, len(empty.Buckets))
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}
	if empty.P50NS != 0 || empty.P999NS != 0 {
		t.Errorf("empty precomputed quantiles nonzero: p50=%g p999=%g", empty.P50NS, empty.P999NS)
	}

	single := newLatencyHist()
	const d = 12345 * time.Microsecond
	for i := 0; i < 1000; i++ {
		single.Observe(d)
	}
	s := single.Snapshot()
	if len(s.Buckets) != 1 {
		t.Fatalf("identical observations spread over %d buckets, want 1", len(s.Buckets))
	}
	i := s.Buckets[0].Index
	lo, hi := latBucketLower(i), latBucketUpper(i)
	for _, q := range []float64{0.01, 0.5, 0.9, 0.99, 0.999} {
		got := s.Quantile(q)
		if got < float64(lo) || got > float64(hi) {
			t.Errorf("single-bucket Quantile(%g) = %g outside bucket [%d, %d]", q, got, lo, hi)
		}
	}
	if s.P50NS > s.P90NS || s.P90NS > s.P99NS || s.P99NS > s.P999NS {
		t.Errorf("single-bucket quantiles out of order: %g %g %g %g",
			s.P50NS, s.P90NS, s.P99NS, s.P999NS)
	}
	if s.SumNS != int64(d)*1000 {
		t.Errorf("sum = %d, want %d", s.SumNS, int64(d)*1000)
	}
}
