package telemetry

import (
	"encoding/json"
	"os"
	"runtime"
)

// Manifest is the run-manifest document written next to each pipeline
// output: enough to reconstruct what produced the artifact (seed,
// workers, scale) and how the run behaved (span tree, metric
// snapshot). The manifest is diagnostic metadata only — it is written
// after the output is complete and never feeds back into generation,
// so it cannot perturb determinism.
type Manifest struct {
	Tool      string `json:"tool"`
	Timestamp string `json:"timestamp,omitempty"` // RFC3339, caller-supplied
	Seed      int64  `json:"seed"`
	N         int    `json:"n,omitempty"`
	Workers   int    `json:"workers,omitempty"` // 0 = GOMAXPROCS (or varies; see spans)

	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// SerialHost tags runs taken with GOMAXPROCS==1, matching the
	// benchcmp host fingerprint so manifests and bench reports agree
	// on provenance (parallel numbers from such a host are not
	// comparable to multi-core ones).
	SerialHost bool `json:"serial_host,omitempty"`

	Spans   []SpanSnapshot `json:"spans,omitempty"`
	Metrics Snapshot       `json:"metrics"`
}

// Manifest assembles a manifest from the recorder's current spans and
// metrics plus the host facts. Works on the nil Recorder (empty spans
// and metrics).
func (r *Recorder) Manifest(tool string, seed int64, n, workers int) Manifest {
	return Manifest{
		Tool:       tool,
		Seed:       seed,
		N:          n,
		Workers:    workers,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		SerialHost: runtime.GOMAXPROCS(0) == 1,
		Spans:      r.Spans(),
		Metrics:    r.Registry().Snapshot(),
	}
}

// WriteManifest writes the manifest as indented JSON to path.
func WriteManifest(path string, m Manifest) error {
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// ManifestPath is the conventional manifest location for an output
// file: "<out>.manifest.json".
func ManifestPath(out string) string { return out + ".manifest.json" }
