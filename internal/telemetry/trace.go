package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the structured event-tracing layer: where the metrics
// registry answers "how much, in aggregate", the tracer answers "where
// did the time go, per worker, per shard, per stage, over time". Events
// are compact fixed-size records written into fixed-capacity per-lane
// ring buffers; when a lane overflows, the oldest events are silently
// overwritten — recording never blocks a worker and never allocates.
// The whole layer follows the package's determinism contract: it
// observes timestamps and counts, never pipeline data, so traced runs
// are byte-identical to untraced ones
// (internal/core.TestGoldenTraceInvariance pins this).
//
// Like internal/parallel's Hook, the process-wide tracer lives behind
// one atomic pointer: with no tracer installed, every Emit* call is a
// single pointer load and a branch — zero allocations, pinned by
// TestEmitDisabledZeroAlloc via testing.AllocsPerRun.

// EventKind classifies a trace event.
type EventKind uint8

const (
	// EvStage is a completed pipeline stage (a telemetry.Span that
	// ended): run, generate-main, draw-profiles, calibrate,
	// sample-responses, grade, write, figures, … Arg1 is the span's item
	// count.
	EvStage EventKind = 1 + iota
	// EvWorker is one worker goroutine's busy window inside a
	// parallel.ForEach fan-out. Arg1 is the worker index.
	EvWorker
	// EvShard is one fixed-width shard execution inside
	// parallel.MapShards/SumShards. Arg1 is the shard index, Arg2 the
	// shard's item count. The lane identifies the executing worker.
	EvShard
	// EvBatch is one scoring/grading batch. Arg1 is the batch's item
	// count, Arg2 the number of FP-exception events raised by oracle
	// evaluations during the batch (nonzero only for the batch that
	// derives the answer key).
	EvBatch
	// EvGC marks an observed garbage-collection cycle (sampled by
	// StartMemSampler). Arg1 is the cumulative GC count, Arg2 the
	// cumulative pause total in nanoseconds.
	EvGC
)

// String returns the kind's wire name ("stage", "worker", …).
func (k EventKind) String() string {
	switch k {
	case EvStage:
		return "stage"
	case EvWorker:
		return "worker"
	case EvShard:
		return "shard"
	case EvBatch:
		return "batch"
	case EvGC:
		return "gc"
	}
	return "unknown"
}

// TraceEvent is one compact trace record. TS is nanoseconds since the
// tracer's epoch (its construction time); Dur is the event's duration
// in nanoseconds (0 for instant events). Name must be a static or
// shared string — events hold the header only, so recording one never
// copies or allocates.
type TraceEvent struct {
	TS   int64
	Dur  int64
	Kind EventKind
	Lane int32
	Name string
	Arg1 int64
	Arg2 int64
}

// traceLane is one ring buffer. Lane 0 is by convention the pipeline
// control lane (stage spans, batches, GC marks); lane w+1 carries
// worker w's events. A short mutex guards the cursor-and-write pair —
// writers touch a lane for tens of nanoseconds and a full ring simply
// overwrites its oldest slot, so recording never blocks on capacity.
type traceLane struct {
	mu  sync.Mutex
	seq uint64 // total events ever written to this lane
	buf []TraceEvent
}

// Tracer collects events into per-lane ring buffers. Construct with
// NewTracer, install with SetTracer, export with WriteChromeTrace /
// WriteJSONL (or WriteTraceFile). All methods are safe for concurrent
// use and safe on the nil Tracer.
type Tracer struct {
	epoch time.Time
	lanes []traceLane
	cap   int
}

// NewTracer creates a tracer with the given lane count and per-lane
// event capacity (both floored at 1). Memory cost is
// lanes × capacity × sizeof(TraceEvent) (~64 bytes/event), fixed at
// construction.
func NewTracer(lanes, capacity int) *Tracer {
	if lanes < 1 {
		lanes = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	t := &Tracer{epoch: time.Now(), lanes: make([]traceLane, lanes), cap: capacity}
	for i := range t.lanes {
		t.lanes[i].buf = make([]TraceEvent, capacity)
	}
	return t
}

// NewDefaultTracer sizes a tracer for this process: one control lane
// plus one lane per GOMAXPROCS worker, 16384 events each (roughly a
// few MB — enough to hold every event of an n=1M run).
func NewDefaultTracer() *Tracer {
	return NewTracer(runtime.GOMAXPROCS(0)+1, 1<<14)
}

// activeTracer holds the installed process-wide tracer; nil (the
// default) short-circuits all Emit* calls to a pointer load.
var activeTracer atomic.Pointer[Tracer]

// SetTracer installs t as the process-wide tracer (nil uninstalls).
// Install once at startup, before the traced run; installing mid-run
// only affects subsequently emitted events.
func SetTracer(t *Tracer) { activeTracer.Store(t) }

// ActiveTracer returns the installed tracer, or nil when tracing is
// disabled.
func ActiveTracer() *Tracer { return activeTracer.Load() }

// record writes ev into the lane ring (lanes wrap modulo the lane
// count; negative lanes fold to 0). Zero allocations; never blocks on
// a full ring — the oldest event in the lane is overwritten instead.
func (t *Tracer) record(lane int, ev TraceEvent) {
	if t == nil {
		return
	}
	if lane < 0 {
		lane = 0
	}
	ln := &t.lanes[lane%len(t.lanes)]
	ln.mu.Lock()
	ln.buf[ln.seq%uint64(t.cap)] = ev
	ln.seq++
	ln.mu.Unlock()
}

// EmitSpan records a completed interval event on the process tracer:
// an interval that started at start and lasted dur. No-op (one atomic
// load) when no tracer is installed; zero allocations either way.
func EmitSpan(kind EventKind, lane int, name string, start time.Time, dur time.Duration, arg1, arg2 int64) {
	t := activeTracer.Load()
	if t == nil {
		return
	}
	ts := start.Sub(t.epoch)
	if ts < 0 {
		ts = 0
	}
	t.record(lane, TraceEvent{TS: int64(ts), Dur: int64(dur), Kind: kind,
		Lane: int32(lane), Name: name, Arg1: arg1, Arg2: arg2})
}

// EmitInstant records a point-in-time event stamped now on the process
// tracer. No-op when no tracer is installed; zero allocations.
func EmitInstant(kind EventKind, lane int, name string, arg1, arg2 int64) {
	t := activeTracer.Load()
	if t == nil {
		return
	}
	ts := time.Since(t.epoch)
	if ts < 0 {
		ts = 0
	}
	t.record(lane, TraceEvent{TS: int64(ts), Kind: kind,
		Lane: int32(lane), Name: name, Arg1: arg1, Arg2: arg2})
}

// Recorded returns the total number of events ever recorded, including
// those since overwritten (0 on nil).
func (t *Tracer) Recorded() int64 {
	if t == nil {
		return 0
	}
	var total uint64
	for i := range t.lanes {
		ln := &t.lanes[i]
		ln.mu.Lock()
		total += ln.seq
		ln.mu.Unlock()
	}
	return int64(total)
}

// Dropped returns how many events were overwritten by ring overflow
// (0 on nil). A nonzero value means the trace is a suffix window of
// the run; size the tracer up with NewTracer for full coverage.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	var dropped uint64
	for i := range t.lanes {
		ln := &t.lanes[i]
		ln.mu.Lock()
		if ln.seq > uint64(t.cap) {
			dropped += ln.seq - uint64(t.cap)
		}
		ln.mu.Unlock()
	}
	return int64(dropped)
}

// Events returns every retained event, merged across lanes in
// timestamp order. Intended for export after the traced run has
// quiesced; it is safe against concurrent Emit* but then reflects a
// per-lane snapshot moment.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	var out []TraceEvent
	for i := range t.lanes {
		ln := &t.lanes[i]
		ln.mu.Lock()
		if ln.seq <= uint64(t.cap) {
			out = append(out, ln.buf[:ln.seq]...)
		} else {
			p := ln.seq % uint64(t.cap)
			out = append(out, ln.buf[p:]...)
			out = append(out, ln.buf[:p]...)
		}
		ln.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// jsonlEvent is the JSONL wire form of one event.
type jsonlEvent struct {
	TSMicros  float64 `json:"ts_us"`
	DurMicros float64 `json:"dur_us,omitempty"`
	Kind      string  `json:"kind"`
	Lane      int32   `json:"lane"`
	Name      string  `json:"name"`
	Arg1      int64   `json:"arg1,omitempty"`
	Arg2      int64   `json:"arg2,omitempty"`
}

// WriteJSONL writes the retained events as JSON Lines: one event
// object per line, timestamps and durations in microseconds.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range t.Events() {
		je := jsonlEvent{
			TSMicros:  float64(ev.TS) / 1e3,
			DurMicros: float64(ev.Dur) / 1e3,
			Kind:      ev.Kind.String(),
			Lane:      ev.Lane,
			Name:      ev.Name,
			Arg1:      ev.Arg1,
			Arg2:      ev.Arg2,
		}
		if err := enc.Encode(&je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeEvent is one entry of the Chrome trace-event format's
// traceEvents array (the JSON Perfetto and chrome://tracing load).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeArgs renders an event's kind-specific arguments.
func chromeArgs(ev TraceEvent) map[string]any {
	switch ev.Kind {
	case EvStage:
		if ev.Arg1 == 0 {
			return nil
		}
		return map[string]any{"items": ev.Arg1}
	case EvWorker:
		return map[string]any{"worker": ev.Arg1}
	case EvShard:
		return map[string]any{"shard": ev.Arg1, "items": ev.Arg2}
	case EvBatch:
		return map[string]any{"items": ev.Arg1, "fp_exceptions": ev.Arg2}
	case EvGC:
		return map[string]any{"gc_count": ev.Arg1, "pause_total_ns": ev.Arg2}
	}
	return nil
}

// laneName is the display name of a lane's track: lane 0 is the
// pipeline control lane, lane w+1 is worker w.
func laneName(lane int32) string {
	if lane == 0 {
		return "pipeline"
	}
	return fmt.Sprintf("worker-%d", lane-1)
}

// WriteChromeTrace writes the retained events in the Chrome
// trace-event JSON format (the "JSON Array with metadata" flavor:
// an object with a traceEvents array), loadable in Perfetto
// (https://ui.perfetto.dev) and chrome://tracing. Interval events
// (stages, workers, shards, batches) become complete ("X") events on
// the lane's thread track; GC marks become instant ("i") events.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	evs := t.Events()
	out := struct {
		TraceEvents     []chromeEvent  `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData"`
	}{
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"recorded_events": t.Recorded(),
			"dropped_events":  t.Dropped(),
		},
	}

	// One process, one named thread track per lane that carried events.
	lanesSeen := map[int32]bool{}
	for _, ev := range evs {
		lanesSeen[ev.Lane] = true
	}
	var laneIDs []int32
	for lane := range lanesSeen {
		laneIDs = append(laneIDs, lane)
	}
	sort.Slice(laneIDs, func(i, j int) bool { return laneIDs[i] < laneIDs[j] })
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": "fpstudy"},
	})
	for _, lane := range laneIDs {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: int(lane),
			Args: map[string]any{"name": laneName(lane)},
		})
	}

	for _, ev := range evs {
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Kind.String(),
			Ph:   "X",
			TS:   float64(ev.TS) / 1e3,
			Dur:  float64(ev.Dur) / 1e3,
			PID:  1,
			TID:  int(ev.Lane),
			Args: chromeArgs(ev),
		}
		if ev.Dur == 0 && ev.Kind == EvGC {
			ce.Ph, ce.Dur, ce.S = "i", 0, "p" // process-scoped instant
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", " ")
	if err := enc.Encode(&out); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteTraceFile exports the tracer to path, choosing the format by
// extension: ".jsonl" writes JSON Lines, anything else the Chrome
// trace-event JSON.
func WriteTraceFile(path string, t *Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.EqualFold(filepath.Ext(path), ".jsonl") {
		err = t.WriteJSONL(f)
	} else {
		err = t.WriteChromeTrace(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
