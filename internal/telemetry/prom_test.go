package telemetry

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// validateExposition is a minimal Prometheus text-format (0.0.4)
// checker: every non-comment line is `name{labels} value` with a legal
// metric name and a parseable value; histogram `le` buckets are
// cumulative (non-decreasing) and end in +Inf; every TYPE-declared
// histogram has _sum and _count. Returns the first problem found.
func validateExposition(text string) string {
	type histState struct {
		lastCum  int64
		sawInf   bool
		sawSum   bool
		sawCount bool
	}
	hists := map[string]*histState{}
	legalName := func(s string) bool {
		if s == "" {
			return false
		}
		for i := 0; i < len(s); i++ {
			c := s[i]
			ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
				(i > 0 && c >= '0' && c <= '9')
			if !ok {
				return false
			}
		}
		return true
	}
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" && fields[3] == "histogram" {
				hists[fields[2]] = &histState{}
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return "no value separator: " + line
		}
		name, val := line[:sp], line[sp+1:]
		labels := ""
		if br := strings.IndexByte(name, '{'); br >= 0 {
			if !strings.HasSuffix(name, "}") {
				return "unterminated labels: " + line
			}
			labels = name[br+1 : len(name)-1]
			name = name[:br]
		}
		if !legalName(name) {
			return "illegal metric name: " + line
		}
		fv, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return "unparseable value: " + line
		}
		for base, h := range hists {
			switch name {
			case base + "_bucket":
				le := strings.TrimPrefix(labels, `le="`)
				le = strings.TrimSuffix(le, `"`)
				if le == "+Inf" {
					h.sawInf = true
				} else if _, err := strconv.ParseFloat(le, 64); err != nil {
					return "unparseable le: " + line
				}
				if int64(fv) < h.lastCum {
					return "non-cumulative bucket: " + line
				}
				h.lastCum = int64(fv)
			case base + "_sum":
				h.sawSum = true
			case base + "_count":
				h.sawCount = true
			}
		}
	}
	for base, h := range hists {
		if !h.sawInf {
			return base + ": no +Inf bucket"
		}
		if !h.sawSum || !h.sawCount {
			return base + ": missing _sum/_count"
		}
	}
	return ""
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pipeline.respondents").Add(199)
	reg.Gauge("mem.heap_alloc").Set(12345.5)
	reg.Histogram("parallel.busy_ms", []float64{1, 10, 100}).Observe(5)
	lh := reg.Latency("latency.grade_batch")
	for i := 0; i < 100; i++ {
		lh.Observe(time.Duration(i+1) * time.Millisecond)
	}

	var b strings.Builder
	if err := WritePrometheus(&b, "fpstudy", reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE fpstudy_pipeline_respondents counter",
		"fpstudy_pipeline_respondents 199",
		"# TYPE fpstudy_mem_heap_alloc gauge",
		"fpstudy_mem_heap_alloc 12345.5",
		"# TYPE fpstudy_parallel_busy_ms histogram",
		`fpstudy_parallel_busy_ms_bucket{le="+Inf"} 1`,
		"fpstudy_parallel_busy_ms_count 1",
		"# TYPE fpstudy_latency_grade_batch_seconds histogram",
		`fpstudy_latency_grade_batch_seconds_bucket{le="+Inf"} 100`,
		"fpstudy_latency_grade_batch_seconds_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if problem := validateExposition(out); problem != "" {
		t.Errorf("exposition invalid: %s\n%s", problem, out)
	}
	// Deterministic scrape-to-scrape output.
	var b2 strings.Builder
	if err := WritePrometheus(&b2, "fpstudy", reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("exposition not deterministic across identical snapshots")
	}
}

func TestPromNameSanitization(t *testing.T) {
	for in, want := range map[string]string{
		"fp.exceptions.invalid": "fp_exceptions_invalid",
		"latency.fpds-encode":   "latency_fpds_encode",
		"9lives":                "_9lives",
		"ok_name":               "ok_name",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPromLatencySecondsConversion pins the ns→seconds conversion on
// the latency exposition: a 1ms observation must land in a bucket with
// le ≈ 0.001s, not 1e6.
func TestPromLatencySecondsConversion(t *testing.T) {
	reg := NewRegistry()
	reg.Latency("latency.x").Observe(time.Millisecond)
	var b strings.Builder
	if err := WritePrometheus(&b, "p", reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "p_latency_x_seconds_sum 0.001") {
		t.Errorf("sum not in seconds:\n%s", out)
	}
	// The containing bucket's upper bound is within one sub-bucket
	// (3.1%) of 1ms.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "p_latency_x_seconds_bucket") && !strings.Contains(line, "+Inf") {
			le := line[strings.Index(line, `le="`)+4:]
			le = le[:strings.Index(le, `"`)]
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("bad le %q", le)
			}
			if v < 0.001 || v > 0.00104 {
				t.Errorf("bucket le = %g, want within (0.001, 0.00104)", v)
			}
			return
		}
	}
	t.Errorf("no finite bucket line found:\n%s", out)
}
