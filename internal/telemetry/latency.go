package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// LatencyHist is a log-linear (HDR-style) duration histogram built for
// hot paths: Observe is a single atomic add on a precomputed bucket
// index — no CAS loop, no locks, 0 allocs — into one of a fixed set of
// per-worker shards, so concurrent writers on different shards never
// touch the same cache lines. Shards are merged only at Snapshot time.
//
// # Bucket geometry
//
// Durations are bucketed in nanoseconds on a log-linear grid: each
// power-of-two octave is split into 32 linear sub-buckets
// (latSubBuckets). For a duration v ns the bucket index is
//
//	k = max(0, bits.Len64(v) - 6)   // octave shift; v>>k ∈ [0, 64)
//	index = k*32 + v>>k
//
// so buckets 0..63 are exact 1 ns bins and every later bucket spans
// 2^k ns at a value of at least 32·2^k ns, bounding the relative
// quantile error at 1/32 ≈ 3.1%. The grid tops out at latMaxShift
// octaves (≈ 73 minutes); anything longer lands in the final overflow
// bucket.
//
// Like every other handle in this package, the nil *LatencyHist
// accepts the full method set as a no-op.
type LatencyHist struct {
	shards []latShard
}

const (
	// latSubBucketBits fixes 2^5 = 32 linear sub-buckets per octave,
	// giving a ≤ 1/32 relative bucket width above 32 ns.
	latSubBucketBits = 5
	latSubBuckets    = 1 << latSubBucketBits

	// latMaxShift caps the octave shift: values at or above
	// 2^(latMaxShift+6) ns (≈ 73 min) clamp into the last bucket.
	latMaxShift = 36

	// latBuckets is the total bucket count: shifts 0..latMaxShift,
	// where shift k's top index is k*32 + 63.
	latBuckets = latMaxShift*latSubBuckets + 2*latSubBuckets

	// latShards fixes the shard fan-out (power of two). Worker indices
	// fold in with a mask, so any worker count is safe; distinct
	// workers ≤ latShards never share a shard.
	latShards    = 16
	latShardMask = latShards - 1
)

// latShard is one writer lane. The trailing pad keeps the hot sum/count
// words of one shard off the first bucket cache line of the next.
type latShard struct {
	counts [latBuckets]atomic.Int64
	sumNS  atomic.Int64
	count  atomic.Int64
	_      [48]byte
}

// newLatencyHist builds an empty histogram with all shards allocated,
// so Observe never allocates or branches on initialization state.
func newLatencyHist() *LatencyHist {
	return &LatencyHist{shards: make([]latShard, latShards)}
}

// latBucketIndex maps a duration in nanoseconds to its bucket.
func latBucketIndex(ns int64) int {
	if ns <= 0 {
		return 0
	}
	k := bits.Len64(uint64(ns)) - (latSubBucketBits + 1)
	if k <= 0 {
		return int(ns)
	}
	if k > latMaxShift {
		return latBuckets - 1
	}
	return k*latSubBuckets + int(ns>>uint(k))
}

// latBucketLower returns the inclusive lower bound (ns) of bucket i.
func latBucketLower(i int) int64 {
	if i < 2*latSubBuckets {
		return int64(i)
	}
	k := i/latSubBuckets - 1
	r := i - k*latSubBuckets
	return int64(r) << uint(k)
}

// latBucketUpper returns the exclusive upper bound (ns) of bucket i.
func latBucketUpper(i int) int64 {
	if i == latBuckets-1 {
		return math.MaxInt64
	}
	return latBucketLower(i + 1)
}

// ObserveShard records d into the shard for worker w (w may be any
// non-negative index; it folds in modulo the shard count). This is the
// hot-path form: one bucket-index computation and two atomic adds on a
// shard no other worker is writing. No-op on nil.
func (l *LatencyHist) ObserveShard(w int, d time.Duration) {
	if l == nil {
		return
	}
	s := &l.shards[w&latShardMask]
	s.counts[latBucketIndex(int64(d))].Add(1)
	s.sumNS.Add(int64(d))
	s.count.Add(1)
}

// Observe records d, picking a shard from the duration's own bits (a
// splitmix64-style finalizer) so call sites without a worker index
// still spread across shards without any shared state. No-op on nil.
func (l *LatencyHist) Observe(d time.Duration) {
	if l == nil {
		return
	}
	h := uint64(d)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 29
	l.ObserveShard(int(h&latShardMask), d)
}

// Count returns the total number of observations across shards (0 on
// nil). Like Snapshot, it may trail concurrent writers.
func (l *LatencyHist) Count() int64 {
	if l == nil {
		return 0
	}
	var n int64
	for i := range l.shards {
		n += l.shards[i].count.Load()
	}
	return n
}

// LatencyBucket is one non-empty bucket in a LatencySnapshot. Index is
// the log-linear grid position (see LatencyHist bucket geometry);
// UpperNS its exclusive upper bound in nanoseconds.
type LatencyBucket struct {
	Index   int   `json:"i"`
	UpperNS int64 `json:"le_ns"`
	Count   int64 `json:"count"`
}

// LatencySnapshot is the mergeable, JSON-ready view of a LatencyHist:
// sparse non-empty buckets plus precomputed quantiles. Count always
// equals the sum of the bucket counts (both derive from the same
// per-bucket reads); SumNS may trail concurrent writers slightly.
type LatencySnapshot struct {
	Count   int64           `json:"count"`
	SumNS   int64           `json:"sum_ns"`
	P50NS   float64         `json:"p50_ns"`
	P90NS   float64         `json:"p90_ns"`
	P99NS   float64         `json:"p99_ns"`
	P999NS  float64         `json:"p999_ns"`
	Buckets []LatencyBucket `json:"buckets,omitempty"`
}

// Snapshot merges all shards into one consistent-enough view: each
// bucket is an atomic read; the total is the sum of those same reads,
// so the snapshot's buckets always sum to its count even under
// concurrent writers. Works on nil (empty snapshot).
func (l *LatencyHist) Snapshot() LatencySnapshot {
	if l == nil {
		return LatencySnapshot{}
	}
	var dense [latBuckets]int64
	var sum int64
	for s := range l.shards {
		sh := &l.shards[s]
		sum += sh.sumNS.Load()
		for i := range sh.counts {
			dense[i] += sh.counts[i].Load()
		}
	}
	snap := LatencySnapshot{SumNS: sum}
	for i, c := range dense {
		if c == 0 {
			continue
		}
		snap.Count += c
		snap.Buckets = append(snap.Buckets, LatencyBucket{Index: i, UpperNS: latBucketUpper(i), Count: c})
	}
	snap.fillQuantiles()
	return snap
}

// fillQuantiles recomputes the precomputed percentile fields from the
// sparse buckets.
func (s *LatencySnapshot) fillQuantiles() {
	s.P50NS = s.Quantile(0.50)
	s.P90NS = s.Quantile(0.90)
	s.P99NS = s.Quantile(0.99)
	s.P999NS = s.Quantile(0.999)
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) in nanoseconds by
// walking the cumulative bucket counts and interpolating linearly
// inside the containing bucket. The estimate is exact below 64 ns and
// within ≈ 3.1% above (one sub-bucket width). Returns 0 for an empty
// snapshot.
func (s *LatencySnapshot) Quantile(q float64) float64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for _, b := range s.Buckets {
		next := cum + float64(b.Count)
		if next >= rank {
			lo, hi := float64(latBucketLower(b.Index)), float64(latBucketUpper(b.Index))
			if b.Index == latBuckets-1 {
				return lo // overflow bucket: report its lower bound
			}
			frac := 0.0
			if b.Count > 0 {
				frac = (rank - cum) / float64(b.Count)
			}
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	last := s.Buckets[len(s.Buckets)-1]
	return float64(latBucketUpper(last.Index))
}

// Merge adds other's buckets into s (for combining snapshots from
// multiple histograms or processes) and refreshes the quantiles.
func (s *LatencySnapshot) Merge(other LatencySnapshot) {
	s.addScaled(other, 1)
}

// Sub returns s minus prev, for turning two cumulative snapshots of
// the same histogram into an interval view (e.g. one benchmark rep).
// Counts are monotonic per bucket, so the delta is itself a valid
// snapshot with fresh quantiles.
func (s LatencySnapshot) Sub(prev LatencySnapshot) LatencySnapshot {
	d := LatencySnapshot{}
	d.Buckets = append(d.Buckets, s.Buckets...)
	d.Count = s.Count
	d.SumNS = s.SumNS
	d.addScaled(prev, -1)
	return d
}

// addScaled merges other's buckets scaled by sign (+1 merge, -1
// subtract), drops empty buckets, and refreshes quantiles.
func (s *LatencySnapshot) addScaled(other LatencySnapshot, sign int64) {
	dense := map[int]int64{}
	for _, b := range s.Buckets {
		dense[b.Index] += b.Count
	}
	for _, b := range other.Buckets {
		dense[b.Index] += sign * b.Count
	}
	// Fresh slice: snapshots are copied by value, so the old backing
	// array may be shared with the caller's copy.
	merged := make([]LatencyBucket, 0, len(dense))
	s.Count = 0
	for i := 0; i < latBuckets; i++ {
		c := dense[i]
		if c == 0 {
			continue
		}
		if c < 0 {
			c = 0 // defensive: mismatched snapshots never go negative
		}
		s.Count += c
		merged = append(merged, LatencyBucket{Index: i, UpperNS: latBucketUpper(i), Count: c})
	}
	s.Buckets = merged
	s.SumNS += sign * other.SumNS
	if s.SumNS < 0 {
		s.SumNS = 0
	}
	s.fillQuantiles()
}
