package telemetry

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is a live-introspection HTTP endpoint: /debug/vars (expvar,
// including every registry published with PublishExpvar), /metrics
// (the same registries in Prometheus text exposition format), and
// /debug/pprof/* (CPU/heap/goroutine profiling). It exists so a long
// -n 1000000 run is not a black box: attach with a browser, curl, or
// `go tool pprof` while the pipeline is executing.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the introspection server on addr (e.g. "127.0.0.1:6060"
// or ":0" for an ephemeral port) and returns immediately; the server
// runs until Close. The handlers are mounted on a private mux, not
// http.DefaultServeMux, so importing this package never changes the
// default mux of an embedding program.
func Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", promHandler)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the bound address ("127.0.0.1:43231"), useful when the
// caller asked for an ephemeral port.
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server immediately and releases the port, dropping
// any in-flight requests. No-op on nil. Prefer Shutdown at process
// exit.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// Shutdown gracefully stops the server: the listener closes at once
// (releasing the port), in-flight requests — a scrape mid-response, a
// pprof profile still streaming — run to completion or until ctx
// expires, whichever is first. On ctx expiry the remaining connections
// are force-closed and ctx.Err() is returned. No-op on nil.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	err := s.srv.Shutdown(ctx)
	if err != nil {
		s.srv.Close() //nolint:errcheck // best-effort after failed graceful stop
	}
	return err
}
