package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Prometheus text exposition (format version 0.0.4) for every
// registry published with PublishExpvar. The expvar variable name
// doubles as the metric prefix, so the same single publication call a
// tool already makes lights up both /debug/vars (JSON) and /metrics
// (Prometheus): "pipeline.respondents" in registry "fpstudy" becomes
// "fpstudy_pipeline_respondents".
//
// Both histogram kinds render as native Prometheus histograms with
// cumulative `le` buckets plus `_count`/`_sum`. Latency histograms are
// converted to seconds (the Prometheus base unit) and only non-empty
// buckets are emitted — the log-linear grid has ~1200 buckets, almost
// all zero; cumulative counts stay correct because empty buckets add
// nothing.

// promRegs is the process-wide publication list, mirroring the expvar
// publish-once pattern: the first registry to claim a prefix keeps it.
var (
	promMu   sync.Mutex
	promRegs = map[string]*Registry{}
)

// promPublish records reg under prefix for /metrics, once. A nil
// registry is not recorded (and does not claim the prefix).
func promPublish(prefix string, reg *Registry) {
	if reg == nil {
		return
	}
	promMu.Lock()
	defer promMu.Unlock()
	if _, ok := promRegs[prefix]; !ok {
		promRegs[prefix] = reg
	}
}

// promName sanitizes a dotted metric name into a legal Prometheus
// metric name component: [a-zA-Z0-9_] with everything else mapped to
// '_'.
func promName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float in the exposition format (Go's shortest
// round-trip form is accepted by the text parser).
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// sortedKeys returns the map's keys in lexical order so the exposition
// is deterministic scrape to scrape.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders one registry snapshot in the Prometheus text
// exposition format under the given metric prefix.
func WritePrometheus(w io.Writer, prefix string, snap Snapshot) error {
	p := promName(prefix)
	for _, name := range sortedKeys(snap.Counters) {
		n := p + "_" + promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, snap.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Gauges) {
		n := p + "_" + promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(snap.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		n := p + "_" + promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			le := b.UpperBound // formatBound output or "+Inf", both legal le values
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", n, promFloat(h.Sum), n, h.Count); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Latencies) {
		l := snap.Latencies[name]
		n := p + "_" + promName(name) + "_seconds"
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		var cum int64
		for _, b := range l.Buckets {
			cum += b.Count
			if b.Index == latBuckets-1 {
				continue // overflow bucket folds into +Inf below
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, promFloat(float64(b.UpperNS)/1e9), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, l.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", n, promFloat(float64(l.SumNS)/1e9), n, l.Count); err != nil {
			return err
		}
	}
	return nil
}

// promHandler serves every published registry in the text exposition
// format.
func promHandler(w http.ResponseWriter, _ *http.Request) {
	promMu.Lock()
	prefixes := sortedKeys(promRegs)
	regs := make([]*Registry, len(prefixes))
	for i, p := range prefixes {
		regs[i] = promRegs[p]
	}
	promMu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for i, p := range prefixes {
		if err := WritePrometheus(w, p, regs[i].Snapshot()); err != nil {
			return // client went away mid-scrape
		}
	}
}
