// Package telemetry is the zero-dependency observability layer of the
// study pipeline: an atomic metrics registry (counters, gauges,
// fixed-bucket histograms), a span tree for stage timing, an expvar /
// pprof HTTP surface, and a run-manifest exporter.
//
// # Determinism contract
//
// Telemetry observes the pipeline; it never participates in it. Nothing
// in this package draws randomness, alters shard boundaries, or feeds
// values back into the computation, so a run produces bit-identical
// output with telemetry on, off, or partially attached
// (internal/core.TestGoldenParallelDeterminism pins this). Every handle
// is nil-safe: a nil *Registry, *Recorder, *Span, *Counter, *Gauge,
// *Histogram, or *LatencyHist accepts the full method set as a no-op,
// which is what lets instrumentation points stay unconditional in the
// hot paths without an "enabled" flag.
//
// # Metric naming
//
// Names are dot-separated, lower-case, subsystem-first:
//
//	pipeline.respondents     counter  generation progress (see Instrumentation)
//	parallel.foreach_calls   counter  fan-out invocations
//	parallel.items           counter  indices executed by ForEach
//	parallel.busy_ns         counter  summed worker busy time
//	parallel.shards          counter  fixed-width shards dispatched
//	parallel.pool_tasks      counter  Pool tasks executed
//	parallel.pool_busy_ns    counter  summed Pool task time
//	fp.ops                   counter  observed softfloat operations
//	fp.exceptions.<cond>     counter  per-condition FP exception events
//	latency.<stage>          latency  per-operation durations (LatencyHist)
//
// The whole registry is exported as one expvar variable (conventionally
// "fpstudy") whose JSON value is the Snapshot.
package telemetry

import (
	"expvar"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic int64 metric. The nil
// Counter accepts Add/Inc/Value as a no-op, so call sites never branch.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one (no-op on nil).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 metric holding a last-written value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v (no-op on nil).
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: values are counted into the
// first bucket whose upper bound is >= the observation, with an
// implicit +Inf overflow bucket. Bucket bounds are fixed at creation,
// so concurrent Observe calls are single atomic increments.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; len(counts) == len(bounds)+1
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// newHistogram builds a histogram with the given sorted upper bounds.
func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value (no-op on nil).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// BucketCount is one histogram bucket in a snapshot: the count of
// observations <= UpperBound (not cumulative). The overflow bucket has
// UpperBound +Inf, rendered as null in JSON by encoding/json — the
// snapshot stores it as the string "+Inf" instead for portability.
type BucketCount struct {
	UpperBound string `json:"le"`
	Count      int64  `json:"count"`
}

// HistogramSnapshot is the JSON-ready view of a histogram.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Buckets []BucketCount `json:"buckets"`
}

// Snapshot reads a consistent-enough view of the histogram: each
// bucket is read atomically and Count is the sum of those same reads,
// so a snapshot's buckets always sum to its count even with concurrent
// writers. Sum is read separately and may trail the buckets by a few
// in-flight observations, which is acceptable for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Sum: h.Sum()}
	for i := range h.counts {
		ub := "+Inf"
		if i < len(h.bounds) {
			ub = formatBound(h.bounds[i])
		}
		c := h.counts[i].Load()
		s.Count += c
		s.Buckets = append(s.Buckets, BucketCount{UpperBound: ub, Count: c})
	}
	return s
}

// Registry is a named collection of metrics. Metric constructors are
// idempotent (the same name returns the same metric), so any package
// can look up a shared counter by name without coordination. All
// methods are safe for concurrent use, and safe on the nil Registry
// (constructors return nil metrics, which are themselves no-ops).
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	lats   map[string]*LatencyHist
}

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
		lats:   map[string]*LatencyHist{},
	}
}

// Counter returns the counter with the given name, creating it on first
// use. Returns nil (a no-op counter) on the nil Registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first
// use. Returns nil on the nil Registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the fixed-bucket histogram with the given name,
// creating it with the supplied upper bounds on first use (bounds are
// ignored on later lookups). Returns nil on the nil Registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Latency returns the log-linear latency histogram with the given
// name, creating it on first use. Returns nil (a no-op histogram) on
// the nil Registry.
func (r *Registry) Latency(name string) *LatencyHist {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	l, ok := r.lats[name]
	if !ok {
		l = newLatencyHist()
		r.lats[name] = l
	}
	return l
}

// Snapshot is the JSON-marshalable state of a registry at one moment.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Latencies  map[string]LatencySnapshot   `json:"latencies,omitempty"`
}

// Snapshot captures every metric's current value. The snapshot is
// internally consistent per metric (atomic reads); it does not freeze
// the registry as a whole, which monitoring does not need.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counts))
	for k, v := range r.counts {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	lats := make(map[string]*LatencyHist, len(r.lats))
	for k, v := range r.lats {
		lats[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{}
	if len(counters) > 0 {
		s.Counters = make(map[string]int64, len(counters))
		for k, v := range counters {
			s.Counters[k] = v.Value()
		}
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]float64, len(gauges))
		for k, v := range gauges {
			s.Gauges[k] = v.Value()
		}
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for k, v := range hists {
			s.Histograms[k] = v.Snapshot()
		}
	}
	if len(lats) > 0 {
		s.Latencies = make(map[string]LatencySnapshot, len(lats))
		for k, v := range lats {
			s.Latencies[k] = v.Snapshot()
		}
	}
	return s
}

// publishMu serializes expvar publication (expvar.Publish panics on a
// duplicate name, and Get+Publish is not atomic on its own).
var publishMu sync.Mutex

// publish registers fn as the expvar variable name, once; later calls
// with the same name are ignored (last registration wins inside one
// process is deliberately NOT supported — the first owner keeps it).
func publish(name string, fn expvar.Func) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) == nil {
		expvar.Publish(name, fn)
	}
}

// PublishExpvar exposes the registry under the given expvar variable
// name (conventionally "fpstudy"); /debug/vars then serves the live
// Snapshot, and /metrics serves the same registry in Prometheus text
// format with the name as metric prefix. Publishing the same name
// twice is a no-op, so init order does not matter. No-op on the nil
// Registry.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	publish(name, func() any { return r.Snapshot() })
	promPublish(name, r)
}
