package telemetry

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Span times one stage of a run. Spans form a tree (StartChild) and are
// safe for concurrent use: children may be opened from different
// goroutines, and items may be added while a snapshot reader walks the
// tree. The nil Span accepts every method as a no-op, so callers thread
// spans unconditionally.
type Span struct {
	name  string
	start time.Time
	items atomic.Int64

	mu       sync.Mutex
	end      time.Time
	children []*Span
}

func newSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// StartChild opens a child span under s. Nil-safe: on a nil receiver it
// returns nil, so an uninstrumented pipeline never allocates.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// AddItems adds n to the span's processed-item count (no-op on nil).
func (s *Span) AddItems(n int64) {
	if s == nil {
		return
	}
	s.items.Add(n)
}

// Items returns the current item count (0 on nil).
func (s *Span) Items() int64 {
	if s == nil {
		return 0
	}
	return s.items.Load()
}

// End closes the span. Idempotent; no-op on nil. A span left open still
// snapshots (with the duration measured up to the snapshot moment), so
// live introspection of an in-flight run works.
//
// The first End also emits an EvStage trace event on the pipeline
// control lane, so the stage tree shows up in exported traces without
// any per-package threading: whoever times a stage with a Span gets
// trace coverage for free.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	first := s.end.IsZero()
	if first {
		s.end = time.Now()
	}
	end := s.end
	s.mu.Unlock()
	if first {
		EmitSpan(EvStage, 0, s.name, s.start, end.Sub(s.start), s.items.Load(), 0)
	}
}

// SpanSnapshot is the JSON-ready view of one span subtree.
type SpanSnapshot struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	// Running marks a span that had not ended when the snapshot was
	// taken; Seconds then measures up to the snapshot moment.
	Running     bool           `json:"running,omitempty"`
	Items       int64          `json:"items,omitempty"`
	ItemsPerSec float64        `json:"items_per_sec,omitempty"`
	Children    []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot captures the span subtree. Safe to call concurrently with
// StartChild/AddItems/End; empty on nil.
func (s *Span) Snapshot() SpanSnapshot {
	if s == nil {
		return SpanSnapshot{}
	}
	s.mu.Lock()
	end := s.end
	kids := make([]*Span, len(s.children))
	copy(kids, s.children)
	s.mu.Unlock()

	snap := SpanSnapshot{Name: s.name, Items: s.Items()}
	if end.IsZero() {
		snap.Running = true
		end = time.Now()
	}
	snap.Seconds = end.Sub(s.start).Seconds()
	if snap.Items > 0 && snap.Seconds > 0 {
		snap.ItemsPerSec = float64(snap.Items) / snap.Seconds
	}
	for _, c := range kids {
		snap.Children = append(snap.Children, c.Snapshot())
	}
	return snap
}

// Recorder ties a metrics registry to a forest of root spans: one
// Recorder observes one logical run (or one process). The nil Recorder
// is a fully functional no-op.
type Recorder struct {
	reg *Registry

	mu    sync.Mutex
	roots []*Span
}

// NewRecorder creates a recorder backed by reg (which may be nil when
// only span timing is wanted).
func NewRecorder(reg *Registry) *Recorder {
	return &Recorder{reg: reg}
}

// Registry returns the backing registry (nil on the nil Recorder, which
// in turn yields nil — no-op — metrics).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// StartSpan opens a new root span (nil on the nil Recorder).
func (r *Recorder) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	s := newSpan(name)
	r.mu.Lock()
	r.roots = append(r.roots, s)
	r.mu.Unlock()
	return s
}

// Spans snapshots every root span tree in start order.
func (r *Recorder) Spans() []SpanSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	roots := make([]*Span, len(r.roots))
	copy(roots, r.roots)
	r.mu.Unlock()
	out := make([]SpanSnapshot, 0, len(roots))
	for _, s := range roots {
		out = append(out, s.Snapshot())
	}
	return out
}

// PublishExpvar exposes the recorder (metrics + span forest) as one
// expvar variable; /debug/vars then serves the live combined view, and
// /metrics serves the recorder's registry in Prometheus text format
// with the name as metric prefix. No-op on the nil Recorder.
func (r *Recorder) PublishExpvar(name string) {
	if r == nil {
		return
	}
	publish(name, func() any {
		return struct {
			Metrics Snapshot       `json:"metrics"`
			Spans   []SpanSnapshot `json:"spans,omitempty"`
		}{r.reg.Snapshot(), r.Spans()}
	})
	promPublish(name, r.reg)
}

// formatBound renders a histogram bucket bound compactly ("10", "2.5").
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
