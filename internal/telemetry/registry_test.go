package telemetry

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

// TestRegistryConcurrent is the race-detector contract of the registry:
// 8 writer goroutines hammer the same counter, gauge, and histogram
// (looked up by name per iteration, so map access races are exercised
// too) while a reader goroutine takes snapshots throughout. Run under
// `go test -race` (scripts/check.sh does).
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const (
		writers = 8
		perG    = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Snapshot reader runs until the writers finish.
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := reg.Snapshot()
			if c, ok := s.Counters["c"]; ok && c < 0 {
				t.Error("counter went negative")
				return
			}
			if _, err := json.Marshal(s); err != nil {
				t.Errorf("snapshot not marshalable: %v", err)
				return
			}
		}
	}()

	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				reg.Counter("c").Inc()
				reg.Counter("c2").Add(2)
				reg.Gauge("g").Set(float64(g))
				reg.Histogram("h", []float64{1, 10, 100}).Observe(float64(i % 200))
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()

	if got := reg.Counter("c").Value(); got != writers*perG {
		t.Errorf("counter c = %d, want %d", got, writers*perG)
	}
	if got := reg.Counter("c2").Value(); got != 2*writers*perG {
		t.Errorf("counter c2 = %d, want %d", got, 2*writers*perG)
	}
	h := reg.Histogram("h", nil)
	if got := h.Count(); got != writers*perG {
		t.Errorf("histogram count = %d, want %d", got, writers*perG)
	}
	snap := h.Snapshot()
	var bucketTotal int64
	for _, b := range snap.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != writers*perG {
		t.Errorf("bucket total = %d, want %d", bucketTotal, writers*perG)
	}
	if snap.Buckets[len(snap.Buckets)-1].UpperBound != "+Inf" {
		t.Errorf("last bucket bound = %q, want +Inf", snap.Buckets[len(snap.Buckets)-1].UpperBound)
	}
}

// TestHistogramSnapshotConsistent is the torn-total regression test:
// under concurrent writers, every snapshot's buckets must sum exactly
// to its Count. (Before the fix, Count was read from the separate
// total before the buckets, so a snapshot could report fewer — or
// more — observations than its buckets held.)
func TestHistogramSnapshotConsistent(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	const writers, perG = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var sum int64
			for _, b := range s.Buckets {
				sum += b.Count
			}
			if sum != s.Count {
				t.Errorf("torn snapshot: buckets sum %d != count %d", sum, s.Count)
				return
			}
		}
	}()
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(i % 200))
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()
	if s := h.Snapshot(); s.Count != writers*perG {
		t.Errorf("final count = %d, want %d", s.Count, writers*perG)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 100, 1000} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	// Bucket semantics: value v lands in the first bucket with bound >= v.
	want := []int64{2, 2, 2, 1} // {0.5,1}, {5,10}, {50,100}, {1000}
	for i, b := range snap.Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket %d (le %s) = %d, want %d", i, b.UpperBound, b.Count, want[i])
		}
	}
	if snap.Count != 7 {
		t.Errorf("count = %d, want 7", snap.Count)
	}
	if math.Abs(snap.Sum-1166.5) > 1e-9 {
		t.Errorf("sum = %g, want 1166.5", snap.Sum)
	}
}

// TestNilSafety pins the package's core ergonomic promise: every handle
// works (as a no-op) when nil, so instrumentation points never branch.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	var rec *Recorder
	var sp *Span
	var c *Counter
	var g *Gauge
	var h *Histogram

	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter has nonzero value")
	}
	g.Set(3)
	if g.Value() != 0 {
		t.Error("nil gauge has nonzero value")
	}
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram recorded something")
	}
	_ = h.Snapshot()

	if reg.Counter("x") != nil || reg.Gauge("x") != nil || reg.Histogram("x", nil) != nil {
		t.Error("nil registry returned non-nil metric")
	}
	_ = reg.Snapshot()
	reg.PublishExpvar("nil-reg")

	if rec.StartSpan("x") != nil {
		t.Error("nil recorder returned non-nil span")
	}
	if rec.Registry() != nil {
		t.Error("nil recorder returned non-nil registry")
	}
	if rec.Spans() != nil {
		t.Error("nil recorder returned spans")
	}
	rec.PublishExpvar("nil-rec")
	_ = rec.Manifest("tool", 1, 2, 3)

	sp.AddItems(10)
	sp.End()
	if sp.StartChild("x") != nil {
		t.Error("nil span returned non-nil child")
	}
	if sp.Items() != 0 {
		t.Error("nil span has items")
	}
	_ = sp.Snapshot()

	var srv *Server
	if srv.Addr() != "" {
		t.Error("nil server has address")
	}
	if err := srv.Close(); err != nil {
		t.Errorf("nil server close: %v", err)
	}
}

func TestRegistryIdempotentLookup(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("a") != reg.Counter("a") {
		t.Error("same counter name returned different counters")
	}
	if reg.Gauge("a") != reg.Gauge("a") {
		t.Error("same gauge name returned different gauges")
	}
	if reg.Histogram("a", []float64{1}) != reg.Histogram("a", []float64{2}) {
		t.Error("same histogram name returned different histograms")
	}
}
