package telemetry

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// drain uninstalls any tracer a test left behind.
func drainTracer(t *testing.T) {
	t.Helper()
	t.Cleanup(func() { SetTracer(nil) })
}

func TestTracerRecordsAndOrders(t *testing.T) {
	drainTracer(t)
	tr := NewTracer(4, 64)
	SetTracer(tr)

	base := time.Now()
	EmitSpan(EvStage, 0, "alpha", base, 5*time.Millisecond, 10, 0)
	EmitSpan(EvWorker, 2, "worker", base.Add(time.Millisecond), 2*time.Millisecond, 1, 0)
	EmitInstant(EvGC, 0, "gc", 3, 12345)

	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("Events: got %d, want 3", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("events out of order at %d: %d < %d", i, evs[i].TS, evs[i-1].TS)
		}
	}
	var haveStage, haveWorker, haveGC bool
	for _, ev := range evs {
		switch ev.Kind {
		case EvStage:
			haveStage = true
			if ev.Name != "alpha" || ev.Arg1 != 10 || ev.Dur != int64(5*time.Millisecond) {
				t.Fatalf("stage event mangled: %+v", ev)
			}
		case EvWorker:
			haveWorker = true
			if ev.Lane != 2 {
				t.Fatalf("worker event lane: got %d, want 2", ev.Lane)
			}
		case EvGC:
			haveGC = true
			if ev.Arg1 != 3 || ev.Arg2 != 12345 {
				t.Fatalf("gc event args mangled: %+v", ev)
			}
		}
	}
	if !haveStage || !haveWorker || !haveGC {
		t.Fatalf("missing kinds: stage=%v worker=%v gc=%v", haveStage, haveWorker, haveGC)
	}
	if got := tr.Recorded(); got != 3 {
		t.Fatalf("Recorded: got %d, want 3", got)
	}
	if got := tr.Dropped(); got != 0 {
		t.Fatalf("Dropped: got %d, want 0", got)
	}
}

// TestTracerOverflowDropsOldest pins the ring-buffer overflow
// semantics: a full lane overwrites its oldest events (the retained
// window is the most recent capacity events) and recording never
// fails or blocks.
func TestTracerOverflowDropsOldest(t *testing.T) {
	drainTracer(t)
	const capacity = 8
	tr := NewTracer(1, capacity)
	SetTracer(tr)

	base := time.Now()
	const emitted = 20
	for i := 0; i < emitted; i++ {
		EmitSpan(EvStage, 0, "s", base.Add(time.Duration(i)*time.Millisecond), time.Millisecond, int64(i), 0)
	}

	evs := tr.Events()
	if len(evs) != capacity {
		t.Fatalf("retained %d events, want %d", len(evs), capacity)
	}
	// Oldest dropped: the survivors are exactly the last `capacity`.
	for i, ev := range evs {
		want := int64(emitted - capacity + i)
		if ev.Arg1 != want {
			t.Fatalf("event %d: Arg1=%d, want %d (oldest should be dropped)", i, ev.Arg1, want)
		}
	}
	if got := tr.Recorded(); got != emitted {
		t.Fatalf("Recorded: got %d, want %d", got, emitted)
	}
	if got := tr.Dropped(); got != emitted-capacity {
		t.Fatalf("Dropped: got %d, want %d", got, emitted-capacity)
	}
}

// TestTracerOverflowNonBlocking floods a tiny tracer from many
// goroutines; every Emit must return (no blocking on a full ring) and
// the retained window must stay within capacity. Run under -race this
// also proves the lane locking is sound.
func TestTracerOverflowNonBlocking(t *testing.T) {
	drainTracer(t)
	tr := NewTracer(2, 16)
	SetTracer(tr)

	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				EmitSpan(EvShard, g%3, "shard", time.Now(), time.Microsecond, int64(i), 0)
			}
		}(g)
	}
	wg.Wait()

	if got := tr.Recorded(); got != goroutines*perG {
		t.Fatalf("Recorded: got %d, want %d", got, goroutines*perG)
	}
	if got := len(tr.Events()); got > 2*16 {
		t.Fatalf("retained %d events, want <= %d", got, 2*16)
	}
	if tr.Dropped() != int64(goroutines*perG-len(tr.Events())) {
		t.Fatalf("Dropped=%d inconsistent with retained=%d", tr.Dropped(), len(tr.Events()))
	}
}

// TestEmitDisabledZeroAlloc pins the disabled-path cost: with no
// tracer installed, Emit* must not allocate (it is a pointer load and
// a branch).
func TestEmitDisabledZeroAlloc(t *testing.T) {
	SetTracer(nil)
	start := time.Now()
	if allocs := testing.AllocsPerRun(100, func() {
		EmitSpan(EvStage, 0, "s", start, time.Millisecond, 1, 2)
		EmitInstant(EvGC, 0, "gc", 1, 2)
	}); allocs != 0 {
		t.Fatalf("disabled Emit allocates %.1f/op, want 0", allocs)
	}
}

// TestEmitEnabledZeroAlloc pins the enabled record path: writing into
// the preallocated ring must not allocate either.
func TestEmitEnabledZeroAlloc(t *testing.T) {
	drainTracer(t)
	tr := NewTracer(2, 1024)
	SetTracer(tr)
	start := time.Now()
	if allocs := testing.AllocsPerRun(100, func() {
		EmitSpan(EvShard, 1, "shard", start, time.Millisecond, 1, 2)
	}); allocs != 0 {
		t.Fatalf("enabled Emit allocates %.1f/op, want 0", allocs)
	}
}

func TestSpanEndEmitsStageEvent(t *testing.T) {
	drainTracer(t)
	tr := NewTracer(1, 64)
	SetTracer(tr)

	rec := NewRecorder(nil)
	s := rec.StartSpan("generate")
	s.AddItems(42)
	s.End()
	s.End() // idempotent: must not double-emit

	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events after double End, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Kind != EvStage || ev.Name != "generate" || ev.Arg1 != 42 {
		t.Fatalf("stage event mangled: %+v", ev)
	}
}

func TestChromeTraceExport(t *testing.T) {
	drainTracer(t)
	tr := NewTracer(3, 64)
	SetTracer(tr)
	base := time.Now()
	EmitSpan(EvStage, 0, "grade", base, 3*time.Millisecond, 100, 0)
	EmitSpan(EvWorker, 1, "worker", base, 2*time.Millisecond, 0, 0)
	EmitSpan(EvShard, 2, "shard", base, time.Millisecond, 5, 4096)
	EmitInstant(EvGC, 0, "gc", 1, 1000)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v", err)
	}
	threadNames := map[int]string{}
	var phases = map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev.Ph]++
		if ev.Name == "thread_name" && ev.Ph == "M" {
			threadNames[ev.TID] = ev.Args["name"].(string)
		}
		if ev.PID != 1 {
			t.Fatalf("event pid=%d, want 1: %+v", ev.PID, ev)
		}
	}
	if phases["X"] != 3 {
		t.Fatalf("complete events: got %d, want 3", phases["X"])
	}
	if phases["i"] != 1 {
		t.Fatalf("instant events: got %d, want 1", phases["i"])
	}
	if threadNames[0] != "pipeline" || threadNames[1] != "worker-0" || threadNames[2] != "worker-1" {
		t.Fatalf("thread_name metadata wrong: %v", threadNames)
	}
	// Shard events carry their per-worker tid and shard args.
	for _, ev := range doc.TraceEvents {
		if ev.Cat == "shard" {
			if ev.TID != 2 {
				t.Fatalf("shard event tid=%d, want 2", ev.TID)
			}
			if ev.Args["shard"].(float64) != 5 || ev.Args["items"].(float64) != 4096 {
				t.Fatalf("shard args mangled: %v", ev.Args)
			}
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	drainTracer(t)
	tr := NewTracer(1, 16)
	SetTracer(tr)
	EmitInstant(EvGC, 0, "gc", 2, 99)
	EmitSpan(EvBatch, 0, "grade-batch", time.Now(), time.Millisecond, 199, 7)

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		if _, ok := obj["kind"]; !ok {
			t.Fatalf("line %d missing kind: %s", i, line)
		}
	}
}

func TestWriteTraceFileByExtension(t *testing.T) {
	drainTracer(t)
	tr := NewTracer(1, 16)
	SetTracer(tr)
	EmitInstant(EvGC, 0, "gc", 1, 1)

	dir := t.TempDir()
	chrome := filepath.Join(dir, "out.trace.json")
	jsonl := filepath.Join(dir, "out.trace.jsonl")
	if err := WriteTraceFile(chrome, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteTraceFile(jsonl, tr); err != nil {
		t.Fatal(err)
	}
	cdata, _ := os.ReadFile(chrome)
	var doc map[string]any
	if err := json.Unmarshal(cdata, &doc); err != nil {
		t.Fatalf(".json export not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal(".json export missing traceEvents")
	}
	jdata, _ := os.ReadFile(jsonl)
	line := strings.SplitN(strings.TrimSpace(string(jdata)), "\n", 2)[0]
	var obj map[string]any
	if err := json.Unmarshal([]byte(line), &obj); err != nil {
		t.Fatalf(".jsonl export first line not valid JSON: %v", err)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Events() != nil || tr.Recorded() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer accessors not inert")
	}
	tr.record(0, TraceEvent{})
}
