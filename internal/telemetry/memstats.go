package telemetry

import (
	"runtime"
	"sync"
	"time"
)

// StartMemSampler launches a goroutine that samples runtime.ReadMemStats
// every interval into the given gauges: heapAlloc receives the live heap
// bytes, gcCount the cumulative completed GC cycles. When a tracer is
// installed, each sample that observes new GC cycles also emits an EvGC
// instant event, so collections appear as marks on the trace timeline.
// The returned stop function takes one final sample and halts the
// goroutine; it is idempotent.
//
// ReadMemStats briefly stops the world (microseconds), so intervals
// below ~100ms buy resolution with measurable overhead; the samplers in
// this repository use 250ms. Sampling observes only — it never touches
// pipeline state, so generated data is unchanged with it on or off.
func StartMemSampler(heapAlloc, gcCount *Gauge, interval time.Duration) (stop func()) {
	var lastGC uint32
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heapAlloc.Set(float64(ms.HeapAlloc))
		gcCount.Set(float64(ms.NumGC))
		if ms.NumGC > lastGC {
			lastGC = ms.NumGC
			EmitInstant(EvGC, 0, "gc", int64(ms.NumGC), int64(ms.PauseTotalNs))
		}
	}
	sample()
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				sample()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
			sample()
		})
	}
}
