package telemetry

import (
	"runtime"
	"time"
)

// StartMemSampler launches a goroutine that samples runtime.ReadMemStats
// every interval into the given gauges: heapAlloc receives the live heap
// bytes, gcCount the cumulative completed GC cycles. The returned stop
// function takes one final sample and halts the goroutine.
//
// ReadMemStats briefly stops the world (microseconds), so intervals
// below ~100ms buy resolution with measurable overhead; the samplers in
// this repository use 250ms. Sampling observes only — it never touches
// pipeline state, so generated data is unchanged with it on or off.
func StartMemSampler(heapAlloc, gcCount *Gauge, interval time.Duration) (stop func()) {
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heapAlloc.Set(float64(ms.HeapAlloc))
		gcCount.Set(float64(ms.NumGC))
	}
	sample()
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				sample()
			}
		}
	}()
	return func() {
		close(done)
		<-finished
		sample()
	}
}
