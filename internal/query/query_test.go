package query_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"fpstudy/internal/colstore"
	"fpstudy/internal/query"
	"fpstudy/internal/quiz"
	"fpstudy/internal/survey"
)

// randomAnswer draws a random answer for q, exercising every storage
// path: codes, free-text references, verbatim (shuffled) multi lists,
// and free-text multi additions.
func randomAnswer(rng *rand.Rand, q survey.Question) (survey.Answer, bool) {
	switch q.Kind {
	case survey.TrueFalse:
		tf := []string{survey.AnswerTrue, survey.AnswerFalse, survey.AnswerDontKnow}
		return survey.Answer{Choice: tf[rng.Intn(len(tf))]}, true
	case survey.Likert:
		return survey.Answer{Level: 1 + rng.Intn(q.Scale)}, true
	case survey.SingleChoice:
		if rng.Intn(8) == 0 {
			return survey.Answer{Choice: "write-in option &<js>"}, true
		}
		return survey.Answer{Choice: q.Options[rng.Intn(len(q.Options))]}, true
	case survey.MultiChoice:
		var choices []string
		for _, o := range q.Options {
			if rng.Intn(3) == 0 {
				choices = append(choices, o)
			}
		}
		switch rng.Intn(4) {
		case 0:
			if len(choices) > 1 {
				// Verbatim path: non-canonical order spills the whole list.
				j := rng.Intn(len(choices) - 1)
				choices[j], choices[j+1] = choices[j+1], choices[j]
			}
		case 1:
			choices = append(choices, "Befunge-93", "INTERCAL")
		}
		if choices == nil {
			return survey.Answer{}, false
		}
		return survey.Answer{Choices: choices}, true
	}
	return survey.Answer{}, false
}

// randomCohort builds a seeded-random columnar cohort over the quiz
// instrument, including spill paths.
func randomCohort(t *testing.T, rng *rand.Rand, n int) *colstore.Dataset {
	t.Helper()
	ins := quiz.Instrument()
	ds := &survey.Dataset{Instrument: ins.Title, Version: ins.Version,
		Responses: make([]survey.Response, n)}
	for i := range ds.Responses {
		r := &ds.Responses[i]
		r.Answers = map[string]survey.Answer{}
		for _, q := range ins.Questions() {
			if rng.Intn(5) == 0 {
				continue // unanswered
			}
			if a, ok := randomAnswer(rng, q); ok {
				r.Answers[q.ID] = a
			}
		}
	}
	ds.Anonymize()
	cols, err := colstore.FromSurvey(quiz.Columns(), ds)
	if err != nil {
		t.Fatalf("FromSurvey: %v", err)
	}
	return cols
}

// sources returns the in-memory and streaming views of the same
// cohort (the shard is encoded to bytes and re-opened).
func sources(t *testing.T, d *colstore.Dataset) (mem, shard query.Source) {
	t.Helper()
	var buf bytes.Buffer
	if err := d.EncodeBinary(&buf, colstore.IOOptions{}); err != nil {
		t.Fatalf("EncodeBinary: %v", err)
	}
	sr, err := colstore.NewShardReader(d.Schema, bytes.NewReader(buf.Bytes()), int64(buf.Len()), colstore.IOOptions{})
	if err != nil {
		t.Fatalf("NewShardReader: %v", err)
	}
	return query.NewDatasetSource(d), query.NewShardSource(sr)
}

// effectiveMask rebuilds a row's effective multi-choice option bitset
// from the materialized label list — the reference the U64 kernels
// (raw masks plus verbatim patches) must reproduce.
func effectiveMask(d *colstore.Dataset, ci, i int) uint64 {
	c := d.Schema.Column(ci)
	var mask uint64
	for _, lbl := range d.MultiChoices(ci, i) {
		if code, ok := c.OptionCode(lbl); ok {
			mask |= 1 << uint(code-1)
		}
	}
	return mask
}

// selectedRows runs a filter and returns the selected row indices in
// order, pinning the whole selection bitmap (not just its count).
func selectedRows(t *testing.T, src query.Source, filter []query.Predicate, workers int, n int) []float64 {
	t.Helper()
	idx := make([]float64, n)
	for i := range idx {
		idx[i] = float64(i)
	}
	res, err := query.RunCollect(src, query.Query{
		Filter: filter,
		Values: []query.Value{query.SliceValue{Vals: idx}},
	}, workers)
	if err != nil {
		t.Fatalf("RunCollect: %v", err)
	}
	return res.Groups[0]
}

var workerCounts = []int{1, 4, 16}

// TestPredicateKernelsVsReference pins every predicate kernel against
// a naive row loop on seeded-random cohorts (free text and verbatim
// multi-choice spills included), across worker counts and both source
// kinds, selection-exact (row indices, not just counts).
func TestPredicateKernelsVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := quiz.Columns()
	tfCol := s.MustColumnIndex(quiz.CoreQuestions()[0].ID)
	likCol := s.MustColumnIndex("susp.invalid")
	sglCol := s.MustColumnIndex(quiz.BGArea)
	mulCol := s.MustColumnIndex(quiz.BGInformal)

	for _, n := range []int{1, 63, 64, 65, 200, 8192, 8193} {
		d := randomCohort(t, rng, n)
		mem, shard := sources(t, d)
		cases := []struct {
			name  string
			pred  query.Predicate
			match func(i int) bool
		}{
			{"u8eq-true", query.U8Eq{Col: tfCol, Code: colstore.TFTrue},
				func(i int) bool { return d.TF(tfCol, i) == colstore.TFTrue }},
			{"u8eq-unanswered", query.U8Eq{Col: tfCol, Code: colstore.TFUnanswered},
				func(i int) bool { return d.TF(tfCol, i) == colstore.TFUnanswered }},
			{"u8ne-false", query.U8Ne{Col: tfCol, Code: colstore.TFFalse},
				func(i int) bool { return d.TF(tfCol, i) != colstore.TFFalse }},
			{"u8range-2-4", query.U8Range{Col: likCol, Lo: 2, Hi: 4},
				func(i int) bool { lv := d.LikertLevel(likCol, i); return lv >= 2 && lv <= 4 }},
			{"i32set", query.I32SetOf(sglCol, 1, 3),
				func(i int) bool { c := d.SingleCode(sglCol, i); return c == 1 || c == 3 }},
			{"i32set-unanswered", query.I32SetOf(sglCol, 0),
				func(i int) bool { return d.SingleCode(sglCol, i) == 0 }},
			{"i32ne", query.I32Ne{Col: sglCol, Code: 2},
				func(i int) bool { return d.SingleCode(sglCol, i) != 2 }},
			{"u64any", query.U64Any{Col: mulCol, Mask: 0b101},
				func(i int) bool { return effectiveMask(d, mulCol, i)&0b101 != 0 }},
			{"u64all", query.U64All{Col: mulCol, Mask: 0b11},
				func(i int) bool { return effectiveMask(d, mulCol, i)&0b11 == 0b11 }},
			{"conjunction", nil, func(i int) bool {
				return d.TF(tfCol, i) == colstore.TFTrue && effectiveMask(d, mulCol, i)&1 != 0
			}},
		}
		for _, tc := range cases {
			filter := []query.Predicate{tc.pred}
			if tc.pred == nil {
				filter = []query.Predicate{
					query.U8Eq{Col: tfCol, Code: colstore.TFTrue},
					query.U64Any{Col: mulCol, Mask: 1},
				}
			}
			var want []float64
			for i := 0; i < n; i++ {
				if tc.match(i) {
					want = append(want, float64(i))
				}
			}
			for _, w := range workerCounts {
				for srcName, src := range map[string]query.Source{"mem": mem, "shard": shard} {
					got := selectedRows(t, src, filter, w, n)
					if len(got) == 0 && len(want) == 0 {
						continue
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("n=%d %s %s workers=%d: selection mismatch\n got %v\nwant %v",
							n, tc.name, srcName, w, got, want)
					}
				}
			}
		}
	}
}

// TestGroupedAggregatesVsReference pins Run's grouped count/sum/mean
// against a sequential row loop: single-choice group-by of a Likert
// value and a derived quiz score, empty groups and unanswered rows
// included, bit-identical at every worker count and on both sources.
func TestGroupedAggregatesVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	s := quiz.Columns()
	keyCi := s.MustColumnIndex(quiz.BGFormalTraining)
	keyCol := s.Column(keyCi)
	likCi := s.MustColumnIndex("susp.overflow")

	for _, n := range []int{17, 9000} {
		d := randomCohort(t, rng, n)
		mem, shard := sources(t, d)
		scoreVal, err := quiz.QueryValue(s, "core.score")
		if err != nil {
			t.Fatalf("QueryValue: %v", err)
		}
		q := query.Query{
			Key:    query.SingleKey{Col: keyCi, Options: keyCol.Options},
			Values: []query.Value{query.LikertValue{Col: likCi}, scoreVal},
		}
		card := len(keyCol.Options) + 2

		wantCount := make([]int64, card)
		wantN := [][]int64{make([]int64, card), make([]int64, card)}
		wantSum := [][]float64{make([]float64, card), make([]float64, card)}
		for i := 0; i < n; i++ {
			k := d.SingleCode(keyCi, i)
			if k < 0 {
				k = int32(card - 1)
			}
			wantCount[k]++
			if lv := d.LikertLevel(likCi, i); lv > 0 {
				wantN[0][k]++
				wantSum[0][k] += float64(lv)
			}
			core, _, _ := quiz.ScoreColumnsAt(d, i)
			wantN[1][k]++
			wantSum[1][k] += float64(core.Correct)
		}

		for _, w := range workerCounts {
			for srcName, src := range map[string]query.Source{"mem": mem, "shard": shard} {
				res, err := query.Run(src, q, w)
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if !reflect.DeepEqual(res.Count, wantCount) ||
					!reflect.DeepEqual(res.N, wantN) ||
					!reflect.DeepEqual(res.Sum, wantSum) {
					t.Fatalf("n=%d %s workers=%d: grouped aggregates diverge from row loop", n, srcName, w)
				}
				for k := 0; k < card; k++ {
					if res.N[0][k] == 0 && res.Mean(0, k) != 0 {
						t.Fatalf("empty group %d should have mean 0", k)
					}
				}
			}
		}
	}
}

// TestAllFalseSelection pins the degenerate filter: a predicate
// matching nothing yields zero counts, zero sums, and empty collected
// groups.
func TestAllFalseSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	d := randomCohort(t, rng, 500)
	s := d.Schema
	mem, shard := sources(t, d)
	ci := s.MustColumnIndex(quiz.BGArea)
	none := []query.Predicate{query.I32Set{Col: ci, Mask: 0}}
	for _, src := range []query.Source{mem, shard} {
		res, err := query.Run(src, query.Query{
			Filter: none,
			Key:    query.SingleKey{Col: ci, Options: s.Column(ci).Options},
			Values: []query.Value{query.LikertValue{Col: s.MustColumnIndex("susp.invalid")}},
		}, 4)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if res.TotalCount() != 0 {
			t.Fatalf("all-false filter selected %d rows", res.TotalCount())
		}
		for vi := range res.Sum {
			for k := range res.Sum[vi] {
				if res.Sum[vi][k] != 0 || res.N[vi][k] != 0 {
					t.Fatalf("all-false filter accumulated sums")
				}
			}
		}
		col, err := query.RunCollect(src, query.Query{
			Filter: none,
			Values: []query.Value{query.LikertValue{Col: s.MustColumnIndex("susp.invalid")}},
		}, 4)
		if err != nil {
			t.Fatalf("RunCollect: %v", err)
		}
		if len(col.Groups[0]) != 0 {
			t.Fatalf("all-false filter collected %d values", len(col.Groups[0]))
		}
	}
}

// TestRunCollectOrder pins RunCollect's respondent-order contract: the
// collected sequences are bitwise identical to a sequential row loop,
// at every worker count, on both sources.
func TestRunCollectOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	s := quiz.Columns()
	keyCi := s.MustColumnIndex(quiz.BGRole)
	likCi := s.MustColumnIndex("susp.denorm")
	d := randomCohort(t, rng, 9001)
	mem, shard := sources(t, d)
	card := len(s.Column(keyCi).Options) + 2

	want := make([][]float64, card)
	for i := 0; i < d.Len(); i++ {
		lv := d.LikertLevel(likCi, i)
		if lv == 0 {
			continue
		}
		k := d.SingleCode(keyCi, i)
		if k < 0 {
			k = int32(card - 1)
		}
		want[k] = append(want[k], float64(lv))
	}

	q := query.Query{
		Key:    query.SingleKey{Col: keyCi, Options: s.Column(keyCi).Options},
		Values: []query.Value{query.LikertValue{Col: likCi}},
	}
	for _, w := range workerCounts {
		for srcName, src := range map[string]query.Source{"mem": mem, "shard": shard} {
			res, err := query.RunCollect(src, q, w)
			if err != nil {
				t.Fatalf("RunCollect: %v", err)
			}
			for k := range want {
				got := res.Groups[k]
				if len(got) == 0 && len(want[k]) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want[k]) {
					t.Fatalf("%s workers=%d group %d: collected sequence diverges", srcName, w, k)
				}
			}
		}
	}
}

// TestTallyVsReference pins the vectorized Tally against the row-loop
// semantics of survey.Instrument.Tally for every question kind,
// spills included, on both sources.
func TestTallyVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for _, n := range []int{40, 8300} {
		d := randomCohort(t, rng, n)
		s := d.Schema
		mem, shard := sources(t, d)
		for ci := 0; ci < s.NumColumns(); ci++ {
			c := s.Column(ci)
			want := map[string]int{}
			for i := 0; i < n; i++ {
				switch c.Kind {
				case survey.TrueFalse:
					switch d.TF(ci, i) {
					case colstore.TFUnanswered:
						want["unanswered"]++
					case colstore.TFTrue:
						want[survey.AnswerTrue]++
					case colstore.TFFalse:
						want[survey.AnswerFalse]++
					default:
						want[survey.AnswerDontKnow]++
					}
				case survey.Likert:
					if lv := d.LikertLevel(ci, i); lv == 0 {
						want["unanswered"]++
					} else {
						want[strconv.Itoa(lv)]++
					}
				case survey.SingleChoice:
					if lbl := d.SingleLabel(ci, i); lbl == "" {
						want["unanswered"]++
					} else {
						want[lbl]++
					}
				case survey.MultiChoice:
					if d.MultiUnanswered(ci, i) {
						want["unanswered"]++
					} else {
						d.ForEachMultiChoice(ci, i, func(label string) { want[label]++ })
					}
				}
			}
			for _, w := range workerCounts {
				for srcName, src := range map[string]query.Source{"mem": mem, "shard": shard} {
					got, err := query.Tally(src, c.ID, w)
					if err != nil {
						t.Fatalf("Tally(%s): %v", c.ID, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("n=%d %s workers=%d question %s: tally diverges\n got %v\nwant %v",
							n, srcName, w, c.ID, got, want)
					}
				}
			}
		}
	}
}

// TestEmptyCohort pins the n=0 edge: zero blocks, zero counts, no
// panics.
func TestEmptyCohort(t *testing.T) {
	ins := quiz.Instrument()
	ds := &survey.Dataset{Instrument: ins.Title, Version: ins.Version}
	d, err := colstore.FromSurvey(quiz.Columns(), ds)
	if err != nil {
		t.Fatalf("FromSurvey: %v", err)
	}
	src := query.NewDatasetSource(d)
	res, err := query.Run(src, query.Query{}, 4)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.TotalCount() != 0 {
		t.Fatalf("empty cohort counted %d rows", res.TotalCount())
	}
	tal, err := query.Tally(src, quiz.BGArea, 4)
	if err != nil {
		t.Fatalf("Tally: %v", err)
	}
	if len(tal) != 0 {
		t.Fatalf("empty cohort tallied %v", tal)
	}
}

// TestBitmap pins the selection bitmap primitives, including tail
// masking at non-multiple-of-64 lengths.
func TestBitmap(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 8192} {
		m := query.NewBitmap(n)
		if m.Count() != n {
			t.Fatalf("fresh bitmap n=%d counts %d", n, m.Count())
		}
		var rows []int
		m.ForEach(func(j int) { rows = append(rows, j) })
		if len(rows) != n {
			t.Fatalf("ForEach visited %d of %d", len(rows), n)
		}
		for i, j := range rows {
			if i != j {
				t.Fatalf("ForEach order broken at %d", i)
			}
		}
	}
	// Reuse shrinks and regrows cleanly.
	m := query.NewBitmap(130)
	m.Reset(7)
	if m.Len() != 7 || m.Count() != 7 {
		t.Fatalf("reset to 7: len=%d count=%d", m.Len(), m.Count())
	}
	if m.Test(6) != true {
		t.Fatalf("row 6 should be selected")
	}
}
