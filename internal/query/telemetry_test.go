package query_test

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"fpstudy/internal/query"
	"fpstudy/internal/quiz"
)

// TestWorkHookCounters pins the work-counter semantics: RowsScanned
// fires once per loaded block with its row count, and BlockSkipped
// fires exactly when an aggregation pass is elided for an
// empty-selection block — on both Run and RunCollect.
func TestWorkHookCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := randomCohort(t, rng, 700)
	s := d.Schema
	src := query.NewDatasetSource(d)
	val := []query.Value{query.LikertValue{Col: s.MustColumnIndex("susp.invalid")}}
	none := []query.Predicate{query.I32Set{Col: s.MustColumnIndex(quiz.BGArea), Mask: 0}}

	var rows, skipped atomic.Int64
	query.SetWorkHook(&query.WorkHook{
		RowsScanned:  func(n int) { rows.Add(int64(n)) },
		BlockSkipped: func() { skipped.Add(1) },
	})
	defer query.SetWorkHook(nil)

	if _, err := query.Run(src, query.Query{Values: val}, 4); err != nil {
		t.Fatal(err)
	}
	if rows.Load() != 700 || skipped.Load() != 0 {
		t.Fatalf("unfiltered: rows=%d skipped=%d, want 700/0", rows.Load(), skipped.Load())
	}

	if _, err := query.Run(src, query.Query{Filter: none, Values: val}, 4); err != nil {
		t.Fatal(err)
	}
	if rows.Load() != 1400 || skipped.Load() != 1 {
		t.Fatalf("all-false Run: rows=%d skipped=%d, want 1400/1", rows.Load(), skipped.Load())
	}

	if _, err := query.RunCollect(src, query.Query{Filter: none, Values: val}, 4); err != nil {
		t.Fatal(err)
	}
	if rows.Load() != 2100 || skipped.Load() != 2 {
		t.Fatalf("all-false RunCollect: rows=%d skipped=%d, want 2100/2", rows.Load(), skipped.Load())
	}

	// A count-only query has no aggregation pass to skip.
	if _, err := query.Run(src, query.Query{Filter: none}, 4); err != nil {
		t.Fatal(err)
	}
	if skipped.Load() != 2 {
		t.Fatalf("count-only query skipped %d blocks, want still 2", skipped.Load())
	}
}
