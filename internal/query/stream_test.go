package query_test

import (
	"bufio"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"fpstudy/internal/colstore"
	"fpstudy/internal/query"
	"fpstudy/internal/quiz"
	"fpstudy/internal/telemetry"
)

// bigShard synthesizes an n-respondent cohort directly in columnar
// form (deterministic, code-only answers) and writes it to a temp
// .fpds shard, returning the path and the in-memory dataset.
func bigShard(t *testing.T, n int) (string, *colstore.Dataset) {
	t.Helper()
	s := quiz.Columns()
	d := s.NewDataset("stream-test", n)
	likCi := s.MustColumnIndex("susp.invalid")
	valCi := s.MustColumnIndex("susp.overflow")
	sglCi := s.MustColumnIndex(quiz.BGContribSize)
	mulCi := s.MustColumnIndex(quiz.BGInformal)
	sglCard := int32(len(s.Column(sglCi).Options))
	for i := 0; i < n; i++ {
		// Cheap deterministic mix so every block has every group and
		// both filter outcomes.
		h := uint64(i)*2654435761 + 12345
		d.SetLikert(likCi, i, 1+int(h%5))
		d.SetLikert(valCi, i, 1+int((h>>8)%5))
		d.SetSingle(sglCi, i, int32((h>>16)%uint64(sglCard+1))) // 0 = unanswered
		d.SetMultiMask(mulCi, i, h&0b1111)
	}
	path := filepath.Join(t.TempDir(), "cohort.fpds")
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := d.EncodeBinary(bw, colstore.IOOptions{}); err != nil {
		t.Fatalf("EncodeBinary: %v", err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return path, d
}

// TestOutOfCoreBoundedMemory pins the engine's streaming contract: a
// filtered grouped aggregate over an on-disk shard allocates heap
// proportional to block size x workers, not to n — materializing just
// the three bound columns would cost ~13 bytes/row, and the scan must
// stay well under that — while reading only the bound columns' bytes
// off disk. The result must also be bit-identical to the in-memory
// engine and across worker counts.
func TestOutOfCoreBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("large streaming cohort")
	}
	const n = 600_000
	path, d := bigShard(t, n)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}

	s := d.Schema
	q := query.Query{
		Filter: []query.Predicate{
			query.U64Any{Col: s.MustColumnIndex(quiz.BGInformal), Mask: 0b11},
		},
		Key: query.SingleKey{Col: s.MustColumnIndex(quiz.BGContribSize),
			Options: s.Column(s.MustColumnIndex(quiz.BGContribSize)).Options},
		Values: []query.Value{query.LikertValue{Col: s.MustColumnIndex("susp.overflow")}},
	}

	want, err := query.Run(query.NewDatasetSource(d), q, 4)
	if err != nil {
		t.Fatalf("in-memory Run: %v", err)
	}

	reg := telemetry.NewRegistry()
	bytesRead := reg.Counter("test.bytes_read")
	sr, err := colstore.OpenShard(s, path, colstore.IOOptions{BytesRead: bytesRead})
	if err != nil {
		t.Fatalf("OpenShard: %v", err)
	}
	defer sr.Close()
	src := query.NewShardSource(sr)
	openBytes := bytesRead.Value() // header + arena read at open

	for _, w := range []int{1, 4, 16} {
		got, err := query.Run(src, q, w)
		if err != nil {
			t.Fatalf("streaming Run workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("streaming result diverges from in-memory at workers=%d", w)
		}
	}

	// Selective I/O: three bound columns (1+4+8 bytes/row) of a
	// ~30-column shard. Per scan that is ~7.8 MB against a file of
	// fi.Size(); three scans must still be far below reading the file
	// once per scan.
	scanned := bytesRead.Value() - openBytes
	if lim := 3 * fi.Size() / 2; scanned >= lim {
		t.Fatalf("3 scans read %d bytes; want < %d (file is %d — column scans must be selective)",
			scanned, lim, fi.Size())
	}

	// Bounded heap: allocations during one scan stay proportional to
	// block size x workers. Materializing the three bound columns alone
	// would allocate ~13 bytes/row = ~7.8 MB; the block-at-a-time scan
	// with 4 workers needs ~4 x (8192 x 13 + 64k raw) < 1 MB. Assert an
	// order of magnitude under the materialization floor.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := query.Run(src, q, 4); err != nil {
		t.Fatalf("measured Run: %v", err)
	}
	runtime.ReadMemStats(&after)
	alloc := after.TotalAlloc - before.TotalAlloc
	if limit := uint64(3 << 20); alloc >= limit {
		t.Fatalf("streaming scan at n=%d allocated %d bytes; want < %d (heap must track block size, not n)",
			n, alloc, limit)
	}
}
