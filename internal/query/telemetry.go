package query

import (
	"sync/atomic"
	"time"
)

// LatencyHook receives per-block query-engine timings: one callback
// per scan block, covering the block's load (zero-copy slice views in
// memory; a CRC-verified disk read when streaming), predicate
// evaluation, keying, and aggregation. Observation only; callbacks
// must be safe for concurrent use (blocks fan out across workers).
type LatencyHook struct {
	// Block fires after a scan block completes, with the block index,
	// its respondent count, and the wall duration.
	Block func(block, items int, d time.Duration)
}

// latencyHook holds the installed hook; one atomic load per scan plus
// a branch per block when uninstalled.
var latencyHook atomic.Pointer[LatencyHook]

// SetLatencyHook installs h as the process-wide query latency hook
// (nil uninstalls). Called by the telemetry wiring
// (internal/core.InstallPipelineTelemetry).
func SetLatencyHook(h *LatencyHook) { latencyHook.Store(h) }

// WorkHook receives query-engine work counters: how many rows each
// scan examined and how many blocks the aggregate path skipped
// outright because their selection came up empty. Observation only;
// callbacks must be safe for concurrent use.
type WorkHook struct {
	// RowsScanned fires once per loaded scan block with the block's
	// respondent count (rows the predicate/key kernels examined).
	RowsScanned func(n int)
	// BlockSkipped fires when an aggregation pass over a block is
	// elided because no row survived the filter — the value gather and
	// accumulate loops never run for that block.
	BlockSkipped func()
}

// workHook holds the installed work hook; same discipline as
// latencyHook (one atomic load per scan).
var workHook atomic.Pointer[WorkHook]

// SetWorkHook installs h as the process-wide query work hook (nil
// uninstalls).
func SetWorkHook(h *WorkHook) { workHook.Store(h) }

// blockSkipped reports one elided aggregation pass to the installed
// work hook.
func blockSkipped() {
	if wh := workHook.Load(); wh != nil && wh.BlockSkipped != nil {
		wh.BlockSkipped()
	}
}
