package query

import (
	"sync/atomic"
	"time"
)

// LatencyHook receives per-block query-engine timings: one callback
// per scan block, covering the block's load (zero-copy slice views in
// memory; a CRC-verified disk read when streaming), predicate
// evaluation, keying, and aggregation. Observation only; callbacks
// must be safe for concurrent use (blocks fan out across workers).
type LatencyHook struct {
	// Block fires after a scan block completes, with the block index,
	// its respondent count, and the wall duration.
	Block func(block, items int, d time.Duration)
}

// latencyHook holds the installed hook; one atomic load per scan plus
// a branch per block when uninstalled.
var latencyHook atomic.Pointer[LatencyHook]

// SetLatencyHook installs h as the process-wide query latency hook
// (nil uninstalls). Called by the telemetry wiring
// (internal/core.InstallPipelineTelemetry).
func SetLatencyHook(h *LatencyHook) { latencyHook.Store(h) }
