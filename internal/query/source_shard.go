package query

import (
	"fpstudy/internal/colstore"
	"fpstudy/internal/survey"
)

// ShardSource scans an FPDS shard on disk through a
// colstore.ShardReader, block at a time: the out-of-core twin of
// DatasetSource. Each scan worker's reader owns one block of typed
// scratch per bound column plus one raw I/O buffer, so a query's
// memory peaks at workers × columns × one block — independent of n.
// Safe for concurrent readers (the shard reader is read-only after
// open).
type ShardSource struct {
	sr      *colstore.ShardReader
	patches []map[int][]Patch
}

// NewShardSource wraps an open shard reader for querying. The caller
// keeps ownership of sr (and closes it after the last query).
func NewShardSource(sr *colstore.ShardReader) *ShardSource {
	return &ShardSource{
		sr:      sr,
		patches: computePatches(sr.Schema(), sr.ArenaStrings(), sr.MultiSpills),
	}
}

func (s *ShardSource) Schema() *colstore.Schema { return s.sr.Schema() }
func (s *ShardSource) Len() int                 { return s.sr.Len() }
func (s *ShardSource) ArenaStrings() []string   { return s.sr.ArenaStrings() }

func (s *ShardSource) MultiSpills(ci int) map[int]colstore.MultiSpill {
	return s.sr.MultiSpills(ci)
}

// NewReader returns a block cursor with its own decode scratch.
func (s *ShardSource) NewReader(cols []int) (BlockReader, error) {
	r := &shardBlockReader{
		src:  s,
		cols: cols,
		raw:  make([]byte, colstore.BlockScratchBytes),
	}
	schema := s.sr.Schema()
	r.blk.pos = make([]int16, schema.NumColumns())
	for i := range r.blk.pos {
		r.blk.pos[i] = -1
	}
	r.blk.u8 = make([][]uint8, len(cols))
	r.blk.i32 = make([][]int32, len(cols))
	r.blk.u64 = make([][]uint64, len(cols))
	r.blk.patches = make([][]Patch, len(cols))
	for slot, ci := range cols {
		r.blk.pos[ci] = int16(slot)
		switch schema.Column(ci).Kind {
		case survey.TrueFalse, survey.Likert:
			r.blk.u8[slot] = make([]uint8, BlockRows)
		case survey.SingleChoice:
			r.blk.i32[slot] = make([]int32, BlockRows)
		case survey.MultiChoice:
			r.blk.u64[slot] = make([]uint64, BlockRows)
		}
	}
	return r, nil
}

type shardBlockReader struct {
	src  *ShardSource
	cols []int
	raw  []byte
	blk  Block
}

func (r *shardBlockReader) Block(b int) (*Block, error) {
	s := r.src
	lo, hi := blockBounds(b, s.sr.Len())
	r.blk.Lo, r.blk.N = lo, hi-lo
	schema := s.sr.Schema()
	for slot, ci := range r.cols {
		var (
			u8d  []uint8
			i32d []int32
			u64d []uint64
		)
		switch schema.Column(ci).Kind {
		case survey.TrueFalse, survey.Likert:
			u8d = r.blk.u8[slot][:BlockRows]
		case survey.SingleChoice:
			i32d = r.blk.i32[slot][:BlockRows]
		case survey.MultiChoice:
			u64d = r.blk.u64[slot][:BlockRows]
		}
		n, err := s.sr.ReadBlock(ci, b, u8d, i32d, u64d, r.raw)
		if err != nil {
			return nil, err
		}
		switch schema.Column(ci).Kind {
		case survey.TrueFalse, survey.Likert:
			r.blk.u8[slot] = r.blk.u8[slot][:n]
		case survey.SingleChoice:
			r.blk.i32[slot] = r.blk.i32[slot][:n]
		case survey.MultiChoice:
			r.blk.u64[slot] = r.blk.u64[slot][:n]
			r.blk.patches[slot] = patchesAt(s.patches, ci, b)
		}
	}
	return &r.blk, nil
}
