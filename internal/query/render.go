package query

import (
	"fmt"
	"strings"
)

// Render formats the executed query as an aligned text table: one row
// per group that selected at least one respondent, with the parsed
// aggregate's column (count with percent-of-selected, or n and
// mean/sum of the value). Ungrouped queries render the single "all"
// row.
func (p *Parsed) Render(res *Result) string {
	var b strings.Builder
	total := res.TotalCount()
	switch p.Agg {
	case AggCount:
		fmt.Fprintf(&b, "%-60s %8s %7s\n", "group", "count", "pct")
		for k, label := range res.Labels {
			if res.Count[k] == 0 {
				continue
			}
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(res.Count[k]) / float64(total)
			}
			fmt.Fprintf(&b, "%-60s %8d %6.1f%%\n", label, res.Count[k], pct)
		}
		fmt.Fprintf(&b, "%-60s %8d\n", "total", total)
	default:
		col := "mean:" + p.ValueName
		if p.Agg == AggSum {
			col = "sum:" + p.ValueName
		}
		fmt.Fprintf(&b, "%-60s %8s %12s\n", "group", "n", col)
		for k, label := range res.Labels {
			if res.Count[k] == 0 {
				continue
			}
			v := res.Sum[0][k]
			if p.Agg == AggMean {
				v = res.Mean(0, k)
			}
			fmt.Fprintf(&b, "%-60s %8d %12.4f\n", label, res.N[0][k], v)
		}
	}
	return b.String()
}
