package query

import "math/bits"

// Bitmap is a selection vector over the rows of one block: bit j set
// means row j of the block is selected. Predicates AND their matches
// into it, so an empty filter list leaves every row selected.
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap allocates a bitmap sized for n rows.
func NewBitmap(n int) *Bitmap {
	m := &Bitmap{}
	m.Reset(n)
	return m
}

// Reset resizes the bitmap to n rows with every row selected, reusing
// the backing array when possible.
func (m *Bitmap) Reset(n int) {
	w := (n + 63) / 64
	if cap(m.words) < w {
		m.words = make([]uint64, w)
	}
	m.words = m.words[:w]
	m.n = n
	for i := range m.words {
		m.words[i] = ^uint64(0)
	}
	if tail := uint(n % 64); tail != 0 && w > 0 {
		m.words[w-1] = ^uint64(0) >> (64 - tail)
	}
}

// Len returns the number of rows the bitmap covers.
func (m *Bitmap) Len() int { return m.n }

// Test reports whether row j is selected.
func (m *Bitmap) Test(j int) bool {
	return m.words[j/64]&(1<<uint(j%64)) != 0
}

// Count returns the number of selected rows.
func (m *Bitmap) Count() int {
	c := 0
	for _, w := range m.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// ForEach calls fn(j) for every selected row, in ascending order.
func (m *Bitmap) ForEach(fn func(j int)) {
	for wi, w := range m.words {
		base := wi * 64
		for w != 0 {
			j := bits.TrailingZeros64(w)
			fn(base + j)
			w &^= 1 << uint(j)
		}
	}
}
