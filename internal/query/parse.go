package query

import (
	"fmt"
	"strconv"
	"strings"

	"fpstudy/internal/colstore"
	"fpstudy/internal/survey"
)

// Query expression grammar (the CLI surface of the engine):
//
//	expr   = filter "/" groupby "/" agg
//	filter = "" | term ("&" term)*
//	term   = question OP value
//	OP     = "=" | "!=" | ">=" | "<=" (Likert) | "~" | "~=" (multi-choice)
//	groupby= "" | question
//	agg    = "count" | "mean:" name | "sum:" name
//
// Values are answer labels: true/false/dontknow/unanswered for T/F
// questions (case-insensitive), an integer level (or "unanswered") for
// Likert, option labels for choice questions. "a|b" alternation is a
// set: equality-of-any for single choice, the test mask for
// multi-choice "~" (any selected) and "~=" (all selected). Aggregate
// names resolve to Likert questions (the mean level of answered rows)
// or through the caller's resolver (the quiz measures: core.score &c).
//
// Example: count respondents with formal training whose main role is
// software engineering, grouped by contributed-codebase size:
//
//	bg.formal_training!=None & bg.role=My main role is as a software engineer/bg.contrib_size/count

// Agg selects how a parsed query's value is reported per group.
type Agg int

const (
	AggCount Agg = iota
	AggMean
	AggSum
)

// ValueResolver resolves an aggregate value name the schema alone
// cannot (derived measures like quiz scores). It may be nil.
type ValueResolver func(name string) (Value, error)

// Parsed is a compiled query expression.
type Parsed struct {
	Query Query
	Agg   Agg
	// ValueName is the aggregate's value name ("" for count).
	ValueName string
}

// Parse compiles a filter/groupby/agg expression against a schema.
func Parse(s *colstore.Schema, expr string, resolve ValueResolver) (*Parsed, error) {
	// Split on the LAST two slashes: group-by question IDs and
	// aggregate names never contain "/", but filter option labels can
	// ("Discussed with coworkers/etc").
	j := strings.LastIndex(expr, "/")
	if j < 0 {
		return nil, fmt.Errorf("query: expression needs filter/groupby/agg (no %q in %q)", "/", expr)
	}
	i := strings.LastIndex(expr[:j], "/")
	if i < 0 {
		return nil, fmt.Errorf("query: expression needs filter/groupby/agg (only one %q in %q)", "/", expr)
	}
	parts := [3]string{expr[:i], expr[i+1 : j], expr[j+1:]}
	p := &Parsed{}

	if f := strings.TrimSpace(parts[0]); f != "" {
		for _, term := range strings.Split(f, "&") {
			pred, err := parseTerm(s, strings.TrimSpace(term))
			if err != nil {
				return nil, err
			}
			p.Query.Filter = append(p.Query.Filter, pred)
		}
	}

	if g := strings.TrimSpace(parts[1]); g != "" {
		ci, ok := s.ColumnIndex(g)
		if !ok {
			return nil, fmt.Errorf("query: unknown group-by question %q", g)
		}
		k, err := KeyerFor(s, ci)
		if err != nil {
			return nil, err
		}
		p.Query.Key = k
	}

	agg := strings.TrimSpace(parts[2])
	switch {
	case agg == "count":
		p.Agg = AggCount
	case strings.HasPrefix(agg, "mean:") || strings.HasPrefix(agg, "sum:"):
		kind, name, _ := strings.Cut(agg, ":")
		p.Agg = AggMean
		if kind == "sum" {
			p.Agg = AggSum
		}
		p.ValueName = strings.TrimSpace(name)
		v, err := resolveValue(s, p.ValueName, resolve)
		if err != nil {
			return nil, err
		}
		p.Query.Values = []Value{v}
	default:
		return nil, fmt.Errorf("query: unknown aggregate %q (want count, mean:<value>, or sum:<value>)", agg)
	}
	return p, nil
}

// resolveValue maps an aggregate name to a Value: Likert questions by
// ID, everything else through the resolver.
func resolveValue(s *colstore.Schema, name string, resolve ValueResolver) (Value, error) {
	if ci, ok := s.ColumnIndex(name); ok {
		if s.Column(ci).Kind != survey.Likert {
			return nil, fmt.Errorf("query: cannot aggregate %s question %q (only Likert levels)",
				s.Column(ci).Kind, name)
		}
		return LikertValue{Col: ci}, nil
	}
	if resolve != nil {
		return resolve(name)
	}
	return nil, fmt.Errorf("query: unknown aggregate value %q", name)
}

// ops in longest-first order so "!=" wins over "=" and "~=" over "~".
var ops = []string{">=", "<=", "!=", "~=", "=", "~"}

// parseTerm compiles one filter term.
func parseTerm(s *colstore.Schema, term string) (Predicate, error) {
	for _, op := range ops {
		i := strings.Index(term, op)
		if i < 0 {
			continue
		}
		qid := strings.TrimSpace(term[:i])
		val := strings.TrimSpace(term[i+len(op):])
		ci, ok := s.ColumnIndex(qid)
		if !ok {
			return nil, fmt.Errorf("query: unknown question %q in term %q", qid, term)
		}
		return compileTerm(s, ci, op, val, term)
	}
	return nil, fmt.Errorf("query: no operator in filter term %q (want =, !=, >=, <=, ~, or ~=)", term)
}

func compileTerm(s *colstore.Schema, ci int, op, val, term string) (Predicate, error) {
	c := s.Column(ci)
	switch c.Kind {
	case survey.TrueFalse:
		code, err := tfCode(val)
		if err != nil {
			return nil, fmt.Errorf("query: term %q: %w", term, err)
		}
		switch op {
		case "=":
			return U8Eq{Col: ci, Code: code}, nil
		case "!=":
			return U8Ne{Col: ci, Code: code}, nil
		}
		return nil, fmt.Errorf("query: term %q: operator %q not defined for true/false questions", term, op)

	case survey.Likert:
		if strings.EqualFold(val, "unanswered") {
			switch op {
			case "=":
				return U8Eq{Col: ci, Code: 0}, nil
			case "!=":
				return U8Ne{Col: ci, Code: 0}, nil
			}
			return nil, fmt.Errorf("query: term %q: operator %q not defined for unanswered", term, op)
		}
		lv, err := strconv.Atoi(val)
		if err != nil || lv < 1 || lv > c.Scale {
			return nil, fmt.Errorf("query: term %q: want a level 1..%d or unanswered", term, c.Scale)
		}
		switch op {
		case "=":
			return U8Eq{Col: ci, Code: uint8(lv)}, nil
		case "!=":
			return U8Ne{Col: ci, Code: uint8(lv)}, nil
		case ">=":
			return U8Range{Col: ci, Lo: uint8(lv), Hi: uint8(c.Scale)}, nil
		case "<=":
			// Excludes unanswered: a bound on the level presumes one.
			return U8Range{Col: ci, Lo: 1, Hi: uint8(lv)}, nil
		}
		return nil, fmt.Errorf("query: term %q: operator %q not defined for Likert questions", term, op)

	case survey.SingleChoice:
		switch op {
		case "=":
			codes, err := singleCodes(c, val)
			if err != nil {
				return nil, fmt.Errorf("query: term %q: %w", term, err)
			}
			return I32SetOf(ci, codes...), nil
		case "!=":
			if strings.Contains(val, "|") {
				return nil, fmt.Errorf("query: term %q: != takes a single label", term)
			}
			codes, err := singleCodes(c, val)
			if err != nil {
				return nil, fmt.Errorf("query: term %q: %w", term, err)
			}
			return I32Ne{Col: ci, Code: codes[0]}, nil
		}
		return nil, fmt.Errorf("query: term %q: operator %q not defined for single-choice questions", term, op)

	case survey.MultiChoice:
		mask, err := multiMask(c, val)
		if err != nil {
			return nil, fmt.Errorf("query: term %q: %w", term, err)
		}
		switch op {
		case "~":
			return U64Any{Col: ci, Mask: mask}, nil
		case "~=":
			return U64All{Col: ci, Mask: mask}, nil
		}
		return nil, fmt.Errorf("query: term %q: multi-choice questions use ~ (any selected) or ~= (all selected)", term)
	}
	return nil, fmt.Errorf("query: term %q: unsupported question kind", term)
}

// tfCode maps a true/false answer label to its code.
func tfCode(val string) (uint8, error) {
	switch strings.ToLower(val) {
	case "true":
		return colstore.TFTrue, nil
	case "false":
		return colstore.TFFalse, nil
	case "dontknow", "don't know":
		return colstore.TFDontKnow, nil
	case "unanswered":
		return colstore.TFUnanswered, nil
	}
	return 0, fmt.Errorf("want true, false, dontknow, or unanswered (got %q)", val)
}

// singleCodes maps a '|'-alternation of option labels to codes
// ("unanswered" → 0).
func singleCodes(c *colstore.Col, val string) ([]int32, error) {
	var codes []int32
	for _, lbl := range strings.Split(val, "|") {
		lbl = strings.TrimSpace(lbl)
		if strings.EqualFold(lbl, "unanswered") {
			codes = append(codes, 0)
			continue
		}
		code, ok := c.OptionCode(lbl)
		if !ok {
			return nil, fmt.Errorf("question %q has no option %q", c.ID, lbl)
		}
		codes = append(codes, code)
	}
	return codes, nil
}

// multiMask maps a '|'-alternation of option labels to a test bitset.
func multiMask(c *colstore.Col, val string) (uint64, error) {
	var mask uint64
	for _, lbl := range strings.Split(val, "|") {
		lbl = strings.TrimSpace(lbl)
		code, ok := c.OptionCode(lbl)
		if !ok {
			return 0, fmt.Errorf("question %q has no option %q", c.ID, lbl)
		}
		mask |= 1 << uint(code-1)
	}
	return mask, nil
}
