package query

import (
	"fmt"

	"fpstudy/internal/colstore"
	"fpstudy/internal/survey"
)

// TFKey groups by truefalse code: keys 0..3 are unanswered, true,
// false, don't know (the colstore codes themselves).
type TFKey struct {
	Col int
}

func (k TFKey) Columns() []int   { return []int{k.Col} }
func (k TFKey) Cardinality() int { return 4 }

func (k TFKey) Keys(b *Block, dst []int32) {
	col := b.U8(k.Col)
	for j := range dst {
		dst[j] = int32(col[j])
	}
}

func (k TFKey) Labels() []string {
	return []string{"unanswered", "true", "false", "dontknow"}
}

// LikertKey groups by Likert level: key 0 is unanswered, keys 1..Scale
// the levels.
type LikertKey struct {
	Col   int
	Scale int
}

func (k LikertKey) Columns() []int   { return []int{k.Col} }
func (k LikertKey) Cardinality() int { return k.Scale + 1 }

func (k LikertKey) Keys(b *Block, dst []int32) {
	col := b.U8(k.Col)
	for j := range dst {
		dst[j] = int32(col[j])
	}
}

func (k LikertKey) Labels() []string {
	ls := make([]string, k.Scale+1)
	ls[0] = "(unanswered)"
	for l := 1; l <= k.Scale; l++ {
		ls[l] = fmt.Sprintf("%d", l)
	}
	return ls
}

// SingleKey groups by single-choice code: key 0 is unanswered, keys
// 1..k the declared options in instrument order, key k+1 the free-text
// ("other") bucket.
type SingleKey struct {
	Col     int
	Options []string
}

func (k SingleKey) Columns() []int   { return []int{k.Col} }
func (k SingleKey) Cardinality() int { return len(k.Options) + 2 }

func (k SingleKey) Keys(b *Block, dst []int32) {
	col := b.I32(k.Col)
	other := int32(len(k.Options) + 1)
	for j := range dst {
		v := col[j]
		if v < 0 {
			v = other
		}
		dst[j] = v
	}
}

func (k SingleKey) Labels() []string {
	ls := make([]string, len(k.Options)+2)
	ls[0] = "(unanswered)"
	copy(ls[1:], k.Options)
	ls[len(ls)-1] = "(other)"
	return ls
}

// KeyerFor builds the natural keyer for a schema column: TF codes,
// Likert levels, or single-choice options. Multi-choice columns have
// no scalar key (a row selects several options); group those through
// predicates instead.
func KeyerFor(s *colstore.Schema, ci int) (Keyer, error) {
	c := s.Column(ci)
	switch c.Kind {
	case survey.TrueFalse:
		return TFKey{Col: ci}, nil
	case survey.Likert:
		return LikertKey{Col: ci, Scale: c.Scale}, nil
	case survey.SingleChoice:
		return SingleKey{Col: ci, Options: c.Options}, nil
	default:
		return nil, fmt.Errorf("query: cannot group by multi-choice question %q", c.ID)
	}
}
