// Package query is the vectorized columnar query engine over colstore
// datasets: predicate kernels producing selection bitmaps, group-by on
// dense code columns, and aggregate kernels, executed block-at-a-time
// over either an in-memory cohort or an FPDS shard streamed off disk.
//
// # Execution model
//
// A query binds a set of schema columns (the union of its predicate,
// keyer, and value columns) and scans them in fixed 8192-respondent
// blocks — the FPDS codec block (colstore.BlockRespondents) — so the
// in-memory and out-of-core paths run the same kernels over the same
// boundaries. Each block pass builds a selection bitmap (predicates
// AND into it), computes dense group keys, and accumulates per-block
// partial aggregates. Blocks fan out across internal/parallel workers;
// partials land in a per-block slot and are merged sequentially in
// block order.
//
// # Determinism
//
// Block boundaries depend only on n, and the merge order is the block
// order, so results are bit-identical at any worker count and
// identical between the in-memory and streaming paths. Counts are
// integers. Float sums are accumulated per block and merged in block
// order — a fixed association independent of parallelism. For the
// value kinds the pipeline aggregates (quiz scores and tally fields,
// Likert levels: small integers), every partial sum is exact in
// float64, so the blockwise sum is additionally bit-identical to a
// straight left-to-right sum over respondents — which is why routing
// the figures through this engine does not move a single golden byte.
//
// # Out-of-core bound
//
// Streaming sources hold one block of each bound column per worker
// (plus the parsed header/arena/spill side tables), so a filtered
// group-by over an n=10M on-disk cohort peaks at
// workers × columns × 8192 × width bytes of column data, independent
// of n.
package query

import (
	"fmt"
	"time"

	"fpstudy/internal/colstore"
	"fpstudy/internal/parallel"
)

// BlockRows is the number of respondents per scan block (the FPDS
// codec block size).
const BlockRows = colstore.BlockRespondents

// NumBlocks returns the number of scan blocks covering n respondents.
func NumBlocks(n int) int { return (n + BlockRows - 1) / BlockRows }

// blockBounds returns the half-open respondent range of block b.
func blockBounds(b, n int) (lo, hi int) {
	lo = b * BlockRows
	hi = lo + BlockRows
	if hi > n {
		hi = n
	}
	return lo, hi
}

// Patch is a per-block bitset correction for one multi-choice row
// whose canonical bitset is not its effective mask (a verbatim spill
// record): Row is block-relative, Mask the effective option bitset.
type Patch struct {
	Row  int
	Mask uint64
}

// Block is one scan block's column data: dense typed slices of length
// N covering global respondents [Lo, Lo+N). A block is valid until the
// reader's next Block call. Accessors take schema column indices and
// return the slice for the column's kind.
type Block struct {
	Lo, N int

	u8      [][]uint8
	i32     [][]int32
	u64     [][]uint64
	patches [][]Patch
	pos     []int16 // schema column index -> slot (-1 when unbound)
}

// U8 returns the truefalse/Likert code slice of a bound column.
func (b *Block) U8(ci int) []uint8 { return b.u8[b.pos[ci]] }

// I32 returns the single-choice code slice of a bound column.
func (b *Block) I32(ci int) []int32 { return b.i32[b.pos[ci]] }

// U64 returns the multi-choice bitset slice of a bound column. The
// bitsets are the canonical on-disk masks; rows with verbatim spill
// records carry their effective mask in Patches.
func (b *Block) U64(ci int) []uint64 { return b.u64[b.pos[ci]] }

// Patches returns the effective-mask corrections of a bound
// multi-choice column for this block (nil for generated cohorts, which
// never spill), sorted by row.
func (b *Block) Patches(ci int) []Patch { return b.patches[b.pos[ci]] }

// BlockReader yields blocks of bound columns. Readers are per-worker:
// a Block is valid only until the same reader's next call.
type BlockReader interface {
	Block(b int) (*Block, error)
}

// Source is a cohort the engine can scan: an in-memory dataset
// (NewDatasetSource) or an FPDS shard on disk (NewShardSource).
type Source interface {
	Schema() *colstore.Schema
	Len() int
	// ArenaStrings returns the cohort's free-text arena. Read-only.
	ArenaStrings() []string
	// MultiSpills returns the spill records of a multi-choice column,
	// keyed by respondent index (nil when none).
	MultiSpills(ci int) map[int]colstore.MultiSpill
	// NewReader returns a block cursor over the given schema columns.
	// Each scan worker holds its own reader.
	NewReader(cols []int) (BlockReader, error)
}

// Predicate filters rows: Apply ANDs the rows it matches into sel.
type Predicate interface {
	// Columns lists the schema columns the predicate reads.
	Columns() []int
	// Apply ANDs the predicate's matches over block b into sel.
	Apply(b *Block, sel *Bitmap)
}

// Keyer maps each row of a block to a dense group key in
// [0, Cardinality).
type Keyer interface {
	Columns() []int
	Cardinality() int
	// Keys writes the group key of every row of b into dst[:b.N].
	Keys(b *Block, dst []int32)
	// Labels returns the display label of every key.
	Labels() []string
}

// Value yields one float64 per row for aggregation. ok[j] reports
// whether row j contributes (e.g. unanswered Likert rows do not).
type Value interface {
	Columns() []int
	// Gather writes dst[j], ok[j] for every row j of b.
	Gather(b *Block, dst []float64, ok []bool)
}

// Query is one filtered, grouped, multi-valued aggregate.
type Query struct {
	// Filter predicates are ANDed; empty selects every row.
	Filter []Predicate
	// Key groups rows; nil aggregates everything into one group.
	Key Keyer
	// Values are aggregated per group (sum and contributing count, from
	// which Result.Mean derives). May be empty for count-only queries.
	Values []Value
}

// columnsOf collects the union of schema columns a query binds, in
// first-use order.
func (q *Query) columnsOf() []int {
	seen := map[int]bool{}
	var cols []int
	add := func(cs []int) {
		for _, c := range cs {
			if !seen[c] {
				seen[c] = true
				cols = append(cols, c)
			}
		}
	}
	for _, p := range q.Filter {
		add(p.Columns())
	}
	if q.Key != nil {
		add(q.Key.Columns())
	}
	for _, v := range q.Values {
		add(v.Columns())
	}
	return cols
}

// Result holds a query's aggregates: per-group selected-row counts and
// per-value per-group sums with contributing counts.
type Result struct {
	// Labels names each group (index = group key).
	Labels []string
	// Count is the number of selected rows per group.
	Count []int64
	// N[v][k] is the number of rows contributing to value v in group k;
	// Sum[v][k] their sum.
	N   [][]int64
	Sum [][]float64
}

// Mean returns Sum/N of value v in group k (0 for an empty group,
// matching stats.Mean on empty input).
func (r *Result) Mean(v, k int) float64 {
	if r.N[v][k] == 0 {
		return 0
	}
	return r.Sum[v][k] / float64(r.N[v][k])
}

// TotalCount returns the number of selected rows across all groups.
func (r *Result) TotalCount() int64 {
	var t int64
	for _, c := range r.Count {
		t += c
	}
	return t
}

// scanState is the per-worker scratch of one scan.
type scanState struct {
	reader BlockReader
	sel    *Bitmap
	keys   []int32
	vals   []float64
	ok     []bool
	err    error
}

// scan drives a block-parallel pass: fn runs once per block with the
// worker's scratch and the loaded block, writing its partial into a
// per-block slot owned by the caller. Readers are per-worker; the
// first error wins deterministically (lowest block index).
func scan(src Source, cols []int, workers, nb int, fn func(st *scanState, b int, blk *Block)) error {
	errs := make([]error, nb)
	lh := latencyHook.Load()
	wh := workHook.Load()
	parallel.ForEachWith(workers, nb,
		func() *scanState {
			st := &scanState{sel: NewBitmap(BlockRows)}
			st.reader, st.err = src.NewReader(cols)
			return st
		},
		func(st *scanState, b int) {
			if st.err != nil {
				errs[b] = st.err
				return
			}
			var t0 time.Time
			if lh != nil && lh.Block != nil {
				t0 = time.Now()
			}
			blk, err := st.reader.Block(b)
			if err != nil {
				errs[b] = err
				return
			}
			if wh != nil && wh.RowsScanned != nil {
				wh.RowsScanned(blk.N)
			}
			fn(st, b, blk)
			if lh != nil && lh.Block != nil {
				lh.Block(b, blk.N, time.Since(t0))
			}
		})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// applyQuery builds the block's selection and keys into st's scratch.
func applyQuery(q *Query, st *scanState, blk *Block) {
	st.sel.Reset(blk.N)
	for _, p := range q.Filter {
		p.Apply(blk, st.sel)
	}
	if q.Key != nil {
		if cap(st.keys) < blk.N {
			st.keys = make([]int32, BlockRows)
		}
		q.Key.Keys(blk, st.keys[:blk.N])
	}
}

// Run executes a grouped aggregate query over the source. The result
// is bit-identical at any worker count and identical between in-memory
// and streaming sources.
func Run(src Source, q Query, workers int) (*Result, error) {
	card := 1
	labels := []string{"all"}
	if q.Key != nil {
		card = q.Key.Cardinality()
		labels = q.Key.Labels()
	}
	if card < 1 {
		return nil, fmt.Errorf("query: keyer cardinality %d", card)
	}
	nb := NumBlocks(src.Len())

	type partial struct {
		count []int64
		n     [][]int64
		sum   [][]float64
	}
	parts := make([]*partial, nb)
	err := scan(src, q.columnsOf(), workers, nb, func(st *scanState, b int, blk *Block) {
		p := &partial{count: make([]int64, card)}
		p.n = make([][]int64, len(q.Values))
		p.sum = make([][]float64, len(q.Values))
		applyQuery(&q, st, blk)
		sel, keys := st.sel, st.keys
		selected := sel.Count()
		if q.Key == nil {
			p.count[0] = int64(selected)
		} else if selected > 0 {
			sel.ForEach(func(j int) { p.count[keys[j]]++ })
		}
		if len(q.Values) > 0 && selected == 0 {
			// No row survived the filter: every per-value partial is
			// all-zero, so skip the gather/accumulate pass for this
			// block entirely. The zero partials keep the merge loop
			// (and thus the result) bit-identical to the slow path.
			for vi := range q.Values {
				p.n[vi] = make([]int64, card)
				p.sum[vi] = make([]float64, card)
			}
			blockSkipped()
		} else if len(q.Values) > 0 {
			if cap(st.vals) < blk.N {
				st.vals = make([]float64, BlockRows)
				st.ok = make([]bool, BlockRows)
			}
			vals, okv := st.vals[:blk.N], st.ok[:blk.N]
			for vi, v := range q.Values {
				v.Gather(blk, vals, okv)
				pn := make([]int64, card)
				ps := make([]float64, card)
				if q.Key == nil {
					sel.ForEach(func(j int) {
						if okv[j] {
							pn[0]++
							ps[0] += vals[j]
						}
					})
				} else {
					sel.ForEach(func(j int) {
						if okv[j] {
							k := keys[j]
							pn[k]++
							ps[k] += vals[j]
						}
					})
				}
				p.n[vi], p.sum[vi] = pn, ps
			}
		}
		parts[b] = p
	})
	if err != nil {
		return nil, err
	}

	res := &Result{Labels: labels, Count: make([]int64, card)}
	res.N = make([][]int64, len(q.Values))
	res.Sum = make([][]float64, len(q.Values))
	for vi := range q.Values {
		res.N[vi] = make([]int64, card)
		res.Sum[vi] = make([]float64, card)
	}
	for _, p := range parts {
		for k := 0; k < card; k++ {
			res.Count[k] += p.count[k]
		}
		for vi := range q.Values {
			for k := 0; k < card; k++ {
				res.N[vi][k] += p.n[vi][k]
				res.Sum[vi][k] += p.sum[vi][k]
			}
		}
	}
	return res, nil
}

// CollectResult holds per-group value sequences in respondent order.
type CollectResult struct {
	Labels []string
	// Groups[k] lists the value of every selected, contributing row of
	// group k, in global respondent order.
	Groups [][]float64
}

// RunCollect executes a grouped collection: instead of reducing to
// sums it preserves each group's exact value sequence in respondent
// order (per-block buckets appended in block order), which is what
// order-sensitive statistics (StdDev, Median, histograms) need to stay
// bit-identical to a sequential row loop. Requires exactly one value.
func RunCollect(src Source, q Query, workers int) (*CollectResult, error) {
	if len(q.Values) != 1 {
		return nil, fmt.Errorf("query: RunCollect needs exactly one value, got %d", len(q.Values))
	}
	card := 1
	labels := []string{"all"}
	if q.Key != nil {
		card = q.Key.Cardinality()
		labels = q.Key.Labels()
	}
	nb := NumBlocks(src.Len())
	parts := make([][][]float64, nb)
	err := scan(src, q.columnsOf(), workers, nb, func(st *scanState, b int, blk *Block) {
		applyQuery(&q, st, blk)
		if st.sel.Count() == 0 {
			// Empty selection: nothing to collect, skip the gather.
			parts[b] = make([][]float64, card)
			blockSkipped()
			return
		}
		if cap(st.vals) < blk.N {
			st.vals = make([]float64, BlockRows)
			st.ok = make([]bool, BlockRows)
		}
		vals, okv := st.vals[:blk.N], st.ok[:blk.N]
		q.Values[0].Gather(blk, vals, okv)
		groups := make([][]float64, card)
		keys := st.keys
		st.sel.ForEach(func(j int) {
			if !okv[j] {
				return
			}
			k := int32(0)
			if q.Key != nil {
				k = keys[j]
			}
			groups[k] = append(groups[k], vals[j])
		})
		parts[b] = groups
	})
	if err != nil {
		return nil, err
	}
	res := &CollectResult{Labels: labels, Groups: make([][]float64, card)}
	for _, groups := range parts {
		for k, vs := range groups {
			res.Groups[k] = append(res.Groups[k], vs...)
		}
	}
	return res, nil
}

// CountByKeys executes several keyers over one filtered scan,
// returning out[k][key] = selected rows with that key under keyer k.
// One pass serves a whole per-question breakdown (Figures 14/15: 15
// outcome keyers, one scan).
func CountByKeys(src Source, keyers []Keyer, filter []Predicate, workers int) ([][]int64, error) {
	cols := (&Query{Filter: filter}).columnsOf()
	seen := map[int]bool{}
	for _, c := range cols {
		seen[c] = true
	}
	for _, k := range keyers {
		for _, c := range k.Columns() {
			if !seen[c] {
				seen[c] = true
				cols = append(cols, c)
			}
		}
	}
	nb := NumBlocks(src.Len())
	parts := make([][][]int64, nb)
	err := scan(src, cols, workers, nb, func(st *scanState, b int, blk *Block) {
		st.sel.Reset(blk.N)
		for _, p := range filter {
			p.Apply(blk, st.sel)
		}
		if cap(st.keys) < blk.N {
			st.keys = make([]int32, BlockRows)
		}
		counts := make([][]int64, len(keyers))
		keys := st.keys[:blk.N]
		for ki, k := range keyers {
			k.Keys(blk, keys)
			c := make([]int64, k.Cardinality())
			st.sel.ForEach(func(j int) { c[keys[j]]++ })
			counts[ki] = c
		}
		parts[b] = counts
	})
	if err != nil {
		return nil, err
	}
	out := make([][]int64, len(keyers))
	for ki, k := range keyers {
		out[ki] = make([]int64, k.Cardinality())
	}
	for _, counts := range parts {
		for ki := range keyers {
			for key, c := range counts[ki] {
				out[ki][key] += c
			}
		}
	}
	return out, nil
}
