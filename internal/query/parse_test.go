package query_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"fpstudy/internal/query"
	"fpstudy/internal/quiz"
)

// TestParseCompilesAndRuns pins the expression grammar end to end:
// each expression compiles and evaluates identically to the
// hand-built query it documents.
func TestParseCompilesAndRuns(t *testing.T) {
	s := quiz.Columns()
	d := randomCohort(t, rand.New(rand.NewSource(41)), 2000)
	src := query.NewDatasetSource(d)
	resolve := func(name string) (query.Value, error) { return quiz.QueryValue(s, name) }

	cases := []struct {
		expr string
		want query.Query
		agg  query.Agg
	}{
		{"//count", query.Query{}, query.AggCount},
		{"bg.formal_training=None//count",
			query.Query{Filter: []query.Predicate{
				query.I32SetOf(s.MustColumnIndex(quiz.BGFormalTraining),
					s.Column(s.MustColumnIndex(quiz.BGFormalTraining)).MustOptionCode("None"))}},
			query.AggCount},
		{"susp.invalid>=4/bg.contrib_size/count",
			query.Query{
				Filter: []query.Predicate{query.U8Range{Col: s.MustColumnIndex("susp.invalid"), Lo: 4, Hi: 5}},
				Key: query.SingleKey{Col: s.MustColumnIndex(quiz.BGContribSize),
					Options: s.Column(s.MustColumnIndex(quiz.BGContribSize)).Options}},
			query.AggCount},
		{"/bg.formal_training/mean:susp.invalid",
			query.Query{
				Key: query.SingleKey{Col: s.MustColumnIndex(quiz.BGFormalTraining),
					Options: s.Column(s.MustColumnIndex(quiz.BGFormalTraining)).Options},
				Values: []query.Value{query.LikertValue{Col: s.MustColumnIndex("susp.invalid")}}},
			query.AggMean},
	}
	for _, tc := range cases {
		p, err := query.Parse(s, tc.expr, resolve)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.expr, err)
		}
		if p.Agg != tc.agg {
			t.Fatalf("Parse(%q): agg %v, want %v", tc.expr, p.Agg, tc.agg)
		}
		got, err := query.Run(src, p.Query, 4)
		if err != nil {
			t.Fatalf("Run(%q): %v", tc.expr, err)
		}
		want, err := query.Run(src, tc.want, 4)
		if err != nil {
			t.Fatalf("Run(reference for %q): %v", tc.expr, err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("Parse(%q) evaluates differently from its hand-built query", tc.expr)
		}
	}

	// Derived quiz values resolve through the caller's resolver.
	p, err := query.Parse(s, "/bg.formal_training/mean:core.score", resolve)
	if err != nil {
		t.Fatalf("Parse core.score: %v", err)
	}
	if p.ValueName != "core.score" {
		t.Fatalf("ValueName = %q", p.ValueName)
	}
	if _, err := query.Run(src, p.Query, 4); err != nil {
		t.Fatalf("Run core.score: %v", err)
	}

	// Worked cross-factor example from the grammar doc.
	cross := "bg.formal_training!=None & bg.role=My main role is as a software engineer/bg.contrib_size/count"
	if _, err := query.Parse(s, cross, nil); err != nil {
		t.Fatalf("Parse(%q): %v", cross, err)
	}

	// Multi-choice alternation builds the right test masks.
	opts := s.Column(s.MustColumnIndex(quiz.BGInformal)).Options
	any := fmt.Sprintf("bg.informal_training~%s|%s//count", opts[0], opts[2])
	pAny, err := query.Parse(s, any, nil)
	if err != nil {
		t.Fatalf("Parse(%q): %v", any, err)
	}
	if pred, ok := pAny.Query.Filter[0].(query.U64Any); !ok || pred.Mask != 0b101 {
		t.Fatalf("Parse(%q): predicate %#v, want U64Any mask 0b101", any, pAny.Query.Filter[0])
	}
	all := fmt.Sprintf("bg.informal_training~=%s//count", opts[1])
	pAll, err := query.Parse(s, all, nil)
	if err != nil {
		t.Fatalf("Parse(%q): %v", all, err)
	}
	if pred, ok := pAll.Query.Filter[0].(query.U64All); !ok || pred.Mask != 0b10 {
		t.Fatalf("Parse(%q): predicate %#v, want U64All mask 0b10", all, pAll.Query.Filter[0])
	}
}

// TestParseErrors pins the grammar's error surface.
func TestParseErrors(t *testing.T) {
	s := quiz.Columns()
	cases := []struct {
		expr, wantSub string
	}{
		{"//", "unknown aggregate"},
		{"count", "filter/groupby/agg"},
		{"//median:x", "unknown aggregate"},
		{"//mean:nope", "unknown aggregate value"},
		{"//mean:bg.area", "only Likert"},
		{"nope=1//count", "unknown question"},
		{"/nope/count", "unknown group-by"},
		{"/bg.informal_training/count", "multi-choice"},
		{"susp.invalid//count", "no operator"},
		{"susp.invalid=9//count", "want a level 1..5"},
		{"susp.invalid~3//count", "not defined"},
		{"bg.area=Not An Option//count", "no option"},
		{"bg.area!=A|B//count", "takes a single label"},
		{"bg.informal_training=Read about it//count", "~ (any selected)"},
		{"core.identity=maybe//count", "want true, false"},
		{"core.identity>=true//count", "not defined"},
	}
	for _, tc := range cases {
		_, err := query.Parse(s, tc.expr, nil)
		if err == nil {
			t.Fatalf("Parse(%q): expected error", tc.expr)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("Parse(%q): error %q lacks %q", tc.expr, err, tc.wantSub)
		}
	}
}
