package query

// SliceValue reads per-respondent values from a caller-provided dense
// slice indexed by global respondent (in-memory sources only — it
// bypasses the block reader). Used for precomputed per-respondent
// measures that are not a single column, e.g. quiz scores.
type SliceValue struct {
	Vals []float64
}

func (v SliceValue) Columns() []int { return nil }

func (v SliceValue) Gather(b *Block, dst []float64, ok []bool) {
	copy(dst, v.Vals[b.Lo:b.Lo+b.N])
	for j := range ok {
		ok[j] = true
	}
}

// LikertValue yields a Likert column's level as a float64; unanswered
// rows do not contribute.
type LikertValue struct {
	Col int
}

func (v LikertValue) Columns() []int { return []int{v.Col} }

func (v LikertValue) Gather(b *Block, dst []float64, ok []bool) {
	col := b.U8(v.Col)
	for j := range dst {
		l := col[j]
		dst[j] = float64(l)
		ok[j] = l != 0
	}
}
