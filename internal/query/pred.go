package query

// Predicate kernels. Each walks the selection bitmap word by word:
// for every 64-row word that still has candidates it computes a match
// word from the dense code column and ANDs it in. Words already zero
// are skipped, so predicates get cheaper as the filter narrows.

// u8Apply ANDs rows of a byte column matching test into sel.
func u8Apply(col []uint8, sel *Bitmap, test func(v uint8) bool) {
	words := sel.words
	for wi := range words {
		wv := words[wi]
		if wv == 0 {
			continue
		}
		base := wi * 64
		m := 64
		if base+m > sel.n {
			m = sel.n - base
		}
		var match uint64
		for j := 0; j < m; j++ {
			if test(col[base+j]) {
				match |= 1 << uint(j)
			}
		}
		words[wi] = wv & match
	}
}

// U8Eq matches truefalse or Likert codes equal to Code (0 matches
// unanswered rows).
type U8Eq struct {
	Col  int
	Code uint8
}

func (p U8Eq) Columns() []int { return []int{p.Col} }

func (p U8Eq) Apply(b *Block, sel *Bitmap) {
	col := b.U8(p.Col)
	words := sel.words
	for wi := range words {
		wv := words[wi]
		if wv == 0 {
			continue
		}
		base := wi * 64
		m := 64
		if base+m > sel.n {
			m = sel.n - base
		}
		var match uint64
		for j := 0; j < m; j++ {
			if col[base+j] == p.Code {
				match |= 1 << uint(j)
			}
		}
		words[wi] = wv & match
	}
}

// U8Ne matches truefalse or Likert codes different from Code
// (unanswered rows match unless Code is 0).
type U8Ne struct {
	Col  int
	Code uint8
}

func (p U8Ne) Columns() []int { return []int{p.Col} }

func (p U8Ne) Apply(b *Block, sel *Bitmap) {
	u8Apply(b.U8(p.Col), sel, func(v uint8) bool { return v != p.Code })
}

// U8Range matches Likert levels in [Lo, Hi] inclusive. Unanswered
// rows (level 0) match only when Lo is 0.
type U8Range struct {
	Col    int
	Lo, Hi uint8
}

func (p U8Range) Columns() []int { return []int{p.Col} }

func (p U8Range) Apply(b *Block, sel *Bitmap) {
	u8Apply(b.U8(p.Col), sel, func(v uint8) bool { return v >= p.Lo && v <= p.Hi })
}

// I32Set matches single-choice codes in a set, encoded as a bitmask
// over codes 0..63 (bit c set = code c matches; the instrument's
// option lists are far below 64). Free-text codes (negative) never
// match; bit 0 selects unanswered rows.
type I32Set struct {
	Col  int
	Mask uint64
}

// I32SetOf builds the mask for a list of codes.
func I32SetOf(col int, codes ...int32) I32Set {
	p := I32Set{Col: col}
	for _, c := range codes {
		if c >= 0 && c < 64 {
			p.Mask |= 1 << uint(c)
		}
	}
	return p
}

func (p I32Set) Columns() []int { return []int{p.Col} }

func (p I32Set) Apply(b *Block, sel *Bitmap) {
	col := b.I32(p.Col)
	words := sel.words
	for wi := range words {
		wv := words[wi]
		if wv == 0 {
			continue
		}
		base := wi * 64
		m := 64
		if base+m > sel.n {
			m = sel.n - base
		}
		var match uint64
		for j := 0; j < m; j++ {
			v := col[base+j]
			if uint32(v) < 64 && p.Mask&(1<<uint(v)) != 0 {
				match |= 1 << uint(j)
			}
		}
		words[wi] = wv & match
	}
}

// I32Ne matches single-choice codes different from Code (free-text
// codes always differ from declared-option codes and so match).
type I32Ne struct {
	Col  int
	Code int32
}

func (p I32Ne) Columns() []int { return []int{p.Col} }

func (p I32Ne) Apply(b *Block, sel *Bitmap) {
	col := b.I32(p.Col)
	words := sel.words
	for wi := range words {
		wv := words[wi]
		if wv == 0 {
			continue
		}
		base := wi * 64
		m := 64
		if base+m > sel.n {
			m = sel.n - base
		}
		var match uint64
		for j := 0; j < m; j++ {
			if col[base+j] != p.Code {
				match |= 1 << uint(j)
			}
		}
		words[wi] = wv & match
	}
}

// u64Apply ANDs rows of a bitset column whose *effective* mask
// satisfies test into sel: the canonical column fast path plus the
// per-block verbatim-spill patches (empty for generated cohorts).
func u64Apply(b *Block, ci int, sel *Bitmap, test func(mask uint64) bool) {
	col := b.U64(ci)
	patches := b.Patches(ci)
	words := sel.words
	pi := 0
	for wi := range words {
		base := wi * 64
		m := 64
		if base+m > sel.n {
			m = sel.n - base
		}
		var match uint64
		if words[wi] != 0 || pi < len(patches) {
			for j := 0; j < m; j++ {
				if test(col[base+j]) {
					match |= 1 << uint(j)
				}
			}
			// Recompute patched rows in this word against their
			// effective mask.
			for pi < len(patches) && patches[pi].Row < base+m {
				pt := patches[pi]
				bit := uint64(1) << uint(pt.Row-base)
				if test(pt.Mask) {
					match |= bit
				} else {
					match &^= bit
				}
				pi++
			}
		}
		words[wi] &= match
	}
}

// U64Any matches multi-choice rows whose effective bitset intersects
// Mask (test-any).
type U64Any struct {
	Col  int
	Mask uint64
}

func (p U64Any) Columns() []int { return []int{p.Col} }

func (p U64Any) Apply(b *Block, sel *Bitmap) {
	u64Apply(b, p.Col, sel, func(mask uint64) bool { return mask&p.Mask != 0 })
}

// U64All matches multi-choice rows whose effective bitset contains
// every bit of Mask (test-all).
type U64All struct {
	Col  int
	Mask uint64
}

func (p U64All) Columns() []int { return []int{p.Col} }

func (p U64All) Apply(b *Block, sel *Bitmap) {
	u64Apply(b, p.Col, sel, func(mask uint64) bool { return mask&p.Mask == p.Mask })
}
