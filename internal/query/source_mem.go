package query

import (
	"sort"

	"fpstudy/internal/colstore"
	"fpstudy/internal/survey"
)

// computePatches builds each multi-choice column's per-block
// effective-mask corrections: one Patch per verbatim-spill row, whose
// mask sets the bit of every declared option appearing in the verbatim
// label list (free-text labels set no bits). Generated cohorts never
// spill, so this is nil for every column on the hot path.
func computePatches(s *colstore.Schema, arena []string,
	multiSpills func(ci int) map[int]colstore.MultiSpill) []map[int][]Patch {
	var out []map[int][]Patch
	for ci := 0; ci < s.NumColumns(); ci++ {
		c := s.Column(ci)
		if c.Kind != survey.MultiChoice {
			continue
		}
		var blocks map[int][]Patch
		for i, sp := range multiSpills(ci) {
			if !sp.Verbatim {
				continue
			}
			var mask uint64
			for _, ref := range sp.Refs {
				if code, ok := c.OptionCode(arena[ref]); ok {
					mask |= 1 << uint(code-1)
				}
			}
			if blocks == nil {
				blocks = map[int][]Patch{}
			}
			b := i / BlockRows
			blocks[b] = append(blocks[b], Patch{Row: i - b*BlockRows, Mask: mask})
		}
		if blocks == nil {
			continue
		}
		for _, ps := range blocks {
			sort.Slice(ps, func(a, b int) bool { return ps[a].Row < ps[b].Row })
		}
		if out == nil {
			out = make([]map[int][]Patch, s.NumColumns())
		}
		out[ci] = blocks
	}
	return out
}

// patchesAt returns the block-relative patches of column ci in block b
// (nil when the cohort has no verbatim spills).
func patchesAt(patches []map[int][]Patch, ci, b int) []Patch {
	if patches == nil || patches[ci] == nil {
		return nil
	}
	return patches[ci][b]
}

// DatasetSource scans an in-memory colstore.Dataset. Blocks are
// zero-copy views into the live columns, so a full scan allocates
// nothing beyond per-worker scratch.
type DatasetSource struct {
	d       *colstore.Dataset
	patches []map[int][]Patch
}

// NewDatasetSource wraps a dataset for querying. The dataset must not
// be mutated while queries run.
func NewDatasetSource(d *colstore.Dataset) *DatasetSource {
	return &DatasetSource{
		d:       d,
		patches: computePatches(d.Schema, d.ArenaStrings(), d.MultiSpills),
	}
}

func (s *DatasetSource) Schema() *colstore.Schema { return s.d.Schema }
func (s *DatasetSource) Len() int                 { return s.d.Len() }
func (s *DatasetSource) ArenaStrings() []string   { return s.d.ArenaStrings() }

func (s *DatasetSource) MultiSpills(ci int) map[int]colstore.MultiSpill {
	return s.d.MultiSpills(ci)
}

// NewReader returns a zero-copy block cursor over the given columns.
func (s *DatasetSource) NewReader(cols []int) (BlockReader, error) {
	r := &memReader{src: s, cols: cols}
	r.blk.pos = make([]int16, s.d.Schema.NumColumns())
	for i := range r.blk.pos {
		r.blk.pos[i] = -1
	}
	for slot, ci := range cols {
		r.blk.pos[ci] = int16(slot)
	}
	r.blk.u8 = make([][]uint8, len(cols))
	r.blk.i32 = make([][]int32, len(cols))
	r.blk.u64 = make([][]uint64, len(cols))
	r.blk.patches = make([][]Patch, len(cols))
	return r, nil
}

type memReader struct {
	src  *DatasetSource
	cols []int
	blk  Block
}

func (r *memReader) Block(b int) (*Block, error) {
	d := r.src.d
	lo, hi := blockBounds(b, d.Len())
	r.blk.Lo, r.blk.N = lo, hi-lo
	for slot, ci := range r.cols {
		switch d.Schema.Column(ci).Kind {
		case survey.TrueFalse, survey.Likert:
			r.blk.u8[slot] = d.RawU8(ci)[lo:hi]
		case survey.SingleChoice:
			r.blk.i32[slot] = d.RawI32(ci)[lo:hi]
		case survey.MultiChoice:
			r.blk.u64[slot] = d.RawU64(ci)[lo:hi]
			r.blk.patches[slot] = patchesAt(r.src.patches, ci, b)
		}
	}
	return &r.blk, nil
}
