package query

import (
	"fmt"
	"math/bits"
	"strconv"

	"fpstudy/internal/survey"
)

// Tally counts one question's answer labels over a source: the
// engine's version of survey.Instrument.Tally (an "unanswered" bucket,
// one count per selected multi-choice option). The hot path counts
// dense codes per block — no strings — and resolves labels once at
// merge; free-text answers (negative single-choice codes, multi-choice
// spill refs) resolve through the arena. Counts are order-insensitive,
// so the result is identical at any worker count.
func Tally(src Source, questionID string, workers int) (map[string]int, error) {
	s := src.Schema()
	ci, ok := s.ColumnIndex(questionID)
	if !ok {
		return nil, fmt.Errorf("survey: unknown question %q", questionID)
	}
	c := s.Column(ci)
	nb := NumBlocks(src.Len())

	// Dense per-block counts: slot 0 is "unanswered"; slots 1.. follow
	// the kind (TF codes, Likert levels, or option indices+1). Free-text
	// single-choice answers count per arena ref in a small side map.
	card := 0
	switch c.Kind {
	case survey.TrueFalse:
		card = 4
	case survey.Likert:
		card = c.Scale + 1
	case survey.SingleChoice, survey.MultiChoice:
		card = len(c.Options) + 1
	}
	type partial struct {
		counts []int64
		other  map[int32]int64 // arena ref -> count (single-choice free text)
	}
	parts := make([]*partial, nb)
	spills := src.MultiSpills(ci)

	err := scan(src, []int{ci}, workers, nb, func(st *scanState, b int, blk *Block) {
		p := &partial{counts: make([]int64, card)}
		switch c.Kind {
		case survey.TrueFalse, survey.Likert:
			for _, v := range blk.U8(ci) {
				p.counts[v]++
			}
		case survey.SingleChoice:
			for _, v := range blk.I32(ci) {
				if v >= 0 {
					p.counts[v]++
					continue
				}
				if p.other == nil {
					p.other = map[int32]int64{}
				}
				p.other[-v-1]++
			}
		case survey.MultiChoice:
			// Count the raw (canonical) masks; spill refs — including whole
			// verbatim lists, whose raw mask the format guarantees is zero —
			// are added in one sequential pass below.
			for j, mask := range blk.U64(ci) {
				if mask == 0 {
					if len(spills) == 0 {
						p.counts[0]++
					} else if _, ok := spills[blk.Lo+j]; !ok {
						p.counts[0]++
					}
					continue
				}
				for mask != 0 {
					o := bits.TrailingZeros64(mask)
					p.counts[o+1]++
					mask &^= 1 << uint(o)
				}
			}
		}
		parts[b] = p
	})
	if err != nil {
		return nil, err
	}

	arena := src.ArenaStrings()
	tal := map[string]int{}
	addLabel := func(slot int, n int64) {
		if n == 0 {
			return
		}
		var label string
		switch {
		case slot == 0:
			label = "unanswered"
		case c.Kind == survey.TrueFalse:
			label = [...]string{"", survey.AnswerTrue, survey.AnswerFalse, survey.AnswerDontKnow}[slot]
		case c.Kind == survey.Likert:
			label = strconv.Itoa(slot)
		default:
			label = c.Options[slot-1]
		}
		tal[label] += int(n)
	}
	for _, p := range parts {
		for slot, n := range p.counts {
			addLabel(slot, n)
		}
		for ref, n := range p.other {
			tal[arena[ref]] += int(n)
		}
	}
	// Multi-choice spill refs: free-text additions on canonical rows and
	// the full label list of verbatim rows (counts, so map iteration
	// order is immaterial).
	if c.Kind == survey.MultiChoice {
		for _, sp := range spills {
			for _, ref := range sp.Refs {
				tal[arena[ref]]++
			}
		}
	}
	return tal, nil
}
