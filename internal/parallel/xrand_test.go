package parallel

import (
	"math"
	"testing"
)

// TestXRandDeterministicStreams pins the repositioning contract: the
// same (seed, stream, index) always replays the same sequence, distinct
// indices give unrelated sequences, and mid-stream repositioning fully
// resets the state.
func TestXRandDeterministicStreams(t *testing.T) {
	a, b := NewXRand(), NewXRand()
	for index := int64(0); index < 50; index++ {
		a.SeedAt(42, 2, index)
		b.SeedAt(42, 2, index)
		for d := 0; d < 20; d++ {
			if got, want := a.Uint64(), b.Uint64(); got != want {
				t.Fatalf("index %d draw %d: %d != %d", index, d, got, want)
			}
		}
	}
	a.SeedAt(42, 2, 7)
	want := a.Uint64()
	a.Float64()
	a.Intn(100)
	a.SeedAt(42, 2, 7)
	if a.Uint64() != want {
		t.Fatal("SeedAt after partial consumption diverged")
	}

	a.SeedAt(7, 1, 10)
	b.SeedAt(7, 1, 11)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("%d identical draws between adjacent index streams", same)
	}
}

// TestXRandSubStreamIndependence checks the packed (index<<5 | column)
// sub-stream scheme the column-major sampler uses: packing must not
// introduce correlated or colliding streams.
func TestXRandSubStreamIndependence(t *testing.T) {
	rng := NewXRand()
	seen := map[uint64]bool{}
	for i := int64(0); i < 200; i++ {
		for sub := int64(0); sub < 32; sub++ {
			rng.SeedAt(42, 2, i<<5|sub)
			v := rng.Uint64()
			if seen[v] {
				t.Fatalf("first-draw collision at index %d sub %d", i, sub)
			}
			seen[v] = true
		}
	}
}

func TestXRandFloat64Range(t *testing.T) {
	rng := NewXRand()
	rng.SeedAt(1, 1, 1)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := rng.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestXRandIntnBoundsAndUniformity(t *testing.T) {
	rng := NewXRand()
	rng.SeedAt(3, 1, 9)
	const n, buckets = 120000, 7
	var counts [buckets]int
	for i := 0; i < n; i++ {
		v := rng.Intn(buckets)
		if v < 0 || v >= buckets {
			t.Fatalf("Intn(%d) = %d", buckets, v)
		}
		counts[v]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("bucket %d has %d draws, want ~%.0f", b, c, want)
		}
	}
}

// TestXRandNormPairMoments sanity-checks the Box-Muller pair: both
// coordinates standard normal, uncorrelated.
func TestXRandNormPairMoments(t *testing.T) {
	rng := NewXRand()
	rng.SeedAt(5, 1, 2)
	const n = 100000
	var sx, sy, sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		x, y := rng.NormPair()
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	mx, my := sx/n, sy/n
	vx, vy := sxx/n-mx*mx, syy/n-my*my
	cov := sxy/n - mx*my
	if math.Abs(mx) > 0.02 || math.Abs(my) > 0.02 {
		t.Fatalf("means %v %v, want ~0", mx, my)
	}
	if math.Abs(vx-1) > 0.03 || math.Abs(vy-1) > 0.03 {
		t.Fatalf("variances %v %v, want ~1", vx, vy)
	}
	if math.Abs(cov) > 0.02 {
		t.Fatalf("covariance %v, want ~0", cov)
	}
}

// BenchmarkSeedAt vs BenchmarkReseed quantifies why the hot path moved
// off math/rand: repositioning the lagged-Fibonacci source costs ~607
// word initializations; xoshiro costs four splitmix rounds.
func BenchmarkSeedAt(b *testing.B) {
	rng := NewXRand()
	for n := 0; n < b.N; n++ {
		rng.SeedAt(42, 2, int64(n))
	}
}

func BenchmarkXRandUint64(b *testing.B) {
	rng := NewXRand()
	rng.SeedAt(42, 2, 1)
	var acc uint64
	for n := 0; n < b.N; n++ {
		acc += rng.Uint64()
	}
	_ = acc
}
