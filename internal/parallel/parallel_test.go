package parallel

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 16} {
		for _, n := range []int{0, 1, 63, 64, 65, 1000} {
			seen := make([]int32, n)
			ForEach(workers, n, func(i int) { atomic.AddInt32(&seen[i], 1) })
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		out := Map(workers, 500, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestSumShardsDeterministic(t *testing.T) {
	// A sum whose terms vary wildly in magnitude: naive reordering
	// changes the rounded result, so agreement across worker counts
	// demonstrates the fixed shard boundaries + ordered fan-in.
	n := 100000
	term := func(i int) float64 { return 1.0 / float64(i+1) / float64((i%977)+1) }
	sum := func(workers int) float64 {
		return SumShards(workers, n, func(lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += term(i)
			}
			return s
		})
	}
	want := sum(1)
	for _, workers := range []int{2, 3, 8, 16} {
		if got := sum(workers); got != want {
			t.Fatalf("workers=%d: sum %v != sequential %v", workers, got, want)
		}
	}
}

func TestShardBounds(t *testing.T) {
	n := 3*shardSize + 17
	if NumShards(n) != 4 {
		t.Fatalf("NumShards(%d) = %d", n, NumShards(n))
	}
	covered := 0
	for s := 0; s < NumShards(n); s++ {
		lo, hi := ShardBounds(s, n)
		if lo != covered {
			t.Fatalf("shard %d starts at %d, want %d", s, lo, covered)
		}
		covered = hi
	}
	if covered != n {
		t.Fatalf("shards cover %d of %d", covered, n)
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(3)
	var inFlight, peak atomic.Int32
	for i := 0; i < 50; i++ {
		p.Go(func() {
			c := inFlight.Add(1)
			for {
				old := peak.Load()
				if c <= old || peak.CompareAndSwap(old, c) {
					break
				}
			}
			inFlight.Add(-1)
		})
	}
	p.Wait()
	if got := peak.Load(); got > 3 {
		t.Fatalf("peak concurrency %d exceeds pool size 3", got)
	}
}

func TestSeedIndependence(t *testing.T) {
	// Distinct (stream, index) pairs must give distinct seeds, and the
	// derivation must not depend on any global state.
	seen := map[int64]bool{}
	for stream := uint64(0); stream < 4; stream++ {
		for i := int64(0); i < 1000; i++ {
			s := Seed(42, stream, i)
			if seen[s] {
				t.Fatalf("seed collision at stream=%d index=%d", stream, i)
			}
			seen[s] = true
			if s != Seed(42, stream, i) {
				t.Fatal("Seed not deterministic")
			}
		}
	}
}

func TestRNGPerIndexStreams(t *testing.T) {
	// The first draws of neighbouring indices must look independent
	// (no lockstep), and re-deriving an RNG must replay its stream.
	a := RNG(7, 1, 10)
	b := RNG(7, 1, 11)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("%d identical draws between adjacent index streams", same)
	}
	c, d := RNG(7, 1, 10), RNG(7, 1, 10)
	for i := 0; i < 100; i++ {
		if c.Int63() != d.Int63() {
			t.Fatal("re-derived RNG diverged")
		}
	}
}

func TestWorkersNormalization(t *testing.T) {
	// Raise GOMAXPROCS so the explicit-count assertions are not
	// short-circuited by the GOMAXPROCS clamp on a small host.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(16))
	if Workers(0, 100) != DefaultWorkers() && DefaultWorkers() <= 100 {
		t.Fatal("workers<=0 should default to GOMAXPROCS")
	}
	if Workers(8, 3) != 3 {
		t.Fatal("workers should be capped at n")
	}
	if Workers(-1, 0) != 1 {
		t.Fatal("degenerate inputs should give 1 worker")
	}
}

// TestWorkersClampToGOMAXPROCS pins the bench-host honesty fix: asking
// for more workers than the scheduler has Ps must degrade to the P
// count, so a single-CPU host never reports fake "parallel" numbers.
func TestWorkersClampToGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	if got := Workers(16, 1000); got != 2 {
		t.Fatalf("Workers(16, 1000) at GOMAXPROCS=2 = %d, want 2", got)
	}
	if got := Workers(1, 1000); got != 1 {
		t.Fatalf("explicit workers=1 must stay serial, got %d", got)
	}
	runtime.GOMAXPROCS(1)
	if got := Workers(4, 1000); got != 1 {
		t.Fatalf("Workers(4, 1000) at GOMAXPROCS=1 = %d, want 1", got)
	}
}

// TestHookObservation checks that an installed Hook sees fan-outs,
// shard dispatches, and pool tasks — and that the results fn produces
// are identical with and without the hook installed.
func TestHookObservation(t *testing.T) {
	defer SetHook(nil)

	baseline := Map(4, 1000, func(i int) int { return i * i })

	var calls, items, shards, poolTasks atomic.Int64
	var busyNS atomic.Int64
	SetHook(&Hook{
		ForEach: func(n, workers int, busy time.Duration) {
			calls.Add(1)
			items.Add(int64(n))
			busyNS.Add(int64(busy))
		},
		Shards:   func(n int) { shards.Add(int64(n)) },
		PoolTask: func(busy time.Duration) { poolTasks.Add(1) },
	})

	got := Map(4, 1000, func(i int) int { return i * i })
	for i := range got {
		if got[i] != baseline[i] {
			t.Fatalf("hook changed results at %d: %d != %d", i, got[i], baseline[i])
		}
	}
	if calls.Load() == 0 || items.Load() != 1000 {
		t.Fatalf("ForEach hook saw calls=%d items=%d, want 1+ calls over 1000 items",
			calls.Load(), items.Load())
	}
	if busyNS.Load() <= 0 {
		t.Fatal("ForEach hook saw zero busy time")
	}

	// Sequential path reports too.
	items.Store(0)
	ForEach(1, 64, func(i int) {})
	if items.Load() != 64 {
		t.Fatalf("sequential ForEach reported %d items, want 64", items.Load())
	}

	sum := SumShards(4, 10000, func(lo, hi int) float64 { return float64(hi - lo) })
	if sum != 10000 {
		t.Fatalf("SumShards under hook = %v, want 10000", sum)
	}
	if got, want := shards.Load(), int64(NumShards(10000)); got != want {
		t.Fatalf("Shards hook saw %d, want %d", got, want)
	}

	p := NewPool(2)
	for i := 0; i < 5; i++ {
		p.Go(func() {})
	}
	p.Wait()
	if poolTasks.Load() != 5 {
		t.Fatalf("PoolTask hook saw %d tasks, want 5", poolTasks.Load())
	}
}

// TestHookNilFastPath pins that clearing the hook restores the
// uninstrumented path (no callbacks fire after SetHook(nil)).
func TestHookNilFastPath(t *testing.T) {
	var calls atomic.Int64
	SetHook(&Hook{ForEach: func(int, int, time.Duration) { calls.Add(1) }})
	ForEach(2, 10, func(i int) {})
	SetHook(nil)
	before := calls.Load()
	ForEach(2, 10, func(i int) {})
	if calls.Load() != before {
		t.Fatal("hook fired after SetHook(nil)")
	}
	if before == 0 {
		t.Fatal("hook never fired while installed")
	}
}

func TestReseedMatchesFreshRNG(t *testing.T) {
	// Reseed must reposition a reused rand.Rand onto exactly the draw
	// sequence a freshly allocated per-index RNG would produce — the
	// invariant that lets hot loops hold one RNG per worker.
	reused := rand.New(rand.NewSource(0))
	for index := int64(0); index < 50; index++ {
		Reseed(reused, 42, 2, index)
		fresh := RNG(42, 2, index)
		for d := 0; d < 20; d++ {
			if got, want := reused.Int63(), fresh.Int63(); got != want {
				t.Fatalf("index %d draw %d: reseeded %d != fresh %d", index, d, got, want)
			}
		}
	}
	// Mid-stream reseeding must fully reset the state, not resume it.
	Reseed(reused, 42, 2, 7)
	reused.Float64()
	reused.Intn(100)
	Reseed(reused, 42, 2, 7)
	if reused.Int63() != RNG(42, 2, 7).Int63() {
		t.Fatal("reseed after partial consumption diverged")
	}
}

func TestForEachWithMatchesForEach(t *testing.T) {
	// ForEachWith with per-worker scratch must cover every index exactly
	// once and produce worker-count-independent results when fn confines
	// its writes to index i.
	const n = 10_000
	want := make([]int64, n)
	ForEach(1, n, func(i int) { want[i] = RNG(9, 4, int64(i)).Int63() })
	for _, workers := range []int{1, 2, 3, 8, 0} {
		got := make([]int64, n)
		var scratchMade atomic.Int64
		ForEachWith(workers, n, func() *rand.Rand {
			scratchMade.Add(1)
			return rand.New(rand.NewSource(0))
		}, func(rng *rand.Rand, i int) {
			Reseed(rng, 9, 4, int64(i))
			got[i] = rng.Int63()
		})
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: index %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
		if w := Workers(workers, n); scratchMade.Load() > int64(w) {
			t.Fatalf("workers=%d: %d scratch values made, want <= %d", workers, scratchMade.Load(), w)
		}
	}
}

func TestForEachWithZeroItems(t *testing.T) {
	called := false
	ForEachWith(4, 0, func() int { called = true; return 0 }, func(int, int) { called = true })
	if called {
		t.Fatal("ForEachWith ran scratch or body for n=0")
	}
}

// TestWorkerShardSpanHooks pins the trace-feeding callbacks: every
// fan-out fires one WorkerSpan per worker goroutine (indices within
// [0, workers)), and MapShards fires one ShardSpan per shard whose
// item counts tile [0, n) — while results stay identical to the
// unhooked run.
func TestWorkerShardSpanHooks(t *testing.T) {
	defer SetHook(nil)

	const n = 10000
	baseline := MapShards(4, n, func(lo, hi int) int { return hi - lo })

	var workerSpans, shardSpans, shardItems atomic.Int64
	var badWorker, badDur atomic.Int64
	SetHook(&Hook{
		WorkerSpan: func(w int, busy time.Duration) {
			workerSpans.Add(1)
			if w < 0 {
				badWorker.Add(1)
			}
			if busy < 0 {
				badDur.Add(1)
			}
		},
		ShardSpan: func(w, shard, items int, d time.Duration) {
			shardSpans.Add(1)
			shardItems.Add(int64(items))
			if w < 0 || shard < 0 || shard >= NumShards(n) {
				badWorker.Add(1)
			}
			if d < 0 {
				badDur.Add(1)
			}
		},
	})

	got := MapShards(4, n, func(lo, hi int) int { return hi - lo })
	for i := range got {
		if got[i] != baseline[i] {
			t.Fatalf("hook changed shard result %d: %d != %d", i, got[i], baseline[i])
		}
	}
	if badWorker.Load() != 0 || badDur.Load() != 0 {
		t.Fatalf("hook saw out-of-range worker/shard (%d) or negative duration (%d)",
			badWorker.Load(), badDur.Load())
	}
	if got, want := shardSpans.Load(), int64(NumShards(n)); got != want {
		t.Fatalf("ShardSpan fired %d times, want %d", got, want)
	}
	if shardItems.Load() != n {
		t.Fatalf("ShardSpan item counts sum to %d, want %d (shards must tile the index space)", shardItems.Load(), n)
	}
	if workerSpans.Load() == 0 {
		t.Fatal("WorkerSpan never fired")
	}

	// The single-worker inline path reports its one worker too.
	workerSpans.Store(0)
	ForEach(1, 64, func(i int) {})
	if workerSpans.Load() != 1 {
		t.Fatalf("sequential ForEach fired %d WorkerSpans, want 1", workerSpans.Load())
	}
}
