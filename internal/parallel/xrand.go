package parallel

import (
	"math"
	"math/bits"
)

// XRand is the generation hot path's random source: xoshiro256++ with
// O(1) stream positioning. The pipeline's determinism contract needs a
// generator that can be repositioned onto an arbitrary (seed, stream,
// index) stream before every work item; math/rand's lagged-Fibonacci
// source pays ~607 word initializations per Seed, which profiling
// showed was ~40% of total generation CPU. SeedAt costs four splitmix64
// rounds, so repositioning is cheaper than a single draw used to be.
//
// XRand is not safe for concurrent use; hot loops hold one per worker
// (see ForEachWith) and reposition it per item or per (item, column).
type XRand struct {
	s0, s1, s2, s3 uint64
}

// NewXRand allocates a generator. The initial position is arbitrary:
// callers reposition with SeedAt before drawing (the same contract as
// the reseed-per-index rand.Rand it replaces).
func NewXRand() *XRand {
	x := &XRand{}
	x.SeedAt(0, 0, 0)
	return x
}

// SeedAt repositions the generator onto the (seed, stream, index)
// stream: the state is expanded from Seed(seed, stream, index) by four
// rounds of splitmix64, the initializer recommended by the xoshiro
// authors. Distinct (stream, index) pairs yield statistically
// independent sequences, and the expansion is bijective per round, so
// the all-zero state (the one fixed point xoshiro cannot leave) is
// unreachable.
func (x *XRand) SeedAt(seed int64, stream uint64, index int64) {
	v := uint64(Seed(seed, stream, index))
	v += 0x9e3779b97f4a7c15
	x.s0 = mix64(v)
	v += 0x9e3779b97f4a7c15
	x.s1 = mix64(v)
	v += 0x9e3779b97f4a7c15
	x.s2 = mix64(v)
	v += 0x9e3779b97f4a7c15
	x.s3 = mix64(v)
}

// Uint64 returns the next 64 random bits (xoshiro256++).
func (x *XRand) Uint64() uint64 {
	r := bits.RotateLeft64(x.s0+x.s3, 23) + x.s0
	t := x.s1 << 17
	x.s2 ^= x.s0
	x.s3 ^= x.s1
	x.s1 ^= x.s2
	x.s0 ^= x.s3
	x.s2 ^= t
	x.s3 = bits.RotateLeft64(x.s3, 45)
	return r
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (x *XRand) Float64() float64 {
	return float64(x.Uint64()>>11) * 0x1p-53
}

// Intn returns a uniform int in [0, n) via the Lemire multiply-shift
// reduction. The reduction is not rejection-corrected; for the option
// counts drawn here (n < 2^9) the bias is below 2^-55 per draw, far
// under anything the statistical gates can resolve.
func (x *XRand) Intn(n int) int {
	hi, _ := bits.Mul64(x.Uint64(), uint64(n))
	return int(hi)
}

// NormPair returns two independent standard normal variates via the
// Box-Muller transform. The ability model needs exactly two normals per
// respondent (core and optimization noise), so the transform's natural
// pairing wastes nothing.
func (x *XRand) NormPair() (float64, float64) {
	u := 1 - x.Float64() // (0, 1]: keeps Log away from 0
	v := x.Float64()
	r := math.Sqrt(-2 * math.Log(u))
	s, c := math.Sincos(2 * math.Pi * v)
	return r * c, r * s
}
