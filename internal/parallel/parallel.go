// Package parallel is the deterministic sharded execution layer under
// the study pipeline. It provides a bounded worker pool, ordered
// fan-out/fan-in helpers, and the per-shard RNG seeding scheme that
// makes parallel population generation bit-identical to sequential
// generation.
//
// # Determinism contract
//
// Every helper in this package partitions its index space [0, n) into
// shards whose boundaries depend only on n (never on the worker count
// or on scheduling), and delivers results in index order. A caller that
//
//  1. writes only to index-addressed state (out[i] = fn(i)), and
//  2. derives any randomness from (seed, index) via Seed/RNG rather
//     than from a shared stream,
//
// gets output that is byte-identical at any worker count, including
// workers == 1, and at any GOMAXPROCS. Floating point reductions stay
// deterministic because SumShards accumulates shard subtotals in shard
// order with fixed shard boundaries.
package parallel

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Hook receives execution-layer telemetry events. All callbacks are
// optional and must be safe for concurrent use (they are invoked from
// whichever goroutine finishes the work). A Hook observes only; it
// cannot influence sharding, scheduling, or RNG streams, so installing
// one never changes produced data.
type Hook struct {
	// ForEach fires once per ForEach invocation with the index-space
	// size, the effective worker count, and the summed per-worker busy
	// time (wall time each worker spent inside the fan-out, so
	// busy/(workers*elapsed) approximates utilization).
	ForEach func(items, workers int, busy time.Duration)
	// ForEachWall fires once per ForEach invocation with the fan-out's
	// wall-clock duration alongside the summed busy time, so
	// workers*wall - busy is the aggregate wait (spawn, scheduling,
	// imbalance at the tail) the fan-out incurred. On the serial path
	// wall == busy and the wait is zero by construction.
	ForEachWall func(items, workers int, wall, busy time.Duration)
	// WorkerSpan fires once per worker goroutine as it finishes a
	// ForEach/ForEachWith/MapShards fan-out, with the worker's index in
	// [0, workers) and its busy time. Together the calls of one fan-out
	// tile its wall-clock: this is the per-lane view the tracer renders.
	WorkerSpan func(worker int, busy time.Duration)
	// Shards fires once per MapShards/SumShards call with the number of
	// fixed-width shards dispatched.
	Shards func(n int)
	// ShardSpan fires once per shard executed by MapShards/SumShards,
	// with the index of the worker that ran it, the shard index, the
	// shard's item count, and its run time. Which worker runs which
	// shard is scheduling-dependent; the shard boundaries and results
	// are not.
	ShardSpan func(worker, shard, items int, d time.Duration)
	// PoolTask fires after each Pool task completes, with its run time.
	PoolTask func(busy time.Duration)
}

// hook holds the installed Hook. An atomic pointer keeps the
// uninstrumented hot path at a single pointer load with no allocation;
// the nil hook (the default) short-circuits all instrumentation.
var hook atomic.Pointer[Hook]

// SetHook installs h as the process-wide execution hook (nil
// uninstalls). Intended to be called once at startup by the telemetry
// wiring (internal/core.InstallPipelineTelemetry); installing mid-run
// affects only subsequently started operations.
func SetHook(h *Hook) { hook.Store(h) }

// DefaultWorkers is the worker count used when a caller passes
// workers <= 0: the process's GOMAXPROCS.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Workers normalizes a requested worker count: values <= 0 become
// DefaultWorkers(), the count is capped at GOMAXPROCS (extra goroutines
// beyond the scheduler's P count only add handoff overhead — on a
// single-CPU host every "parallel" request degrades to serial, which is
// the honest execution), and the count is capped at n (no point
// spawning more workers than work items).
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	} else if maxp := DefaultWorkers(); workers > maxp {
		workers = maxp
	}
	if n >= 0 && workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// grain is the number of indices a worker claims per fetch in ForEach.
// Work items in this repository (drawing a profile, grading a
// respondent) cost microseconds, so a small grain amortizes the atomic
// without hurting load balance.
const grain = 64

// ForEach runs fn(i) for every i in [0, n) using at most workers
// goroutines (workers <= 0 means DefaultWorkers). fn must confine its
// writes to index-addressed state; under that contract the result is
// independent of the worker count. ForEach returns when every call has
// completed.
func ForEach(workers, n int, fn func(i int)) {
	ForEachWith(workers, n,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) { fn(i) })
}

// ForEachWith is ForEach with per-worker scratch state: each worker
// goroutine calls newC once and passes the result to every fn it runs.
// The index→worker assignment is dynamic (work stealing by grain), so
// the scratch value must never influence fn's output — it exists to
// hoist allocations out of the per-item path (a reusable RNG that is
// reseeded per index, a scratch buffer). Under that contract the result
// is independent of the worker count, exactly as for ForEach.
func ForEachWith[C any](workers, n int, newC func() C, fn func(c C, i int)) {
	forEachIndexed(workers, n, newC, func(c C, _, i int) { fn(c, i) })
}

// forEachIndexed is the work-stealing engine under ForEach/ForEachWith/
// MapShards: like ForEachWith, but fn additionally receives the index w
// of the worker goroutine executing it. The worker index exists only
// for observation (labeling trace lanes); by the work-stealing
// contract, fn's output must never depend on it.
func forEachIndexed[C any](workers, n int, newC func() C, fn func(c C, w, i int)) {
	workers = Workers(workers, n)
	if n <= 0 {
		return
	}
	h := hook.Load()
	foreachHook := h != nil && h.ForEach != nil
	wallHook := h != nil && h.ForEachWall != nil
	workerHook := h != nil && h.WorkerSpan != nil
	timed := foreachHook || wallHook || workerHook
	if workers == 1 {
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		c := newC()
		for i := 0; i < n; i++ {
			fn(c, 0, i)
		}
		if timed {
			busy := time.Since(t0)
			if workerHook {
				h.WorkerSpan(0, busy)
			}
			if foreachHook {
				h.ForEach(n, 1, busy)
			}
			if wallHook {
				h.ForEachWall(n, 1, busy, busy)
			}
		}
		return
	}
	var wall0 time.Time
	if timed {
		wall0 = time.Now()
	}
	var next, busyNS atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if timed {
				t0 := time.Now()
				defer func() {
					busy := time.Since(t0)
					busyNS.Add(int64(busy))
					if workerHook {
						h.WorkerSpan(w, busy)
					}
				}()
			}
			c := newC()
			for {
				lo := int(next.Add(grain)) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(c, w, i)
				}
			}
		}(w)
	}
	wg.Wait()
	if foreachHook {
		h.ForEach(n, workers, time.Duration(busyNS.Load()))
	}
	if wallHook {
		h.ForEachWall(n, workers, time.Since(wall0), time.Duration(busyNS.Load()))
	}
}

// Map computes out[i] = fn(i) for every i in [0, n) in parallel and
// returns the results in index order (ordered fan-in).
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// shardSize is the fixed shard width used by MapShards/SumShards. It
// depends only on this constant — never on the worker count — which is
// what keeps ordered reductions deterministic.
const shardSize = 4096

// NumShards returns the number of fixed-width shards covering [0, n).
func NumShards(n int) int { return (n + shardSize - 1) / shardSize }

// ShardBounds returns the half-open index range of shard s.
func ShardBounds(s, n int) (lo, hi int) {
	lo = s * shardSize
	hi = lo + shardSize
	if hi > n {
		hi = n
	}
	return lo, hi
}

// MapShards splits [0, n) into fixed-width shards (boundaries
// independent of the worker count), applies fn to each shard in
// parallel, and returns the shard results in shard order.
func MapShards[T any](workers, n int, fn func(lo, hi int) T) []T {
	h := hook.Load()
	if h != nil && h.Shards != nil {
		h.Shards(NumShards(n))
	}
	shardHook := h != nil && h.ShardSpan != nil
	out := make([]T, NumShards(n))
	forEachIndexed(workers, NumShards(n),
		func() struct{} { return struct{}{} },
		func(_ struct{}, w, s int) {
			lo, hi := ShardBounds(s, n)
			if shardHook {
				t0 := time.Now()
				out[s] = fn(lo, hi)
				h.ShardSpan(w, s, hi-lo, time.Since(t0))
				return
			}
			out[s] = fn(lo, hi)
		})
	return out
}

// SumShards computes a deterministic parallel sum: fn reduces each
// fixed-width shard to a float64, and the shard subtotals are
// accumulated in shard order. Because both the shard boundaries and
// the accumulation order are independent of the worker count, the
// result is bit-identical at any parallelism, and identical to a
// sequential shard-by-shard evaluation.
func SumShards(workers, n int, fn func(lo, hi int) float64) float64 {
	shards := NumShards(n)
	if Workers(workers, shards) == 1 && hook.Load() == nil {
		// Serial, unobserved: accumulate directly in shard order with no
		// subtotal slice. Identical boundaries and accumulation order
		// keep the result bit-identical to the fan-out path while making
		// the calibration inner loop allocation-free.
		s := 0.0
		for sh := 0; sh < shards; sh++ {
			lo, hi := ShardBounds(sh, n)
			s += fn(lo, hi)
		}
		return s
	}
	subs := MapShards(workers, n, fn)
	s := 0.0
	for _, v := range subs {
		s += v
	}
	return s
}

// Pool is a bounded worker pool for heterogeneous tasks. Unlike
// ForEach, which is shaped for index fan-out, a Pool runs arbitrary
// closures with bounded concurrency and a single Wait barrier. The
// zero Pool is not usable; create one with NewPool.
type Pool struct {
	sem chan struct{}
	wg  sync.WaitGroup
}

// NewPool creates a pool running at most workers tasks concurrently
// (workers <= 0 means DefaultWorkers()).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Go submits a task. It blocks only when the pool is saturated, which
// bounds the number of in-flight goroutines at the pool's size.
func (p *Pool) Go(fn func()) {
	h := hook.Load()
	p.wg.Add(1)
	p.sem <- struct{}{}
	go func() {
		defer func() {
			<-p.sem
			p.wg.Done()
		}()
		if h != nil && h.PoolTask != nil {
			t0 := time.Now()
			defer func() { h.PoolTask(time.Since(t0)) }()
		}
		fn()
	}()
}

// Wait blocks until every submitted task has finished.
func (p *Pool) Wait() { p.wg.Wait() }

// Seed derives a 64-bit seed from a base seed, a stream identifier,
// and an item index, using two rounds of the splitmix64 finalizer.
// Distinct (stream, index) pairs yield statistically independent
// streams, which is what lets each respondent own an RNG that does not
// depend on how many respondents were generated before it — the key to
// shard-splittable generation.
func Seed(seed int64, stream uint64, index int64) int64 {
	x := uint64(seed)
	x = mix64(x + 0x9e3779b97f4a7c15*stream)
	x = mix64(x + uint64(index))
	return int64(x)
}

// mix64 is the splitmix64 finalizer (Steele, Lea, Flood 2014): a
// bijective avalanche over 64 bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// RNG returns a rand.Rand private to (seed, stream, index). Callers
// hold one per work item; the streams are independent, so items can be
// generated in any order — or concurrently — with identical results.
func RNG(seed int64, stream uint64, index int64) *rand.Rand {
	return rand.New(rand.NewSource(Seed(seed, stream, index)))
}

// Reseed repositions rng onto the (seed, stream, index) stream,
// producing exactly the draw sequence RNG(seed, stream, index) would.
// Hot loops hold one rand.Rand per worker (see ForEachWith) and reseed
// it per item, eliminating the per-item source allocation while keeping
// the draws bit-identical to the allocate-per-item path.
func Reseed(rng *rand.Rand, seed int64, stream uint64, index int64) {
	rng.Seed(Seed(seed, stream, index))
}
