// Package eft implements error-free transformations on the ieee754
// softfloat: algorithms that compute both the rounded result of an
// operation and, exactly, the rounding error it committed.
//
// These are the classical tools of the "numeric correctness" work the
// paper's background section asks participants about (Knuth/Møller
// TwoSum, Dekker's split product, FMA-based TwoProduct, Neumaier
// compensated summation, Ogita-Rump-Oishi compensated dot product).
// They make the paper's "Operation Precision" quiz fact constructive:
// the precision an operation loses is itself a representable number you
// can compute and carry.
package eft

import "fpstudy/internal/ieee754"

// TwoSum returns s = round(a+b) and err such that a + b == s + err
// exactly (Knuth). Valid for any rounding mode and any finite inputs
// whose sum does not overflow.
func TwoSum(e *ieee754.Env, f ieee754.Format, a, b uint64) (s, err uint64) {
	s = f.Add(e, a, b)
	bb := f.Sub(e, s, a)
	errA := f.Sub(e, a, f.Sub(e, s, bb))
	errB := f.Sub(e, b, bb)
	err = f.Add(e, errA, errB)
	return s, err
}

// FastTwoSum returns s = round(a+b) and the exact error, requiring
// |a| >= |b| (Dekker). One operation cheaper than TwoSum.
func FastTwoSum(e *ieee754.Env, f ieee754.Format, a, b uint64) (s, err uint64) {
	s = f.Add(e, a, b)
	err = f.Sub(e, b, f.Sub(e, s, a))
	return s, err
}

// TwoProduct returns p = round(a*b) and err with a*b == p + err exactly,
// using a fused multiply-add (the cheap modern formulation enabled by
// the 2008 standard's FMA).
func TwoProduct(e *ieee754.Env, f ieee754.Format, a, b uint64) (p, err uint64) {
	p = f.Mul(e, a, b)
	err = f.FMA(e, a, b, f.Neg(p))
	return p, err
}

// split returns hi, lo with a == hi + lo, each holding at most
// ceil(p/2) significant bits (Dekker/Veltkamp splitting).
func split(e *ieee754.Env, f ieee754.Format, a uint64) (hi, lo uint64) {
	// factor = 2^ceil(p/2) + 1.
	shift := (f.Precision() + 1) / 2
	var scratch ieee754.Env
	factor := f.FromFloat64(&scratch, 1)
	factor = f.ScaleB(&scratch, factor, int(shift))
	factor = f.Add(&scratch, factor, f.One(false))

	c := f.Mul(e, factor, a)
	hi = f.Sub(e, c, f.Sub(e, c, a))
	lo = f.Sub(e, a, hi)
	return hi, lo
}

// TwoProductDekker is the pre-FMA formulation of TwoProduct, using
// Veltkamp splitting — what numeric-correctness code did before fused
// multiply-add hardware. Exact when no intermediate overflow occurs.
func TwoProductDekker(e *ieee754.Env, f ieee754.Format, a, b uint64) (p, err uint64) {
	p = f.Mul(e, a, b)
	ahi, alo := split(e, f, a)
	bhi, blo := split(e, f, b)
	// err = ((ahi*bhi - p) + ahi*blo + alo*bhi) + alo*blo
	t1 := f.Sub(e, f.Mul(e, ahi, bhi), p)
	t2 := f.Add(e, t1, f.Mul(e, ahi, blo))
	t3 := f.Add(e, t2, f.Mul(e, alo, bhi))
	err = f.Add(e, t3, f.Mul(e, alo, blo))
	return p, err
}

// SumNeumaier computes the sum of xs with Neumaier's improved
// Kahan-Babuska compensation: the running error term is itself summed,
// making the result nearly as accurate as doubled precision.
func SumNeumaier(e *ieee754.Env, f ieee754.Format, xs []uint64) uint64 {
	sum := f.Zero(false)
	comp := f.Zero(false)
	for _, x := range xs {
		t := f.Add(e, sum, x)
		if f.Ge(e, f.Abs(sum), f.Abs(x)) {
			comp = f.Add(e, comp, f.Add(e, f.Sub(e, sum, t), x))
		} else {
			comp = f.Add(e, comp, f.Add(e, f.Sub(e, x, t), sum))
		}
		sum = t
	}
	return f.Add(e, sum, comp)
}

// SumNaive is the plain left-to-right sum, for comparison.
func SumNaive(e *ieee754.Env, f ieee754.Format, xs []uint64) uint64 {
	sum := f.Zero(false)
	for _, x := range xs {
		sum = f.Add(e, sum, x)
	}
	return sum
}

// Sum2 computes the sum with full error-free transformation cascading
// (Ogita-Rump-Oishi Sum2): result is the correctly rounded sum of the
// exact pairwise errors plus the naive sum — accuracy as if computed in
// twice the working precision.
func Sum2(e *ieee754.Env, f ieee754.Format, xs []uint64) uint64 {
	if len(xs) == 0 {
		return f.Zero(false)
	}
	sum := xs[0]
	comp := f.Zero(false)
	for _, x := range xs[1:] {
		var err uint64
		sum, err = TwoSum(e, f, sum, x)
		comp = f.Add(e, comp, err)
	}
	return f.Add(e, sum, comp)
}

// Dot2 computes a dot product with compensated accumulation
// (Ogita-Rump-Oishi Dot2): as accurate as evaluating in doubled
// precision then rounding.
func Dot2(e *ieee754.Env, f ieee754.Format, xs, ys []uint64) uint64 {
	if len(xs) != len(ys) {
		panic("eft: length mismatch")
	}
	if len(xs) == 0 {
		return f.Zero(false)
	}
	p, s := TwoProduct(e, f, xs[0], ys[0])
	for i := 1; i < len(xs); i++ {
		h, r := TwoProduct(e, f, xs[i], ys[i])
		var q uint64
		p, q = TwoSum(e, f, p, h)
		s = f.Add(e, s, f.Add(e, q, r))
	}
	return f.Add(e, p, s)
}

// DotNaive is the uncompensated dot product, for comparison.
func DotNaive(e *ieee754.Env, f ieee754.Format, xs, ys []uint64) uint64 {
	acc := f.Zero(false)
	for i := range xs {
		acc = f.Add(e, acc, f.Mul(e, xs[i], ys[i]))
	}
	return acc
}
