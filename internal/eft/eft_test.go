package eft

import (
	"math"
	"math/rand"
	"testing"

	"fpstudy/internal/ieee754"
	"fpstudy/internal/mpfloat"
)

var f64 = ieee754.Binary64

func randVal(rng *rand.Rand) uint64 {
	var e ieee754.Env
	switch rng.Intn(3) {
	case 0:
		return f64.FromFloat64(&e, (rng.Float64()*2-1)*math.Ldexp(1, rng.Intn(60)-30))
	case 1:
		return f64.FromFloat64(&e, float64(rng.Intn(2001)-1000))
	default:
		return f64.FromFloat64(&e, rng.NormFloat64())
	}
}

// exactSum checks a + b == s + err with exact (arbitrary precision)
// arithmetic.
func exactPairEqual(a, b, s, err uint64) bool {
	ctx := mpfloat.NewContext(300)
	lhs := ctx.Add(mpfloat.FromBits(f64, a), mpfloat.FromBits(f64, b))
	rhs := ctx.Add(mpfloat.FromBits(f64, s), mpfloat.FromBits(f64, err))
	return lhs.Cmp(rhs) == 0
}

func exactProdEqual(a, b, p, err uint64) bool {
	ctx := mpfloat.NewContext(300)
	lhs := ctx.Mul(mpfloat.FromBits(f64, a), mpfloat.FromBits(f64, b))
	rhs := ctx.Add(mpfloat.FromBits(f64, p), mpfloat.FromBits(f64, err))
	return lhs.Cmp(rhs) == 0
}

func TestTwoSumExact(t *testing.T) {
	var e ieee754.Env
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 30000; i++ {
		a, b := randVal(rng), randVal(rng)
		s, err := TwoSum(&e, f64, a, b)
		if !exactPairEqual(a, b, s, err) {
			t.Fatalf("TwoSum(%v, %v) = %v + %v: not exact",
				f64.ToFloat64(a), f64.ToFloat64(b), f64.ToFloat64(s), f64.ToFloat64(err))
		}
	}
}

func TestFastTwoSumExactWhenOrdered(t *testing.T) {
	var e ieee754.Env
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30000; i++ {
		a, b := randVal(rng), randVal(rng)
		if f64.Lt(&e, f64.Abs(a), f64.Abs(b)) {
			a, b = b, a
		}
		s, err := FastTwoSum(&e, f64, a, b)
		if !exactPairEqual(a, b, s, err) {
			t.Fatalf("FastTwoSum(%v, %v): not exact", f64.ToFloat64(a), f64.ToFloat64(b))
		}
	}
}

func TestTwoProductExact(t *testing.T) {
	var e ieee754.Env
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30000; i++ {
		a, b := randVal(rng), randVal(rng)
		p, err := TwoProduct(&e, f64, a, b)
		if f64.IsSubnormal(err) || f64.IsSubnormal(p) {
			continue // underflow voids the exactness guarantee
		}
		if !exactProdEqual(a, b, p, err) {
			t.Fatalf("TwoProduct(%v, %v): not exact", f64.ToFloat64(a), f64.ToFloat64(b))
		}
	}
}

func TestTwoProductDekkerMatchesFMA(t *testing.T) {
	var e ieee754.Env
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 30000; i++ {
		a, b := randVal(rng), randVal(rng)
		p1, e1 := TwoProduct(&e, f64, a, b)
		p2, e2 := TwoProductDekker(&e, f64, a, b)
		if f64.IsSubnormal(e1) {
			continue
		}
		if p1 != p2 || e1 != e2 {
			t.Fatalf("Dekker(%v, %v) = (%v, %v), FMA form (%v, %v)",
				f64.ToFloat64(a), f64.ToFloat64(b),
				f64.ToFloat64(p2), f64.ToFloat64(e2),
				f64.ToFloat64(p1), f64.ToFloat64(e1))
		}
	}
}

// illConditionedSum builds a series whose naive sum is garbage: huge
// cancellations around tiny residuals.
func illConditionedSum(rng *rand.Rand, n int) []uint64 {
	var e ieee754.Env
	out := make([]uint64, 0, 2*n+1)
	for i := 0; i < n; i++ {
		big := math.Ldexp(rng.Float64()+1, 40+rng.Intn(12))
		out = append(out, f64.FromFloat64(&e, big), f64.FromFloat64(&e, -big))
		out = append(out, f64.FromFloat64(&e, rng.Float64()))
	}
	return out
}

// exactSumOf computes the exact sum via arbitrary precision.
func exactSumOf(xs []uint64) mpfloat.Float {
	ctx := mpfloat.NewContext(400)
	s := mpfloat.Zero(false)
	for _, x := range xs {
		s = ctx.Add(s, mpfloat.FromBits(f64, x))
	}
	return s
}

func TestSum2BeatsNaiveOnIllConditioned(t *testing.T) {
	var e ieee754.Env
	rng := rand.New(rand.NewSource(5))
	worseCount := 0
	for trial := 0; trial < 20; trial++ {
		xs := illConditionedSum(rng, 100)
		exact := exactSumOf(xs).Float64()
		naive := f64.ToFloat64(SumNaive(&e, f64, xs))
		sum2 := f64.ToFloat64(Sum2(&e, f64, xs))
		neumaier := f64.ToFloat64(SumNeumaier(&e, f64, xs))
		errNaive := math.Abs(naive - exact)
		errSum2 := math.Abs(sum2 - exact)
		errNeu := math.Abs(neumaier - exact)
		if errSum2 > errNaive {
			worseCount++
		}
		// Sum2 should essentially nail it.
		if errSum2 > math.Abs(exact)*1e-12+1e-9 {
			t.Fatalf("trial %d: Sum2 err %g (exact %g)", trial, errSum2, exact)
		}
		if errNeu > math.Abs(exact)*1e-12+1e-9 {
			t.Fatalf("trial %d: Neumaier err %g", trial, errNeu)
		}
	}
	if worseCount > 2 {
		t.Fatalf("Sum2 worse than naive in %d/20 trials", worseCount)
	}
}

func TestDot2BeatsNaive(t *testing.T) {
	var e ieee754.Env
	rng := rand.New(rand.NewSource(6))
	// Ill-conditioned dot product: x·y ~ 0 with large components.
	n := 50
	xs := make([]uint64, 2*n)
	ys := make([]uint64, 2*n)
	for i := 0; i < n; i++ {
		a := math.Ldexp(rng.Float64()+1, 30)
		b := rng.Float64() + 1
		xs[2*i] = f64.FromFloat64(&e, a)
		ys[2*i] = f64.FromFloat64(&e, b)
		xs[2*i+1] = f64.FromFloat64(&e, -a)
		ys[2*i+1] = f64.FromFloat64(&e, b*(1+1e-13))
	}
	ctx := mpfloat.NewContext(400)
	exact := mpfloat.Zero(false)
	for i := range xs {
		exact = ctx.Add(exact, ctx.Mul(mpfloat.FromBits(f64, xs[i]), mpfloat.FromBits(f64, ys[i])))
	}
	want := exact.Float64()
	naive := f64.ToFloat64(DotNaive(&e, f64, xs, ys))
	dot2 := f64.ToFloat64(Dot2(&e, f64, xs, ys))
	if math.Abs(dot2-want) >= math.Abs(naive-want) {
		t.Fatalf("dot2 err %g not better than naive err %g (want %g)",
			math.Abs(dot2-want), math.Abs(naive-want), want)
	}
	if want != 0 && math.Abs(dot2-want)/math.Abs(want) > 1e-10 {
		t.Fatalf("dot2 = %g, exact %g", dot2, want)
	}
}

func TestEFTInOtherFormats(t *testing.T) {
	// TwoSum exactness is format-generic; verify in binary32 and
	// binary16 against exact arithmetic.
	var e ieee754.Env
	rng := rand.New(rand.NewSource(7))
	for _, f := range []ieee754.Format{ieee754.Binary32, ieee754.Binary16} {
		for i := 0; i < 5000; i++ {
			var s ieee754.Env
			a := f.FromFloat64(&s, (rng.Float64()*2-1)*math.Ldexp(1, rng.Intn(10)))
			b := f.FromFloat64(&s, (rng.Float64()*2-1)*math.Ldexp(1, rng.Intn(10)))
			sum, err := TwoSum(&e, f, a, b)
			ctx := mpfloat.NewContext(200)
			lhs := ctx.Add(mpfloat.FromBits(f, a), mpfloat.FromBits(f, b))
			rhs := ctx.Add(mpfloat.FromBits(f, sum), mpfloat.FromBits(f, err))
			if lhs.Cmp(rhs) != 0 {
				t.Fatalf("%s TwoSum not exact: %v + %v", f.Name, f.ToFloat64(a), f.ToFloat64(b))
			}
		}
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	var e ieee754.Env
	Dot2(&e, f64, make([]uint64, 2), make([]uint64, 3))
}

func TestEmptyInputs(t *testing.T) {
	var e ieee754.Env
	if Sum2(&e, f64, nil) != f64.Zero(false) {
		t.Fatal("empty Sum2")
	}
	if Dot2(&e, f64, nil, nil) != f64.Zero(false) {
		t.Fatal("empty Dot2")
	}
	if SumNeumaier(&e, f64, nil) != f64.Zero(false) {
		t.Fatal("empty Neumaier")
	}
}
