// Package lint implements static analysis for floating point hazards —
// the paper's proposed "static ... analysis tools that can examine
// existing codebases and point developers to potentially suspicious
// code". It inspects expression trees and VM programs without running
// them, flagging the patterns behind the quiz questions most developers
// miss:
//
//   - equality comparison of computed floating point values (the
//     Identity/Associativity traps);
//   - division by a difference (potential 1/0 -> hidden infinity, the
//     Divide-by-Zero trap);
//   - sqrt of a difference (potential sqrt(negative) -> NaN);
//   - subtraction of structurally similar operands (cancellation);
//   - long naive accumulation chains (absorption; suggests compensated
//     summation);
//   - convergence loops guarded by float equality (may never
//     terminate).
package lint

import (
	"fmt"

	"fpstudy/internal/expr"
	"fpstudy/internal/fpvm"
)

// Severity grades a finding.
type Severity int

const (
	Info Severity = iota
	Warning
	Danger
)

// String renders the severity.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Danger:
		return "danger"
	}
	return "unknown"
}

// Finding is one reported hazard.
type Finding struct {
	Rule     string
	Severity Severity
	// Where locates the hazard: an expression path or an instruction
	// index rendered as "pc=N".
	Where string
	// Detail is the human explanation.
	Detail string
}

// String renders the finding as a diagnostic line.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s: %s", f.Severity, f.Rule, f.Where, f.Detail)
}

// CheckExpr statically analyzes an expression tree.
func CheckExpr(n expr.Node) []Finding {
	var out []Finding
	var walk func(n expr.Node, path string)
	add := func(rule string, sev Severity, path, detail string) {
		if path == "" {
			path = "/"
		}
		out = append(out, Finding{Rule: rule, Severity: sev, Where: path, Detail: detail})
	}
	walk = func(n expr.Node, path string) {
		switch t := n.(type) {
		case expr.Unary:
			if t.Op == expr.OpSqrt {
				if b, ok := t.X.(expr.Binary); ok && b.Op == expr.OpSub {
					add("sqrt-of-difference", Warning, path,
						fmt.Sprintf("sqrt(%s) is NaN whenever the difference goes negative", t.X.String()))
				}
			}
			walk(t.X, path+"/x")
		case expr.Binary:
			switch t.Op {
			case expr.OpDiv:
				if b, ok := t.Y.(expr.Binary); ok && (b.Op == expr.OpSub || b.Op == expr.OpAdd) {
					add("division-by-difference", Danger, path,
						fmt.Sprintf("dividing by %s: an exact cancellation gives 1/0 = infinity with no NaN to warn you", t.Y.String()))
				}
			case expr.OpSub:
				if expr.Equal(t.X, t.Y) {
					add("self-subtraction", Warning, path,
						"x - x is 0 only for finite x; NaN/Inf operands poison it (and fast-math folds it)")
				} else if similar(t.X, t.Y) {
					add("cancellation-risk", Warning, path,
						fmt.Sprintf("subtracting structurally similar values (%s vs %s) cancels leading digits", t.X.String(), t.Y.String()))
				}
			case expr.OpAdd:
				if depth := chainDepth(n, expr.OpAdd); depth >= 8 {
					add("long-sum-chain", Info, path,
						fmt.Sprintf("%d-term naive accumulation: consider compensated summation", depth))
				}
			}
			walk(t.X, path+"/lhs")
			walk(t.Y, path+"/rhs")
		case expr.FMA:
			walk(t.X, path+"/x")
			walk(t.Y, path+"/y")
			walk(t.Z, path+"/z")
		}
	}
	walk(n, "")
	return out
}

// similar is a structural heuristic: the operands share the same shape
// and at least one variable.
func similar(a, b expr.Node) bool {
	if !sameShape(a, b) {
		return false
	}
	av := expr.Vars(a)
	bv := map[string]bool{}
	for _, v := range expr.Vars(b) {
		bv[v] = true
	}
	for _, v := range av {
		if bv[v] {
			return true
		}
	}
	return false
}

func sameShape(a, b expr.Node) bool {
	switch x := a.(type) {
	case expr.Lit:
		_, ok := b.(expr.Lit)
		return ok
	case expr.Var:
		_, ok := b.(expr.Var)
		return ok
	case expr.Unary:
		y, ok := b.(expr.Unary)
		return ok && x.Op == y.Op && sameShape(x.X, y.X)
	case expr.Binary:
		y, ok := b.(expr.Binary)
		return ok && x.Op == y.Op && sameShape(x.X, y.X) && sameShape(x.Y, y.Y)
	case expr.FMA:
		y, ok := b.(expr.FMA)
		return ok && sameShape(x.X, y.X) && sameShape(x.Y, y.Y) && sameShape(x.Z, y.Z)
	}
	return false
}

// chainDepth counts the left-leaning chain length of op at n.
func chainDepth(n expr.Node, op expr.BinOp) int {
	b, ok := n.(expr.Binary)
	if !ok || b.Op != op {
		return 0
	}
	return 1 + chainDepth(b.X, op)
}

// CheckProgram statically analyzes a VM program.
func CheckProgram(p *fpvm.Program) []Finding {
	var out []Finding
	add := func(rule string, sev Severity, pc int, detail string) {
		out = append(out, Finding{
			Rule: rule, Severity: sev,
			Where:  fmt.Sprintf("pc=%d", pc),
			Detail: detail,
		})
	}
	// Rule: float equality as control flow. Backward jumps guarded by
	// equality are convergence loops that may never terminate; forward
	// ones are still the == trap.
	for pc, in := range p.Code {
		switch in.Op {
		case fpvm.OpJeq, fpvm.OpJne:
			if in.Target <= pc {
				add("equality-convergence-loop", Danger, pc,
					"loop guarded by floating point equality may never terminate (oscillating last bits); compare against a tolerance")
			} else {
				add("float-equality-branch", Warning, pc,
					"branching on floating point equality: values that 'should' be equal often differ in the last bits")
			}
		case fpvm.OpDiv:
			// Division right after a subtraction computing the
			// divisor: the stack top (divisor) came from a sub.
			if pc > 0 && p.Code[pc-1].Op == fpvm.OpSub {
				add("division-by-difference", Danger, pc,
					"divisor produced by a subtraction: exact cancellation yields division by zero")
			}
		case fpvm.OpSqrt:
			if pc > 0 && p.Code[pc-1].Op == fpvm.OpSub {
				add("sqrt-of-difference", Warning, pc,
					"sqrt of a subtraction result: NaN when the difference is negative")
			}
		}
	}
	return out
}

// WorstSeverity returns the maximum severity among findings (Info when
// empty).
func WorstSeverity(fs []Finding) Severity {
	worst := Info
	for _, f := range fs {
		if f.Severity > worst {
			worst = f.Severity
		}
	}
	return worst
}
