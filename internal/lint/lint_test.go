package lint

import (
	"strings"
	"testing"

	"fpstudy/internal/expr"
	"fpstudy/internal/fpvm"
)

func rules(fs []Finding) map[string]int {
	out := map[string]int{}
	for _, f := range fs {
		out[f.Rule]++
	}
	return out
}

func TestDivisionByDifference(t *testing.T) {
	fs := CheckExpr(expr.MustParse("1/(a - b)"))
	r := rules(fs)
	if r["division-by-difference"] != 1 {
		t.Fatalf("findings: %v", fs)
	}
	if WorstSeverity(fs) != Danger {
		t.Fatalf("severity: %v", WorstSeverity(fs))
	}
	// Division by a plain variable is fine.
	if len(CheckExpr(expr.MustParse("1/b"))) != 0 {
		t.Fatal("1/b flagged")
	}
}

func TestSqrtOfDifference(t *testing.T) {
	fs := CheckExpr(expr.MustParse("sqrt(b*b - 4*a*c)"))
	if rules(fs)["sqrt-of-difference"] != 1 {
		t.Fatalf("findings: %v", fs)
	}
	if len(CheckExpr(expr.MustParse("sqrt(a*a + b*b)"))) != 0 {
		t.Fatal("benign hypot flagged")
	}
}

func TestSelfSubtractionAndCancellation(t *testing.T) {
	fs := CheckExpr(expr.MustParse("a - a"))
	if rules(fs)["self-subtraction"] != 1 {
		t.Fatalf("findings: %v", fs)
	}
	// (a+b) - (a+c): same shape, shared variable -> cancellation risk.
	fs = CheckExpr(expr.MustParse("(a + b) - (a + c)"))
	if rules(fs)["cancellation-risk"] != 1 {
		t.Fatalf("findings: %v", fs)
	}
	// a - b: different but same shape (two vars)... shares no common
	// structure beyond being vars; flagged only if they share a
	// variable — they don't.
	if len(CheckExpr(expr.MustParse("a - b"))) != 0 {
		t.Fatal("a - b flagged")
	}
}

func TestLongSumChain(t *testing.T) {
	terms := make([]expr.Node, 12)
	for i := range terms {
		terms[i] = expr.V("x")
	}
	fs := CheckExpr(expr.SumChain(terms...))
	if rules(fs)["long-sum-chain"] == 0 {
		t.Fatalf("findings: %v", fs)
	}
	short := CheckExpr(expr.SumChain(expr.V("a"), expr.V("b"), expr.V("c")))
	if rules(short)["long-sum-chain"] != 0 {
		t.Fatal("short chain flagged")
	}
}

func TestCheckProgramEqualityLoop(t *testing.T) {
	fs := CheckProgram(fpvm.NewtonSqrt)
	r := rules(fs)
	// NewtonSqrt converges via jeq to a *forward* label (done), so it
	// is the equality-branch warning, not the loop danger.
	if r["float-equality-branch"] == 0 && r["equality-convergence-loop"] == 0 {
		t.Fatalf("newton-sqrt not flagged: %v", fs)
	}
	// A backward equality loop is the dangerous form.
	spin := fpvm.MustAssemble("spin", `
label top
	load x
	loadc 1
	jeq top
	loadc 0
	ret
`)
	fs = CheckProgram(spin)
	if rules(fs)["equality-convergence-loop"] != 1 {
		t.Fatalf("backward jeq not flagged: %v", fs)
	}
}

func TestCheckProgramDivAfterSub(t *testing.T) {
	p := fpvm.MustAssemble("t", `
	loadc 1
	load a
	load b
	sub
	div
	ret
`)
	fs := CheckProgram(p)
	if rules(fs)["division-by-difference"] != 1 {
		t.Fatalf("findings: %v", fs)
	}
	// Quadratic root: sqrt right after sub.
	fs = CheckProgram(fpvm.QuadraticRoot)
	if rules(fs)["sqrt-of-difference"] != 1 {
		t.Fatalf("quadratic findings: %v", fs)
	}
}

func TestFindingString(t *testing.T) {
	fs := CheckExpr(expr.MustParse("1/(a - b)"))
	s := fs[0].String()
	for _, want := range []string{"danger", "division-by-difference", "infinity"} {
		if !strings.Contains(s, want) {
			t.Errorf("finding %q missing %q", s, want)
		}
	}
}

func TestHarmonicSumClean(t *testing.T) {
	// The harmonic program divides by a loop counter (not a
	// difference) and loops on jle, not equality: no danger findings.
	fs := CheckProgram(fpvm.HarmonicSum)
	if WorstSeverity(fs) >= Danger {
		t.Fatalf("harmonic-sum flagged dangerous: %v", fs)
	}
}

func TestSeverityString(t *testing.T) {
	if Info.String() != "info" || Warning.String() != "warning" || Danger.String() != "danger" {
		t.Fatal("severity strings")
	}
}
