// Package paperdata records the published numbers from Dinda & Hetland,
// "Do Developers Understand IEEE Floating Point?" (IPDPS 2018), as Go
// data. The respondent model calibrates against these targets and the
// benchmark harness compares regenerated figures to them.
//
// Figures 1-15 are exact values from the paper's tables. Figures 16-22
// are published only as charts; the values here are digitized estimates
// consistent with the paper's text (each use site documents the
// shape properties that must hold rather than exact magnitudes).
package paperdata

// NMain is the size of the main survey population.
const NMain = 199

// NStudent is the size of the student suspicion-quiz population.
const NStudent = 52

// CountEntry is one row of an n/% table.
type CountEntry struct {
	Label string
	N     int
}

// Figure1Positions: positions of participants.
var Figure1Positions = []CountEntry{
	{"Ph.D. student", 73},
	{"Faculty", 49},
	{"Software engineer", 23},
	{"Research staff", 17},
	{"Research scientist", 11},
	{"M.S. student", 8},
	{"Undergraduate", 7},
	{"Postdoc", 4},
	{"Manager", 3},
	{"Other", 5},
}

// Figure2Areas: areas of formal training. Single-count areas are
// grouped as "Other (single)" entries preserved individually.
var Figure2Areas = []CountEntry{
	{"Computer Science", 80},
	{"Other Physical Science Field", 38},
	{"Other Engineering Field", 26},
	{"Computer Engineering", 19},
	{"Mathematics", 10},
	{"Electrical Engineering", 9},
	{"Economics", 2},
	{"Other Non-Physical Science Field", 2},
	{"CS&Math", 2},
	{"CS&CE", 2},
	{"Political Science and Statistics", 1},
	{"Social Sciences", 1},
	{"Robotics", 1},
	{"Econometrics", 1},
	{"Biomedical Engineering", 1},
	{"MMSS", 1},
	{"Statistics", 1},
	{"Mechanical Engineering", 1},
	{"Unreported", 1},
}

// Figure3FormalTraining: formal training in floating point.
var Figure3FormalTraining = []CountEntry{
	{"One or more lectures in course", 62},
	{"None", 52},
	{"One or more weeks within a course", 49},
	{"One or more courses", 35},
	{"Not reported", 1},
}

// Figure4InformalTraining: informal training (multi-select, top 5).
var Figure4InformalTraining = []CountEntry{
	{"Googled when necessary", 138},
	{"Read about it", 136},
	{"Discussed with coworkers/etc", 89},
	{"Trained by adviser/mentor", 38},
	{"Watched video", 22},
}

// Figure5Roles: software development roles.
var Figure5Roles = []CountEntry{
	{"I develop software to support my main role", 119},
	{"My main role is as a software engineer", 50},
	{"I manage others who develop software to support my main role", 19},
	{"My main role is to manage software engineers", 6},
	{"Not Reported", 5},
}

// Figure6FPLanguages: floating point language experience (multi-select,
// the 13 languages with n >= 5).
var Figure6FPLanguages = []CountEntry{
	{"Python", 142},
	{"C", 139},
	{"C++", 136},
	{"Matlab", 105},
	{"Java", 100},
	{"Fortran", 65},
	{"R", 48},
	{"C#", 26},
	{"Perl", 25},
	{"Scheme/Racket", 17},
	{"Haskell", 12},
	{"ML", 9},
	{"JavaScript", 6},
}

// Figure7ArbPrec: arbitrary precision language experience (multi-select,
// the 9 entries with n >= 5).
var Figure7ArbPrec = []CountEntry{
	{"Mathematica", 71},
	{"Maple", 29},
	{"Other language", 20},
	{"MPFR/GNU MultiPrecision Library", 19},
	{"Scheme/Racket/LISP with BigNums", 13},
	{"Other library", 13},
	{"Matlab MultiPrecision Toolbox", 10},
	{"Haskell with arb. prec. and rationals", 8},
	{"Macsyma", 5},
}

// Figure8ContribSize: contributed codebase sizes.
var Figure8ContribSize = []CountEntry{
	{"1,001 to 10,000 lines of code", 79},
	{"10,001 to 100,000 lines of code", 65},
	{"100 to 1,000 lines of code", 27},
	{"100,001 to 1,000,000 lines of code", 17},
	{">1,000,000 lines of code", 9},
	{"<100 lines of code", 1},
	{"Not Reported", 1},
}

// Figure9ContribExtent: floating point extent in the contributed
// codebase.
var Figure9ContribExtent = []CountEntry{
	{"FP incidental", 77},
	{"FP intrinsic", 63},
	{"FP intrinsic, I did numerical correctness", 29},
	{"FP intrinsic, other team did numerical correctness", 10},
	{"FP intrinsic, my team did numeric correctness", 10},
	{"No FP involved", 9},
	{"No Report", 1},
}

// Figure10InvolvedSize: involved codebase sizes.
var Figure10InvolvedSize = []CountEntry{
	{"10,001 to 100,000 lines of code", 61},
	{"1,001 to 10,000 lines of code", 53},
	{">1,000,000 lines of code", 36},
	{"100,001 to 1,000,000 lines of code", 36},
	{"100 to 1,000 lines of code", 8},
	{"<100 lines of code", 2},
	{"No Report", 3},
}

// Figure11InvolvedExtent: floating point extent in the involved
// codebase.
var Figure11InvolvedExtent = []CountEntry{
	{"FP incidental", 71},
	{"FP intrinsic", 55},
	{"FP intrinsic, I did numerical correctness", 23},
	{"FP intrinsic, other team did numerical correctness", 17},
	{"No FP involved", 15},
	{"FP intrinsic, my team did numeric correctness", 13},
	{"No Report", 5},
}

// QuizAverages is the Figure 12 table: expected per-participant counts.
type QuizAverages struct {
	Correct    float64
	Incorrect  float64
	DontKnow   float64
	NoAnswer   float64
	Chance     float64
	NQuestions int
}

// Figure12Core: average performance on the 15-question core quiz.
var Figure12Core = QuizAverages{
	Correct: 8.5, Incorrect: 4.0, DontKnow: 2.3, NoAnswer: 0.2,
	Chance: 7.5, NQuestions: 15,
}

// Figure12Opt: average performance on the optimization quiz (3 scored
// T/F questions; Standard-compliant Level is excluded from the chance
// computation as it is not T/F).
var Figure12Opt = QuizAverages{
	Correct: 0.6, Incorrect: 0.2, DontKnow: 2.2, NoAnswer: 0.1,
	Chance: 1.5, NQuestions: 4,
}

// QuestionBreakdown is one row of Figures 14/15: per-question response
// percentages.
type QuestionBreakdown struct {
	Label      string
	Correct    float64 // percent
	Incorrect  float64
	DontKnow   float64
	Unanswered float64
	// ChanceLevel marks questions the paper boldfaces as answered at
	// the level of chance; WrongMajority marks italicized questions
	// answered incorrectly (or unknown) more often than correctly.
	ChanceLevel   bool
	WrongMajority bool
}

// Figure14Core: per-question core quiz breakdown (exact values).
var Figure14Core = []QuestionBreakdown{
	{"Commutativity", 53.3, 27.6, 18.6, 0.5, true, false},
	{"Associativity", 69.3, 14.1, 15.6, 1.0, false, false},
	{"Distributivity", 81.9, 6.0, 10.6, 1.5, false, false},
	{"Ordering", 80.4, 6.0, 12.6, 1.0, false, false},
	{"Identity", 16.6, 76.9, 5.5, 1.0, false, true},
	{"Negative Zero", 58.8, 28.1, 11.6, 1.5, true, false},
	{"Square", 47.2, 35.2, 16.6, 1.0, true, false},
	{"Overflow", 60.8, 24.1, 11.1, 4.0, false, false},
	{"Divide By Zero", 11.6, 76.4, 11.1, 1.0, false, true},
	{"Zero Divide By Zero", 70.4, 9.0, 19.6, 1.0, false, false},
	{"Saturation Plus", 54.8, 26.1, 17.6, 1.5, true, false},
	{"Saturation Minus", 53.3, 25.6, 19.6, 1.5, true, false},
	{"Denormal Precision", 52.3, 24.6, 22.1, 1.0, true, false},
	{"Operation Precision", 73.4, 9.0, 16.6, 1.0, false, false},
	{"Exception Signal", 69.3, 10.1, 19.6, 1.0, false, false},
}

// Figure15Opt: per-question optimization quiz breakdown (exact values).
var Figure15Opt = []QuestionBreakdown{
	{"MADD", 15.6, 10.0, 72.4, 2.0, false, true},
	{"Flush to Zero", 13.6, 7.5, 76.9, 2.0, false, true},
	{"Standard-compliant Level", 8.5, 20.7, 68.8, 2.0, false, true},
	{"Fast-math", 29.1, 3.0, 65.8, 2.0, false, true},
}

// FactorEffect records the approximate mean core-quiz score for each
// level of a background factor (digitized from Figures 16-19; the text
// pins the extremes: baseline ~8.5, best factor levels ~11, worst near
// or below chance).
type FactorEffect struct {
	Factor string
	Means  []LevelMean
}

// LevelMean pairs a factor level with its mean correct count.
type LevelMean struct {
	Level string
	Mean  float64
}

// Figure16ContribSizeEffect: mean core score by contributed codebase
// size. Monotone increasing; >1M reaches ~11/15.
var Figure16ContribSizeEffect = FactorEffect{
	Factor: "Contributed Codebase Size",
	Means: []LevelMean{
		{"<100 lines of code", 7.0},
		{"100 to 1,000 lines of code", 7.4},
		{"1,001 to 10,000 lines of code", 8.0},
		{"10,001 to 100,000 lines of code", 9.0},
		{"100,001 to 1,000,000 lines of code", 10.0},
		{">1,000,000 lines of code", 11.0},
	},
}

// Figure17AreaEffect: mean core score by area. EE/CS/CE near 10-11;
// other physical science and other engineering at chance (~7.5).
var Figure17AreaEffect = FactorEffect{
	Factor: "Area",
	Means: []LevelMean{
		{"Electrical Engineering", 11.0},
		{"Computer Science", 10.0},
		{"Computer Engineering", 10.0},
		{"Mathematics", 9.0},
		{"Other Physical Science Field", 7.5},
		{"Other Engineering Field", 7.5},
		{"Other", 7.8},
	},
}

// Figure18RoleEffect: mean core score by software development role.
var Figure18RoleEffect = FactorEffect{
	Factor: "Software Development Role",
	Means: []LevelMean{
		{"My main role is as a software engineer", 9.6},
		{"My main role is to manage software engineers", 9.0},
		{"I manage others who develop software to support my main role", 8.4},
		{"I develop software to support my main role", 8.2},
	},
}

// Figure19TrainingEffect: mean core score by formal floating point
// training; the paper stresses the effect is small (max gain ~1/15).
var Figure19TrainingEffect = FactorEffect{
	Factor: "Formal Training",
	Means: []LevelMean{
		{"One or more courses", 9.4},
		{"One or more weeks within a course", 9.0},
		{"One or more lectures in course", 8.5},
		{"None", 7.9},
	},
}

// Figure20OptAreaEffect: mean optimization-quiz correct count by area
// (scored questions only; caps quickly at ~0.5 above the 0.6 baseline).
var Figure20OptAreaEffect = FactorEffect{
	Factor: "Area",
	Means: []LevelMean{
		{"Electrical Engineering", 1.1},
		{"Computer Science", 1.0},
		{"Computer Engineering", 1.0},
		{"Mathematics", 0.6},
		{"Other Physical Science Field", 0.35},
		{"Other Engineering Field", 0.35},
		{"Other", 0.4},
	},
}

// Figure21OptRoleEffect: mean optimization-quiz correct count by role.
var Figure21OptRoleEffect = FactorEffect{
	Factor: "Software Development Role",
	Means: []LevelMean{
		{"My main role is as a software engineer", 1.2},
		{"My main role is to manage software engineers", 0.9},
		{"I manage others who develop software to support my main role", 0.5},
		{"I develop software to support my main role", 0.45},
	},
}

// SuspicionDist is a Likert distribution for one condition: percent of
// the group reporting each level 1..5.
type SuspicionDist struct {
	Condition string
	Percent   [5]float64
}

// Figure22Main: suspicion distributions for the 199-participant main
// group (digitized; the text pins Invalid max-suspicion at ~2/3 and the
// ordering Invalid > Overflow > others).
var Figure22Main = []SuspicionDist{
	{"Overflow", [5]float64{5, 10, 20, 30, 35}},
	{"Underflow", [5]float64{20, 30, 25, 15, 10}},
	{"Precision", [5]float64{25, 30, 25, 12, 8}},
	{"Invalid", [5]float64{4, 6, 10, 15, 65}},
	{"Denorm", [5]float64{18, 27, 28, 17, 10}},
}

// Figure22Student: suspicion distributions for the 52-student group —
// similar to the main group but less suspicious of Underflow, Denorm,
// and Overflow (the topic was fresh from the course).
var Figure22Student = []SuspicionDist{
	{"Overflow", [5]float64{8, 15, 25, 27, 25}},
	{"Underflow", [5]float64{35, 30, 20, 10, 5}},
	{"Precision", [5]float64{25, 28, 25, 14, 8}},
	{"Invalid", [5]float64{5, 7, 10, 13, 65}},
	{"Denorm", [5]float64{30, 30, 22, 12, 6}},
}

// Total returns the sum of counts in a table.
func Total(entries []CountEntry) int {
	n := 0
	for _, e := range entries {
		n += e.N
	}
	return n
}

// Percent returns 100*n/total for a table entry.
func Percent(e CountEntry, total int) float64 {
	return 100 * float64(e.N) / float64(total)
}
