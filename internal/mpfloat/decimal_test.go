package mpfloat

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

func TestDecimalStringBasics(t *testing.T) {
	cases := []struct {
		v      float64
		digits int
		want   string
	}{
		{1, 3, "1.00e+0"},
		{-1, 3, "-1.00e+0"},
		{10, 3, "1.00e+1"},
		{0.5, 3, "5.00e-1"},
		{3, 1, "3e+0"},
		{1234, 4, "1.234e+3"},
		{0.125, 3, "1.25e-1"},
		{1e100, 2, "1.0e+100"},
		{1e-100, 2, "1.0e-100"},
	}
	for _, c := range cases {
		got := FromFloat64(c.v).DecimalString(c.digits)
		if got != c.want {
			t.Errorf("DecimalString(%v, %d) = %q, want %q", c.v, c.digits, got, c.want)
		}
	}
	if FromFloat64(0).DecimalString(5) != "0" {
		t.Error("zero")
	}
	if Zero(true).DecimalString(5) != "-0" {
		t.Error("neg zero")
	}
	if NaN().DecimalString(5) != "NaN" || Inf(true).DecimalString(3) != "-Inf" {
		t.Error("specials")
	}
}

func TestDecimalMatchesStrconv(t *testing.T) {
	// For float64 inputs at <= 17 significant digits, our exact
	// decimal conversion must agree with strconv's.
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 20000; i++ {
		v := math.Ldexp(rng.Float64()*2-1, rng.Intn(120)-60)
		if v == 0 {
			continue
		}
		for _, digits := range []int{3, 8, 15} {
			got := FromFloat64(v).DecimalString(digits)
			want := strconv.FormatFloat(v, 'e', digits-1, 64)
			// Normalize strconv's exponent ("1.50e+01" -> "1.50e+1").
			want = normalizeExp(want)
			if got != want {
				t.Fatalf("DecimalString(%v, %d) = %q, strconv %q", v, digits, got, want)
			}
		}
	}
}

func normalizeExp(s string) string {
	i := strings.IndexAny(s, "eE")
	if i < 0 {
		return s
	}
	mant, exp := s[:i], s[i+1:]
	sign := "+"
	if exp[0] == '+' || exp[0] == '-' {
		sign = string(exp[0])
		exp = exp[1:]
	}
	exp = strings.TrimLeft(exp, "0")
	if exp == "" {
		exp = "0"
	}
	return mant + "e" + sign + exp
}

func TestDecimalHighPrecisionThird(t *testing.T) {
	ctx := NewContext(200)
	third := ctx.Div(FromInt64(1), FromInt64(3))
	got := third.DecimalString(50)
	// 200-bit 1/3 agrees with the infinite expansion for ~60 digits.
	want := "3." + strings.Repeat("3", 49) + "e-1"
	if got != want {
		t.Fatalf("1/3 at 50 digits:\n got %s\nwant %s", got, want)
	}
	// sqrt(2) to 40 digits.
	sqrt2 := ctx.Sqrt(FromInt64(2))
	got = sqrt2.DecimalString(40)
	want = "1.414213562373095048801688724209698078570e+0"
	if got != want {
		t.Fatalf("sqrt(2):\n got %s\nwant %s", got, want)
	}
}

func TestDecimalRoundingTies(t *testing.T) {
	// 1.25 to 2 digits: half-to-even gives 1.2.
	if got := FromFloat64(1.25).DecimalString(2); got != "1.2e+0" {
		t.Fatalf("1.25 -> %s", got)
	}
	// 1.35 is not exactly representable; its binary value is slightly
	// above 1.35 (1.35000000000000008881...), so 2 digits give 1.4 —
	// matching strconv and making the inexactness visible.
	if got := FromFloat64(1.35).DecimalString(2); got != "1.4e+0" {
		t.Fatalf("1.35 -> %s", got)
	}
	// An exact tie from binary: 0.15625 = 1.5625e-1; at 2 digits
	// half-even rounds 1.5625 -> 1.6.
	if got := FromFloat64(0.15625).DecimalString(2); got != "1.6e-1" {
		t.Fatalf("0.15625 -> %s", got)
	}
	// Carry chain: 9.99 -> 2 digits -> 1.0e+1... (9.99 inexact in
	// binary; verify via an exact case 0.999...): use 999.5 exact?
	// 999.5 is exactly representable; at 3 digits, 9.995e2 ties to
	// even -> "1.00e+3" exercise of the overflow path:
	if got := FromFloat64(999.5).DecimalString(3); got != "1.00e+3" {
		t.Fatalf("999.5 -> %s", got)
	}
}

func TestRoundDigitsStickyUnit(t *testing.T) {
	cases := []struct {
		in     string
		n      int
		sticky bool
		want   string
		carry  bool
	}{
		{"1234", 3, false, "123", false},
		{"1235", 3, false, "124", false}, // tie, odd last kept digit rounds up
		{"1245", 3, false, "124", false}, // tie, even stays
		{"1245", 3, true, "125", false},  // sticky breaks the tie upward
		{"1999", 3, false, "200", false},
		{"9999", 3, false, "100", true}, // carry into a new magnitude
		{"12", 3, false, "120", false},  // padding
	}
	for _, c := range cases {
		got, carry := roundDigitsSticky(c.in, c.n, c.sticky)
		if got != c.want || carry != c.carry {
			t.Errorf("roundDigitsSticky(%q, %d, %v) = %q,%v want %q,%v",
				c.in, c.n, c.sticky, got, carry, c.want, c.carry)
		}
	}
}

func TestNatDecimalAndPow10(t *testing.T) {
	if natDecimal(nil) != "0" {
		t.Fatal("zero decimal")
	}
	if natDecimal(natFromUint64(123456789)) != "123456789" {
		t.Fatal("small decimal")
	}
	// 2^100 = 1267650600228229401496703205376.
	big := nat{1}.shl(100)
	if natDecimal(big) != "1267650600228229401496703205376" {
		t.Fatalf("2^100 = %s", natDecimal(big))
	}
	if natDecimal(pow10(20)) != "1"+strings.Repeat("0", 20) {
		t.Fatal("pow10(20)")
	}
	_ = fmt.Sprint() // keep fmt referenced in case of edits
}
