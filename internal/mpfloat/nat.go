package mpfloat

import "math/bits"

// nat is an arbitrary-precision natural number stored as little-endian
// 64-bit limbs with no trailing (most significant) zero limbs. The zero
// value represents 0.
type nat []uint64

// norm trims high zero limbs.
func (x nat) norm() nat {
	for len(x) > 0 && x[len(x)-1] == 0 {
		x = x[:len(x)-1]
	}
	return x
}

func natFromUint64(v uint64) nat {
	if v == 0 {
		return nil
	}
	return nat{v}
}

func (x nat) isZero() bool { return len(x) == 0 }

// bitLen returns the number of significant bits.
func (x nat) bitLen() int {
	if len(x) == 0 {
		return 0
	}
	return (len(x)-1)*64 + bits.Len64(x[len(x)-1])
}

// bit returns bit i (0 = least significant).
func (x nat) bit(i int) uint {
	limb := i / 64
	if limb >= len(x) {
		return 0
	}
	return uint(x[limb]>>(i%64)) & 1
}

// cmp returns -1, 0, 1.
func (x nat) cmp(y nat) int {
	if len(x) != len(y) {
		if len(x) < len(y) {
			return -1
		}
		return 1
	}
	for i := len(x) - 1; i >= 0; i-- {
		if x[i] != y[i] {
			if x[i] < y[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// add returns x + y.
func (x nat) add(y nat) nat {
	if len(x) < len(y) {
		x, y = y, x
	}
	z := make(nat, len(x)+1)
	var carry uint64
	for i := range x {
		yi := uint64(0)
		if i < len(y) {
			yi = y[i]
		}
		s, c1 := bits.Add64(x[i], yi, carry)
		z[i] = s
		carry = c1
	}
	z[len(x)] = carry
	return z.norm()
}

// sub returns x - y; x must be >= y.
func (x nat) sub(y nat) nat {
	z := make(nat, len(x))
	var borrow uint64
	for i := range x {
		yi := uint64(0)
		if i < len(y) {
			yi = y[i]
		}
		d, b1 := bits.Sub64(x[i], yi, borrow)
		z[i] = d
		borrow = b1
	}
	if borrow != 0 {
		panic("mpfloat: nat underflow")
	}
	return z.norm()
}

// shl returns x << n.
func (x nat) shl(n uint) nat {
	if x.isZero() || n == 0 {
		return append(nat(nil), x...)
	}
	limbShift := int(n / 64)
	bitShift := n % 64
	z := make(nat, len(x)+limbShift+1)
	for i := range x {
		z[i+limbShift] |= x[i] << bitShift
		if bitShift != 0 {
			z[i+limbShift+1] |= x[i] >> (64 - bitShift)
		}
	}
	return z.norm()
}

// shr returns x >> n and whether any set bits were shifted out (sticky).
func (x nat) shr(n uint) (nat, bool) {
	if n == 0 {
		return append(nat(nil), x...), false
	}
	limbShift := int(n / 64)
	bitShift := n % 64
	sticky := false
	for i := 0; i < limbShift && i < len(x); i++ {
		if x[i] != 0 {
			sticky = true
		}
	}
	if limbShift >= len(x) {
		return nil, sticky || !x.isZero() && limbShift > len(x)
	}
	rem := x[limbShift:]
	z := make(nat, len(rem))
	if bitShift == 0 {
		copy(z, rem)
	} else {
		if rem[0]<<(64-bitShift) != 0 {
			sticky = true
		}
		for i := range rem {
			z[i] = rem[i] >> bitShift
			if i+1 < len(rem) {
				z[i] |= rem[i+1] << (64 - bitShift)
			}
		}
		// bits below bitShift in higher limbs were already folded via
		// the pairwise shift; only rem[0]'s low bits are lost, checked
		// above. Bits lost from other limbs move into lower limbs of
		// z, not out of the number.
	}
	return z.norm(), sticky
}

// mul returns x * y (schoolbook).
func (x nat) mul(y nat) nat {
	if x.isZero() || y.isZero() {
		return nil
	}
	z := make(nat, len(x)+len(y))
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		var carry uint64
		for j, yj := range y {
			// xi*yj + z[i+j] + carry < 2^128, so the (hi, lo) pair
			// absorbs every carry without overflowing.
			hi, lo := bits.Mul64(xi, yj)
			lo, c := bits.Add64(lo, carry, 0)
			hi += c
			lo, c = bits.Add64(lo, z[i+j], 0)
			hi += c
			z[i+j] = lo
			carry = hi
		}
		// propagate carry
		for k := i + len(y); carry != 0; k++ {
			s, c := bits.Add64(z[k], carry, 0)
			z[k] = s
			carry = c
		}
	}
	return z.norm()
}

// divBits returns the top want bits of x / y along with sticky
// information: q = floor(x * 2^shift / y) where shift is chosen so q has
// exactly want significant bits (x, y nonzero), plus the base-2 exponent
// adjustment: x/y = q * 2^(-shift) ... (1 + eps). It reports whether the
// division was inexact beyond q.
func (x nat) divBits(y nat, want int) (q nat, shift int, inexact bool) {
	// Scale x so the quotient has at least `want` bits:
	// bitLen(q) ~ bitLen(x) + shift - bitLen(y) + {0,1}.
	shift = want - x.bitLen() + y.bitLen()
	if shift < 0 {
		shift = 0
	}
	num := x.shl(uint(shift))
	q, r := num.divmod(y)
	inexact = !r.isZero()
	// q may have want or want+1 bits; normalize to exactly want by a
	// final 1-bit shift if needed, folding the lost bit into sticky.
	for q.bitLen() > want {
		var s bool
		q, s = q.shr(1)
		shift--
		if s {
			inexact = true
		}
	}
	return q, shift, inexact
}

// divmod returns (x/y, x%y) by binary long division. y must be nonzero.
func (x nat) divmod(y nat) (nat, nat) {
	if y.isZero() {
		panic("mpfloat: division by zero nat")
	}
	if x.cmp(y) < 0 {
		return nil, append(nat(nil), x...)
	}
	n := x.bitLen()
	q := make(nat, (n+63)/64)
	var r nat
	for i := n - 1; i >= 0; i-- {
		// r = r<<1 | bit(x, i)
		r = r.shl(1)
		if x.bit(i) == 1 {
			if len(r) == 0 {
				r = nat{1}
			} else {
				r[0] |= 1
			}
		}
		if r.cmp(y) >= 0 {
			r = r.sub(y)
			q[i/64] |= 1 << (i % 64)
		}
	}
	return nat(q).norm(), r
}

// sqrtBits returns the top `want` bits of sqrt(x): s = floor(sqrt(x <<
// 2k)) for a k chosen so s has exactly `want` or want+1 bits, with the
// exponent adjustment (the caller divides by 2^k), plus inexactness.
func (x nat) sqrtBits(want int) (s nat, k int, inexact bool) {
	// Choose 2k so that bitLen(x<<2k)/2 ~ want.
	n := x.bitLen()
	k = want - (n+1)/2
	if k < 0 {
		k = 0
	}
	v := x.shl(uint(2 * k))
	s, rem := v.isqrt()
	inexact = !rem.isZero()
	for s.bitLen() > want {
		var st bool
		s, st = s.shr(1)
		k--
		if st {
			inexact = true
		}
	}
	return s, k, inexact
}

// isqrt returns floor(sqrt(x)) and the remainder x - s^2, via the
// digit-by-digit (restoring) method.
func (x nat) isqrt() (nat, nat) {
	if x.isZero() {
		return nil, nil
	}
	n := x.bitLen()
	if n%2 == 1 {
		n++
	}
	var s, r nat
	for i := n - 2; i >= 0; i -= 2 {
		// r = r<<2 | next two bits of x
		r = r.shl(2)
		two := x.bit(i+1)<<1 | x.bit(i)
		if two != 0 {
			if len(r) == 0 {
				r = nat{uint64(two)}
			} else {
				r[0] |= uint64(two)
			}
		}
		// trial = s<<2 | 1
		trial := s.shl(2)
		if len(trial) == 0 {
			trial = nat{1}
		} else {
			trial[0] |= 1
		}
		s = s.shl(1)
		if r.cmp(trial) >= 0 {
			r = r.sub(trial)
			if len(s) == 0 {
				s = nat{1}
			} else {
				s[0] |= 1
			}
		}
	}
	return s.norm(), r.norm()
}
