// Package mpfloat implements arbitrary-precision binary floating point
// from scratch (no math/big): sign, arbitrary exponent, and an
// arbitrary-length significand, with round-to-nearest-even at a
// configurable precision.
//
// It exists to realize one of the paper's proposed remediations: a
// system in which code written against floating point can be
// "seamlessly compiled to use arbitrary precision" for sanity checking.
// EvalExpr evaluates the same expression IR the optimizer and quiz use,
// and Shadow compares a format evaluation against a high-precision one.
package mpfloat

import (
	"fmt"
	"math"

	"fpstudy/internal/expr"
	"fpstudy/internal/ieee754"
)

// kind classifies a Float.
type kind uint8

const (
	finite kind = iota // includes zero (mant empty)
	inf
	nan
)

// Float is an arbitrary-precision binary floating point number:
// (-1)^neg * mant * 2^exp, with mant a big natural. A nil/zero Float is
// +0. Floats are immutable; operations return new values.
type Float struct {
	neg  bool
	mant nat
	exp  int64
	kind kind
}

// Context carries the working precision (in significand bits) for
// arithmetic. Results are rounded to nearest-even at Prec bits.
type Context struct {
	Prec uint
}

// NewContext returns a context with the given precision (minimum 2).
func NewContext(prec uint) Context {
	if prec < 2 {
		prec = 2
	}
	return Context{Prec: prec}
}

// Zero returns a signed zero.
func Zero(negative bool) Float { return Float{neg: negative} }

// Inf returns a signed infinity.
func Inf(negative bool) Float { return Float{neg: negative, kind: inf} }

// NaN returns a quiet NaN.
func NaN() Float { return Float{kind: nan} }

// IsNaN reports whether x is a NaN.
func (x Float) IsNaN() bool { return x.kind == nan }

// IsInf reports whether x is an infinity.
func (x Float) IsInf() bool { return x.kind == inf }

// IsZero reports whether x is a zero of either sign.
func (x Float) IsZero() bool { return x.kind == finite && x.mant.isZero() }

// Sign returns -1, 0, or +1 (NaN returns 0).
func (x Float) Sign() int {
	switch {
	case x.kind == nan || x.IsZero():
		return 0
	case x.neg:
		return -1
	}
	return 1
}

// Neg returns -x.
func (x Float) Neg() Float {
	if x.kind == nan {
		return x
	}
	x.neg = !x.neg
	return x
}

// Abs returns |x|.
func (x Float) Abs() Float {
	if x.kind == nan {
		return x
	}
	x.neg = false
	return x
}

// norm canonicalizes a finite value (strips trailing zero bits of the
// significand so representations are unique).
func (x Float) norm() Float {
	if x.kind != finite || x.mant.isZero() {
		x.mant = nil
		if x.kind == finite {
			x.exp = 0
		}
		return x
	}
	// Drop trailing zero bits.
	tz := 0
	for x.mant.bit(tz) == 0 {
		tz++
	}
	if tz > 0 {
		m, _ := x.mant.shr(uint(tz))
		x.mant = m
		x.exp += int64(tz)
	}
	return x
}

// round rounds x to the context precision (nearest even).
func (c Context) round(x Float) Float {
	if x.kind != finite || x.mant.isZero() {
		return x
	}
	n := x.mant.bitLen()
	if uint(n) <= c.Prec {
		return x.norm()
	}
	drop := uint(n) - c.Prec
	kept, _ := x.mant.shr(drop)
	// Round bit is the highest dropped bit; sticky covers the rest.
	roundBit := x.mant.bit(int(drop) - 1)
	lowSticky := false
	for i := 0; i < int(drop)-1; i++ {
		if x.mant.bit(i) == 1 {
			lowSticky = true
			break
		}
	}
	x.mant = kept
	x.exp += int64(drop)
	if roundBit == 1 && (lowSticky || kept.bit(0) == 1) {
		x.mant = x.mant.add(nat{1})
	}
	return x.norm()
}

// FromFloat64 converts a Go float64 exactly (every float64 is exactly
// representable).
func FromFloat64(v float64) Float {
	switch {
	case math.IsNaN(v):
		return NaN()
	case math.IsInf(v, +1):
		return Inf(false)
	case math.IsInf(v, -1):
		return Inf(true)
	case v == 0:
		return Zero(math.Signbit(v))
	}
	bits := math.Float64bits(v)
	neg := bits>>63 == 1
	e := int64(bits>>52) & 0x7ff
	frac := bits & (1<<52 - 1)
	var mant nat
	var exp int64
	if e == 0 {
		mant = natFromUint64(frac)
		exp = -1074
	} else {
		mant = natFromUint64(frac | 1<<52)
		exp = e - 1075
	}
	return Float{neg: neg, mant: mant, exp: exp}.norm()
}

// FromBits converts an ieee754 encoding exactly.
func FromBits(f ieee754.Format, x uint64) Float {
	return FromFloat64(f.ToFloat64(x))
}

// FromInt64 converts an integer exactly.
func FromInt64(v int64) Float {
	if v == 0 {
		return Zero(false)
	}
	neg := v < 0
	var mag uint64
	if neg {
		mag = uint64(-v)
	} else {
		mag = uint64(v)
	}
	return Float{neg: neg, mant: natFromUint64(mag)}.norm()
}

// Float64 converts to the nearest float64 (round to nearest even),
// overflowing to infinity.
func (x Float) Float64() float64 {
	switch x.kind {
	case nan:
		return math.NaN()
	case inf:
		return math.Inf(sign(x.neg))
	}
	if x.mant.isZero() {
		return math.Copysign(0, signf(x.neg))
	}
	// Round to 53 bits, then assemble via Ldexp.
	r := NewContext(53).round(x)
	n := r.mant.bitLen()
	var m uint64
	for i := 0; i < n && i < 64; i++ {
		m |= uint64(r.mant.bit(i)) << i
	}
	v := math.Ldexp(float64(m), clampInt(r.exp))
	if r.neg {
		v = -v
	}
	return v
}

func clampInt(e int64) int {
	// Ldexp saturates anyway; clamp to avoid int overflow on 32-bit.
	if e > 1<<20 {
		return 1 << 20
	}
	if e < -(1 << 20) {
		return -(1 << 20)
	}
	return int(e)
}

func sign(neg bool) int {
	if neg {
		return -1
	}
	return 1
}

func signf(neg bool) float64 {
	if neg {
		return -1
	}
	return 1
}

// ToBits rounds x to the given interchange format with a single
// round-to-nearest-even step, saturating overflow to infinity and
// applying gradual underflow into the subnormal range.
func (x Float) ToBits(f ieee754.Format) uint64 {
	switch x.kind {
	case nan:
		return f.QNaN()
	case inf:
		return f.Inf(x.neg)
	}
	if x.mant.isZero() {
		return f.Zero(x.neg)
	}
	p := int64(f.Precision())
	n := int64(x.mant.bitLen())
	e := x.exp + n - 1 // unbiased exponent of the leading bit
	emin, emax := int64(f.Emin()), int64(f.Emax())

	// The representable lattice has its least significant bit at
	// 2^(e-p+1) for normals and 2^(emin-p+1) in the subnormal range.
	lsbScale := e - (p - 1)
	if e < emin {
		lsbScale = emin - (p - 1)
	}
	drop := lsbScale - x.exp
	var kept nat
	if drop <= 0 {
		kept = x.mant.shl(uint(-drop))
	} else {
		if drop > n {
			// The value is strictly below half of the smallest
			// lattice step: it rounds to zero.
			return f.Zero(x.neg)
		}
		roundBit := x.mant.bit(int(drop) - 1)
		low := false
		for i := 0; i < int(drop)-1; i++ {
			if x.mant.bit(i) == 1 {
				low = true
				break
			}
		}
		kept, _ = x.mant.shr(uint(drop))
		if roundBit == 1 && (low || kept.bit(0) == 1) {
			kept = kept.add(nat{1})
		}
	}
	kn := int64(kept.bitLen())
	if kn == 0 {
		return f.Zero(x.neg)
	}
	e2 := lsbScale + kn - 1 // exponent after rounding (carry included)
	if e2 > emax {
		return f.Inf(x.neg)
	}
	var sigInt uint64
	for i := int64(0); i < kn; i++ {
		sigInt |= uint64(kept.bit(int(i))) << i
	}
	signBit := uint64(0)
	if x.neg {
		signBit = 1 << (f.ExpBits + f.FracBits)
	}
	if e2 < emin {
		// Subnormal: kn <= p-1, fraction aligned at emin-(p-1).
		return signBit | sigInt
	}
	frac := (sigInt << uint64(int64(f.Precision())-kn)) &^ (1 << f.FracBits)
	biased := uint64(e2 + int64(f.Bias()))
	return signBit | biased<<f.FracBits | frac
}

// Cmp compares x and y: -1, 0, +1; NaNs compare as 2 (unordered).
func (x Float) Cmp(y Float) int {
	if x.kind == nan || y.kind == nan {
		return 2
	}
	if x.IsZero() && y.IsZero() {
		return 0
	}
	sx, sy := x.Sign(), y.Sign()
	if sx != sy {
		if sx < sy {
			return -1
		}
		return 1
	}
	if x.kind == inf || y.kind == inf {
		switch {
		case x.kind == inf && y.kind == inf:
			return 0
		case x.kind == inf:
			return sx
		default:
			return -sy
		}
	}
	c := x.cmpMag(y)
	if sx < 0 {
		return -c
	}
	return c
}

// cmpMag compares |x| and |y| for finite nonzero values.
func (x Float) cmpMag(y Float) int {
	// Compare by (bitLen + exp) first, then by aligned mantissa.
	ex := x.exp + int64(x.mant.bitLen())
	ey := y.exp + int64(y.mant.bitLen())
	if ex != ey {
		if ex < ey {
			return -1
		}
		return 1
	}
	// Align to common exponent.
	a, b := x.mant, y.mant
	if x.exp > y.exp {
		a = a.shl(uint(x.exp - y.exp))
	} else if y.exp > x.exp {
		b = b.shl(uint(y.exp - x.exp))
	}
	return a.cmp(b)
}

// String renders an approximate decimal form (via float64) plus the
// exact bit length, for diagnostics.
func (x Float) String() string {
	switch x.kind {
	case nan:
		return "NaN"
	case inf:
		if x.neg {
			return "-Inf"
		}
		return "+Inf"
	}
	return fmt.Sprintf("%g", x.Float64())
}

// Add returns x + y rounded to the context precision.
func (c Context) Add(x, y Float) Float {
	if x.kind == nan || y.kind == nan {
		return NaN()
	}
	if x.kind == inf || y.kind == inf {
		switch {
		case x.kind == inf && y.kind == inf:
			if x.neg != y.neg {
				return NaN()
			}
			return x
		case x.kind == inf:
			return x
		default:
			return y
		}
	}
	if x.IsZero() && y.IsZero() {
		return Zero(x.neg && y.neg)
	}
	if x.IsZero() {
		return c.round(y)
	}
	if y.IsZero() {
		return c.round(x)
	}
	if x.neg == y.neg {
		return c.round(addMag(x, y))
	}
	// Opposite signs: subtract smaller magnitude from larger.
	switch x.cmpMag(y) {
	case 0:
		return Zero(false)
	case 1:
		return c.round(subMag(x, y)) // sign of x
	default:
		return c.round(subMag(y, x)) // sign of y
	}
}

// Sub returns x - y.
func (c Context) Sub(x, y Float) Float { return c.Add(x, y.Neg()) }

// addMag adds magnitudes; result carries x's sign.
func addMag(x, y Float) Float {
	e := x.exp
	if y.exp < e {
		e = y.exp
	}
	// Bound the alignment shift: beyond prec it only matters as a tiny
	// tail, but exactness is the point of this package, so align fully.
	a := x.mant.shl(uint(x.exp - e))
	b := y.mant.shl(uint(y.exp - e))
	return Float{neg: x.neg, mant: a.add(b), exp: e}.norm()
}

// subMag computes |x| - |y| (|x| > |y|); result carries x's sign.
func subMag(x, y Float) Float {
	e := x.exp
	if y.exp < e {
		e = y.exp
	}
	a := x.mant.shl(uint(x.exp - e))
	b := y.mant.shl(uint(y.exp - e))
	return Float{neg: x.neg, mant: a.sub(b), exp: e}.norm()
}

// Mul returns x * y rounded to the context precision.
func (c Context) Mul(x, y Float) Float {
	if x.kind == nan || y.kind == nan {
		return NaN()
	}
	neg := x.neg != y.neg
	if x.kind == inf || y.kind == inf {
		if x.IsZero() || y.IsZero() {
			return NaN()
		}
		return Inf(neg)
	}
	if x.IsZero() || y.IsZero() {
		return Zero(neg)
	}
	return c.round(Float{neg: neg, mant: x.mant.mul(y.mant), exp: x.exp + y.exp})
}

// Div returns x / y rounded to the context precision. x/0 returns a
// signed infinity (0/0 returns NaN), mirroring IEEE.
func (c Context) Div(x, y Float) Float {
	if x.kind == nan || y.kind == nan {
		return NaN()
	}
	neg := x.neg != y.neg
	switch {
	case x.kind == inf && y.kind == inf:
		return NaN()
	case x.kind == inf:
		return Inf(neg)
	case y.kind == inf:
		return Zero(neg)
	case y.IsZero():
		if x.IsZero() {
			return NaN()
		}
		return Inf(neg)
	case x.IsZero():
		return Zero(neg)
	}
	q, shift, inexact := x.mant.divBits(y.mant, int(c.Prec)+2)
	r := Float{neg: neg, mant: q, exp: x.exp - y.exp - int64(shift)}
	if inexact {
		// Fold a sticky bit below the guard bits so nearest-even
		// rounding at Prec is correct: q already has Prec+2 bits, so
		// appending a sticky 1 two bits down is safe.
		r.mant = r.mant.shl(1)
		r.mant[0] |= 1
		r.exp--
	}
	return c.round(r)
}

// Sqrt returns sqrt(x) rounded to the context precision; sqrt of a
// negative value is NaN, sqrt(-0) is -0.
func (c Context) Sqrt(x Float) Float {
	if x.kind == nan {
		return NaN()
	}
	if x.IsZero() {
		return x
	}
	if x.neg {
		return NaN()
	}
	if x.kind == inf {
		return x
	}
	// Make exponent even by shifting the mantissa.
	m := x.mant
	e := x.exp
	if e%2 != 0 {
		m = m.shl(1)
		e--
	}
	s, k, inexact := m.sqrtBits(int(c.Prec) + 2)
	r := Float{mant: s, exp: e/2 - int64(k)}
	if inexact {
		r.mant = r.mant.shl(1)
		r.mant[0] |= 1
		r.exp--
	}
	return c.round(r)
}

// FMA returns x*y + z with a single rounding at the context precision
// (the product is formed exactly).
func (c Context) FMA(x, y, z Float) Float {
	exact := Context{Prec: ^uint(0) >> 1} // no intermediate rounding
	p := exact.Mul(x, y)
	return c.Add(p, z)
}

// EvalExpr evaluates an expression tree in arbitrary precision.
// Variables are bound to exact Float values.
func (c Context) EvalExpr(n expr.Node, vars map[string]Float) Float {
	switch t := n.(type) {
	case expr.Lit:
		return FromFloat64(t.V)
	case expr.Var:
		if v, ok := vars[t.Name]; ok {
			return v
		}
		return NaN()
	case expr.Unary:
		x := c.EvalExpr(t.X, vars)
		switch t.Op {
		case expr.OpNeg:
			return x.Neg()
		case expr.OpSqrt:
			return c.Sqrt(x)
		}
	case expr.Binary:
		x := c.EvalExpr(t.X, vars)
		y := c.EvalExpr(t.Y, vars)
		switch t.Op {
		case expr.OpAdd:
			return c.Add(x, y)
		case expr.OpSub:
			return c.Sub(x, y)
		case expr.OpMul:
			return c.Mul(x, y)
		case expr.OpDiv:
			return c.Div(x, y)
		}
	case expr.FMA:
		return c.FMA(c.EvalExpr(t.X, vars), c.EvalExpr(t.Y, vars), c.EvalExpr(t.Z, vars))
	}
	return NaN()
}

// ShadowReport compares a format evaluation of an expression against an
// arbitrary-precision one.
type ShadowReport struct {
	FormatResult uint64
	FormatValue  float64
	ShadowValue  Float
	// AbsError is |format - shadow| evaluated in the shadow precision.
	AbsError Float
	// RelError is AbsError / |shadow| (NaN when shadow is 0).
	RelError Float
}

// Shadow evaluates n in format f and in arbitrary precision with the
// given context and reports the deviation — the "paranoid developer"
// workflow from the paper's conclusions.
func (c Context) Shadow(f ieee754.Format, n expr.Node, vars map[string]uint64) ShadowReport {
	var fe ieee754.Env
	fres := expr.Eval(f, &fe, n, vars)

	mpVars := map[string]Float{}
	for k, v := range vars {
		mpVars[k] = FromBits(f, v)
	}
	sres := c.EvalExpr(n, mpVars)

	rep := ShadowReport{
		FormatResult: fres,
		FormatValue:  f.ToFloat64(fres),
		ShadowValue:  sres,
	}
	fAsMP := FromBits(f, fres)
	rep.AbsError = c.Sub(fAsMP, sres).Abs()
	if !sres.IsZero() && sres.kind == finite {
		rep.RelError = c.Div(rep.AbsError, sres.Abs())
	} else {
		rep.RelError = NaN()
	}
	return rep
}
