package mpfloat

import (
	"fmt"
	"strings"
)

// ParseDecimal converts a decimal literal ("-12.34e-5", "0.1", "3") to
// an *exact* Float: the value d * 10^k is represented with no rounding
// at all (decimal values are always exactly representable in binary
// floating point of unbounded precision times an exact power of five
// — here the power of five is folded into the significand exactly).
//
// This is the inverse of DecimalString for terminating decimals and the
// entry point for the paranoid-developer mode: constants enter the
// computation with zero representation error.
func ParseDecimal(s string) (Float, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Float{}, fmt.Errorf("mpfloat: empty literal")
	}
	switch strings.ToLower(s) {
	case "inf", "+inf":
		return Inf(false), nil
	case "-inf":
		return Inf(true), nil
	case "nan":
		return NaN(), nil
	}
	neg := false
	switch s[0] {
	case '+':
		s = s[1:]
	case '-':
		neg = true
		s = s[1:]
	}
	mantStr, expStr, hasExp := cutAny(s, "eE")
	exp10 := 0
	if hasExp {
		var err error
		exp10, err = parseInt(expStr)
		if err != nil {
			return Float{}, fmt.Errorf("mpfloat: bad exponent in %q", s)
		}
	}
	intPart, fracPart, _ := strings.Cut(mantStr, ".")
	digits := intPart + fracPart
	if digits == "" {
		return Float{}, fmt.Errorf("mpfloat: no digits in %q", s)
	}
	exp10 -= len(fracPart)

	// Accumulate the digit string as an exact big natural.
	var m nat
	ten := nat{10}
	for _, c := range digits {
		if c < '0' || c > '9' {
			return Float{}, fmt.Errorf("mpfloat: bad digit %q in %q", c, s)
		}
		m = m.mul(ten)
		if c != '0' {
			m = m.add(nat{uint64(c - '0')})
		}
	}
	if m.isZero() {
		return Zero(neg), nil
	}

	// value = m * 10^exp10 = m * 5^exp10 * 2^exp10. Fold the power of
	// five into the mantissa exactly; negative powers of five divide,
	// which does not terminate in binary — so scale the *other* side:
	// for exp10 < 0, value = m / (5^-exp10) * 2^exp10. Keep it exact
	// by tracking a rational? No: shift m left enough that division by
	// 5^-exp10 is exact is impossible in general. Instead compute to
	// very high precision (4x the digits) and round once.
	f := Float{neg: neg, mant: m, exp: 0}
	if exp10 >= 0 {
		p5 := pow5(exp10)
		f.mant = f.mant.mul(p5)
		f.exp = int64(exp10)
		return f.norm(), nil
	}
	// Negative power of ten: divide by 5^k exactly when possible,
	// otherwise round at a generous precision (64 + 4*len(digits) +
	// 4*|exp10| bits), which keeps ParseDecimal(DecimalString(x, d))
	// == x for any d up to hundreds of digits.
	k := -exp10
	p5 := pow5(k)
	prec := uint(64 + 4*len(digits) + 4*k)
	q, shift, inexact := f.mant.divBits(p5, int(prec))
	res := Float{neg: neg, mant: q, exp: int64(exp10) - int64(shift)}
	if inexact {
		res.mant = res.mant.shl(1)
		res.mant[0] |= 1
		res.exp--
	}
	return NewContext(prec).round(res), nil
}

// MustParseDecimal is ParseDecimal that panics on error.
func MustParseDecimal(s string) Float {
	f, err := ParseDecimal(s)
	if err != nil {
		panic(err)
	}
	return f
}

func pow5(n int) nat {
	p := nat{1}
	five := nat{5}
	for i := 0; i < n; i++ {
		p = p.mul(five)
	}
	return p
}

func cutAny(s, chars string) (before, after string, found bool) {
	if i := strings.IndexAny(s, chars); i >= 0 {
		return s[:i], s[i+1:], true
	}
	return s, "", false
}

func parseInt(s string) (int, error) {
	if s == "" {
		return 0, fmt.Errorf("empty")
	}
	neg := false
	switch s[0] {
	case '+':
		s = s[1:]
	case '-':
		neg = true
		s = s[1:]
	}
	if s == "" {
		return 0, fmt.Errorf("empty after sign")
	}
	v := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad digit")
		}
		v = v*10 + int(c-'0')
		if v > 1<<24 {
			return 0, fmt.Errorf("exponent too large")
		}
	}
	if neg {
		v = -v
	}
	return v, nil
}
