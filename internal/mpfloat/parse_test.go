package mpfloat

import (
	"math"
	"math/rand"
	"testing"

	"fpstudy/internal/ieee754"
)

func TestParseDecimalExactIntegers(t *testing.T) {
	cases := []struct {
		s    string
		want float64
	}{
		{"0", 0}, {"1", 1}, {"-1", -1}, {"42", 42}, {"1e3", 1000},
		{"1.5", 1.5}, {"-2.25", -2.25}, {"0.5", 0.5}, {"100e-2", 1},
		{"12.34e2", 1234}, {"+7", 7},
	}
	for _, c := range cases {
		f, err := ParseDecimal(c.s)
		if err != nil {
			t.Fatalf("parse %q: %v", c.s, err)
		}
		if got := f.Float64(); got != c.want {
			t.Errorf("parse %q = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestParseDecimalSpecials(t *testing.T) {
	if f, _ := ParseDecimal("inf"); !f.IsInf() || f.Sign() != 1 {
		t.Fatal("inf")
	}
	if f, _ := ParseDecimal("-Inf"); !f.IsInf() || f.Sign() != -1 {
		t.Fatal("-inf")
	}
	if f, _ := ParseDecimal("NaN"); !f.IsNaN() {
		t.Fatal("nan")
	}
	if f, _ := ParseDecimal("-0"); !f.IsZero() || !f.neg {
		t.Fatal("-0")
	}
}

func TestParseDecimalErrors(t *testing.T) {
	for _, s := range []string{"", "abc", "1.2.3", "1e", "e5", "--1", "1e99999999", "1x"} {
		if _, err := ParseDecimal(s); err == nil {
			t.Errorf("parse %q succeeded", s)
		}
	}
}

func TestParseDecimalTenthExceedsDoublePrecision(t *testing.T) {
	// 0.1 parsed exactly differs from float64(0.1): the difference is
	// the representation error every developer forgets about.
	tenth := MustParseDecimal("0.1")
	asDouble := FromFloat64(0.1)
	ctx := NewContext(200)
	diff := ctx.Sub(tenth, asDouble).Abs()
	if diff.IsZero() {
		t.Fatal("0.1 exactly representable!?")
	}
	// The difference is about 5.55e-18.
	d := diff.Float64()
	if d < 1e-18 || d > 1e-17 {
		t.Fatalf("representation error of 0.1 = %g", d)
	}
}

func TestParseRoundTripsDecimalString(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ctx := NewContext(200)
	for i := 0; i < 300; i++ {
		x := ctx.Div(FromFloat64(rng.NormFloat64()), FromFloat64(rng.NormFloat64()+3))
		if x.IsZero() || x.IsNaN() {
			continue
		}
		// 70 digits is beyond the 200-bit information content (60
		// digits), so parsing the string recovers x exactly.
		s := x.DecimalString(70)
		back, err := ParseDecimal(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		diff := ctx.Sub(back, x).Abs()
		if !diff.IsZero() {
			// Accept sub-ulp differences at 200 bits.
			rel := ctx.Div(diff, x.Abs())
			if rel.Cmp(NewContext(64).Div(FromInt64(1), FromFloat64(math.Ldexp(1, 190)))) > 0 {
				t.Fatalf("roundtrip moved: %s (rel %s)", s, rel.DecimalString(5))
			}
		}
	}
}

func TestParseMatchesStrconvForDoubles(t *testing.T) {
	// Parsing a float64-exact literal then rounding to binary64 agrees
	// with the hardware parse.
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 5000; i++ {
		v := math.Ldexp(rng.Float64()*2-1, rng.Intn(100)-50)
		s := FromFloat64(v).DecimalString(17)
		f, err := ParseDecimal(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := f.ToBits(ieee754.Binary64); got != math.Float64bits(v) {
			t.Fatalf("parse %q -> %x, want %x", s, got, math.Float64bits(v))
		}
	}
}

func TestParseLongDigitString(t *testing.T) {
	// 100 digits of pi parse exactly and print back identically.
	const pi100 = "3.141592653589793238462643383279502884197169399375105820974944592307816406286208998628034825342117068"
	f := MustParseDecimal(pi100)
	got := f.DecimalString(100)
	// got is in scientific notation: 3.1415...e+0
	want := pi100[:1] + "." + pi100[2:101] + "e+0"
	if got != want {
		t.Fatalf("pi roundtrip:\n got %s\nwant %s", got, want)
	}
}
