package mpfloat

import (
	"math"
	"math/rand"
	"testing"

	"fpstudy/internal/expr"
	"fpstudy/internal/ieee754"
)

// At 53-bit precision, mpfloat arithmetic must agree with hardware
// float64 bit-for-bit wherever the hardware result is in the normal
// range (mpfloat has unbounded exponents, so float64 over/underflow is
// out of scope for the comparison).

func randFloat(rng *rand.Rand) float64 {
	switch rng.Intn(4) {
	case 0:
		return float64(rng.Intn(2001) - 1000)
	case 1:
		return (rng.Float64()*2 - 1) * math.Ldexp(1, rng.Intn(60)-30)
	case 2:
		return rng.NormFloat64()
	default:
		return rng.Float64()
	}
}

func inNormalRange(v float64) bool {
	a := math.Abs(v)
	return v == 0 || (a >= 2.3e-308 && a <= 8.9e307)
}

func TestMatchesHardwareAt53Bits(t *testing.T) {
	ctx := NewContext(53)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 50000; i++ {
		a, b := randFloat(rng), randFloat(rng)
		cases := []struct {
			name string
			got  Float
			want float64
		}{
			{"add", ctx.Add(FromFloat64(a), FromFloat64(b)), a + b},
			{"sub", ctx.Sub(FromFloat64(a), FromFloat64(b)), a - b},
			{"mul", ctx.Mul(FromFloat64(a), FromFloat64(b)), a * b},
			{"div", ctx.Div(FromFloat64(a), FromFloat64(b)), a / b},
		}
		for _, c := range cases {
			if !inNormalRange(c.want) {
				continue
			}
			if got := c.got.Float64(); got != c.want && !(math.IsNaN(got) && math.IsNaN(c.want)) {
				t.Fatalf("%s(%v, %v) = %v, want %v", c.name, a, b, got, c.want)
			}
		}
	}
}

func TestSqrtMatchesHardware(t *testing.T) {
	ctx := NewContext(53)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		a := math.Abs(randFloat(rng))
		want := math.Sqrt(a)
		if !inNormalRange(want) {
			continue
		}
		if got := ctx.Sqrt(FromFloat64(a)).Float64(); got != want {
			t.Fatalf("sqrt(%v) = %v, want %v", a, got, want)
		}
	}
}

func TestFMAMatchesHardware(t *testing.T) {
	ctx := NewContext(53)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 20000; i++ {
		a, b, c := randFloat(rng), randFloat(rng), randFloat(rng)
		want := math.FMA(a, b, c)
		if !inNormalRange(want) {
			continue
		}
		got := ctx.FMA(FromFloat64(a), FromFloat64(b), FromFloat64(c)).Float64()
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("fma(%v, %v, %v) = %v, want %v", a, b, c, got, want)
		}
	}
}

func TestHigherPrecisionIsMoreAccurate(t *testing.T) {
	// Summing 0.1 ten times: float64 accumulates error; 200-bit
	// arithmetic starting from the same (inexact) constant does not
	// drift further.
	tenth := FromFloat64(0.1)
	ctx := NewContext(200)
	sum := Zero(false)
	for i := 0; i < 10; i++ {
		sum = ctx.Add(sum, tenth)
	}
	// sum == 10 * FromFloat64(0.1) exactly at this precision.
	want := ctx.Mul(FromFloat64(10), tenth)
	if sum.Cmp(want) != 0 {
		t.Fatalf("200-bit 10x0.1 = %v, want %v", sum, want)
	}
	// Hardware drifts away from the exact 10*0.1 product.
	var hw float64
	for i := 0; i < 10; i++ {
		hw += 0.1
	}
	if hw == 1.0*10*0.1 && hw == want.Float64() {
		t.Log("hardware luckily exact here (unexpected but not fatal)")
	}
}

func TestSpecials(t *testing.T) {
	ctx := NewContext(64)
	if !ctx.Add(Inf(false), Inf(true)).IsNaN() {
		t.Fatal("inf + -inf != NaN")
	}
	if !ctx.Mul(Zero(false), Inf(false)).IsNaN() {
		t.Fatal("0*inf != NaN")
	}
	if !ctx.Div(Zero(false), Zero(false)).IsNaN() {
		t.Fatal("0/0 != NaN")
	}
	if v := ctx.Div(FromInt64(1), Zero(false)); !v.IsInf() || v.Sign() != 1 {
		t.Fatalf("1/0 = %v", v)
	}
	if v := ctx.Div(FromInt64(-1), Zero(false)); !v.IsInf() || v.Sign() != -1 {
		t.Fatalf("-1/0 = %v", v)
	}
	if !ctx.Sqrt(FromInt64(-4)).IsNaN() {
		t.Fatal("sqrt(-4) != NaN")
	}
	if v := ctx.Sqrt(Zero(true)); !v.IsZero() || !v.neg {
		t.Fatal("sqrt(-0) != -0")
	}
	if ctx.Add(NaN(), FromInt64(1)).kind != nan {
		t.Fatal("NaN + 1 != NaN")
	}
}

func TestCmp(t *testing.T) {
	cases := []struct {
		a, b float64
		want int
	}{
		{1, 2, -1}, {2, 1, 1}, {1, 1, 0}, {-1, 1, -1},
		{0, 0, 0}, {-5, -3, -1}, {0.1, 0.1, 0},
		{1e300, 1e-300, 1}, {-1e300, 1e-300, -1},
	}
	for _, c := range cases {
		if got := FromFloat64(c.a).Cmp(FromFloat64(c.b)); got != c.want {
			t.Errorf("cmp(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if FromFloat64(1).Cmp(NaN()) != 2 {
		t.Error("cmp with NaN should be 2")
	}
	if FromFloat64(0).Cmp(Zero(true)) != 0 {
		t.Error("+0 vs -0 should compare equal")
	}
}

func TestToBitsRoundTrip(t *testing.T) {
	// Every binary16 and a large sample of binary32/64 values must
	// round-trip exactly through Float.
	for x := uint64(0); x < 1<<16; x++ {
		if ieee754.Binary16.IsNaN(x) {
			continue
		}
		got := FromBits(ieee754.Binary16, x).ToBits(ieee754.Binary16)
		if got != x {
			t.Fatalf("binary16 roundtrip %#04x -> %#04x", x, got)
		}
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50000; i++ {
		b := rng.Uint64()
		if ieee754.Binary64.IsNaN(b) {
			continue
		}
		got := FromBits(ieee754.Binary64, b).ToBits(ieee754.Binary64)
		if got != b {
			t.Fatalf("binary64 roundtrip %#x -> %#x", b, got)
		}
	}
}

func TestToBitsRounding(t *testing.T) {
	// A 200-bit value rounds correctly to binary64: compare against
	// hardware-computed reference 1/3.
	ctx := NewContext(200)
	third := ctx.Div(FromInt64(1), FromInt64(3))
	got := third.ToBits(ieee754.Binary64)
	want := math.Float64bits(1.0 / 3.0)
	if got != want {
		t.Fatalf("1/3 to binary64: %#x want %#x", got, want)
	}
	// Overflow saturates to infinity.
	huge := ctx.Mul(FromFloat64(1e308), FromFloat64(1e10))
	if !ieee754.Binary64.IsInf(huge.ToBits(ieee754.Binary64), +1) {
		t.Fatal("1e318 should round to +Inf in binary64")
	}
	// Tiny values round to subnormals and then to zero.
	tiny := ctx.Div(FromFloat64(math.SmallestNonzeroFloat64), FromInt64(2))
	if bits := tiny.ToBits(ieee754.Binary64); bits != 0 {
		t.Fatalf("minSub/2 rounds to %#x, want +0 (ties to even)", bits)
	}
	tiny3q := ctx.Mul(FromFloat64(math.SmallestNonzeroFloat64), FromFloat64(0.75))
	if bits := tiny3q.ToBits(ieee754.Binary64); bits != 1 {
		t.Fatalf("0.75*minSub rounds to %#x, want minSub", bits)
	}
}

func TestEvalExprMatchesFormatForExactCases(t *testing.T) {
	ctx := NewContext(200)
	n := expr.MustParse("a*b + c")
	vars := map[string]Float{
		"a": FromInt64(3), "b": FromInt64(7), "c": FromInt64(21),
	}
	if got := ctx.EvalExpr(n, vars).Float64(); got != 42 {
		t.Fatalf("3*7+21 = %v", got)
	}
	if !ctx.EvalExpr(expr.MustParse("missing"), nil).IsNaN() {
		t.Fatal("unbound var should be NaN")
	}
}

func TestShadowDetectsCancellation(t *testing.T) {
	// (a + b) - a with b tiny: binary32 loses b entirely; the shadow
	// execution at 200 bits keeps it. RelError should be 1 (total).
	ctx := NewContext(200)
	var se ieee754.Env
	f := ieee754.Binary32
	vars := map[string]uint64{
		"a": f.FromFloat64(&se, 1e10),
		"b": f.FromFloat64(&se, 1e-10),
	}
	rep := ctx.Shadow(f, expr.MustParse("(a + b) - a"), vars)
	if rep.FormatValue != 0 {
		t.Fatalf("format value %v, want 0 (absorption)", rep.FormatValue)
	}
	if rep.ShadowValue.IsZero() {
		t.Fatal("shadow lost the tiny term too")
	}
	if rel := rep.RelError.Float64(); math.Abs(rel-1) > 1e-9 {
		t.Fatalf("relative error %v, want ~1", rel)
	}
}

func TestShadowAgreesOnBenignExpr(t *testing.T) {
	ctx := NewContext(200)
	var se ieee754.Env
	f := ieee754.Binary64
	vars := map[string]uint64{
		"a": f.FromFloat64(&se, 3),
		"b": f.FromFloat64(&se, 4),
	}
	rep := ctx.Shadow(f, expr.MustParse("sqrt(a*a + b*b)"), vars)
	if rep.FormatValue != 5 {
		t.Fatalf("format hypot = %v", rep.FormatValue)
	}
	if !rep.AbsError.IsZero() {
		t.Fatalf("abs error %v, want 0", rep.AbsError)
	}
}

func TestNatDivmod(t *testing.T) {
	cases := []struct{ x, y, q, r uint64 }{
		{100, 7, 14, 2},
		{1, 1, 1, 0},
		{0, 5, 0, 0},
		{6, 7, 0, 6},
		{1 << 40, 1 << 20, 1 << 20, 0},
	}
	for _, c := range cases {
		q, r := natFromUint64(c.x).divmod(natFromUint64(c.y))
		wantQ, wantR := natFromUint64(c.q), natFromUint64(c.r)
		if q.cmp(wantQ) != 0 || r.cmp(wantR) != 0 {
			t.Errorf("%d/%d: got q=%v r=%v", c.x, c.y, q, r)
		}
	}
}

func TestNatMulWide(t *testing.T) {
	// (2^64-1)^2 = 2^128 - 2^65 + 1.
	x := nat{^uint64(0)}
	p := x.mul(x)
	want := nat{1, ^uint64(0) - 1} // low limb 1, high limb 2^64-2
	if p.cmp(want) != 0 {
		t.Fatalf("wide mul: %v", p)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		p := natFromUint64(a).mul(natFromUint64(b))
		hi, lo := mulParts(a, b)
		var want nat
		if hi == 0 {
			want = natFromUint64(lo)
		} else {
			want = nat{lo, hi}
		}
		if p.cmp(want) != 0 {
			t.Fatalf("mul(%d, %d) mismatch", a, b)
		}
	}
}

func mulParts(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	alo, ahi := a&mask, a>>32
	blo, bhi := b&mask, b>>32
	ll := alo * blo
	lh := alo * bhi
	hl := ahi * blo
	hh := ahi * bhi
	mid := lh + (ll >> 32) + (hl & mask)
	lo = (mid << 32) | (ll & mask)
	hi = hh + (mid >> 32) + (hl >> 32)
	return
}

func TestNatIsqrt(t *testing.T) {
	for _, v := range []uint64{0, 1, 2, 3, 4, 15, 16, 17, 99, 100, 1 << 40, 1<<40 + 12345} {
		s, r := natFromUint64(v).isqrt()
		var si uint64
		if !s.isZero() {
			si = s[0]
		}
		root := uint64(math.Sqrt(float64(v)))
		// Correct floor sqrt within the float error; verify exactly.
		for root*root > v {
			root--
		}
		for (root+1)*(root+1) <= v {
			root++
		}
		if si != root {
			t.Errorf("isqrt(%d) = %d, want %d", v, si, root)
		}
		var ri uint64
		if !r.isZero() {
			ri = r[0]
		}
		if ri != v-root*root {
			t.Errorf("isqrt(%d) rem = %d, want %d", v, ri, v-root*root)
		}
	}
}

func TestNatShlShr(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		v := rng.Uint64()
		n := uint(rng.Intn(130))
		x := natFromUint64(v)
		up := x.shl(n)
		down, sticky := up.shr(n)
		if down.cmp(x) != 0 {
			t.Fatalf("shl/shr roundtrip failed: %d << %d >> %d", v, n, n)
		}
		if sticky {
			t.Fatalf("roundtrip sticky set")
		}
	}
	// shr sticky detection.
	x := nat{0b1011}
	_, st := x.shr(2)
	if !st {
		t.Fatal("sticky missed")
	}
	_, st = x.shr(200)
	if !st {
		t.Fatal("sticky missed for full shift-out")
	}
}

func TestContextMinPrecision(t *testing.T) {
	c := NewContext(0)
	if c.Prec != 2 {
		t.Fatalf("prec = %d", c.Prec)
	}
}

func TestFromInt64(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 42, -42, math.MaxInt64, math.MinInt64 + 1} {
		if got := FromInt64(v).Float64(); got != float64(v) {
			t.Errorf("FromInt64(%d) = %v", v, got)
		}
	}
}
