package mpfloat

// Property-based tests (testing/quick) on the arbitrary-precision
// arithmetic: algebraic invariants that must hold at any precision.

import (
	"math"
	"math/rand"
	"reflect"
	"strconv"
	"testing"
	"testing/quick"
)

func mpQuickCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 3000,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(randFloat(rng))
			}
		},
	}
}

func TestQuickAddCommutative(t *testing.T) {
	ctx := NewContext(80)
	prop := func(a, b float64) bool {
		x := ctx.Add(FromFloat64(a), FromFloat64(b))
		y := ctx.Add(FromFloat64(b), FromFloat64(a))
		return x.Cmp(y) == 0
	}
	if err := quick.Check(prop, mpQuickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMulCommutative(t *testing.T) {
	ctx := NewContext(80)
	prop := func(a, b float64) bool {
		x := ctx.Mul(FromFloat64(a), FromFloat64(b))
		y := ctx.Mul(FromFloat64(b), FromFloat64(a))
		return x.Cmp(y) == 0
	}
	if err := quick.Check(prop, mpQuickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAddSubInverseExact(t *testing.T) {
	// At unbounded precision (huge Prec), (a + b) - b == a exactly —
	// the identity floating point famously lacks. This is the whole
	// point of the arbitrary-precision substrate.
	ctx := NewContext(400)
	prop := func(a, b float64) bool {
		fa, fb := FromFloat64(a), FromFloat64(b)
		got := ctx.Sub(ctx.Add(fa, fb), fb)
		return got.Cmp(fa) == 0
	}
	if err := quick.Check(prop, mpQuickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMulDivInverseTight(t *testing.T) {
	// (a * b) / b is within 1 ulp of a at working precision.
	ctx := NewContext(120)
	prop := func(a, b float64) bool {
		if b == 0 || a == 0 {
			return true
		}
		fa, fb := FromFloat64(a), FromFloat64(b)
		got := ctx.Div(ctx.Mul(fa, fb), fb)
		diff := ctx.Sub(got, fa).Abs()
		if diff.IsZero() {
			return true
		}
		// |diff| / |a| <= 2^-118.
		rel := ctx.Div(diff, fa.Abs())
		bound := NewContext(64).Div(FromInt64(1), FromFloat64(math.Ldexp(1, 110)))
		return rel.Cmp(bound) <= 0
	}
	if err := quick.Check(prop, mpQuickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSqrtSquare(t *testing.T) {
	ctx := NewContext(150)
	prop := func(a float64) bool {
		a = math.Abs(a)
		if a == 0 {
			return true
		}
		fa := FromFloat64(a)
		s := ctx.Sqrt(fa)
		back := ctx.Mul(s, s)
		diff := ctx.Sub(back, fa).Abs()
		if diff.IsZero() {
			return true
		}
		rel := ctx.Div(diff, fa)
		bound := NewContext(64).Div(FromInt64(1), FromFloat64(math.Ldexp(1, 140)))
		return rel.Cmp(bound) <= 0
	}
	if err := quick.Check(prop, mpQuickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripFloat64(t *testing.T) {
	prop := func(a float64) bool {
		return FromFloat64(a).Float64() == a
	}
	if err := quick.Check(prop, mpQuickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCmpConsistentWithFloat64(t *testing.T) {
	prop := func(a, b float64) bool {
		got := FromFloat64(a).Cmp(FromFloat64(b))
		switch {
		case a < b:
			return got == -1
		case a > b:
			return got == 1
		default:
			return got == 0
		}
	}
	if err := quick.Check(prop, mpQuickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNegInvolution(t *testing.T) {
	prop := func(a float64) bool {
		fa := FromFloat64(a)
		return fa.Neg().Neg().Cmp(fa) == 0
	}
	if err := quick.Check(prop, mpQuickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecimalRoundTripCoarse(t *testing.T) {
	// Printing at 17 significant digits and reparsing through float64
	// recovers the value exactly (17 digits suffice for binary64).
	prop := func(a float64) bool {
		if a == 0 {
			return true
		}
		s := FromFloat64(a).DecimalString(17)
		back, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return false
		}
		return back == a
	}
	if err := quick.Check(prop, mpQuickCfg()); err != nil {
		t.Fatal(err)
	}
}
