package mpfloat

import (
	"fmt"
	"strings"
)

// DecimalString renders x in scientific decimal notation with the given
// number of significant digits, correctly rounded (half to even) from
// the exact binary value. This is the display path for the
// "paranoid developer" mode: a 200-bit result can be shown to 60
// digits without any double-rounding through float64.
func (x Float) DecimalString(digits int) string {
	if digits < 1 {
		digits = 1
	}
	switch x.kind {
	case nan:
		return "NaN"
	case inf:
		if x.neg {
			return "-Inf"
		}
		return "+Inf"
	}
	if x.mant.isZero() {
		if x.neg {
			return "-0"
		}
		return "0"
	}
	ds, dexp := x.decimalDigits(digits)
	sign := ""
	if x.neg {
		sign = "-"
	}
	if len(ds) == 1 {
		return fmt.Sprintf("%s%se%+d", sign, ds, dexp)
	}
	return fmt.Sprintf("%s%s.%se%+d", sign, ds[:1], ds[1:], dexp)
}

// decimalDigits returns exactly `digits` correctly rounded decimal
// digits of |x| and the decimal exponent dexp such that the value is
// d1.d2d3... * 10^dexp.
func (x Float) decimalDigits(digits int) (string, int) {
	// Estimate the decimal exponent: |x| = m * 2^e with m in
	// [2^(b-1), 2^b), so log10|x| ~ (e + b) * log10(2). The estimate
	// is within +-1; two guard digits absorb that plus the rounding.
	b := x.mant.bitLen()
	approx := float64(x.exp+int64(b)) * 0.30102999566398114
	dexp := int(approx)
	if approx < 0 && float64(dexp) != approx {
		dexp--
	}

	s := digits + 2 - 1 - dexp // scale for digits+2 digit floor
	for attempt := 0; ; attempt++ {
		d, exact := x.floorScaled(s)
		ds := natDecimal(d)
		if len(ds) < digits+1 && attempt < 6 {
			// Estimate was high: rescale to get enough digits.
			s += digits + 1 - len(ds)
			continue
		}
		// True decimal exponent from the exact digit count.
		trueDexp := len(ds) - 1 - s
		rounded, carried := roundDigitsSticky(ds, digits, !exact)
		if carried {
			trueDexp++
		}
		return rounded, trueDexp
	}
}

// floorScaled computes floor(|x| * 10^s) as a nat, reporting exactness.
func (x Float) floorScaled(s int) (nat, bool) {
	num := append(nat(nil), x.mant...)
	var den nat = nat{1}
	if s >= 0 {
		num = num.mul(pow10(s))
	} else {
		den = den.mul(pow10(-s))
	}
	if x.exp >= 0 {
		num = num.shl(uint(x.exp))
	} else {
		den = den.shl(uint(-x.exp))
	}
	q, r := num.divmod(den)
	return q, r.isZero()
}

// roundDigitsSticky rounds the digit string ds to n digits, half to
// even, where sticky indicates nonzero discarded value below the
// string. It reports whether rounding carried into a new leading digit
// (in which case the returned string is still n digits, e.g. "999" ->
// "100" with carry).
func roundDigitsSticky(ds string, n int, sticky bool) (string, bool) {
	if len(ds) <= n {
		// Pad with zeros; only valid when nothing was discarded.
		return ds + strings.Repeat("0", n-len(ds)), false
	}
	keep := []byte(ds[:n])
	next := ds[n]
	restNonzero := sticky || strings.TrimRight(ds[n+1:], "0") != ""
	up := next > '5' || (next == '5' && (restNonzero || (keep[n-1]-'0')%2 == 1))
	if !up {
		return string(keep), false
	}
	for i := n - 1; i >= 0; i-- {
		if keep[i] < '9' {
			keep[i]++
			return string(keep), false
		}
		keep[i] = '0'
	}
	// All nines: 999 -> 1000, reported as "100" + carry.
	return "1" + string(keep[:n-1]), true
}

// pow10 returns 10^n as a nat.
func pow10(n int) nat {
	p := nat{1}
	ten := nat{10}
	for i := 0; i < n; i++ {
		p = p.mul(ten)
	}
	return p
}

// natDecimal renders a nat in base 10.
func natDecimal(x nat) string {
	if x.isZero() {
		return "0"
	}
	var sb strings.Builder
	var digits []byte
	ten := nat{10}
	for !x.isZero() {
		q, r := x.divmod(ten)
		d := byte('0')
		if !r.isZero() {
			d = byte('0' + r[0])
		}
		digits = append(digits, d)
		x = q
	}
	for i := len(digits) - 1; i >= 0; i-- {
		sb.WriteByte(digits[i])
	}
	return sb.String()
}
