// Package audit combines every analysis tool in this repository into a
// single low-friction pass over one computation — the paper's closing
// action item ("tools ... with interfaces suitable for a non-CS
// community and a low barrier to use"). Given an expression and a set
// of input values, an audit runs:
//
//  1. static lint (hazard patterns),
//  2. monitored strict IEEE evaluation (exception flags, per-node
//     attribution),
//  3. a fast-math compliance check (would -ffast-math change this?),
//  4. interval analysis (rigorous error enclosure),
//  5. arbitrary-precision shadow execution (actual rounding error),
//  6. a precision-tuning probe (how low could this computation go?),
//
// and condenses everything into one suspicion verdict with the evidence
// attached.
package audit

import (
	"fmt"
	"math"
	"strings"

	"fpstudy/internal/expr"
	"fpstudy/internal/ieee754"
	"fpstudy/internal/interval"
	"fpstudy/internal/lint"
	"fpstudy/internal/monitor"
	"fpstudy/internal/mpfloat"
	"fpstudy/internal/optsim"
	"fpstudy/internal/tuner"
)

// Verdict grades the overall audit outcome.
type Verdict int

const (
	// Clean: no hazards, negligible error, optimization-stable.
	Clean Verdict = iota
	// Caution: hazards or measurable error that a reviewer should see.
	Caution
	// Alarm: exceptional values, severe error, or dangerous patterns.
	Alarm
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case Clean:
		return "CLEAN"
	case Caution:
		return "CAUTION"
	case Alarm:
		return "ALARM"
	}
	return "unknown"
}

// Report is the combined audit result.
type Report struct {
	Expr string

	// Static analysis.
	Lint []lint.Finding

	// Strict IEEE evaluation.
	Result       uint64
	ResultString string
	Flags        ieee754.Flags
	Suspicious   []expr.Attribution // ops that raised watched flags

	// Fast-math stability.
	FastMathDiverges bool
	FastMathPasses   []string

	// Interval enclosure around the given inputs.
	IntervalRelWidth float64

	// Shadow execution.
	ShadowValue   mpfloat.Float
	ShadowRelErr  float64
	ShadowRelErrOK bool // false when the error is NaN (e.g. zero shadow)

	// Precision probe: fraction of operations that tolerate binary32
	// at 1e-6 relative error over a corpus around the inputs.
	DemotableOps int
	TotalOps     int

	Verdict Verdict
	Reasons []string
}

// watchedFlags are the conditions that mark an operation suspicious in
// the attribution listing.
const watchedFlags = ieee754.FlagInvalid | ieee754.FlagDivByZero |
	ieee754.FlagOverflow | ieee754.FlagUnderflow

// Run audits the expression at the given binary64-encoded inputs.
func Run(n expr.Node, vars map[string]uint64) Report {
	f := ieee754.Binary64
	rep := Report{Expr: n.String(), TotalOps: len(tuner.OpPaths(n))}

	// 1. Static lint.
	rep.Lint = lint.CheckExpr(n)

	// 2. Monitored strict evaluation with attribution.
	var fe ieee754.Env
	res, attrs := expr.EvalAttributed(f, &fe, n, vars)
	rep.Result = res
	rep.ResultString = f.String(res)
	rep.Flags = fe.Flags
	rep.Suspicious = expr.Suspicious(attrs, watchedFlags)

	// 3. Fast-math check at the audited inputs: would -ffast-math
	// change THIS result? (A corpus-wide check would flag nearly any
	// program via FTZ on subnormal inputs; the audit asks about the
	// computation at hand.)
	v := optsim.Check(f, n, optsim.FastMath(), []expr.Env{vars})
	rep.FastMathDiverges = !v.Compliant
	rep.FastMathPasses = v.PassesApplied

	// 4. Interval enclosure at the inputs.
	ia := interval.New(f)
	ivars := map[string]interval.Interval{}
	for k, b := range vars {
		ivars[k] = ia.Point(b)
	}
	rep.IntervalRelWidth = ia.RelativeWidth(ia.EvalExpr(n, ivars))

	// 5. Shadow execution at 200 bits.
	ctx := mpfloat.NewContext(200)
	sh := ctx.Shadow(f, n, vars)
	rep.ShadowValue = sh.ShadowValue
	if rel := sh.RelError.Float64(); !math.IsNaN(rel) {
		rep.ShadowRelErr = rel
		rep.ShadowRelErrOK = true
	}

	// 6. Precision probe.
	tcorpus := tuner.Corpus(n, 150, 2)
	tcorpus = append(tcorpus, vars)
	tres := tuner.Tune(n, tcorpus, 1e-6)
	rep.DemotableOps = tres.Demoted

	rep.judge()
	return rep
}

// judge condenses the evidence into a verdict.
func (r *Report) judge() {
	add := func(v Verdict, reason string, args ...interface{}) {
		if v > r.Verdict {
			r.Verdict = v
		}
		r.Reasons = append(r.Reasons, fmt.Sprintf(reason, args...))
	}
	f := ieee754.Binary64
	switch {
	case f.IsNaN(r.Result):
		add(Alarm, "the result is NaN (an invalid operation occurred)")
	case f.IsInf(r.Result, 0):
		add(Alarm, "the result is infinite (overflow or division by zero)")
	}
	if r.Flags.Has(ieee754.FlagInvalid) {
		add(Alarm, "an invalid operation occurred during evaluation")
	} else if r.Flags.Has(ieee754.FlagDivByZero) {
		add(Alarm, "a division by zero occurred during evaluation (may be hidden in the output)")
	} else if r.Flags.Has(ieee754.FlagOverflow) {
		add(Caution, "an intermediate value overflowed")
	}
	if r.Flags.Has(ieee754.FlagUnderflow) {
		add(Caution, "an intermediate value underflowed into the subnormal range")
	}
	if r.ShadowRelErrOK && r.ShadowRelErr > 1e-6 {
		add(Alarm, "the computed value is off by %.1e relative to exact arithmetic", r.ShadowRelErr)
	} else if r.ShadowRelErrOK && r.ShadowRelErr > 1e-12 {
		add(Caution, "measurable rounding error: %.1e relative", r.ShadowRelErr)
	}
	if r.IntervalRelWidth > 1e-6 {
		add(Caution, "the rigorous error enclosure is wide (relative width %.1e)", r.IntervalRelWidth)
	}
	if sev := lint.WorstSeverity(r.Lint); len(r.Lint) > 0 && sev >= lint.Danger {
		add(Alarm, "static analysis found dangerous patterns")
	} else if len(r.Lint) > 0 && sev >= lint.Warning {
		add(Caution, "static analysis found hazard patterns")
	}
	if r.FastMathDiverges {
		add(Caution, "-ffast-math would change this result (passes: %s)",
			strings.Join(r.FastMathPasses, ", "))
	}
	if len(r.Reasons) == 0 {
		r.Reasons = append(r.Reasons, "no hazards detected; result agrees with exact arithmetic")
	}
}

// String renders the full audit as a human-readable report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %s\n", r.Expr)
	fmt.Fprintf(&b, "verdict: %s\n", r.Verdict)
	for _, reason := range r.Reasons {
		fmt.Fprintf(&b, "  - %s\n", reason)
	}
	fmt.Fprintf(&b, "result: %s (flags: %s)\n", r.ResultString, r.Flags)
	if r.ShadowRelErrOK {
		fmt.Fprintf(&b, "exact (200-bit): %s  (rel err %.2e)\n",
			r.ShadowValue.DecimalString(25), r.ShadowRelErr)
	}
	fmt.Fprintf(&b, "interval rel width: %.2e\n", r.IntervalRelWidth)
	fmt.Fprintf(&b, "fast-math stable: %v\n", !r.FastMathDiverges)
	fmt.Fprintf(&b, "precision headroom: %d/%d ops tolerate binary32 at 1e-6\n",
		r.DemotableOps, r.TotalOps)
	if len(r.Suspicious) > 0 {
		fmt.Fprintf(&b, "suspicious operations:\n")
		for _, a := range r.Suspicious {
			path := a.Path
			if path == "" {
				path = "/"
			}
			fmt.Fprintf(&b, "  %s %s raised %s\n", path, a.Source, a.Raised)
		}
	}
	if len(r.Lint) > 0 {
		fmt.Fprintf(&b, "static findings:\n")
		for _, fd := range r.Lint {
			fmt.Fprintf(&b, "  %s\n", fd)
		}
	}
	return b.String()
}

// SuspicionScore maps the verdict to the suspicion quiz's 1-5 scale,
// aligning the tool's output with the paper's instrument.
func (r Report) SuspicionScore() int {
	switch r.Verdict {
	case Alarm:
		if ieee754.Binary64.IsNaN(r.Result) || r.Flags.Has(ieee754.FlagInvalid) {
			return monitor.Invalid.GroundTruthSuspicion() // 5
		}
		return monitor.Overflow.GroundTruthSuspicion() // 4
	case Caution:
		return 3
	}
	return 1
}
