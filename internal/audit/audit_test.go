package audit

import (
	"strings"
	"testing"

	"fpstudy/internal/expr"
	"fpstudy/internal/ieee754"
)

var f64 = ieee754.Binary64

func vars(t *testing.T, m map[string]float64) map[string]uint64 {
	t.Helper()
	var e ieee754.Env
	out := map[string]uint64{}
	for k, v := range m {
		out[k] = f64.FromFloat64(&e, v)
	}
	return out
}

func TestCleanComputation(t *testing.T) {
	r := Run(expr.MustParse("a*b"), vars(t, map[string]float64{"a": 3, "b": 4}))
	if r.Verdict != Clean {
		t.Fatalf("verdict %v:\n%s", r.Verdict, r)
	}
	if r.ResultString != "12" {
		t.Fatalf("result %s", r.ResultString)
	}
	if r.SuspicionScore() != 1 {
		t.Fatalf("suspicion %d", r.SuspicionScore())
	}
	if len(r.Reasons) != 1 || !strings.Contains(r.Reasons[0], "no hazards") {
		t.Fatalf("reasons: %v", r.Reasons)
	}
	// Exact product: every op should tolerate binary32... 3*4=12 fits,
	// but the tuning corpus includes wide magnitudes, so do not assert
	// demotion; just that the probe ran.
	if r.TotalOps != 1 {
		t.Fatalf("ops %d", r.TotalOps)
	}
}

func TestHiddenDivideByZeroAlarms(t *testing.T) {
	r := Run(expr.MustParse("1/(a - b) + c"), vars(t, map[string]float64{
		"a": 5, "b": 5, "c": 2,
	}))
	if r.Verdict != Alarm {
		t.Fatalf("verdict %v:\n%s", r.Verdict, r)
	}
	// The division by zero is attributed to the exact node.
	if len(r.Suspicious) == 0 {
		t.Fatal("no suspicious ops")
	}
	found := false
	for _, a := range r.Suspicious {
		if a.Raised.Has(ieee754.FlagDivByZero) {
			found = true
		}
	}
	if !found {
		t.Fatalf("divzero not attributed:\n%s", r)
	}
	// Static analysis flagged the pattern too.
	if len(r.Lint) == 0 {
		t.Fatal("lint silent on division by difference")
	}
	if r.SuspicionScore() < 4 {
		t.Fatalf("suspicion %d", r.SuspicionScore())
	}
}

func TestCancellationCaution(t *testing.T) {
	// (a + b) - a absorbs b: large shadow error, fast-math sensitive.
	r := Run(expr.MustParse("(a + b) - a"), vars(t, map[string]float64{
		"a": 1e16, "b": 1,
	}))
	if r.Verdict == Clean {
		t.Fatalf("verdict %v for absorption:\n%s", r.Verdict, r)
	}
	if !r.ShadowRelErrOK || r.ShadowRelErr < 0.5 {
		t.Fatalf("shadow error %v (ok=%v)", r.ShadowRelErr, r.ShadowRelErrOK)
	}
	s := r.String()
	for _, want := range []string{"verdict", "exact (200-bit)", "interval rel width"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestNaNResultAlarm(t *testing.T) {
	r := Run(expr.MustParse("sqrt(a)"), vars(t, map[string]float64{"a": -4}))
	if r.Verdict != Alarm || r.SuspicionScore() != 5 {
		t.Fatalf("verdict %v suspicion %d", r.Verdict, r.SuspicionScore())
	}
	if !strings.Contains(strings.Join(r.Reasons, " "), "NaN") {
		t.Fatalf("reasons: %v", r.Reasons)
	}
}

func TestFastMathSensitivityReported(t *testing.T) {
	// Reassociation changes (1e16 + 1) + 1 but not (1 + 2) + 3.
	r := Run(expr.MustParse("(a + b) + c"), vars(t, map[string]float64{
		"a": 1e16, "b": 1, "c": 1,
	}))
	if !r.FastMathDiverges {
		t.Fatalf("reassociation should change this result:\n%s", r)
	}
	if r.Verdict == Clean {
		t.Fatalf("fast-math sensitivity should be at least caution:\n%s", r)
	}
	benign := Run(expr.MustParse("(a + b) + c"), vars(t, map[string]float64{
		"a": 1, "b": 2, "c": 3,
	}))
	if benign.FastMathDiverges {
		t.Fatalf("exact small-integer sum flagged fast-math sensitive:\n%s", benign)
	}
}

func TestVerdictStrings(t *testing.T) {
	if Clean.String() != "CLEAN" || Caution.String() != "CAUTION" || Alarm.String() != "ALARM" {
		t.Fatal("verdict strings")
	}
}
