package kernels

import (
	"math"
	"testing"

	"fpstudy/internal/ieee754"
)

func run(t *testing.T, k Kernel, f ieee754.Format) (float64, *ieee754.Env) {
	t.Helper()
	e := &ieee754.Env{}
	res := k.Run(e, f)
	return f.ToFloat64(res), e
}

func TestSumNaiveHarmonic(t *testing.T) {
	// H_100 = 5.1873775...
	got, _ := run(t, SumNaive(100), ieee754.Binary64)
	if math.Abs(got-5.187377517639621) > 1e-12 {
		t.Fatalf("H_100 = %v", got)
	}
}

func TestKahanMatchesNaiveInDouble(t *testing.T) {
	n, _ := run(t, SumNaive(2000), ieee754.Binary64)
	k, _ := run(t, SumKahan(2000), ieee754.Binary64)
	if math.Abs(n-k) > 1e-10 {
		t.Fatalf("naive %v vs kahan %v", n, k)
	}
}

func TestGrowthOverflowSaturates(t *testing.T) {
	got, e := run(t, GrowthOverflow(), ieee754.Binary64)
	if !math.IsInf(got, 1) {
		t.Fatalf("result %v, want +Inf", got)
	}
	if !e.Flags.Has(ieee754.FlagOverflow) {
		t.Fatalf("flags %v", e.Flags)
	}
	// Saturation: once at +Inf it stays there (no wraparound to
	// negative values, unlike integer overflow).
	if got < 0 {
		t.Fatal("overflow wrapped negative!?")
	}
}

func TestDecayUnderflowReachesZero(t *testing.T) {
	got, e := run(t, DecayUnderflow(), ieee754.Binary64)
	if got != 0 {
		t.Fatalf("result %v, want 0", got)
	}
	if !e.Flags.Has(ieee754.FlagUnderflow) || !e.Flags.Has(ieee754.FlagDenormal) {
		t.Fatalf("flags %v", e.Flags)
	}
}

func TestNaNCascadeProducesNaN(t *testing.T) {
	e := &ieee754.Env{}
	res := NaNCascade().Run(e, ieee754.Binary64)
	if !ieee754.Binary64.IsNaN(res) {
		t.Fatalf("result %x", res)
	}
	if !e.Flags.Has(ieee754.FlagInvalid) {
		t.Fatalf("flags %v", e.Flags)
	}
}

func TestHiddenInfinityOutputsZeroQuietly(t *testing.T) {
	got, e := run(t, HiddenInfinity(), ieee754.Binary64)
	if got != 0 {
		t.Fatalf("result %v", got)
	}
	if !e.Flags.Has(ieee754.FlagDivByZero) {
		t.Fatalf("flags %v", e.Flags)
	}
	if e.Flags.Has(ieee754.FlagInvalid) {
		t.Fatal("no NaN should have been produced")
	}
}

func TestArchimedesPiConverges(t *testing.T) {
	got, _ := run(t, ArchimedesPi(10), ieee754.Binary64)
	if math.Abs(got-math.Pi) > 1e-5 {
		t.Fatalf("pi approx = %v", got)
	}
	// The cancellation-prone form degrades in binary32 at high
	// iteration counts — the precision-loss showcase.
	bad, _ := run(t, ArchimedesPi(25), ieee754.Binary32)
	if math.Abs(bad-math.Pi) < 1e-6 {
		t.Fatalf("binary32 deep iteration unexpectedly accurate: %v", bad)
	}
}

func TestLorenzStaysFinite(t *testing.T) {
	got, e := run(t, Lorenz(2000, 0.005), ieee754.Binary64)
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("lorenz diverged: %v", got)
	}
	if math.Abs(got) > 100 {
		t.Fatalf("lorenz left the attractor: %v", got)
	}
	if !e.Flags.Has(ieee754.FlagInexact) {
		t.Fatal("chaotic integration without rounding!?")
	}
}

func TestLorenzPrecisionSensitivity(t *testing.T) {
	// Chaos amplifies precision differences: binary32 and binary64
	// trajectories must diverge measurably.
	g64, _ := run(t, Lorenz(2000, 0.005), ieee754.Binary64)
	g32, _ := run(t, Lorenz(2000, 0.005), ieee754.Binary32)
	if math.Abs(g64-g32) < 1e-6 {
		t.Fatalf("no divergence: %v vs %v", g64, g32)
	}
}

func TestNBodyRuns(t *testing.T) {
	got, e := run(t, NBody(200, 0.01), ieee754.Binary64)
	if math.IsNaN(got) {
		t.Fatal("nbody NaN")
	}
	if e.Flags == 0 {
		t.Fatal("nbody raised no flags at all")
	}
}

func TestVarianceNaiveCancellation(t *testing.T) {
	// In binary32 the one-pass variance of large-mean data is garbage
	// (possibly negative); in binary64 it is merely poor.
	v32, _ := run(t, VarianceNaive(2000), ieee754.Binary32)
	v64, _ := run(t, VarianceNaive(2000), ieee754.Binary64)
	// True variance of the ramp is about (n*step)^2/12 ~ 20833.
	trueVar := 2000.0 * 2000 * 0.25 * 0.25 / 12
	if math.Abs(v64-trueVar) > trueVar*0.01 {
		t.Fatalf("binary64 variance %v too far from %v", v64, trueVar)
	}
	if math.Abs(v32-trueVar) < trueVar*0.01 {
		t.Fatalf("binary32 cancellation unexpectedly benign: %v", v32)
	}
}

func TestDotFusedVsSeparateDiffer(t *testing.T) {
	sep, _ := run(t, DotProduct(2000, false), ieee754.Binary32)
	fus, _ := run(t, DotProduct(2000, true), ieee754.Binary32)
	if sep == fus {
		t.Skip("fused and separate coincided in binary32 on this data")
	}
}

func TestLogisticMapStaysInUnitInterval(t *testing.T) {
	got, _ := run(t, LogisticMap(5000), ieee754.Binary64)
	if got < 0 || got > 1 {
		t.Fatalf("logistic map escaped [0,1]: %v", got)
	}
}

func TestAllHasUniqueNames(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range All() {
		if seen[k.Name] {
			t.Fatalf("duplicate kernel name %q", k.Name)
		}
		seen[k.Name] = true
		if k.Description == "" {
			t.Errorf("kernel %q missing description", k.Name)
		}
	}
	if len(seen) < 10 {
		t.Fatalf("only %d kernels", len(seen))
	}
}
