// Package kernels implements small scientific computation kernels on the
// ieee754 softfloat substrate. They stand in for the "scientific
// simulation" of the paper's suspicion quiz: each kernel has a
// characteristic floating point exception profile (some overflow, some
// underflow, some produce NaNs, all round), which the exception monitor
// observes through the environment's sticky flags.
package kernels

import (
	"fpstudy/internal/ieee754"
)

// Kernel is a runnable numerical workload.
type Kernel struct {
	Name        string
	Description string
	// Run executes the kernel in format f under env and returns a
	// scalar result (encoded in f) summarizing the computation.
	Run func(env *ieee754.Env, f ieee754.Format) uint64
}

// c converts a constant into format f without touching the caller's
// environment flags.
func c(f ieee754.Format, v float64) uint64 {
	var scratch ieee754.Env
	return f.FromFloat64(&scratch, v)
}

// Lorenz integrates the Lorenz attractor with forward Euler — the
// paper's introduction invokes Lorenz's rounding-error insight. Returns
// the final x coordinate. Chaotic: every rounding decision matters.
func Lorenz(steps int, dt float64) Kernel {
	return Kernel{
		Name:        "lorenz",
		Description: "Lorenz attractor, forward Euler, sigma=10 rho=28 beta=8/3",
		Run: func(e *ieee754.Env, f ieee754.Format) uint64 {
			sigma := c(f, 10)
			rho := c(f, 28)
			beta := f.Div(e, c(f, 8), c(f, 3))
			h := c(f, dt)
			x, y, z := c(f, 1), c(f, 1), c(f, 1)
			for i := 0; i < steps; i++ {
				// dx = sigma*(y-x); dy = x*(rho-z)-y; dz = x*y-beta*z
				dx := f.Mul(e, sigma, f.Sub(e, y, x))
				dy := f.Sub(e, f.Mul(e, x, f.Sub(e, rho, z)), y)
				dz := f.Sub(e, f.Mul(e, x, y), f.Mul(e, beta, z))
				x = f.Add(e, x, f.Mul(e, h, dx))
				y = f.Add(e, y, f.Mul(e, h, dy))
				z = f.Add(e, z, f.Mul(e, h, dz))
			}
			return x
		},
	}
}

// NBody runs a toy 2-D gravitational 3-body integration. Close
// encounters divide by tiny distances, spraying large values and
// rounding everywhere.
func NBody(steps int, dt float64) Kernel {
	return Kernel{
		Name:        "nbody",
		Description: "planar 3-body gravity, softened, forward Euler",
		Run: func(e *ieee754.Env, f ieee754.Format) uint64 {
			type body struct{ x, y, vx, vy, m uint64 }
			bodies := []body{
				{c(f, 0), c(f, 0), c(f, 0), c(f, 0), c(f, 100)},
				{c(f, 10), c(f, 0), c(f, 0), c(f, 3), c(f, 1)},
				{c(f, -8), c(f, 2), c(f, 1), c(f, -2), c(f, 1)},
			}
			h := c(f, dt)
			soft := c(f, 1e-4)
			for s := 0; s < steps; s++ {
				for i := range bodies {
					var ax, ay uint64 // accumulated acceleration
					ax, ay = f.Zero(false), f.Zero(false)
					for j := range bodies {
						if i == j {
							continue
						}
						dx := f.Sub(e, bodies[j].x, bodies[i].x)
						dy := f.Sub(e, bodies[j].y, bodies[i].y)
						r2 := f.Add(e, f.Add(e, f.Mul(e, dx, dx), f.Mul(e, dy, dy)), soft)
						r := f.Sqrt(e, r2)
						r3 := f.Mul(e, r2, r)
						g := f.Div(e, bodies[j].m, r3)
						ax = f.Add(e, ax, f.Mul(e, g, dx))
						ay = f.Add(e, ay, f.Mul(e, g, dy))
					}
					bodies[i].vx = f.Add(e, bodies[i].vx, f.Mul(e, h, ax))
					bodies[i].vy = f.Add(e, bodies[i].vy, f.Mul(e, h, ay))
				}
				for i := range bodies {
					bodies[i].x = f.Add(e, bodies[i].x, f.Mul(e, h, bodies[i].vx))
					bodies[i].y = f.Add(e, bodies[i].y, f.Mul(e, h, bodies[i].vy))
				}
			}
			return bodies[1].x
		},
	}
}

// SumNaive sums 1/k for k=1..n left to right — inexact on nearly every
// step, and eventually the terms are absorbed entirely.
func SumNaive(n int) Kernel {
	return Kernel{
		Name:        "sum-naive",
		Description: "naive left-to-right harmonic sum",
		Run: func(e *ieee754.Env, f ieee754.Format) uint64 {
			sum := f.Zero(false)
			one := c(f, 1)
			k := c(f, 1)
			for i := 0; i < n; i++ {
				sum = f.Add(e, sum, f.Div(e, one, k))
				k = f.Add(e, k, one)
			}
			return sum
		},
	}
}

// SumKahan is the compensated version of SumNaive: same data, far less
// error accumulation. An ablation pair for the benchmark harness.
func SumKahan(n int) Kernel {
	return Kernel{
		Name:        "sum-kahan",
		Description: "Kahan-compensated harmonic sum",
		Run: func(e *ieee754.Env, f ieee754.Format) uint64 {
			sum := f.Zero(false)
			comp := f.Zero(false)
			one := c(f, 1)
			k := c(f, 1)
			for i := 0; i < n; i++ {
				term := f.Div(e, one, k)
				y := f.Sub(e, term, comp)
				t := f.Add(e, sum, y)
				comp = f.Sub(e, f.Sub(e, t, sum), y)
				sum = t
				k = f.Add(e, k, one)
			}
			return sum
		},
	}
}

// VarianceNaive computes the one-pass "sum of squares minus square of
// sums" variance of a synthetic dataset with a large mean — the classic
// catastrophic-cancellation formula that can even go negative.
func VarianceNaive(n int) Kernel {
	return Kernel{
		Name:        "variance-naive",
		Description: "one-pass E[x^2]-E[x]^2 variance with large mean",
		Run: func(e *ieee754.Env, f ieee754.Format) uint64 {
			mean := c(f, 1e6)
			sum := f.Zero(false)
			sumsq := f.Zero(false)
			x := mean
			step := c(f, 0.25)
			nn := c(f, float64(n))
			for i := 0; i < n; i++ {
				x = f.Add(e, x, step) // mean + i*0.25-ish ramp
				sum = f.Add(e, sum, x)
				sumsq = f.Add(e, sumsq, f.Mul(e, x, x))
			}
			m := f.Div(e, sum, nn)
			return f.Sub(e, f.Div(e, sumsq, nn), f.Mul(e, m, m))
		},
	}
}

// GrowthOverflow repeatedly squares a value just above 1 until it
// saturates at +Inf — the overflow exception in its natural habitat.
func GrowthOverflow() Kernel {
	return Kernel{
		Name:        "growth-overflow",
		Description: "repeated squaring to +Inf (saturating overflow)",
		Run: func(e *ieee754.Env, f ieee754.Format) uint64 {
			x := c(f, 1.5)
			for i := 0; i < 64; i++ {
				x = f.Mul(e, x, x)
			}
			return x
		},
	}
}

// DecayUnderflow repeatedly squares a value below 1 down through the
// subnormal range to zero — gradual underflow and denormal territory.
func DecayUnderflow() Kernel {
	return Kernel{
		Name:        "decay-underflow",
		Description: "repeated squaring through subnormals to zero",
		Run: func(e *ieee754.Env, f ieee754.Format) uint64 {
			x := c(f, 0.7)
			for i := 0; i < 64; i++ {
				x = f.Mul(e, x, x)
			}
			return x
		},
	}
}

// NaNCascade manufactures an invalid operation mid-computation (an
// inf - inf from two overflowed branches) and lets the NaN propagate to
// the "output" — the scenario the paper's Divide-by-Zero and Invalid
// questions probe.
func NaNCascade() Kernel {
	return Kernel{
		Name:        "nan-cascade",
		Description: "overflowing branches whose difference is inf-inf = NaN",
		Run: func(e *ieee754.Env, f ieee754.Format) uint64 {
			a := c(f, 10)
			b := c(f, 10.5)
			for i := 0; i < 400; i++ {
				a = f.Mul(e, a, a) // -> +Inf
				b = f.Mul(e, b, b) // -> +Inf
			}
			return f.Sub(e, a, b) // Inf - Inf = NaN
		},
	}
}

// HiddenInfinity divides by a sum that cancels to zero: the 1/0 -> Inf
// result then disappears back into an ordinary-looking number via a
// subsequent division — the "disguised error" motif of the paper's
// Divide-by-Zero question.
func HiddenInfinity() Kernel {
	return Kernel{
		Name:        "hidden-infinity",
		Description: "1/(x-x) -> Inf, then 1/Inf -> 0: error leaves no NaN",
		Run: func(e *ieee754.Env, f ieee754.Format) uint64 {
			x := c(f, 42)
			denom := f.Sub(e, x, x) // exact zero
			inf := f.Div(e, c(f, 1), denom)
			// Downstream the infinity quietly becomes zero.
			return f.Div(e, c(f, 1), inf)
		},
	}
}

// ArchimedesPi runs Archimedes' polygon iteration for pi with the
// numerically poor formulation (subtractive cancellation under the
// square root), a classic precision-loss showcase.
func ArchimedesPi(iters int) Kernel {
	return Kernel{
		Name:        "archimedes-pi",
		Description: "Archimedes polygon pi, cancellation-prone form",
		Run: func(e *ieee754.Env, f ieee754.Format) uint64 {
			one := c(f, 1)
			two := c(f, 2)
			four := c(f, 4)
			// t = tan(pi/4) = 1, sides double each iteration:
			// t' = (sqrt(t^2+1) - 1)/t
			t := one
			sides := four
			for i := 0; i < iters; i++ {
				t2 := f.Mul(e, t, t)
				s := f.Sqrt(e, f.Add(e, t2, one))
				t = f.Div(e, f.Sub(e, s, one), t)
				sides = f.Mul(e, sides, two)
			}
			return f.Mul(e, sides, t)
		},
	}
}

// LogisticMap iterates x' = r*x*(1-x), the textbook chaotic map; like
// Lorenz it amplifies every rounding difference.
func LogisticMap(steps int) Kernel {
	return Kernel{
		Name:        "logistic-map",
		Description: "logistic map at r=3.9 (chaotic regime)",
		Run: func(e *ieee754.Env, f ieee754.Format) uint64 {
			r := c(f, 3.9)
			x := c(f, 0.5)
			one := c(f, 1)
			for i := 0; i < steps; i++ {
				x = f.Mul(e, f.Mul(e, r, x), f.Sub(e, one, x))
			}
			return x
		},
	}
}

// DotProduct computes a pseudo-random dot product with an FMA and a
// non-FMA path selectable by the fused flag — the ablation pair for the
// MADD optimization question.
func DotProduct(n int, fused bool) Kernel {
	name := "dot-separate"
	if fused {
		name = "dot-fused"
	}
	return Kernel{
		Name:        name,
		Description: "dot product of deterministic pseudo-random vectors",
		Run: func(e *ieee754.Env, f ieee754.Format) uint64 {
			acc := f.Zero(false)
			seed := uint64(0x9e3779b97f4a7c15)
			next := func() uint64 {
				seed ^= seed << 13
				seed ^= seed >> 7
				seed ^= seed << 17
				// Map to [-1, 2)-ish small values.
				return c(f, float64(int64(seed%4096)-2048)/1024)
			}
			for i := 0; i < n; i++ {
				x, y := next(), next()
				if fused {
					acc = f.FMA(e, x, y, acc)
				} else {
					acc = f.Add(e, acc, f.Mul(e, x, y))
				}
			}
			return acc
		},
	}
}

// All returns the standard kernel suite with default sizes.
func All() []Kernel {
	return []Kernel{
		Lorenz(2000, 0.005),
		LorenzRK4(500, 0.02),
		NBody(500, 0.01),
		SumNaive(5000),
		SumKahan(5000),
		VarianceNaive(2000),
		GrowthOverflow(),
		DecayUnderflow(),
		NaNCascade(),
		HiddenInfinity(),
		ArchimedesPi(20),
		LogisticMap(5000),
		DotProduct(2000, false),
		DotProduct(2000, true),
		LUSolve(20, true),
		LUSolve(20, false),
		PolyHorner(12, 200),
		PolyNaive(12, 200),
	}
}
