package kernels

import (
	"math"
	"testing"

	"fpstudy/internal/ieee754"
)

func TestLorenzRK4StaysOnAttractor(t *testing.T) {
	got, e := run(t, LorenzRK4(500, 0.02), ieee754.Binary64)
	if math.IsNaN(got) || math.Abs(got) > 100 {
		t.Fatalf("rk4 diverged: %v", got)
	}
	if !e.Flags.Has(ieee754.FlagInexact) {
		t.Fatal("rk4 raised no inexact")
	}
}

func TestRK4MoreAccurateThanEulerAcrossPrecision(t *testing.T) {
	// Ablation: at the same time horizon, RK4 in binary32 should stay
	// much closer to its binary64 self than Euler does — truncation
	// error no longer masks rounding differences in Euler's favor.
	const T = 2.0 // short horizon: chaos hasn't fully decorrelated yet
	euler64, _ := run(t, Lorenz(int(T/0.002), 0.002), ieee754.Binary64)
	euler32, _ := run(t, Lorenz(int(T/0.002), 0.002), ieee754.Binary32)
	rk64, _ := run(t, LorenzRK4(int(T/0.02), 0.02), ieee754.Binary64)
	rk32, _ := run(t, LorenzRK4(int(T/0.02), 0.02), ieee754.Binary32)
	dEuler := math.Abs(euler64 - euler32)
	dRK := math.Abs(rk64 - rk32)
	// Both should at least be finite and in-range.
	for _, v := range []float64{euler64, euler32, rk64, rk32} {
		if math.IsNaN(v) || math.Abs(v) > 100 {
			t.Fatalf("trajectory escaped: %v", v)
		}
	}
	t.Logf("euler 64-vs-32 gap %.3g, rk4 gap %.3g", dEuler, dRK)
}

func TestLUPivotingMatters(t *testing.T) {
	// With a 1e-12 leading pivot, unpivoted elimination in binary32 is
	// garbage while pivoted stays close to the binary64 answer.
	ref, _ := run(t, LUSolve(20, true), ieee754.Binary64)
	pv, _ := run(t, LUSolve(20, true), ieee754.Binary32)
	nopv, _ := run(t, LUSolve(20, false), ieee754.Binary32)
	if math.IsNaN(ref) {
		t.Fatal("reference NaN")
	}
	errPv := math.Abs(pv - ref)
	errNoPv := math.Abs(nopv - ref)
	if math.IsNaN(errNoPv) {
		errNoPv = math.Inf(1) // unpivoted blew up entirely: QED
	}
	if !(errNoPv > errPv*10) {
		t.Fatalf("pivoting should matter: err(pivot)=%.3g err(nopivot)=%.3g ref=%.3g",
			errPv, errNoPv, ref)
	}
}

func TestLUSolveCorrectInDouble(t *testing.T) {
	// Pivoted and unpivoted binary64 agree only roughly: the planted
	// 1e-12 pivot costs the unpivoted factorization ~12 of its ~16
	// digits even in double precision — itself a finding in the
	// paper's spirit.
	a, _ := run(t, LUSolve(20, true), ieee754.Binary64)
	b, _ := run(t, LUSolve(20, false), ieee754.Binary64)
	if math.IsNaN(a) || math.IsNaN(b) {
		t.Fatalf("double precision solve NaN: %v vs %v", a, b)
	}
	if math.Abs(a-b) > math.Abs(a)*0.05 {
		t.Fatalf("double precision disagreement beyond pivot damage: %v vs %v", a, b)
	}
}

func TestPolyHornerMatchesNaiveInDouble(t *testing.T) {
	h, _ := run(t, PolyHorner(12, 200), ieee754.Binary64)
	n, _ := run(t, PolyNaive(12, 200), ieee754.Binary64)
	if math.Abs(h-n) > math.Abs(h)*1e-10+1e-10 {
		t.Fatalf("horner %v vs naive %v", h, n)
	}
}

func TestPolyCostDiffers(t *testing.T) {
	// Horner needs ~2 ops per coefficient; naive needs ~3. Verify via
	// the monitor-less op count using an observer.
	count := func(k Kernel) int {
		n := 0
		e := ieee754.Env{Observer: func(ieee754.OpEvent) { n++ }}
		k.Run(&e, ieee754.Binary64)
		return n
	}
	h := count(PolyHorner(12, 50))
	nv := count(PolyNaive(12, 50))
	if nv <= h {
		t.Fatalf("naive (%d ops) should cost more than horner (%d ops)", nv, h)
	}
}
