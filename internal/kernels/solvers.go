package kernels

import (
	"fpstudy/internal/ieee754"
)

// LorenzRK4 integrates the Lorenz system with classical Runge-Kutta 4 —
// the ablation partner of the forward-Euler kernel: same trajectory,
// far smaller truncation error, so differences between formats isolate
// the rounding error the paper is about.
func LorenzRK4(steps int, dt float64) Kernel {
	return Kernel{
		Name:        "lorenz-rk4",
		Description: "Lorenz attractor, classical RK4",
		Run: func(e *ieee754.Env, f ieee754.Format) uint64 {
			sigma := c(f, 10)
			rho := c(f, 28)
			beta := f.Div(e, c(f, 8), c(f, 3))
			h := c(f, dt)
			half := c(f, 0.5)
			sixth := f.Div(e, c(f, 1), c(f, 6))
			two := c(f, 2)

			type vec struct{ x, y, z uint64 }
			deriv := func(v vec) vec {
				return vec{
					x: f.Mul(e, sigma, f.Sub(e, v.y, v.x)),
					y: f.Sub(e, f.Mul(e, v.x, f.Sub(e, rho, v.z)), v.y),
					z: f.Sub(e, f.Mul(e, v.x, v.y), f.Mul(e, beta, v.z)),
				}
			}
			axpy := func(v, d vec, s uint64) vec { // v + s*d
				return vec{
					x: f.Add(e, v.x, f.Mul(e, s, d.x)),
					y: f.Add(e, v.y, f.Mul(e, s, d.y)),
					z: f.Add(e, v.z, f.Mul(e, s, d.z)),
				}
			}
			v := vec{c(f, 1), c(f, 1), c(f, 1)}
			hHalf := f.Mul(e, h, half)
			for i := 0; i < steps; i++ {
				k1 := deriv(v)
				k2 := deriv(axpy(v, k1, hHalf))
				k3 := deriv(axpy(v, k2, hHalf))
				k4 := deriv(axpy(v, k3, h))
				// v += h/6 * (k1 + 2k2 + 2k3 + k4)
				sum := vec{
					x: f.Add(e, f.Add(e, k1.x, f.Mul(e, two, k2.x)), f.Add(e, f.Mul(e, two, k3.x), k4.x)),
					y: f.Add(e, f.Add(e, k1.y, f.Mul(e, two, k2.y)), f.Add(e, f.Mul(e, two, k3.y), k4.y)),
					z: f.Add(e, f.Add(e, k1.z, f.Mul(e, two, k2.z)), f.Add(e, f.Mul(e, two, k3.z), k4.z)),
				}
				v = axpy(v, sum, f.Mul(e, h, sixth))
			}
			return v.x
		},
	}
}

// lcg is a tiny deterministic generator for solver test matrices.
type lcg struct{ s uint64 }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s
}

// val returns a small value in roughly [-4, 4).
func (l *lcg) val(f ieee754.Format) uint64 {
	return c(f, float64(int64(l.next()%8192)-4096)/1024)
}

// LUSolve factors a deterministic pseudo-random n x n system and solves
// it, with or without partial pivoting. Without pivoting, near-zero
// pivots amplify rounding error catastrophically — a numeric
// correctness decision of exactly the kind the paper says codebases
// get wrong. Returns the first solution component.
func LUSolve(n int, pivot bool) Kernel {
	name := "lu-nopivot"
	if pivot {
		name = "lu-pivot"
	}
	return Kernel{
		Name:        name,
		Description: "dense LU solve, deterministic random system",
		Run: func(e *ieee754.Env, f ieee754.Format) uint64 {
			g := &lcg{s: 0x1234567}
			a := make([][]uint64, n)
			b := make([]uint64, n)
			for i := range a {
				a[i] = make([]uint64, n)
				for j := range a[i] {
					a[i][j] = g.val(f)
				}
				b[i] = g.val(f)
			}
			// Make one early pivot tiny to punish no-pivot runs.
			a[0][0] = c(f, 1e-12)

			// Gaussian elimination.
			perm := make([]int, n)
			for i := range perm {
				perm[i] = i
			}
			for k := 0; k < n; k++ {
				if pivot {
					// Find the largest magnitude in column k.
					best := k
					for i := k + 1; i < n; i++ {
						if f.Gt(e, f.Abs(a[perm[i]][k]), f.Abs(a[perm[best]][k])) {
							best = i
						}
					}
					perm[k], perm[best] = perm[best], perm[k]
				}
				pk := perm[k]
				for i := k + 1; i < n; i++ {
					pi := perm[i]
					m := f.Div(e, a[pi][k], a[pk][k])
					a[pi][k] = m
					for j := k + 1; j < n; j++ {
						a[pi][j] = f.Sub(e, a[pi][j], f.Mul(e, m, a[pk][j]))
					}
					b[pi] = f.Sub(e, b[pi], f.Mul(e, m, b[pk]))
				}
			}
			// Back substitution.
			x := make([]uint64, n)
			for i := n - 1; i >= 0; i-- {
				pi := perm[i]
				s := b[pi]
				for j := i + 1; j < n; j++ {
					s = f.Sub(e, s, f.Mul(e, a[pi][j], x[j]))
				}
				x[i] = f.Div(e, s, a[pi][i])
			}
			return x[0]
		},
	}
}

// PolyHorner evaluates a wiggly degree-d polynomial at many points with
// Horner's rule; PolyNaive uses explicit powers. Another ablation pair:
// same mathematical result, different rounding profile and cost.
func PolyHorner(degree, points int) Kernel {
	return polyKernel("poly-horner", degree, points, true)
}

// PolyNaive is the powers-based counterpart of PolyHorner.
func PolyNaive(degree, points int) Kernel {
	return polyKernel("poly-naive", degree, points, false)
}

func polyKernel(name string, degree, points int, horner bool) Kernel {
	return Kernel{
		Name:        name,
		Description: "polynomial evaluation sweep",
		Run: func(e *ieee754.Env, f ieee754.Format) uint64 {
			g := &lcg{s: 0xfeedbeef}
			coef := make([]uint64, degree+1)
			for i := range coef {
				coef[i] = g.val(f)
			}
			acc := f.Zero(false)
			step := c(f, 2.0/float64(points))
			x := c(f, -1)
			for p := 0; p < points; p++ {
				var v uint64
				if horner {
					v = coef[degree]
					for i := degree - 1; i >= 0; i-- {
						v = f.Add(e, f.Mul(e, v, x), coef[i])
					}
				} else {
					v = coef[0]
					xp := c(f, 1)
					for i := 1; i <= degree; i++ {
						xp = f.Mul(e, xp, x)
						v = f.Add(e, v, f.Mul(e, coef[i], xp))
					}
				}
				acc = f.Add(e, acc, v)
				x = f.Add(e, x, step)
			}
			return acc
		},
	}
}
