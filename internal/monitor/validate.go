package monitor

import (
	"fmt"
	"math"
	"strings"

	"fpstudy/internal/ieee754"
	"fpstudy/internal/kernels"
)

// SuspicionEvidence is the empirical backing for one condition's
// ground-truth suspicion level, gathered by running the kernel corpus
// in reduced precisions against binary64 references.
//
// Two views are tabulated. "Any" counts runs where the condition fired
// at all; "Novel" counts runs where it fired although the binary64
// reference run of the same kernel did not raise it — the genuinely
// surprising occurrences a monitoring tool would alert on.
type SuspicionEvidence struct {
	Condition Condition

	Occurrences int // runs where the condition fired
	BadOutcomes int // ... of those, runs with a bad output

	Novel    int // runs where it fired but not in the reference
	NovelBad int // ... of those, runs with a bad output
}

// Precision reports P(bad | condition occurred).
func (ev SuspicionEvidence) Precision() float64 {
	if ev.Occurrences == 0 {
		return 0
	}
	return float64(ev.BadOutcomes) / float64(ev.Occurrences)
}

// NovelPrecision reports P(bad | condition occurred novelly).
func (ev SuspicionEvidence) NovelPrecision() float64 {
	if ev.Novel == 0 {
		return 0
	}
	return float64(ev.NovelBad) / float64(ev.Novel)
}

// ValidateSuspicionRanking runs every kernel in several reduced
// precisions, records which conditions occurred (and whether they were
// novel relative to the kernel's own binary64 run), and whether the
// output was bad (non-finite where the reference is finite, or
// relative error above tol). The evidence grounds the paper's
// "arguably reasonable ranking" empirically: novel Invalid is
// near-certain trouble, novel Overflow is strong trouble, while
// Precision (inexact) fires everywhere — including on perfectly good
// runs — and so warrants little suspicion by itself.
func ValidateSuspicionRanking(tol float64) []SuspicionEvidence {
	suite := kernels.All()
	formats := []ieee754.Format{ieee754.Binary16, ieee754.Bfloat16, ieee754.Binary32}

	evidence := make([]SuspicionEvidence, numConditions)
	for i := range evidence {
		evidence[i].Condition = Condition(i)
	}

	for _, k := range suite {
		refBits, refRep := Run(ieee754.Binary64, k.Run)
		ref := ieee754.Binary64.ToFloat64(refBits)
		refOccurred := map[Condition]bool{}
		for _, e := range refRep.Entries {
			if e.Occurred() {
				refOccurred[e.Condition] = true
			}
		}
		for _, f := range formats {
			resBits, rep := Run(f, k.Run)
			res := f.ToFloat64(resBits)
			bad := isBadOutcome(res, ref, tol)
			for _, e := range rep.Entries {
				if !e.Occurred() {
					continue
				}
				ev := &evidence[e.Condition]
				ev.Occurrences++
				if bad {
					ev.BadOutcomes++
				}
				if !refOccurred[e.Condition] {
					ev.Novel++
					if bad {
						ev.NovelBad++
					}
				}
			}
		}
	}
	return evidence
}

// isBadOutcome decides whether a reduced-precision result counts as
// "wrong" relative to the reference.
func isBadOutcome(res, ref float64, tol float64) bool {
	if math.IsNaN(res) {
		return !math.IsNaN(ref) // NaN where the reference is a number
	}
	if math.IsInf(res, 0) {
		return !math.IsInf(ref, 0)
	}
	if math.IsNaN(ref) || math.IsInf(ref, 0) {
		return true // number where the reference is exceptional
	}
	if ref == 0 {
		return math.Abs(res) > tol
	}
	return math.Abs(res-ref)/math.Abs(ref) > tol
}

// FormatEvidence renders the evidence table with the asserted
// ground-truth levels alongside the measured precisions.
func FormatEvidence(evs []SuspicionEvidence) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %6s %6s %14s %7s %14s %s\n",
		"condition", "any", "bad", "P(bad|any)", "novel", "P(bad|novel)", "asserted")
	for _, ev := range evs {
		fmt.Fprintf(&b, "%-10s %6d %6d %13.0f%% %7d %13.0f%% %d/5\n",
			ev.Condition, ev.Occurrences, ev.BadOutcomes, 100*ev.Precision(),
			ev.Novel, 100*ev.NovelPrecision(), ev.Condition.GroundTruthSuspicion())
	}
	return b.String()
}
