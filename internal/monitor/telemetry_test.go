package monitor

import (
	"sync/atomic"
	"testing"

	"fpstudy/internal/ieee754"
)

type testCounter struct{ v atomic.Int64 }

func (c *testCounter) Add(n int64) { c.v.Add(n) }

// TestCountingObserver drives the bridge with operations known to raise
// each condition and checks the aggregate counts match a Monitor's.
func TestCountingObserver(t *testing.T) {
	ops := &testCounter{}
	divZero := &testCounter{}
	conds := map[Condition]EventCounter{}
	counters := map[Condition]*testCounter{}
	for _, c := range Conditions() {
		tc := &testCounter{}
		counters[c] = tc
		conds[c] = tc
	}

	m := New()
	var env ieee754.Env
	env.Observer = CountingObserver(ops, conds, divZero)
	f := ieee754.Binary64

	run := func(e *ieee754.Env) {
		big := f.FromFloat64(e, 1e308)
		tiny := f.FromFloat64(e, 5e-324)
		one := f.FromFloat64(e, 1)
		three := f.FromFloat64(e, 3)
		_ = f.Mul(e, big, big)                     // overflow (+ inexact)
		_ = f.Mul(e, tiny, tiny)                   // underflow (+ denormal operand)
		_ = f.Div(e, one, three)                   // inexact
		_ = f.Div(e, f.Zero(false), f.Zero(false)) // invalid
		_ = f.Div(e, one, f.Zero(false))           // divide-by-zero
	}
	run(&env)
	run(m.Env())

	rep := m.Report()
	for _, e := range rep.Entries {
		if got := counters[e.Condition].v.Load(); got != int64(e.Count) {
			t.Errorf("%s: bridge counted %d, monitor counted %d", e.Condition, got, e.Count)
		}
		if !e.Occurred() {
			t.Errorf("%s never occurred; the workload should raise every condition", e.Condition)
		}
	}
	if got := ops.v.Load(); got != int64(rep.TotalOps) {
		t.Errorf("ops: bridge counted %d, monitor counted %d", got, rep.TotalOps)
	}
	if got := divZero.v.Load(); got != int64(rep.DivByZero) {
		t.Errorf("divzero: bridge counted %d, monitor counted %d", got, rep.DivByZero)
	}
}

// TestCountingObserverPartial checks nil sinks and missing conditions
// are tolerated.
func TestCountingObserverPartial(t *testing.T) {
	inv := &testCounter{}
	obs := CountingObserver(nil, map[Condition]EventCounter{Invalid: inv}, nil)
	var env ieee754.Env
	env.Observer = obs
	f := ieee754.Binary64
	_ = f.Div(&env, f.Zero(false), f.Zero(false)) // invalid
	_ = f.Div(&env, f.FromFloat64(&env, 1), f.FromFloat64(&env, 3))
	if inv.v.Load() != 1 {
		t.Errorf("invalid count = %d, want 1", inv.v.Load())
	}
}

func TestConditionMetricNames(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Conditions() {
		name := c.MetricName()
		if seen[name] {
			t.Errorf("duplicate metric name %q", name)
		}
		seen[name] = true
		if name == "fp.exceptions.unknown" {
			t.Errorf("%s has no metric name", c)
		}
	}
}
