package monitor

import (
	"strings"
	"testing"

	"fpstudy/internal/ieee754"
	"fpstudy/internal/kernels"
)

func TestMonitorCountsConditions(t *testing.T) {
	m := New()
	e := m.Env()
	f := ieee754.Binary64
	var s ieee754.Env
	one := f.FromFloat64(&s, 1)
	zero := f.Zero(false)
	three := f.FromFloat64(&s, 3)

	f.Div(e, one, three)                               // inexact
	f.Div(e, zero, zero)                               // invalid
	f.Div(e, one, zero)                                // divbyzero
	f.Mul(e, f.MaxFinite(false), f.FromFloat64(&s, 2)) // overflow+inexact
	f.Div(e, f.MinSubnormal(), f.FromFloat64(&s, 2))   // underflow+inexact
	f.Add(e, f.MinSubnormal(), zero)                   // denormal operand

	r := m.Report()
	if r.TotalOps != 6 {
		t.Fatalf("ops = %d", r.TotalOps)
	}
	want := map[Condition]uint64{
		Precision: 3, Invalid: 1, Overflow: 1, Underflow: 1, Denorm: 2,
	}
	for _, e := range r.Entries {
		if e.Count != want[e.Condition] {
			t.Errorf("%v count = %d, want %d", e.Condition, e.Count, want[e.Condition])
		}
	}
	if r.DivByZero != 1 {
		t.Errorf("divzero = %d", r.DivByZero)
	}
	if r.SuspicionScore() != 5 {
		t.Errorf("suspicion = %d, want 5 (invalid occurred)", r.SuspicionScore())
	}
}

func TestMonitorFirstEvent(t *testing.T) {
	m := New()
	e := m.Env()
	f := ieee754.Binary64
	var s ieee754.Env
	f.Add(e, f.FromFloat64(&s, 1), f.FromFloat64(&s, 2)) // exact
	f.Sqrt(e, f.FromFloat64(&s, -1))                     // invalid
	r := m.Report()
	for _, en := range r.Entries {
		if en.Condition == Invalid {
			if en.First == nil || en.First.Op != "sqrt" {
				t.Fatalf("first invalid event: %+v", en.First)
			}
		}
	}
}

func TestMonitorReset(t *testing.T) {
	m := New()
	f := ieee754.Binary64
	var s ieee754.Env
	f.Div(m.Env(), f.FromFloat64(&s, 1), f.FromFloat64(&s, 3))
	if m.Report().TotalOps == 0 {
		t.Fatal("no ops recorded")
	}
	m.Reset()
	r := m.Report()
	if r.TotalOps != 0 || r.Sticky != 0 {
		t.Fatalf("reset left state: %+v", r)
	}
}

func TestGroundTruthRanking(t *testing.T) {
	// Invalid >> Overflow >> {Underflow, Denorm} >= Precision.
	if !(Invalid.GroundTruthSuspicion() > Overflow.GroundTruthSuspicion()) {
		t.Fatal("invalid should outrank overflow")
	}
	if !(Overflow.GroundTruthSuspicion() > Underflow.GroundTruthSuspicion()) {
		t.Fatal("overflow should outrank underflow")
	}
	if !(Underflow.GroundTruthSuspicion() >= Precision.GroundTruthSuspicion()) {
		t.Fatal("underflow should not rank below precision")
	}
}

func TestKernelExceptionProfiles(t *testing.T) {
	f := ieee754.Binary64
	cases := []struct {
		k          kernels.Kernel
		mustRaise  []Condition
		mustAvoid  []Condition
		wantNaNOut bool
	}{
		{kernels.GrowthOverflow(), []Condition{Overflow, Precision}, []Condition{Invalid}, false},
		{kernels.DecayUnderflow(), []Condition{Underflow, Denorm}, []Condition{Invalid, Overflow}, false},
		{kernels.NaNCascade(), []Condition{Overflow, Invalid}, nil, true},
		{kernels.SumNaive(1000), []Condition{Precision}, []Condition{Invalid, Overflow}, false},
		{kernels.Lorenz(500, 0.005), []Condition{Precision}, []Condition{Invalid}, false},
	}
	for _, c := range cases {
		res, rep := Run(f, c.k.Run)
		occurred := map[Condition]bool{}
		for _, cond := range rep.Occurred() {
			occurred[cond] = true
		}
		for _, cond := range c.mustRaise {
			if !occurred[cond] {
				t.Errorf("%s: expected %v to occur; report:\n%s", c.k.Name, cond, rep)
			}
		}
		for _, cond := range c.mustAvoid {
			if occurred[cond] {
				t.Errorf("%s: %v occurred unexpectedly", c.k.Name, cond)
			}
		}
		if got := f.IsNaN(res); got != c.wantNaNOut {
			t.Errorf("%s: NaN output = %v, want %v", c.k.Name, got, c.wantNaNOut)
		}
	}
}

func TestHiddenInfinityDisguisesError(t *testing.T) {
	// The paper's Divide-by-Zero motif: the output looks ordinary
	// (zero), but the monitor catches the divide-by-zero.
	f := ieee754.Binary64
	res, rep := Run(f, kernels.HiddenInfinity().Run)
	if f.IsNaN(res) {
		t.Fatal("output should NOT be a NaN — that is the point")
	}
	if !f.IsZero(res) {
		t.Fatalf("output = %v, want 0", f.ToFloat64(res))
	}
	if rep.DivByZero == 0 {
		t.Fatal("monitor missed the divide-by-zero")
	}
}

func TestKahanBeatsNaive(t *testing.T) {
	// Ablation: Kahan summation is closer to the binary64 reference
	// than naive summation when run in binary32.
	f := ieee754.Binary32
	ref64, _ := Run(ieee754.Binary64, kernels.SumNaive(20000).Run)
	want := ieee754.Binary64.ToFloat64(ref64)
	naive, _ := Run(f, kernels.SumNaive(20000).Run)
	kahan, _ := Run(f, kernels.SumKahan(20000).Run)
	errNaive := abs(ieee754.Binary32.ToFloat64(naive) - want)
	errKahan := abs(ieee754.Binary32.ToFloat64(kahan) - want)
	if errKahan >= errNaive {
		t.Fatalf("kahan err %g >= naive err %g", errKahan, errNaive)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestReportString(t *testing.T) {
	_, rep := Run(ieee754.Binary64, kernels.NaNCascade().Run)
	s := rep.String()
	for _, want := range []string{"Invalid", "Overflow", "suspicion", "occurred"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestAllKernelsRunInAllFormats(t *testing.T) {
	for _, f := range []ieee754.Format{ieee754.Binary16, ieee754.Binary32, ieee754.Binary64} {
		for _, k := range kernels.All() {
			_, rep := Run(f, k.Run)
			if rep.TotalOps == 0 {
				t.Errorf("%s in %s: no operations", k.Name, f.Name)
			}
		}
	}
}

func TestMonitorWithFTZEnv(t *testing.T) {
	// A monitor over an FTZ environment shows different underflow
	// behaviour than the IEEE default for the decay kernel.
	ieeeRes, _ := Run(ieee754.Binary64, kernels.DecayUnderflow().Run)
	m := NewWithEnv(ieee754.Env{FTZ: true, DAZ: true})
	ftzRes := kernels.DecayUnderflow().Run(m.Env(), ieee754.Binary64)
	rep := m.Report()
	_ = ieeeRes
	if !ieee754.Binary64.IsZero(ftzRes) {
		t.Fatalf("FTZ decay result: %v", ieee754.Binary64.ToFloat64(ftzRes))
	}
	// FTZ flushes instead of producing subnormal results, so the path
	// to zero is abrupt; underflow is still reported.
	found := false
	for _, e := range rep.Entries {
		if e.Condition == Underflow && e.Occurred() {
			found = true
		}
	}
	if !found {
		t.Fatal("FTZ run did not report underflow")
	}
}

func TestConditionsOrderMatchesPaper(t *testing.T) {
	want := []string{"Overflow", "Underflow", "Precision", "Invalid", "Denorm"}
	for i, c := range Conditions() {
		if c.String() != want[i] {
			t.Fatalf("condition %d = %v, want %v", i, c, want[i])
		}
	}
}
