package monitor

import (
	"strings"
	"testing"
)

func TestValidateSuspicionRanking(t *testing.T) {
	evs := ValidateSuspicionRanking(0.01)
	byCondition := map[Condition]SuspicionEvidence{}
	for _, ev := range evs {
		byCondition[ev.Condition] = ev
	}

	inv := byCondition[Invalid]
	prec := byCondition[Precision]
	ovf := byCondition[Overflow]

	// Every condition must actually occur somewhere in the corpus,
	// otherwise the validation is vacuous.
	for _, c := range Conditions() {
		if byCondition[c].Occurrences == 0 {
			t.Errorf("condition %v never occurred in the kernel corpus", c)
		}
	}

	// A *novel* Invalid — a NaN where the double-precision run had
	// none — is near-certain trouble, the top of the paper's ranking.
	if inv.Novel < 2 {
		t.Errorf("novel invalid occurred only %d times; corpus too thin", inv.Novel)
	}
	if inv.NovelPrecision() < 0.75 {
		t.Errorf("P(bad|novel invalid)=%.2f, expected near 1", inv.NovelPrecision())
	}
	// A novel Overflow is strong evidence of trouble.
	if ovf.Novel < 1 {
		t.Errorf("novel overflow never occurred")
	}
	if ovf.NovelPrecision() < 0.5 {
		t.Errorf("P(bad|novel overflow)=%.2f, expected high", ovf.NovelPrecision())
	}
	// Precision (inexact) fires on essentially every run including
	// perfectly good ones: as a standalone signal it is weak, and in
	// particular weaker than a novel Invalid.
	if prec.Occurrences < 30 {
		t.Errorf("precision fired only %d times; expected nearly every run", prec.Occurrences)
	}
	if prec.Precision() >= inv.NovelPrecision() {
		t.Errorf("P(bad|precision)=%.2f should be below P(bad|novel invalid)=%.2f",
			prec.Precision(), inv.NovelPrecision())
	}

	out := FormatEvidence(evs)
	for _, want := range []string{"Invalid", "P(bad|any)", "P(bad|novel)", "asserted"} {
		if !strings.Contains(out, want) {
			t.Errorf("evidence table missing %q:\n%s", want, out)
		}
	}
	t.Logf("\n%s", out)
}

func TestIsBadOutcome(t *testing.T) {
	nan := 0.0 / func() float64 { return 0 }()
	inf := 1 / func() float64 { return 0 }()
	cases := []struct {
		res, ref float64
		want     bool
	}{
		{1.0, 1.0, false},
		{1.005, 1.0, false}, // within 1%
		{1.05, 1.0, true},
		{nan, 1.0, true},
		{nan, nan, false}, // NaN expected
		{inf, 1.0, true},
		{inf, inf, false},
		{1.0, inf, true},
		{0.5, 0, true},
		{0.0, 0, false},
	}
	for _, c := range cases {
		if got := isBadOutcome(c.res, c.ref, 0.01); got != c.want {
			t.Errorf("isBadOutcome(%v, %v) = %v, want %v", c.res, c.ref, got, c.want)
		}
	}
}
