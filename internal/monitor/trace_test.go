package monitor

import (
	"strings"
	"testing"

	"fpstudy/internal/ieee754"
	"fpstudy/internal/kernels"
)

func TestTracerCapturesFirstExceptions(t *testing.T) {
	tr := NewTracer(ieee754.FlagInvalid|ieee754.FlagDivByZero, 8)
	f := ieee754.Binary64
	e := tr.Env()
	var s ieee754.Env
	one := f.FromFloat64(&s, 1)
	three := f.FromFloat64(&s, 3)
	zero := f.Zero(false)

	f.Div(e, one, three) // inexact: not watched
	f.Div(e, one, zero)  // divzero: watched, op index 1
	f.Div(e, zero, zero) // invalid: watched, op index 2

	entries := tr.Entries()
	if len(entries) != 2 {
		t.Fatalf("entries: %d", len(entries))
	}
	if entries[0].Index != 1 || entries[0].Event.Op != "div" {
		t.Fatalf("first entry: %+v", entries[0])
	}
	if !entries[1].Event.Raised.Has(ieee754.FlagInvalid) {
		t.Fatalf("second entry raised %v", entries[1].Event.Raised)
	}
	line := entries[0].String()
	if !strings.Contains(line, "div(1, 0)") || !strings.Contains(line, "+Inf") {
		t.Fatalf("trace line: %q", line)
	}
}

func TestTracerLimitAndDropped(t *testing.T) {
	tr := NewTracer(ieee754.FlagInexact, 3)
	f := ieee754.Binary64
	var s ieee754.Env
	one := f.FromFloat64(&s, 1)
	three := f.FromFloat64(&s, 3)
	for i := 0; i < 10; i++ {
		f.Div(tr.Env(), one, three)
	}
	if len(tr.Entries()) != 3 {
		t.Fatalf("entries %d", len(tr.Entries()))
	}
	if tr.Dropped() != 7 {
		t.Fatalf("dropped %d", tr.Dropped())
	}
	rep := tr.TraceReport()
	if !strings.Contains(rep, "7 dropped") {
		t.Fatalf("report:\n%s", rep)
	}
}

func TestTracerDefaultsWatchAll(t *testing.T) {
	tr := NewTracer(0, 0)
	if tr.Watch != ieee754.AllFlags || tr.Limit != 32 {
		t.Fatalf("defaults: %v %d", tr.Watch, tr.Limit)
	}
	// Run the NaN cascade: the trace must include the inf-inf sub.
	res := kernels.NaNCascade().Run(tr.Env(), ieee754.Binary64)
	if !ieee754.Binary64.IsNaN(res) {
		t.Fatal("cascade did not NaN")
	}
	found := false
	for _, e := range tr.Entries() {
		if e.Event.Op == "sub" && e.Event.Raised.Has(ieee754.FlagInvalid) {
			found = true
		}
	}
	// The sub may be beyond the 32-entry limit since overflow ops come
	// first; in that case dropped must be nonzero and the monitor still
	// counted it.
	if !found && tr.Dropped() == 0 {
		t.Fatal("inf-inf sub neither traced nor dropped")
	}
	rep := tr.Report()
	occurred := map[Condition]bool{}
	for _, c := range rep.Occurred() {
		occurred[c] = true
	}
	if !occurred[Invalid] {
		t.Fatal("monitor missed the invalid")
	}
}

func TestTracerCleanRun(t *testing.T) {
	tr := NewTracer(ieee754.FlagInvalid, 4)
	f := ieee754.Binary64
	var s ieee754.Env
	f.Add(tr.Env(), f.FromFloat64(&s, 1), f.FromFloat64(&s, 2))
	if len(tr.Entries()) != 0 {
		t.Fatal("clean run traced something")
	}
	if !strings.Contains(tr.TraceReport(), "no watched exceptions") {
		t.Fatal("clean report text")
	}
}
