package monitor

import (
	"fmt"
	"strings"

	"fpstudy/internal/ieee754"
)

// TraceEntry records one exceptional operation: where in the operation
// stream it happened and what it computed.
type TraceEntry struct {
	// Index is the 0-based position in the monitored operation stream.
	Index uint64
	Event ieee754.OpEvent
}

// String renders the entry like a debugger line.
func (t TraceEntry) String() string {
	f := t.Event.Format
	args := make([]string, 0, 3)
	operands := []uint64{t.Event.A, t.Event.B, t.Event.C}
	for i := 0; i < t.Event.NArgs && i < 3; i++ {
		args = append(args, f.String(operands[i]))
	}
	return fmt.Sprintf("op %d: %s(%s) = %s raised %s",
		t.Index, t.Event.Op, strings.Join(args, ", "),
		f.String(t.Event.Result), t.Event.Raised)
}

// Tracer extends Monitor with a bounded log of exceptional operations —
// the "point developers to potentially suspicious code" tool from the
// paper's conclusions, at the operation level.
type Tracer struct {
	*Monitor
	// Watch selects which flags are traced.
	Watch ieee754.Flags
	// Limit bounds the number of retained entries (default 32).
	Limit int

	entries []TraceEntry
	dropped uint64
	index   uint64
}

// NewTracer creates a tracer watching the given flags (0 means all
// conditions including divide-by-zero).
func NewTracer(watch ieee754.Flags, limit int) *Tracer {
	if watch == 0 {
		watch = ieee754.AllFlags
	}
	if limit <= 0 {
		limit = 32
	}
	t := &Tracer{Monitor: New(), Watch: watch, Limit: limit}
	// Chain the observers: the monitor counts, the tracer logs.
	inner := t.Monitor.Env().Observer
	t.Monitor.Env().Observer = func(ev ieee754.OpEvent) {
		inner(ev)
		t.observe(ev)
	}
	return t
}

func (t *Tracer) observe(ev ieee754.OpEvent) {
	idx := t.index
	t.index++
	if ev.Raised&t.Watch == 0 {
		return
	}
	if len(t.entries) >= t.Limit {
		t.dropped++
		return
	}
	t.entries = append(t.entries, TraceEntry{Index: idx, Event: ev})
}

// Entries returns the retained exceptional operations in order.
func (t *Tracer) Entries() []TraceEntry { return t.entries }

// Dropped reports how many exceptional operations exceeded the limit.
func (t *Tracer) Dropped() uint64 { return t.dropped }

// TraceReport renders the trace below the standard audit.
func (t *Tracer) TraceReport() string {
	var b strings.Builder
	b.WriteString(t.Report().String())
	if len(t.entries) == 0 {
		b.WriteString("  trace: no watched exceptions\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  trace (%d shown, %d dropped):\n", len(t.entries), t.dropped)
	for _, e := range t.entries {
		fmt.Fprintf(&b, "    %s\n", e)
	}
	return b.String()
}
