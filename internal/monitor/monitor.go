// Package monitor implements the runtime floating point exception
// monitor sketched in the paper's suspicion quiz and conclusions: it
// wraps a computation, watches the environment's per-operation exception
// reports, and produces an audit of which exceptional conditions
// occurred, how often, and where first — the information a developer
// would use to decide how suspicious to be of the results.
package monitor

import (
	"fmt"
	"sort"
	"strings"

	"fpstudy/internal/ieee754"
)

// Condition identifies one of the five monitored exceptional conditions,
// in the paper's suspicion-quiz order.
type Condition int

const (
	Overflow Condition = iota
	Underflow
	Precision // the IEEE inexact exception
	Invalid
	Denorm
	numConditions
)

// Conditions lists all monitored conditions in quiz order.
func Conditions() []Condition {
	return []Condition{Overflow, Underflow, Precision, Invalid, Denorm}
}

// String returns the paper's name for the condition.
func (c Condition) String() string {
	switch c {
	case Overflow:
		return "Overflow"
	case Underflow:
		return "Underflow"
	case Precision:
		return "Precision"
	case Invalid:
		return "Invalid"
	case Denorm:
		return "Denorm"
	}
	return "invalidCondition"
}

// Flag maps the condition to its ieee754 exception flag.
func (c Condition) Flag() ieee754.Flags {
	switch c {
	case Overflow:
		return ieee754.FlagOverflow
	case Underflow:
		return ieee754.FlagUnderflow
	case Precision:
		return ieee754.FlagInexact
	case Invalid:
		return ieee754.FlagInvalid
	case Denorm:
		return ieee754.FlagDenormal
	}
	return 0
}

// GroundTruthSuspicion is the paper's "arguably reasonable ranking" of
// how suspicious each condition should make a developer, on the quiz's
// 1-5 Likert scale: Invalid (NaN) by far the most suspicious, then
// Overflow, then the remaining three.
func (c Condition) GroundTruthSuspicion() int {
	switch c {
	case Invalid:
		return 5
	case Overflow:
		return 4
	case Underflow:
		return 2
	case Denorm:
		return 2
	case Precision:
		return 1
	}
	return 0
}

// Monitor wraps an ieee754 environment and counts exception occurrences
// per condition. Install it, run a computation with Env(), then call
// Report.
type Monitor struct {
	env     ieee754.Env
	ops     uint64
	counts  [numConditions]uint64
	first   [numConditions]*ieee754.OpEvent
	divZero uint64 // divide-by-zero occurrences (reported separately)
}

// New creates a monitor whose environment uses the default IEEE
// settings.
func New() *Monitor {
	m := &Monitor{}
	m.env.Observer = m.observe
	return m
}

// NewWithEnv creates a monitor with a caller-configured environment
// template (rounding mode, FTZ/DAZ); the observer is installed on the
// internal copy.
func NewWithEnv(template ieee754.Env) *Monitor {
	m := &Monitor{env: template}
	m.env.Observer = m.observe
	return m
}

// Env returns the monitored environment to run computations under.
func (m *Monitor) Env() *ieee754.Env { return &m.env }

func (m *Monitor) observe(ev ieee754.OpEvent) {
	m.ops++
	for _, c := range Conditions() {
		if ev.Raised.Has(c.Flag()) {
			m.counts[c]++
			if m.first[c] == nil {
				evc := ev
				m.first[c] = &evc
			}
		}
	}
	if ev.Raised.Has(ieee754.FlagDivByZero) {
		m.divZero++
	}
}

// Report summarizes the monitored execution.
func (m *Monitor) Report() Report {
	r := Report{
		TotalOps:  m.ops,
		DivByZero: m.divZero,
		Sticky:    m.env.Flags,
	}
	for _, c := range Conditions() {
		e := Entry{Condition: c, Count: m.counts[c]}
		if f := m.first[c]; f != nil {
			e.First = f
		}
		r.Entries = append(r.Entries, e)
	}
	return r
}

// Reset clears counters and sticky flags for a fresh run.
func (m *Monitor) Reset() {
	m.ops = 0
	m.divZero = 0
	m.counts = [numConditions]uint64{}
	m.first = [numConditions]*ieee754.OpEvent{}
	m.env.ClearFlags()
}

// Entry is the per-condition audit line.
type Entry struct {
	Condition Condition
	Count     uint64
	First     *ieee754.OpEvent // nil if the condition never occurred
}

// Occurred reports whether the condition happened at least once.
func (e Entry) Occurred() bool { return e.Count > 0 }

// Report is the audit of one monitored execution, in the structure of
// the paper's suspicion quiz: for each possible exception, whether it
// occurred one or more times during the run.
type Report struct {
	TotalOps  uint64
	DivByZero uint64
	Sticky    ieee754.Flags
	Entries   []Entry
}

// Occurred returns the conditions that happened, most suspicious first.
func (r Report) Occurred() []Condition {
	var out []Condition
	for _, e := range r.Entries {
		if e.Occurred() {
			out = append(out, e.Condition)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].GroundTruthSuspicion() > out[j].GroundTruthSuspicion()
	})
	return out
}

// SuspicionScore is the maximum ground-truth suspicion level among the
// conditions that occurred: how suspicious a well-calibrated developer
// should be of this run's output (1 = relaxed, 5 = alarmed).
func (r Report) SuspicionScore() int {
	s := 1
	for _, e := range r.Entries {
		if e.Occurred() && e.Condition.GroundTruthSuspicion() > s {
			s = e.Condition.GroundTruthSuspicion()
		}
	}
	return s
}

// String renders a human-readable audit table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "monitored operations: %d\n", r.TotalOps)
	for _, e := range r.Entries {
		status := "did not occur"
		if e.Occurred() {
			status = fmt.Sprintf("occurred %d time(s)", e.Count)
			if e.First != nil {
				status += fmt.Sprintf("; first in %s", e.First.Op)
			}
		}
		fmt.Fprintf(&b, "  %-9s (suspicion %d/5): %s\n",
			e.Condition, e.Condition.GroundTruthSuspicion(), status)
	}
	if r.DivByZero > 0 {
		fmt.Fprintf(&b, "  divide-by-zero occurred %d time(s)\n", r.DivByZero)
	}
	fmt.Fprintf(&b, "  overall suspicion: %d/5\n", r.SuspicionScore())
	return b.String()
}

// Run executes fn under a fresh monitor in format f and returns the
// result bits and the report — the one-call version of the audit.
func Run(f ieee754.Format, fn func(*ieee754.Env, ieee754.Format) uint64) (uint64, Report) {
	m := New()
	res := fn(m.Env(), f)
	return res, m.Report()
}
