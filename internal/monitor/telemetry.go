package monitor

import "fpstudy/internal/ieee754"

// EventCounter is the minimal metric sink the aggregate exception
// bridge needs. *telemetry.Counter satisfies it; the interface keeps
// this package free of a telemetry dependency (and telemetry free of an
// ieee754 dependency).
type EventCounter interface {
	Add(delta int64)
}

// CountingObserver returns an ieee754.Env observer that feeds aggregate
// counters: ops counts every observed operation, conds counts each
// monitored condition's events (one event per operation that raised the
// flag), and divZero counts divide-by-zero separately (mirroring
// Monitor.Report). Any nil sink is skipped, and missing map entries are
// fine, so a caller can subscribe to a subset of conditions.
//
// Unlike Monitor, the returned observer keeps no per-event state — it
// is a handful of atomic increments — so it is safe to share across
// goroutines and cheap enough to leave installed for a whole run. It is
// the bridge between the per-operation exception reports and the
// telemetry registry: install it with quiz.SetOracleObserver (oracle
// evaluations) or on any ieee754.Env directly.
func CountingObserver(ops EventCounter, conds map[Condition]EventCounter, divZero EventCounter) func(ieee754.OpEvent) {
	// Resolve the condition sinks into a dense array once so the
	// per-operation path does no map lookups.
	var sinks [numConditions]EventCounter
	for c, sink := range conds {
		if c >= 0 && c < numConditions {
			sinks[c] = sink
		}
	}
	flags := [numConditions]ieee754.Flags{}
	for _, c := range Conditions() {
		flags[c] = c.Flag()
	}
	return func(ev ieee754.OpEvent) {
		if ops != nil {
			ops.Add(1)
		}
		if ev.Raised == 0 {
			return
		}
		for c := Condition(0); c < numConditions; c++ {
			if sinks[c] != nil && ev.Raised.Has(flags[c]) {
				sinks[c].Add(1)
			}
		}
		if divZero != nil && ev.Raised.Has(ieee754.FlagDivByZero) {
			divZero.Add(1)
		}
	}
}

// MetricName returns the conventional telemetry counter name for a
// condition's aggregate event count ("fp.exceptions.overflow", ...).
func (c Condition) MetricName() string {
	switch c {
	case Overflow:
		return "fp.exceptions.overflow"
	case Underflow:
		return "fp.exceptions.underflow"
	case Precision:
		return "fp.exceptions.precision"
	case Invalid:
		return "fp.exceptions.invalid"
	case Denorm:
		return "fp.exceptions.denorm"
	}
	return "fp.exceptions.unknown"
}
