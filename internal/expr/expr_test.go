package expr

import (
	"math"
	"testing"

	"fpstudy/internal/ieee754"
)

func evalF64(t *testing.T, src string, vars map[string]float64) float64 {
	t.Helper()
	n, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	var fe ieee754.Env
	env := Env{}
	var se ieee754.Env
	for k, v := range vars {
		env[k] = ieee754.Binary64.FromFloat64(&se, v)
	}
	return ieee754.Binary64.ToFloat64(Eval(ieee754.Binary64, &fe, n, env))
}

func TestParseAndEval(t *testing.T) {
	cases := []struct {
		src  string
		vars map[string]float64
		want float64
	}{
		{"1 + 2", nil, 3},
		{"2*3 + 4", nil, 10},
		{"2*(3 + 4)", nil, 14},
		{"a - b", map[string]float64{"a": 5, "b": 2}, 3},
		{"-a", map[string]float64{"a": 7}, -7},
		{"a/b", map[string]float64{"a": 1, "b": 4}, 0.25},
		{"sqrt(9)", nil, 3},
		{"fma(2, 3, 4)", nil, 10},
		{"1 - 2 - 3", nil, -4},    // left associative
		{"12/4/3", nil, 1},        // left associative
		{"2 + 3*4 - 1", nil, 13},  // precedence
		{"-2*3", nil, -6},         // unary binds tight
		{"1e2 + 0.5", nil, 100.5}, // scientific literal
		{"sqrt(a*a)", map[string]float64{"a": -4}, 4},
		{"fma(a, b, -c)", map[string]float64{"a": 2, "b": 5, "c": 1}, 9},
	}
	for _, c := range cases {
		if got := evalF64(t, c.src, c.vars); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "1 +", "(1", "sqrt()", "sqrt(1,2)", "fma(1,2)", "foo(1)",
		"1 ^ 2", "..", "a b",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"a + b*c",
		"(a + b)*c",
		"a - (b - c)",
		"sqrt(a) + fma(a, b, c)",
		"-(a + b)",
		"a/b/c",
	}
	for _, src := range srcs {
		n := MustParse(src)
		back, err := Parse(n.String())
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", n.String(), src, err)
		}
		if !Equal(n, back) {
			t.Errorf("round trip changed %q -> %q", src, back.String())
		}
	}
}

func TestVars(t *testing.T) {
	n := MustParse("z + a*b - sqrt(a)")
	got := Vars(n)
	want := []string{"a", "b", "z"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
}

func TestUnboundVarIsNaN(t *testing.T) {
	var fe ieee754.Env
	r := Eval(ieee754.Binary64, &fe, MustParse("missing + 1"), Env{})
	if !ieee754.Binary64.IsNaN(r) {
		t.Fatalf("unbound var eval = %x", r)
	}
}

func TestEvalRaisesFlags(t *testing.T) {
	var fe ieee754.Env
	Eval(ieee754.Binary64, &fe, MustParse("1/0"), Env{})
	if !fe.Flags.Has(ieee754.FlagDivByZero) {
		t.Fatalf("1/0 flags: %v", fe.Flags)
	}
	fe = ieee754.Env{}
	Eval(ieee754.Binary64, &fe, MustParse("sqrt(0 - 1)"), Env{})
	if !fe.Flags.Has(ieee754.FlagInvalid) {
		t.Fatalf("sqrt(-1) flags: %v", fe.Flags)
	}
}

func TestLiteralConversionDoesNotRaise(t *testing.T) {
	var fe ieee754.Env
	// 0.1 is inexact in binary, but literal materialization must not
	// raise application flags (the compiler did that, not the program).
	Eval(ieee754.Binary64, &fe, MustParse("0.1"), Env{})
	if fe.Flags != 0 {
		t.Fatalf("literal raised %v", fe.Flags)
	}
}

func TestSumChainAndDot(t *testing.T) {
	n := SumChain(C(1), C(2), C(3), C(4))
	var fe ieee754.Env
	if got := ieee754.Binary64.ToFloat64(Eval(ieee754.Binary64, &fe, n, nil)); got != 10 {
		t.Fatalf("sum chain = %v", got)
	}
	d := DotProduct([]string{"x0", "x1"}, []string{"y0", "y1"})
	var se ieee754.Env
	env := Env{
		"x0": ieee754.Binary64.FromFloat64(&se, 2),
		"x1": ieee754.Binary64.FromFloat64(&se, 3),
		"y0": ieee754.Binary64.FromFloat64(&se, 5),
		"y1": ieee754.Binary64.FromFloat64(&se, 7),
	}
	if got := ieee754.Binary64.ToFloat64(Eval(ieee754.Binary64, &fe, d, env)); got != 31 {
		t.Fatalf("dot = %v", got)
	}
}

func TestSizeAndCountOps(t *testing.T) {
	n := MustParse("a*b + sqrt(c)")
	if Size(n) != 6 {
		t.Fatalf("Size = %d", Size(n))
	}
	if CountOps(n) != 3 {
		t.Fatalf("CountOps = %d", CountOps(n))
	}
	if CountOps(MustParse("fma(a,b,c)")) != 1 {
		t.Fatal("fma should count as one op")
	}
}

func TestEvalBinary16(t *testing.T) {
	// The same source computes different answers in different formats:
	// 0.1 + 0.2 in binary16 vs binary64.
	var fe ieee754.Env
	n := MustParse("0.1 + 0.2")
	r16 := ieee754.Binary16.ToFloat64(Eval(ieee754.Binary16, &fe, n, nil))
	r64 := ieee754.Binary64.ToFloat64(Eval(ieee754.Binary64, &fe, n, nil))
	if r16 == r64 {
		t.Fatal("expected precision-dependent result")
	}
	if math.Abs(r16-0.3) > 0.001 || math.Abs(r64-0.3) > 1e-15 {
		t.Fatalf("r16=%v r64=%v", r16, r64)
	}
}

func TestEqualDistinguishes(t *testing.T) {
	if Equal(MustParse("a + b"), MustParse("b + a")) {
		t.Fatal("a+b should not equal b+a structurally")
	}
	if !Equal(MustParse("a + b"), MustParse("a + b")) {
		t.Fatal("identical trees unequal")
	}
	if Equal(MustParse("a + b"), MustParse("a - b")) {
		t.Fatal("different ops equal")
	}
	if Equal(MustParse("fma(a,b,c)"), MustParse("a*b + c")) {
		t.Fatal("fma should differ from mul+add structurally")
	}
}
