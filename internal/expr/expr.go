// Package expr provides a small arithmetic expression IR evaluated on
// the ieee754 softfloat. It is the substrate for the compiler
// optimization simulator (internal/optsim), for quiz-question witnesses,
// and for the exception monitor's demonstration programs.
//
// Expressions are pure trees over named variables and decimal literals,
// with the operators +, -, *, /, unary minus, sqrt(x), and fma(x,y,z).
package expr

import (
	"fmt"

	"fpstudy/internal/ieee754"
)

// Node is an expression tree node.
type Node interface {
	isNode()
	// String renders the node as parseable source.
	String() string
}

// Lit is a numeric literal. It carries a float64 and is converted to
// the evaluation format at evaluation time (flag-free).
type Lit struct{ V float64 }

// Var is a reference to a named input.
type Var struct{ Name string }

// UnaryOp enumerates unary operators.
type UnaryOp uint8

const (
	OpNeg UnaryOp = iota
	OpSqrt
)

// Unary applies a unary operator.
type Unary struct {
	Op UnaryOp
	X  Node
}

// BinOp enumerates binary operators.
type BinOp uint8

const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
)

// Binary applies a binary operator.
type Binary struct {
	Op   BinOp
	X, Y Node
}

// FMA is a fused multiply-add node: X*Y + Z with one rounding. It never
// appears in parsed source except via fma(...); the optimizer introduces
// it by contraction.
type FMA struct{ X, Y, Z Node }

func (Lit) isNode()    {}
func (Var) isNode()    {}
func (Unary) isNode()  {}
func (Binary) isNode() {}
func (FMA) isNode()    {}

func (l Lit) String() string { return trimFloat(l.V) }
func (v Var) String() string { return v.Name }

func (u Unary) String() string {
	switch u.Op {
	case OpNeg:
		return "-" + paren(u.X, true)
	case OpSqrt:
		return "sqrt(" + u.X.String() + ")"
	}
	return "?"
}

func (b Binary) String() string {
	op := map[BinOp]string{OpAdd: " + ", OpSub: " - ", OpMul: "*", OpDiv: "/"}[b.Op]
	lo := b.Op == OpAdd || b.Op == OpSub
	return paren(b.X, !lo) + op + paren(b.Y, true)
}

func (f FMA) String() string {
	return "fma(" + f.X.String() + ", " + f.Y.String() + ", " + f.Z.String() + ")"
}

// paren wraps x in parentheses when it is a binary node (conservative
// but unambiguous when needed).
func paren(x Node, need bool) string {
	if _, ok := x.(Binary); ok && need {
		return "(" + x.String() + ")"
	}
	return x.String()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}

// Env binds variable names to encodings for evaluation.
type Env map[string]uint64

// Eval evaluates n in format f under the floating point environment fe,
// with variables bound by vars. Unbound variables evaluate to a quiet
// NaN (and the evaluation is still well defined).
func Eval(f ieee754.Format, fe *ieee754.Env, n Node, vars Env) uint64 {
	switch t := n.(type) {
	case Lit:
		// Literal materialization is exact from the source's
		// perspective: use a scratch environment so constant rounding
		// does not raise application-visible flags.
		var scratch ieee754.Env
		scratch.Rounding = fe.Rounding
		return f.FromFloat64(&scratch, t.V)
	case Var:
		if b, ok := vars[t.Name]; ok {
			return b
		}
		return f.QNaN()
	case Unary:
		x := Eval(f, fe, t.X, vars)
		switch t.Op {
		case OpNeg:
			return f.Neg(x)
		case OpSqrt:
			return f.Sqrt(fe, x)
		}
	case Binary:
		x := Eval(f, fe, t.X, vars)
		y := Eval(f, fe, t.Y, vars)
		switch t.Op {
		case OpAdd:
			return f.Add(fe, x, y)
		case OpSub:
			return f.Sub(fe, x, y)
		case OpMul:
			return f.Mul(fe, x, y)
		case OpDiv:
			return f.Div(fe, x, y)
		}
	case FMA:
		x := Eval(f, fe, t.X, vars)
		y := Eval(f, fe, t.Y, vars)
		z := Eval(f, fe, t.Z, vars)
		return f.FMA(fe, x, y, z)
	}
	return f.QNaN()
}

// Vars returns the sorted set of variable names referenced by n.
func Vars(n Node) []string {
	set := map[string]bool{}
	collectVars(n, set)
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	// insertion sort: tiny n
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func collectVars(n Node, set map[string]bool) {
	switch t := n.(type) {
	case Var:
		set[t.Name] = true
	case Unary:
		collectVars(t.X, set)
	case Binary:
		collectVars(t.X, set)
		collectVars(t.Y, set)
	case FMA:
		collectVars(t.X, set)
		collectVars(t.Y, set)
		collectVars(t.Z, set)
	}
}

// Equal reports structural equality of two expression trees.
func Equal(a, b Node) bool {
	switch x := a.(type) {
	case Lit:
		y, ok := b.(Lit)
		return ok && x.V == y.V
	case Var:
		y, ok := b.(Var)
		return ok && x.Name == y.Name
	case Unary:
		y, ok := b.(Unary)
		return ok && x.Op == y.Op && Equal(x.X, y.X)
	case Binary:
		y, ok := b.(Binary)
		return ok && x.Op == y.Op && Equal(x.X, y.X) && Equal(x.Y, y.Y)
	case FMA:
		y, ok := b.(FMA)
		return ok && Equal(x.X, y.X) && Equal(x.Y, y.Y) && Equal(x.Z, y.Z)
	}
	return false
}

// Size returns the number of nodes in the tree.
func Size(n Node) int {
	switch t := n.(type) {
	case Lit, Var:
		return 1
	case Unary:
		return 1 + Size(t.X)
	case Binary:
		return 1 + Size(t.X) + Size(t.Y)
	case FMA:
		return 1 + Size(t.X) + Size(t.Y) + Size(t.Z)
	}
	return 0
}

// Convenience constructors, for building expressions in Go code.

// V references a variable.
func V(name string) Node { return Var{name} }

// C is a literal constant.
func C(v float64) Node { return Lit{v} }

// Add returns x + y.
func Add(x, y Node) Node { return Binary{OpAdd, x, y} }

// Sub returns x - y.
func Sub(x, y Node) Node { return Binary{OpSub, x, y} }

// Mul returns x * y.
func Mul(x, y Node) Node { return Binary{OpMul, x, y} }

// Div returns x / y.
func Div(x, y Node) Node { return Binary{OpDiv, x, y} }

// Neg returns -x.
func Neg(x Node) Node { return Unary{OpNeg, x} }

// Sqrt returns sqrt(x).
func Sqrt(x Node) Node { return Unary{OpSqrt, x} }

// Fma returns fma(x, y, z).
func Fma(x, y, z Node) Node { return FMA{x, y, z} }

// SumChain folds terms left to right with +, the order a naive loop
// accumulates in.
func SumChain(terms ...Node) Node {
	if len(terms) == 0 {
		return Lit{0}
	}
	n := terms[0]
	for _, t := range terms[1:] {
		n = Add(n, t)
	}
	return n
}

// DotProduct builds sum_i x_i*y_i as a left-to-right chain, the shape
// compilers love to contract into FMAs.
func DotProduct(xs, ys []string) Node {
	var terms []Node
	for i := range xs {
		terms = append(terms, Mul(V(xs[i]), V(ys[i])))
	}
	return SumChain(terms...)
}

// Walk calls fn for every node in the tree, parents before children.
func Walk(n Node, fn func(Node)) {
	fn(n)
	switch t := n.(type) {
	case Unary:
		Walk(t.X, fn)
	case Binary:
		Walk(t.X, fn)
		Walk(t.Y, fn)
	case FMA:
		Walk(t.X, fn)
		Walk(t.Y, fn)
		Walk(t.Z, fn)
	}
}

// CountOps returns the number of arithmetic operation nodes (unary
// sqrt, binary ops, and FMAs).
func CountOps(n Node) int {
	ops := 0
	Walk(n, func(m Node) {
		switch t := m.(type) {
		case Binary, FMA:
			ops++
		case Unary:
			if t.Op == OpSqrt {
				ops++
			}
		}
	})
	return ops
}
