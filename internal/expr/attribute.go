package expr

import (
	"fmt"
	"strings"

	"fpstudy/internal/ieee754"
)

// Attribution links one operation node of an expression to the
// exception flags its evaluation raised — the expression-level version
// of the paper's proposed tool that "points developers to potentially
// suspicious code".
type Attribution struct {
	// Path locates the node from the root, e.g. "/", "/lhs", or
	// "/rhs/lhs".
	Path string
	// Source is the subexpression's source form.
	Source string
	// Result is the node's computed encoding.
	Result uint64
	// Raised holds the flags raised by this node's own operation
	// (not its children).
	Raised ieee754.Flags
}

// EvalAttributed evaluates n like Eval while recording, for every
// operation node, the exception flags that specific operation raised.
// Attributions are returned in evaluation (post-order) order; entries
// with no raised flags are included so callers see the full op stream.
func EvalAttributed(f ieee754.Format, fe *ieee754.Env, n Node, vars Env) (uint64, []Attribution) {
	var out []Attribution
	var walk func(n Node, path string) uint64
	record := func(n Node, path string, result uint64) uint64 {
		out = append(out, Attribution{
			Path:   path,
			Source: n.String(),
			Result: result,
			Raised: fe.LastRaised,
		})
		return result
	}
	walk = func(n Node, path string) uint64 {
		switch t := n.(type) {
		case Lit:
			var scratch ieee754.Env
			scratch.Rounding = fe.Rounding
			return f.FromFloat64(&scratch, t.V)
		case Var:
			if b, ok := vars[t.Name]; ok {
				return b
			}
			return f.QNaN()
		case Unary:
			x := walk(t.X, path+"/x")
			switch t.Op {
			case OpNeg:
				return f.Neg(x) // sign ops raise nothing; not recorded
			case OpSqrt:
				return record(n, path, f.Sqrt(fe, x))
			}
		case Binary:
			x := walk(t.X, path+"/lhs")
			y := walk(t.Y, path+"/rhs")
			var r uint64
			switch t.Op {
			case OpAdd:
				r = f.Add(fe, x, y)
			case OpSub:
				r = f.Sub(fe, x, y)
			case OpMul:
				r = f.Mul(fe, x, y)
			case OpDiv:
				r = f.Div(fe, x, y)
			}
			return record(n, path, r)
		case FMA:
			x := walk(t.X, path+"/x")
			y := walk(t.Y, path+"/y")
			z := walk(t.Z, path+"/z")
			return record(n, path, f.FMA(fe, x, y, z))
		}
		return f.QNaN()
	}
	root := walk(n, "")
	return root, out
}

// Suspicious filters an attribution list to entries raising any of the
// watched flags.
func Suspicious(attrs []Attribution, watch ieee754.Flags) []Attribution {
	var out []Attribution
	for _, a := range attrs {
		if a.Raised&watch != 0 {
			out = append(out, a)
		}
	}
	return out
}

// FormatAttributions renders an attribution list as an annotated
// listing for format f.
func FormatAttributions(f ieee754.Format, attrs []Attribution) string {
	var b strings.Builder
	for _, a := range attrs {
		path := a.Path
		if path == "" {
			path = "/"
		}
		fmt.Fprintf(&b, "%-14s %-28s = %-16s %s\n",
			path, a.Source, f.String(a.Result), a.Raised)
	}
	return b.String()
}
