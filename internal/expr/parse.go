package expr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse converts source text like "a*(b + c) - sqrt(d)/2" into an
// expression tree. The grammar is conventional:
//
//	expr   := term (('+'|'-') term)*
//	term   := unary (('*'|'/') unary)*
//	unary  := '-' unary | primary
//	primary:= number | ident | ident '(' args ')' | '(' expr ')'
//
// Recognized functions are sqrt(x) and fma(x, y, z).
func Parse(src string) (Node, error) {
	p := &parser{src: src}
	p.next()
	n, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok != tokEOF {
		return nil, fmt.Errorf("expr: unexpected %q at offset %d", p.lit, p.off)
	}
	return n, nil
}

// MustParse is Parse that panics on error, for static expressions in
// tests and tables.
func MustParse(src string) Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

type token uint8

const (
	tokEOF token = iota
	tokNum
	tokIdent
	tokLParen
	tokRParen
	tokComma
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokBad
)

type parser struct {
	src string
	off int
	tok token
	lit string
}

func (p *parser) next() {
	for p.off < len(p.src) && (p.src[p.off] == ' ' || p.src[p.off] == '\t' || p.src[p.off] == '\n') {
		p.off++
	}
	if p.off >= len(p.src) {
		p.tok, p.lit = tokEOF, ""
		return
	}
	c := p.src[p.off]
	switch {
	case c == '(':
		p.tok, p.lit = tokLParen, "("
		p.off++
	case c == ')':
		p.tok, p.lit = tokRParen, ")"
		p.off++
	case c == ',':
		p.tok, p.lit = tokComma, ","
		p.off++
	case c == '+':
		p.tok, p.lit = tokPlus, "+"
		p.off++
	case c == '-':
		p.tok, p.lit = tokMinus, "-"
		p.off++
	case c == '*':
		p.tok, p.lit = tokStar, "*"
		p.off++
	case c == '/':
		p.tok, p.lit = tokSlash, "/"
		p.off++
	case c >= '0' && c <= '9' || c == '.':
		start := p.off
		for p.off < len(p.src) {
			c := p.src[p.off]
			if c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E' {
				p.off++
				continue
			}
			// exponent sign
			if (c == '+' || c == '-') && p.off > start &&
				(p.src[p.off-1] == 'e' || p.src[p.off-1] == 'E') {
				p.off++
				continue
			}
			break
		}
		p.tok, p.lit = tokNum, p.src[start:p.off]
	case unicode.IsLetter(rune(c)) || c == '_':
		start := p.off
		for p.off < len(p.src) {
			c := rune(p.src[p.off])
			if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
				p.off++
				continue
			}
			break
		}
		p.tok, p.lit = tokIdent, p.src[start:p.off]
	default:
		p.tok, p.lit = tokBad, string(c)
		p.off++
	}
}

func (p *parser) parseExpr() (Node, error) {
	n, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.tok == tokPlus || p.tok == tokMinus {
		op := OpAdd
		if p.tok == tokMinus {
			op = OpSub
		}
		p.next()
		rhs, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		n = Binary{op, n, rhs}
	}
	return n, nil
}

func (p *parser) parseTerm() (Node, error) {
	n, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok == tokStar || p.tok == tokSlash {
		op := OpMul
		if p.tok == tokSlash {
			op = OpDiv
		}
		p.next()
		rhs, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		n = Binary{op, n, rhs}
	}
	return n, nil
}

func (p *parser) parseUnary() (Node, error) {
	if p.tok == tokMinus {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Unary{OpNeg, x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Node, error) {
	switch p.tok {
	case tokNum:
		v, err := strconv.ParseFloat(p.lit, 64)
		if err != nil {
			return nil, fmt.Errorf("expr: bad number %q: %w", p.lit, err)
		}
		p.next()
		return Lit{v}, nil
	case tokIdent:
		name := p.lit
		p.next()
		if p.tok != tokLParen {
			return Var{name}, nil
		}
		// Function call.
		p.next()
		var args []Node
		if p.tok != tokRParen {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.tok != tokComma {
					break
				}
				p.next()
			}
		}
		if p.tok != tokRParen {
			return nil, fmt.Errorf("expr: missing ) after %s(", name)
		}
		p.next()
		switch strings.ToLower(name) {
		case "sqrt":
			if len(args) != 1 {
				return nil, fmt.Errorf("expr: sqrt takes 1 argument, got %d", len(args))
			}
			return Unary{OpSqrt, args[0]}, nil
		case "fma":
			if len(args) != 3 {
				return nil, fmt.Errorf("expr: fma takes 3 arguments, got %d", len(args))
			}
			return FMA{args[0], args[1], args[2]}, nil
		default:
			return nil, fmt.Errorf("expr: unknown function %q", name)
		}
	case tokLParen:
		p.next()
		n, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.tok != tokRParen {
			return nil, fmt.Errorf("expr: missing )")
		}
		p.next()
		return n, nil
	}
	return nil, fmt.Errorf("expr: unexpected %q at offset %d", p.lit, p.off)
}
