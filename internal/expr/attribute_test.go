package expr

import (
	"strings"
	"testing"

	"fpstudy/internal/ieee754"
)

func TestEvalAttributedLocatesDivZero(t *testing.T) {
	f := ieee754.Binary64
	var fe ieee754.Env
	var se ieee754.Env
	n := MustParse("1/(a - a) + b")
	vars := Env{
		"a": f.FromFloat64(&se, 42),
		"b": f.FromFloat64(&se, 1),
	}
	root, attrs := EvalAttributed(f, &fe, n, vars)
	if !f.IsInf(root, +1) {
		t.Fatalf("root = %v", f.ToFloat64(root))
	}
	// Three op nodes: a-a, 1/(a-a), (..)+b.
	if len(attrs) != 3 {
		t.Fatalf("attrs: %d", len(attrs))
	}
	sus := Suspicious(attrs, ieee754.FlagDivByZero)
	if len(sus) != 1 {
		t.Fatalf("suspicious: %+v", sus)
	}
	if sus[0].Path != "/lhs" || !strings.Contains(sus[0].Source, "1/") {
		t.Fatalf("located at %q (%q)", sus[0].Path, sus[0].Source)
	}
	listing := FormatAttributions(f, attrs)
	if !strings.Contains(listing, "divbyzero") || !strings.Contains(listing, "/lhs") {
		t.Fatalf("listing:\n%s", listing)
	}
}

func TestEvalAttributedMatchesEval(t *testing.T) {
	f := ieee754.Binary64
	var se ieee754.Env
	vars := Env{
		"a": f.FromFloat64(&se, 0.1),
		"b": f.FromFloat64(&se, 3),
		"c": f.FromFloat64(&se, -7),
	}
	for _, src := range []string{
		"a*b + c", "sqrt(a)*sqrt(a)", "fma(a, b, c)", "(a + b)/(b - c)", "-a",
	} {
		n := MustParse(src)
		var e1, e2 ieee754.Env
		want := Eval(f, &e1, n, vars)
		got, _ := EvalAttributed(f, &e2, n, vars)
		if got != want {
			t.Errorf("%q: attributed %x vs eval %x", src, got, want)
		}
		if e1.Flags != e2.Flags {
			t.Errorf("%q: flags %v vs %v", src, e2.Flags, e1.Flags)
		}
	}
}

func TestEvalAttributedCleanExpression(t *testing.T) {
	f := ieee754.Binary64
	var fe ieee754.Env
	_, attrs := EvalAttributed(f, &fe, MustParse("1 + 2"), nil)
	if len(attrs) != 1 || attrs[0].Raised != 0 {
		t.Fatalf("attrs: %+v", attrs)
	}
	if len(Suspicious(attrs, ieee754.AllFlags)) != 0 {
		t.Fatal("clean expression flagged")
	}
}

func TestEvalAttributedSqrtNegative(t *testing.T) {
	f := ieee754.Binary64
	var fe ieee754.Env
	var se ieee754.Env
	vars := Env{"x": f.FromFloat64(&se, -4)}
	_, attrs := EvalAttributed(f, &fe, MustParse("sqrt(x) + 1"), vars)
	sus := Suspicious(attrs, ieee754.FlagInvalid)
	if len(sus) != 1 || sus[0].Source != "sqrt(x)" {
		t.Fatalf("suspicious: %+v", sus)
	}
}
