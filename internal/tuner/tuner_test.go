package tuner

import (
	"math"
	"strings"
	"testing"

	"fpstudy/internal/expr"
	"fpstudy/internal/ieee754"
)

func TestOpPaths(t *testing.T) {
	n := expr.MustParse("a*b + sqrt(c)")
	paths := OpPaths(n)
	// mul at /lhs, sqrt at /rhs, add at "".
	if len(paths) != 3 {
		t.Fatalf("paths: %v", paths)
	}
	want := map[string]bool{"/lhs": true, "/rhs": true, "": true}
	for _, p := range paths {
		if !want[p] {
			t.Fatalf("unexpected path %q in %v", p, paths)
		}
	}
}

func TestEvalMixedAllBinary64MatchesEval(t *testing.T) {
	n := expr.MustParse("(a + b)*(a - b)/sqrt(a*a + b*b)")
	corpus := Corpus(n, 100, 1)
	for _, vars := range corpus {
		var e ieee754.Env
		want := expr.Eval(ieee754.Binary64, &e, n, vars)
		got := EvalMixed(n, vars, nil)
		if got != want && !(ieee754.Binary64.IsNaN(got) && ieee754.Binary64.IsNaN(want)) {
			t.Fatalf("mixed(all-64) diverged: %x vs %x", got, want)
		}
	}
}

func TestEvalMixedDemotionChangesResult(t *testing.T) {
	n := expr.MustParse("a + b")
	var e ieee754.Env
	vars := map[string]uint64{
		"a": ieee754.Binary64.FromFloat64(&e, 1),
		"b": ieee754.Binary64.FromFloat64(&e, 1e-5),
	}
	full := EvalMixed(n, vars, nil)
	half := EvalMixed(n, vars, Assignment{"": ieee754.Binary16})
	if full == half {
		t.Fatal("binary16 addition should absorb 1e-5")
	}
	if got := ieee754.Binary64.ToFloat64(half); got != 1 {
		t.Fatalf("binary16 1+1e-5 = %v, want 1 (absorbed)", got)
	}
}

func TestTuneLooseToleranceDemotesEverything(t *testing.T) {
	n := expr.MustParse("(a + b)*(a - b)")
	corpus := Corpus(n, 200, 2)
	res := Tune(n, corpus, 0.2) // 20%: even binary16 is fine for benign ops
	if res.Demoted < res.Ops-1 {
		t.Fatalf("loose tolerance demoted only %d/%d (%s)", res.Demoted, res.Ops, res.Assignment)
	}
	if res.MaxRelError > 0.2 {
		t.Fatalf("result violates tolerance: %g", res.MaxRelError)
	}
}

func TestTuneTightToleranceDemotesNothing(t *testing.T) {
	n := expr.MustParse("(a + b)*(a - b)")
	corpus := Corpus(n, 200, 3)
	res := Tune(n, corpus, 1e-18) // below binary64 epsilon: nothing moves
	if res.Demoted != 0 {
		t.Fatalf("tight tolerance demoted %d ops: %s", res.Demoted, res.Assignment)
	}
}

func TestTuneIntermediateToleranceIsSelective(t *testing.T) {
	// At ~1e-6 relative tolerance, binary32 (2^-24 ~ 6e-8 rounding)
	// passes but binary16 (2^-11 ~ 5e-4) does not: tuning should land
	// on binary32 for most ops.
	n := expr.MustParse("(a + b)*(a - b) + a*b")
	corpus := Corpus(n, 300, 4)
	res := Tune(n, corpus, 1e-6)
	if res.Demoted == 0 {
		t.Fatalf("nothing demoted at 1e-6: %s", res.Assignment)
	}
	if res.MaxRelError > 1e-6 {
		t.Fatalf("tolerance violated: %g", res.MaxRelError)
	}
	for p, f := range res.Assignment {
		if f == ieee754.Binary16 || f == ieee754.Bfloat16 {
			t.Fatalf("op %s demoted to %s under 1e-6 tolerance", pathOrRoot(p), f.Name)
		}
	}
	if res.BitsSaved == 0 || res.Trials == 0 {
		t.Fatalf("bookkeeping: %+v", res)
	}
}

func TestTuneRespectsSensitiveOp(t *testing.T) {
	// sqrt(a*a + b*b) with values near the binary16 overflow boundary:
	// the squaring overflows half precision, so the tuner must keep
	// the multiplications higher even at a loose tolerance.
	n := expr.MustParse("sqrt(a*a + b*b)")
	var e ieee754.Env
	corpus := []map[string]uint64{
		{
			"a": ieee754.Binary64.FromFloat64(&e, 300), // 300^2 = 90000 > 65504
			"b": ieee754.Binary64.FromFloat64(&e, 400),
		},
	}
	res := Tune(n, corpus, 0.01)
	if res.MaxRelError > 0.01 {
		t.Fatalf("tolerance violated: %g (%s)", res.MaxRelError, res.Assignment)
	}
	// The multiplications cannot be binary16 (they'd overflow to inf).
	for _, p := range []string{"/x/lhs", "/x/rhs"} {
		if f, ok := res.Assignment[p]; ok && f == ieee754.Binary16 {
			t.Fatalf("squaring demoted to binary16 despite overflow: %s", res.Assignment)
		}
	}
	// bfloat16 has binary32 range, so demotion there is plausible and
	// fine — the point is the tuner distinguished range from precision.
	got := ieee754.Binary64.ToFloat64(EvalMixed(n, corpus[0], res.Assignment))
	if math.Abs(got-500) > 5 {
		t.Fatalf("hypot(300,400) = %v under tuned assignment", got)
	}
}

func TestAssignmentString(t *testing.T) {
	a := Assignment{"": ieee754.Binary32, "/lhs": ieee754.Binary16}
	s := a.String()
	if !strings.Contains(s, "/:binary32") || !strings.Contains(s, "/lhs:binary16") {
		t.Fatalf("string: %q", s)
	}
	b := a.Clone()
	b["/rhs"] = ieee754.Binary64
	if len(a) == len(b) {
		t.Fatal("clone aliased")
	}
}

func TestCorpusFinite(t *testing.T) {
	n := expr.MustParse("a/b")
	corpus := Corpus(n, 150, 5)
	if len(corpus) == 0 {
		t.Fatal("empty corpus")
	}
	for _, vars := range corpus {
		for _, v := range vars {
			if !ieee754.Binary64.IsFinite(v) {
				t.Fatal("non-finite corpus entry")
			}
		}
	}
}

func TestRelError(t *testing.T) {
	inf := math.Inf(1)
	nan := math.NaN()
	cases := []struct {
		got, ref float64
		want     float64
		ok       bool
	}{
		{1, 1, 0, true},
		{1.1, 1, 0.1, true},
		{nan, nan, 0, true},
		{1, nan, inf, false},
		{nan, 1, inf, false},
		{inf, inf, 0, true},
		{-inf, inf, inf, false},
		{0, 0, 0, true},
		{1e-9, 0, 1e-9, true},
	}
	for _, c := range cases {
		got, ok := relError(c.got, c.ref)
		if ok != c.ok || (c.ok && math.Abs(got-c.want) > 1e-12) {
			t.Errorf("relError(%v, %v) = %v,%v want %v,%v", c.got, c.ref, got, ok, c.want, c.ok)
		}
	}
}
