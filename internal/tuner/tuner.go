// Package tuner implements a Precimonious-style floating point
// precision auto-tuner over the expression IR: it searches for the
// lowest-precision format assignment (per operation node) that keeps a
// program's result within a caller-specified error bound of the
// binary64 reference over a test corpus.
//
// This is one of the motivating systems of the paper's introduction
// ("automatically reducing programmer-specified precision to the
// minimum possible to stay within error bounds" — Rubio-Gonzalez et
// al.'s Precimonious), rebuilt on this repository's softfloat. Mixed
// precision is modeled operation-by-operation: each operation executes
// in its assigned format, with operands converted (rounded) into that
// format first and the result carried at binary64 width for the next
// consumer, the way mixed-precision code behaves on real hardware.
package tuner

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"fpstudy/internal/expr"
	"fpstudy/internal/ieee754"
	"fpstudy/internal/optsim"
)

// Ladder is the precision ladder, highest first. Tuning tries to demote
// operations down the ladder.
var Ladder = []ieee754.Format{
	ieee754.Binary64,
	ieee754.Binary32,
	ieee754.Bfloat16,
	ieee754.Binary16,
}

// Assignment maps operation-node paths (as produced by expr
// attributions: "/", "/lhs", "/rhs/x", ...) to formats. Paths not
// present use binary64.
type Assignment map[string]ieee754.Format

// Clone copies the assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// String renders the assignment deterministically.
func (a Assignment) String() string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s", pathOrRoot(k), a[k].Name)
	}
	return b.String()
}

func pathOrRoot(p string) string {
	if p == "" {
		return "/"
	}
	return p
}

// OpPaths lists the operation-node paths of an expression (the tunable
// sites), in evaluation order.
func OpPaths(n expr.Node) []string {
	var out []string
	var walk func(n expr.Node, path string)
	walk = func(n expr.Node, path string) {
		switch t := n.(type) {
		case expr.Unary:
			walk(t.X, path+"/x")
			if t.Op == expr.OpSqrt {
				out = append(out, path)
			}
		case expr.Binary:
			walk(t.X, path+"/lhs")
			walk(t.Y, path+"/rhs")
			out = append(out, path)
		case expr.FMA:
			walk(t.X, path+"/x")
			walk(t.Y, path+"/y")
			walk(t.Z, path+"/z")
			out = append(out, path)
		}
	}
	walk(n, "")
	return out
}

// EvalMixed evaluates n with per-operation formats. Inputs are binary64
// encodings; every intermediate travels at binary64 width but each
// operation first rounds its operands into its assigned format,
// computes there, and widens the result back — the storage/compute
// model of mixed-precision hardware.
func EvalMixed(n expr.Node, vars map[string]uint64, asg Assignment) uint64 {
	var e ieee754.Env
	return evalMixed(&e, n, "", vars, asg)
}

func formatFor(asg Assignment, path string) ieee754.Format {
	if f, ok := asg[path]; ok {
		return f
	}
	return ieee754.Binary64
}

func evalMixed(e *ieee754.Env, n expr.Node, path string, vars map[string]uint64, asg Assignment) uint64 {
	b64 := ieee754.Binary64
	switch t := n.(type) {
	case expr.Lit:
		var scratch ieee754.Env
		return b64.FromFloat64(&scratch, t.V)
	case expr.Var:
		if v, ok := vars[t.Name]; ok {
			return v
		}
		return b64.QNaN()
	case expr.Unary:
		x := evalMixed(e, t.X, path+"/x", vars, asg)
		switch t.Op {
		case expr.OpNeg:
			return b64.Neg(x)
		case expr.OpSqrt:
			f := formatFor(asg, path)
			return inFormat1(e, f, x, func(fe *ieee754.Env, a uint64) uint64 {
				return f.Sqrt(fe, a)
			})
		}
	case expr.Binary:
		x := evalMixed(e, t.X, path+"/lhs", vars, asg)
		y := evalMixed(e, t.Y, path+"/rhs", vars, asg)
		f := formatFor(asg, path)
		op := func(fe *ieee754.Env, a, b uint64) uint64 {
			switch t.Op {
			case expr.OpAdd:
				return f.Add(fe, a, b)
			case expr.OpSub:
				return f.Sub(fe, a, b)
			case expr.OpMul:
				return f.Mul(fe, a, b)
			default:
				return f.Div(fe, a, b)
			}
		}
		return inFormat2(e, f, x, y, op)
	case expr.FMA:
		x := evalMixed(e, t.X, path+"/x", vars, asg)
		y := evalMixed(e, t.Y, path+"/y", vars, asg)
		z := evalMixed(e, t.Z, path+"/z", vars, asg)
		f := formatFor(asg, path)
		xa := ieee754.Binary64.Convert(e, f, x)
		ya := ieee754.Binary64.Convert(e, f, y)
		za := ieee754.Binary64.Convert(e, f, z)
		r := f.FMA(e, xa, ya, za)
		return f.Convert(e, ieee754.Binary64, r)
	}
	return ieee754.Binary64.QNaN()
}

func inFormat1(e *ieee754.Env, f ieee754.Format, x uint64, op func(*ieee754.Env, uint64) uint64) uint64 {
	xa := ieee754.Binary64.Convert(e, f, x)
	return f.Convert(e, ieee754.Binary64, op(e, xa))
}

func inFormat2(e *ieee754.Env, f ieee754.Format, x, y uint64, op func(*ieee754.Env, uint64, uint64) uint64) uint64 {
	xa := ieee754.Binary64.Convert(e, f, x)
	ya := ieee754.Binary64.Convert(e, f, y)
	return f.Convert(e, ieee754.Binary64, op(e, xa, ya))
}

// Result is the outcome of a tuning run.
type Result struct {
	Assignment Assignment
	// MaxRelError is the worst relative error over the corpus under
	// the final assignment.
	MaxRelError float64
	// Demoted counts operations running below binary64.
	Demoted int
	// Ops is the total number of tunable operations.
	Ops int
	// BitsSaved is the total significand bits saved vs all-binary64.
	BitsSaved int
	// Trials is how many candidate evaluations the search performed.
	Trials int
}

// Tune greedily lowers each operation down the precision ladder while
// the worst-case relative error over the corpus stays within tol.
// Operations are visited in evaluation order, each demoted as far as it
// can go before moving on (the greedy strategy of the original tools).
func Tune(n expr.Node, corpus []map[string]uint64, tol float64) Result {
	paths := OpPaths(n)
	asg := Assignment{}
	res := Result{Ops: len(paths)}

	refs := make([]float64, len(corpus))
	for i, vars := range corpus {
		refs[i] = ieee754.Binary64.ToFloat64(EvalMixed(n, vars, nil))
	}
	check := func(a Assignment) (float64, bool) {
		res.Trials++
		worst := 0.0
		for i, vars := range corpus {
			got := ieee754.Binary64.ToFloat64(EvalMixed(n, vars, a))
			rel, ok := relError(got, refs[i])
			if !ok {
				return math.Inf(1), false
			}
			if rel > worst {
				worst = rel
			}
		}
		return worst, worst <= tol
	}

	for _, p := range paths {
		for _, f := range Ladder[1:] { // try 32, then bf16, then 16
			cand := asg.Clone()
			cand[p] = f
			if _, ok := check(cand); ok {
				asg = cand
			} else {
				break // further demotion only gets worse
			}
		}
	}
	res.Assignment = asg
	res.MaxRelError, _ = check(asg)
	res.Trials-- // final check is reporting, not search
	for _, f := range asg {
		res.Demoted++
		res.BitsSaved += int(ieee754.Binary64.Precision() - f.Precision())
	}
	return res
}

// relError computes |got-ref|/|ref| with NaN/Inf handling: exceptional
// mismatches are unacceptable (ok=false); matching exceptional values
// count as zero error.
func relError(got, ref float64) (float64, bool) {
	switch {
	case math.IsNaN(ref):
		if math.IsNaN(got) {
			return 0, true
		}
		return math.Inf(1), false
	case math.IsInf(ref, 0):
		if got == ref {
			return 0, true
		}
		return math.Inf(1), false
	case math.IsNaN(got) || math.IsInf(got, 0):
		return math.Inf(1), false
	case ref == 0:
		if got == 0 {
			return 0, true
		}
		return math.Abs(got), math.Abs(got) < 1e300
	}
	return math.Abs(got-ref) / math.Abs(ref), true
}

// Corpus generates a deterministic tuning corpus for the variables of
// n, reusing the optimization simulator's input generator but filtering
// out non-finite inputs (tuning targets ordinary data).
func Corpus(n expr.Node, size int, seed int64) []map[string]uint64 {
	raw := optsim.GenCorpus(ieee754.Binary64, n, size*2, seed)
	out := make([]map[string]uint64, 0, size)
	for _, env := range raw {
		ok := true
		for _, v := range env {
			if !ieee754.Binary64.IsFinite(v) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, env)
			if len(out) == size {
				break
			}
		}
	}
	return out
}
