package benchcmp

import (
	"os"
	"path/filepath"
	"testing"
)

func TestDetectDriftFlagsOutlier(t *testing.T) {
	// A stable throughput series with one collapsed run.
	vals := []float64{100, 102, 98, 101, 99, 100, 60}
	s := DetectDrift(vals, DriftParams{})
	if s.NumDrift != 1 {
		t.Fatalf("NumDrift = %d, want 1 (%+v)", s.NumDrift, s.Points)
	}
	if !s.Points[6].Drift {
		t.Error("the 60 point was not flagged")
	}
	if s.Points[6].Deviation > -0.3 {
		t.Errorf("deviation = %.3f, want about -0.4", s.Points[6].Deviation)
	}
	if s.Median < 99 || s.Median > 101 {
		t.Errorf("median = %.1f, want ~100", s.Median)
	}
}

// TestDetectDriftRelativeFloor: a near-constant series (MAD ~ 0) must
// not flag timer jitter below the relative floor.
func TestDetectDriftRelativeFloor(t *testing.T) {
	vals := []float64{100, 100, 100, 100, 103} // 3% wiggle, MAD = 0
	s := DetectDrift(vals, DriftParams{})
	if s.NumDrift != 0 {
		t.Fatalf("NumDrift = %d, want 0 (3%% sits under the 10%% floor)", s.NumDrift)
	}
	// ...but a 15% move over a MAD-zero base does drift.
	s = DetectDrift([]float64{100, 100, 100, 100, 115}, DriftParams{})
	if s.NumDrift != 1 {
		t.Fatalf("NumDrift = %d, want 1", s.NumDrift)
	}
}

// TestDetectDriftShortSeries: fewer than 3 points never flag.
func TestDetectDriftShortSeries(t *testing.T) {
	for _, vals := range [][]float64{nil, {5}, {5, 500}} {
		if s := DetectDrift(vals, DriftParams{}); s.NumDrift != 0 {
			t.Errorf("%v: NumDrift = %d, want 0", vals, s.NumDrift)
		}
	}
}

// TestDetectDriftRobustToOutlier: the band itself must not be dragged
// by the outlier it is supposed to catch (median/MAD, not mean/σ).
func TestDetectDriftRobustToOutlier(t *testing.T) {
	vals := []float64{100, 101, 99, 100, 1000}
	s := DetectDrift(vals, DriftParams{})
	if s.Median > 110 {
		t.Errorf("median = %.0f dragged by outlier", s.Median)
	}
	if !s.Points[4].Drift {
		t.Error("outlier escaped the robust band")
	}
}

// TestReadHistoryLenient mirrors the runlog tolerance contract on the
// benchmark trajectory: mixed-era entries parse, junk lines and a
// truncated tail are skipped, never fatal.
func TestReadHistoryLenient(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.jsonl")
	content := // v3-era entry: runs only, no io/query/latency/serial_host
	`{"timestamp":"2026-01-01T00:00:00Z","appended":"2026-01-01T00:00:01Z","seed":42,"host":{"goos":"linux","goarch":"amd64","num_cpu":8,"gomaxprocs":8,"go_version":"go1.22.0"},"runs":[{"n":199,"workers":1,"best_seconds":0.02,"respondents_per_sec":9950,"allocs_per_respondent":31.5,"gc_pause_total_ms":0,"gc_count":0}]}` + "\n" +
		"\n" + // blank line
		// v5-era: serial_host + io section
		`{"timestamp":"2026-02-01T00:00:00Z","appended":"2026-02-01T00:00:01Z","seed":42,"host":{"goos":"linux","goarch":"amd64","num_cpu":1,"gomaxprocs":1,"go_version":"go1.24.0","serial_host":true},"runs":[{"n":199,"workers":1,"best_seconds":0.015,"respondents_per_sec":13266,"allocs_per_respondent":31.5,"gc_pause_total_ms":0,"gc_count":0}],"io":[{"n":199,"format":"binary","op":"encode","reps":3,"bytes":17000,"best_seconds":0.001,"mb_per_sec":16.2,"respondents_per_sec":199000}]}` + "\n" +
		`this line is corrupt {{{` + "\n" +
		// v7-era: latency quantiles + query section
		`{"timestamp":"2026-03-01T00:00:00Z","appended":"2026-03-01T00:00:01Z","seed":42,"host":{"goos":"linux","goarch":"amd64","num_cpu":1,"gomaxprocs":1,"go_version":"go1.24.0","serial_host":true},"runs":[{"n":199,"workers":1,"best_seconds":0.014,"respondents_per_sec":14214,"allocs_per_respondent":31.5,"gc_pause_total_ms":0,"gc_count":0,"latency":[{"stage":"grade_batch","count":64,"p50_ns":1000,"p90_ns":2000,"p99_ns":3000,"p999_ns":4000}]}],"query":[{"n":199,"mode":"mem","name":"grouped_mean","workers":1,"reps":3,"selected":199,"best_seconds":0.0001,"respondents_per_sec":1990000}]}` + "\n" +
		// v8-era: vcs stamp
		`{"timestamp":"2026-04-01T00:00:00Z","appended":"2026-04-01T00:00:01Z","seed":42,"host":{"goos":"linux","goarch":"amd64","num_cpu":1,"gomaxprocs":1,"go_version":"go1.24.0","serial_host":true},"vcs":{"revision":"abc123def456","modified":false},"runs":[{"n":199,"workers":1,"best_seconds":0.014,"respondents_per_sec":14214,"allocs_per_respondent":31.5,"gc_pause_total_ms":0,"gc_count":0}]}` + "\n" +
		`{"timestamp":"2026-05-01T00:` // truncated final line
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, skipped, err := ReadHistoryLenient(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("parsed %d entries, want 4", len(entries))
	}
	if skipped != 2 {
		t.Errorf("skipped = %d, want 2 (corrupt + truncated)", skipped)
	}
	if entries[0].Host.SerialHost || !entries[1].Host.SerialHost {
		t.Error("serial_host fidelity lost across schema eras")
	}
	if entries[0].VCS != nil {
		t.Error("v3 entry grew a VCS stamp from nowhere")
	}
	if entries[3].VCS == nil || entries[3].VCS.Revision != "abc123def456" {
		t.Errorf("v8 entry VCS = %+v", entries[3].VCS)
	}
	if len(entries[2].Runs[0].Latency) != 1 || entries[2].Runs[0].Latency[0].Stage != "grade_batch" {
		t.Errorf("v7 latency table lost: %+v", entries[2].Runs[0])
	}
	if len(entries[1].IO) != 1 || len(entries[2].Query) != 1 {
		t.Error("io/query sections lost")
	}

	// Strict ReadHistory must still fail on the same file (it is the
	// machine-written append path's own integrity check).
	if _, err := ReadHistory(path); err == nil {
		t.Error("strict ReadHistory accepted a corrupt file")
	}

	// Empty file: no entries, no error.
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	entries, skipped, err = ReadHistoryLenient(empty)
	if err != nil || len(entries) != 0 || skipped != 0 {
		t.Errorf("empty file: entries=%d skipped=%d err=%v", len(entries), skipped, err)
	}
}
