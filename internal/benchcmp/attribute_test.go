package benchcmp

import (
	"strings"
	"testing"
	"time"

	"fpstudy/internal/telemetry"
)

// spanTree builds a canned best-rep span forest: run -> {generate,
// grade} with the given leaf seconds.
func spanTree(generate, grade float64) []telemetry.SpanSnapshot {
	return []telemetry.SpanSnapshot{{
		Name: "run", Seconds: generate + grade + 0.1,
		Children: []telemetry.SpanSnapshot{
			{Name: "generate", Seconds: generate},
			{Name: "grade", Seconds: grade},
		},
	}}
}

func reportPair() (*Report, *Report) {
	old := &Report{Runs: []Run{
		{N: 199, Workers: 1, BestSeconds: 2.1, RespondentsPerSec: 199 / 2.1, Spans: spanTree(1.0, 1.0)},
		{N: 10000, Workers: 1, BestSeconds: 4.1, RespondentsPerSec: 10000 / 4.1, Spans: spanTree(2.0, 2.0)},
	}}
	// grade got 20% slower at both sizes; generate unchanged.
	new := &Report{Runs: []Run{
		{N: 199, Workers: 1, BestSeconds: 2.3, RespondentsPerSec: 199 / 2.3, Spans: spanTree(1.0, 1.2)},
		{N: 10000, Workers: 1, BestSeconds: 4.5, RespondentsPerSec: 10000 / 4.5, Spans: spanTree(2.0, 2.4)},
	}}
	return old, new
}

// TestAttributeNamesSlowedStage is the acceptance contract: a report
// pair with an injected 20% slowdown in one stage must rank that
// stage as the top contributor.
func TestAttributeNamesSlowedStage(t *testing.T) {
	old, new := reportPair()
	attrs := AttributeSpans(old, new)
	if len(attrs) != 2 {
		t.Fatalf("attributed %d configs, want 2", len(attrs))
	}
	for _, a := range attrs {
		if len(a.Stages) == 0 || a.Stages[0].Stage != "run/grade" {
			t.Errorf("n=%d: top stage = %+v, want run/grade first", a.N, a.Stages)
		}
	}
	top := TopStages(attrs)
	if top[0].Stage != "run/grade" {
		t.Fatalf("TopStages[0] = %+v, want run/grade", top[0])
	}
	if got, want := top[0].Lost, (1.2-1.0)+(2.4-2.0); !approx(got, want) {
		t.Errorf("run/grade lost %.4f, want %.4f", got, want)
	}
	// generate is unchanged; its aggregate loss must be ~0 and ranked
	// below grade.
	for _, st := range top {
		if st.Stage == "run/generate" && !approx(st.Lost, 0) {
			t.Errorf("run/generate lost %.4f, want 0", st.Lost)
		}
	}
}

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

// TestAttributeSelfTimeNoDoubleCount: the parent "run" node must only
// carry its own overhead, not re-count the child slowdown.
func TestAttributeSelfTimeNoDoubleCount(t *testing.T) {
	old, new := reportPair()
	top := TopStages(AttributeSpans(old, new))
	for _, st := range top {
		if st.Stage == "run" {
			// run's self-time is 0.1 on both sides.
			if !approx(st.Lost, 0) {
				t.Errorf("run self-time lost %.4f, want 0 (child slowdown double-counted?)", st.Lost)
			}
			return
		}
	}
	t.Error("run stage missing from aggregate ranking")
}

// TestAttributeStageOnlyInOneReport: appearing/vanishing stages
// attribute their whole self-time.
func TestAttributeStageOnlyInOneReport(t *testing.T) {
	old := &Report{Runs: []Run{{N: 199, Workers: 1, Spans: spanTree(1.0, 1.0)}}}
	new := &Report{Runs: []Run{{N: 199, Workers: 1, Spans: []telemetry.SpanSnapshot{{
		Name: "run", Seconds: 2.6,
		Children: []telemetry.SpanSnapshot{
			{Name: "generate", Seconds: 1.0},
			{Name: "grade", Seconds: 1.0},
			{Name: "write", Seconds: 0.5}, // new stage
		},
	}}}}}
	top := TopStages(AttributeSpans(old, new))
	if top[0].Stage != "run/write" || !approx(top[0].Lost, 0.5) {
		t.Errorf("new-only stage: top = %+v, want run/write +0.5", top[0])
	}
}

// TestAttributeNoSpans: pre-v2 reports (no span data) still produce
// wall-level attributions without stages.
func TestAttributeNoSpans(t *testing.T) {
	old := &Report{Runs: []Run{{N: 199, Workers: 1, BestSeconds: 1.0}}}
	new := &Report{Runs: []Run{{N: 199, Workers: 1, BestSeconds: 1.5}}}
	attrs := AttributeSpans(old, new)
	if len(attrs) != 1 || len(attrs[0].Stages) != 0 {
		t.Fatalf("attrs = %+v, want one config, no stages", attrs)
	}
	if !approx(attrs[0].WallNew-attrs[0].WallOld, 0.5) {
		t.Errorf("wall delta = %+v", attrs[0])
	}
	if got := TopStages(attrs); len(got) != 0 {
		t.Errorf("TopStages = %+v, want empty", got)
	}
}

// TestForensicsMarkdown renders the gate-failure report and checks it
// names the offending stage, the regressions, and the profiles.
func TestForensicsMarkdown(t *testing.T) {
	old, new := reportPair()
	res := Compare(old, new, Bands{})
	if len(res.Regressions()) == 0 {
		t.Fatal("fixture pair must regress (throughput dropped ~9%)")
	}
	md := ForensicsMarkdown(old, new, "old.json", "new.json", res,
		map[string]string{"cpu": "f/cpu.pprof", "heap": "f/heap.pprof"},
		time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC))
	for _, want := range []string{
		"Top offender: `run/grade`",
		"respondents_per_sec",
		"f/cpu.pprof",
		"f/heap.pprof",
		"unstamped build",
		"| n=199/workers=1 |",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("forensics markdown missing %q:\n%s", want, md)
		}
	}
}
