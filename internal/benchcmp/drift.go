package benchcmp

import (
	"math"
	"sort"
)

// Robust drift detection over benchmark trajectories. A metric series
// (one value per BENCH_history.jsonl line or ledger record) is
// summarized by its median and MAD (median absolute deviation): both
// are order statistics, so a few wild outliers — exactly what host
// noise produces — cannot drag the band the way a mean/stddev band
// would be dragged. A point drifts when it sits further from the
// median than max(K·1.4826·MAD, RelFloor·|median|): the 1.4826 factor
// makes the MAD consistent with a normal σ, K is the usual robust
// z-cut, and the relative floor keeps a near-constant series (MAD≈0)
// from flagging every timer-jitter wiggle.

// DriftParams tune DetectDrift. Zero values take defaults.
type DriftParams struct {
	// K is the robust z-score cut (default 3.5, the standard
	// modified-z outlier threshold).
	K float64
	// RelFloor is the minimum relative deviation from the median that
	// can drift (default 0.10 — below the throughput noise floor a
	// "drift" is jitter even if the MAD is tiny).
	RelFloor float64
}

func (p DriftParams) withDefaults() DriftParams {
	if p.K == 0 {
		p.K = 3.5
	}
	if p.RelFloor == 0 {
		p.RelFloor = 0.10
	}
	return p
}

// DriftPoint is one series point's verdict.
type DriftPoint struct {
	Value float64
	// Deviation is (value-median)/median, signed (0 when the median
	// is 0).
	Deviation float64
	// Drift marks points outside the robust band.
	Drift bool
}

// DriftSummary is the robust summary of one metric series.
type DriftSummary struct {
	Median float64
	// MAD is the raw median absolute deviation (multiply by 1.4826
	// for a σ-consistent scale).
	MAD float64
	// Band is the absolute half-width of the no-drift interval around
	// the median: max(K·1.4826·MAD, RelFloor·|Median|).
	Band   float64
	Points []DriftPoint
	// NumDrift counts flagged points.
	NumDrift int
}

// median computes the series median without mutating xs.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	m := len(s) / 2
	if len(s)%2 == 1 {
		return s[m]
	}
	return (s[m-1] + s[m]) / 2
}

// DetectDrift summarizes a series with median/MAD bands and flags the
// points outside them. Series shorter than 3 points never flag —
// there is no base rate to deviate from.
func DetectDrift(values []float64, p DriftParams) DriftSummary {
	p = p.withDefaults()
	med := median(values)
	dev := make([]float64, len(values))
	for i, v := range values {
		dev[i] = math.Abs(v - med)
	}
	mad := median(dev)
	s := DriftSummary{Median: med, MAD: mad}
	band := p.K * 1.4826 * mad
	if floor := p.RelFloor * math.Abs(med); band < floor {
		band = floor
	}
	s.Band = band
	for _, v := range values {
		pt := DriftPoint{Value: v}
		if med != 0 {
			pt.Deviation = (v - med) / med
		}
		if len(values) >= 3 && math.Abs(v-med) > band {
			pt.Drift = true
			s.NumDrift++
		}
		s.Points = append(s.Points, pt)
	}
	return s
}
