package benchcmp

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"fpstudy/internal/runlog"
)

// Regression root-cause attribution: given two reports, explain WHERE
// a wall-clock regression went by diffing the per-run span trees
// (schema v2+ reports carry the best rep's stage breakdown) on
// self-time — each node's seconds minus its children's — so a parent
// and its child never double-count the same lost time. The quantile
// tables complement this: Compare's latency deltas say which
// block-level operation's tail moved; the span diff says which stage
// of the run's timeline absorbed the loss.

// StageCost is one stage's time across two reports. Stage is the
// slash-joined span path ("run/generate-main/sample-responses");
// seconds are self-time. Lost is New-Old: positive means the stage
// got slower (time lost to the regression), negative faster.
type StageCost struct {
	Stage      string  `json:"stage"`
	OldSeconds float64 `json:"old_seconds"`
	NewSeconds float64 `json:"new_seconds"`
	Lost       float64 `json:"lost_seconds"`
}

// Attribution is the stage-level diff of one matched pipeline
// configuration, stages ranked by time lost (worst first).
type Attribution struct {
	N       int         `json:"n"`
	Workers int         `json:"workers"`
	WallOld float64     `json:"wall_old_seconds"`
	WallNew float64     `json:"wall_new_seconds"`
	Stages  []StageCost `json:"stages"`
}

// selfTimes flattens a run's span forest into path -> summed
// self-seconds (duplicate paths accumulate).
func selfTimes(run Run) map[string]float64 {
	out := map[string]float64{}
	for _, st := range runlog.FlattenSpans(run.Spans) {
		out[st.Name] += st.SelfSeconds
	}
	return out
}

// AttributeSpans diffs the span trees of every (n, workers)
// configuration present in both reports and ranks each config's
// stages by absolute time lost. Stages present in only one report
// attribute their whole self-time (the other side contributes 0) —
// a stage appearing or vanishing IS a time movement. Configurations
// without span data on either side yield an Attribution with no
// stages (wall deltas still carry information).
func AttributeSpans(old, new *Report) []Attribution {
	newRuns := map[configKey]Run{}
	for _, run := range new.Runs {
		newRuns[configKey{run.N, run.Workers}] = run
	}
	var out []Attribution
	for _, o := range old.Runs {
		n, ok := newRuns[configKey{o.N, o.Workers}]
		if !ok {
			continue
		}
		oldSelf := selfTimes(o)
		newSelf := selfTimes(n)
		names := make([]string, 0, len(oldSelf))
		for name := range oldSelf {
			names = append(names, name)
		}
		for name := range newSelf {
			if _, ok := oldSelf[name]; !ok {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		a := Attribution{N: o.N, Workers: o.Workers, WallOld: o.BestSeconds, WallNew: n.BestSeconds}
		for _, name := range names {
			a.Stages = append(a.Stages, StageCost{
				Stage:      name,
				OldSeconds: oldSelf[name],
				NewSeconds: newSelf[name],
				Lost:       newSelf[name] - oldSelf[name],
			})
		}
		sort.SliceStable(a.Stages, func(i, j int) bool { return a.Stages[i].Lost > a.Stages[j].Lost })
		out = append(out, a)
	}
	return out
}

// TopStages aggregates attributions across configurations into one
// ranking: per stage path, the summed time lost over every matched
// config, worst first. This is the "name the culprit" view — the
// stage at the head of the list is where the regression's wall time
// went.
func TopStages(attrs []Attribution) []StageCost {
	agg := map[string]*StageCost{}
	var order []string
	for _, a := range attrs {
		for _, st := range a.Stages {
			c, ok := agg[st.Stage]
			if !ok {
				c = &StageCost{Stage: st.Stage}
				agg[st.Stage] = c
				order = append(order, st.Stage)
			}
			c.OldSeconds += st.OldSeconds
			c.NewSeconds += st.NewSeconds
			c.Lost += st.Lost
		}
	}
	sort.Strings(order)
	out := make([]StageCost, 0, len(order))
	for _, name := range order {
		out = append(out, *agg[name])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Lost > out[j].Lost })
	return out
}

// describeVCS renders a report's revision for display.
func describeVCS(r *Report) string {
	if r.VCS == nil {
		return "unstamped build"
	}
	rev := r.VCS.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if r.VCS.Modified {
		rev += " (dirty)"
	}
	return rev
}

// ForensicsMarkdown renders the markdown forensics report `fpbench
// compare` drops on gate failure: the regressions beyond the bands,
// the stage attribution naming the top offenders, per-config wall
// deltas, and pointers to the captured profiles. profiles maps a
// label ("cpu", "heap") to the artifact path.
func ForensicsMarkdown(old, new *Report, oldPath, newPath string, res *Result,
	profiles map[string]string, generatedAt time.Time) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Perf forensics report\n\n")
	fmt.Fprintf(&b, "- generated: %s\n", generatedAt.UTC().Format(time.RFC3339))
	fmt.Fprintf(&b, "- old: `%s` (measured %s, revision %s, host %s/%s cpu=%d)\n",
		oldPath, old.Timestamp, describeVCS(old), old.Host.GOOS, old.Host.GOARCH, old.Host.NumCPU)
	fmt.Fprintf(&b, "- new: `%s` (measured %s, revision %s, host %s/%s cpu=%d)\n",
		newPath, new.Timestamp, describeVCS(new), new.Host.GOOS, new.Host.GOARCH, new.Host.NumCPU)
	if old.Host != new.Host {
		fmt.Fprintf(&b, "- **host fingerprints differ** — deltas may be host variance, not code\n")
	}
	b.WriteString("\n## Regressions beyond the noise bands\n\n")
	regs := res.Regressions()
	if len(regs) == 0 {
		b.WriteString("none\n")
	} else {
		b.WriteString("| configuration | metric | old | new | change |\n")
		b.WriteString("|---|---|---:|---:|---:|\n")
		for _, d := range regs {
			fmt.Fprintf(&b, "| %s | %s | %.4g | %.4g | %+.1f%% |\n",
				d.Config(), d.Metric, d.Old, d.New, 100*d.Change)
		}
	}

	attrs := AttributeSpans(old, new)
	top := TopStages(attrs)
	b.WriteString("\n## Stage attribution (self-time diff of best-rep span trees)\n\n")
	if len(top) == 0 {
		b.WriteString("no span data in common (pre-v2 report?)\n")
	} else {
		b.WriteString("| rank | stage | old s | new s | lost s |\n")
		b.WriteString("|---:|---|---:|---:|---:|\n")
		for i, st := range top {
			fmt.Fprintf(&b, "| %d | `%s` | %.6f | %.6f | %+.6f |\n",
				i+1, st.Stage, st.OldSeconds, st.NewSeconds, st.Lost)
		}
		if top[0].Lost > 0 {
			fmt.Fprintf(&b, "\n**Top offender: `%s`** — %+.6fs across matched configurations.\n",
				top[0].Stage, top[0].Lost)
		}
	}

	b.WriteString("\n## Wall time per configuration\n\n")
	b.WriteString("| configuration | old s | new s | delta s |\n")
	b.WriteString("|---|---:|---:|---:|\n")
	for _, a := range attrs {
		fmt.Fprintf(&b, "| n=%d/workers=%d | %.6f | %.6f | %+.6f |\n",
			a.N, a.Workers, a.WallOld, a.WallNew, a.WallNew-a.WallOld)
	}

	if len(profiles) > 0 {
		b.WriteString("\n## Captured profiles (worst regressed leg, re-run)\n\n")
		for _, label := range sortedStringKeys(profiles) {
			fmt.Fprintf(&b, "- %s: `%s` (`go tool pprof -top %s`)\n", label, profiles[label], profiles[label])
		}
	}
	return b.String()
}

// sortedStringKeys returns the map's keys sorted (deterministic
// report rendering).
func sortedStringKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
