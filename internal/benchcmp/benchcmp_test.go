package benchcmp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// mkReport builds a two-configuration report for comparison tests.
func mkReport(thr199, thr10k, allocs, gcPause float64) *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		Tool:          "fpbench",
		Timestamp:     "2026-01-01T00:00:00Z",
		Seed:          42,
		Runs: []Run{
			{N: 199, Workers: 1, BestSeconds: 199 / thr199, RespondentsPerSec: thr199,
				AllocsPerRespondent: allocs, GCPauseTotalMS: gcPause},
			{N: 10000, Workers: 0, BestSeconds: 10000 / thr10k, RespondentsPerSec: thr10k,
				AllocsPerRespondent: allocs, GCPauseTotalMS: gcPause},
		},
	}
}

// TestCompareDetectsThroughputRegression pins the acceptance
// criterion: an artificially injected 20% throughput drop is a
// regression under the default 5% band.
func TestCompareDetectsThroughputRegression(t *testing.T) {
	old := mkReport(10000, 33000, 7.3, 2)
	cur := mkReport(8000, 26400, 7.3, 2) // −20% on both configurations

	res := Compare(old, cur, Bands{})
	regs := res.Regressions()
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2 (throughput on both configs): %+v", len(regs), regs)
	}
	for _, d := range regs {
		if d.Metric != "respondents_per_sec" {
			t.Fatalf("unexpected regression metric %q", d.Metric)
		}
		if d.Change > -0.19 || d.Change < -0.21 {
			t.Fatalf("change = %.3f, want ≈ -0.20", d.Change)
		}
	}
}

func TestCompareWithinBandPasses(t *testing.T) {
	old := mkReport(10000, 33000, 7.3, 2)
	cur := mkReport(9700, 32100, 7.5, 2.5) // ~3% thr drop, small alloc/gc noise

	res := Compare(old, cur, Bands{})
	if regs := res.Regressions(); len(regs) != 0 {
		t.Fatalf("noise flagged as regression: %+v", regs)
	}
	if len(res.Deltas) != 6 {
		t.Fatalf("got %d deltas, want 6 (3 metrics × 2 configs)", len(res.Deltas))
	}
}

func TestCompareImprovementNeverRegresses(t *testing.T) {
	old := mkReport(10000, 33000, 7.3, 10)
	cur := mkReport(20000, 66000, 1.0, 0.5)
	if regs := Compare(old, cur, Bands{}).Regressions(); len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %+v", regs)
	}
}

// TestCompareAllocFloor pins the absolute floor: tiny absolute alloc
// growth never gates even when relatively large, and growth from a
// zero baseline gates once past the floor.
func TestCompareAllocFloor(t *testing.T) {
	old := mkReport(10000, 33000, 0.05, 2)
	cur := mkReport(10000, 33000, 0.5, 2) // 10× relative, +0.45 absolute
	if regs := Compare(old, cur, Bands{}).Regressions(); len(regs) != 0 {
		t.Fatalf("sub-floor alloc growth gated: %+v", regs)
	}

	old = mkReport(10000, 33000, 0, 2)
	cur = mkReport(10000, 33000, 8, 2) // from zero past the floor
	regs := Compare(old, cur, Bands{}).Regressions()
	if len(regs) != 2 {
		t.Fatalf("allocs-from-zero not gated: %+v", regs)
	}
	for _, d := range regs {
		if d.Metric != "allocs_per_respondent" {
			t.Fatalf("unexpected regression metric %q", d.Metric)
		}
	}
}

func TestCompareGCPauseFloor(t *testing.T) {
	old := mkReport(10000, 33000, 7.3, 1)
	cur := mkReport(10000, 33000, 7.3, 4) // 4× relative but only +3ms
	if regs := Compare(old, cur, Bands{}).Regressions(); len(regs) != 0 {
		t.Fatalf("sub-floor GC pause growth gated: %+v", regs)
	}
	cur = mkReport(10000, 33000, 7.3, 20) // +19ms and 20× — gates
	if regs := Compare(old, cur, Bands{}).Regressions(); len(regs) != 2 {
		t.Fatalf("GC pause blow-up not gated: %+v", regs)
	}
}

func TestCompareCustomBands(t *testing.T) {
	old := mkReport(10000, 33000, 7.3, 2)
	cur := mkReport(9000, 29700, 7.3, 2) // −10%
	if regs := Compare(old, cur, Bands{Throughput: 0.15}).Regressions(); len(regs) != 0 {
		t.Fatalf("−10%% gated under a 15%% band: %+v", regs)
	}
	if regs := Compare(old, cur, Bands{Throughput: 0.02}).Regressions(); len(regs) != 2 {
		t.Fatalf("−10%% not gated under a 2%% band: %+v", regs)
	}
}

func TestCompareDisjointConfigs(t *testing.T) {
	old := mkReport(10000, 33000, 7.3, 2)
	cur := &Report{Runs: []Run{{N: 199, Workers: 1, RespondentsPerSec: 10000,
		AllocsPerRespondent: 7.3, GCPauseTotalMS: 2}, {N: 50, Workers: 2, RespondentsPerSec: 1}}}

	res := Compare(old, cur, Bands{})
	if len(res.Deltas) != 3 {
		t.Fatalf("got %d deltas, want 3 (only the shared config)", len(res.Deltas))
	}
	if !reflect.DeepEqual(res.OnlyOld, []string{"n=10000/workers=0"}) {
		t.Fatalf("OnlyOld = %v", res.OnlyOld)
	}
	if !reflect.DeepEqual(res.OnlyNew, []string{"n=50/workers=2"}) {
		t.Fatalf("OnlyNew = %v", res.OnlyNew)
	}
}

func TestNSizesAndMissing(t *testing.T) {
	r := mkReport(1, 1, 0, 0)
	if got := r.NSizes(); !reflect.DeepEqual(got, []int{199, 10000}) {
		t.Fatalf("NSizes = %v", got)
	}
	big := &Report{Runs: []Run{{N: 199}, {N: 10000}, {N: 1000000}}}
	if got := MissingNSizes(big, r); !reflect.DeepEqual(got, []int{1000000}) {
		t.Fatalf("MissingNSizes = %v, want [1000000]", got)
	}
	if got := MissingNSizes(r, big); got != nil {
		t.Fatalf("superset reported missing sizes: %v", got)
	}
}

// mkIOReport builds a report whose io section has one binary decode
// and one json-rows decode entry at n=10000.
func mkIOReport(binMB, rowsMB float64) *Report {
	const bytes = 1 << 20
	mk := func(format string, mbps float64) IORun {
		return IORun{
			N: 10000, Format: format, Op: "decode", Reps: 2, Bytes: bytes,
			BestSeconds: 1 / mbps, MBPerSec: mbps, RespondentsPerSec: 10000 * mbps,
		}
	}
	return &Report{
		SchemaVersion: SchemaVersion,
		IO:            []IORun{mk("binary", binMB), mk("json-rows", rowsMB)},
	}
}

// TestCompareIOGatesThroughput pins the io regression gate: a drop in
// one format's decode bandwidth beyond the throughput band gates, and
// matching is by (n, format, op) so the other format is untouched.
func TestCompareIOGatesThroughput(t *testing.T) {
	old := mkIOReport(500, 20)
	cur := mkIOReport(400, 20) // binary −20%, json-rows flat

	res := Compare(old, cur, Bands{})
	regs := res.Regressions()
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2 (mb_per_sec + respondents_per_sec on binary): %+v", len(regs), regs)
	}
	for _, d := range regs {
		if !d.IsIO() || d.Format != "binary" || d.Op != "decode" {
			t.Fatalf("regression on the wrong configuration: %+v", d)
		}
		if d.Config() != "n=10000/io/binary/decode" {
			t.Fatalf("Config() = %q", d.Config())
		}
	}

	// Within-band io noise passes.
	cur = mkIOReport(490, 19.6) // −2%
	if regs := Compare(old, cur, Bands{}).Regressions(); len(regs) != 0 {
		t.Fatalf("io noise gated: %+v", regs)
	}
}

// TestCompareIODisjoint checks io configurations present in only one
// report are listed but never gate — the shape of a schema v3→v4
// baseline upgrade.
func TestCompareIODisjoint(t *testing.T) {
	old := mkReport(10000, 33000, 7.3, 2) // no io section at all
	cur := mkIOReport(500, 20)
	cur.Runs = old.Runs

	res := Compare(old, cur, Bands{})
	if regs := res.Regressions(); len(regs) != 0 {
		t.Fatalf("new io section gated against nothing: %+v", regs)
	}
	if !reflect.DeepEqual(res.OnlyNew, []string{"n=10000/io/binary/decode", "n=10000/io/json-rows/decode"}) {
		t.Fatalf("OnlyNew = %v", res.OnlyNew)
	}
	res = Compare(cur, old, Bands{})
	if !reflect.DeepEqual(res.OnlyOld, []string{"n=10000/io/binary/decode", "n=10000/io/json-rows/decode"}) {
		t.Fatalf("OnlyOld = %v", res.OnlyOld)
	}
}

// TestHistoryCarriesIO checks the trajectory line keeps the io runs.
func TestHistoryCarriesIO(t *testing.T) {
	r := mkIOReport(500, 20)
	e := HistoryFromReport(r, time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC))
	if !reflect.DeepEqual(e.IO, r.IO) {
		t.Fatalf("history io section = %+v, want %+v", e.IO, r.IO)
	}
}

func TestParseRejectsNewerSchema(t *testing.T) {
	if _, err := Parse([]byte(`{"schema_version": 99}`)); err == nil {
		t.Fatal("schema v99 accepted")
	}
}

func TestLoadRoundTrip(t *testing.T) {
	r := mkReport(10000, 33000, 7.3, 2)
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_pipeline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
}

func TestHistoryAppendRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.jsonl")
	r1 := mkReport(10000, 33000, 7.3, 2)
	r2 := mkReport(11000, 35000, 7.0, 1)
	at := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	if err := AppendHistory(path, r1, at); err != nil {
		t.Fatal(err)
	}
	if err := AppendHistory(path, r2, at.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}

	entries, err := ReadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d history entries, want 2", len(entries))
	}
	if entries[0].Appended != "2026-08-06T12:00:00Z" {
		t.Fatalf("appended stamp = %q", entries[0].Appended)
	}
	if len(entries[1].Runs) != 2 || entries[1].Runs[1].RespondentsPerSec != 35000 {
		t.Fatalf("history run data mangled: %+v", entries[1].Runs)
	}
	// Appends accrete: the first entry is untouched by the second write.
	if entries[0].Runs[0].RespondentsPerSec != 10000 {
		t.Fatalf("first entry rewritten: %+v", entries[0].Runs[0])
	}
}

func TestReadHistoryRejectsMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.jsonl")
	if err := os.WriteFile(path, []byte("{\"timestamp\":\"x\"}\nnot-json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHistory(path); err == nil {
		t.Fatal("malformed history line accepted")
	}
}

// scalingReport builds a one-size report with a serial and an
// all-cores run at the given throughputs.
func scalingReport(serial, all float64) *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		Runs: []Run{
			{N: 10000, Workers: 1, BestSeconds: 10000 / serial, RespondentsPerSec: serial},
			{N: 10000, Workers: 4, BestSeconds: 10000 / serial, RespondentsPerSec: serial},
			{N: 10000, Workers: 0, BestSeconds: 10000 / all, RespondentsPerSec: all},
		},
	}
}

// TestScalingDeltasGateSlowParallel pins the scaling cliff gate: an
// all-cores run 20% slower than serial is a regression of the report
// itself, regardless of history.
func TestScalingDeltasGateSlowParallel(t *testing.T) {
	ds := ScalingDeltas(scalingReport(10000, 8000), Bands{})
	if len(ds) != 1 {
		t.Fatalf("got %d scaling deltas, want 1: %+v", len(ds), ds)
	}
	d := ds[0]
	if d.Metric != "scaling_all_vs_serial" || !d.Regression {
		t.Fatalf("slow parallel run not gated: %+v", d)
	}
	if d.Config() != "n=10000/workers=0" {
		t.Fatalf("config = %q", d.Config())
	}
}

// TestScalingDeltasPassFastOrEqual: parity (the GOMAXPROCS=1 host,
// where all runs clamp to serial) and genuine speedups both pass, as
// does a within-band wobble.
func TestScalingDeltasPassFastOrEqual(t *testing.T) {
	for _, tc := range []struct{ serial, all float64 }{
		{10000, 10000}, // parity: serial host
		{10000, 31000}, // real speedup
		{10000, 9700},  // 3% wobble, inside the default 5% band
	} {
		for _, d := range ScalingDeltas(scalingReport(tc.serial, tc.all), Bands{}) {
			if d.Regression {
				t.Fatalf("serial=%.0f all=%.0f flagged: %+v", tc.serial, tc.all, d)
			}
		}
	}
}

// TestScalingDeltasNeedBothLegs: a report without a workers=1 baseline
// (or without an all-cores run) yields no scaling delta rather than a
// spurious verdict.
func TestScalingDeltasNeedBothLegs(t *testing.T) {
	r := &Report{Runs: []Run{{N: 199, Workers: 0, RespondentsPerSec: 5000}}}
	if ds := ScalingDeltas(r, Bands{}); len(ds) != 0 {
		t.Fatalf("scaling delta without serial baseline: %+v", ds)
	}
	r = &Report{Runs: []Run{{N: 199, Workers: 1, RespondentsPerSec: 5000}}}
	if ds := ScalingDeltas(r, Bands{}); len(ds) != 0 {
		t.Fatalf("scaling delta without all-cores run: %+v", ds)
	}
}

// TestCompareRunsScalingGate: the gate rides along in Compare, so
// `fpbench compare` (and make bench-gate) enforce it with no extra
// invocation.
func TestCompareRunsScalingGate(t *testing.T) {
	old := scalingReport(10000, 10000)
	cur := scalingReport(10000, 7000) // parallel now loses to serial
	var found *Delta
	res := Compare(old, cur, Bands{})
	for i, d := range res.Deltas {
		if d.Metric == "scaling_all_vs_serial" {
			found = &res.Deltas[i]
			break
		}
	}
	if found == nil || !found.Regression {
		t.Fatalf("Compare did not gate the scaling cliff: %+v", found)
	}
}

// TestSerialHostRoundTrip pins the schema-v5 host tag: set it
// survives encode/decode, unset it is omitted entirely.
func TestSerialHostRoundTrip(t *testing.T) {
	r := &Report{SchemaVersion: SchemaVersion, Host: Host{GOMAXPROCS: 1, SerialHost: true}}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Host.SerialHost {
		t.Fatal("serial_host tag lost in round trip")
	}
	data, _ = json.Marshal(&Report{SchemaVersion: SchemaVersion})
	if bytesContains(data, `"serial_host"`) {
		t.Fatalf("untagged report serializes serial_host: %s", data)
	}
}

func bytesContains(b []byte, s string) bool { return strings.Contains(string(b), s) }

// TestCompareIOTimerNoiseFloor pins the io timing floor: a tiny-cohort
// serialization finishing in tens of microseconds in both reports is
// below timer resolution, so even a large relative throughput "drop" is
// reported but never gates. Crossing the floor in either report gates
// normally.
func TestCompareIOTimerNoiseFloor(t *testing.T) {
	mk := func(sec float64) *Report {
		return &Report{SchemaVersion: SchemaVersion, IO: []IORun{{
			N: 199, Format: "binary", Op: "decode", Bytes: 2048,
			BestSeconds: sec, MBPerSec: 0.002 / sec, RespondentsPerSec: 199 / sec,
		}}}
	}
	old, cur := mk(0.00005), mk(0.00007) // -29% throughput, 50µs vs 70µs
	res := Compare(old, cur, Bands{})
	if regs := res.Regressions(); len(regs) != 0 {
		t.Fatalf("sub-floor io jitter gated: %+v", regs)
	}
	var saw bool
	for _, d := range res.Deltas {
		if d.IsIO() && d.Metric == "mb_per_sec" {
			saw = true
			if d.Change > -0.25 {
				t.Fatalf("sub-floor delta not reported faithfully: %+v", d)
			}
		}
	}
	if !saw {
		t.Fatal("sub-floor io delta dropped from the report")
	}

	// The same relative drop above the floor still gates.
	old, cur = mk(0.05), mk(0.07)
	if regs := Compare(old, cur, Bands{}).Regressions(); len(regs) != 2 {
		t.Fatalf("above-floor io drop not gated: %+v", regs)
	}
}

// latReport builds a one-configuration report whose sample_block stage
// has the given p99 and count (other quantiles scaled consistently).
func latReport(p99 float64, count int64) *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		Runs: []Run{{
			N: 199, Workers: 1, BestSeconds: 0.02, RespondentsPerSec: 10000,
			Latency: []StageLatency{{
				Stage: "sample_block", Count: count,
				P50NS: p99 * 0.4, P90NS: p99 * 0.8, P99NS: p99, P999NS: p99 * 1.2,
			}},
		}},
	}
}

// TestCompareLatencyGatesP99 pins the acceptance criterion: an
// injected p99 regression beyond the 25% band on a measurable stage
// (above the ns floor, enough observations) fails the comparison.
func TestCompareLatencyGatesP99(t *testing.T) {
	old := latReport(500_000, 1000)
	cur := latReport(900_000, 1000) // +80% p99
	res := Compare(old, cur, Bands{})
	regs := res.Regressions()
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1 (p99): %+v", len(regs), regs)
	}
	d := regs[0]
	if d.Metric != "p99_ns" || !d.IsLatency() || d.Stage != "sample_block" {
		t.Fatalf("wrong regression delta: %+v", d)
	}
	if got, want := d.Config(), "n=199/workers=1/latency/sample_block"; got != want {
		t.Fatalf("Config() = %q, want %q", got, want)
	}

	// Within the band: reported, not gated.
	cur = latReport(590_000, 1000) // +18%
	if regs := Compare(old, cur, Bands{}).Regressions(); len(regs) != 0 {
		t.Fatalf("within-band p99 growth gated: %+v", regs)
	}
	// An improvement never regresses.
	cur = latReport(200_000, 1000)
	if regs := Compare(old, cur, Bands{}).Regressions(); len(regs) != 0 {
		t.Fatalf("p99 improvement gated: %+v", regs)
	}
}

// TestCompareLatencyMinCountFloor pins the observation-count floor: the
// p99 of a handful of samples is reported but never gates, on either
// side of the comparison.
func TestCompareLatencyMinCountFloor(t *testing.T) {
	old := latReport(500_000, 10) // below the default 32 floor
	cur := latReport(2_000_000, 10)
	res := Compare(old, cur, Bands{})
	if regs := res.Regressions(); len(regs) != 0 {
		t.Fatalf("low-count p99 jitter gated: %+v", regs)
	}
	var saw bool
	for _, d := range res.Deltas {
		if d.IsLatency() {
			saw = true
			if d.Change < 2.9 {
				t.Fatalf("low-count delta not reported faithfully: %+v", d)
			}
		}
	}
	if !saw {
		t.Fatal("low-count latency delta dropped from the report")
	}
	// Low count in just the new report also blocks gating.
	old, cur = latReport(500_000, 1000), latReport(2_000_000, 10)
	if regs := Compare(old, cur, Bands{}).Regressions(); len(regs) != 0 {
		t.Fatalf("new-side low count gated: %+v", regs)
	}
}

// TestCompareLatencyNSFloor pins the absolute floor: sub-100µs p99s
// are timer noise and never gate, but a stage crossing the floor in
// the new report does.
func TestCompareLatencyNSFloor(t *testing.T) {
	old := latReport(20_000, 1000)
	cur := latReport(60_000, 1000) // +200%, but both under 100µs
	if regs := Compare(old, cur, Bands{}).Regressions(); len(regs) != 0 {
		t.Fatalf("sub-floor p99 jitter gated: %+v", regs)
	}
	// Crossing the floor gates: 20µs -> 200µs is a real regression.
	cur = latReport(200_000, 1000)
	if regs := Compare(old, cur, Bands{}).Regressions(); len(regs) != 1 {
		t.Fatalf("floor-crossing p99 growth not gated: %+v", regs)
	}
}

// TestCompareLatencyCoverageChange pins the skip rule: stages present
// in only one report produce no deltas and no OnlyOld/OnlyNew noise
// (instrumentation coverage changes across versions).
func TestCompareLatencyCoverageChange(t *testing.T) {
	old := latReport(500_000, 1000)
	old.Runs[0].Latency = append(old.Runs[0].Latency, StageLatency{
		Stage: "retired_stage", Count: 1000, P99NS: 1e9,
	})
	cur := latReport(500_000, 1000)
	cur.Runs[0].Latency = append(cur.Runs[0].Latency, StageLatency{
		Stage: "new_stage", Count: 1000, P99NS: 1e9,
	})
	res := Compare(old, cur, Bands{})
	for _, d := range res.Deltas {
		if d.Stage == "retired_stage" || d.Stage == "new_stage" {
			t.Fatalf("one-sided stage produced a delta: %+v", d)
		}
	}
	if len(res.OnlyOld)+len(res.OnlyNew) != 0 {
		t.Fatalf("one-sided stages leaked into OnlyOld/OnlyNew: %v %v", res.OnlyOld, res.OnlyNew)
	}
	if regs := res.Regressions(); len(regs) != 0 {
		t.Fatalf("unchanged report gated: %+v", regs)
	}
}

// TestCompareV5LatencyCompat pins cross-version comparison: a v5
// report (no latency sections anywhere) compares cleanly against a v6
// report that has them — no latency deltas, no regressions, and the
// v5 document still parses.
func TestCompareV5LatencyCompat(t *testing.T) {
	data := []byte(`{"schema_version": 5, "runs": [
		{"n": 199, "workers": 1, "best_seconds": 0.02, "respondents_per_sec": 10000}
	]}`)
	old, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	cur := latReport(500_000, 1000)
	res := Compare(old, cur, Bands{})
	for _, d := range res.Deltas {
		if d.IsLatency() {
			t.Fatalf("v5 old report produced a latency delta: %+v", d)
		}
	}
	if regs := res.Regressions(); len(regs) != 0 {
		t.Fatalf("v5 -> v6 comparison gated: %+v", regs)
	}
	// And the reverse direction (new report without latency) as well.
	res = Compare(cur, old, Bands{})
	for _, d := range res.Deltas {
		if d.IsLatency() {
			t.Fatalf("latency delta against a v5 new report: %+v", d)
		}
	}
}

// TestCompareIOLatency pins the io codec latency gate: FPDS per-block
// p99 growth on a binary io entry regresses with the io configuration
// in its identity.
func TestCompareIOLatency(t *testing.T) {
	mk := func(p99 float64) *Report {
		return &Report{SchemaVersion: SchemaVersion, IO: []IORun{{
			N: 199, Format: "binary", Op: "decode", Bytes: 1 << 20,
			BestSeconds: 0.05, MBPerSec: 20, RespondentsPerSec: 199 / 0.05,
			Latency: []StageLatency{{
				Stage: "fpds_decode_block", Count: 1000,
				P50NS: p99 / 2, P90NS: p99 * 0.9, P99NS: p99, P999NS: p99 * 1.1,
			}},
		}}}
	}
	old, cur := mk(500_000), mk(1_000_000)
	regs := Compare(old, cur, Bands{}).Regressions()
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %+v", len(regs), regs)
	}
	d := regs[0]
	if !d.IsIO() || !d.IsLatency() || d.Metric != "p99_ns" {
		t.Fatalf("wrong io latency delta: %+v", d)
	}
	if got, want := d.Config(), "n=199/io/binary/decode/latency/fpds_decode_block"; got != want {
		t.Fatalf("Config() = %q, want %q", got, want)
	}
}

// TestHistoryCarriesLatency pins the trajectory: per-stage quantiles
// survive compaction into BENCH_history.jsonl for both pipeline runs
// and io entries.
func TestHistoryCarriesLatency(t *testing.T) {
	r := latReport(500_000, 1000)
	r.IO = []IORun{{
		N: 199, Format: "binary", Op: "encode",
		Latency: []StageLatency{{Stage: "fpds_encode_block", Count: 70, P99NS: 1e6}},
	}}
	e := HistoryFromReport(r, time.Unix(0, 0))
	if len(e.Runs) != 1 || !reflect.DeepEqual(e.Runs[0].Latency, r.Runs[0].Latency) {
		t.Fatalf("history dropped run latency: %+v", e.Runs)
	}
	if len(e.IO) != 1 || !reflect.DeepEqual(e.IO[0].Latency, r.IO[0].Latency) {
		t.Fatalf("history dropped io latency: %+v", e.IO)
	}
}

// mkQueryReport builds a v7 report with two query legs: a streaming
// grouped mean and an in-memory full scan, at the given
// respondents/sec (durations sit above the io timing floor).
func mkQueryReport(streamRPS, memRPS float64) *Report {
	mk := func(mode, name string, rps float64) QueryRun {
		return QueryRun{
			N: 10000, Mode: mode, Name: name, Workers: 1, Reps: 3,
			Selected: 10000, BestSeconds: 10000 / rps, RespondentsPerSec: rps,
		}
	}
	return &Report{
		SchemaVersion: SchemaVersion,
		Query: []QueryRun{
			mk("stream", "grouped_mean", streamRPS),
			mk("mem", "scan_mean_score", memRPS),
		},
	}
}

// TestCompareQueryGatesThroughput pins the query regression gate: a
// throughput drop beyond the band in one (n, mode, name, workers)
// configuration gates, matched by key so the other leg is untouched.
func TestCompareQueryGatesThroughput(t *testing.T) {
	old := mkQueryReport(2e6, 8e6)
	cur := mkQueryReport(1.5e6, 8e6) // stream −25%, mem flat

	regs := Compare(old, cur, Bands{}).Regressions()
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %+v", len(regs), regs)
	}
	d := regs[0]
	if !d.IsQuery() || d.Mode != "stream" || d.Name != "grouped_mean" || d.Metric != "respondents_per_sec" {
		t.Fatalf("regression on the wrong configuration: %+v", d)
	}
	if got, want := d.Config(), "n=10000/query/stream/grouped_mean/workers=1"; got != want {
		t.Fatalf("Config() = %q, want %q", got, want)
	}

	// Within-band noise passes.
	cur = mkQueryReport(1.96e6, 7.9e6) // −2%
	if regs := Compare(old, cur, Bands{}).Regressions(); len(regs) != 0 {
		t.Fatalf("query noise gated: %+v", regs)
	}
}

// TestCompareQueryTimerNoiseFloor pins the floor: sub-millisecond
// query legs (tiny cohorts) report their deltas but never gate.
func TestCompareQueryTimerNoiseFloor(t *testing.T) {
	old := mkQueryReport(2e6, 8e6)
	cur := mkQueryReport(1e6, 8e6) // −50%, but both < 1ms at n=100
	for i := range old.Query {
		old.Query[i].N = 100
		old.Query[i].BestSeconds = 100 / old.Query[i].RespondentsPerSec
		cur.Query[i].N = 100
		cur.Query[i].BestSeconds = 100 / cur.Query[i].RespondentsPerSec
	}
	res := Compare(old, cur, Bands{})
	if regs := res.Regressions(); len(regs) != 0 {
		t.Fatalf("sub-floor query delta gated: %+v", regs)
	}
	// The delta is still reported.
	found := false
	for _, d := range res.Deltas {
		if d.IsQuery() && d.Metric == "respondents_per_sec" && d.Change < -0.4 {
			found = true
		}
	}
	if !found {
		t.Fatal("sub-floor query delta not reported")
	}
}

// TestCompareQueryLatencyGatesP99 pins the query_block stage latency
// gate under the latency band.
func TestCompareQueryLatencyGatesP99(t *testing.T) {
	mk := func(p99 float64) *Report {
		r := mkQueryReport(2e6, 8e6)
		r.Query[0].Latency = []StageLatency{{Stage: "query_block", Count: 200, P99NS: p99}}
		return r
	}
	old, cur := mk(400_000), mk(600_000) // +50% beyond the 25% band
	regs := Compare(old, cur, Bands{}).Regressions()
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %+v", len(regs), regs)
	}
	d := regs[0]
	if !d.IsQuery() || !d.IsLatency() || d.Stage != "query_block" {
		t.Fatalf("wrong query latency delta: %+v", d)
	}
	if got, want := d.Config(), "n=10000/query/stream/grouped_mean/workers=1/latency/query_block"; got != want {
		t.Fatalf("Config() = %q, want %q", got, want)
	}
}

// TestCompareQueryBackCompat pins the v5/v6 upgrade shape: an old
// report without a query section compares cleanly against a v7 report
// (and vice versa) — the new legs are listed, never gated.
func TestCompareQueryBackCompat(t *testing.T) {
	old := mkReport(10000, 33000, 7.3, 2) // pipeline runs only, no query
	old.SchemaVersion = 6
	cur := mkQueryReport(2e6, 8e6)
	cur.Runs = old.Runs

	res := Compare(old, cur, Bands{})
	if regs := res.Regressions(); len(regs) != 0 {
		t.Fatalf("new query section gated against nothing: %+v", regs)
	}
	want := []string{
		"n=10000/query/stream/grouped_mean/workers=1",
		"n=10000/query/mem/scan_mean_score/workers=1",
	}
	if !reflect.DeepEqual(res.OnlyNew, want) {
		t.Fatalf("OnlyNew = %v, want %v", res.OnlyNew, want)
	}
	res = Compare(cur, old, Bands{})
	if !reflect.DeepEqual(res.OnlyOld, want) {
		t.Fatalf("OnlyOld = %v, want %v", res.OnlyOld, want)
	}

	// A v5 document (no schema_version bump needed — the field just
	// reads as 5) still parses and round-trips.
	v5 := []byte(`{"schema_version": 5, "runs": [{"n": 199, "workers": 1, "respondents_per_sec": 10000,
		"allocs_per_respondent": 7.3, "gc_pause_total_ms": 2}]}`)
	r, err := Parse(v5)
	if err != nil {
		t.Fatalf("v5 parse: %v", err)
	}
	if len(r.Query) != 0 {
		t.Fatalf("v5 report grew a query section: %+v", r.Query)
	}
	if regs := Compare(r, cur, Bands{}).Regressions(); len(regs) != 0 {
		t.Fatalf("v5-vs-v7 compare gated: %+v", regs)
	}
}

// TestHistoryCarriesQuery checks the trajectory line keeps the query
// runs verbatim.
func TestHistoryCarriesQuery(t *testing.T) {
	r := mkQueryReport(2e6, 8e6)
	e := HistoryFromReport(r, time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC))
	if !reflect.DeepEqual(e.Query, r.Query) {
		t.Fatalf("history query section = %+v, want %+v", e.Query, r.Query)
	}
}

// mkDistribReport builds a report with a distrib section: procs 1 and
// 4 at one cohort size, with the given throughputs.
func mkDistribReport(rps1, rps4 float64) *Report {
	r := mkReport(10000, 33000, 7.3, 2)
	r.Distrib = []DistribRun{
		{N: 10000, Procs: 1, Reps: 2, BestSeconds: 10000 / rps1, RespondentsPerSec: rps1},
		{N: 10000, Procs: 4, Reps: 2, BestSeconds: 10000 / rps4, RespondentsPerSec: rps4},
	}
	return r
}

func TestCompareDistribGatesThroughput(t *testing.T) {
	old := mkDistribReport(100000, 150000)
	bad := mkDistribReport(100000, 150000)
	bad.Distrib[1].RespondentsPerSec *= 0.7 // 30% drop at procs=4

	regs := Compare(old, bad, Bands{}).Regressions()
	found := false
	for _, d := range regs {
		if d.IsDistrib() && d.Metric == "respondents_per_sec" {
			found = true
			if want := "n=10000/distrib/procs=4"; d.Config() != want {
				t.Errorf("Config() = %q, want %q", d.Config(), want)
			}
		}
	}
	if !found {
		t.Fatalf("30%% distrib throughput drop not gated: %+v", regs)
	}
	if regs := Compare(old, mkDistribReport(100000, 150000), Bands{}).Regressions(); len(regs) != 0 {
		t.Fatalf("identical distrib sections gated: %+v", regs)
	}
}

func TestDistribScalingDeltas(t *testing.T) {
	// procs=4 slower than procs=1 beyond the band: gated on a parallel
	// host, waived (but still reported) on a serial host.
	slow := mkDistribReport(100000, 80000)
	deltas := DistribScalingDeltas(slow, Bands{})
	if len(deltas) != 1 || !deltas[0].Regression {
		t.Fatalf("multi-process scaling cliff not gated: %+v", deltas)
	}
	if deltas[0].Metric != "distrib_scaling_vs_serial" || deltas[0].Procs != 4 {
		t.Fatalf("unexpected scaling delta identity: %+v", deltas[0])
	}

	slow.Host.SerialHost = true
	deltas = DistribScalingDeltas(slow, Bands{})
	if len(deltas) != 1 || deltas[0].Regression {
		t.Fatalf("serial-host distrib scaling not waived: %+v", deltas)
	}

	fast := mkDistribReport(100000, 150000)
	for _, d := range DistribScalingDeltas(fast, Bands{}) {
		if d.Regression {
			t.Fatalf("healthy scaling curve gated: %+v", d)
		}
	}
}

// TestCompareDistribBackCompat pins the v9-reads-v8 era contract: a
// v8 report (no distrib section) compares cleanly against a v9 report
// in both directions, with the distrib legs surfacing as OnlyNew /
// OnlyOld rather than gating.
func TestCompareDistribBackCompat(t *testing.T) {
	old := mkReport(10000, 33000, 7.3, 2)
	old.SchemaVersion = 8
	cur := mkDistribReport(100000, 150000)

	res := Compare(old, cur, Bands{})
	if regs := res.Regressions(); len(regs) != 0 {
		t.Fatalf("new distrib section gated against nothing: %+v", regs)
	}
	want := []string{"n=10000/distrib/procs=1", "n=10000/distrib/procs=4"}
	if !reflect.DeepEqual(res.OnlyNew, want) {
		t.Fatalf("OnlyNew = %v, want %v", res.OnlyNew, want)
	}
	res = Compare(cur, old, Bands{})
	if !reflect.DeepEqual(res.OnlyOld, want) {
		t.Fatalf("OnlyOld = %v, want %v", res.OnlyOld, want)
	}

	// A v8 document parses under the v9 reader with no distrib section.
	v8 := []byte(`{"schema_version": 8, "runs": [{"n": 199, "workers": 1, "respondents_per_sec": 10000,
		"allocs_per_respondent": 7.3, "gc_pause_total_ms": 2}]}`)
	r, err := Parse(v8)
	if err != nil {
		t.Fatalf("v8 parse: %v", err)
	}
	if len(r.Distrib) != 0 {
		t.Fatalf("v8 report grew a distrib section: %+v", r.Distrib)
	}
	if regs := Compare(r, cur, Bands{}).Regressions(); len(regs) != 0 {
		t.Fatalf("v8-vs-v9 compare gated: %+v", regs)
	}
}

// TestHistoryCarriesDistrib checks the trajectory line keeps the
// distrib runs verbatim.
func TestHistoryCarriesDistrib(t *testing.T) {
	r := mkDistribReport(100000, 150000)
	e := HistoryFromReport(r, time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC))
	if !reflect.DeepEqual(e.Distrib, r.Distrib) {
		t.Fatalf("history distrib section = %+v, want %+v", e.Distrib, r.Distrib)
	}
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var back HistoryEntry
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Distrib, r.Distrib) {
		t.Fatalf("distrib section did not survive the JSONL round trip")
	}
}
