// Package benchcmp is the perf-regression observatory over fpbench
// reports: it parses BENCH_pipeline.json documents (any schema up to
// the current SchemaVersion), diffs
// two of them metric-by-metric against configurable noise bands, and
// maintains the append-only BENCH_history.jsonl trajectory. fpbench's
// compare mode and the make bench-gate CI hook are thin wrappers over
// this package, so the regression logic itself is unit-testable.
package benchcmp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"fpstudy/internal/runlog"
	"fpstudy/internal/telemetry"
)

// SchemaVersion is the BENCH_pipeline.json document version this
// package reads and writes.
//
// History:
//
//	1 (implicit, field absent) — tool/timestamp/seed/host/runs with
//	  per-run best_seconds, respondents_per_sec, speedup_vs_serial.
//	2 — adds "schema_version" itself and per-run "spans": the stage
//	  span breakdown (generate-main / generate-students / calibrate /
//	  grade, with per-stage seconds, items, items/sec) of the best rep.
//	3 — "speedup_vs_serial" is omitted (instead of a meaningless 0)
//	  when no workers=1 baseline was timed for the same n; adds per-run
//	  memory statistics from runtime.ReadMemStats deltas over the best
//	  rep: "allocs_per_respondent", "total_alloc_mb" (MiB),
//	  "gc_pause_total_ms", "gc_count". The pipeline is timed
//	  ColumnarOnly (columnar generation + grading, no row-view
//	  materialization) — the configuration large cohorts run.
//	4 — adds the top-level "io" array: dataset serialization
//	  benchmarks, one entry per (n, format, op) with best_seconds, the
//	  on-disk byte size, mb_per_sec and respondents_per_sec. Formats
//	  are "binary" (the FPDS shard codec), "json" (columnar
//	  WriteJSON / streaming DecodeJSON), and "json-rows" (the legacy
//	  whole-document survey.DecodeDataset row decoder — the baseline
//	  the binary decoder is measured against; decode only). io
//	  throughput is gated by Compare under the throughput band.
//	5 — adds "host.serial_host": true when the report was measured
//	  with GOMAXPROCS=1, where every -workers value degenerates to a
//	  serial run and scaling numbers say nothing about the code.
//	  Compare additionally gates scaling within the NEW report: at
//	  every n with both a workers=1 and a workers=0 run, the all-cores
//	  run must not be slower than serial beyond the throughput band
//	  (metric "scaling_all_vs_serial"). The default -workers sweep
//	  grew from {1, 0} to {1, 2, 4, 0} so the full curve is recorded.
//	6 — adds the "latency" array to pipeline runs and io entries:
//	  per-stage latency quantiles (p50/p90/p99/p999 in ns, with
//	  observation counts) from the telemetry.LatencyHist observatory,
//	  accumulated over all reps of the configuration (pipeline runs
//	  carry the block-level pipeline stages; binary io entries carry
//	  the FPDS per-block codec stages). Compare gates each stage's p99
//	  under the latency band, skipping stages whose p99 sits below the
//	  absolute floor in both reports (timer noise, mirroring the v5 io
//	  floor) or whose observation count is below the minimum in either
//	  (quantiles of a handful of samples are not stable).
//	7 — adds the top-level "query" array: vectorized query-engine
//	  benchmarks, one entry per (n, mode, name, workers) where mode is
//	  "mem" (in-memory DatasetSource) or "stream" (out-of-core
//	  ShardSource over an .fpds file) and name identifies the canned
//	  expression (scan_mean_score, filtered_count, grouped_mean).
//	  Entries carry best_seconds, respondents_per_sec, and the
//	  query_block stage latency quantiles. Compare gates query
//	  throughput under the throughput band (with the io timing floor)
//	  and query stage p99 under the latency band. Reports without the
//	  section (v6 and older) compare cleanly — the query legs simply
//	  contribute no deltas.
//	8 — adds the top-level "vcs" object (full commit hash, commit
//	  time, dirty-tree flag, from the toolchain's build-info stamp via
//	  runtime/debug.ReadBuildInfo) and carries it into every
//	  BENCH_history.jsonl line, so a trajectory entry names the exact
//	  code it measured — "host variance" claims become checkable
//	  against the revision and host fingerprint instead of asserted.
//	  Absent from go-run/unstamped builds and from all older entries;
//	  readers tolerate the omission (nil).
//	9 — adds the top-level "distrib" array: multi-process pipeline
//	  benchmarks, one entry per (n, procs) timing the full distributed
//	  generation+grading leg (coordinator spawn, worker processes,
//	  frame IPC, block-aligned merge) at that process count. Compare
//	  gates distrib throughput under the throughput band and gates the
//	  multi-process scaling curve (procs>1 >= procs=1 per n) the same
//	  way the in-process workers gate does — except on serial_host
//	  reports, where P processes share one core and the curve measures
//	  the host, not the code (the in-process gate stays active there
//	  because workers are clamped to 1 and trivially equal; process
//	  fan-out is not clamped and pays real redundant work per process).
//	  Reports without the section (v8 and older) compare cleanly.
const SchemaVersion = 9

// Host identifies the benchmarking machine.
type Host struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	// SerialHost tags reports measured with GOMAXPROCS=1: parallel.Workers
	// clamps every worker count to GOMAXPROCS, so all "parallel" legs of
	// such a report are really serial runs and its scaling curve is a
	// property of the host, not the code. fpbench sets it and prints a
	// loud warning; readers of the trajectory should skip scaling
	// conclusions from tagged entries.
	SerialHost bool `json:"serial_host,omitempty"`
}

// Run is one timed pipeline execution configuration.
type Run struct {
	N                 int     `json:"n"`
	Workers           int     `json:"workers"`
	Reps              int     `json:"reps"`
	BestSeconds       float64 `json:"best_seconds"`
	RespondentsPerSec float64 `json:"respondents_per_sec"`
	// SpeedupVsSerial compares against the workers=1 run of the same n
	// (1.0 when this is that run). It is omitted entirely when no
	// workers=1 baseline was timed for this n — a missing baseline is
	// not a measurement of 0.
	SpeedupVsSerial *float64 `json:"speedup_vs_serial,omitempty"`
	// Memory statistics: runtime.ReadMemStats deltas over the best rep.
	AllocsPerRespondent float64 `json:"allocs_per_respondent"`
	TotalAllocMB        float64 `json:"total_alloc_mb"`
	GCPauseTotalMS      float64 `json:"gc_pause_total_ms"`
	GCCount             uint32  `json:"gc_count"`
	// Spans is the stage breakdown of the best (fastest) rep, so slow
	// stages can be attributed without rerunning under a profiler.
	Spans []telemetry.SpanSnapshot `json:"spans"`
	// Latency holds per-stage latency quantiles accumulated over every
	// rep of this configuration (more reps mean more observations, so
	// the tails are pooled rather than taken from the best rep alone).
	Latency []StageLatency `json:"latency,omitempty"`
}

// StageLatency is the quantile summary of one instrumented stage for
// one run configuration: the stage name is the latency metric name
// without its "latency." prefix (e.g. "sample_block",
// "fpds_decode_block"). Quantiles are estimated from the log-linear
// bucket geometry (≤ ~3.1% relative error; see telemetry.LatencyHist).
type StageLatency struct {
	Stage  string  `json:"stage"`
	Count  int64   `json:"count"`
	P50NS  float64 `json:"p50_ns"`
	P90NS  float64 `json:"p90_ns"`
	P99NS  float64 `json:"p99_ns"`
	P999NS float64 `json:"p999_ns"`
}

// IORun is one timed dataset-serialization configuration: encoding or
// decoding one cohort in one format. Throughput is reported both as
// raw bandwidth (MB/s over the serialized size) and as domain
// throughput (respondents/sec), because format changes move the two
// in different directions — a denser format can lose MB/s while
// gaining respondents/sec.
type IORun struct {
	N      int    `json:"n"`
	Format string `json:"format"` // "binary", "json", or "json-rows"
	Op     string `json:"op"`     // "encode" or "decode"
	Reps   int    `json:"reps"`
	// Bytes is the serialized dataset size (identical across reps — the
	// codecs are deterministic).
	Bytes             int64   `json:"bytes"`
	BestSeconds       float64 `json:"best_seconds"`
	MBPerSec          float64 `json:"mb_per_sec"`
	RespondentsPerSec float64 `json:"respondents_per_sec"`
	// Latency holds the per-block codec stage quantiles accumulated
	// over every rep of this operation (binary entries observe the FPDS
	// encode/decode block histograms; json entries have none).
	Latency []StageLatency `json:"latency,omitempty"`
}

// QueryRun is one timed query-engine configuration: a canned
// expression executed over one cohort size in one mode. "mem" runs
// scan the in-memory columns zero-copy; "stream" runs scan an .fpds
// shard block-at-a-time off disk (the out-of-core path, whose heap is
// bounded by block size x workers). Workers follows the pipeline
// convention: 0 means GOMAXPROCS.
type QueryRun struct {
	N       int    `json:"n"`
	Mode    string `json:"mode"` // "mem" or "stream"
	Name    string `json:"name"` // canned expression id
	Workers int    `json:"workers"`
	Reps    int    `json:"reps"`
	// Selected is the number of respondents the filter passed (identical
	// across reps and modes — the engine is deterministic).
	Selected          int64   `json:"selected"`
	BestSeconds       float64 `json:"best_seconds"`
	RespondentsPerSec float64 `json:"respondents_per_sec"`
	// Latency carries the query_block stage quantiles accumulated over
	// every rep of this configuration.
	Latency []StageLatency `json:"latency,omitempty"`
}

// DistribRun is one timed multi-process pipeline configuration: the
// full distributed generation+grading of an n-respondent cohort
// across Procs worker processes (schema v9+). WorkersPerProc follows
// the pipeline convention: 0 means each worker process uses its
// GOMAXPROCS.
type DistribRun struct {
	N                 int     `json:"n"`
	Procs             int     `json:"procs"`
	WorkersPerProc    int     `json:"workers_per_proc"`
	Reps              int     `json:"reps"`
	BestSeconds       float64 `json:"best_seconds"`
	RespondentsPerSec float64 `json:"respondents_per_sec"`
}

// StageLatencyFromSnapshot converts a telemetry latency snapshot
// (typically the Sub of two registry snapshots bracketing a
// configuration's reps) into the report form.
func StageLatencyFromSnapshot(stage string, s telemetry.LatencySnapshot) StageLatency {
	return StageLatency{
		Stage: stage, Count: s.Count,
		P50NS: s.P50NS, P90NS: s.P90NS, P99NS: s.P99NS, P999NS: s.P999NS,
	}
}

// Report is the BENCH_pipeline.json document.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	Tool          string `json:"tool"`
	Timestamp     string `json:"timestamp"`
	Seed          int64  `json:"seed"`
	Host          Host   `json:"host"`
	// VCS is the source revision the measuring binary was built from
	// (schema v8+; nil for older reports and unstamped builds).
	VCS  *runlog.VCS `json:"vcs,omitempty"`
	Runs []Run       `json:"runs"`
	// IO holds the dataset serialization benchmarks (schema v4+; absent
	// from older reports and from runs invoked with -io=false).
	IO []IORun `json:"io,omitempty"`
	// Query holds the query-engine benchmarks (schema v7+; absent from
	// older reports and from runs invoked with -query=false).
	Query []QueryRun `json:"query,omitempty"`
	// Distrib holds the multi-process pipeline benchmarks (schema v9+;
	// absent from older reports and from runs invoked with an empty
	// -distribprocs).
	Distrib []DistribRun `json:"distrib,omitempty"`
}

// Parse decodes a BENCH_pipeline.json document.
func Parse(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchcmp: parse report: %w", err)
	}
	if r.SchemaVersion > SchemaVersion {
		return nil, fmt.Errorf("benchcmp: report schema v%d is newer than supported v%d", r.SchemaVersion, SchemaVersion)
	}
	return &r, nil
}

// Load reads and decodes a BENCH_pipeline.json file.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// NSizes returns the distinct cohort sizes the report timed, ascending.
func (r *Report) NSizes() []int {
	seen := map[int]bool{}
	var out []int
	for _, run := range r.Runs {
		if !seen[run.N] {
			seen[run.N] = true
			out = append(out, run.N)
		}
	}
	sort.Ints(out)
	return out
}

// MissingNSizes returns the cohort sizes present in old but absent
// from new, ascending — the sizes an overwrite would silently drop
// from the benchmark trajectory. Empty when new covers old.
func MissingNSizes(old, new *Report) []int {
	have := map[int]bool{}
	for _, run := range new.Runs {
		have[run.N] = true
	}
	var missing []int
	for _, n := range old.NSizes() {
		if !have[n] {
			missing = append(missing, n)
		}
	}
	return missing
}

// Bands are the relative noise tolerances of a comparison: a metric
// must move beyond its band (and beyond its absolute floor, where one
// exists) in the bad direction to count as a regression. Zero values
// mean "use the default for this band".
type Bands struct {
	// Throughput is the tolerated relative drop in respondents_per_sec
	// (0.05 = 5%).
	Throughput float64
	// Allocs is the tolerated relative growth in allocs_per_respondent.
	Allocs float64
	// AllocsFloor is the minimum absolute growth (allocations per
	// respondent) that can count as a regression — relative bands alone
	// would flag 0.05 → 0.12 allocs/respondent, which is noise.
	AllocsFloor float64
	// GCPause is the tolerated relative growth in gc_pause_total_ms.
	GCPause float64
	// GCPauseFloorMS is the minimum absolute pause growth (ms) that can
	// count as a regression.
	GCPauseFloorMS float64
	// IOFloorSeconds is the minimum best_seconds an io run must reach
	// (in either report) for its throughput to gate: sub-millisecond
	// serializations of tiny cohorts sit below the timer noise floor,
	// where a ±10% "change" is jitter, not a measurement. Such deltas
	// are still reported, never regressions.
	IOFloorSeconds float64
	// LatencyP99 is the tolerated relative growth in a stage's p99
	// latency (0.25 = 25%). Tail quantiles are inherently noisier than
	// best-of-reps throughput, so the default band is wider.
	LatencyP99 float64
	// LatencyFloorNS is the minimum p99 (ns) a stage must reach in at
	// least one report for it to gate: below it, a p99 "regression" is
	// timer resolution and scheduler jitter, not code. Mirrors
	// IOFloorSeconds. Sub-floor deltas are reported, never regressions.
	LatencyFloorNS float64
	// LatencyMinCount is the minimum observation count a stage needs in
	// BOTH reports for its p99 to gate — the p99 of a handful of
	// samples is an order statistic of noise. Stages below it are
	// reported, never regressions.
	LatencyMinCount int64
}

// DefaultBands are the bands the bench-gate runs with: 5% throughput,
// 10% allocations (floor: one allocation per respondent), 50% GC pause
// (floor: 5ms) — GC pause totals are by far the noisiest of the three —
// a 1ms io timing floor, and a 25% p99 latency band gated only on
// stages with p99 ≥ 100µs and ≥ 32 observations on both sides.
func DefaultBands() Bands {
	return Bands{
		Throughput:      0.05,
		Allocs:          0.10,
		AllocsFloor:     1.0,
		GCPause:         0.50,
		GCPauseFloorMS:  5.0,
		IOFloorSeconds:  0.001,
		LatencyP99:      0.25,
		LatencyFloorNS:  100_000,
		LatencyMinCount: 32,
	}
}

// withDefaults fills zero fields from DefaultBands.
func (b Bands) withDefaults() Bands {
	d := DefaultBands()
	if b.Throughput == 0 {
		b.Throughput = d.Throughput
	}
	if b.Allocs == 0 {
		b.Allocs = d.Allocs
	}
	if b.AllocsFloor == 0 {
		b.AllocsFloor = d.AllocsFloor
	}
	if b.GCPause == 0 {
		b.GCPause = d.GCPause
	}
	if b.GCPauseFloorMS == 0 {
		b.GCPauseFloorMS = d.GCPauseFloorMS
	}
	if b.IOFloorSeconds == 0 {
		b.IOFloorSeconds = d.IOFloorSeconds
	}
	if b.LatencyP99 == 0 {
		b.LatencyP99 = d.LatencyP99
	}
	if b.LatencyFloorNS == 0 {
		b.LatencyFloorNS = d.LatencyFloorNS
	}
	if b.LatencyMinCount == 0 {
		b.LatencyMinCount = d.LatencyMinCount
	}
	return b
}

// Delta is one metric of one configuration, compared across two
// reports. Pipeline deltas identify their configuration by (N,
// Workers); io deltas by (N, Format, Op), with Workers zero and
// Format/Op set; query deltas by (N, Mode, Name, Workers); latency
// deltas additionally carry Stage. Change is the relative movement
// ((new-old)/old), signed so that positive is "more of the metric"
// regardless of direction-of-goodness.
type Delta struct {
	N          int     `json:"n"`
	Workers    int     `json:"workers"`
	Format     string  `json:"format,omitempty"`
	Op         string  `json:"op,omitempty"`
	Mode       string  `json:"mode,omitempty"`
	Name       string  `json:"name,omitempty"`
	Stage      string  `json:"stage,omitempty"`
	Procs      int     `json:"procs,omitempty"`
	Metric     string  `json:"metric"`
	Old        float64 `json:"old"`
	New        float64 `json:"new"`
	Change     float64 `json:"change"`
	Regression bool    `json:"regression"`
}

// IsIO reports whether the delta came from the io section.
func (d Delta) IsIO() bool { return d.Format != "" }

// IsQuery reports whether the delta came from the query section.
func (d Delta) IsQuery() bool { return d.Name != "" }

// IsLatency reports whether the delta came from the latency section.
func (d Delta) IsLatency() bool { return d.Stage != "" }

// IsDistrib reports whether the delta came from the distrib section
// (distrib runs always have procs >= 1).
func (d Delta) IsDistrib() bool { return d.Procs != 0 }

// Config renders the delta's configuration for display:
// "n=199/workers=1" for pipeline deltas, "n=199/io/binary/decode" for
// io deltas, "n=199/query/stream/grouped_mean/workers=0" for query
// deltas, with "/latency/<stage>" appended for latency deltas of any
// section.
func (d Delta) Config() string {
	var cfg string
	switch {
	case d.IsIO():
		cfg = fmt.Sprintf("n=%d/io/%s/%s", d.N, d.Format, d.Op)
	case d.IsQuery():
		cfg = fmt.Sprintf("n=%d/query/%s/%s/workers=%d", d.N, d.Mode, d.Name, d.Workers)
	case d.IsDistrib():
		cfg = fmt.Sprintf("n=%d/distrib/procs=%d", d.N, d.Procs)
	default:
		cfg = fmt.Sprintf("n=%d/workers=%d", d.N, d.Workers)
	}
	if d.IsLatency() {
		cfg += "/latency/" + d.Stage
	}
	return cfg
}

// Result is the outcome of comparing two reports.
type Result struct {
	// Deltas holds one entry per (configuration, metric) present in
	// both reports, in old-report run order.
	Deltas []Delta
	// OnlyOld / OnlyNew list configurations ("n=199/workers=1") present
	// in exactly one report; they are reported but never gate.
	OnlyOld []string
	OnlyNew []string
}

// Regressions returns the deltas that exceeded their band.
func (r *Result) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// configKey identifies one timed pipeline configuration.
type configKey struct{ n, workers int }

// ioKey identifies one timed serialization configuration.
type ioKey struct {
	n          int
	format, op string
}

// queryKey identifies one timed query-engine configuration.
type queryKey struct {
	n          int
	mode, name string
	workers    int
}

// distribKey identifies one timed multi-process configuration.
type distribKey struct{ n, procs int }

// relChange returns (new-old)/old, and 0 when old is 0 (a metric
// appearing from nothing has no meaningful relative change; the
// absolute floors handle that case).
func relChange(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old
}

// Compare diffs two reports metric-by-metric. For every (n, workers)
// configuration present in both, it emits deltas for throughput
// (respondents_per_sec, regression = drop beyond the band),
// allocations per respondent and GC pause total (regression = growth
// beyond both the relative band and the absolute floor). Matching is
// by configuration, not position, so reordered or partially
// overlapping reports compare correctly.
func Compare(old, new *Report, bands Bands) *Result {
	bands = bands.withDefaults()
	newRuns := map[configKey]Run{}
	for _, run := range new.Runs {
		newRuns[configKey{run.N, run.Workers}] = run
	}
	oldSeen := map[configKey]bool{}

	res := &Result{}
	for _, o := range old.Runs {
		key := configKey{o.N, o.Workers}
		oldSeen[key] = true
		n, ok := newRuns[key]
		if !ok {
			res.OnlyOld = append(res.OnlyOld, fmt.Sprintf("n=%d/workers=%d", o.N, o.Workers))
			continue
		}

		thr := relChange(o.RespondentsPerSec, n.RespondentsPerSec)
		res.Deltas = append(res.Deltas, Delta{
			N: o.N, Workers: o.Workers, Metric: "respondents_per_sec",
			Old: o.RespondentsPerSec, New: n.RespondentsPerSec, Change: thr,
			Regression: thr < -bands.Throughput,
		})

		alloc := relChange(o.AllocsPerRespondent, n.AllocsPerRespondent)
		allocGrowth := n.AllocsPerRespondent - o.AllocsPerRespondent
		res.Deltas = append(res.Deltas, Delta{
			N: o.N, Workers: o.Workers, Metric: "allocs_per_respondent",
			Old: o.AllocsPerRespondent, New: n.AllocsPerRespondent, Change: alloc,
			Regression: allocGrowth > bands.AllocsFloor &&
				(alloc > bands.Allocs || o.AllocsPerRespondent == 0),
		})

		gc := relChange(o.GCPauseTotalMS, n.GCPauseTotalMS)
		gcGrowth := n.GCPauseTotalMS - o.GCPauseTotalMS
		res.Deltas = append(res.Deltas, Delta{
			N: o.N, Workers: o.Workers, Metric: "gc_pause_total_ms",
			Old: o.GCPauseTotalMS, New: n.GCPauseTotalMS, Change: gc,
			Regression: gcGrowth > bands.GCPauseFloorMS &&
				(gc > bands.GCPause || o.GCPauseTotalMS == 0),
		})

		res.Deltas = append(res.Deltas, latencyDeltas(o, n, bands)...)
	}
	for _, n := range new.Runs {
		if !oldSeen[configKey{n.N, n.Workers}] {
			res.OnlyNew = append(res.OnlyNew, fmt.Sprintf("n=%d/workers=%d", n.N, n.Workers))
		}
	}

	// io section: both throughput views gate under the throughput band —
	// mb_per_sec is the bandwidth the walkthroughs quote, and
	// respondents_per_sec is what survives a format change that moves
	// the byte size. Byte size itself is reported via the deltas but
	// never gates (a format revision legitimately changes it).
	newIO := map[ioKey]IORun{}
	for _, run := range new.IO {
		newIO[ioKey{run.N, run.Format, run.Op}] = run
	}
	ioSeen := map[ioKey]bool{}
	for _, o := range old.IO {
		key := ioKey{o.N, o.Format, o.Op}
		ioSeen[key] = true
		n, ok := newIO[key]
		if !ok {
			res.OnlyOld = append(res.OnlyOld, Delta{N: o.N, Format: o.Format, Op: o.Op}.Config())
			continue
		}
		// Below the timing floor in both reports, throughput "changes"
		// are clock jitter — report them, never gate on them.
		measurable := o.BestSeconds >= bands.IOFloorSeconds ||
			n.BestSeconds >= bands.IOFloorSeconds
		mb := relChange(o.MBPerSec, n.MBPerSec)
		res.Deltas = append(res.Deltas, Delta{
			N: o.N, Format: o.Format, Op: o.Op, Metric: "mb_per_sec",
			Old: o.MBPerSec, New: n.MBPerSec, Change: mb,
			Regression: measurable && mb < -bands.Throughput,
		})
		rps := relChange(o.RespondentsPerSec, n.RespondentsPerSec)
		res.Deltas = append(res.Deltas, Delta{
			N: o.N, Format: o.Format, Op: o.Op, Metric: "respondents_per_sec",
			Old: o.RespondentsPerSec, New: n.RespondentsPerSec, Change: rps,
			Regression: measurable && rps < -bands.Throughput,
		})
		res.Deltas = append(res.Deltas, diffStageLatency(o.Latency, n.Latency, bands,
			Delta{N: o.N, Format: o.Format, Op: o.Op})...)
	}
	for _, n := range new.IO {
		if !ioSeen[ioKey{n.N, n.Format, n.Op}] {
			res.OnlyNew = append(res.OnlyNew, Delta{N: n.N, Format: n.Format, Op: n.Op}.Config())
		}
	}

	// query section: engine throughput gates under the throughput band
	// with the io timing floor (sub-millisecond scans of tiny cohorts
	// are clock jitter); the query_block stage p99 gates under the
	// latency band. Reports without the section contribute nothing.
	newQuery := map[queryKey]QueryRun{}
	for _, run := range new.Query {
		newQuery[queryKey{run.N, run.Mode, run.Name, run.Workers}] = run
	}
	querySeen := map[queryKey]bool{}
	for _, o := range old.Query {
		key := queryKey{o.N, o.Mode, o.Name, o.Workers}
		querySeen[key] = true
		n, ok := newQuery[key]
		if !ok {
			res.OnlyOld = append(res.OnlyOld,
				Delta{N: o.N, Mode: o.Mode, Name: o.Name, Workers: o.Workers}.Config())
			continue
		}
		measurable := o.BestSeconds >= bands.IOFloorSeconds ||
			n.BestSeconds >= bands.IOFloorSeconds
		rps := relChange(o.RespondentsPerSec, n.RespondentsPerSec)
		res.Deltas = append(res.Deltas, Delta{
			N: o.N, Mode: o.Mode, Name: o.Name, Workers: o.Workers,
			Metric: "respondents_per_sec",
			Old:    o.RespondentsPerSec, New: n.RespondentsPerSec, Change: rps,
			Regression: measurable && rps < -bands.Throughput,
		})
		res.Deltas = append(res.Deltas, diffStageLatency(o.Latency, n.Latency, bands,
			Delta{N: o.N, Mode: o.Mode, Name: o.Name, Workers: o.Workers})...)
	}
	for _, n := range new.Query {
		if !querySeen[queryKey{n.N, n.Mode, n.Name, n.Workers}] {
			res.OnlyNew = append(res.OnlyNew,
				Delta{N: n.N, Mode: n.Mode, Name: n.Name, Workers: n.Workers}.Config())
		}
	}

	// distrib section: multi-process pipeline throughput gates under
	// the throughput band. Reports without the section (v8 and older)
	// contribute nothing.
	newDistrib := map[distribKey]DistribRun{}
	for _, run := range new.Distrib {
		newDistrib[distribKey{run.N, run.Procs}] = run
	}
	distribSeen := map[distribKey]bool{}
	for _, o := range old.Distrib {
		key := distribKey{o.N, o.Procs}
		distribSeen[key] = true
		n, ok := newDistrib[key]
		if !ok {
			res.OnlyOld = append(res.OnlyOld, Delta{N: o.N, Procs: o.Procs}.Config())
			continue
		}
		rps := relChange(o.RespondentsPerSec, n.RespondentsPerSec)
		res.Deltas = append(res.Deltas, Delta{
			N: o.N, Procs: o.Procs, Metric: "respondents_per_sec",
			Old: o.RespondentsPerSec, New: n.RespondentsPerSec, Change: rps,
			Regression: rps < -bands.Throughput,
		})
	}
	for _, n := range new.Distrib {
		if !distribSeen[distribKey{n.N, n.Procs}] {
			res.OnlyNew = append(res.OnlyNew, Delta{N: n.N, Procs: n.Procs}.Config())
		}
	}

	// Scaling gate: a property of the new report alone — parallel must
	// never lose to serial. The old report only establishes history; the
	// claim "workers=all >= workers=1" has to hold on every fresh run.
	res.Deltas = append(res.Deltas, ScalingDeltas(new, bands)...)
	res.Deltas = append(res.Deltas, DistribScalingDeltas(new, bands)...)
	return res
}

// latencyDeltas diffs the per-stage p99 quantiles of one matched
// pipeline configuration.
func latencyDeltas(o, n Run, bands Bands) []Delta {
	return diffStageLatency(o.Latency, n.Latency, bands,
		Delta{N: o.N, Workers: o.Workers})
}

// diffStageLatency diffs two per-stage quantile lists under the
// latency bands; base carries the configuration identity (N/Workers or
// N/Format/Op) every emitted delta inherits. A stage gates only when
// it is measurable: its p99 reaches the absolute floor in at least one
// report (below that, "growth" is timer resolution) and its
// observation count reaches the minimum in both (the p99 of a few
// samples is an order statistic of scheduler noise, mirroring the v5
// io floor). Stages present in only one report are skipped silently —
// instrumentation coverage changes across schema versions, and
// OnlyOld/OnlyNew would drown in stage names.
func diffStageLatency(oldL, newL []StageLatency, bands Bands, base Delta) []Delta {
	newStages := map[string]StageLatency{}
	for _, s := range newL {
		newStages[s.Stage] = s
	}
	var out []Delta
	for _, os := range oldL {
		ns, ok := newStages[os.Stage]
		if !ok {
			continue
		}
		measurable := (os.P99NS >= bands.LatencyFloorNS || ns.P99NS >= bands.LatencyFloorNS) &&
			os.Count >= bands.LatencyMinCount && ns.Count >= bands.LatencyMinCount
		change := relChange(os.P99NS, ns.P99NS)
		d := base
		d.Stage = os.Stage
		d.Metric = "p99_ns"
		d.Old = os.P99NS
		d.New = ns.P99NS
		d.Change = change
		d.Regression = measurable && change > bands.LatencyP99
		out = append(out, d)
	}
	return out
}

// ScalingDeltas checks the parallel-scaling invariant of one report:
// at every cohort size with both a serial (workers=1) and an all-cores
// (workers=0) run, the all-cores run must be at least as fast, within
// the throughput noise band. The returned deltas use metric
// "scaling_all_vs_serial" with Old = serial and New = all-cores
// respondents/sec; a violation means adding workers made the pipeline
// slower — the scaling cliff the batched kernels exist to prevent.
// Reports tagged serial_host still gate (their "all-cores" run is the
// same serial run, so the invariant holds trivially within noise).
func ScalingDeltas(r *Report, bands Bands) []Delta {
	bands = bands.withDefaults()
	serial := map[int]Run{}
	for _, run := range r.Runs {
		if run.Workers == 1 {
			serial[run.N] = run
		}
	}
	var out []Delta
	for _, run := range r.Runs {
		if run.Workers != 0 {
			continue
		}
		s, ok := serial[run.N]
		if !ok {
			continue
		}
		change := relChange(s.RespondentsPerSec, run.RespondentsPerSec)
		out = append(out, Delta{
			N: run.N, Workers: 0, Metric: "scaling_all_vs_serial",
			Old: s.RespondentsPerSec, New: run.RespondentsPerSec, Change: change,
			Regression: change < -bands.Throughput,
		})
	}
	return out
}

// DistribScalingDeltas checks the multi-process scaling invariant of
// one report: at every cohort size with a procs=1 run, each procs>1
// run must be at least as fast, within the throughput noise band —
// the distributed analogue of ScalingDeltas. The returned deltas use
// metric "distrib_scaling_vs_serial" with Old = procs=1 and New =
// procs=P respondents/sec.
//
// Unlike the in-process gate, serial_host reports are waived: on a
// GOMAXPROCS=1 host the in-process worker pool is clamped so
// workers=0 IS the serial run (trivially equal), but process fan-out
// is not clamped — P processes genuinely time-share one core and each
// pays its own per-process setup (answer-key derivation, runtime
// start), so the curve measures the host, not the code. The deltas
// are still emitted for the record; they just never gate there.
func DistribScalingDeltas(r *Report, bands Bands) []Delta {
	bands = bands.withDefaults()
	serial := map[int]DistribRun{}
	for _, run := range r.Distrib {
		if run.Procs == 1 {
			serial[run.N] = run
		}
	}
	var out []Delta
	for _, run := range r.Distrib {
		if run.Procs <= 1 {
			continue
		}
		s, ok := serial[run.N]
		if !ok {
			continue
		}
		change := relChange(s.RespondentsPerSec, run.RespondentsPerSec)
		out = append(out, Delta{
			N: run.N, Procs: run.Procs, Metric: "distrib_scaling_vs_serial",
			Old: s.RespondentsPerSec, New: run.RespondentsPerSec, Change: change,
			Regression: change < -bands.Throughput && !r.Host.SerialHost,
		})
	}
	return out
}

// HistoryRun is the compact per-configuration record kept in the
// benchmark trajectory (the full span trees stay in the report files).
type HistoryRun struct {
	N                   int     `json:"n"`
	Workers             int     `json:"workers"`
	BestSeconds         float64 `json:"best_seconds"`
	RespondentsPerSec   float64 `json:"respondents_per_sec"`
	AllocsPerRespondent float64 `json:"allocs_per_respondent"`
	GCPauseTotalMS      float64 `json:"gc_pause_total_ms"`
	GCCount             uint32  `json:"gc_count"`
	// Latency carries the per-stage quantiles verbatim (StageLatency
	// is already compact), so the trajectory records tail behaviour
	// alongside throughput.
	Latency []StageLatency `json:"latency,omitempty"`
}

// HistoryEntry is one line of BENCH_history.jsonl: one benchmark run,
// appended at comparison time so the trajectory accretes across
// commits and machines.
type HistoryEntry struct {
	Timestamp string `json:"timestamp"`
	Appended  string `json:"appended"` // when this line was written
	Seed      int64  `json:"seed"`
	Host      Host   `json:"host"`
	// VCS names the measured revision (v8+ entries; nil before — old
	// lines parse fine, their provenance is simply unknown).
	VCS  *runlog.VCS  `json:"vcs,omitempty"`
	Runs []HistoryRun `json:"runs"`
	// IO carries the serialization benchmarks verbatim — IORun is
	// already compact (no span trees to strip).
	IO []IORun `json:"io,omitempty"`
	// Query carries the query-engine benchmarks verbatim (also compact).
	Query []QueryRun `json:"query,omitempty"`
	// Distrib carries the multi-process benchmarks verbatim (v9+
	// entries; absent before).
	Distrib []DistribRun `json:"distrib,omitempty"`
}

// HistoryFromReport compacts a report into its trajectory record.
// appendedAt stamps when the line is written (distinct from the
// report's own timestamp, which records when it was measured).
func HistoryFromReport(r *Report, appendedAt time.Time) HistoryEntry {
	e := HistoryEntry{
		Timestamp: r.Timestamp,
		Appended:  appendedAt.UTC().Format(time.RFC3339),
		Seed:      r.Seed,
		Host:      r.Host,
		VCS:       r.VCS,
	}
	for _, run := range r.Runs {
		e.Runs = append(e.Runs, HistoryRun{
			N: run.N, Workers: run.Workers,
			BestSeconds:         run.BestSeconds,
			RespondentsPerSec:   run.RespondentsPerSec,
			AllocsPerRespondent: run.AllocsPerRespondent,
			GCPauseTotalMS:      run.GCPauseTotalMS,
			GCCount:             run.GCCount,
			Latency:             run.Latency,
		})
	}
	e.IO = append(e.IO, r.IO...)
	e.Query = append(e.Query, r.Query...)
	e.Distrib = append(e.Distrib, r.Distrib...)
	return e
}

// AppendHistory appends one JSONL line for the report to path
// (O_APPEND: concurrent appenders interleave whole lines, and an
// existing trajectory is never rewritten).
func AppendHistory(path string, r *Report, appendedAt time.Time) error {
	line, err := json.Marshal(HistoryFromReport(r, appendedAt))
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(append(line, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// ReadHistory parses a BENCH_history.jsonl trajectory, oldest first.
// Blank lines are skipped; a malformed line is an error (the file is
// machine-written).
func ReadHistory(path string) ([]HistoryEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []HistoryEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e HistoryEntry
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("benchcmp: %s:%d: %w", path, lineNo, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadHistoryLenient parses a trajectory like ReadHistory but skips
// unparsable lines instead of failing: blank lines, malformed JSON,
// and a truncated final line (a crashed appender leaves one with no
// trailing newline) are counted in skipped and dropped. Entries from
// any schema era parse — fields a version lacks are simply zero/nil —
// so one mixed v1..v9 file yields every readable record. This is what
// `fpstat trend` reads: a trajectory accreted over years must not
// become unreadable over its worst line.
func ReadHistoryLenient(path string) (entries []HistoryEntry, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e HistoryEntry
		if err := json.Unmarshal(line, &e); err != nil {
			skipped++
			continue
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return entries, skipped, nil
}
