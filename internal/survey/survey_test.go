package survey

import (
	"errors"
	"strings"
	"testing"
)

func sampleInstrument() *Instrument {
	return &Instrument{
		Title:   "Sample",
		Version: "1",
		Sections: []Section{
			{
				ID:    "s1",
				Title: "Section One",
				Questions: []Question{
					{ID: "q1", Prompt: "Pick one", Kind: SingleChoice, Options: []string{"a", "b"}},
					{ID: "q2", Prompt: "Pick many", Kind: MultiChoice, Options: []string{"x", "y", "z"}},
					{ID: "q3", Prompt: "True?", Kind: TrueFalse},
					{ID: "q4", Prompt: "Rate", Kind: Likert, Scale: 5},
				},
			},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := sampleInstrument().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Instrument)
	}{
		{"no title", func(i *Instrument) { i.Title = "" }},
		{"dup id", func(i *Instrument) { i.Sections[0].Questions[1].ID = "q1" }},
		{"empty id", func(i *Instrument) { i.Sections[0].Questions[0].ID = "" }},
		{"no options", func(i *Instrument) { i.Sections[0].Questions[0].Options = nil }},
		{"dup option", func(i *Instrument) { i.Sections[0].Questions[0].Options = []string{"a", "a"} }},
		{"bad likert", func(i *Instrument) { i.Sections[0].Questions[3].Scale = 1 }},
		{"tf with options", func(i *Instrument) { i.Sections[0].Questions[2].Options = []string{"a"} }},
		{"bad kind", func(i *Instrument) { i.Sections[0].Questions[0].Kind = "nope" }},
		{"empty section id", func(i *Instrument) { i.Sections[0].ID = "" }},
		{"no questions", func(i *Instrument) { i.Sections[0].Questions = nil }},
	}
	for _, c := range cases {
		ins := sampleInstrument()
		c.mutate(ins)
		if err := ins.Validate(); err == nil {
			t.Errorf("%s: validation passed, want error", c.name)
		}
	}
}

func TestValidateResponse(t *testing.T) {
	ins := sampleInstrument()
	good := Response{Token: "t", Answers: map[string]Answer{
		"q1": {Choice: "a"},
		"q2": {Choices: []string{"x", "z"}},
		"q3": {Choice: AnswerDontKnow},
		"q4": {Level: 3},
	}}
	if err := ins.ValidateResponse(good); err != nil {
		t.Fatal(err)
	}
	bad := []Response{
		{Answers: map[string]Answer{"zzz": {Choice: "a"}}},
		{Answers: map[string]Answer{"q1": {Choice: "nope"}}},
		{Answers: map[string]Answer{"q2": {Choices: []string{"nope"}}}},
		{Answers: map[string]Answer{"q3": {Choice: "maybe"}}},
		{Answers: map[string]Answer{"q4": {Level: 6}}},
		{Answers: map[string]Answer{"q4": {Level: -1, Choice: "x"}}},
	}
	for i, r := range bad {
		if err := ins.ValidateResponse(r); err == nil {
			t.Errorf("bad response %d validated", i)
		}
	}
	// Unanswered questions are fine.
	if err := ins.ValidateResponse(Response{}); err != nil {
		t.Fatal(err)
	}
	// AllowOther accepts unlisted options.
	ins.Sections[0].Questions[0].AllowOther = true
	if err := ins.ValidateResponse(Response{Answers: map[string]Answer{"q1": {Choice: "custom"}}}); err != nil {
		t.Fatal(err)
	}
}

func TestDatasetValidateAndAnonymize(t *testing.T) {
	ins := sampleInstrument()
	d := &Dataset{
		Instrument: "Sample",
		Responses: []Response{
			{Token: "alice@example.com", Answers: map[string]Answer{"q1": {Choice: "a"}}},
			{Token: "bob-ip-10.0.0.1", Answers: map[string]Answer{"q1": {Choice: "b"}}},
		},
	}
	if err := ins.ValidateDataset(d); err != nil {
		t.Fatal(err)
	}
	d.Anonymize()
	if d.Responses[0].Token != "r0001" || d.Responses[1].Token != "r0002" {
		t.Fatalf("tokens: %q %q", d.Responses[0].Token, d.Responses[1].Token)
	}
	wrong := &Dataset{Instrument: "Other"}
	if err := ins.ValidateDataset(wrong); err == nil {
		t.Fatal("wrong instrument accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	ins := sampleInstrument()
	data, err := EncodeInstrument(ins)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeInstrument(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Title != ins.Title || len(back.Questions()) != 4 {
		t.Fatal("instrument round trip")
	}
	// Invalid instruments fail decode.
	if _, err := DecodeInstrument([]byte(`{"title":""}`)); err == nil {
		t.Fatal("empty instrument decoded")
	}
	if _, err := DecodeInstrument([]byte(`{bad json`)); err == nil {
		t.Fatal("bad json decoded")
	}

	d := &Dataset{Instrument: "Sample", Responses: []Response{
		{Token: "r1", Answers: map[string]Answer{"q4": {Level: 2}}},
	}}
	dd, err := EncodeDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DecodeDataset(dd)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Responses[0].Answers["q4"].Level != 2 {
		t.Fatal("dataset round trip")
	}
}

func TestTally(t *testing.T) {
	ins := sampleInstrument()
	d := &Dataset{Instrument: "Sample", Responses: []Response{
		{Answers: map[string]Answer{"q1": {Choice: "a"}, "q2": {Choices: []string{"x", "y"}}, "q4": {Level: 5}}},
		{Answers: map[string]Answer{"q1": {Choice: "a"}, "q2": {Choices: []string{"x"}}}},
		{Answers: map[string]Answer{"q1": {Choice: "b"}}},
		{Answers: map[string]Answer{}},
	}}
	tal, err := ins.Tally(d, "q1")
	if err != nil {
		t.Fatal(err)
	}
	if tal["a"] != 2 || tal["b"] != 1 || tal["unanswered"] != 1 {
		t.Fatalf("q1 tally: %v", tal)
	}
	tal, _ = ins.Tally(d, "q2")
	if tal["x"] != 2 || tal["y"] != 1 {
		t.Fatalf("q2 tally: %v", tal)
	}
	tal, _ = ins.Tally(d, "q4")
	if tal["5"] != 1 || tal["unanswered"] != 3 {
		t.Fatalf("q4 tally: %v", tal)
	}
	if _, err := ins.Tally(d, "zzz"); err == nil {
		t.Fatal("unknown question tallied")
	}
}

func TestSortedKeys(t *testing.T) {
	ks := SortedKeys(map[string]int{"b": 1, "a": 2, "c": 3})
	if strings.Join(ks, "") != "abc" {
		t.Fatalf("keys: %v", ks)
	}
}

func TestFlattenCSV(t *testing.T) {
	ins := sampleInstrument()
	d := &Dataset{Instrument: "Sample", Responses: []Response{
		{Token: "r1", Answers: map[string]Answer{
			"q1": {Choice: "a"},
			"q2": {Choices: []string{"x", "z"}},
			"q3": {Choice: AnswerDontKnow},
			"q4": {Level: 4},
		}},
		{Token: "r2", Answers: map[string]Answer{}},
	}}
	csv := ins.FlattenCSV(d)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines: %d\n%s", len(lines), csv)
	}
	if lines[0] != "token,q1,q2,q3,q4" {
		t.Fatalf("header: %q", lines[0])
	}
	if lines[1] != "r1,a,x;z,dontknow,4" {
		t.Fatalf("row1: %q", lines[1])
	}
	if lines[2] != "r2,,,," {
		t.Fatalf("row2: %q", lines[2])
	}
}

func TestQuestionLookup(t *testing.T) {
	ins := sampleInstrument()
	if q, ok := ins.Question("q3"); !ok || q.Kind != TrueFalse {
		t.Fatal("lookup q3")
	}
	if _, ok := ins.Question("nope"); ok {
		t.Fatal("found nonexistent question")
	}
}

func TestWriteDatasetMatchesEncode(t *testing.T) {
	ds := &Dataset{
		Instrument: "Sample \"quoted\"",
		Version:    "1",
		Responses: []Response{
			{Token: "r0001", Answers: map[string]Answer{
				"q1": {Choice: "a"},
				"q2": {Choices: []string{"x", "z"}},
				"q4": {Level: 3},
			}},
			{Token: "r0002", Answers: map[string]Answer{
				"q3": {Choice: AnswerDontKnow},
			}},
		},
	}
	for _, d := range []*Dataset{ds, {Instrument: "Empty", Version: "2"}} {
		want, err := EncodeDataset(d)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := WriteDataset(&b, d); err != nil {
			t.Fatal(err)
		}
		if b.String() != string(want) {
			t.Errorf("WriteDataset output differs from EncodeDataset for %q:\n--- streamed\n%s\n--- encoded\n%s",
				d.Instrument, b.String(), want)
		}
	}
}

// TestDecodeDatasetErrors pins the structured decode diagnostics: a
// malformed dataset names the first offending respondent index and,
// when the damage is inside one answer, the question ID.
func TestDecodeDatasetErrors(t *testing.T) {
	mk := func(answers string) string {
		return `{"instrument":"I","version":"1","responses":[` +
			`{"token":"r0001","answers":{"q1":{"choice":"true"}}},` +
			`{"token":"r0002","answers":{` + answers + `}}]}`
	}
	cases := []struct {
		name, in       string
		wantRespondent int
		wantQuestion   string
	}{
		{"bad answer value", mk(`"q7":{"level":"high"}`), 1, "q7"},
		{"answer not an object", mk(`"q2":5`), 1, "q2"},
		{"response not an object", `{"responses":[{"token":"a","answers":{}},17]}`, 1, ""},
		{"document broken", `{"responses": 12}`, -1, ""},
	}
	for _, tc := range cases {
		_, err := DecodeDataset([]byte(tc.in))
		if err == nil {
			t.Fatalf("%s: decoded without error", tc.name)
		}
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Fatalf("%s: err is %T (%v), want *DecodeError", tc.name, err, err)
		}
		if de.Respondent != tc.wantRespondent || de.Question != tc.wantQuestion {
			t.Fatalf("%s: located respondent %d question %q, want %d %q (err: %v)",
				tc.name, de.Respondent, de.Question, tc.wantRespondent, tc.wantQuestion, err)
		}
		if de.Unwrap() == nil {
			t.Fatalf("%s: DecodeError lost its cause", tc.name)
		}
	}

	// A valid dataset still decodes.
	if _, err := DecodeDataset([]byte(mk(`"q2":{"level":3}`))); err != nil {
		t.Fatalf("valid dataset: %v", err)
	}
}
