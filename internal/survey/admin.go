package survey

import (
	"fmt"
	"math/rand"
)

// Administration is a seeded presentation plan for one sitting of the
// survey: the order in which questions are shown. The paper's design
// requirements motivate the structure:
//
//   - Sections are presented in instrument order (background first),
//     but questions *within* quiz sections are shuffled per sitting so
//     that considering one question cannot systematically anchor a
//     specific later one across the whole cohort.
//   - Background questions keep their authored order (they are factual
//     and order-insensitive, and a stable order reduces completion
//     time, supporting the low-time-commitment requirement).
type Administration struct {
	Seed  int64
	Order []string // question IDs in presentation order
}

// Administer builds the presentation plan. Sections whose ID appears in
// shuffleSections get a seeded within-section shuffle; all others keep
// authored order.
func (ins *Instrument) Administer(seed int64, shuffleSections ...string) Administration {
	shuffle := map[string]bool{}
	for _, s := range shuffleSections {
		shuffle[s] = true
	}
	rng := rand.New(rand.NewSource(seed))
	adm := Administration{Seed: seed}
	for _, sec := range ins.Sections {
		ids := make([]string, len(sec.Questions))
		for i, q := range sec.Questions {
			ids[i] = q.ID
		}
		if shuffle[sec.ID] {
			rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		}
		adm.Order = append(adm.Order, ids...)
	}
	return adm
}

// Validate checks that the plan covers exactly the instrument's
// questions, each once.
func (adm Administration) Validate(ins *Instrument) error {
	want := map[string]bool{}
	for _, q := range ins.Questions() {
		want[q.ID] = true
	}
	seen := map[string]bool{}
	for _, id := range adm.Order {
		if !want[id] {
			return fmt.Errorf("survey: plan includes unknown question %q", id)
		}
		if seen[id] {
			return fmt.Errorf("survey: plan repeats question %q", id)
		}
		seen[id] = true
	}
	if len(seen) != len(want) {
		return fmt.Errorf("survey: plan covers %d of %d questions", len(seen), len(want))
	}
	return nil
}

// Per-question completion-time estimates in seconds, by kind. These are
// deliberately generous; the paper's design bound is a 30-minute
// sitting.
var timeEstimateSeconds = map[Kind]int{
	SingleChoice: 20,
	MultiChoice:  35,
	TrueFalse:    45, // read a code snippet and think
	Likert:       15,
}

// EstimateMinutes returns the estimated completion time for the whole
// instrument, for checking the paper's "less than 30 minutes"
// requirement.
func (ins *Instrument) EstimateMinutes() float64 {
	total := 0
	for _, q := range ins.Questions() {
		total += timeEstimateSeconds[q.Kind]
	}
	return float64(total) / 60
}
