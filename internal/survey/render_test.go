package survey

import (
	"strings"
	"testing"
)

func TestRenderText(t *testing.T) {
	ins := sampleInstrument()
	ins.Sections[0].Description = "A short description of the section for participants."
	out := ins.RenderText()
	for _, want := range []string{
		"Sample", "Section One",
		"1. Pick one", "( ) a", "( ) b",
		"2. Pick many", "[ ] x",
		"3. True?", "( ) True   ( ) False   ( ) I don't know",
		"4. Rate", "1 ... 2 ... 3 ... 4 ... 5",
		"A short description",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTextAllowOther(t *testing.T) {
	ins := sampleInstrument()
	ins.Sections[0].Questions[0].AllowOther = true
	ins.Sections[0].Questions[1].AllowOther = true
	out := ins.RenderText()
	if strings.Count(out, "Other: ____") != 2 {
		t.Fatalf("AllowOther rendering:\n%s", out)
	}
}

func TestRenderMultilinePromptIndents(t *testing.T) {
	ins := &Instrument{
		Title: "T", Version: "1",
		Sections: []Section{{
			ID: "s", Title: "S",
			Questions: []Question{{
				ID:     "q",
				Prompt: "double x;\nassert(x == x);\n\nIs this always true?",
				Kind:   TrueFalse,
			}},
		}},
	}
	out := ins.RenderText()
	if !strings.Contains(out, "1. double x;\n   assert(x == x);") {
		t.Fatalf("snippet indentation:\n%s", out)
	}
}

func TestWrap(t *testing.T) {
	s := wrap("one two three four five", 9)
	lines := strings.Split(s, "\n")
	for _, l := range lines {
		if len(l) > 9 {
			t.Fatalf("line %q exceeds width", l)
		}
	}
	if wrap("", 10) != "" {
		t.Fatal("empty wrap")
	}
	// A single over-long word is not broken.
	if wrap("supercalifragilistic", 5) != "supercalifragilistic" {
		t.Fatal("long word handling")
	}
}
