// Package survey models anonymous questionnaire instruments: sections
// of typed questions, response records, validation, JSON serialization,
// and anonymization. It is the generic substrate under the paper's
// concrete floating point survey (internal/quiz): the design mirrors the
// requirements of the paper's Section II (anonymity, low time
// commitment, no prompting/anchoring — question prompts avoid standard
// terminology, which is why prompts here are free text rather than
// term-linked enums).
package survey

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Kind is the question type.
type Kind string

const (
	// SingleChoice selects exactly one option.
	SingleChoice Kind = "single"
	// MultiChoice selects any subset of options.
	MultiChoice Kind = "multi"
	// TrueFalse is the quiz kind: true / false / "I don't know".
	TrueFalse Kind = "truefalse"
	// Likert is a 1..Scale rating.
	Likert Kind = "likert"
)

// Canonical TrueFalse answer strings.
const (
	AnswerTrue     = "true"
	AnswerFalse    = "false"
	AnswerDontKnow = "dontknow"
)

// Question is one survey item.
type Question struct {
	ID      string   `json:"id"`
	Prompt  string   `json:"prompt"`
	Kind    Kind     `json:"kind"`
	Options []string `json:"options,omitempty"` // single/multi
	Scale   int      `json:"scale,omitempty"`   // likert: 1..Scale
	// AllowOther permits free-text additions on multi-choice
	// questions (the paper's language-experience lists).
	AllowOther bool `json:"allowOther,omitempty"`
}

// Section groups questions.
type Section struct {
	ID          string     `json:"id"`
	Title       string     `json:"title"`
	Description string     `json:"description,omitempty"`
	Questions   []Question `json:"questions"`
}

// Instrument is a complete survey definition.
type Instrument struct {
	Title    string    `json:"title"`
	Version  string    `json:"version"`
	Sections []Section `json:"sections"`
}

// Questions returns all questions in order.
func (ins *Instrument) Questions() []Question {
	var out []Question
	for _, s := range ins.Sections {
		out = append(out, s.Questions...)
	}
	return out
}

// Question returns the question with the given ID.
func (ins *Instrument) Question(id string) (Question, bool) {
	for _, s := range ins.Sections {
		for _, q := range s.Questions {
			if q.ID == id {
				return q, true
			}
		}
	}
	return Question{}, false
}

// Validate checks the instrument for structural problems: duplicate or
// empty IDs, choice questions without options, bad Likert scales.
func (ins *Instrument) Validate() error {
	if ins.Title == "" {
		return fmt.Errorf("survey: instrument has no title")
	}
	seen := map[string]bool{}
	for _, s := range ins.Sections {
		if s.ID == "" {
			return fmt.Errorf("survey: section with empty id")
		}
		for _, q := range s.Questions {
			if q.ID == "" {
				return fmt.Errorf("survey: question with empty id in section %q", s.ID)
			}
			if seen[q.ID] {
				return fmt.Errorf("survey: duplicate question id %q", q.ID)
			}
			seen[q.ID] = true
			switch q.Kind {
			case SingleChoice, MultiChoice:
				if len(q.Options) == 0 {
					return fmt.Errorf("survey: question %q has no options", q.ID)
				}
				opts := map[string]bool{}
				for _, o := range q.Options {
					if opts[o] {
						return fmt.Errorf("survey: question %q repeats option %q", q.ID, o)
					}
					opts[o] = true
				}
			case TrueFalse:
				if len(q.Options) != 0 {
					return fmt.Errorf("survey: truefalse question %q must not list options", q.ID)
				}
			case Likert:
				if q.Scale < 2 {
					return fmt.Errorf("survey: likert question %q needs scale >= 2", q.ID)
				}
			default:
				return fmt.Errorf("survey: question %q has unknown kind %q", q.ID, q.Kind)
			}
		}
	}
	if len(seen) == 0 {
		return fmt.Errorf("survey: instrument has no questions")
	}
	return nil
}

// Answer is one response to one question. Zero value means unanswered.
type Answer struct {
	Choice  string   `json:"choice,omitempty"`  // single/truefalse
	Choices []string `json:"choices,omitempty"` // multi
	Level   int      `json:"level,omitempty"`   // likert, 1-based
}

// IsUnanswered reports whether the answer is empty.
func (a Answer) IsUnanswered() bool {
	return a.Choice == "" && len(a.Choices) == 0 && a.Level == 0
}

// Response is one participant's (anonymous) answers.
type Response struct {
	// Token is an opaque anonymous identifier (assigned by
	// anonymization, never derived from participant identity).
	Token   string            `json:"token"`
	Answers map[string]Answer `json:"answers"`
}

// Answer returns the answer for a question ID (zero Answer if absent).
func (r Response) Answer(id string) Answer { return r.Answers[id] }

// ValidateResponse checks a response against the instrument: unknown
// question IDs, invalid options, out-of-range Likert levels. Unanswered
// questions are always acceptable (participation is voluntary per item).
func (ins *Instrument) ValidateResponse(r Response) error {
	for id, a := range r.Answers {
		q, ok := ins.Question(id)
		if !ok {
			return fmt.Errorf("survey: response answers unknown question %q", id)
		}
		if a.IsUnanswered() {
			continue
		}
		switch q.Kind {
		case SingleChoice:
			if !contains(q.Options, a.Choice) && !q.AllowOther {
				return fmt.Errorf("survey: question %q: option %q not offered", id, a.Choice)
			}
		case MultiChoice:
			for _, c := range a.Choices {
				if !contains(q.Options, c) && !q.AllowOther {
					return fmt.Errorf("survey: question %q: option %q not offered", id, c)
				}
			}
		case TrueFalse:
			switch a.Choice {
			case AnswerTrue, AnswerFalse, AnswerDontKnow:
			default:
				return fmt.Errorf("survey: question %q: bad truefalse answer %q", id, a.Choice)
			}
		case Likert:
			if a.Level < 1 || a.Level > q.Scale {
				return fmt.Errorf("survey: question %q: level %d out of 1..%d", id, a.Level, q.Scale)
			}
		}
	}
	return nil
}

// Dataset is a collection of responses to one instrument.
type Dataset struct {
	Instrument string     `json:"instrument"`
	Version    string     `json:"version"`
	Responses  []Response `json:"responses"`
}

// Validate checks every response in the dataset.
func (ins *Instrument) ValidateDataset(d *Dataset) error {
	if d.Instrument != ins.Title {
		return fmt.Errorf("survey: dataset is for %q, not %q", d.Instrument, ins.Title)
	}
	for i, r := range d.Responses {
		if err := ins.ValidateResponse(r); err != nil {
			return fmt.Errorf("response %d (%s): %w", i, r.Token, err)
		}
	}
	return nil
}

// Anonymize replaces all response tokens with sequential opaque tokens
// ("r0001", ...), destroying any linkage the collector may have had.
// The order of responses is preserved (collection order reveals nothing
// about identity under the paper's recruitment model).
func (d *Dataset) Anonymize() {
	for i := range d.Responses {
		d.Responses[i].Token = fmt.Sprintf("r%04d", i+1)
	}
}

// MarshalJSON/Unmarshal helpers with stable formatting.

// EncodeInstrument renders the instrument as indented JSON.
func EncodeInstrument(ins *Instrument) ([]byte, error) {
	return json.MarshalIndent(ins, "", "  ")
}

// DecodeInstrument parses an instrument and validates it.
func DecodeInstrument(data []byte) (*Instrument, error) {
	var ins Instrument
	if err := json.Unmarshal(data, &ins); err != nil {
		return nil, fmt.Errorf("survey: decode instrument: %w", err)
	}
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	return &ins, nil
}

// EncodeDataset renders a dataset as indented JSON.
func EncodeDataset(d *Dataset) ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}

// WriteDataset streams a dataset to w as indented JSON, one response at
// a time, producing exactly the bytes EncodeDataset would — without
// ever holding the whole document in memory. Use this for large
// generated datasets (fpgen -n 1000000) where the full MarshalIndent
// buffer would dominate the process footprint.
func WriteDataset(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	instr, err := json.Marshal(d.Instrument)
	if err != nil {
		return fmt.Errorf("survey: write dataset: %w", err)
	}
	ver, err := json.Marshal(d.Version)
	if err != nil {
		return fmt.Errorf("survey: write dataset: %w", err)
	}
	fmt.Fprintf(bw, "{\n  \"instrument\": %s,\n  \"version\": %s,\n  \"responses\": ", instr, ver)
	if len(d.Responses) == 0 {
		// Match encoding/json: nil slice encodes as null, empty as [].
		if d.Responses == nil {
			bw.WriteString("null\n}")
		} else {
			bw.WriteString("[]\n}")
		}
		return bw.Flush()
	}
	bw.WriteString("[\n")
	for i := range d.Responses {
		// MarshalIndent's prefix applies to every line but the first,
		// so the element's own indentation is written explicitly.
		data, err := json.MarshalIndent(&d.Responses[i], "    ", "  ")
		if err != nil {
			return fmt.Errorf("survey: write dataset: response %d: %w", i, err)
		}
		bw.WriteString("    ")
		bw.Write(data)
		if i < len(d.Responses)-1 {
			bw.WriteString(",")
		}
		bw.WriteString("\n")
	}
	bw.WriteString("  ]\n}")
	return bw.Flush()
}

// DecodeError reports where in a malformed dataset decoding failed.
// Respondent is the zero-based index of the first offending response
// (-1 when the failure is outside the responses array) and Question the
// offending question ID when the failure is inside one answer.
type DecodeError struct {
	Respondent int
	Question   string
	Err        error
}

func (e *DecodeError) Error() string {
	switch {
	case e.Respondent < 0:
		return fmt.Sprintf("survey: decode dataset: %v", e.Err)
	case e.Question == "":
		return fmt.Sprintf("survey: decode dataset: response %d: %v", e.Respondent, e.Err)
	}
	return fmt.Sprintf("survey: decode dataset: response %d: question %q: %v", e.Respondent, e.Question, e.Err)
}

func (e *DecodeError) Unwrap() error { return e.Err }

// DecodeDataset parses a dataset. Malformed input yields a *DecodeError
// locating the first offending respondent (and question, when the
// damage is inside one answer) rather than a bare position-in-bytes
// JSON error.
func DecodeDataset(data []byte) (*Dataset, error) {
	var d Dataset
	err := json.Unmarshal(data, &d)
	if err == nil {
		return &d, nil
	}
	return nil, diagnoseDecode(data, err)
}

// diagnoseDecode re-parses a dataset that failed to unmarshal, in
// coarse-to-fine passes, to attribute the failure to a respondent and
// question. The original error is always preserved as the cause; this
// only adds location.
func diagnoseDecode(data []byte, cause error) error {
	var shell struct {
		Responses []json.RawMessage `json:"responses"`
	}
	if json.Unmarshal(data, &shell) != nil {
		// The document structure itself (or a field outside the
		// responses) is broken; there is no respondent to blame.
		return &DecodeError{Respondent: -1, Err: cause}
	}
	for i, raw := range shell.Responses {
		var row struct {
			Token   string                     `json:"token"`
			Answers map[string]json.RawMessage `json:"answers"`
		}
		if err := json.Unmarshal(raw, &row); err != nil {
			return &DecodeError{Respondent: i, Err: err}
		}
		ids := make([]string, 0, len(row.Answers))
		for id := range row.Answers {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			var a Answer
			if err := json.Unmarshal(row.Answers[id], &a); err != nil {
				return &DecodeError{Respondent: i, Question: id, Err: err}
			}
		}
	}
	return &DecodeError{Respondent: -1, Err: cause}
}

// FlattenCSV renders the dataset as a flat CSV matrix: one row per
// response, one column per question (multi-choice answers joined with
// ';', Likert answers as numbers). The header row carries question IDs.
// This is the export format for analysis outside this repository.
func (ins *Instrument) FlattenCSV(d *Dataset) string {
	qs := ins.Questions()
	var b strings.Builder
	esc := func(c string) string {
		if strings.ContainsAny(c, ",\"\n") {
			return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		return c
	}
	b.WriteString("token")
	for _, q := range qs {
		b.WriteString("," + esc(q.ID))
	}
	b.WriteString("\n")
	for _, r := range d.Responses {
		b.WriteString(esc(r.Token))
		for _, q := range qs {
			a := r.Answer(q.ID)
			cell := ""
			switch {
			case a.IsUnanswered():
			case q.Kind == Likert:
				cell = fmt.Sprintf("%d", a.Level)
			case q.Kind == MultiChoice:
				cell = strings.Join(a.Choices, ";")
			default:
				cell = a.Choice
			}
			b.WriteString("," + esc(cell))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Tally counts answers per option for a single question across a
// dataset: map option -> count. TrueFalse tallies the three canonical
// answers plus "unanswered"; Likert tallies "1".."Scale" plus
// "unanswered"; multi-choice counts each selected option.
func (ins *Instrument) Tally(d *Dataset, questionID string) (map[string]int, error) {
	q, ok := ins.Question(questionID)
	if !ok {
		return nil, fmt.Errorf("survey: unknown question %q", questionID)
	}
	t := map[string]int{}
	for _, r := range d.Responses {
		a := r.Answer(questionID)
		if a.IsUnanswered() {
			t["unanswered"]++
			continue
		}
		switch q.Kind {
		case SingleChoice, TrueFalse:
			t[a.Choice]++
		case MultiChoice:
			for _, c := range a.Choices {
				t[c]++
			}
		case Likert:
			t[fmt.Sprintf("%d", a.Level)]++
		}
	}
	return t, nil
}

// SortedKeys returns map keys in deterministic order, for rendering.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func contains(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
