package survey

import (
	"testing"
)

func TestAdministerKeepsSectionOrder(t *testing.T) {
	ins := sampleInstrument()
	adm := ins.Administer(1)
	if err := adm.Validate(ins); err != nil {
		t.Fatal(err)
	}
	// No shuffle requested: authored order.
	want := []string{"q1", "q2", "q3", "q4"}
	for i, id := range adm.Order {
		if id != want[i] {
			t.Fatalf("order %v", adm.Order)
		}
	}
}

func TestAdministerShufflesWithinSection(t *testing.T) {
	ins := &Instrument{
		Title: "Big", Version: "1",
		Sections: []Section{
			{ID: "bg", Title: "BG", Questions: []Question{
				{ID: "b1", Prompt: "p", Kind: TrueFalse},
				{ID: "b2", Prompt: "p", Kind: TrueFalse},
			}},
			{ID: "quiz", Title: "Quiz", Questions: mkQuestions(20)},
		},
	}
	if err := ins.Validate(); err != nil {
		t.Fatal(err)
	}
	adm := ins.Administer(7, "quiz")
	if err := adm.Validate(ins); err != nil {
		t.Fatal(err)
	}
	// Background stays first and in order.
	if adm.Order[0] != "b1" || adm.Order[1] != "b2" {
		t.Fatalf("background moved: %v", adm.Order[:2])
	}
	// Quiz questions shuffled (overwhelmingly likely to differ from
	// authored order for 20 items).
	moved := false
	for i, id := range adm.Order[2:] {
		if id != mkQuestions(20)[i].ID {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("shuffle produced authored order (astronomically unlikely)")
	}
	// Deterministic per seed; different across seeds.
	adm2 := ins.Administer(7, "quiz")
	for i := range adm.Order {
		if adm.Order[i] != adm2.Order[i] {
			t.Fatal("same seed, different order")
		}
	}
	adm3 := ins.Administer(8, "quiz")
	same := true
	for i := range adm.Order {
		if adm.Order[i] != adm3.Order[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds, same order (suspicious)")
	}
}

func mkQuestions(n int) []Question {
	var qs []Question
	for i := 0; i < n; i++ {
		qs = append(qs, Question{ID: "q" + string(rune('a'+i)), Prompt: "p", Kind: TrueFalse})
	}
	return qs
}

func TestAdministrationValidateCatchesProblems(t *testing.T) {
	ins := sampleInstrument()
	bad := Administration{Order: []string{"q1", "q1", "q2", "q3", "q4"}}
	if err := bad.Validate(ins); err == nil {
		t.Fatal("repeat not caught")
	}
	bad = Administration{Order: []string{"q1", "zzz"}}
	if err := bad.Validate(ins); err == nil {
		t.Fatal("unknown not caught")
	}
	bad = Administration{Order: []string{"q1"}}
	if err := bad.Validate(ins); err == nil {
		t.Fatal("missing not caught")
	}
}

func TestEstimateMinutes(t *testing.T) {
	ins := sampleInstrument()
	m := ins.EstimateMinutes()
	// 20 + 35 + 45 + 15 = 115 seconds.
	if m < 1.9 || m > 2.0 {
		t.Fatalf("estimate %v", m)
	}
}
