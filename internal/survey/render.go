package survey

import (
	"fmt"
	"strings"
)

// RenderText produces the participant-facing text form of the
// instrument — the analogue of the paper's published study documents.
// Question numbering is global; TrueFalse items show the three answer
// choices; Likert items show the scale anchors.
func (ins *Instrument) RenderText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", ins.Title, strings.Repeat("=", len(ins.Title)))
	if ins.Version != "" {
		fmt.Fprintf(&b, "version %s\n", ins.Version)
	}
	qnum := 0
	for _, sec := range ins.Sections {
		fmt.Fprintf(&b, "\n%s\n%s\n", sec.Title, strings.Repeat("-", len(sec.Title)))
		if sec.Description != "" {
			fmt.Fprintf(&b, "%s\n", wrap(sec.Description, 72))
		}
		for _, q := range sec.Questions {
			qnum++
			fmt.Fprintf(&b, "\n%d. %s\n", qnum, indentContinuation(q.Prompt, "   "))
			switch q.Kind {
			case SingleChoice:
				for _, o := range q.Options {
					fmt.Fprintf(&b, "   ( ) %s\n", o)
				}
				if q.AllowOther {
					fmt.Fprintf(&b, "   ( ) Other: ____________\n")
				}
			case MultiChoice:
				for _, o := range q.Options {
					fmt.Fprintf(&b, "   [ ] %s\n", o)
				}
				if q.AllowOther {
					fmt.Fprintf(&b, "   [ ] Other: ____________\n")
				}
			case TrueFalse:
				fmt.Fprintf(&b, "   ( ) True   ( ) False   ( ) I don't know\n")
			case Likert:
				fmt.Fprintf(&b, "   1")
				for l := 2; l <= q.Scale; l++ {
					fmt.Fprintf(&b, " ... %d", l)
				}
				fmt.Fprintf(&b, "   (1 = lowest, %d = highest)\n", q.Scale)
			}
		}
	}
	return b.String()
}

// wrap performs greedy word wrapping at the given width.
func wrap(s string, width int) string {
	words := strings.Fields(s)
	if len(words) == 0 {
		return ""
	}
	var b strings.Builder
	line := 0
	for i, w := range words {
		if i > 0 {
			if line+1+len(w) > width {
				b.WriteString("\n")
				line = 0
			} else {
				b.WriteString(" ")
				line++
			}
		}
		b.WriteString(w)
		line += len(w)
	}
	return b.String()
}

// indentContinuation indents all but the first line of a multi-line
// prompt (code snippets keep their own line structure).
func indentContinuation(s, pad string) string {
	return strings.ReplaceAll(s, "\n", "\n"+pad)
}
