package quiz

import (
	"strings"
	"testing"

	"fpstudy/internal/survey"
)

// paperAnswerKey is the paper's ground truth per question: whether the
// assertion is TRUE of IEEE arithmetic. The oracles must derive exactly
// these values; this test pins the derivation to the published key.
var paperAnswerKey = map[string]bool{
	"core.commutativity":  true,  // addition commutes (non-NaN)
	"core.associativity":  false, // addition does not associate
	"core.distributivity": false,
	"core.ordering":       false, // ((a+b)-a)==b not guaranteed
	"core.identity":       false, // NaN != NaN
	"core.negzero":        false, // +0 == -0: unequal zeros impossible
	"core.square":         true,  // x*x >= 0 for non-NaN
	"core.overflow":       false, // saturates, does not wrap
	"core.divzero":        true,  // 1/0 = inf, a non-NaN
	"core.zerodivzero":    false, // 0/0 = NaN
	"core.satplus":        true,  // (x+1)==x possible
	"core.satminus":       true,  // (x-1)==x possible
	"core.denormprec":     true,  // gradual underflow loses precision
	"core.opprec":         true,  // rounding loses precision
	"core.sigexc":         false, // no default signal
}

func TestCoreOraclesMatchPaperKey(t *testing.T) {
	qs := CoreQuestions()
	if len(qs) != 15 {
		t.Fatalf("%d core questions, want 15", len(qs))
	}
	for _, q := range qs {
		want, ok := paperAnswerKey[q.ID]
		if !ok {
			t.Errorf("question %s not in the paper key", q.ID)
			continue
		}
		res := q.Oracle()
		if res.Holds != want {
			t.Errorf("%s: oracle says %v, paper key says %v (witness: %s)",
				q.ID, res.Holds, want, res.Witness)
		}
		if res.Witness == "" {
			t.Errorf("%s: oracle produced no witness", q.ID)
		}
	}
}

func TestOptOracles(t *testing.T) {
	qs := OptQuestions()
	if len(qs) != 4 {
		t.Fatalf("%d opt questions, want 4", len(qs))
	}
	wantTF := map[string]bool{
		"opt.madd":     false, // not in the original standard / differs
		"opt.ftz":      false, // non-compliant
		"opt.fastmath": true,  // can be non-compliant
	}
	for _, q := range qs {
		res := q.Oracle()
		if q.IsTrueFalse() {
			if res.Holds != wantTF[q.ID] {
				t.Errorf("%s: oracle %v, want %v (witness: %s)", q.ID, res.Holds, wantTF[q.ID], res.Witness)
			}
		} else {
			if q.ID != "opt.level" {
				t.Errorf("unexpected choice question %s", q.ID)
			}
			if !res.Holds {
				t.Errorf("level oracle failed: %s", res.Witness)
			}
			if q.CorrectChoice != "-O2" {
				t.Errorf("level correct choice = %q", q.CorrectChoice)
			}
			if !strings.Contains(res.Witness, "-O2") {
				t.Errorf("level witness: %s", res.Witness)
			}
		}
	}
}

func TestCorrectAnswerStrings(t *testing.T) {
	q, _ := CoreQuestionByID("core.identity")
	if q.CorrectAnswer() != "false" {
		t.Fatalf("identity correct answer %q", q.CorrectAnswer())
	}
	q2, _ := CoreQuestionByID("core.divzero")
	if q2.CorrectAnswer() != "true" {
		t.Fatalf("divzero correct answer %q", q2.CorrectAnswer())
	}
	oq, _ := OptQuestionByID("opt.level")
	if oq.CorrectAnswer() != "-O2" {
		t.Fatalf("level correct answer %q", oq.CorrectAnswer())
	}
}

func TestInstrumentValidates(t *testing.T) {
	ins := Instrument()
	if err := ins.Validate(); err != nil {
		t.Fatal(err)
	}
	qs := ins.Questions()
	// 11 background + 15 core + 4 opt + 5 suspicion = 35.
	if len(qs) != 35 {
		t.Fatalf("%d questions, want 35", len(qs))
	}
	if len(ins.Sections) != 4 {
		t.Fatalf("%d sections", len(ins.Sections))
	}
	// No prompting/anchoring: participant-facing prompts must not use
	// the insider terms the paper deliberately avoids.
	for _, q := range qs {
		lower := strings.ToLower(q.Prompt)
		for _, banned := range []string{"nan", "denormal", "subnormal", "ieee", "saturat", "underflow", "overflow"} {
			if strings.Contains(lower, banned) {
				t.Errorf("question %s prompt uses banned term %q", q.ID, banned)
			}
		}
	}
}

func TestInstrumentJSONRoundTrip(t *testing.T) {
	ins := Instrument()
	data, err := survey.EncodeInstrument(ins)
	if err != nil {
		t.Fatal(err)
	}
	back, err := survey.DecodeInstrument(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Questions()) != len(ins.Questions()) {
		t.Fatal("question count changed in round trip")
	}
}

// perfectResponse answers every quiz question correctly.
func perfectResponse() survey.Response {
	r := survey.Response{Token: "perfect", Answers: map[string]survey.Answer{}}
	for _, q := range CoreQuestions() {
		r.Answers[q.ID] = survey.Answer{Choice: q.CorrectAnswer()}
	}
	for _, q := range OptQuestions() {
		r.Answers[q.ID] = survey.Answer{Choice: q.CorrectAnswer()}
	}
	return r
}

func TestScorePerfect(t *testing.T) {
	r := perfectResponse()
	core := ScoreCore(r)
	if core.Correct != 15 || core.Incorrect != 0 {
		t.Fatalf("perfect core tally: %+v", core)
	}
	opt := ScoreOpt(r)
	if opt.Correct != 4 {
		t.Fatalf("perfect opt tally: %+v", opt)
	}
}

func TestScoreAllWrongAndDontKnow(t *testing.T) {
	wrong := survey.Response{Answers: map[string]survey.Answer{}}
	dk := survey.Response{Answers: map[string]survey.Answer{}}
	for _, q := range CoreQuestions() {
		w := "true"
		if q.CorrectAnswer() == "true" {
			w = "false"
		}
		wrong.Answers[q.ID] = survey.Answer{Choice: w}
		dk.Answers[q.ID] = survey.Answer{Choice: survey.AnswerDontKnow}
	}
	if tl := ScoreCore(wrong); tl.Incorrect != 15 {
		t.Fatalf("all wrong tally: %+v", tl)
	}
	if tl := ScoreCore(dk); tl.DontKnow != 15 {
		t.Fatalf("all DK tally: %+v", tl)
	}
	if tl := ScoreCore(survey.Response{}); tl.Unanswered != 15 {
		t.Fatalf("empty tally: %+v", tl)
	}
}

func TestScoreOptChoiceQuestion(t *testing.T) {
	r := survey.Response{Answers: map[string]survey.Answer{
		"opt.level": {Choice: "-O3"},
	}}
	tl := ScoreOpt(r)
	if tl.Incorrect != 1 || tl.Unanswered != 3 {
		t.Fatalf("tally: %+v", tl)
	}
	r.Answers["opt.level"] = survey.Answer{Choice: survey.AnswerDontKnow}
	tl = ScoreOpt(r)
	if tl.DontKnow != 1 {
		t.Fatalf("DK tally: %+v", tl)
	}
}

func TestClassify(t *testing.T) {
	q, _ := CoreQuestionByID("core.square")
	r := survey.Response{Answers: map[string]survey.Answer{
		"core.square": {Choice: "true"},
	}}
	if ClassifyCore(r, q) != OutcomeCorrect {
		t.Fatal("square true should be correct")
	}
	r.Answers["core.square"] = survey.Answer{Choice: "false"}
	if ClassifyCore(r, q) != OutcomeIncorrect {
		t.Fatal("square false should be incorrect")
	}
	oq, _ := OptQuestionByID("opt.level")
	r.Answers["opt.level"] = survey.Answer{Choice: "-O2"}
	if ClassifyOpt(r, oq) != OutcomeCorrect {
		t.Fatal("level -O2 should be correct")
	}
}

func TestSuspicionItems(t *testing.T) {
	items := SuspicionItems()
	if len(items) != 5 {
		t.Fatalf("%d suspicion items", len(items))
	}
	ids := map[string]bool{}
	for _, it := range items {
		ids[it.ID] = true
		if it.Condition.GroundTruthSuspicion() < 1 || it.Condition.GroundTruthSuspicion() > 5 {
			t.Errorf("%s: bad ground truth", it.ID)
		}
	}
	for _, want := range []string{"susp.overflow", "susp.underflow", "susp.precision", "susp.invalid", "susp.denorm"} {
		if !ids[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestChanceConstants(t *testing.T) {
	if CoreChance != 7.5 || OptChance != 1.5 {
		t.Fatal("chance constants drifted from the paper")
	}
}

func TestTallyAddTotal(t *testing.T) {
	a := Tally{1, 2, 3, 4}
	b := Tally{4, 3, 2, 1}
	a.Add(b)
	if a != (Tally{5, 5, 5, 5}) || a.Total() != 20 {
		t.Fatalf("tally: %+v", a)
	}
}
