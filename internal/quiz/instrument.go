package quiz

import (
	"fpstudy/internal/monitor"
	"fpstudy/internal/paperdata"
	"fpstudy/internal/survey"
)

// Background question IDs.
const (
	BGPosition       = "bg.position"
	BGArea           = "bg.area"
	BGFormalTraining = "bg.formal_training"
	BGInformal       = "bg.informal_training"
	BGRole           = "bg.role"
	BGFPLanguages    = "bg.fp_languages"
	BGArbPrec        = "bg.arbprec_languages"
	BGContribSize    = "bg.contrib_size"
	BGContribExtent  = "bg.contrib_extent"
	BGInvolvedSize   = "bg.involved_size"
	BGInvolvedExtent = "bg.involved_extent"
)

// SuspicionItem is one condition of the suspicion quiz.
type SuspicionItem struct {
	ID        string
	Condition monitor.Condition
	Prompt    string
}

// SuspicionItems returns the five suspicion-quiz items in the paper's
// order, each tied to its monitor condition (whose GroundTruthSuspicion
// provides the paper's "arguably reasonable ranking").
func SuspicionItems() []SuspicionItem {
	mk := func(c monitor.Condition, what string) SuspicionItem {
		return SuspicionItem{
			ID:        "susp." + lower(c.String()),
			Condition: c,
			Prompt: "A wrapper around a scientific simulation reports that at some point during the run, " +
				what + " How suspicious would this make you of the simulation's results?",
		}
	}
	return []SuspicionItem{
		mk(monitor.Overflow, "the result of an operation was an infinity."),
		mk(monitor.Underflow, "the result of an operation was a zero because it was too small to represent."),
		mk(monitor.Precision, "the result of an operation required rounding and thus lost precision."),
		mk(monitor.Invalid, "the result of an operation was not a number at all (an invalid result)."),
		mk(monitor.Denorm, "the result of an operation was a tiny number with reduced precision."),
	}
}

func lower(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

// options extracts the labels of a paperdata table for use as survey
// options.
func options(entries []paperdata.CountEntry) []string {
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.Label)
	}
	return out
}

// Instrument assembles the paper's full survey: background, core quiz,
// optimization quiz, suspicion quiz.
func Instrument() *survey.Instrument {
	bg := survey.Section{
		ID:    "background",
		Title: "Background",
		Description: "Self-identified information about your background, software development " +
			"experience, and interaction with floating point. All responses are anonymous.",
		Questions: []survey.Question{
			{ID: BGPosition, Prompt: "What is your current position?", Kind: survey.SingleChoice,
				Options: options(paperdata.Figure1Positions), AllowOther: true},
			{ID: BGArea, Prompt: "What is your area of formal training?", Kind: survey.SingleChoice,
				Options: options(paperdata.Figure2Areas), AllowOther: true},
			{ID: BGFormalTraining, Prompt: "How much formal training about floating point have you received?",
				Kind: survey.SingleChoice, Options: options(paperdata.Figure3FormalTraining)},
			{ID: BGInformal, Prompt: "What kinds of informal training about floating point have you used?",
				Kind: survey.MultiChoice, Options: options(paperdata.Figure4InformalTraining), AllowOther: true},
			{ID: BGRole, Prompt: "How do you view the software development you perform?",
				Kind: survey.SingleChoice, Options: options(paperdata.Figure5Roles)},
			{ID: BGFPLanguages, Prompt: "In which languages have you used floating point?",
				Kind: survey.MultiChoice, Options: options(paperdata.Figure6FPLanguages), AllowOther: true},
			{ID: BGArbPrec, Prompt: "Which languages/libraries supporting arbitrary precision numbers have you used?",
				Kind: survey.MultiChoice, Options: options(paperdata.Figure7ArbPrec), AllowOther: true},
			{ID: BGContribSize, Prompt: "How many lines of code was the largest codebase you built, or your largest contribution to a shared codebase?",
				Kind: survey.SingleChoice, Options: options(paperdata.Figure8ContribSize)},
			{ID: BGContribExtent, Prompt: "To what extent was floating point involved in that codebase and your work within it?",
				Kind: survey.SingleChoice, Options: options(paperdata.Figure9ContribExtent)},
			{ID: BGInvolvedSize, Prompt: "How many lines of code was the largest codebase you have been involved with in any capacity?",
				Kind: survey.SingleChoice, Options: options(paperdata.Figure10InvolvedSize)},
			{ID: BGInvolvedExtent, Prompt: "To what extent was floating point involved in that codebase and your work within it?",
				Kind: survey.SingleChoice, Options: options(paperdata.Figure11InvolvedExtent)},
		},
	}

	core := survey.Section{
		ID:    "core",
		Title: "Core quiz",
		Description: "Each question shows a snippet of code in C syntax (C++, C#, and Java are identical " +
			"for these snippets) and makes an assertion. Choose whether the assertion is true or false, " +
			"or answer \"I don't know.\"",
	}
	for _, q := range CoreQuestions() {
		core.Questions = append(core.Questions, survey.Question{
			ID:     q.ID,
			Prompt: q.Snippet + "\n\n" + q.Prompt,
			Kind:   survey.TrueFalse,
		})
	}

	opt := survey.Section{
		ID:    "optimization",
		Title: "Optimization quiz",
		Description: "These questions concern compiler optimizations and hardware features that may go " +
			"beyond the floating point standard.",
	}
	for _, q := range OptQuestions() {
		sq := survey.Question{ID: q.ID, Prompt: q.Prompt, Kind: survey.TrueFalse}
		if !q.IsTrueFalse() {
			sq.Kind = survey.SingleChoice
			// "I don't know" is an explicit option on the choice
			// question (and the dominant answer in the paper's data).
			sq.Options = append(append([]string{}, q.Choices...), survey.AnswerDontKnow)
		}
		opt.Questions = append(opt.Questions, sq)
	}

	susp := survey.Section{
		ID:    "suspicion",
		Title: "Suspicion quiz",
		Description: "Imagine a scientific simulation wrapped with code that determines whether any of " +
			"the following conditions occurred one or more times during execution. For each condition, " +
			"rate how suspicious its occurrence would make you of the simulation results " +
			"(1 = not suspicious at all, 5 = extremely suspicious). There are no wrong answers.",
	}
	for _, it := range SuspicionItems() {
		susp.Questions = append(susp.Questions, survey.Question{
			ID: it.ID, Prompt: it.Prompt, Kind: survey.Likert, Scale: 5,
		})
	}

	return &survey.Instrument{
		Title:    "Do Developers Understand IEEE Floating Point?",
		Version:  "1.0",
		Sections: []survey.Section{bg, core, opt, susp},
	}
}
