package quiz

import (
	"fmt"
	"strings"

	"fpstudy/internal/colstore"
	"fpstudy/internal/query"
)

// scoreValue is a query.Value counting one grading outcome per
// respondent across a quiz's questions. It runs column-major over the
// block — one pass per question over dense codes — so grading an
// n=10M streamed cohort needs no per-respondent Tally materialization.
type scoreValue struct {
	items   []colItem
	table   *ScoreTable // non-nil when the Level question is included
	outcome PerQuestionOutcome
}

func (v scoreValue) Columns() []int {
	cols := make([]int, 0, len(v.items)+1)
	for _, it := range v.items {
		cols = append(cols, it.ci)
	}
	if v.table != nil {
		cols = append(cols, v.table.levelCol)
	}
	return cols
}

func (v scoreValue) Gather(b *query.Block, dst []float64, ok []bool) {
	for j := range dst {
		dst[j], ok[j] = 0, true
	}
	for _, it := range v.items {
		col := b.U8(it.ci)
		for j := range dst {
			if classifyTFCode(col[j], it.correct) == v.outcome {
				dst[j]++
			}
		}
	}
	if v.table != nil {
		col := b.I32(v.table.levelCol)
		for j := range dst {
			if v.table.classifyLevelCode(col[j]) == v.outcome {
				dst[j]++
			}
		}
	}
}

// QueryValue resolves a quiz measure name for the query engine:
// "<quiz>.<field>" with quiz one of core (15 T/F questions), opt (the
// three T/F optimization questions, the Figure 12 view), or optall
// (all four), and field one of score (a synonym: correct), incorrect,
// dontknow, unanswered. The value of a respondent is their count of
// that outcome — e.g. core.score is the core quiz score graded against
// the oracle answer key.
func QueryValue(s *colstore.Schema, name string) (query.Value, error) {
	quizName, field, ok := strings.Cut(name, ".")
	if !ok {
		return nil, fmt.Errorf("quiz: unknown value %q (want <quiz>.<field>, e.g. core.score)", name)
	}
	t := ScoreTableFor(s)
	v := scoreValue{}
	switch quizName {
	case "core":
		v.items = t.core
	case "opt":
		v.items = t.optTF
	case "optall":
		v.items = t.optTF
		v.table = t
	default:
		return nil, fmt.Errorf("quiz: unknown quiz %q (want core, opt, or optall)", quizName)
	}
	switch field {
	case "score", "correct":
		v.outcome = OutcomeCorrect
	case "incorrect":
		v.outcome = OutcomeIncorrect
	case "dontknow":
		v.outcome = OutcomeDontKnow
	case "unanswered":
		v.outcome = OutcomeUnanswered
	default:
		return nil, fmt.Errorf("quiz: unknown field %q (want score, incorrect, dontknow, or unanswered)", field)
	}
	return v, nil
}

// outcomeLabels indexes PerQuestionOutcome.
var outcomeLabels = []string{"correct", "incorrect", "dontknow", "unanswered"}

// tfOutcomeKey groups respondents by their outcome on one T/F quiz
// question (key = PerQuestionOutcome).
type tfOutcomeKey struct {
	it colItem
}

func (k tfOutcomeKey) Columns() []int   { return []int{k.it.ci} }
func (k tfOutcomeKey) Cardinality() int { return 4 }
func (k tfOutcomeKey) Labels() []string { return outcomeLabels }

func (k tfOutcomeKey) Keys(b *query.Block, dst []int32) {
	col := b.U8(k.it.ci)
	for j := range dst {
		dst[j] = int32(classifyTFCode(col[j], k.it.correct))
	}
}

// levelOutcomeKey groups respondents by their outcome on the
// Standard-compliant Level question.
type levelOutcomeKey struct {
	t *ScoreTable
}

func (k levelOutcomeKey) Columns() []int   { return []int{k.t.levelCol} }
func (k levelOutcomeKey) Cardinality() int { return 4 }
func (k levelOutcomeKey) Labels() []string { return outcomeLabels }

func (k levelOutcomeKey) Keys(b *query.Block, dst []int32) {
	col := b.I32(k.t.levelCol)
	for j := range dst {
		dst[j] = int32(k.t.classifyLevelCode(col[j]))
	}
}

// CoreOutcomeKeyer keys respondents by their outcome on core question
// k (paper order) — the query-engine form of ClassifyCore.
func CoreOutcomeKeyer(s *colstore.Schema, k int) query.Keyer {
	return tfOutcomeKey{it: ScoreTableFor(s).core[k]}
}

// OptOutcomeKeyer keys respondents by their outcome on optimization
// question k (paper order: MADD, FTZ, Level, Fast-math) — the
// query-engine form of ClassifyOpt.
func OptOutcomeKeyer(s *colstore.Schema, k int) query.Keyer {
	t := ScoreTableFor(s)
	switch k {
	case 0, 1:
		return tfOutcomeKey{it: t.optTF[k]}
	case 2:
		return levelOutcomeKey{t: t}
	default:
		return tfOutcomeKey{it: t.optTF[2]}
	}
}
