package quiz

import (
	"sync/atomic"

	"fpstudy/internal/ieee754"
)

// oracleObserver holds the process-wide observer installed on every
// environment the quiz oracles evaluate under. An atomic pointer keeps
// oracleEnv race-free against a concurrent SetOracleObserver (the
// oracles themselves run once, under the answer-key sync.Once, but the
// installer may run from a different goroutine at startup).
var oracleObserver atomic.Pointer[func(ieee754.OpEvent)]

// SetOracleObserver installs fn as the observer for all subsequent quiz
// oracle evaluations; nil uninstalls. The intended fn is the aggregate
// exception bridge (monitor.CountingObserver feeding the telemetry
// registry), so a run can report how many Overflow / Underflow /
// Precision / Invalid / Denorm events its oracle evaluations produced.
//
// Observation only: an observer sees each completed operation and its
// raised flags but cannot change results, so the derived answer key —
// and everything downstream of it — is identical with or without an
// observer installed. fn must be safe for concurrent use; the counting
// bridge is (atomic increments only).
//
// Note the oracles cache their results (the answer key is derived once
// per process), so exception counts from this path appear once, at the
// first scoring or calibration, not per respondent.
func SetOracleObserver(fn func(ieee754.OpEvent)) {
	if fn == nil {
		oracleObserver.Store(nil)
		return
	}
	oracleObserver.Store(&fn)
}

// oracleEnv returns the default IEEE environment the quiz oracles
// evaluate under, with the process observer (if any) attached.
func oracleEnv() ieee754.Env {
	var e ieee754.Env
	if p := oracleObserver.Load(); p != nil {
		e.Observer = *p
	}
	return e
}
