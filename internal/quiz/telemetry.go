package quiz

import (
	"sync/atomic"
	"time"

	"fpstudy/internal/ieee754"
	"fpstudy/internal/telemetry"
)

// gradeBatchObserver holds the process-wide grade-batch latency
// callback: it fires once per ScoreAllColumns batch with the batch's
// respondent count and wall duration. Same contract as the oracle
// observer — observation only, safe for concurrent use, one atomic
// load + branch when uninstalled.
var gradeBatchObserver atomic.Pointer[func(n int, d time.Duration)]

// SetGradeBatchObserver installs fn as the grade-batch latency
// observer for subsequent ScoreAllColumns calls; nil uninstalls. The
// intended fn feeds a telemetry.LatencyHist so batch grading latency
// is quantile-tracked alongside the generation stages.
func SetGradeBatchObserver(fn func(n int, d time.Duration)) {
	if fn == nil {
		gradeBatchObserver.Store(nil)
		return
	}
	gradeBatchObserver.Store(&fn)
}

// oracleObserver holds the process-wide observer installed on every
// environment the quiz oracles evaluate under. An atomic pointer keeps
// oracleEnv race-free against a concurrent SetOracleObserver (the
// oracles themselves run once, under the answer-key sync.Once, but the
// installer may run from a different goroutine at startup).
var oracleObserver atomic.Pointer[func(ieee754.OpEvent)]

// SetOracleObserver installs fn as the observer for all subsequent quiz
// oracle evaluations; nil uninstalls. The intended fn is the aggregate
// exception bridge (monitor.CountingObserver feeding the telemetry
// registry), so a run can report how many Overflow / Underflow /
// Precision / Invalid / Denorm events its oracle evaluations produced.
//
// Observation only: an observer sees each completed operation and its
// raised flags but cannot change results, so the derived answer key —
// and everything downstream of it — is identical with or without an
// observer installed. fn must be safe for concurrent use; the counting
// bridge is (atomic increments only).
//
// Note the oracles cache their results (the answer key is derived once
// per process), so exception counts from this path appear once, at the
// first scoring or calibration, not per respondent.
func SetOracleObserver(fn func(ieee754.OpEvent)) {
	if fn == nil {
		oracleObserver.Store(nil)
		return
	}
	oracleObserver.Store(&fn)
}

// oracleOps / oracleExcs count softfloat operations and raised-flag
// events across all observed oracle evaluations, feeding the per-batch
// FP-exception deltas in grading trace events. They accumulate only
// while an observer or tracer is active (see oracleEnv), which keeps
// the common observer-free path on the softfloat's fast finish.
var oracleOps, oracleExcs atomic.Int64

// OracleTraceCounts returns the cumulative (operations, exception
// events) observed during traced/observed oracle evaluations. Callers
// diff two readings to attribute FP activity to a batch.
func OracleTraceCounts() (ops, exceptions int64) {
	return oracleOps.Load(), oracleExcs.Load()
}

// oracleEnv returns the default IEEE environment the quiz oracles
// evaluate under. When a process observer or a tracer is active it
// attaches a counting shim (operation + raised-flag totals for trace
// batches) that forwards to the user observer; otherwise it returns
// the bare environment so oracle evaluation keeps the observer-free
// fast path.
func oracleEnv() ieee754.Env {
	var e ieee754.Env
	user := oracleObserver.Load()
	if user == nil && telemetry.ActiveTracer() == nil {
		return e
	}
	e.Observer = func(ev ieee754.OpEvent) {
		oracleOps.Add(1)
		if ev.Raised != 0 {
			oracleExcs.Add(1)
		}
		if user != nil {
			(*user)(ev)
		}
	}
	return e
}
