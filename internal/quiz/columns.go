package quiz

import (
	"sync"
	"time"

	"fpstudy/internal/colstore"
	"fpstudy/internal/parallel"
	"fpstudy/internal/survey"
	"fpstudy/internal/telemetry"
)

// Columns returns the interned columnar schema of the paper's
// instrument. It is built once and shared read-only; every columnar
// dataset in the pipeline (generation, grading, figure tallies) hangs
// off this schema.
func Columns() *colstore.Schema {
	schemaOnce.Do(func() { schema = colstore.MustSchema(Instrument()) })
	return schema
}

var (
	schemaOnce sync.Once
	schema     *colstore.Schema
)

// tfCorrectCode converts an oracle answer string to its truefalse code.
func tfCorrectCode(answer string) uint8 {
	if answer == survey.AnswerTrue {
		return colstore.TFTrue
	}
	return colstore.TFFalse
}

// colItem is the columnar grading record of one T/F question: its
// column index and the correct code.
type colItem struct {
	ci      int
	correct uint8
}

// ScoreTable is the oracle answer key bound to a schema's column
// indices: the one-stop grading table for columnar datasets. The
// ieee754 oracles behind the answer key run once per (question, mode)
// for the whole process — the canonical schema's table is built under a
// sync.Once and shared read-only — so grading and figure loops consult
// pure in-memory codes no matter how many respondents they touch.
// Fetch it once per batch with ScoreTableFor and call the Classify
// methods per cell.
type ScoreTable struct {
	core  []colItem // 15 core questions, paper order
	optTF []colItem // the three T/F optimization questions, paper order
	// The Standard-compliant Level single-choice question.
	levelCol     int
	levelCorrect int32
	levelDK      int32
}

var (
	colScoreOnce sync.Once
	colScore     *ScoreTable
)

// buildColScoreTable derives the columnar grading table for an
// arbitrary schema holding the instrument's questions (runs the oracles
// on first use, via the cached answer keys).
func buildColScoreTable(s *colstore.Schema) *ScoreTable {
	t := &ScoreTable{}
	for _, q := range CoreQuestions() {
		t.core = append(t.core, colItem{
			ci:      s.MustColumnIndex(q.ID),
			correct: tfCorrectCode(CoreAnswer(q.ID)),
		})
	}
	for _, q := range OptQuestions() {
		ci := s.MustColumnIndex(q.ID)
		if q.IsTrueFalse() {
			t.optTF = append(t.optTF, colItem{ci: ci, correct: tfCorrectCode(OptAnswer(q.ID))})
			continue
		}
		col := s.Column(ci)
		t.levelCol = ci
		t.levelCorrect = col.MustOptionCode(q.CorrectChoice)
		t.levelDK = col.MustOptionCode(survey.AnswerDontKnow)
	}
	return t
}

// ScoreTableFor returns the grading table for a schema: the canonical
// Columns() schema hits the process-wide cached table; any other schema
// over the same instrument is derived on the fly.
func ScoreTableFor(s *colstore.Schema) *ScoreTable {
	if s == Columns() {
		colScoreOnce.Do(func() { colScore = buildColScoreTable(s) })
		return colScore
	}
	return buildColScoreTable(s)
}

// countTF classifies one truefalse code against the correct code.
func (t *Tally) countTF(code, correct uint8) {
	switch code {
	case colstore.TFUnanswered:
		t.Unanswered++
	case colstore.TFDontKnow:
		t.DontKnow++
	case correct:
		t.Correct++
	default:
		t.Incorrect++
	}
}

// classifyTFCode maps a truefalse code to a per-question outcome.
func classifyTFCode(code, correct uint8) PerQuestionOutcome {
	switch code {
	case colstore.TFUnanswered:
		return OutcomeUnanswered
	case colstore.TFDontKnow:
		return OutcomeDontKnow
	case correct:
		return OutcomeCorrect
	}
	return OutcomeIncorrect
}

// classifyLevelCode maps a Standard-compliant Level single-choice code
// to an outcome.
func (t *ScoreTable) classifyLevelCode(code int32) PerQuestionOutcome {
	switch code {
	case 0:
		return OutcomeUnanswered
	case t.levelDK:
		return OutcomeDontKnow
	case t.levelCorrect:
		return OutcomeCorrect
	}
	return OutcomeIncorrect
}

// ScoreColumnsAt grades respondent i of a columnar dataset: the core
// tally, the three-question T/F optimization tally (the Figure 12
// view), and the all-four optimization tally. It allocates nothing.
func ScoreColumnsAt(d *colstore.Dataset, i int) (core, optScored, optAll Tally) {
	t := ScoreTableFor(d.Schema)
	for _, it := range t.core {
		core.countTF(d.TF(it.ci, i), it.correct)
	}
	for _, it := range t.optTF {
		optScored.countTF(d.TF(it.ci, i), it.correct)
	}
	optAll = optScored
	switch t.classifyLevelCode(d.SingleCode(t.levelCol, i)) {
	case OutcomeUnanswered:
		optAll.Unanswered++
	case OutcomeDontKnow:
		optAll.DontKnow++
	case OutcomeCorrect:
		optAll.Correct++
	default:
		optAll.Incorrect++
	}
	return core, optScored, optAll
}

// ScoreAllColumns grades every respondent of a columnar dataset in
// parallel (workers <= 0 means GOMAXPROCS). It is the columnar
// equivalent of ScoreAll: identical tallies, but the per-respondent
// inner loop reads dense code columns instead of hashing map keys, and
// performs zero allocations.
func ScoreAllColumns(d *colstore.Dataset, workers int) Grades {
	t0 := time.Now()
	_, exc0 := OracleTraceCounts()
	// Force the one-time oracle evaluation (and table build) before
	// fanning out, so workers never contend on the sync.Once. Measured
	// inside the batch window so the FP-exception delta attributes any
	// answer-key derivation to the batch that triggered it.
	ScoreTableFor(d.Schema)
	n := d.Len()
	g := Grades{
		Core:      make([]Tally, n),
		OptScored: make([]Tally, n),
		OptAll:    make([]Tally, n),
	}
	parallel.ForEach(workers, n, func(i int) {
		g.Core[i], g.OptScored[i], g.OptAll[i] = ScoreColumnsAt(d, i)
	})
	_, exc1 := OracleTraceCounts()
	dur := time.Since(t0)
	telemetry.EmitSpan(telemetry.EvBatch, 0, "grade-batch", t0, dur, int64(n), exc1-exc0)
	if fn := gradeBatchObserver.Load(); fn != nil {
		(*fn)(n, dur)
	}
	return g
}

// ClassifyCore returns the outcome of respondent i on core question k
// (paper order). Figure loops fetch the table once per batch and call
// this per cell, keeping the per-cell cost at two column reads.
func (t *ScoreTable) ClassifyCore(d *colstore.Dataset, i, k int) PerQuestionOutcome {
	it := t.core[k]
	return classifyTFCode(d.TF(it.ci, i), it.correct)
}

// ClassifyOpt returns the outcome of respondent i on optimization
// question k (paper order: MADD, FTZ, Level, Fast-math).
func (t *ScoreTable) ClassifyOpt(d *colstore.Dataset, i, k int) PerQuestionOutcome {
	switch k {
	case 0:
		return classifyTFCode(d.TF(t.optTF[0].ci, i), t.optTF[0].correct)
	case 1:
		return classifyTFCode(d.TF(t.optTF[1].ci, i), t.optTF[1].correct)
	case 2:
		return t.classifyLevelCode(d.SingleCode(t.levelCol, i))
	default:
		return classifyTFCode(d.TF(t.optTF[2].ci, i), t.optTF[2].correct)
	}
}

// ClassifyCoreAt returns the outcome of respondent i on core question
// k (paper order) of a columnar dataset.
func ClassifyCoreAt(d *colstore.Dataset, i, k int) PerQuestionOutcome {
	return ScoreTableFor(d.Schema).ClassifyCore(d, i, k)
}

// ClassifyOptAt returns the outcome of respondent i on optimization
// question k (paper order: MADD, FTZ, Level, Fast-math) of a columnar
// dataset.
func ClassifyOptAt(d *colstore.Dataset, i, k int) PerQuestionOutcome {
	return ScoreTableFor(d.Schema).ClassifyOpt(d, i, k)
}
