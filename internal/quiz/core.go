// Package quiz defines the paper's concrete survey instrument: the
// background questionnaire, the 15-question core quiz, the 4-question
// optimization quiz, and the 5-item suspicion quiz.
//
// Every quiz question carries an executable oracle: the "correct
// answer" is computed by running the ieee754 softfloat (and, for the
// optimization quiz, the optsim compiler model) rather than read from a
// hard-coded answer key. Each oracle returns a witness string — a
// concrete counterexample or a summary of the property check — that the
// harness can print.
package quiz

import (
	"fmt"
	"math"
	"math/rand"

	"fpstudy/internal/ieee754"
)

// OracleResult is the outcome of mechanically evaluating a quiz
// assertion.
type OracleResult struct {
	// Holds is whether the assertion is true of IEEE 754 arithmetic.
	Holds bool
	// Witness explains why: a counterexample for false assertions, a
	// proof/check summary for true ones.
	Witness string
}

// CoreQuestion is one assertion of the core quiz.
type CoreQuestion struct {
	// ID is the stable question identifier ("core.commutativity").
	ID string
	// Label is the paper's name for the question.
	Label string
	// Prompt is the participant-facing assertion, phrased (per the
	// paper's design) without IEEE terminology to avoid prompting.
	Prompt string
	// Snippet is the C-syntax code fragment the assertion refers to.
	Snippet string
	// Oracle evaluates the assertion on the softfloat.
	Oracle func() OracleResult
}

// CorrectAnswer returns the survey answer string a perfectly informed
// participant gives.
func (q CoreQuestion) CorrectAnswer() string {
	if q.Oracle().Holds {
		return "true"
	}
	return "false"
}

var f64 = ieee754.Binary64

func fb(v float64) uint64 { return math.Float64bits(v) }

// sampleNonNaN draws a deterministic operand stream avoiding NaNs,
// mixing magnitudes and specials (infinities included, per the quiz
// prompts which exclude only NaNs).
func sampleNonNaN(rng *rand.Rand) uint64 {
	for {
		var b uint64
		switch rng.Intn(6) {
		case 0:
			b = rng.Uint64()
		case 1:
			b = fb(float64(rng.Intn(2001) - 1000))
		case 2:
			b = fb((rng.Float64()*2 - 1) * math.Ldexp(1, rng.Intn(120)-60))
		case 3:
			b = rng.Uint64() & 0x800fffffffffffff // subnormal
		case 4:
			b = f64.Inf(rng.Intn(2) == 0)
		default:
			b = fb(rng.NormFloat64())
		}
		if !f64.IsNaN(b) {
			return b
		}
	}
}

// CoreQuestions returns the 15 core quiz questions in the paper's
// order.
func CoreQuestions() []CoreQuestion {
	return []CoreQuestion{
		{
			ID:      "core.commutativity",
			Label:   "Commutativity",
			Prompt:  "Assuming x and y hold values that are not the result of invalid operations, the assertion never fails.",
			Snippet: "double x, y;\nassert(x + y == y + x);",
			Oracle: func() OracleResult {
				e := oracleEnv()
				rng := rand.New(rand.NewSource(101))
				for i := 0; i < 50000; i++ {
					a, b := sampleNonNaN(rng), sampleNonNaN(rng)
					l := f64.Add(&e, a, b)
					r := f64.Add(&e, b, a)
					if l != r && !(f64.IsNaN(l) && f64.IsNaN(r)) {
						return OracleResult{false, fmt.Sprintf(
							"counterexample: x=%s y=%s", f64.String(a), f64.String(b))}
					}
				}
				return OracleResult{true,
					"holds on 50,000 sampled non-NaN pairs including infinities and subnormals"}
			},
		},
		{
			ID:      "core.associativity",
			Label:   "Associativity",
			Prompt:  "Assuming x, y, and z hold values that are not the result of invalid operations, the assertion never fails.",
			Snippet: "double x, y, z;\nassert((x + y) + z == x + (y + z));",
			Oracle: func() OracleResult {
				e := oracleEnv()
				one := fb(1)
				tiny := fb(math.Ldexp(1, -53))
				l := f64.Add(&e, f64.Add(&e, one, tiny), tiny)
				r := f64.Add(&e, one, f64.Add(&e, tiny, tiny))
				if l != r {
					return OracleResult{false, fmt.Sprintf(
						"counterexample: x=1, y=z=2^-53: (x+y)+z = %s but x+(y+z) = %s",
						f64.Hex(l), f64.Hex(r))}
				}
				return OracleResult{true, "no counterexample found (unexpected)"}
			},
		},
		{
			ID:      "core.distributivity",
			Label:   "Distributivity",
			Prompt:  "Assuming x, y, and z hold values that are not the result of invalid operations, the assertion never fails.",
			Snippet: "double x, y, z;\nassert(x*(y + z) == x*y + x*z);",
			Oracle: func() OracleResult {
				e := oracleEnv()
				x, y, z := fb(0.1), fb(0.2), fb(0.3)
				l := f64.Mul(&e, x, f64.Add(&e, y, z))
				r := f64.Add(&e, f64.Mul(&e, x, y), f64.Mul(&e, x, z))
				if l != r {
					return OracleResult{false, fmt.Sprintf(
						"counterexample: x=0.1 y=0.2 z=0.3: x*(y+z) = %s but x*y+x*z = %s",
						f64.Hex(l), f64.Hex(r))}
				}
				// Fall back to search.
				rng := rand.New(rand.NewSource(103))
				for i := 0; i < 100000; i++ {
					x, y, z := sampleNonNaN(rng), sampleNonNaN(rng), sampleNonNaN(rng)
					l := f64.Mul(&e, x, f64.Add(&e, y, z))
					r := f64.Add(&e, f64.Mul(&e, x, y), f64.Mul(&e, x, z))
					if l != r && !f64.IsNaN(l) && !f64.IsNaN(r) {
						return OracleResult{false, fmt.Sprintf(
							"counterexample: x=%s y=%s z=%s", f64.String(x), f64.String(y), f64.String(z))}
					}
				}
				return OracleResult{true, "no counterexample found (unexpected)"}
			},
		},
		{
			ID:      "core.ordering",
			Label:   "Ordering",
			Prompt:  "Assuming x and y hold values that are not the result of invalid operations, the assertion never fails.",
			Snippet: "double x, y;\nassert((x + y) - x == y);",
			Oracle: func() OracleResult {
				e := oracleEnv()
				x, y := fb(1e16), fb(1)
				got := f64.Sub(&e, f64.Add(&e, x, y), x)
				if got != y {
					return OracleResult{false, fmt.Sprintf(
						"counterexample: x=1e16 y=1: (x+y)-x = %s, not 1", f64.String(got))}
				}
				return OracleResult{true, "no counterexample found (unexpected)"}
			},
		},
		{
			ID:      "core.identity",
			Label:   "Identity",
			Prompt:  "Whatever value x holds, the assertion never fails.",
			Snippet: "double x;\nassert(x == x);",
			Oracle: func() OracleResult {
				e := oracleEnv()
				n := f64.QNaN()
				if !f64.Eq(&e, n, n) {
					return OracleResult{false,
						"counterexample: the result of 0.0/0.0 compares unequal to itself"}
				}
				return OracleResult{true, "no counterexample found (unexpected)"}
			},
		},
		{
			ID:      "core.negzero",
			Label:   "Negative Zero",
			Prompt:  "It is possible for x and y to both hold zero values and yet the assertion fails.",
			Snippet: "double x = /* a zero */, y = /* a zero */;\nassert(x == y);",
			Oracle: func() OracleResult {
				e := oracleEnv()
				zeros := []uint64{f64.Zero(false), f64.Zero(true)}
				for _, a := range zeros {
					for _, b := range zeros {
						if !f64.Eq(&e, a, b) {
							return OracleResult{true, fmt.Sprintf(
								"zeros %s and %s compare unequal", f64.String(a), f64.String(b))}
						}
					}
				}
				return OracleResult{false,
					"checked all zero encodings: +0 and -0 always compare equal"}
			},
		},
		{
			ID:      "core.square",
			Label:   "Square",
			Prompt:  "Assuming x holds a value that is not the result of an invalid operation, the assertion never fails.",
			Snippet: "double x;\nassert(x*x >= 0.0);",
			Oracle: func() OracleResult {
				e := oracleEnv()
				rng := rand.New(rand.NewSource(107))
				for i := 0; i < 50000; i++ {
					x := sampleNonNaN(rng)
					sq := f64.Mul(&e, x, x)
					if !f64.Ge(&e, sq, f64.Zero(false)) {
						return OracleResult{false, fmt.Sprintf(
							"counterexample: x=%s gives x*x=%s", f64.String(x), f64.String(sq))}
					}
				}
				// Also check every binary16 value exhaustively.
				f16 := ieee754.Binary16
				for x := uint64(0); x < 1<<16; x++ {
					if f16.IsNaN(x) {
						continue
					}
					sq := f16.Mul(&e, x, x)
					if !f16.Ge(&e, sq, f16.Zero(false)) {
						return OracleResult{false, fmt.Sprintf(
							"binary16 counterexample: %#04x", x)}
					}
				}
				return OracleResult{true,
					"holds exhaustively in binary16 and on 50,000 binary64 samples (unlike integer arithmetic, where x*x can wrap negative)"}
			},
		},
		{
			ID:      "core.overflow",
			Label:   "Overflow",
			Prompt:  "When a computation on large positive values exceeds the largest representable value, the result wraps around to the negative range, as in integer arithmetic.",
			Snippet: "double x = DBL_MAX;\nx = x * 2.0;\n/* x is now negative */",
			Oracle: func() OracleResult {
				e := oracleEnv()
				r := f64.Mul(&e, f64.MaxFinite(false), fb(2))
				if f64.SignBit(r) {
					return OracleResult{true, "overflow wrapped to a negative value"}
				}
				return OracleResult{false, fmt.Sprintf(
					"DBL_MAX*2 = %s: floating point overflow saturates at infinity instead of wrapping",
					f64.String(r))}
			},
		},
		{
			ID:      "core.divzero",
			Label:   "Divide By Zero",
			Prompt:  "After this statement executes, x holds a value that is not the result of an invalid operation (i.e., arithmetic on it behaves like arithmetic on an ordinary value).",
			Snippet: "double x = 1.0/0.0;",
			Oracle: func() OracleResult {
				e := oracleEnv()
				r := f64.Div(&e, fb(1), fb(0))
				if f64.IsNaN(r) {
					return OracleResult{false, "1.0/0.0 produced a NaN"}
				}
				return OracleResult{true, fmt.Sprintf(
					"1.0/0.0 = %s: an infinity, which can propagate to output disguised as an ordinary number",
					f64.String(r))}
			},
		},
		{
			ID:      "core.zerodivzero",
			Label:   "Zero Divide By Zero",
			Prompt:  "After this statement executes, x holds a value that is not the result of an invalid operation.",
			Snippet: "double x = 0.0/0.0;",
			Oracle: func() OracleResult {
				e := oracleEnv()
				r := f64.Div(&e, fb(0), fb(0))
				if !f64.IsNaN(r) {
					return OracleResult{true, fmt.Sprintf("0.0/0.0 = %s", f64.String(r))}
				}
				return OracleResult{false,
					"0.0/0.0 is a NaN, which propagates visibly to the output"}
			},
		},
		{
			ID:      "core.satplus",
			Label:   "Saturation Plus",
			Prompt:  "It is possible for x to hold a value such that the assertion fails.",
			Snippet: "double x;\nassert(x + 1.0 != x);",
			Oracle: func() OracleResult {
				e := oracleEnv()
				inf := f64.Inf(false)
				if f64.Eq(&e, f64.Add(&e, inf, fb(1)), inf) {
					big := fb(1e30)
					_ = big
					return OracleResult{true,
						"x = infinity gives x+1 == x (saturation); so does x = 1e30 (absorption)"}
				}
				return OracleResult{false, "no saturating value found (unexpected)"}
			},
		},
		{
			ID:      "core.satminus",
			Label:   "Saturation Minus",
			Prompt:  "It is possible for x to hold a value such that the assertion fails.",
			Snippet: "double x;\nassert(x - 1.0 != x);",
			Oracle: func() OracleResult {
				e := oracleEnv()
				inf := f64.Inf(false)
				if f64.Eq(&e, f64.Sub(&e, inf, fb(1)), inf) {
					return OracleResult{true,
						"x = infinity gives x-1 == x: there is no backing off from infinity"}
				}
				return OracleResult{false, "no saturating value found (unexpected)"}
			},
		},
		{
			ID:      "core.denormprec",
			Label:   "Denormal Precision",
			Prompt:  "Representable values very close to zero have fewer significant digits available than values further from zero.",
			Snippet: "double x = 1e-310; /* vs. */ double y = 1e-300;",
			Oracle: func() OracleResult {
				// In the subnormal range, the ulp stays fixed while the
				// value shrinks, so relative precision degrades down to
				// a single significant bit at the minimum subnormal.
				e := oracleEnv()
				// 1e-310 is subnormal in binary64; adding a unit in the
				// last place is a far larger relative change than for a
				// normal number.
				x := fb(1e-310)
				if !f64.IsSubnormal(x) {
					return OracleResult{false, "1e-310 unexpectedly normal"}
				}
				next := x + 1 // next representable
				rel := (f64.ToFloat64(next) - f64.ToFloat64(x)) / f64.ToFloat64(x)
				_ = e
				const normalEps = 0x1p-52 // relative ulp of a normal number
				if rel > 10*normalEps {
					return OracleResult{true, fmt.Sprintf(
						"at 1e-310 one ulp is a %.1e relative step (vs ~1e-16 for normal numbers): gradual underflow trades precision for range",
						rel)}
				}
				return OracleResult{false, "subnormals show full precision (unexpected)"}
			},
		},
		{
			ID:      "core.opprec",
			Label:   "Operation Precision",
			Prompt:  "The result of an arithmetic operation can have less precision (fewer correct significant digits) than either of its operands.",
			Snippet: "double z = x + y; /* z may be less precise than x or y */",
			Oracle: func() OracleResult {
				e := oracleEnv()
				r := f64.Add(&e, fb(0.1), fb(0.2))
				if e.LastRaised.Has(ieee754.FlagInexact) {
					return OracleResult{true,
						"0.1 + 0.2 required rounding (the true sum is not representable), losing precision relative to the operands"}
				}
				return OracleResult{false, fmt.Sprintf(
					"0.1+0.2 = %s was exact (unexpected)", f64.String(r))}
			},
		},
		{
			ID:      "core.sigexc",
			Label:   "Exception Signal",
			Prompt:  "If any operation in a program produces an exceptional result (such as the result of dividing by zero or an invalid operation), the program is informed by default, e.g. via a signal that terminates it.",
			Snippet: "double x = 0.0/0.0; /* program receives SIGFPE here? */",
			Oracle: func() OracleResult {
				// By default IEEE exceptions only set sticky status
				// flags; execution continues with the substituted
				// result. Demonstrate: run an invalid op and observe
				// that control flow proceeds and only a flag records it.
				e := oracleEnv()
				r := f64.Div(&e, fb(0), fb(0))
				executedPast := true // we are still running
				if executedPast && e.Flags.Has(ieee754.FlagInvalid) && f64.IsNaN(r) {
					return OracleResult{false,
						"0.0/0.0 merely set the sticky invalid flag and returned NaN; by default no trap or signal is delivered (unlike integer division by zero)"}
				}
				return OracleResult{true, "a signal was delivered (unexpected)"}
			},
		},
	}
}

// CoreQuestionByID returns the core question with the given ID.
func CoreQuestionByID(id string) (CoreQuestion, bool) {
	for _, q := range CoreQuestions() {
		if q.ID == id {
			return q, true
		}
	}
	return CoreQuestion{}, false
}
