package quiz

import (
	"sync/atomic"
	"testing"

	"fpstudy/internal/ieee754"
)

// TestOracleObserver pins the FP-exception bridge contract: an
// installed observer sees the softfloat operations an oracle runs, and
// the oracle's verdict is identical with and without it.
func TestOracleObserver(t *testing.T) {
	q := CoreQuestions()[0] // commutativity: 100k observed additions
	before := q.Oracle()

	var ops, inexact atomic.Int64
	SetOracleObserver(func(ev ieee754.OpEvent) {
		ops.Add(1)
		if ev.Raised.Has(ieee754.FlagInexact) {
			inexact.Add(1)
		}
	})
	defer SetOracleObserver(nil)

	during := q.Oracle()
	if during.Holds != before.Holds || during.Witness != before.Witness {
		t.Errorf("observer changed oracle outcome: %+v vs %+v", during, before)
	}
	if ops.Load() == 0 {
		t.Fatal("observer saw no operations during oracle evaluation")
	}
	if inexact.Load() == 0 {
		t.Error("commutativity sampling raised no inexact events (implausible)")
	}

	SetOracleObserver(nil)
	n := ops.Load()
	after := q.Oracle()
	if after.Holds != before.Holds {
		t.Error("uninstalling observer changed oracle outcome")
	}
	if ops.Load() != n {
		t.Error("observer still firing after SetOracleObserver(nil)")
	}
}
