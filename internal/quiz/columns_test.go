package quiz

import (
	"sync/atomic"
	"testing"

	"fpstudy/internal/colstore"
	"fpstudy/internal/ieee754"
)

// columnarFixture builds a small columnar cohort by hand: respondent 0
// answers everything correctly, respondent 1 mixes wrong / don't know /
// unanswered, respondent 2 answers nothing.
func columnarFixture(t testing.TB) *colstore.Dataset {
	s := Columns()
	d := s.NewDataset("1.0", 3)
	for _, q := range CoreQuestions() {
		ci := s.MustColumnIndex(q.ID)
		d.SetTF(ci, 0, tfCorrectCode(CoreAnswer(q.ID)))
		d.SetTF(ci, 1, colstore.TFDontKnow)
	}
	for _, q := range OptQuestions() {
		ci := s.MustColumnIndex(q.ID)
		if q.IsTrueFalse() {
			correct := tfCorrectCode(OptAnswer(q.ID))
			d.SetTF(ci, 0, correct)
			wrong := colstore.TFTrue
			if correct == colstore.TFTrue {
				wrong = colstore.TFFalse
			}
			d.SetTF(ci, 1, wrong)
		} else {
			d.SetSingle(ci, 0, s.Column(ci).MustOptionCode(OptAnswer(q.ID)))
			// Respondent 1 leaves the choice question unanswered (0).
		}
	}
	return d
}

// TestScoreColumnsMatchesRowScoring grades the fixture both ways —
// columnar and via the materialized row view — and requires identical
// tallies.
func TestScoreColumnsMatchesRowScoring(t *testing.T) {
	d := columnarFixture(t)
	rows := d.ToSurvey()
	for i := 0; i < d.Len(); i++ {
		core, optScored, optAll := ScoreColumnsAt(d, i)
		r := rows.Responses[i]
		wantCore, wantScored, wantAll := ScoreCore(r), ScoreOptScored(r), ScoreOpt(r)
		if core != wantCore || optScored != wantScored || optAll != wantAll {
			t.Fatalf("respondent %d: columnar (%+v,%+v,%+v) != row (%+v,%+v,%+v)",
				i, core, optScored, optAll, wantCore, wantScored, wantAll)
		}
	}
}

// TestScoreColumnsFixtureValues pins the fixture's expected tallies
// directly, independent of the row scorer.
func TestScoreColumnsFixtureValues(t *testing.T) {
	d := columnarFixture(t)
	core, _, optAll := ScoreColumnsAt(d, 0)
	if core.Correct != len(CoreQuestions()) || optAll.Correct != len(OptQuestions()) {
		t.Fatalf("perfect respondent scored %d/%d core, %d/%d opt",
			core.Correct, len(CoreQuestions()), optAll.Correct, len(OptQuestions()))
	}
	core, _, optAll = ScoreColumnsAt(d, 2)
	if core.Unanswered != len(CoreQuestions()) || optAll.Unanswered != len(OptQuestions()) {
		t.Fatalf("silent respondent tallied %+v / %+v", core, optAll)
	}
	core, optScored, optAll := ScoreColumnsAt(d, 1)
	if core.DontKnow != len(CoreQuestions()) {
		t.Fatalf("respondent 1 core = %+v, want all don't-know", core)
	}
	if optScored.Incorrect != 3 || optAll.Unanswered != 1 {
		t.Fatalf("respondent 1 opt = %+v / %+v", optScored, optAll)
	}
}

// TestClassifyAtMatchesRows cross-checks the per-question columnar
// classifiers against the row classifier for every question slot.
func TestClassifyAtMatchesRows(t *testing.T) {
	d := columnarFixture(t)
	rows := d.ToSurvey()
	for i := 0; i < d.Len(); i++ {
		r := rows.Responses[i]
		for k, q := range CoreQuestions() {
			want := ClassifyCore(r, q)
			if got := ClassifyCoreAt(d, i, k); got != want {
				t.Fatalf("respondent %d core[%d]=%s: %v != %v", i, k, q.ID, got, want)
			}
		}
		for k, q := range OptQuestions() {
			want := ClassifyOpt(r, q)
			if got := ClassifyOptAt(d, i, k); got != want {
				t.Fatalf("respondent %d opt[%d]=%s: %v != %v", i, k, q.ID, got, want)
			}
		}
	}
}

// TestScoreColumnsZeroAlloc pins the zero-allocation contract of
// columnar grading.
func TestScoreColumnsZeroAlloc(t *testing.T) {
	d := columnarFixture(t)
	ScoreTableFor(d.Schema) // warm the one-time table build
	var sink Tally
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < d.Len(); i++ {
			core, _, optAll := ScoreColumnsAt(d, i)
			sink.Correct += core.Correct + optAll.Correct
		}
	})
	if allocs != 0 {
		t.Fatalf("ScoreColumnsAt allocates %.1f allocs/op, want 0", allocs)
	}
	_ = sink
}

// TestScoreAllColumnsWorkersInvariant checks grading is independent of
// the worker count.
func TestScoreAllColumnsWorkersInvariant(t *testing.T) {
	d := columnarFixture(t)
	base := ScoreAllColumns(d, 1)
	for _, w := range []int{2, 4, 0} {
		g := ScoreAllColumns(d, w)
		for i := 0; i < d.Len(); i++ {
			if g.Core[i] != base.Core[i] || g.OptScored[i] != base.OptScored[i] ||
				g.OptAll[i] != base.OptAll[i] {
				t.Fatalf("workers=%d diverges at respondent %d", w, i)
			}
		}
	}
}

// BenchmarkScoreColumns times columnar grading of one respondent.
func BenchmarkScoreColumns(b *testing.B) {
	d := columnarFixture(b)
	ScoreTableFor(d.Schema)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		ScoreColumnsAt(d, n%d.Len())
	}
}

// TestScoreTableCachedOncePerProcess pins the oracle-cache contract:
// the canonical schema's grading table is one shared instance, and once
// the answer key exists, scoring any number of datasets consults it
// without ever re-running an ieee754 oracle.
func TestScoreTableCachedOncePerProcess(t *testing.T) {
	a := ScoreTableFor(Columns())
	b := ScoreTableFor(Columns())
	if a != b {
		t.Fatal("canonical ScoreTable not cached: distinct instances returned")
	}

	// With the key warm, further table fetches and full gradings must
	// not evaluate a single oracle operation. The observer would count
	// any softfloat activity the oracles perform.
	var evals atomic.Int64
	SetOracleObserver(func(ieee754.OpEvent) { evals.Add(1) })
	defer SetOracleObserver(nil)

	d := Columns().NewDataset("1.0", 16)
	_ = ScoreAllColumns(d, 1)
	_ = ScoreTableFor(Columns())
	_ = CoreAnswer(CoreQuestions()[0].ID)
	if n := evals.Load(); n != 0 {
		t.Fatalf("grading after answer-key build re-ran oracles (%d softfloat ops observed)", n)
	}
}
