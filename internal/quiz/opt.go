package quiz

import (
	"fmt"

	"fpstudy/internal/expr"
	"fpstudy/internal/ieee754"
	"fpstudy/internal/optsim"
)

// OptQuestion is one question of the optimization quiz. Three are
// true/false(/don't know); Standard-compliant Level is a single choice
// among optimization levels (and is excluded from chance computations,
// as in the paper's Figure 12).
type OptQuestion struct {
	ID     string
	Label  string
	Prompt string
	// Choice lists options for the single-choice question; empty for
	// true/false questions.
	Choices []string
	// Oracle evaluates the assertion mechanically via optsim.
	Oracle func() OracleResult
	// CorrectChoice is the right option for choice questions
	// (computed from the oracle for the level question).
	CorrectChoice string
}

// IsTrueFalse reports whether the question is scored as T/F.
func (q OptQuestion) IsTrueFalse() bool { return len(q.Choices) == 0 }

// CorrectAnswer returns the survey answer string for a perfectly
// informed participant.
func (q OptQuestion) CorrectAnswer() string {
	if q.IsTrueFalse() {
		if q.Oracle().Holds {
			return "true"
		}
		return "false"
	}
	return q.CorrectChoice
}

// LevelChoices are the options for the Standard-compliant Level
// question.
var LevelChoices = []string{"-O0", "-O1", "-O2", "-O3"}

// OptQuestions returns the four optimization quiz questions in the
// paper's order.
func OptQuestions() []OptQuestion {
	f := ieee754.Binary64
	return []OptQuestion{
		{
			ID:    "opt.madd",
			Label: "MADD",
			Prompt: "Some processors provide an instruction that computes x*y + z in a single step with a single rounding at the end. " +
				"Using this instruction always produces the same results as a separate multiplication followed by an addition, " +
				"and it was included in the original (1985) floating point standard.",
			Oracle: func() OracleResult {
				// Value claim: fused differs from separate on a witness.
				e := oracleEnv()
				a := f.FromFloat64(&e, 1+0x1p-30)
				c := f.FromFloat64(&e, -1)
				fused := f.FMA(&e, a, a, c)
				sep := f.Add(&e, f.Mul(&e, a, a), c)
				if fused == sep {
					return OracleResult{true, "fused and separate always agreed (unexpected)"}
				}
				return OracleResult{false, fmt.Sprintf(
					"witness x=y=1+2^-30, z=-1: fused gives %s, separate gives %s; "+
						"fused multiply-add entered the standard only in the 2008 revision",
					f.Hex(fused), f.Hex(sep))}
			},
		},
		{
			ID:    "opt.ftz",
			Label: "Flush to Zero",
			Prompt: "Some processors have a mode that replaces very small intermediate results with zero for speed " +
				"(and treats very small inputs as zero). Computing in this mode still complies with the floating point standard.",
			Oracle: func() OracleResult {
				p := expr.MustParse("a*b")
				cfg := optsim.Config{Name: "ftz", FTZDAZ: true}
				v := optsim.Check(f, p, cfg, optsim.GenCorpus(f, p, 3000, 11))
				if v.Compliant {
					return OracleResult{true, "FTZ/DAZ never changed a result (unexpected)"}
				}
				w := v.Witness
				return OracleResult{false, fmt.Sprintf(
					"witness a=%s b=%s: IEEE gives %s, FTZ/DAZ gives %s — gradual underflow is required by the standard",
					f.String(w.Inputs["a"]), f.String(w.Inputs["b"]),
					f.String(w.Strict), f.String(w.Optimized))}
			},
		},
		{
			ID:    "opt.level",
			Label: "Standard-compliant Level",
			Prompt: "Typical compilers offer optimization levels -O0 through -O3. " +
				"Which is generally the highest level that still preserves standard-compliant floating point behavior?",
			Choices: LevelChoices,
			Oracle: func() OracleResult {
				l := optsim.HighestCompliantLevel(f, optsim.WitnessPrograms(), 800, 42)
				return OracleResult{
					Holds: l == optsim.O2,
					Witness: fmt.Sprintf(
						"sweep over witness programs: %s is the highest compliant level; -O3 enables FMA contraction which changes results",
						l),
				}
			},
			CorrectChoice: "-O2",
		},
		{
			ID:    "opt.fastmath",
			Label: "Fast-math",
			Prompt: "Compilers offer a fast-math option (e.g. --ffast-math) enabling aggressive floating point optimizations. " +
				"Using it can cause the program's floating point behavior to no longer comply with the standard.",
			Oracle: func() OracleResult {
				p := expr.MustParse("(a + b) + c")
				v := optsim.Check(f, p, optsim.FastMath(), optsim.GenCorpus(f, p, 3000, 13))
				if !v.Compliant {
					w := v.Witness
					return OracleResult{true, fmt.Sprintf(
						"witness a=%s b=%s c=%s: strict (a+b)+c = %s but reassociated evaluation gives %s (passes: %v)",
						f.String(w.Inputs["a"]), f.String(w.Inputs["b"]), f.String(w.Inputs["c"]),
						f.String(w.Strict), f.String(w.Optimized), v.PassesApplied)}
				}
				return OracleResult{false, "fast-math never changed a result (unexpected)"}
			},
		},
	}
}

// OptQuestionByID returns the optimization question with the given ID.
func OptQuestionByID(id string) (OptQuestion, bool) {
	for _, q := range OptQuestions() {
		if q.ID == id {
			return q, true
		}
	}
	return OptQuestion{}, false
}
