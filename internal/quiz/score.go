package quiz

import (
	"sync"

	"fpstudy/internal/survey"
)

// The oracles run real property checks (tens of thousands of softfloat
// operations for some questions), so scoring caches the derived answer
// key after the first evaluation.
var (
	answerKeyOnce sync.Once
	coreAnswerKey map[string]string
	optAnswerKey  map[string]string
)

func answerKeys() (map[string]string, map[string]string) {
	answerKeyOnce.Do(func() {
		coreAnswerKey = map[string]string{}
		for _, q := range CoreQuestions() {
			coreAnswerKey[q.ID] = q.CorrectAnswer()
		}
		optAnswerKey = map[string]string{}
		for _, q := range OptQuestions() {
			optAnswerKey[q.ID] = q.CorrectAnswer()
		}
	})
	return coreAnswerKey, optAnswerKey
}

// CoreAnswer returns the cached oracle-derived correct answer string
// for a core question ID.
func CoreAnswer(id string) string {
	core, _ := answerKeys()
	return core[id]
}

// OptAnswer returns the cached oracle-derived correct answer string for
// an optimization question ID.
func OptAnswer(id string) string {
	_, opt := answerKeys()
	return opt[id]
}

// Tally counts quiz outcomes for one participant.
type Tally struct {
	Correct    int
	Incorrect  int
	DontKnow   int
	Unanswered int
}

// Total returns the number of questions tallied.
func (t Tally) Total() int { return t.Correct + t.Incorrect + t.DontKnow + t.Unanswered }

// Add accumulates another tally.
func (t *Tally) Add(o Tally) {
	t.Correct += o.Correct
	t.Incorrect += o.Incorrect
	t.DontKnow += o.DontKnow
	t.Unanswered += o.Unanswered
}

// scoreTF classifies one true/false answer against the correct string.
func scoreTF(a survey.Answer, correct string) func(*Tally) {
	switch {
	case a.IsUnanswered():
		return func(t *Tally) { t.Unanswered++ }
	case a.Choice == survey.AnswerDontKnow:
		return func(t *Tally) { t.DontKnow++ }
	case a.Choice == correct:
		return func(t *Tally) { t.Correct++ }
	default:
		return func(t *Tally) { t.Incorrect++ }
	}
}

// ScoreCore grades the 15 core questions of a response.
func ScoreCore(r survey.Response) Tally {
	var t Tally
	for _, q := range CoreQuestions() {
		scoreTF(r.Answer(q.ID), CoreAnswer(q.ID))(&t)
	}
	return t
}

// ScoreOpt grades the optimization quiz. All four questions are
// tallied; the Standard-compliant Level question is a single choice, so
// "don't know" for it is represented by leaving it unanswered with a
// DontKnow sentinel choice handled here.
func ScoreOpt(r survey.Response) Tally {
	var t Tally
	for _, q := range OptQuestions() {
		a := r.Answer(q.ID)
		if q.IsTrueFalse() {
			scoreTF(a, OptAnswer(q.ID))(&t)
			continue
		}
		switch {
		case a.IsUnanswered():
			t.Unanswered++
		case a.Choice == survey.AnswerDontKnow:
			t.DontKnow++
		case a.Choice == q.CorrectChoice:
			t.Correct++
		default:
			t.Incorrect++
		}
	}
	return t
}

// ScoreOptScored grades only the three true/false optimization
// questions — the view the paper's Figure 12 reports (the
// Standard-compliant Level choice question is excluded there because it
// is not T/F).
func ScoreOptScored(r survey.Response) Tally {
	var t Tally
	for _, q := range OptQuestions() {
		if !q.IsTrueFalse() {
			continue
		}
		scoreTF(r.Answer(q.ID), OptAnswer(q.ID))(&t)
	}
	return t
}

// CoreChance is the expected number of correct core answers under
// uniform random true/false guessing (15 questions * 1/2).
const CoreChance = 7.5

// OptChance is the expected correct count guessing the three T/F
// optimization questions (Standard-compliant Level excluded, per the
// paper's Figure 12 note).
const OptChance = 1.5

// PerQuestionOutcome classifies one response's answer to one question.
type PerQuestionOutcome int

const (
	OutcomeCorrect PerQuestionOutcome = iota
	OutcomeIncorrect
	OutcomeDontKnow
	OutcomeUnanswered
)

// ClassifyCore returns the outcome of a response on one core question.
func ClassifyCore(r survey.Response, q CoreQuestion) PerQuestionOutcome {
	return classify(r.Answer(q.ID), CoreAnswer(q.ID))
}

// ClassifyOpt returns the outcome of a response on one optimization
// question.
func ClassifyOpt(r survey.Response, q OptQuestion) PerQuestionOutcome {
	if q.IsTrueFalse() {
		return classify(r.Answer(q.ID), OptAnswer(q.ID))
	}
	a := r.Answer(q.ID)
	switch {
	case a.IsUnanswered():
		return OutcomeUnanswered
	case a.Choice == survey.AnswerDontKnow:
		return OutcomeDontKnow
	case a.Choice == q.CorrectChoice:
		return OutcomeCorrect
	}
	return OutcomeIncorrect
}

func classify(a survey.Answer, correct string) PerQuestionOutcome {
	switch {
	case a.IsUnanswered():
		return OutcomeUnanswered
	case a.Choice == survey.AnswerDontKnow:
		return OutcomeDontKnow
	case a.Choice == correct:
		return OutcomeCorrect
	}
	return OutcomeIncorrect
}
