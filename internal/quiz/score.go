package quiz

import (
	"sync"

	"fpstudy/internal/parallel"
	"fpstudy/internal/survey"
)

// The oracles run real property checks (tens of thousands of softfloat
// operations for some questions), so scoring caches the derived answer
// key — and the per-question scoring metadata — after the first
// evaluation. The cache is computed once under a sync.Once and then
// shared read-only, so any number of grading goroutines can score
// concurrently without re-running an oracle or taking a lock.
var (
	answerKeyOnce sync.Once
	coreAnswerKey map[string]string
	optAnswerKey  map[string]string

	// coreItems/optItems are the flattened scoring tables: question IDs
	// and correct answers in paper order. Grading hot loops iterate
	// these instead of rebuilding the full question set (with its
	// oracle closures) per respondent.
	coreItems []scoredItem
	optItems  []scoredItem
)

// scoredItem is the minimal per-question data needed to grade one
// answer.
type scoredItem struct {
	id      string
	correct string // correct answer string (T/F or choice)
	isTF    bool
}

func buildAnswerKeys() {
	coreAnswerKey = map[string]string{}
	for _, q := range CoreQuestions() {
		coreAnswerKey[q.ID] = q.CorrectAnswer()
		coreItems = append(coreItems, scoredItem{
			id: q.ID, correct: coreAnswerKey[q.ID], isTF: true,
		})
	}
	optAnswerKey = map[string]string{}
	for _, q := range OptQuestions() {
		optAnswerKey[q.ID] = q.CorrectAnswer()
		optItems = append(optItems, scoredItem{
			id: q.ID, correct: optAnswerKey[q.ID], isTF: q.IsTrueFalse(),
		})
	}
}

func answerKeys() (map[string]string, map[string]string) {
	answerKeyOnce.Do(buildAnswerKeys)
	return coreAnswerKey, optAnswerKey
}

// scoreItems returns the cached flattened scoring tables.
func scoreItems() (core, opt []scoredItem) {
	answerKeyOnce.Do(buildAnswerKeys)
	return coreItems, optItems
}

// CoreAnswer returns the cached oracle-derived correct answer string
// for a core question ID.
func CoreAnswer(id string) string {
	core, _ := answerKeys()
	return core[id]
}

// OptAnswer returns the cached oracle-derived correct answer string for
// an optimization question ID.
func OptAnswer(id string) string {
	_, opt := answerKeys()
	return opt[id]
}

// Tally counts quiz outcomes for one participant.
type Tally struct {
	Correct    int
	Incorrect  int
	DontKnow   int
	Unanswered int
}

// Total returns the number of questions tallied.
func (t Tally) Total() int { return t.Correct + t.Incorrect + t.DontKnow + t.Unanswered }

// Add accumulates another tally.
func (t *Tally) Add(o Tally) {
	t.Correct += o.Correct
	t.Incorrect += o.Incorrect
	t.DontKnow += o.DontKnow
	t.Unanswered += o.Unanswered
}

// count classifies one answer against the correct string and
// increments the matching bucket.
func (t *Tally) count(a survey.Answer, correct string) {
	switch {
	case a.IsUnanswered():
		t.Unanswered++
	case a.Choice == survey.AnswerDontKnow:
		t.DontKnow++
	case a.Choice == correct:
		t.Correct++
	default:
		t.Incorrect++
	}
}

// ScoreCore grades the 15 core questions of a response.
func ScoreCore(r survey.Response) Tally {
	items, _ := scoreItems()
	var t Tally
	for _, it := range items {
		t.count(r.Answer(it.id), it.correct)
	}
	return t
}

// ScoreOpt grades the optimization quiz. All four questions are
// tallied; the Standard-compliant Level question is a single choice
// whose "don't know" is an explicit option handled by the same
// classification.
func ScoreOpt(r survey.Response) Tally {
	_, items := scoreItems()
	var t Tally
	for _, it := range items {
		t.count(r.Answer(it.id), it.correct)
	}
	return t
}

// ScoreOptScored grades only the three true/false optimization
// questions — the view the paper's Figure 12 reports (the
// Standard-compliant Level choice question is excluded there because it
// is not T/F).
func ScoreOptScored(r survey.Response) Tally {
	_, items := scoreItems()
	var t Tally
	for _, it := range items {
		if !it.isTF {
			continue
		}
		t.count(r.Answer(it.id), it.correct)
	}
	return t
}

// Grades holds the per-respondent tallies of one graded dataset, in
// response order.
type Grades struct {
	Core      []Tally // 15 core questions
	OptScored []Tally // the three T/F optimization questions (Figure 12 view)
	OptAll    []Tally // all four optimization questions
}

// ScoreAll grades every response of a dataset in parallel (workers <= 0
// means GOMAXPROCS). The answer key is derived once (running the
// oracles if this is the first scoring in the process) and shared
// read-only across workers; the output is index-ordered and identical
// at any worker count.
func ScoreAll(ds *survey.Dataset, workers int) Grades {
	// Force the one-time oracle evaluation before fanning out, so
	// workers never contend on the sync.Once.
	scoreItems()
	n := len(ds.Responses)
	g := Grades{
		Core:      make([]Tally, n),
		OptScored: make([]Tally, n),
		OptAll:    make([]Tally, n),
	}
	parallel.ForEach(workers, n, func(i int) {
		r := ds.Responses[i]
		g.Core[i] = ScoreCore(r)
		g.OptScored[i] = ScoreOptScored(r)
		g.OptAll[i] = ScoreOpt(r)
	})
	return g
}

// CoreChance is the expected number of correct core answers under
// uniform random true/false guessing (15 questions * 1/2).
const CoreChance = 7.5

// OptChance is the expected correct count guessing the three T/F
// optimization questions (Standard-compliant Level excluded, per the
// paper's Figure 12 note).
const OptChance = 1.5

// PerQuestionOutcome classifies one response's answer to one question.
type PerQuestionOutcome int

const (
	OutcomeCorrect PerQuestionOutcome = iota
	OutcomeIncorrect
	OutcomeDontKnow
	OutcomeUnanswered
)

// ClassifyCore returns the outcome of a response on one core question.
func ClassifyCore(r survey.Response, q CoreQuestion) PerQuestionOutcome {
	return classify(r.Answer(q.ID), CoreAnswer(q.ID))
}

// ClassifyOpt returns the outcome of a response on one optimization
// question.
func ClassifyOpt(r survey.Response, q OptQuestion) PerQuestionOutcome {
	if q.IsTrueFalse() {
		return classify(r.Answer(q.ID), OptAnswer(q.ID))
	}
	a := r.Answer(q.ID)
	switch {
	case a.IsUnanswered():
		return OutcomeUnanswered
	case a.Choice == survey.AnswerDontKnow:
		return OutcomeDontKnow
	case a.Choice == q.CorrectChoice:
		return OutcomeCorrect
	}
	return OutcomeIncorrect
}

func classify(a survey.Answer, correct string) PerQuestionOutcome {
	switch {
	case a.IsUnanswered():
		return OutcomeUnanswered
	case a.Choice == survey.AnswerDontKnow:
		return OutcomeDontKnow
	case a.Choice == correct:
		return OutcomeCorrect
	}
	return OutcomeIncorrect
}
