package core

import (
	"fmt"

	"fpstudy/internal/paperdata"
	"fpstudy/internal/quiz"
	"fpstudy/internal/report"
	"fpstudy/internal/stats"
)

// CalibrationReport quantifies how closely the regenerated data matches
// the paper's published aggregates: a chi-square goodness-of-fit per
// core question against the exact Figure 14 percentages, plus bootstrap
// confidence intervals for the Figure 12 means. It is the statistical
// backing for EXPERIMENTS.md.
func (r *Results) CalibrationReport() report.Table {
	t := report.Table{
		Title:  "Calibration: regenerated responses vs published distributions",
		Header: []string{"Question", "chi2", "df", "crit(5%)", "fit"},
	}
	n := len(r.MainDataset().Responses)
	fails := 0
	for i, q := range quiz.CoreQuestions() {
		row := paperdata.Figure14Core[i]
		var c, inc, dk, un int
		for _, resp := range r.MainDataset().Responses {
			switch quiz.ClassifyCore(resp, q) {
			case quiz.OutcomeCorrect:
				c++
			case quiz.OutcomeIncorrect:
				inc++
			case quiz.OutcomeDontKnow:
				dk++
			case quiz.OutcomeUnanswered:
				un++
			}
		}
		observed := []int{c, inc, dk, un}
		expected := []float64{row.Correct, row.Incorrect, row.DontKnow, row.Unanswered}
		stat, df := stats.ChiSquareGOF(observed, expected)
		crit := stats.ChiSquareCritical05(df)
		fit := "ok"
		if stat > crit {
			fit = "off"
			fails++
		}
		t.AddRow(q.Label, report.F2(stat), report.I(df), report.F2(crit), fit)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("n=%d; %d/%d questions within the 5%% chi-square band of the published distribution",
			n, 15-fails, 15))

	// Bootstrap CI on the headline mean.
	scores := make([]float64, len(r.CoreTallies))
	for i, tl := range r.CoreTallies {
		scores[i] = float64(tl.Correct)
	}
	lo, hi := stats.BootstrapMeanCI(scores, 0.95, 2000, r.Study.Seed)
	t.Notes = append(t.Notes,
		fmt.Sprintf("core mean %.2f, 95%% bootstrap CI [%.2f, %.2f]; paper 8.5; chance 7.5",
			stats.Mean(scores), lo, hi))
	inBand := lo <= paperdata.Figure12Core.Correct && paperdata.Figure12Core.Correct <= hi
	t.Notes = append(t.Notes, fmt.Sprintf("paper mean inside CI: %v", inBand))
	return t
}

// FactorAssociation computes Cramér's V between each single-choice
// background factor and a above/below-median split of core scores — the
// "no particularly strong factor" analysis of Section IV-B in effect
// size terms.
func (r *Results) FactorAssociation() report.Table {
	t := report.Table{
		Title:  "Factor association with core score (Cramér's V on above/below-median split)",
		Header: []string{"Factor", "levels", "V", "strength"},
	}
	scores := make([]float64, len(r.CoreTallies))
	for i, tl := range r.CoreTallies {
		scores[i] = float64(tl.Correct)
	}
	median := stats.Median(scores)

	factors := []struct {
		name string
		id   string
	}{
		{"Contributed Codebase Size", quiz.BGContribSize},
		{"Involved Codebase Size", quiz.BGInvolvedSize},
		{"Area", quiz.BGArea},
		{"Software Development Role", quiz.BGRole},
		{"Formal Training", quiz.BGFormalTraining},
		{"Position", quiz.BGPosition},
		{"Contributed FP Extent", quiz.BGContribExtent},
	}
	for _, f := range factors {
		levels := map[string]int{}
		var order []string
		for _, resp := range r.MainDataset().Responses {
			l := resp.Answer(f.id).Choice
			if _, ok := levels[l]; !ok {
				levels[l] = len(order)
				order = append(order, l)
			}
		}
		table := make([][]int, len(order))
		for i := range table {
			table[i] = make([]int, 2)
		}
		for i, resp := range r.MainDataset().Responses {
			l := levels[resp.Answer(f.id).Choice]
			col := 0
			if scores[i] > median {
				col = 1
			}
			table[l][col]++
		}
		v := stats.CramersV(table)
		strength := "negligible"
		switch {
		case v >= 0.5:
			strength = "strong"
		case v >= 0.3:
			strength = "moderate"
		case v >= 0.1:
			strength = "weak"
		}
		t.AddRow(f.name, report.I(len(order)), report.F2(v), strength)
	}
	t.Notes = append(t.Notes,
		"paper: several factors are somewhat predictive, none has an outsize impact — expect weak/moderate at best")
	return t
}
