package core

import (
	"fmt"

	"fpstudy/internal/paperdata"
	"fpstudy/internal/quiz"
	"fpstudy/internal/stats"
)

// Claim is one of the paper's headline findings, checked against the
// regenerated data.
type Claim struct {
	Name   string
	Detail string
	Pass   bool
}

// HeadlineClaims evaluates the paper's main textual findings (Section
// IV) against this run's data. Every claim should pass on a calibrated
// cohort; the benchmark harness prints them.
func (r *Results) HeadlineClaims() []Claim {
	var claims []Claim
	add := func(name string, pass bool, detail string, args ...interface{}) {
		claims = append(claims, Claim{Name: name, Pass: pass, Detail: fmt.Sprintf(detail, args...)})
	}

	core := meanTally(r.CoreTallies)
	opt := meanTally(r.OptTallies)

	// "The score for the core quiz was 8.5/15, which is only slightly
	// better than would be expected by chance (7.5/15)."
	add("core-slightly-above-chance",
		core.Correct > quiz.CoreChance && core.Correct < 10.5,
		"mean core correct %.2f vs chance %.1f (paper: 8.5)", core.Correct, quiz.CoreChance)

	// "The incidence of Don't Know was < 15% for the core quiz."
	dkFrac := core.DontKnow / 15
	add("core-dk-below-15pct", dkFrac < 0.17,
		"core Don't Know rate %.1f%% (paper: <15%%)", 100*dkFrac)

	// "In the optimization quiz, participants answered Don't Know over
	// 2/3 of the time."
	optDKFrac := opt.DontKnow / 3
	add("opt-dk-over-two-thirds", optDKFrac > 0.6,
		"optimization Don't Know rate %.1f%% (paper: >2/3)", 100*optDKFrac)

	// Identity and Divide By Zero answered incorrectly by most
	// participants.
	for _, id := range []string{"core.identity", "core.divzero"} {
		q, _ := quiz.CoreQuestionByID(id)
		var c, inc int
		for _, resp := range r.MainDataset().Responses {
			switch quiz.ClassifyCore(resp, q) {
			case quiz.OutcomeCorrect:
				c++
			case quiz.OutcomeIncorrect:
				inc++
			}
		}
		add("wrong-majority-"+q.Label, inc > c*2,
			"%s: %d incorrect vs %d correct (paper: ~77%% incorrect)", q.Label, inc, c)
	}

	// Factor: codebase size is the most predictive factor, topping out
	// around 11/15 for the largest codebases.
	big, small := r.meanCoreByLevel(quiz.BGContribSize, ">1,000,000 lines of code"),
		r.meanCoreByLevel(quiz.BGContribSize, "100 to 1,000 lines of code")
	add("codebase-size-effect", big > small+1,
		"mean core score: >1M LoC %.2f vs 100-1k LoC %.2f (paper: ~11 vs ~7.5)", big, small)

	// Area: physical-science/engineering developers perform at chance.
	var physEng []float64
	for i, resp := range r.MainDataset().Responses {
		a := resp.Answer(quiz.BGArea).Choice
		if a == "Other Physical Science Field" || a == "Other Engineering Field" {
			physEng = append(physEng, float64(r.CoreTallies[i].Correct))
		}
	}
	pe := stats.Mean(physEng)
	add("physsci-at-chance", pe > 6 && pe < 9,
		"PhysSci/Eng mean %.2f vs chance 7.5 (paper: at chance)", pe)

	// Suspicion: Invalid most suspicious, then Overflow, then the rest;
	// ~1/3 under-rate Invalid.
	inv := SuspicionDistribution(r.MainDataset(), "susp.invalid")
	ovf := SuspicionDistribution(r.MainDataset(), "susp.overflow")
	und := SuspicionDistribution(r.MainDataset(), "susp.underflow")
	add("suspicion-ordering",
		inv.MeanLevel() > ovf.MeanLevel() && ovf.MeanLevel() > und.MeanLevel(),
		"mean suspicion invalid %.2f > overflow %.2f > underflow %.2f",
		inv.MeanLevel(), ovf.MeanLevel(), und.MeanLevel())
	underRate := 100 - inv.Percent[4]
	add("invalid-underrated-by-third", underRate > 20 && underRate < 50,
		"%.1f%% rate Invalid below maximum suspicion (paper: ~1/3)", underRate)

	// Students are less suspicious of Underflow and Denorm.
	sUnd := SuspicionDistribution(r.StudentDataset(), "susp.underflow")
	sDen := SuspicionDistribution(r.StudentDataset(), "susp.denorm")
	mDen := SuspicionDistribution(r.MainDataset(), "susp.denorm")
	add("students-relaxed-underflow-denorm",
		sUnd.MeanLevel() < und.MeanLevel() && sDen.MeanLevel() < mDen.MeanLevel(),
		"students underflow %.2f < main %.2f; denorm %.2f < %.2f",
		sUnd.MeanLevel(), und.MeanLevel(), sDen.MeanLevel(), mDen.MeanLevel())

	// The per-question shape: the six chance-level questions stay in a
	// chance band, per Figure 14.
	badBand := 0
	for i, q := range quiz.CoreQuestions() {
		row := paperdata.Figure14Core[i]
		if !row.ChanceLevel {
			continue
		}
		var c int
		for _, resp := range r.MainDataset().Responses {
			if quiz.ClassifyCore(resp, q) == quiz.OutcomeCorrect {
				c++
			}
		}
		pc := 100 * float64(c) / float64(len(r.MainDataset().Responses))
		if pc < 40 || pc > 68 {
			badBand++
		}
	}
	add("chance-level-questions-band", badBand == 0,
		"%d of 6 chance-level questions left the 40-68%% band", badBand)

	return claims
}

// meanCoreByLevel averages core scores over respondents with the given
// background answer.
func (r *Results) meanCoreByLevel(questionID, level string) float64 {
	var scores []float64
	for i, resp := range r.MainDataset().Responses {
		if resp.Answer(questionID).Choice == level {
			scores = append(scores, float64(r.CoreTallies[i].Correct))
		}
	}
	return stats.Mean(scores)
}

// AllClaimsPass reports whether every headline claim held.
func AllClaimsPass(claims []Claim) bool {
	for _, c := range claims {
		if !c.Pass {
			return false
		}
	}
	return true
}
