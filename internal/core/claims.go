package core

import (
	"fmt"

	"fpstudy/internal/paperdata"
	"fpstudy/internal/query"
	"fpstudy/internal/quiz"
)

// Claim is one of the paper's headline findings, checked against the
// regenerated data.
type Claim struct {
	Name   string
	Detail string
	Pass   bool
}

// HeadlineClaims evaluates the paper's main textual findings (Section
// IV) against this run's data. Every claim should pass on a calibrated
// cohort; the benchmark harness prints them.
//
// Every claim runs through the query engine over the columnar storage
// — no row views are materialized — so a ColumnarOnly run evaluates
// them allocation-light, and the numbers are bit-identical at any
// worker count.
func (r *Results) HeadlineClaims() []Claim {
	var claims []Claim
	add := func(name string, pass bool, detail string, args ...interface{}) {
		claims = append(claims, Claim{Name: name, Pass: pass, Detail: fmt.Sprintf(detail, args...)})
	}

	core := r.meanTallies("core")
	opt := r.meanTallies("opt")

	// "The score for the core quiz was 8.5/15, which is only slightly
	// better than would be expected by chance (7.5/15)."
	add("core-slightly-above-chance",
		core.Correct > quiz.CoreChance && core.Correct < 10.5,
		"mean core correct %.2f vs chance %.1f (paper: 8.5)", core.Correct, quiz.CoreChance)

	// "The incidence of Don't Know was < 15% for the core quiz."
	dkFrac := core.DontKnow / 15
	add("core-dk-below-15pct", dkFrac < 0.17,
		"core Don't Know rate %.1f%% (paper: <15%%)", 100*dkFrac)

	// "In the optimization quiz, participants answered Don't Know over
	// 2/3 of the time."
	optDKFrac := opt.DontKnow / 3
	add("opt-dk-over-two-thirds", optDKFrac > 0.6,
		"optimization Don't Know rate %.1f%% (paper: >2/3)", 100*optDKFrac)

	// One engine pass classifies every core question's outcomes; the
	// wrong-majority and chance-band claims both read off it.
	s := r.Main.Cols.Schema
	qs := quiz.CoreQuestions()
	keyers := make([]query.Keyer, len(qs))
	for qi := range qs {
		keyers[qi] = quiz.CoreOutcomeKeyer(s, qi)
	}
	outcomes, err := query.CountByKeys(r.MainSource(), keyers, nil, r.workers)
	if err != nil {
		add("engine-error", false, "%v", err)
		return claims
	}

	// Identity and Divide By Zero answered incorrectly by most
	// participants.
	for _, id := range []string{"core.identity", "core.divzero"} {
		qi := -1
		for i, q := range qs {
			if q.ID == id {
				qi = i
				break
			}
		}
		q := qs[qi]
		c := int(outcomes[qi][quiz.OutcomeCorrect])
		inc := int(outcomes[qi][quiz.OutcomeIncorrect])
		add("wrong-majority-"+q.Label, inc > c*2,
			"%s: %d incorrect vs %d correct (paper: ~77%% incorrect)", q.Label, inc, c)
	}

	// Factor: codebase size is the most predictive factor, topping out
	// around 11/15 for the largest codebases.
	big, small := r.meanCoreByLevel(quiz.BGContribSize, ">1,000,000 lines of code"),
		r.meanCoreByLevel(quiz.BGContribSize, "100 to 1,000 lines of code")
	add("codebase-size-effect", big > small+1,
		"mean core score: >1M LoC %.2f vs 100-1k LoC %.2f (paper: ~11 vs ~7.5)", big, small)

	// Area: physical-science/engineering developers perform at chance.
	// A two-label option-set filter feeding a grouped-free mean.
	areaCi := s.MustColumnIndex(quiz.BGArea)
	areaCol := s.Column(areaCi)
	peRes, err := query.Run(r.MainSource(), query.Query{
		Filter: []query.Predicate{query.I32SetOf(areaCi,
			areaCol.MustOptionCode("Other Physical Science Field"),
			areaCol.MustOptionCode("Other Engineering Field"))},
		Values: []query.Value{mustQueryValue(s, "core.score")},
	}, r.workers)
	if err != nil {
		add("engine-error", false, "%v", err)
		return claims
	}
	pe := peRes.Mean(0, 0)
	add("physsci-at-chance", pe > 6 && pe < 9,
		"PhysSci/Eng mean %.2f vs chance 7.5 (paper: at chance)", pe)

	// Suspicion: Invalid most suspicious, then Overflow, then the rest;
	// ~1/3 under-rate Invalid.
	inv := suspicionDistQuery(r.MainSource(), "susp.invalid", r.workers)
	ovf := suspicionDistQuery(r.MainSource(), "susp.overflow", r.workers)
	und := suspicionDistQuery(r.MainSource(), "susp.underflow", r.workers)
	add("suspicion-ordering",
		inv.MeanLevel() > ovf.MeanLevel() && ovf.MeanLevel() > und.MeanLevel(),
		"mean suspicion invalid %.2f > overflow %.2f > underflow %.2f",
		inv.MeanLevel(), ovf.MeanLevel(), und.MeanLevel())
	underRate := 100 - inv.Percent[4]
	add("invalid-underrated-by-third", underRate > 20 && underRate < 50,
		"%.1f%% rate Invalid below maximum suspicion (paper: ~1/3)", underRate)

	// Students are less suspicious of Underflow and Denorm.
	sUnd := suspicionDistQuery(r.StudentSource(), "susp.underflow", r.workers)
	sDen := suspicionDistQuery(r.StudentSource(), "susp.denorm", r.workers)
	mDen := suspicionDistQuery(r.MainSource(), "susp.denorm", r.workers)
	add("students-relaxed-underflow-denorm",
		sUnd.MeanLevel() < und.MeanLevel() && sDen.MeanLevel() < mDen.MeanLevel(),
		"students underflow %.2f < main %.2f; denorm %.2f < %.2f",
		sUnd.MeanLevel(), und.MeanLevel(), sDen.MeanLevel(), mDen.MeanLevel())

	// The per-question shape: the six chance-level questions stay in a
	// chance band, per Figure 14.
	badBand := 0
	n := float64(r.Main.Cols.Len())
	for i, row := range paperdata.Figure14Core {
		if !row.ChanceLevel {
			continue
		}
		pc := 100 * float64(outcomes[i][quiz.OutcomeCorrect]) / n
		if pc < 40 || pc > 68 {
			badBand++
		}
	}
	add("chance-level-questions-band", badBand == 0,
		"%d of 6 chance-level questions left the 40-68%% band", badBand)

	return claims
}

// meanCoreByLevel averages core scores over respondents with the given
// background answer: a filtered ungrouped mean through the engine.
func (r *Results) meanCoreByLevel(questionID, level string) float64 {
	s := r.Main.Cols.Schema
	ci := s.MustColumnIndex(questionID)
	res, err := query.Run(r.MainSource(), query.Query{
		Filter: []query.Predicate{query.I32SetOf(ci, s.Column(ci).MustOptionCode(level))},
		Values: []query.Value{mustQueryValue(s, "core.score")},
	}, r.workers)
	if err != nil {
		return 0
	}
	return res.Mean(0, 0)
}

// AllClaimsPass reports whether every headline claim held.
func AllClaimsPass(claims []Claim) bool {
	for _, c := range claims {
		if !c.Pass {
			return false
		}
	}
	return true
}
