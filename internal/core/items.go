package core

import (
	"fmt"

	"fpstudy/internal/quiz"
	"fpstudy/internal/report"
	"fpstudy/internal/respondent"
	"fpstudy/internal/stats"
)

// ItemAnalysis runs classical test-theory item analysis on the core
// quiz: per-question difficulty (fraction correct), discrimination
// (point-biserial correlation of the item with the rest-of-test score),
// and the don't-know rate. The paper's chance-level questions should
// appear as hard items; well-understood properties (Distributivity,
// Ordering) as easy ones; a sound instrument shows positive
// discrimination nearly everywhere.
func (r *Results) ItemAnalysis() report.Table {
	t := report.Table{
		Title:  "Item analysis of the core quiz (classical test theory)",
		Header: []string{"Question", "difficulty (pCorrect)", "discrimination (r_pb)", "DK rate", "grade"},
	}
	qs := quiz.CoreQuestions()
	n := len(r.MainDataset().Responses)

	// Per-respondent per-item correctness and total scores.
	correct := make([][]int, len(qs))
	for i := range correct {
		correct[i] = make([]int, n)
	}
	totals := make([]float64, n)
	dkCount := make([]int, len(qs))
	for j, resp := range r.MainDataset().Responses {
		for i, q := range qs {
			switch quiz.ClassifyCore(resp, q) {
			case quiz.OutcomeCorrect:
				correct[i][j] = 1
				totals[j]++
			case quiz.OutcomeDontKnow:
				dkCount[i]++
			}
		}
	}

	for i, q := range qs {
		diff := 0.0
		for _, c := range correct[i] {
			diff += float64(c)
		}
		diff /= float64(n)
		// Rest score: total minus this item, to avoid part-whole
		// inflation.
		rest := make([]float64, n)
		for j := range rest {
			rest[j] = totals[j] - float64(correct[i][j])
		}
		disc := stats.PointBiserial(correct[i], rest)
		grade := "ok"
		switch {
		case disc < 0.05:
			grade = "non-discriminating"
		case diff < 0.25:
			grade = "very hard"
		case diff > 0.9:
			grade = "very easy"
		}
		t.AddRow(q.Label, report.F2(diff), report.F2(disc),
			report.Pct(100*float64(dkCount[i])/float64(n)), grade)
	}
	t.Notes = append(t.Notes,
		"difficulty ~0.5 with positive discrimination = informative item; the paper's chance-level questions cluster there")
	return t
}

// TrainingIntervention is the policy experiment behind the paper's
// "develop effective training" action: re-run the study with every
// respondent's formal training upgraded to the given level and report
// the predicted score change under the fitted model.
//
// The paper (and this model, calibrated to it) predicts a small gain —
// quantifying exactly why the authors argue the community "has not
// found the right training approach yet".
type TrainingIntervention struct {
	Level       string
	BaseMean    float64
	TreatedMean float64
	Gain        float64
}

// RunTrainingIntervention simulates the intervention at the study's
// seed and size.
func (r *Results) RunTrainingIntervention(level string) TrainingIntervention {
	base := r.meanTallies("core").Correct
	treated := Study{
		Seed:     r.Study.Seed,
		NMain:    r.Study.NMain,
		NStudent: 0,
	}.runWithTraining(level)
	return TrainingIntervention{
		Level:       level,
		BaseMean:    base,
		TreatedMean: treated,
		Gain:        treated - base,
	}
}

// runWithTraining generates a cohort whose formal-training factor is
// forced to the given level and returns the mean core score.
func (s Study) runWithTraining(level string) float64 {
	pop := respondent.GenerateMainWith(s.Seed, s.NMain, func(p *respondent.Profile) {
		p.FormalTraining = level
	})
	var sum float64
	for _, resp := range pop.Dataset.Responses {
		sum += float64(quiz.ScoreCore(resp).Correct)
	}
	return sum / float64(len(pop.Dataset.Responses))
}

// InterventionReport renders the what-if table across training levels.
func (r *Results) InterventionReport() report.Table {
	t := report.Table{
		Title:  "Policy experiment: force everyone's formal floating point training to a level",
		Header: []string{"Forced level", "mean core score", "gain vs observed", "verdict"},
	}
	base := r.meanTallies("core").Correct
	for _, level := range []string{
		"None",
		"One or more lectures in course",
		"One or more weeks within a course",
		"One or more courses",
	} {
		iv := r.RunTrainingIntervention(level)
		verdict := "small effect"
		if iv.Gain > 1.5 {
			verdict = "large effect"
		}
		if iv.Gain < -1.5 {
			verdict = "large harm"
		}
		t.AddRow(level, report.F2(iv.TreatedMean),
			fmt.Sprintf("%+.2f", iv.TreatedMean-base), verdict)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("observed mean: %.2f; the paper: training as currently delivered buys ~1 question at best", base))
	return t
}
