package core

import (
	"fmt"

	"fpstudy/internal/colstore"
	"fpstudy/internal/quiz"
	"fpstudy/internal/respondent"
)

// ResultsFromColumns builds a Results over an already-loaded main
// cohort instead of generating one: it grades the columns and leaves
// figure tallies to read them directly, exactly like a ColumnarOnly
// Run. The dataset must use the quiz schema (load it with
// colstore.LoadFile(quiz.Columns(), ...)) so the cached grading tables
// apply. When students is nil the student cohort is regenerated from
// s.Seed+1 / s.NStudent — the same seed split Run uses — so a run at
// the generating seed reproduces Run bit-for-bit.
func (s Study) ResultsFromColumns(main, students *colstore.Dataset) (*Results, error) {
	if main.Schema != quiz.Columns() {
		return nil, fmt.Errorf("core: dataset schema is not the quiz instrument")
	}
	s.NMain = main.Len()
	r := &Results{
		Study:      s,
		Main:       &respondent.Population{Cols: main},
		instrument: quiz.Instrument(),
		workers:    s.Workers,
		telemetry:  s.Telemetry,
	}
	root := s.Telemetry.StartSpan("run")
	if students == nil {
		sp := root.StartChild("generate-students")
		students = respondent.GenerateStudentsColumnar(s.Seed+1, s.NStudent, s.Workers,
			respondent.Instrumentation{Span: sp})
		sp.AddItems(int64(s.NStudent))
		sp.End()
	} else {
		if students.Schema != quiz.Columns() {
			return nil, fmt.Errorf("core: student dataset schema is not the quiz instrument")
		}
		s.NStudent = students.Len()
		r.Study.NStudent = s.NStudent
	}
	r.StudentCols = students
	gsp := root.StartChild("grade")
	g := quiz.ScoreAllColumns(main, s.Workers)
	gsp.AddItems(int64(main.Len()))
	gsp.End()
	r.CoreTallies, r.OptTallies, r.OptAllTallies = g.Core, g.OptScored, g.OptAll
	root.AddItems(int64(main.Len() + students.Len()))
	root.End()
	s.Telemetry.Registry().Counter(MetricRuns).Inc()
	return r, nil
}

// ResultsFromParts assembles a Results from cohorts and grades that
// were produced elsewhere — the distributed pipeline's merge point,
// where generation and grading already happened in worker processes
// and only the figure/claim layer remains. The grade slices must be
// per-respondent aligned with main (grading is a pure per-respondent
// function, so worker-graded ranges concatenated in range order are
// identical to grading the merged dataset in-process).
func (s Study) ResultsFromParts(main, students *colstore.Dataset, g quiz.Grades) (*Results, error) {
	if main.Schema != quiz.Columns() {
		return nil, fmt.Errorf("core: dataset schema is not the quiz instrument")
	}
	if students == nil || students.Schema != quiz.Columns() {
		return nil, fmt.Errorf("core: student dataset schema is not the quiz instrument")
	}
	if len(g.Core) != main.Len() || len(g.OptScored) != main.Len() || len(g.OptAll) != main.Len() {
		return nil, fmt.Errorf("core: grades cover %d/%d/%d respondents, main has %d",
			len(g.Core), len(g.OptScored), len(g.OptAll), main.Len())
	}
	s.NMain = main.Len()
	s.NStudent = students.Len()
	r := &Results{
		Study:         s,
		Main:          &respondent.Population{Cols: main},
		StudentCols:   students,
		CoreTallies:   g.Core,
		OptTallies:    g.OptScored,
		OptAllTallies: g.OptAll,
		instrument:    quiz.Instrument(),
		workers:       s.Workers,
		telemetry:     s.Telemetry,
	}
	s.Telemetry.Registry().Counter(MetricRuns).Inc()
	return r, nil
}
