package core

import (
	"bytes"
	"strings"
	"testing"

	"fpstudy/internal/query"
	"fpstudy/internal/quiz"
	"fpstudy/internal/telemetry"
)

// TestQueryWorkCountersInPrometheusExposition wires the pipeline
// telemetry, runs one real query plus one whose filter selects
// nothing, and checks that query.rows_scanned / query.blocks_skipped
// land in the registry and render in the /metrics Prometheus text
// exposition under the fpstudy prefix.
func TestQueryWorkCountersInPrometheusExposition(t *testing.T) {
	reg := telemetry.NewRegistry()
	rec := InstallPipelineTelemetry(reg)
	defer UninstallPipelineTelemetry()

	r := Study{Seed: 7, NMain: 300, NStudent: 20, Workers: 2,
		ColumnarOnly: true, Telemetry: rec}.Run()
	src := r.MainSource()
	s := r.Main.Cols.Schema
	area := s.MustColumnIndex(quiz.BGArea)
	val := []query.Value{query.LikertValue{Col: s.MustColumnIndex("susp.invalid")}}

	if _, err := query.Run(src, query.Query{Values: val}, 2); err != nil {
		t.Fatalf("unfiltered query: %v", err)
	}
	res, err := query.Run(src, query.Query{
		Filter: []query.Predicate{query.I32Set{Col: area, Mask: 0}},
		Values: val,
	}, 2)
	if err != nil {
		t.Fatalf("all-false query: %v", err)
	}
	if res.TotalCount() != 0 || res.Sum[0][0] != 0 {
		t.Fatalf("skip path changed the result: %+v", res)
	}

	snap := reg.Snapshot()
	// Both queries scanned every row once: 2 passes over n=300.
	if got := snap.Counters[MetricQueryRowsScanned]; got != 600 {
		t.Errorf("%s = %d, want 600", MetricQueryRowsScanned, got)
	}
	// Only the all-false query's single block elided its aggregation.
	if got := snap.Counters[MetricQueryBlocksSkipped]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricQueryBlocksSkipped, got)
	}

	var buf bytes.Buffer
	if err := telemetry.WritePrometheus(&buf, "fpstudy", snap); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE fpstudy_query_rows_scanned counter\nfpstudy_query_rows_scanned 600\n",
		"# TYPE fpstudy_query_blocks_skipped counter\nfpstudy_query_blocks_skipped 1\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
