package core

import (
	"crypto/sha256"
	"runtime"
	"testing"

	"fpstudy/internal/survey"
	"fpstudy/internal/telemetry"
)

// raiseGOMAXPROCS lifts GOMAXPROCS to at least p for the duration of a
// test. parallel.Workers clamps explicit worker counts to GOMAXPROCS
// (the bench-host honesty fix), so on a small host the workers=4/16
// legs of the invariance gates would silently degrade to serial runs —
// raising the P count keeps the gates exercising real concurrency.
func raiseGOMAXPROCS(t *testing.T, p int) {
	t.Helper()
	if runtime.GOMAXPROCS(0) >= p {
		return
	}
	old := runtime.GOMAXPROCS(p)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// goldenSnapshot runs an n-respondent study at the given worker count
// and hashes the encoded datasets plus all 22 figure tables. rec may be
// nil (telemetry off).
func goldenSnapshot(t *testing.T, n, workers int, rec *telemetry.Recorder) golden {
	t.Helper()
	s := Study{Seed: 42, NMain: n, NStudent: 52, Workers: workers, Telemetry: rec}
	r := s.Run()
	var g golden
	mainJSON, err := survey.EncodeDataset(r.Main.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	studentJSON, err := survey.EncodeDataset(r.Students)
	if err != nil {
		t.Fatal(err)
	}
	g.main = sha256.Sum256(mainJSON)
	g.students = sha256.Sum256(studentJSON)
	for fig := 1; fig <= 22; fig++ {
		g.figures[fig-1] = sha256.Sum256([]byte(r.Figure(fig).String()))
	}
	return g
}

// golden is the byte-level fingerprint of one full study run.
type golden struct {
	main     [32]byte
	students [32]byte
	figures  [22][32]byte
}

// TestGoldenParallelDeterminism is the determinism contract of the
// parallel pipeline: for a fixed seed, the generated datasets and every
// rendered figure must be byte-identical at any worker count. It runs a
// 5000-respondent study at workers 1, 4, and 16 and compares hashes of
// the encoded datasets plus all 22 figure tables.
func TestGoldenParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("5000-respondent study; skipped in -short mode")
	}
	const n = 5000
	raiseGOMAXPROCS(t, 16)

	want := goldenSnapshot(t, n, 1, nil)
	for _, workers := range []int{4, 16} {
		got := goldenSnapshot(t, n, workers, nil)
		if got.main != want.main {
			t.Errorf("workers=%d: main dataset differs from sequential run", workers)
		}
		if got.students != want.students {
			t.Errorf("workers=%d: student dataset differs from sequential run", workers)
		}
		for fig := 1; fig <= 22; fig++ {
			if got.figures[fig-1] != want.figures[fig-1] {
				t.Errorf("workers=%d: figure %d differs from sequential run", workers, fig)
			}
		}
	}
}

// TestGoldenTelemetryInvariance is the observability half of the
// determinism contract: installing the full telemetry stack (metrics
// registry, span recorder, parallel hooks, FP-exception bridge) must
// not change a single output byte at any worker count. It compares the
// dataset and figure hashes of instrumented runs at workers 1, 4, and
// 16 against an uninstrumented baseline.
func TestGoldenTelemetryInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple 2000-respondent studies; skipped in -short mode")
	}
	const n = 2000
	raiseGOMAXPROCS(t, 16)

	want := goldenSnapshot(t, n, 1, nil)

	reg := telemetry.NewRegistry()
	rec := InstallPipelineTelemetry(reg)
	defer UninstallPipelineTelemetry()

	for _, workers := range []int{1, 4, 16} {
		got := goldenSnapshot(t, n, workers, rec)
		if got.main != want.main {
			t.Errorf("workers=%d: telemetry changed the main dataset", workers)
		}
		if got.students != want.students {
			t.Errorf("workers=%d: telemetry changed the student dataset", workers)
		}
		for fig := 1; fig <= 22; fig++ {
			if got.figures[fig-1] != want.figures[fig-1] {
				t.Errorf("workers=%d: telemetry changed figure %d", workers, fig)
			}
		}
	}

	// Sanity-check that the instrumentation actually observed the runs
	// (otherwise this test would pass vacuously).
	snap := reg.Snapshot()
	if snap.Counters[MetricRespondents] == 0 {
		t.Error("telemetry was installed but observed no respondents")
	}
	// fp.ops is deliberately not asserted: the oracle answer key is
	// cached once per process, so whether this test's runs evaluate
	// oracles depends on test order. The FP bridge has its own tests in
	// internal/monitor and internal/quiz.
	if len(rec.Spans()) == 0 {
		t.Error("telemetry was installed but recorded no spans")
	}
}

// TestGoldenTraceInvariance extends the invariance contract to the
// tracing layer: a run with the tracer installed (on top of the full
// telemetry stack) must produce byte-identical datasets and figures at
// any worker count, and the tracer must actually have captured stage,
// worker, and shard events (so the test cannot pass vacuously).
func TestGoldenTraceInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple 2000-respondent studies; skipped in -short mode")
	}
	const n = 2000
	raiseGOMAXPROCS(t, 16)

	want := goldenSnapshot(t, n, 1, nil)

	reg := telemetry.NewRegistry()
	rec := InstallPipelineTelemetry(reg)
	defer UninstallPipelineTelemetry()
	tracer := telemetry.NewTracer(8, 1<<12)
	telemetry.SetTracer(tracer)
	defer telemetry.SetTracer(nil)

	for _, workers := range []int{1, 4, 16} {
		got := goldenSnapshot(t, n, workers, rec)
		if got.main != want.main {
			t.Errorf("workers=%d: tracing changed the main dataset", workers)
		}
		if got.students != want.students {
			t.Errorf("workers=%d: tracing changed the student dataset", workers)
		}
		for fig := 1; fig <= 22; fig++ {
			if got.figures[fig-1] != want.figures[fig-1] {
				t.Errorf("workers=%d: tracing changed figure %d", workers, fig)
			}
		}
	}

	kinds := map[telemetry.EventKind]int{}
	for _, ev := range tracer.Events() {
		kinds[ev.Kind]++
	}
	if kinds[telemetry.EvStage] == 0 {
		t.Error("tracer captured no stage events")
	}
	if kinds[telemetry.EvWorker] == 0 {
		t.Error("tracer captured no worker events")
	}
	if kinds[telemetry.EvShard] == 0 {
		t.Error("tracer captured no shard events")
	}
	if kinds[telemetry.EvBatch] == 0 {
		t.Error("tracer captured no grading batch events")
	}
}

// TestGoldenLatencyInvariance is the latency-observatory half of the
// invariance contract: with the full telemetry stack installed — which
// now includes the sharded latency histograms on sampling, calibration,
// grading, codec, and parallel hooks — every output byte must match an
// uninstrumented baseline at workers 1, 4, and 16. The latency hooks
// only read clocks and add to atomics; this test is the proof that they
// cannot perturb sampling order, shard boundaries, or grading.
func TestGoldenLatencyInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple 2000-respondent studies; skipped in -short mode")
	}
	const n = 2000
	raiseGOMAXPROCS(t, 16)

	want := goldenSnapshot(t, n, 1, nil)

	reg := telemetry.NewRegistry()
	rec := InstallPipelineTelemetry(reg)
	defer UninstallPipelineTelemetry()

	for _, workers := range []int{1, 4, 16} {
		got := goldenSnapshot(t, n, workers, rec)
		if got.main != want.main {
			t.Errorf("workers=%d: latency observation changed the main dataset", workers)
		}
		if got.students != want.students {
			t.Errorf("workers=%d: latency observation changed the student dataset", workers)
		}
		for fig := 1; fig <= 22; fig++ {
			if got.figures[fig-1] != want.figures[fig-1] {
				t.Errorf("workers=%d: latency observation changed figure %d", workers, fig)
			}
		}
	}

	// Non-vacuousness: the latency histograms must actually have
	// observed the runs, with sane quantile ordering.
	snap := reg.Snapshot()
	for _, name := range []string{
		LatencySampleBlock, LatencyCalibrate, LatencyGradeBatch,
		LatencyParallelShard, LatencyWorkerBusy, LatencyParallelWait,
	} {
		ls, ok := snap.Latencies[name]
		if !ok || ls.Count == 0 {
			t.Errorf("%s: no latency observations recorded", name)
			continue
		}
		if ls.P50NS > ls.P99NS || ls.P99NS > ls.P999NS {
			t.Errorf("%s: quantiles out of order: p50=%.0f p99=%.0f p999=%.0f",
				name, ls.P50NS, ls.P99NS, ls.P999NS)
		}
	}
}
