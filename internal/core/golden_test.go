package core

import (
	"crypto/sha256"
	"testing"

	"fpstudy/internal/survey"
)

// TestGoldenParallelDeterminism is the determinism contract of the
// parallel pipeline: for a fixed seed, the generated datasets and every
// rendered figure must be byte-identical at any worker count. It runs a
// 5000-respondent study at workers 1, 4, and 16 and compares hashes of
// the encoded datasets plus all 22 figure tables.
func TestGoldenParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("5000-respondent study; skipped in -short mode")
	}
	const n = 5000

	type golden struct {
		main     [32]byte
		students [32]byte
		figures  [22][32]byte
	}
	snapshot := func(workers int) golden {
		s := Study{Seed: 42, NMain: n, NStudent: 52, Workers: workers}
		r := s.Run()
		var g golden
		mainJSON, err := survey.EncodeDataset(r.Main.Dataset)
		if err != nil {
			t.Fatal(err)
		}
		studentJSON, err := survey.EncodeDataset(r.Students)
		if err != nil {
			t.Fatal(err)
		}
		g.main = sha256.Sum256(mainJSON)
		g.students = sha256.Sum256(studentJSON)
		for fig := 1; fig <= 22; fig++ {
			g.figures[fig-1] = sha256.Sum256([]byte(r.Figure(fig).String()))
		}
		return g
	}

	want := snapshot(1)
	for _, workers := range []int{4, 16} {
		got := snapshot(workers)
		if got.main != want.main {
			t.Errorf("workers=%d: main dataset differs from sequential run", workers)
		}
		if got.students != want.students {
			t.Errorf("workers=%d: student dataset differs from sequential run", workers)
		}
		for fig := 1; fig <= 22; fig++ {
			if got.figures[fig-1] != want.figures[fig-1] {
				t.Errorf("workers=%d: figure %d differs from sequential run", workers, fig)
			}
		}
	}
}
