// Package core orchestrates the full reproduction study: it generates
// the calibrated synthetic cohorts, grades them with the oracle-backed
// quiz, runs the statistical analysis, and renders every figure of the
// paper (Figures 1-22) as a table, alongside the paper's published
// values for comparison.
package core

import (
	"fmt"

	"fpstudy/internal/colstore"
	"fpstudy/internal/paperdata"
	"fpstudy/internal/parallel"
	"fpstudy/internal/query"
	"fpstudy/internal/quiz"
	"fpstudy/internal/report"
	"fpstudy/internal/respondent"
	"fpstudy/internal/stats"
	"fpstudy/internal/survey"
	"fpstudy/internal/telemetry"
)

// Study configures one reproduction run.
type Study struct {
	// Seed drives all population generation deterministically.
	Seed int64
	// NMain is the main cohort size (the paper had 199).
	NMain int
	// NStudent is the student cohort size (the paper had 52).
	NStudent int
	// Workers bounds the parallelism of generation, grading, and
	// figure tallies; <= 0 means GOMAXPROCS. The worker count never
	// affects the produced data, only the wall-clock time.
	Workers int
	// Telemetry, when non-nil, records the run's span tree
	// (run → generate-main / generate-students / grade, plus a figures
	// tree when figures are rendered) and pipeline counters. Nil
	// disables instrumentation at effectively zero cost (nil-safe
	// no-op handles). Telemetry never affects the produced data; the
	// golden test pins bit-identical output with it on or off.
	Telemetry *telemetry.Recorder
	// ColumnarOnly skips materializing the row views (one
	// map[string]Answer per respondent) after generation. Grading,
	// every figure, and the headline claims evaluate through the
	// query engine over the columnar storage, so the reporting
	// pipeline never needs the rows; analyses that still do (item
	// statistics, calibration) materialize them lazily via
	// MainDataset/StudentDataset. At n=1M the row view is the
	// dominant allocation cost, so fpbench measures with this set.
	ColumnarOnly bool
}

// DefaultStudy mirrors the paper's cohort sizes.
func DefaultStudy() Study {
	return Study{Seed: 42, NMain: paperdata.NMain, NStudent: paperdata.NStudent}
}

// Results holds the generated cohorts and their grades.
type Results struct {
	Study Study
	// Main is the main cohort. Main.Cols is always present; Main.Dataset
	// (the row view) is materialized unless the study ran ColumnarOnly.
	Main *respondent.Population
	// StudentCols is the student cohort's columnar storage; Students is
	// its row view (nil in ColumnarOnly runs until StudentDataset).
	StudentCols *colstore.Dataset
	Students    *survey.Dataset

	// CoreTallies and OptTallies are per-respondent grades (OptTallies
	// covers only the three T/F questions, the paper's Figure 12
	// view; OptAllTallies covers all four).
	CoreTallies   []quiz.Tally
	OptTallies    []quiz.Tally
	OptAllTallies []quiz.Tally

	instrument *survey.Instrument
	workers    int
	telemetry  *telemetry.Recorder

	mainSrc    query.Source
	studentSrc query.Source
}

// MainSource returns the query-engine view of the main cohort's
// columns (built once, then cached). Every figure and headline claim
// runs through it.
func (r *Results) MainSource() query.Source {
	if r.mainSrc == nil {
		r.mainSrc = query.NewDatasetSource(r.Main.Cols)
	}
	return r.mainSrc
}

// StudentSource returns the query-engine view of the student cohort's
// columns.
func (r *Results) StudentSource() query.Source {
	if r.studentSrc == nil {
		r.studentSrc = query.NewDatasetSource(r.StudentCols)
	}
	return r.studentSrc
}

// mustQueryValue resolves a quiz measure name known valid at build
// time (programmer error otherwise).
func mustQueryValue(s *colstore.Schema, name string) query.Value {
	v, err := quiz.QueryValue(s, name)
	if err != nil {
		panic(err)
	}
	return v
}

// Run executes the study: generation, then oracle-keyed grading, both
// sharded across the study's worker budget. When s.Telemetry is set,
// the run records a span tree (generate-main with its draw / calibrate
// / sample children, generate-students, grade) with per-stage wall
// time, item counts, and throughput.
func (s Study) Run() *Results {
	r := &Results{Study: s, instrument: quiz.Instrument(), workers: s.Workers, telemetry: s.Telemetry}
	root := s.Telemetry.StartSpan("run")
	prog := s.Telemetry.Registry().Counter(MetricRespondents)
	// The two cohorts use unrelated seeds and share no mutable state,
	// so they generate concurrently; the main cohort additionally fans
	// out across the worker budget internally.
	pool := parallel.NewPool(2)
	pool.Go(func() {
		sp := root.StartChild("generate-main")
		r.Main = respondent.GenerateMainColumnar(s.Seed, s.NMain, s.Workers, nil,
			respondent.Instrumentation{Span: sp, Progress: prog})
		if !s.ColumnarOnly {
			r.Main.MaterializeDataset(s.Workers)
		}
		sp.AddItems(int64(s.NMain))
		sp.End()
	})
	pool.Go(func() {
		sp := root.StartChild("generate-students")
		r.StudentCols = respondent.GenerateStudentsColumnar(s.Seed+1, s.NStudent, s.Workers,
			respondent.Instrumentation{Span: sp})
		if !s.ColumnarOnly {
			r.Students = r.StudentCols.ToSurveyWorkers(s.Workers)
		}
		sp.AddItems(int64(s.NStudent))
		sp.End()
	})
	pool.Wait()
	gsp := root.StartChild("grade")
	g := quiz.ScoreAllColumns(r.Main.Cols, s.Workers)
	gsp.AddItems(int64(r.Main.Cols.Len()))
	gsp.End()
	r.CoreTallies, r.OptTallies, r.OptAllTallies = g.Core, g.OptScored, g.OptAll
	root.AddItems(int64(s.NMain + s.NStudent))
	root.End()
	s.Telemetry.Registry().Counter(MetricRuns).Inc()
	return r
}

// MainDataset returns the main cohort's row view, materializing it from
// the columns on first use in a ColumnarOnly run. The figure tallies
// never need it; the claim/item/calibration analyses do.
func (r *Results) MainDataset() *survey.Dataset {
	return r.Main.MaterializeDataset(r.workers)
}

// StudentDataset returns the student cohort's row view, materializing
// it from the columns on first use in a ColumnarOnly run.
func (r *Results) StudentDataset() *survey.Dataset {
	if r.Students == nil {
		r.Students = r.StudentCols.ToSurveyWorkers(r.workers)
	}
	return r.Students
}

// backgroundFigure describes one of Figures 1-11.
type backgroundFigure struct {
	num       int
	title     string
	question  string
	paper     []paperdata.CountEntry
	multi     bool
	paperBase int // denominator for paper percentages
}

func (r *Results) backgroundFigures() []backgroundFigure {
	return []backgroundFigure{
		{1, "Positions of participants", quiz.BGPosition, paperdata.Figure1Positions, false, paperdata.NMain},
		{2, "Areas of participants", quiz.BGArea, paperdata.Figure2Areas, false, paperdata.NMain},
		{3, "Formal Training in floating point", quiz.BGFormalTraining, paperdata.Figure3FormalTraining, false, paperdata.NMain},
		{4, "Informal Training in floating point (top 5)", quiz.BGInformal, paperdata.Figure4InformalTraining, true, paperdata.NMain},
		{5, "Software Development Roles", quiz.BGRole, paperdata.Figure5Roles, false, paperdata.NMain},
		{6, "Floating Point Language Experience (n>=5)", quiz.BGFPLanguages, paperdata.Figure6FPLanguages, true, paperdata.NMain},
		{7, "Arbitrary Precision Language Experience (n>=5)", quiz.BGArbPrec, paperdata.Figure7ArbPrec, true, paperdata.NMain},
		{8, "Contributed Codebase Sizes", quiz.BGContribSize, paperdata.Figure8ContribSize, false, paperdata.NMain},
		{9, "Contributed Codebase Floating Point Extent", quiz.BGContribExtent, paperdata.Figure9ContribExtent, false, paperdata.NMain},
		{10, "Involved Codebase Sizes", quiz.BGInvolvedSize, paperdata.Figure10InvolvedSize, false, paperdata.NMain},
		{11, "Involved Codebase Floating Point Extent", quiz.BGInvolvedExtent, paperdata.Figure11InvolvedExtent, false, paperdata.NMain},
	}
}

// FigureBackground renders one of Figures 1-11: the generated cohort's
// distribution with the paper's values alongside.
func (r *Results) FigureBackground(num int) report.Table {
	var bf backgroundFigure
	found := false
	for _, c := range r.backgroundFigures() {
		if c.num == num {
			bf = c
			found = true
			break
		}
	}
	if !found {
		return report.Table{Title: fmt.Sprintf("unknown background figure %d", num)}
	}
	tal, err := r.shardedTally(bf.question)
	t := report.Table{
		Title:  fmt.Sprintf("Figure %d: %s", bf.num, bf.title),
		Header: []string{"Level", "n", "%", "paper n", "paper %"},
	}
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	n := r.Main.Cols.Len()
	for _, e := range bf.paper {
		got := tal[e.Label]
		t.AddRow(e.Label,
			report.I(got), report.Pct(100*float64(got)/float64(n)),
			report.I(e.N), report.Pct(paperdata.Percent(e, bf.paperBase)))
	}
	if un := tal["unanswered"]; un > 0 && !bf.multi {
		t.AddRow("(unanswered)", report.I(un), report.Pct(100*float64(un)/float64(n)), "-", "-")
	}
	return t
}

// shardedTally tallies one background question through the query
// engine's block-vectorized Tally kernel. It mirrors
// survey.Instrument.Tally's semantics ("unanswered" bucket, one count
// per selected multi-choice option); counts are order-insensitive, so
// the result is identical at any worker count.
func (r *Results) shardedTally(questionID string) (map[string]int, error) {
	return query.Tally(r.MainSource(), questionID, r.workers)
}

// Figure12 renders the average quiz performance table.
func (r *Results) Figure12() report.Table {
	t := report.Table{
		Title: "Figure 12: Average (expected) performance on the core and optimization quizzes",
		Header: []string{"Quiz", "# Correct", "# Incorrect", "# Don't Know", "# No Answer", "# Chance",
			"paper Correct", "paper Chance"},
	}
	core := r.meanTallies("core")
	opt := r.meanTallies("opt")
	t.AddRow("Core",
		report.F(core.Correct), report.F(core.Incorrect), report.F(core.DontKnow), report.F(core.Unanswered),
		report.F(quiz.CoreChance),
		report.F(paperdata.Figure12Core.Correct), report.F(paperdata.Figure12Core.Chance))
	t.AddRow("Optimization",
		report.F(opt.Correct), report.F(opt.Incorrect), report.F(opt.DontKnow), report.F(opt.Unanswered),
		report.F(quiz.OptChance),
		report.F(paperdata.Figure12Opt.Correct), report.F(paperdata.Figure12Opt.Chance))
	t.Notes = append(t.Notes,
		"optimization row covers the three T/F questions; Standard-compliant Level is excluded (not T/F)")
	return t
}

type meanTallyResult struct {
	Correct, Incorrect, DontKnow, Unanswered float64
}

// meanTallies computes a quiz's mean per-outcome counts through one
// engine pass: four grading values, no grouping. The per-respondent
// outcome counts are small integers, so the blockwise sums are exact
// and the means are bit-identical to the sequential row loop over the
// graded tallies this replaced.
func (r *Results) meanTallies(quizName string) meanTallyResult {
	s := r.Main.Cols.Schema
	res, err := query.Run(r.MainSource(), query.Query{Values: []query.Value{
		mustQueryValue(s, quizName+".score"),
		mustQueryValue(s, quizName+".incorrect"),
		mustQueryValue(s, quizName+".dontknow"),
		mustQueryValue(s, quizName+".unanswered"),
	}}, r.workers)
	if err != nil {
		return meanTallyResult{}
	}
	return meanTallyResult{
		Correct:    res.Mean(0, 0),
		Incorrect:  res.Mean(1, 0),
		DontKnow:   res.Mean(2, 0),
		Unanswered: res.Mean(3, 0),
	}
}

// coreScores returns every respondent's core quiz score in respondent
// order, via an ungrouped engine collection.
func (r *Results) coreScores() []float64 {
	res, err := query.RunCollect(r.MainSource(), query.Query{
		Values: []query.Value{mustQueryValue(r.Main.Cols.Schema, "core.score")},
	}, r.workers)
	if err != nil {
		return nil
	}
	return res.Groups[0]
}

// CoreScoreHistogram returns the distribution of core-quiz scores.
func (r *Results) CoreScoreHistogram() stats.Histogram {
	return stats.NewHistogram(r.coreScores(), 15)
}

// Figure13 renders the histogram of core quiz scores.
func (r *Results) Figure13() report.Table {
	scores := r.coreScores()
	h := stats.NewHistogram(scores, 15)
	t := report.Table{
		Title:  "Figure 13: Histogram of core quiz scores (15 questions; chance mean 7.5)",
		Header: []string{"Score", "Count", ""},
	}
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	for score, count := range h.Counts {
		t.AddRow(report.I(score), report.I(count), report.Bar(float64(count), float64(maxC), 40))
	}
	s := stats.Summarize(scores)
	t.Notes = append(t.Notes, fmt.Sprintf("mean %.2f, sd %.2f, median %.1f (paper mean 8.5, chance 7.5)",
		s.Mean, s.StdDev, s.Median))
	return t
}

// Figure14 renders the per-question core quiz breakdown.
func (r *Results) Figure14() report.Table {
	t := report.Table{
		Title: "Figure 14: Core quiz question breakdown",
		Header: []string{"Question", "% Correct", "% Incorrect", "% Don't Know", "% Unanswered",
			"paper %C", "flags"},
	}
	qs := quiz.CoreQuestions()
	d := r.Main.Cols
	n := float64(d.Len())
	// One engine pass classifies every (respondent, question) pair: 15
	// outcome keyers over a single block scan. Per-block count matrices
	// merge additively, so the totals are identical at any worker count.
	keyers := make([]query.Keyer, len(qs))
	for qi := range qs {
		keyers[qi] = quiz.CoreOutcomeKeyer(d.Schema, qi)
	}
	totals, err := query.CountByKeys(r.MainSource(), keyers, nil, r.workers)
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	for i, q := range qs {
		c := int(totals[i][quiz.OutcomeCorrect])
		inc := int(totals[i][quiz.OutcomeIncorrect])
		dk := int(totals[i][quiz.OutcomeDontKnow])
		un := int(totals[i][quiz.OutcomeUnanswered])
		row := paperdata.Figure14Core[i]
		flags := ""
		pc := 100 * float64(c) / n
		if pc >= 44 && pc <= 62 {
			flags += "chance "
		}
		if float64(inc)+float64(dk) > float64(c)*2 && float64(inc) > float64(c) {
			flags += "wrong-majority"
		}
		t.AddRow(q.Label,
			report.Pct(pc),
			report.Pct(100*float64(inc)/n),
			report.Pct(100*float64(dk)/n),
			report.Pct(100*float64(un)/n),
			report.Pct(row.Correct),
			flags)
	}
	return t
}

// Figure15 renders the per-question optimization quiz breakdown.
func (r *Results) Figure15() report.Table {
	t := report.Table{
		Title: "Figure 15: Optimization quiz question breakdown",
		Header: []string{"Question", "% Correct", "% Incorrect", "% Don't Know", "% Unanswered",
			"paper %C", "paper %DK"},
	}
	qs := quiz.OptQuestions()
	d := r.Main.Cols
	n := float64(d.Len())
	keyers := make([]query.Keyer, len(qs))
	for qi := range qs {
		keyers[qi] = quiz.OptOutcomeKeyer(d.Schema, qi)
	}
	totals, err := query.CountByKeys(r.MainSource(), keyers, nil, r.workers)
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	for i, q := range qs {
		c := int(totals[i][quiz.OutcomeCorrect])
		inc := int(totals[i][quiz.OutcomeIncorrect])
		dk := int(totals[i][quiz.OutcomeDontKnow])
		un := int(totals[i][quiz.OutcomeUnanswered])
		row := paperdata.Figure15Opt[i]
		t.AddRow(q.Label,
			report.Pct(100*float64(c)/n),
			report.Pct(100*float64(inc)/n),
			report.Pct(100*float64(dk)/n),
			report.Pct(100*float64(un)/n),
			report.Pct(row.Correct), report.Pct(row.DontKnow))
	}
	return t
}

// factorFigure renders a grouped-means figure (16-21).
func (r *Results) factorFigure(num int, title, questionID string, core bool,
	paperEffect paperdata.FactorEffect, levelOrder []string) report.Table {
	t := report.Table{
		Title:  fmt.Sprintf("Figure %d: %s", num, title),
		Header: []string{"Level", "n", "mean correct", "sd", "paper mean"},
	}
	paperMeans := map[string]float64{}
	for _, lm := range paperEffect.Means {
		paperMeans[lm.Level] = lm.Mean
	}
	// Group scores by answer level through the engine: a single-choice
	// group-by collecting each group's exact score sequence. Per-block
	// buckets merge in block order, preserving respondent order within
	// each level, so downstream means/sds are bit-identical at any
	// worker count.
	d := r.Main.Cols
	ci := d.Schema.MustColumnIndex(questionID)
	col := d.Schema.Column(ci)
	valName := "core.score"
	if !core {
		valName = "opt.score"
	}
	res, err := query.RunCollect(r.MainSource(), query.Query{
		Key:    query.SingleKey{Col: ci, Options: col.Options},
		Values: []query.Value{mustQueryValue(d.Schema, valName)},
	}, r.workers)
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	for _, level := range levelOrder {
		var vs []float64
		if level == "(unanswered)" {
			vs = res.Groups[0]
		} else if code, ok := col.OptionCode(level); ok {
			vs = res.Groups[code]
		}
		if len(vs) == 0 {
			continue
		}
		pm := "-"
		if v, ok := paperMeans[level]; ok {
			pm = report.F(v)
		} else if v, ok := paperMeans["Other"]; ok {
			pm = report.F(v) + " (other)"
		}
		t.AddRow(level, report.I(len(vs)), report.F2(stats.Mean(vs)), report.F2(stats.StdDev(vs)), pm)
	}
	return t
}

func labels(entries []paperdata.CountEntry) []string {
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.Label)
	}
	return out
}

// Figure16 renders the effect of Contributed Codebase Size on core quiz
// scores.
func (r *Results) Figure16() report.Table {
	order := []string{
		"<100 lines of code",
		"100 to 1,000 lines of code",
		"1,001 to 10,000 lines of code",
		"10,001 to 100,000 lines of code",
		"100,001 to 1,000,000 lines of code",
		">1,000,000 lines of code",
	}
	return r.factorFigure(16, "Effect of Contributed Codebase Size on core quiz scores",
		quiz.BGContribSize, true, paperdata.Figure16ContribSizeEffect, order)
}

// Figure17 renders the effect of Area on core quiz scores.
func (r *Results) Figure17() report.Table {
	return r.factorFigure(17, "Effect of Area on core quiz scores",
		quiz.BGArea, true, paperdata.Figure17AreaEffect, labels(paperdata.Figure2Areas))
}

// Figure18 renders the effect of Software Development Role on core quiz
// scores.
func (r *Results) Figure18() report.Table {
	return r.factorFigure(18, "Effect of Software Development Role on core quiz scores",
		quiz.BGRole, true, paperdata.Figure18RoleEffect, labels(paperdata.Figure5Roles))
}

// Figure19 renders the effect of Formal Training on core quiz scores.
func (r *Results) Figure19() report.Table {
	return r.factorFigure(19, "Effect of Formal Training (in floating point) on core quiz scores",
		quiz.BGFormalTraining, true, paperdata.Figure19TrainingEffect, labels(paperdata.Figure3FormalTraining))
}

// Figure20 renders the effect of Area on optimization quiz scores.
func (r *Results) Figure20() report.Table {
	return r.factorFigure(20, "Effect of Area on optimization quiz scores",
		quiz.BGArea, false, paperdata.Figure20OptAreaEffect, labels(paperdata.Figure2Areas))
}

// Figure21 renders the effect of Software Development Role on
// optimization quiz scores.
func (r *Results) Figure21() report.Table {
	return r.factorFigure(21, "Effect of Software Development Role on optimization quiz scores",
		quiz.BGRole, false, paperdata.Figure21OptRoleEffect, labels(paperdata.Figure5Roles))
}

// SuspicionDistribution tabulates the Likert distribution of one
// suspicion item over a row-form dataset.
func SuspicionDistribution(ds *survey.Dataset, itemID string) stats.LikertDist {
	var levels []int
	for _, r := range ds.Responses {
		if a := r.Answer(itemID); a.Level > 0 {
			levels = append(levels, a.Level)
		}
	}
	return stats.NewLikertDist(levels, 5)
}

// SuspicionDistributionCols is SuspicionDistribution over columnar
// storage: a single walk of the item's Likert column.
func SuspicionDistributionCols(d *colstore.Dataset, itemID string) stats.LikertDist {
	ci := d.Schema.MustColumnIndex(itemID)
	var levels []int
	for i := 0; i < d.Len(); i++ {
		if lv := d.LikertLevel(ci, i); lv > 0 {
			levels = append(levels, lv)
		}
	}
	return stats.NewLikertDist(levels, 5)
}

// suspicionDistQuery computes a suspicion item's Likert distribution
// through the engine: a count-only group-by on the level column. The
// per-level counts rebuild the distribution bit-identically
// (stats.LikertDistFromCounts).
func suspicionDistQuery(src query.Source, itemID string, workers int) stats.LikertDist {
	s := src.Schema()
	ci := s.MustColumnIndex(itemID)
	scale := s.Column(ci).Scale
	res, err := query.Run(src, query.Query{
		Key: query.LikertKey{Col: ci, Scale: scale},
	}, workers)
	if err != nil {
		return stats.LikertDist{Scale: scale, Percent: make([]float64, scale)}
	}
	return stats.LikertDistFromCounts(res.Count[1:], scale)
}

// Figure22 renders the suspicion distributions for both cohorts.
func (r *Results) Figure22() report.Table {
	t := report.Table{
		Title:  "Figure 22: Distribution of suspicion for exceptional conditions (percent reporting each level)",
		Header: []string{"Group", "Condition", "1", "2", "3", "4", "5", "mean", "paper@5"},
	}
	for _, grp := range []struct {
		name  string
		src   query.Source
		paper []paperdata.SuspicionDist
	}{
		{"main", r.MainSource(), paperdata.Figure22Main},
		{"student", r.StudentSource(), paperdata.Figure22Student},
	} {
		for i, it := range quiz.SuspicionItems() {
			d := suspicionDistQuery(grp.src, it.ID, r.workers)
			t.AddRow(grp.name, it.Condition.String(),
				report.Pct(d.Percent[0]), report.Pct(d.Percent[1]), report.Pct(d.Percent[2]),
				report.Pct(d.Percent[3]), report.Pct(d.Percent[4]),
				report.F2(d.MeanLevel()), report.Pct(grp.paper[i].Percent[4]))
		}
	}
	t.Notes = append(t.Notes,
		"ground-truth ranking (monitor): Invalid(5) > Overflow(4) > Underflow(2) = Denorm(2) > Precision(1)")
	return t
}

// Figure renders any figure 1-22 by number.
func (r *Results) Figure(num int) report.Table {
	switch {
	case num >= 1 && num <= 11:
		return r.FigureBackground(num)
	case num == 12:
		return r.Figure12()
	case num == 13:
		return r.Figure13()
	case num == 14:
		return r.Figure14()
	case num == 15:
		return r.Figure15()
	case num == 16:
		return r.Figure16()
	case num == 17:
		return r.Figure17()
	case num == 18:
		return r.Figure18()
	case num == 19:
		return r.Figure19()
	case num == 20:
		return r.Figure20()
	case num == 21:
		return r.Figure21()
	case num == 22:
		return r.Figure22()
	}
	return report.Table{Title: fmt.Sprintf("unknown figure %d", num)}
}

// AllFigures renders every figure in order. With telemetry attached,
// the rendering is timed under a "figures" span with one child per
// figure.
func (r *Results) AllFigures() []report.Table {
	sp := r.telemetry.StartSpan("figures")
	out := make([]report.Table, 0, 22)
	for i := 1; i <= 22; i++ {
		c := sp.StartChild(fmt.Sprintf("figure-%02d", i))
		out = append(out, r.Figure(i))
		c.AddItems(1)
		c.End()
	}
	sp.AddItems(22)
	sp.End()
	return out
}
