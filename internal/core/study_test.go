package core

import (
	"strings"
	"testing"

	"fpstudy/internal/paperdata"
)

// Use a large cohort for statistically stable assertions; the default
// study (n=199, the paper's size) is exercised separately for claims.
var bigResults = Study{Seed: 42, NMain: 4000, NStudent: 2000}.Run()

// paper-sized run for the claims (the claims have tolerance bands wide
// enough for n=199 sampling noise at this fixed seed).
var paperResults = DefaultStudy().Run()

func TestDefaultStudySizes(t *testing.T) {
	if len(paperResults.Main.Dataset.Responses) != paperdata.NMain {
		t.Fatalf("main n = %d", len(paperResults.Main.Dataset.Responses))
	}
	if len(paperResults.Students.Responses) != paperdata.NStudent {
		t.Fatalf("students n = %d", len(paperResults.Students.Responses))
	}
	if len(paperResults.CoreTallies) != paperdata.NMain {
		t.Fatalf("tallies n = %d", len(paperResults.CoreTallies))
	}
}

func TestAllFiguresRender(t *testing.T) {
	figs := bigResults.AllFigures()
	if len(figs) != 22 {
		t.Fatalf("%d figures", len(figs))
	}
	for i, f := range figs {
		if f.Title == "" || strings.Contains(f.Title, "unknown") {
			t.Errorf("figure %d bad title %q", i+1, f.Title)
		}
		s := f.String()
		if len(s) < 40 {
			t.Errorf("figure %d suspiciously short:\n%s", i+1, s)
		}
		if len(f.Rows) == 0 {
			t.Errorf("figure %d has no rows", i+1)
		}
		c := f.CSV()
		if !strings.Contains(c, ",") {
			t.Errorf("figure %d CSV malformed", i+1)
		}
	}
	if got := bigResults.Figure(99); !strings.Contains(got.Title, "unknown") {
		t.Error("figure 99 should be unknown")
	}
}

func TestFigure12Shape(t *testing.T) {
	f := bigResults.Figure12()
	if len(f.Rows) != 2 {
		t.Fatalf("rows: %d", len(f.Rows))
	}
	if f.Rows[0][0] != "Core" || f.Rows[1][0] != "Optimization" {
		t.Fatalf("row labels: %v %v", f.Rows[0][0], f.Rows[1][0])
	}
}

func TestFigure13HistogramShape(t *testing.T) {
	h := bigResults.CoreScoreHistogram()
	if h.Total != 4000 {
		t.Fatalf("total %d", h.Total)
	}
	// Unimodal-ish around 8-9: the mode should be in [7, 10].
	if m := h.Mode(); m < 7 || m > 10 {
		t.Fatalf("mode %d, expected near 8.5", m)
	}
	// Extremes are rare.
	if h.Counts[0] > h.Total/50 || h.Counts[15] > h.Total/20 {
		t.Fatalf("extreme bins too heavy: %v", h.Counts)
	}
}

func TestFigure14FlagsChanceQuestions(t *testing.T) {
	f := bigResults.Figure14()
	if len(f.Rows) != 15 {
		t.Fatalf("rows %d", len(f.Rows))
	}
	flagged := map[string]string{}
	for _, r := range f.Rows {
		flagged[r[0]] = r[len(r)-1]
	}
	// The paper's six chance-level questions should carry the chance
	// flag in the regenerated table.
	for _, row := range paperdata.Figure14Core {
		if row.ChanceLevel && !strings.Contains(flagged[row.Label], "chance") {
			t.Errorf("%s should be flagged chance; got %q", row.Label, flagged[row.Label])
		}
		if row.WrongMajority && !strings.Contains(flagged[row.Label], "wrong-majority") {
			t.Errorf("%s should be flagged wrong-majority; got %q", row.Label, flagged[row.Label])
		}
	}
	// Strongly-understood questions must not be flagged chance.
	for _, label := range []string{"Distributivity", "Ordering"} {
		if strings.Contains(flagged[label], "chance") {
			t.Errorf("%s wrongly flagged chance", label)
		}
	}
}

func TestHeadlineClaimsPassOnBigCohort(t *testing.T) {
	claims := bigResults.HeadlineClaims()
	if len(claims) < 10 {
		t.Fatalf("only %d claims", len(claims))
	}
	for _, c := range claims {
		if !c.Pass {
			t.Errorf("claim %s failed: %s", c.Name, c.Detail)
		}
	}
}

func TestHeadlineClaimsPassOnPaperSizedCohort(t *testing.T) {
	claims := paperResults.HeadlineClaims()
	failed := 0
	for _, c := range claims {
		if !c.Pass {
			failed++
			t.Logf("claim %s failed at n=199: %s", c.Name, c.Detail)
		}
	}
	// At the paper's n=199 a little sampling noise is expected, but
	// the fixed seed should keep nearly everything in band.
	if failed > 1 {
		t.Errorf("%d headline claims failed at n=199", failed)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := Study{Seed: 5, NMain: 100, NStudent: 20}.Run()
	b := Study{Seed: 5, NMain: 100, NStudent: 20}.Run()
	fa, fb := a.Figure12().String(), b.Figure12().String()
	if fa != fb {
		t.Fatal("same seed produced different Figure 12")
	}
	c := Study{Seed: 6, NMain: 100, NStudent: 20}.Run()
	if c.Figure13().String() == a.Figure13().String() {
		t.Fatal("different seeds produced identical histograms (suspicious)")
	}
}

func TestBackgroundFigureComparesToPaper(t *testing.T) {
	f := bigResults.FigureBackground(1)
	// Header must carry both measured and paper columns.
	h := strings.Join(f.Header, " ")
	if !strings.Contains(h, "paper") {
		t.Fatalf("header %v", f.Header)
	}
	if len(f.Rows) < len(paperdata.Figure1Positions) {
		t.Fatalf("rows %d", len(f.Rows))
	}
}

func TestSuspicionDistributionHelper(t *testing.T) {
	d := SuspicionDistribution(bigResults.Main.Dataset, "susp.invalid")
	if d.N != 4000 {
		t.Fatalf("n = %d", d.N)
	}
	if d.Percent[4] < 50 {
		t.Fatalf("invalid@5 = %.1f%%, expected majority", d.Percent[4])
	}
}
