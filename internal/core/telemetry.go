package core

import (
	"time"

	"fpstudy/internal/colstore"
	"fpstudy/internal/monitor"
	"fpstudy/internal/parallel"
	"fpstudy/internal/query"
	"fpstudy/internal/quiz"
	"fpstudy/internal/respondent"
	"fpstudy/internal/telemetry"
)

// Pipeline metric names (see the internal/telemetry package doc for
// the naming scheme).
const (
	// MetricRespondents counts generation progress: one increment per
	// profile drawn plus one per response sampled (2n per full
	// main-cohort run; n for the student cohort).
	MetricRespondents = "pipeline.respondents"
	// MetricRuns counts completed Study.Run executions.
	MetricRuns = "pipeline.runs"

	MetricForEachCalls = "parallel.foreach_calls"
	MetricItems        = "parallel.items"
	MetricBusyNS       = "parallel.busy_ns"
	MetricShards       = "parallel.shards"
	MetricPoolTasks    = "parallel.pool_tasks"
	MetricPoolBusyNS   = "parallel.pool_busy_ns"
	// MetricForEachBusyMS is a fixed-bucket histogram of per-call
	// summed worker busy time, in milliseconds.
	MetricForEachBusyMS = "parallel.foreach_busy_ms"

	MetricFPOps       = "fp.ops"
	MetricFPDivByZero = "fp.exceptions.divbyzero"

	// MetricHeapAlloc and MetricGCCount are gauges fed by
	// telemetry.StartMemSampler (live heap bytes; cumulative GC cycles),
	// so a long -n 1000000 run surfaces its memory behaviour on
	// /debug/vars while executing.
	MetricHeapAlloc = "mem.heap_alloc"
	MetricGCCount   = "mem.gc_count"
	// MetricInternedStrings gauges the size of the columnar string
	// arena after generation (zero for generated cohorts — every answer
	// is a code; nonzero only when converted row data carried free
	// text).
	MetricInternedStrings = "colstore.interned_strings"

	// MetricQueryRowsScanned counts respondent rows the query engine's
	// scan blocks examined; MetricQueryBlocksSkipped counts aggregation
	// passes elided because a block's selection came up empty. Their
	// ratio is the engine's filter-pruning win on a given workload.
	MetricQueryRowsScanned   = "query.rows_scanned"
	MetricQueryBlocksSkipped = "query.blocks_skipped"

	// MetricIOBytesWritten and MetricIOBytesRead count dataset bytes
	// moved by the serialization layer (colstore.IOOptions counters):
	// encode output and decode/load input respectively, either format.
	MetricIOBytesWritten = "io.bytes_written"
	MetricIOBytesRead    = "io.bytes_read"

	// Latency observatory: log-linear latency histograms
	// (telemetry.LatencyHist) over the block-level operations where the
	// pipeline's time actually goes. Each records per-operation wall
	// durations; snapshots carry p50/p90/p99/p999 (see DESIGN.md
	// "Latency observatory").
	LatencySampleBlock   = "latency.sample_block"         // one 4096-respondent response-sampling block
	LatencyCalibrate     = "latency.calibrate"            // one question-model bisection
	LatencyGradeBatch    = "latency.grade_batch"          // one ScoreAllColumns batch
	LatencyFPDSEncode    = "latency.fpds_encode_block"    // one FPDS column block encode
	LatencyFPDSDecode    = "latency.fpds_decode_block"    // one FPDS column block decode
	LatencyParallelShard = "latency.parallel_shard"       // one MapShards/SumShards shard
	LatencyWorkerBusy    = "latency.parallel_worker_busy" // one worker's busy time in a fan-out
	LatencyParallelWait  = "latency.parallel_wait"        // aggregate wait (workers*wall-busy) per fan-out
	LatencyQueryBlock    = "latency.query_block"          // one query-engine scan block (load+filter+key+aggregate)
)

// InstallPipelineTelemetry wires the process-wide instrumentation into
// reg and returns a Recorder to attach to Study.Telemetry:
//
//   - internal/parallel worker-pool hooks (fan-out calls, items, shard
//     counts, per-pool busy time);
//   - the aggregate FP-exception bridge on the quiz oracles, counting
//     Overflow / Underflow / Precision / Invalid / Denorm (plus
//     divide-by-zero and total observed ops) produced by oracle
//     evaluations.
//
// The hooks are global to the process (there is one worker pool layer
// and one oracle cache), so install once at startup. Everything
// observed is aggregate and atomic; nothing feeds back into the
// pipeline, so golden hashes are unchanged. UninstallPipelineTelemetry
// reverses the installation (used by tests and benchmarks).
func InstallPipelineTelemetry(reg *telemetry.Registry) *telemetry.Recorder {
	rec := telemetry.NewRecorder(reg)

	foreachCalls := reg.Counter(MetricForEachCalls)
	items := reg.Counter(MetricItems)
	busyNS := reg.Counter(MetricBusyNS)
	shards := reg.Counter(MetricShards)
	poolTasks := reg.Counter(MetricPoolTasks)
	poolBusyNS := reg.Counter(MetricPoolBusyNS)
	busyHist := reg.Histogram(MetricForEachBusyMS, []float64{0.1, 1, 10, 100, 1000, 10000})

	// Latency observatory: per-worker-sharded log-linear histograms on
	// the block-level operations. All Observe calls are plain atomic
	// adds; none of them feed back into the pipeline.
	latShard := reg.Latency(LatencyParallelShard)
	latWorker := reg.Latency(LatencyWorkerBusy)
	latWait := reg.Latency(LatencyParallelWait)
	parallel.SetHook(&parallel.Hook{
		ForEach: func(n, workers int, busy time.Duration) {
			foreachCalls.Inc()
			items.Add(int64(n))
			busyNS.Add(int64(busy))
			busyHist.Observe(float64(busy) / float64(time.Millisecond))
		},
		ForEachWall: func(n, workers int, wall, busy time.Duration) {
			wait := time.Duration(workers)*wall - busy
			if wait < 0 {
				wait = 0 // clock skew between per-worker and wall reads
			}
			latWait.Observe(wait)
		},
		Shards: func(n int) { shards.Add(int64(n)) },
		PoolTask: func(busy time.Duration) {
			poolTasks.Inc()
			poolBusyNS.Add(int64(busy))
		},
		// Trace lanes: worker w records on lane w+1 (lane 0 is the
		// pipeline control lane). Both callbacks reduce to one atomic
		// load when no tracer is installed.
		WorkerSpan: func(w int, busy time.Duration) {
			latWorker.ObserveShard(w, busy)
			telemetry.EmitSpan(telemetry.EvWorker, w+1, "worker",
				time.Now().Add(-busy), busy, int64(w), 0)
		},
		ShardSpan: func(w, shard, items int, d time.Duration) {
			latShard.ObserveShard(w, d)
			telemetry.EmitSpan(telemetry.EvShard, w+1, "shard",
				time.Now().Add(-d), d, int64(shard), int64(items))
		},
	})

	latSample := reg.Latency(LatencySampleBlock)
	latCalib := reg.Latency(LatencyCalibrate)
	respondent.SetLatencyHook(&respondent.LatencyHook{
		SampleBlock: func(shard, items int, d time.Duration) { latSample.ObserveShard(shard, d) },
		Calibrate:   func(question int, d time.Duration) { latCalib.ObserveShard(question, d) },
	})

	latGrade := reg.Latency(LatencyGradeBatch)
	quiz.SetGradeBatchObserver(func(n int, d time.Duration) { latGrade.Observe(d) })

	latEnc := reg.Latency(LatencyFPDSEncode)
	latDec := reg.Latency(LatencyFPDSDecode)
	colstore.SetLatencyHook(&colstore.LatencyHook{
		EncodeBlock: func(block, items int, d time.Duration) { latEnc.ObserveShard(block, d) },
		DecodeBlock: func(block, items int, d time.Duration) { latDec.ObserveShard(block, d) },
	})

	latQuery := reg.Latency(LatencyQueryBlock)
	query.SetLatencyHook(&query.LatencyHook{
		Block: func(block, items int, d time.Duration) { latQuery.ObserveShard(block, d) },
	})
	rowsScanned := reg.Counter(MetricQueryRowsScanned)
	blocksSkipped := reg.Counter(MetricQueryBlocksSkipped)
	query.SetWorkHook(&query.WorkHook{
		RowsScanned:  func(n int) { rowsScanned.Add(int64(n)) },
		BlockSkipped: func() { blocksSkipped.Inc() },
	})

	conds := map[monitor.Condition]monitor.EventCounter{}
	for _, c := range monitor.Conditions() {
		conds[c] = reg.Counter(c.MetricName())
	}
	quiz.SetOracleObserver(monitor.CountingObserver(
		reg.Counter(MetricFPOps), conds, reg.Counter(MetricFPDivByZero)))

	return rec
}

// UninstallPipelineTelemetry removes the process-wide hooks installed
// by InstallPipelineTelemetry, restoring the uninstrumented fast
// paths.
func UninstallPipelineTelemetry() {
	parallel.SetHook(nil)
	respondent.SetLatencyHook(nil)
	quiz.SetGradeBatchObserver(nil)
	colstore.SetLatencyHook(nil)
	query.SetLatencyHook(nil)
	query.SetWorkHook(nil)
	quiz.SetOracleObserver(nil)
}
