package core

import (
	"strings"
	"testing"
)

func TestItemAnalysis(t *testing.T) {
	tab := bigResults.ItemAnalysis()
	if len(tab.Rows) != 15 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	byLabel := map[string][]string{}
	for _, r := range tab.Rows {
		byLabel[r[0]] = r
	}
	// Identity and Divide By Zero are the hardest items.
	for _, label := range []string{"Identity", "Divide By Zero"} {
		row := byLabel[label]
		if row == nil {
			t.Fatalf("missing %s", label)
		}
		if !strings.HasPrefix(row[1], "0.1") && !strings.HasPrefix(row[1], "0.2") {
			t.Errorf("%s difficulty %s, expected ~0.16", label, row[1])
		}
		if row[4] != "very hard" {
			t.Errorf("%s graded %q", label, row[4])
		}
	}
	// Easy, well-understood items.
	for _, label := range []string{"Distributivity", "Ordering"} {
		row := byLabel[label]
		d := row[1]
		if !(strings.HasPrefix(d, "0.7") || strings.HasPrefix(d, "0.8") || strings.HasPrefix(d, "0.9")) {
			t.Errorf("%s difficulty %s, expected high", label, d)
		}
	}
	// Discrimination positive almost everywhere (ability-driven model).
	negative := 0
	for _, r := range tab.Rows {
		if strings.HasPrefix(r[2], "-") {
			negative++
		}
	}
	if negative > 2 {
		t.Errorf("%d items discriminate negatively", negative)
	}
}

func TestTrainingIntervention(t *testing.T) {
	iv := paperResults.RunTrainingIntervention("One or more courses")
	// The fitted effect is small: somewhere between +0 and +1.5
	// questions, echoing the paper's "not a large one".
	if iv.Gain < -0.5 || iv.Gain > 1.8 {
		t.Fatalf("course-for-everyone gain %.2f out of the paper's band", iv.Gain)
	}
	ivNone := paperResults.RunTrainingIntervention("None")
	if ivNone.TreatedMean >= iv.TreatedMean {
		t.Fatalf("removing all training (%.2f) should not beat universal courses (%.2f)",
			ivNone.TreatedMean, iv.TreatedMean)
	}
}

func TestInterventionReport(t *testing.T) {
	tab := paperResults.InterventionReport()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	s := tab.String()
	if !strings.Contains(s, "small effect") {
		t.Fatalf("expected small effects:\n%s", s)
	}
	if strings.Contains(s, "large effect") {
		t.Fatalf("training should not have a large effect under the fitted model:\n%s", s)
	}
}
