package core

import (
	"strings"
	"testing"
)

func TestCalibrationReport(t *testing.T) {
	tab := paperResults.CalibrationReport()
	if len(tab.Rows) != 15 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	s := tab.String()
	if !strings.Contains(s, "bootstrap CI") {
		t.Fatalf("missing CI note:\n%s", s)
	}
	// At n=199 with the calibrated model, the bulk of questions must
	// sit inside the 5% chi-square band.
	off := strings.Count(s, "  off")
	if off > 3 {
		t.Errorf("%d questions outside the chi-square band:\n%s", off, s)
	}
	// Paper mean inside the bootstrap CI for the default seed.
	if !strings.Contains(s, "paper mean inside CI: true") {
		t.Errorf("paper mean outside the CI:\n%s", s)
	}
}

func TestFactorAssociation(t *testing.T) {
	tab := bigResults.FactorAssociation()
	if len(tab.Rows) != 7 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	s := tab.String()
	// The paper's finding: no factor is strong.
	if strings.Contains(s, "strong") && !strings.Contains(s, "none has an outsize impact") {
		// "strong" only appears in a row (not the note) if some factor
		// exceeded 0.5 — which contradicts the paper's finding.
		for _, row := range tab.Rows {
			if row[3] == "strong" {
				t.Errorf("factor %s unexpectedly strong (V=%s)", row[0], row[2])
			}
		}
	}
	// Codebase size should be at least weakly associated.
	for _, row := range tab.Rows {
		if row[0] == "Contributed Codebase Size" && row[3] == "negligible" {
			t.Errorf("codebase size should not be negligible: V=%s", row[2])
		}
	}
}
