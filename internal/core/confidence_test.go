package core

import (
	"strings"
	"testing"
)

func TestConfidenceReport(t *testing.T) {
	tab := bigResults.ConfidenceReport()
	s := tab.String()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	if !strings.Contains(s, "coin flip") || !strings.Contains(s, "correlation") {
		t.Fatalf("report:\n%s", s)
	}
}

func TestOverconfidenceIndex(t *testing.T) {
	// The paper's population: ~85% commitment, ~68% accuracy among
	// committed answers -> clearly positive overconfidence.
	idx := bigResults.OverconfidenceIndex()
	if idx < 0.05 {
		t.Fatalf("overconfidence index %.3f, expected clearly positive", idx)
	}
	if idx > 0.5 {
		t.Fatalf("overconfidence index %.3f implausibly large", idx)
	}
}

func TestOptHumilityIndex(t *testing.T) {
	// On the optimization quiz the population is appropriately humble:
	// most scored questions are punted.
	idx := bigResults.OptHumilityIndex()
	if idx < 0.55 {
		t.Fatalf("opt humility %.3f, paper has >2/3 don't-know", idx)
	}
	// And humility on optimizations exceeds core-quiz hedging by a
	// wide margin — the paper's contrast between the two quizzes.
	var coreDK float64
	for _, tl := range bigResults.CoreTallies {
		coreDK += float64(tl.DontKnow) / 15
	}
	coreDK /= float64(len(bigResults.CoreTallies))
	if idx < coreDK*2 {
		t.Fatalf("opt humility %.2f should dwarf core DK rate %.2f", idx, coreDK)
	}
}
