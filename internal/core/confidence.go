package core

import (
	"fmt"

	"fpstudy/internal/report"
	"fpstudy/internal/stats"
)

// ConfidenceReport quantifies the paper's most pointed finding: on the
// core quiz, participants "do little better than chance, yet are
// confident." Confidence is operationalized as willingness to commit
// (answering true/false rather than "don't know"); accuracy is the
// correct fraction among committed answers. A calibrated population
// would show accuracy tracking confidence; the paper's population is
// confident (85%+ commit) but barely above coin-flip accuracy.
func (r *Results) ConfidenceReport() report.Table {
	t := report.Table{
		Title:  "Confidence vs accuracy on the core quiz (the \"yet are confident\" analysis)",
		Header: []string{"Confidence band", "n", "mean committed", "accuracy when committed", "vs coin flip"},
	}
	type row struct {
		committed float64 // fraction of 15 answered T/F
		accuracy  float64 // correct / committed
	}
	var rows []row
	for _, tl := range r.CoreTallies {
		committed := tl.Correct + tl.Incorrect
		if committed == 0 {
			continue
		}
		rows = append(rows, row{
			committed: float64(committed) / 15,
			accuracy:  float64(tl.Correct) / float64(committed),
		})
	}
	bands := []struct {
		name   string
		lo, hi float64
	}{
		{"low (<60% answered)", 0, 0.6},
		{"medium (60-85%)", 0.6, 0.85},
		{"high (>=85%)", 0.85, 1.01},
	}
	for _, b := range bands {
		var acc, com []float64
		for _, x := range rows {
			if x.committed >= b.lo && x.committed < b.hi {
				acc = append(acc, x.accuracy)
				com = append(com, x.committed)
			}
		}
		delta := stats.Mean(acc) - 0.5
		t.AddRow(b.name, report.I(len(acc)),
			report.Pct(100*stats.Mean(com)), report.Pct(100*stats.Mean(acc)),
			fmt.Sprintf("%+.1f pts", 100*delta))
	}
	// Overall calibration summary.
	var allAcc, allCom []float64
	for _, x := range rows {
		allAcc = append(allAcc, x.accuracy)
		allCom = append(allCom, x.committed)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"overall: %.0f%% of questions answered with commitment, %.0f%% of those correct (coin flip: 50%%)",
		100*stats.Mean(allCom), 100*stats.Mean(allAcc)))
	corr := stats.Pearson(allCom, allAcc)
	t.Notes = append(t.Notes, fmt.Sprintf(
		"confidence-accuracy correlation r = %.2f (calibrated populations show strongly positive r)", corr))
	return t
}

// OverconfidenceIndex is mean(confidence) - mean(accuracy among
// committed answers), in [-1, 1]. Positive values mean the population
// commits more than its accuracy warrants.
func (r *Results) OverconfidenceIndex() float64 {
	var com, acc []float64
	for _, tl := range r.CoreTallies {
		committed := tl.Correct + tl.Incorrect
		if committed == 0 {
			continue
		}
		com = append(com, float64(committed)/15)
		acc = append(acc, float64(tl.Correct)/float64(committed))
	}
	return stats.Mean(com) - stats.Mean(acc)
}

// OptHumilityIndex is the analogous quantity for the optimization
// quiz, where the paper found appropriate humility: the fraction of
// scored questions punted with "don't know."
func (r *Results) OptHumilityIndex() float64 {
	var dk []float64
	for _, tl := range r.OptTallies {
		total := tl.Total()
		if total == 0 {
			continue
		}
		dk = append(dk, float64(tl.DontKnow)/float64(total))
	}
	return stats.Mean(dk)
}
