package core

import (
	"bytes"
	"crypto/sha256"
	"testing"

	"fpstudy/internal/colstore"
	"fpstudy/internal/quiz"
	"fpstudy/internal/telemetry"
)

// figureClaimsFingerprint hashes all 22 figures plus the headline
// claims of a results set.
func figureClaimsFingerprint(t *testing.T, r *Results) [22 + 1][32]byte {
	t.Helper()
	var g [23][32]byte
	for fig := 1; fig <= 22; fig++ {
		g[fig-1] = sha256.Sum256([]byte(r.Figure(fig).String()))
	}
	var claims bytes.Buffer
	for _, c := range r.HeadlineClaims() {
		claims.WriteString(c.Name)
		claims.WriteString(c.Detail)
		if c.Pass {
			claims.WriteByte('1')
		} else {
			claims.WriteByte('0')
		}
	}
	g[22] = sha256.Sum256(claims.Bytes())
	return g
}

// TestGoldenDataPathReproducesRun is the fpreport -data contract at the
// paper's n: serializing the main cohort (both formats), loading it
// back through the sniffing loader, and reporting off the loaded
// columns reproduces every figure and claim of the in-process run
// bit-for-bit (the student cohort regenerates from the same seed
// split).
func TestGoldenDataPathReproducesRun(t *testing.T) {
	s := Study{Seed: 42, NMain: 199, NStudent: 52, ColumnarOnly: true}
	base := s.Run()
	want := figureClaimsFingerprint(t, base)

	var bin, js bytes.Buffer
	if err := base.Main.Cols.EncodeBinary(&bin, colstore.IOOptions{}); err != nil {
		t.Fatalf("EncodeBinary: %v", err)
	}
	if err := base.Main.Cols.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}

	for _, tc := range []struct {
		name string
		data []byte
	}{{"binary", bin.Bytes()}, {"json", js.Bytes()}} {
		cols, info, err := colstore.Load(quiz.Columns(), bytes.NewReader(tc.data), colstore.IOOptions{})
		if err != nil {
			t.Fatalf("%s: Load: %v", tc.name, err)
		}
		if (tc.name == "binary") != (info.Format == colstore.FormatBinary) {
			t.Fatalf("%s: sniffed as %v", tc.name, info.Format)
		}
		loaded, err := s.ResultsFromColumns(cols, nil)
		if err != nil {
			t.Fatalf("%s: ResultsFromColumns: %v", tc.name, err)
		}
		got := figureClaimsFingerprint(t, loaded)
		for fig := 1; fig <= 22; fig++ {
			if got[fig-1] != want[fig-1] {
				t.Errorf("%s: figure %d differs between the loaded-data run and the in-process run", tc.name, fig)
			}
		}
		if got[22] != want[22] {
			t.Errorf("%s: headline claims differ between the loaded-data run and the in-process run", tc.name)
		}
	}
}

// TestGoldenQueryEngineWorkerSweep pins the query engine's
// determinism contract at the report surface: every figure and claim
// now evaluates through internal/query, and the fingerprints must be
// bit-identical whether the cohort is in-process or FPDS-loaded, at
// workers 1, 4, and 16.
func TestGoldenQueryEngineWorkerSweep(t *testing.T) {
	base := Study{Seed: 42, NMain: 199, NStudent: 52, ColumnarOnly: true}
	want := figureClaimsFingerprint(t, base.Run())

	var bin bytes.Buffer
	if err := base.Run().Main.Cols.EncodeBinary(&bin, colstore.IOOptions{}); err != nil {
		t.Fatalf("EncodeBinary: %v", err)
	}

	for _, workers := range []int{1, 4, 16} {
		s := base
		s.Workers = workers
		if got := figureClaimsFingerprint(t, s.Run()); got != want {
			t.Errorf("workers=%d: in-process figures/claims differ", workers)
		}
		cols, _, err := colstore.Load(quiz.Columns(), bytes.NewReader(bin.Bytes()), colstore.IOOptions{})
		if err != nil {
			t.Fatalf("workers=%d: Load: %v", workers, err)
		}
		loaded, err := s.ResultsFromColumns(cols, nil)
		if err != nil {
			t.Fatalf("workers=%d: ResultsFromColumns: %v", workers, err)
		}
		if got := figureClaimsFingerprint(t, loaded); got != want {
			t.Errorf("workers=%d: FPDS-loaded figures/claims differ", workers)
		}
	}
}

// TestGoldenDataPathStudentFile extends the -data contract to an
// explicit -studentdata file: loading both cohorts from disk matches
// the in-process run too.
func TestGoldenDataPathStudentFile(t *testing.T) {
	s := Study{Seed: 42, NMain: 199, NStudent: 52, ColumnarOnly: true}
	base := s.Run()
	want := figureClaimsFingerprint(t, base)

	var mainBin, studentBin bytes.Buffer
	if err := base.Main.Cols.EncodeBinary(&mainBin, colstore.IOOptions{}); err != nil {
		t.Fatalf("EncodeBinary(main): %v", err)
	}
	if err := base.StudentCols.EncodeBinary(&studentBin, colstore.IOOptions{}); err != nil {
		t.Fatalf("EncodeBinary(students): %v", err)
	}
	mainCols, _, err := colstore.Load(quiz.Columns(), bytes.NewReader(mainBin.Bytes()), colstore.IOOptions{})
	if err != nil {
		t.Fatalf("Load(main): %v", err)
	}
	studentCols, _, err := colstore.Load(quiz.Columns(), bytes.NewReader(studentBin.Bytes()), colstore.IOOptions{})
	if err != nil {
		t.Fatalf("Load(students): %v", err)
	}
	loaded, err := s.ResultsFromColumns(mainCols, studentCols)
	if err != nil {
		t.Fatalf("ResultsFromColumns: %v", err)
	}
	got := figureClaimsFingerprint(t, loaded)
	if got != want {
		t.Errorf("figures/claims differ when both cohorts load from files")
	}
}

// TestGoldenIOTelemetryInvariance pins the codec's observability
// contract: the bytes written and the dataset decoded are identical
// with the telemetry counters, pipeline hooks, and tracer installed or
// not, at workers 1, 4, and 16 — and the I/O counters actually count.
func TestGoldenIOTelemetryInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("2000-respondent cohort encodes; skipped in -short mode")
	}
	s := Study{Seed: 42, NMain: 2000, NStudent: 52, ColumnarOnly: true}
	cols := s.Run().Main.Cols

	encode := func(opt colstore.IOOptions) []byte {
		var buf bytes.Buffer
		if err := cols.EncodeBinary(&buf, opt); err != nil {
			t.Fatalf("EncodeBinary: %v", err)
		}
		return buf.Bytes()
	}
	want := encode(colstore.IOOptions{Workers: 1})

	reg := telemetry.NewRegistry()
	InstallPipelineTelemetry(reg)
	defer UninstallPipelineTelemetry()
	tracer := telemetry.NewTracer(8, 1<<12)
	telemetry.SetTracer(tracer)
	defer telemetry.SetTracer(nil)
	written := reg.Counter(MetricIOBytesWritten)
	read := reg.Counter(MetricIOBytesRead)

	for _, workers := range []int{1, 4, 16} {
		got := encode(colstore.IOOptions{Workers: workers, BytesWritten: written})
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: instrumented encode produced different bytes", workers)
		}
		d, err := colstore.DecodeBinary(quiz.Columns(), bytes.NewReader(got),
			colstore.IOOptions{Workers: workers, BytesRead: read})
		if err != nil {
			t.Fatalf("workers=%d: DecodeBinary: %v", workers, err)
		}
		var plain, instr bytes.Buffer
		if err := cols.WriteJSON(&plain); err != nil {
			t.Fatal(err)
		}
		if err := d.WriteJSON(&instr); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(plain.Bytes(), instr.Bytes()) {
			t.Errorf("workers=%d: instrumented decode produced a different dataset", workers)
		}
	}

	if got := written.Value(); got != int64(3*len(want)) {
		t.Errorf("io.bytes_written = %d, want %d (3 encodes of %d bytes)", got, 3*len(want), len(want))
	}
	if got := read.Value(); got != int64(3*len(want)) {
		t.Errorf("io.bytes_read = %d, want %d (3 decodes of %d bytes)", got, 3*len(want), len(want))
	}
}
