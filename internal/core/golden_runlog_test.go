package core

import (
	"path/filepath"
	"testing"

	"fpstudy/internal/runlog"
	"fpstudy/internal/telemetry"
)

// TestGoldenRunlogInvariance is the ledger half of the invariance
// contract: recording runs in the structured run ledger (telemetry
// stack installed, a runlog.Run open for the whole process, one
// Finish per leg) must not change a single output byte at any worker
// count. The ledger only snapshots counters and spans that already
// exist — this test is the proof that bookkeeping never leaks back
// into the pipeline.
func TestGoldenRunlogInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple 2000-respondent studies; skipped in -short mode")
	}
	const n = 2000
	raiseGOMAXPROCS(t, 16)

	want := goldenSnapshot(t, n, 1, nil)

	ledger := filepath.Join(t.TempDir(), "ledger.jsonl")
	reg := telemetry.NewRegistry()
	rec := InstallPipelineTelemetry(reg)
	defer UninstallPipelineTelemetry()

	for _, workers := range []int{1, 4, 16} {
		run := runlog.Start(ledger, "golden-test", []string{"-workers"}, reg, rec)
		if run == nil {
			t.Fatal("runlog.Start returned nil for a non-empty path")
		}
		got := goldenSnapshot(t, n, workers, rec)
		run.SetGolden("marker", "golden-invariance")
		run.Finish(0)
		if got.main != want.main {
			t.Errorf("workers=%d: run ledger changed the main dataset", workers)
		}
		if got.students != want.students {
			t.Errorf("workers=%d: run ledger changed the student dataset", workers)
		}
		for fig := 1; fig <= 22; fig++ {
			if got.figures[fig-1] != want.figures[fig-1] {
				t.Errorf("workers=%d: run ledger changed figure %d", workers, fig)
			}
		}
	}

	// Non-vacuousness: the ledger must hold one well-formed record per
	// leg, each carrying the telemetry it snapshotted.
	recs, skipped, err := runlog.Read(ledger)
	if err != nil {
		t.Fatalf("reading ledger back: %v", err)
	}
	if skipped != 0 || len(recs) != 3 {
		t.Fatalf("ledger holds %d records (%d skipped), want 3 (0 skipped)", len(recs), skipped)
	}
	for i, r := range recs {
		if r.Tool != "golden-test" || r.ExitStatus != 0 {
			t.Errorf("record %d: tool=%q exit=%d", i, r.Tool, r.ExitStatus)
		}
		if r.Counters[MetricRespondents] == 0 {
			t.Errorf("record %d: no respondent counter snapshotted", i)
		}
		if len(r.Stages) == 0 {
			t.Errorf("record %d: no stage durations snapshotted", i)
		}
		if r.Golden["marker"] != "golden-invariance" {
			t.Errorf("record %d: golden hash map = %v", i, r.Golden)
		}
		if r.WallSeconds <= 0 {
			t.Errorf("record %d: wall_seconds = %v", i, r.WallSeconds)
		}
	}
}
