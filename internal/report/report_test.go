package report

import (
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tab := Table{
		Title:  "Demo",
		Header: []string{"name", "value"},
	}
	tab.AddRow("alpha", "1")
	tab.AddRow("beta-longer", "22")
	tab.Notes = append(tab.Notes, "a note")
	s := tab.String()
	for _, want := range []string{"Demo", "====", "name", "alpha", "beta-longer", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	// Columns align: "value" column starts at the same offset in both rows.
	lines := strings.Split(s, "\n")
	var rows []string
	for _, l := range lines {
		if strings.HasPrefix(l, "alpha") || strings.HasPrefix(l, "beta") {
			rows = append(rows, l)
		}
	}
	if len(rows) != 2 || strings.Index(rows[0], "1") != strings.Index(rows[1], "22") {
		t.Fatalf("misaligned rows: %q vs %q", rows[0], rows[1])
	}
}

func TestCSV(t *testing.T) {
	tab := Table{Header: []string{"a", "b"}}
	tab.AddRow("x,y", `quote"d`)
	c := tab.CSV()
	if !strings.Contains(c, `"x,y"`) || !strings.Contains(c, `"quote""d"`) {
		t.Fatalf("csv escaping: %q", c)
	}
	if !strings.HasPrefix(c, "a,b\n") {
		t.Fatalf("csv header: %q", c)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.25) != "1.2" && F(1.25) != "1.3" {
		t.Fatalf("F: %q", F(1.25))
	}
	if F2(1.234) != "1.23" {
		t.Fatalf("F2: %q", F2(1.234))
	}
	if Pct(12.34) != "12.3%" {
		t.Fatalf("Pct: %q", Pct(12.34))
	}
	if I(7) != "7" {
		t.Fatalf("I: %q", I(7))
	}
}

func TestBar(t *testing.T) {
	if Bar(5, 10, 10) != "#####" {
		t.Fatalf("bar: %q", Bar(5, 10, 10))
	}
	if Bar(20, 10, 10) != "##########" {
		t.Fatal("bar clamp high")
	}
	if Bar(-1, 10, 10) != "" {
		t.Fatal("bar clamp low")
	}
	if Bar(1, 0, 10) != "" {
		t.Fatal("bar zero max")
	}
}

func TestMarkdown(t *testing.T) {
	tab := Table{
		Title:  "MD",
		Header: []string{"a", "b"},
		Notes:  []string{"hello"},
	}
	tab.AddRow("1", "pipe|cell")
	md := tab.Markdown()
	for _, want := range []string{"### MD", "| a | b |", "|---|---|", "pipe\\|cell", "_hello_"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestRaggedRows(t *testing.T) {
	tab := Table{Header: []string{"a"}}
	tab.AddRow("x", "extra", "cells")
	s := tab.String()
	if !strings.Contains(s, "extra") || !strings.Contains(s, "cells") {
		t.Fatalf("ragged row lost cells:\n%s", s)
	}
}
