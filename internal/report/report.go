// Package report renders analysis results as aligned ASCII tables and
// CSV, in the shapes of the paper's figures: n/% background tables,
// per-question breakdowns, grouped factor means, histograms, and Likert
// distributions.
package report

import (
	"fmt"
	"strings"
)

// Table is a rendered figure: a titled grid with optional footnotes.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row built from stringable cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
		fmt.Fprintf(&b, "%s\n", strings.Repeat("=", len(t.Title)))
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			} else if i >= len(widths) {
				widths = append(widths, len(c))
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteString("\n")
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing
// commas or quotes are quoted).
func (t Table) CSV() string {
	var b strings.Builder
	esc := func(c string) string {
		if strings.ContainsAny(c, ",\"\n") {
			return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		return c
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(esc(c))
		}
		b.WriteString("\n")
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table, for
// inclusion in EXPERIMENTS.md-style documents.
func (t Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	esc := func(c string) string { return strings.ReplaceAll(c, "|", "\\|") }
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			b.WriteString(" " + esc(c) + " |")
		}
		b.WriteString("\n")
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		b.WriteString("|")
		for i := 0; i < cols; i++ {
			b.WriteString("---|")
		}
		b.WriteString("\n")
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n_%s_\n", n)
	}
	return b.String()
}

// F formats a float compactly (one decimal by default).
func F(v float64) string { return fmt.Sprintf("%.1f", v) }

// F2 formats with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// I formats an int.
func I(v int) string { return fmt.Sprintf("%d", v) }

// Bar renders a proportional ASCII bar of the given value against a
// maximum, at the given width.
func Bar(v, max float64, width int) string {
	if max <= 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}
