package respondent

// Range-splittable generation: the exported slices of the pipeline
// that internal/distrib dispatches to worker processes. Generation is
// embarrassingly range-parallel by construction — respondent i's draws
// depend only on (seed, stream, global index i), never on neighbours —
// so a worker can produce respondents [lo, hi) into a local dataset
// whose columns are bit-identical to rows [lo, hi) of the
// single-process run. The one global reduction, question calibration,
// is split into an ability gather (DrawProfilesRange +
// ProfileAbilities on each worker) and a single coordinator-side
// CalibrateFromAbilities whose result is broadcast back.

import (
	"fpstudy/internal/colstore"
	"fpstudy/internal/paperdata"
	"fpstudy/internal/parallel"
	"fpstudy/internal/quiz"
)

// Model is the wire form of a calibrated question model: everything a
// worker needs to sample answers for one question column. It is
// serialized as JSON between coordinator and workers; all fields are
// either exact under JSON round-trip (strings, bool) or float64s,
// which encoding/json emits in shortest-round-trip form, so a decoded
// Model is bit-identical to the encoded one.
type Model struct {
	ID         string   `json:"id"`
	PUn        float64  `json:"p_un"`
	PDK        float64  `json:"p_dk"`
	Offset     float64  `json:"offset"`
	Correct    string   `json:"correct"`
	ChoiceSet  []string `json:"choice_set,omitempty"`
	AbilityOpt bool     `json:"ability_opt,omitempty"`
}

func exportModels(qms []questionModel) []Model {
	out := make([]Model, len(qms))
	for i, qm := range qms {
		out[i] = Model{
			ID:         qm.id,
			PUn:        qm.pUn,
			PDK:        qm.pDK,
			Offset:     qm.offset,
			Correct:    qm.correct,
			ChoiceSet:  qm.choiceSet,
			AbilityOpt: qm.abilityOpt,
		}
	}
	return out
}

func importModels(ms []Model) []questionModel {
	out := make([]questionModel, len(ms))
	for i, m := range ms {
		out[i] = questionModel{
			id:         m.ID,
			pUn:        m.PUn,
			pDK:        m.PDK,
			offset:     m.Offset,
			correct:    m.Correct,
			choiceSet:  m.ChoiceSet,
			abilityOpt: m.AbilityOpt,
		}
	}
	return out
}

// DrawProfilesRange draws profiles for global respondents [lo, hi) of
// a seed-n cohort. The returned slice has hi-lo entries; entry j is
// bit-identical to profiles[lo+j] of the single-process draw because
// each profile is drawn from an RNG repositioned at its global index.
func DrawProfilesRange(seed int64, lo, hi, workers int) []Profile {
	n := hi - lo
	workers = parallel.Workers(workers, n)
	profiles := make([]Profile, n)
	parallel.ForEachWith(workers, parallel.NumShards(n), parallel.NewXRand,
		func(rng *parallel.XRand, s int) {
			blo, bhi := parallel.ShardBounds(s, n)
			for j := blo; j < bhi; j++ {
				rng.SeedAt(seed, streamProfile, int64(lo+j))
				profiles[j] = drawProfileWith(rng, nil)
			}
		})
	return profiles
}

// ProfileAbilities extracts the core and optimization ability arrays
// from a profile slice — the per-respondent inputs to calibration.
func ProfileAbilities(ps []Profile) (core, opt []float64) {
	return abilitiesOf(ps, false), abilitiesOf(ps, true)
}

// CalibrateFromAbilities runs question calibration over the full
// cohort's ability arrays and returns the models in wire form. This is
// the coordinator's half of the split calibration: abilities gathered
// from every worker (in range order, so coreAbil[i] belongs to global
// respondent i) produce exactly the arrays the single-process path
// builds, and the bisection over them is deterministic, so the
// resulting offsets are bit-identical.
func CalibrateFromAbilities(workers int, coreAbil, optAbil []float64) []Model {
	return exportModels(calibrateFromAbilities(workers, coreAbil, optAbil, Instrumentation{}))
}

// SampleRange samples quiz and suspicion answers for global
// respondents [base, base+len(profiles)) into a fresh local dataset
// using the broadcast models. Row j of the result is bit-identical to
// row base+j of the single-process dataset: the background stores are
// pure functions of the profile, and every response stream is seeded
// at the respondent's global index via the sampler's base offset.
func SampleRange(seed int64, base int, profiles []Profile, models []Model, workers int) *colstore.Dataset {
	n := len(profiles)
	workers = parallel.Workers(workers, n)
	d := quiz.Columns().NewDataset("1.0", n)
	cs := newColSampler(d, importModels(models), paperdata.Figure22Main)
	cs.base = base
	coreAbil, optAbil := ProfileAbilities(profiles)
	parallel.ForEachWith(workers, parallel.NumShards(n), parallel.NewXRand,
		func(rng *parallel.XRand, s int) {
			blo, bhi := parallel.ShardBounds(s, n)
			cs.sampleBlock(rng, seed, blo, bhi, profiles, coreAbil, optAbil)
		})
	return d
}

// SampleStudentsRange generates global student respondents [lo, hi)
// into a fresh local dataset; row j is bit-identical to row lo+j of
// GenerateStudentsColumnar's output for the same seed and cohort size.
func SampleStudentsRange(seed int64, lo, hi, workers int) *colstore.Dataset {
	n := hi - lo
	workers = parallel.Workers(workers, n)
	d := quiz.Columns().NewDataset("1.0-student", n)
	var suspCI []int
	var suspCum [][5]float64
	for _, it := range quiz.SuspicionItems() {
		suspCI = append(suspCI, d.Schema.MustColumnIndex(it.ID))
	}
	for _, dist := range paperdata.Figure22Student {
		suspCum = append(suspCum, cumulative(dist.Percent))
	}
	parallel.ForEachWith(workers, parallel.NumShards(n), parallel.NewXRand,
		func(rng *parallel.XRand, s int) {
			blo, bhi := parallel.ShardBounds(s, n)
			for k, ci := range suspCI {
				cum := &suspCum[k]
				for j := blo; j < bhi; j++ {
					rng.SeedAt(seed, streamStudent, int64(lo+j)<<subStreamBits|int64(k))
					d.SetLikert(ci, j, drawLikert(rng, cum))
				}
			}
		})
	return d
}
