package respondent

import (
	"fmt"
	"sync"

	"fpstudy/internal/paperdata"
	"fpstudy/internal/parallel"
	"fpstudy/internal/quiz"
)

// This file holds the precomputed draw tables for the background phase.
// The per-respondent hot path used to look effects up in maps keyed by
// label strings and re-derive every effect's population mean per
// respondent; bgTables folds all of that into index-addressed arrays
// built once per process, so drawing a background is a handful of
// cumulative-threshold scans and drawing its abilities is pure array
// arithmetic.

// choiceTable is one single-choice background question: its paperdata
// marginals resolved against the canonical schema. Entry k of every
// slice describes the k-th table row, so a drawn entry index addresses
// the label, the schema option code, and any per-entry effect directly.
type choiceTable struct {
	ci      int
	labels  []string
	codes   []int32
	cum     []int // cumulative counts; draw r in [0,total) → first k with r < cum[k]
	total   int
	byLabel map[string]int16
}

func newChoiceTable(id string, entries []paperdata.CountEntry) choiceTable {
	s := quiz.Columns()
	ci := s.MustColumnIndex(id)
	col := s.Column(ci)
	t := choiceTable{ci: ci, byLabel: make(map[string]int16, len(entries))}
	run := 0
	for k, e := range entries {
		run += e.N
		t.labels = append(t.labels, e.Label)
		t.codes = append(t.codes, col.MustOptionCode(e.Label))
		t.cum = append(t.cum, run)
		t.byLabel[e.Label] = int16(k)
	}
	t.total = run
	return t
}

// draw returns an entry index distributed by the published counts.
func (t *choiceTable) draw(rng *parallel.XRand) int16 {
	r := rng.Intn(t.total)
	for k, c := range t.cum {
		if r < c {
			return int16(k)
		}
	}
	return int16(len(t.cum) - 1)
}

// index resolves a label to its entry index — the override slow path.
func (t *choiceTable) index(id, label string) int16 {
	k, ok := t.byLabel[label]
	if !ok {
		panic(fmt.Sprintf("respondent: override set %s to %q, not an option of that question", id, label))
	}
	return k
}

// multiTable is one multi-choice background question: per-entry
// inclusion probabilities and the option bit each entry sets.
type multiTable struct {
	ci  int
	p   []float64
	bit []uint64
}

func newMultiTable(id string, entries []paperdata.CountEntry, denom int) multiTable {
	s := quiz.Columns()
	ci := s.MustColumnIndex(id)
	col := s.Column(ci)
	t := multiTable{ci: ci}
	for _, e := range entries {
		t.p = append(t.p, float64(e.N)/float64(denom))
		t.bit = append(t.bit, 1<<uint(col.MustOptionCode(e.Label)-1))
	}
	return t
}

// draw includes each option independently with its marginal probability
// and returns the resulting option bitset.
func (t *multiTable) draw(rng *parallel.XRand) uint64 {
	var mask uint64
	for k, p := range t.p {
		if rng.Float64() < p {
			mask |= t.bit[k]
		}
	}
	return mask
}

// bgTables bundles every background question's draw table with the
// ability model's per-entry centered effects.
type bgTables struct {
	position, area, training, role choiceTable
	contribSize, contribExtent     choiceTable
	involvedSize, involvedExtent   choiceTable
	informal, languages, arbprec   multiTable

	// Centered effects (score points), aligned with the owning
	// choiceTable's entries.
	contribEff, areaEff, roleEff, trainingEff []float64
	optAreaEff, optRoleEff                    []float64

	// Correctness-focus flags per extent entry.
	correctnessContrib, correctnessInvolved []bool
}

var (
	bgOnce sync.Once
	bgTab  *bgTables
)

// tables returns the process-wide background tables, built on first
// use against the canonical schema and the published marginals.
func tables() *bgTables {
	bgOnce.Do(func() {
		t := &bgTables{
			position:       newChoiceTable(quiz.BGPosition, paperdata.Figure1Positions),
			area:           newChoiceTable(quiz.BGArea, paperdata.Figure2Areas),
			training:       newChoiceTable(quiz.BGFormalTraining, paperdata.Figure3FormalTraining),
			role:           newChoiceTable(quiz.BGRole, paperdata.Figure5Roles),
			contribSize:    newChoiceTable(quiz.BGContribSize, paperdata.Figure8ContribSize),
			contribExtent:  newChoiceTable(quiz.BGContribExtent, paperdata.Figure9ContribExtent),
			involvedSize:   newChoiceTable(quiz.BGInvolvedSize, paperdata.Figure10InvolvedSize),
			involvedExtent: newChoiceTable(quiz.BGInvolvedExtent, paperdata.Figure11InvolvedExtent),
			informal:       newMultiTable(quiz.BGInformal, paperdata.Figure4InformalTraining, paperdata.NMain),
			languages:      newMultiTable(quiz.BGFPLanguages, paperdata.Figure6FPLanguages, paperdata.NMain),
			arbprec:        newMultiTable(quiz.BGArbPrec, paperdata.Figure7ArbPrec, paperdata.NMain),
		}
		centered := func(effects map[string]float64, def float64, marginals []paperdata.CountEntry) []float64 {
			out := make([]float64, len(marginals))
			for k, e := range marginals {
				out[k] = centeredEffect(effects, def, e.Label, marginals)
			}
			return out
		}
		t.contribEff = centered(contribSizeEffect, 0, paperdata.Figure8ContribSize)
		t.areaEff = centered(areaEffect, areaEffectDefault, paperdata.Figure2Areas)
		t.roleEff = centered(roleEffect, 0, paperdata.Figure5Roles)
		t.trainingEff = centered(trainingEffect, 0, paperdata.Figure3FormalTraining)
		t.optAreaEff = centered(optAreaEffect, optAreaEffectDefault, paperdata.Figure2Areas)
		t.optRoleEff = centered(optRoleEffect, 0, paperdata.Figure5Roles)
		flags := func(marginals []paperdata.CountEntry) []bool {
			out := make([]bool, len(marginals))
			for k, e := range marginals {
				out[k] = isCorrectnessFocused(e.Label)
			}
			return out
		}
		t.correctnessContrib = flags(paperdata.Figure9ContribExtent)
		t.correctnessInvolved = flags(paperdata.Figure11InvolvedExtent)
		bgTab = t
	})
	return bgTab
}
