package respondent

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"fpstudy/internal/paperdata"
	"fpstudy/internal/parallel"
	"fpstudy/internal/quiz"
	"fpstudy/internal/survey"
)

// Pinned sha256 hashes of the serialized paper-sized cohorts. These are
// the exact bytes survey.WriteDataset produced for the same seeds
// before the columnar port; any drift here is a fidelity regression,
// not a tuning change.
const (
	goldenMainSHA    = "5c019dfe9a8c069fae3cd433d1f44916b8db0a3dd1c90caaa6ef83d7920e9c8e" // seed 42, n=199
	goldenStudentSHA = "cc54cdf85703623e4c94677f698ae956c42afbda09d5a161ff61e887868ff269" // seed 43, n=52
)

// TestColumnarGoldenHashes pins the serialized output of the columnar
// generators to the pre-columnar byte stream for the paper's cohort
// sizes and seeds.
func TestColumnarGoldenHashes(t *testing.T) {
	main := GenerateMainColumnar(42, paperdata.NMain, 0, nil, Instrumentation{})
	var buf bytes.Buffer
	if err := main.Cols.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	if got := hex.EncodeToString(sum[:]); got != goldenMainSHA {
		t.Errorf("main cohort hash = %s, want %s", got, goldenMainSHA)
	}

	students := GenerateStudentsColumnar(43, paperdata.NStudent, 0, Instrumentation{})
	buf.Reset()
	if err := students.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	sum = sha256.Sum256(buf.Bytes())
	if got := hex.EncodeToString(sum[:]); got != goldenStudentSHA {
		t.Errorf("student cohort hash = %s, want %s", got, goldenStudentSHA)
	}
}

// TestWriteJSONMatchesRowEncoding asserts that streaming serialization
// from the columns produces exactly the bytes encoding/json produces on
// the materialized row view — the invariant that lets fpgen skip
// materialization entirely.
func TestWriteJSONMatchesRowEncoding(t *testing.T) {
	pop := GenerateMainColumnar(42, 60, 0, nil, Instrumentation{})
	var buf bytes.Buffer
	if err := pop.Cols.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	want, err := survey.EncodeDataset(pop.MaterializeDataset(0))
	if err != nil {
		t.Fatalf("EncodeDataset: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("columnar stream diverged from row encoding (%d vs %d bytes)",
			buf.Len(), len(want))
	}
}

// TestColumnarMaterializeEqualsLegacyRows checks the materialized row
// view of a columnar cohort against the historical row generator
// output shape: same tokens, same answers for a sample of respondents.
func TestColumnarMaterializeEqualsLegacyRows(t *testing.T) {
	pop := GenerateMain(11, 80)
	if pop.Cols == nil || pop.Dataset == nil {
		t.Fatal("GenerateMain must populate both columns and row view")
	}
	rt := pop.Cols.ToSurvey()
	if len(rt.Responses) != len(pop.Dataset.Responses) {
		t.Fatalf("row counts differ: %d vs %d", len(rt.Responses), len(pop.Dataset.Responses))
	}
	for _, i := range []int{0, 1, 37, 79} {
		a, b := rt.Responses[i], pop.Dataset.Responses[i]
		if a.Token != b.Token {
			t.Fatalf("respondent %d token %q != %q", i, a.Token, b.Token)
		}
		if len(a.Answers) != len(b.Answers) {
			t.Fatalf("respondent %d answer counts differ", i)
		}
		for id, ans := range b.Answers {
			got := a.Answers[id]
			if got.Choice != ans.Choice || got.Level != ans.Level ||
				len(got.Choices) != len(ans.Choices) {
				t.Fatalf("respondent %d question %s: %+v != %+v", i, id, got, ans)
			}
		}
	}
}

// TestSampleZeroAlloc pins the zero-allocation contract of the
// per-respondent sampling inner loop: reseeding the worker RNG and
// sampling one respondent into the columns must not touch the heap.
func TestSampleZeroAlloc(t *testing.T) {
	profiles := make([]Profile, 64)
	rng := newWorkerRNG()
	for i := range profiles {
		parallel.Reseed(rng, 42, streamProfile, int64(i))
		profiles[i] = drawProfile(rng)
	}
	models := calibrateModels(0, profiles, Instrumentation{})
	d := quiz.Columns().NewDataset("1.0", len(profiles))
	cs := newColSampler(d, models, paperdata.Figure22Main)

	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		parallel.Reseed(rng, 42, streamResponse, int64(i))
		cs.sample(rng, i, &profiles[i])
		i = (i + 1) % len(profiles)
	})
	if allocs != 0 {
		t.Fatalf("sampling inner loop allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestStudentSampleZeroAlloc pins the same contract for the student
// suspicion cohort's inner loop.
func TestStudentSampleZeroAlloc(t *testing.T) {
	d := quiz.Columns().NewDataset("1.0-student", 64)
	items := quiz.SuspicionItems()
	suspCI := make([]int, len(items))
	for k, it := range items {
		suspCI[k] = d.Schema.MustColumnIndex(it.ID)
	}
	dists := paperdata.Figure22Student
	rng := newWorkerRNG()

	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		parallel.Reseed(rng, 43, streamStudent, int64(i))
		for k := range suspCI {
			d.SetLikert(suspCI[k], i, drawLikert(rng, dists[k].Percent))
		}
		i = (i + 1) % 64
	})
	if allocs != 0 {
		t.Fatalf("student inner loop allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkSampleRespondent times the per-respondent sampling hot path
// in isolation (models pre-calibrated, columns pre-allocated).
func BenchmarkSampleRespondent(b *testing.B) {
	profiles := make([]Profile, 1024)
	rng := newWorkerRNG()
	for i := range profiles {
		parallel.Reseed(rng, 42, streamProfile, int64(i))
		profiles[i] = drawProfile(rng)
	}
	models := calibrateModels(0, profiles, Instrumentation{})
	d := quiz.Columns().NewDataset("1.0", len(profiles))
	cs := newColSampler(d, models, paperdata.Figure22Main)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		i := n % len(profiles)
		parallel.Reseed(rng, 42, streamResponse, int64(i))
		cs.sample(rng, i, &profiles[i])
	}
}
