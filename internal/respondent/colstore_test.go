package respondent

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"fpstudy/internal/paperdata"
	"fpstudy/internal/parallel"
	"fpstudy/internal/quiz"
	"fpstudy/internal/survey"
)

// Pinned sha256 hashes of the serialized paper-sized cohorts. Any
// drift here is a fidelity regression, not a tuning change.
//
// Re-pinned once for the batched-generation rewrite (see DESIGN.md,
// "Generation hot path"): the hot path moved from math/rand to the
// repositionable xoshiro256++ generator with per-(respondent, column)
// sub-streams, and calibration's invlogit(offset+a) was refactored to
// 1/(1+exp(-offset)·exp(-a)), both of which change the serialized
// stream. The statistical gates (marginals, factor effects, Figure
// 14/15/22 breakdowns) held across the re-pin, and worker-count
// invariance is still enforced against these exact bytes.
const (
	goldenMainSHA    = "4c72166dec3d1510317a1e9ad175309bd67d40a488df500064b4d85f900fbdd3" // seed 42, n=199
	goldenStudentSHA = "af40b7a73515f1588b3853d2d5f076a2a5b9889981f027aafe9540925ce6a15b" // seed 43, n=52
)

// TestColumnarGoldenHashes pins the serialized output of the columnar
// generators to the pre-columnar byte stream for the paper's cohort
// sizes and seeds.
func TestColumnarGoldenHashes(t *testing.T) {
	main := GenerateMainColumnar(42, paperdata.NMain, 0, nil, Instrumentation{})
	var buf bytes.Buffer
	if err := main.Cols.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	if got := hex.EncodeToString(sum[:]); got != goldenMainSHA {
		t.Errorf("main cohort hash = %s, want %s", got, goldenMainSHA)
	}

	students := GenerateStudentsColumnar(43, paperdata.NStudent, 0, Instrumentation{})
	buf.Reset()
	if err := students.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	sum = sha256.Sum256(buf.Bytes())
	if got := hex.EncodeToString(sum[:]); got != goldenStudentSHA {
		t.Errorf("student cohort hash = %s, want %s", got, goldenStudentSHA)
	}
}

// TestWriteJSONMatchesRowEncoding asserts that streaming serialization
// from the columns produces exactly the bytes encoding/json produces on
// the materialized row view — the invariant that lets fpgen skip
// materialization entirely.
func TestWriteJSONMatchesRowEncoding(t *testing.T) {
	pop := GenerateMainColumnar(42, 60, 0, nil, Instrumentation{})
	var buf bytes.Buffer
	if err := pop.Cols.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	want, err := survey.EncodeDataset(pop.MaterializeDataset(0))
	if err != nil {
		t.Fatalf("EncodeDataset: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("columnar stream diverged from row encoding (%d vs %d bytes)",
			buf.Len(), len(want))
	}
}

// TestColumnarMaterializeEqualsLegacyRows checks the materialized row
// view of a columnar cohort against the historical row generator
// output shape: same tokens, same answers for a sample of respondents.
func TestColumnarMaterializeEqualsLegacyRows(t *testing.T) {
	pop := GenerateMain(11, 80)
	if pop.Cols == nil || pop.Dataset == nil {
		t.Fatal("GenerateMain must populate both columns and row view")
	}
	rt := pop.Cols.ToSurvey()
	if len(rt.Responses) != len(pop.Dataset.Responses) {
		t.Fatalf("row counts differ: %d vs %d", len(rt.Responses), len(pop.Dataset.Responses))
	}
	for _, i := range []int{0, 1, 37, 79} {
		a, b := rt.Responses[i], pop.Dataset.Responses[i]
		if a.Token != b.Token {
			t.Fatalf("respondent %d token %q != %q", i, a.Token, b.Token)
		}
		if len(a.Answers) != len(b.Answers) {
			t.Fatalf("respondent %d answer counts differ", i)
		}
		for id, ans := range b.Answers {
			got := a.Answers[id]
			if got.Choice != ans.Choice || got.Level != ans.Level ||
				len(got.Choices) != len(ans.Choices) {
				t.Fatalf("respondent %d question %s: %+v != %+v", i, id, got, ans)
			}
		}
	}
}

// TestSampleZeroAlloc pins the zero-allocation contract of the
// sampling inner loop: repositioning the worker generator and sampling
// a whole block of respondents into the columns must not touch the
// heap.
func TestSampleZeroAlloc(t *testing.T) {
	profiles := make([]Profile, 64)
	rng := parallel.NewXRand()
	for i := range profiles {
		rng.SeedAt(42, streamProfile, int64(i))
		profiles[i] = drawProfile(rng)
	}
	models := calibrateModels(0, profiles, Instrumentation{})
	d := quiz.Columns().NewDataset("1.0", len(profiles))
	cs := newColSampler(d, models, paperdata.Figure22Main)
	coreAbil := abilitiesOf(profiles, false)
	optAbil := abilitiesOf(profiles, true)

	allocs := testing.AllocsPerRun(50, func() {
		cs.sampleBlock(rng, 42, 0, len(profiles), profiles, coreAbil, optAbil)
	})
	if allocs != 0 {
		t.Fatalf("sampling block allocates %.1f allocs/block, want 0", allocs)
	}
}

// TestStudentSampleZeroAlloc pins the same contract for the student
// suspicion cohort's column-major inner loop.
func TestStudentSampleZeroAlloc(t *testing.T) {
	d := quiz.Columns().NewDataset("1.0-student", 64)
	items := quiz.SuspicionItems()
	suspCI := make([]int, len(items))
	suspCum := make([][5]float64, len(items))
	for k, it := range items {
		suspCI[k] = d.Schema.MustColumnIndex(it.ID)
		suspCum[k] = cumulative(paperdata.Figure22Student[k].Percent)
	}
	rng := parallel.NewXRand()

	allocs := testing.AllocsPerRun(50, func() {
		for k := range suspCI {
			for i := 0; i < 64; i++ {
				rng.SeedAt(43, streamStudent, int64(i)<<subStreamBits|int64(k))
				d.SetLikert(suspCI[k], i, drawLikert(rng, &suspCum[k]))
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("student inner loop allocates %.1f allocs/block, want 0", allocs)
	}
}

// TestCalibrationSweepZeroAlloc pins the batched calibration kernel's
// inner loop: one bisection-step sweep over the cohort must cost at
// most the fixed closure setup — 0 allocs per respondent.
func TestCalibrationSweepZeroAlloc(t *testing.T) {
	abil := make([]float64, 4096)
	rng := parallel.NewXRand()
	rng.SeedAt(1, 1, 1)
	for i := range abil {
		a, _ := rng.NormPair()
		abil[i] = a
	}
	k := newAbilityKernel(1, abil)
	qm := questionModel{pUn: 0.05, pDK: 0.2}
	w := make([]float64, len(abil))
	k.weights(qm, w)
	allocs := testing.AllocsPerRun(50, func() {
		_ = k.expectCorrect(1, w, 0.3)
	})
	// The sweep closure itself may cost a fixed allocation; anything
	// scaling with the cohort is a regression.
	if allocs > 2 {
		t.Fatalf("calibration sweep allocates %.1f allocs/sweep over %d respondents, want <= 2 fixed",
			allocs, len(abil))
	}
}

// BenchmarkSampleBlock times the block sampling hot path in isolation
// (models pre-calibrated, columns pre-allocated), reported per
// respondent.
func BenchmarkSampleBlock(b *testing.B) {
	const blockN = 1024
	profiles := make([]Profile, blockN)
	rng := parallel.NewXRand()
	for i := range profiles {
		rng.SeedAt(42, streamProfile, int64(i))
		profiles[i] = drawProfile(rng)
	}
	models := calibrateModels(0, profiles, Instrumentation{})
	d := quiz.Columns().NewDataset("1.0", blockN)
	cs := newColSampler(d, models, paperdata.Figure22Main)
	coreAbil := abilitiesOf(profiles, false)
	optAbil := abilitiesOf(profiles, true)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		cs.sampleBlock(rng, 42, 0, blockN, profiles, coreAbil, optAbil)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/blockN, "ns/respondent")
}
