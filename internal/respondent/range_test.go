package respondent_test

import (
	"bytes"
	"testing"

	"fpstudy/internal/colstore"
	"fpstudy/internal/distrib"
	"fpstudy/internal/quiz"
	"fpstudy/internal/respondent"
)

func encodeBytes(t *testing.T, d *colstore.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.EncodeBinary(&buf, colstore.IOOptions{}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRangeGenerationMatchesFull pins the in-process half of the
// distributed determinism contract without spawning any processes:
// block-aligned ranges generated independently (profiles -> gathered
// abilities -> one calibration -> per-range sampling) and spliced
// back together must encode to exactly the bytes of the one-shot
// generation.
func TestRangeGenerationMatchesFull(t *testing.T) {
	const (
		seed = int64(42)
		n    = 10000
	)
	full := respondent.GenerateMainColumnar(seed, n, 2, nil, respondent.Instrumentation{})
	want := encodeBytes(t, full.Cols)

	ranges := distrib.PartitionBlocks(n, 3) // 8192 + 1808 + empty
	coreAbil := make([]float64, n)
	optAbil := make([]float64, n)
	profs := make([][]respondent.Profile, len(ranges))
	for i, r := range ranges {
		profs[i] = respondent.DrawProfilesRange(seed, r.Lo, r.Hi, 2)
		c, o := respondent.ProfileAbilities(profs[i])
		copy(coreAbil[r.Lo:r.Hi], c)
		copy(optAbil[r.Lo:r.Hi], o)
	}
	models := respondent.CalibrateFromAbilities(2, coreAbil, optAbil)

	merged := quiz.Columns().NewDataset("1.0", n)
	for i, r := range ranges {
		part := respondent.SampleRange(seed, r.Lo, profs[i], models, 2)
		if part.Len() != r.Len() {
			t.Fatalf("range %v produced %d respondents", r, part.Len())
		}
		if err := merged.Splice(part, r.Lo); err != nil {
			t.Fatalf("splice %v: %v", r, err)
		}
	}
	if got := encodeBytes(t, merged); !bytes.Equal(got, want) {
		t.Fatal("spliced range generation differs from one-shot generation")
	}
}

// TestStudentRangeMatchesFull is the student-cohort analogue.
func TestStudentRangeMatchesFull(t *testing.T) {
	const (
		seed = int64(43)
		n    = 9000
	)
	full := respondent.GenerateStudentsColumnar(seed, n, 2, respondent.Instrumentation{})
	want := encodeBytes(t, full)

	merged := quiz.Columns().NewDataset("1.0-student", n)
	for _, r := range distrib.PartitionBlocks(n, 2) {
		part := respondent.SampleStudentsRange(seed, r.Lo, r.Hi, 2)
		if err := merged.Splice(part, r.Lo); err != nil {
			t.Fatalf("splice %v: %v", r, err)
		}
	}
	if got := encodeBytes(t, merged); !bytes.Equal(got, want) {
		t.Fatal("spliced student ranges differ from one-shot generation")
	}
}

// TestCalibrateFromAbilitiesMatchesModels pins the split-calibration
// equivalence at a second cohort size (shard-boundary coverage).
func TestCalibrateFromAbilitiesMatchesModels(t *testing.T) {
	const (
		seed = int64(7)
		n    = 4500
	)
	full := respondent.GenerateMainColumnar(seed, n, 1, nil, respondent.Instrumentation{})
	want := encodeBytes(t, full.Cols)

	profs := respondent.DrawProfilesRange(seed, 0, n, 1)
	coreAbil, optAbil := respondent.ProfileAbilities(profs)
	models := respondent.CalibrateFromAbilities(1, coreAbil, optAbil)
	got := encodeBytes(t, respondent.SampleRange(seed, 0, profs, models, 1))
	if !bytes.Equal(got, want) {
		t.Fatal("single-range regeneration differs from GenerateMainColumnar")
	}
}
