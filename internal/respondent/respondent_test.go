package respondent

import (
	"math"
	"math/bits"
	"testing"

	"fpstudy/internal/paperdata"
	"fpstudy/internal/quiz"
	"fpstudy/internal/stats"
	"fpstudy/internal/survey"
)

// Use a larger population than the paper's 199 for statistical
// assertions so that sampling noise does not flake the build; the paper
// comparisons in the benchmark harness use n=199.
const testN = 4000

var testPop = GenerateMain(42, testN)

func TestDeterministic(t *testing.T) {
	a := GenerateMain(7, 50)
	b := GenerateMain(7, 50)
	for i := range a.Profiles {
		if a.Profiles[i].Area != b.Profiles[i].Area ||
			a.Profiles[i].Ability != b.Profiles[i].Ability {
			t.Fatal("generation not deterministic")
		}
	}
	ra := a.Dataset.Responses[10]
	rb := b.Dataset.Responses[10]
	for id, ans := range ra.Answers {
		if bAns := rb.Answers[id]; bAns.Choice != ans.Choice || bAns.Level != ans.Level {
			t.Fatalf("answers differ at %s", id)
		}
	}
}

func TestResponsesValidate(t *testing.T) {
	ins := quiz.Instrument()
	small := GenerateMain(3, 100)
	if err := ins.ValidateDataset(small.Dataset); err != nil {
		t.Fatal(err)
	}
	students := GenerateStudents(4, 52)
	if err := ins.ValidateDataset(students); err != nil {
		t.Fatal(err)
	}
}

func TestBackgroundMarginalsMatchPaper(t *testing.T) {
	ins := quiz.Instrument()
	tal, err := ins.Tally(testPop.Dataset, quiz.BGPosition)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range paperdata.Figure1Positions {
		wantPct := paperdata.Percent(e, paperdata.NMain)
		gotPct := 100 * float64(tal[e.Label]) / float64(testN)
		if math.Abs(gotPct-wantPct) > 3 {
			t.Errorf("position %q: %.1f%%, paper %.1f%%", e.Label, gotPct, wantPct)
		}
	}
	// Multi-select: FP languages.
	tal, _ = ins.Tally(testPop.Dataset, quiz.BGFPLanguages)
	for _, e := range paperdata.Figure6FPLanguages {
		wantPct := paperdata.Percent(e, paperdata.NMain)
		gotPct := 100 * float64(tal[e.Label]) / float64(testN)
		if math.Abs(gotPct-wantPct) > 4 {
			t.Errorf("language %q: %.1f%%, paper %.1f%%", e.Label, gotPct, wantPct)
		}
	}
}

func TestCoreScoreMatchesFigure12(t *testing.T) {
	var sum quiz.Tally
	for _, r := range testPop.Dataset.Responses {
		sum.Add(quiz.ScoreCore(r))
	}
	n := float64(testN)
	meanCorrect := float64(sum.Correct) / n
	meanIncorrect := float64(sum.Incorrect) / n
	meanDK := float64(sum.DontKnow) / n
	if math.Abs(meanCorrect-paperdata.Figure12Core.Correct) > 0.4 {
		t.Errorf("core mean correct %.2f, paper %.1f", meanCorrect, paperdata.Figure12Core.Correct)
	}
	if math.Abs(meanIncorrect-paperdata.Figure12Core.Incorrect) > 0.4 {
		t.Errorf("core mean incorrect %.2f, paper %.1f", meanIncorrect, paperdata.Figure12Core.Incorrect)
	}
	if math.Abs(meanDK-paperdata.Figure12Core.DontKnow) > 0.4 {
		t.Errorf("core mean DK %.2f, paper %.1f", meanDK, paperdata.Figure12Core.DontKnow)
	}
	// Headline: slightly above chance but far from mastery.
	if meanCorrect < 7.5 || meanCorrect > 10 {
		t.Errorf("core mean %.2f outside the paper's story", meanCorrect)
	}
}

func TestOptScoreMatchesFigure12(t *testing.T) {
	// Figure 12's optimization row covers only the three T/F
	// questions (Standard-compliant Level is excluded as not T/F).
	var sum quiz.Tally
	for _, r := range testPop.Dataset.Responses {
		sum.Add(quiz.ScoreOptScored(r))
	}
	n := float64(testN)
	if got := float64(sum.Correct) / n; math.Abs(got-paperdata.Figure12Opt.Correct) > 0.25 {
		t.Errorf("opt mean correct %.2f, paper %.1f", got, paperdata.Figure12Opt.Correct)
	}
	if got := float64(sum.DontKnow) / n; math.Abs(got-paperdata.Figure12Opt.DontKnow) > 0.3 {
		t.Errorf("opt mean DK %.2f, paper %.1f", got, paperdata.Figure12Opt.DontKnow)
	}
	// The story: developers answer Don't Know over 2/3 of the time on
	// a per-question basis.
	dkFrac := float64(sum.DontKnow) / (n * 3)
	if dkFrac < 0.6 {
		t.Errorf("opt DK fraction %.2f, want > 0.6", dkFrac)
	}
}

func TestPerQuestionBreakdownMatchesFigure14(t *testing.T) {
	qs := quiz.CoreQuestions()
	for i, q := range qs {
		row := paperdata.Figure14Core[i]
		var c, inc, dk int
		for _, r := range testPop.Dataset.Responses {
			switch quiz.ClassifyCore(r, q) {
			case quiz.OutcomeCorrect:
				c++
			case quiz.OutcomeIncorrect:
				inc++
			case quiz.OutcomeDontKnow:
				dk++
			}
		}
		n := float64(testN)
		if got := 100 * float64(c) / n; math.Abs(got-row.Correct) > 4 {
			t.Errorf("%s correct %.1f%%, paper %.1f%%", q.Label, got, row.Correct)
		}
		if got := 100 * float64(dk) / n; math.Abs(got-row.DontKnow) > 4 {
			t.Errorf("%s DK %.1f%%, paper %.1f%%", q.Label, got, row.DontKnow)
		}
	}
}

func TestWrongMajorityQuestions(t *testing.T) {
	// Identity and Divide-by-Zero must be answered incorrectly by a
	// majority — the paper's most alarming finding.
	for _, id := range []string{"core.identity", "core.divzero"} {
		q, _ := quiz.CoreQuestionByID(id)
		var c, inc int
		for _, r := range testPop.Dataset.Responses {
			switch quiz.ClassifyCore(r, q) {
			case quiz.OutcomeCorrect:
				c++
			case quiz.OutcomeIncorrect:
				inc++
			}
		}
		if inc <= c*2 {
			t.Errorf("%s: incorrect %d vs correct %d — paper has ~77%% incorrect", id, inc, c)
		}
	}
}

func TestFactorEffectContribSize(t *testing.T) {
	// Larger contributed codebases => higher core scores, monotone
	// (within noise), with a spread of roughly 3-4 points.
	order := []string{
		"100 to 1,000 lines of code",
		"1,001 to 10,000 lines of code",
		"10,001 to 100,000 lines of code",
		"100,001 to 1,000,000 lines of code",
		">1,000,000 lines of code",
	}
	means := map[string]float64{}
	counts := map[string]int{}
	for i, r := range testPop.Dataset.Responses {
		p := testPop.Profiles[i]
		tl := quiz.ScoreCore(r)
		means[p.ContribSize] += float64(tl.Correct)
		counts[p.ContribSize]++
	}
	for k := range means {
		means[k] /= float64(counts[k])
	}
	for i := 1; i < len(order); i++ {
		if means[order[i]] < means[order[i-1]]-0.3 {
			t.Errorf("size effect not monotone: %q %.2f < %q %.2f",
				order[i], means[order[i]], order[i-1], means[order[i-1]])
		}
	}
	spread := means[">1,000,000 lines of code"] - means["100 to 1,000 lines of code"]
	if spread < 1.5 || spread > 5 {
		t.Errorf("size effect spread %.2f, want ~3-4", spread)
	}
	if means[">1,000,000 lines of code"] < 10 {
		t.Errorf(">1M mean %.2f, paper ~11", means[">1,000,000 lines of code"])
	}
}

func TestFactorEffectArea(t *testing.T) {
	var csLike, physEng []float64
	for i, r := range testPop.Dataset.Responses {
		p := testPop.Profiles[i]
		score := float64(quiz.ScoreCore(r).Correct)
		switch p.Area {
		case "Computer Science", "Computer Engineering", "Electrical Engineering":
			csLike = append(csLike, score)
		case "Other Physical Science Field", "Other Engineering Field":
			physEng = append(physEng, score)
		}
	}
	mCS, mPE := stats.Mean(csLike), stats.Mean(physEng)
	if mCS-mPE < 1.5 {
		t.Errorf("CS-like %.2f vs PhysSci/Eng %.2f: gap too small", mCS, mPE)
	}
	// PhysSci/Eng performs at the level of chance (paper: disturbing).
	if math.Abs(mPE-7.5) > 1.2 {
		t.Errorf("PhysSci/Eng mean %.2f, paper ~chance 7.5", mPE)
	}
}

func TestFactorEffectRoleOnOptQuiz(t *testing.T) {
	var swe, support []float64
	for i, r := range testPop.Dataset.Responses {
		p := testPop.Profiles[i]
		score := float64(quiz.ScoreOpt(r).Correct)
		switch p.Role {
		case "My main role is as a software engineer":
			swe = append(swe, score)
		case "I develop software to support my main role":
			support = append(support, score)
		}
	}
	if stats.Mean(swe) <= stats.Mean(support) {
		t.Errorf("opt quiz: swe %.2f should beat support %.2f",
			stats.Mean(swe), stats.Mean(support))
	}
}

func TestSuspicionDistributions(t *testing.T) {
	items := quiz.SuspicionItems()
	for gi, tc := range []struct {
		name  string
		ds    *survey.Dataset
		dists []paperdata.SuspicionDist
	}{
		{"main", testPop.Dataset, paperdata.Figure22Main},
		{"students", GenerateStudents(5, 5000), paperdata.Figure22Student},
	} {
		for i, it := range items {
			var levels []int
			for _, r := range tc.ds.Responses {
				if a := r.Answer(it.ID); a.Level > 0 {
					levels = append(levels, a.Level)
				}
			}
			d := stats.NewLikertDist(levels, 5)
			for l := 0; l < 5; l++ {
				if math.Abs(d.Percent[l]-tc.dists[i].Percent[l]) > 4 {
					t.Errorf("%s %s level %d: %.1f%%, target %.1f%%",
						tc.name, it.ID, l+1, d.Percent[l], tc.dists[i].Percent[l])
				}
			}
		}
		_ = gi
	}
}

func TestSuspicionOrdering(t *testing.T) {
	// Invalid > Overflow > Underflow/Precision/Denorm in mean level.
	mean := func(id string) float64 {
		var levels []int
		for _, r := range testPop.Dataset.Responses {
			if a := r.Answer(id); a.Level > 0 {
				levels = append(levels, a.Level)
			}
		}
		return stats.NewLikertDist(levels, 5).MeanLevel()
	}
	inv, ovf := mean("susp.invalid"), mean("susp.overflow")
	und, prec, den := mean("susp.underflow"), mean("susp.precision"), mean("susp.denorm")
	if !(inv > ovf && ovf > und && ovf > prec && ovf > den) {
		t.Errorf("suspicion ordering broken: inv=%.2f ovf=%.2f und=%.2f prec=%.2f den=%.2f",
			inv, ovf, und, prec, den)
	}
	// About 1/3 of respondents under-rate Invalid (level < 5).
	below := 0
	total := 0
	for _, r := range testPop.Dataset.Responses {
		if a := r.Answer("susp.invalid"); a.Level > 0 {
			total++
			if a.Level < 5 {
				below++
			}
		}
	}
	frac := float64(below) / float64(total)
	if frac < 0.25 || frac > 0.45 {
		t.Errorf("invalid under-rating fraction %.2f, paper ~1/3", frac)
	}
}

func TestStudentsLessSuspiciousOfUnderflowDenorm(t *testing.T) {
	students := GenerateStudents(6, 5000)
	meanOf := func(ds *survey.Dataset, id string) float64 {
		var levels []int
		for _, r := range ds.Responses {
			if a := r.Answer(id); a.Level > 0 {
				levels = append(levels, a.Level)
			}
		}
		return stats.NewLikertDist(levels, 5).MeanLevel()
	}
	for _, id := range []string{"susp.underflow", "susp.denorm", "susp.overflow"} {
		if meanOf(students, id) >= meanOf(testPop.Dataset, id) {
			t.Errorf("%s: students should be less suspicious", id)
		}
	}
}

func TestAbilityDistribution(t *testing.T) {
	abilities := abilitiesOf(testPop.Profiles, false)
	s := stats.Summarize(abilities)
	if math.Abs(s.Mean) > 0.15 {
		t.Errorf("ability mean %.3f, want ~0 (centered)", s.Mean)
	}
	if s.StdDev < 0.2 || s.StdDev > 1.5 {
		t.Errorf("ability sd %.3f out of plausible range", s.StdDev)
	}
}

func TestShortListsPredictLowerScores(t *testing.T) {
	// The paper: respondents reporting no informal training at all (or
	// a near-empty language list) score worse; what the list contains
	// does not matter.
	var short, normal []float64
	for i, r := range testPop.Dataset.Responses {
		p := testPop.Profiles[i]
		score := float64(quiz.ScoreCore(r).Correct)
		if p.InformalMask == 0 || bits.OnesCount64(p.FPLanguagesMask) <= 1 {
			short = append(short, score)
		} else {
			normal = append(normal, score)
		}
	}
	if len(short) < 20 {
		t.Skipf("only %d short-list respondents in sample", len(short))
	}
	if stats.Mean(short) >= stats.Mean(normal) {
		t.Errorf("short-list mean %.2f should be below normal %.2f",
			stats.Mean(short), stats.Mean(normal))
	}
}

func TestGenerateMainWithOverride(t *testing.T) {
	// Force everyone into the largest-codebase bucket: the cohort's
	// mean core score must rise well above the untreated cohort's,
	// because offsets are calibrated against the untreated world.
	n := 1500
	base := GenerateMain(123, n)
	treated := GenerateMainWith(123, n, func(p *Profile) {
		p.ContribSize = ">1,000,000 lines of code"
	})
	meanOf := func(pop *Population) float64 {
		s := 0.0
		for _, r := range pop.Dataset.Responses {
			s += float64(quiz.ScoreCore(r).Correct)
		}
		return s / float64(len(pop.Dataset.Responses))
	}
	mb, mt := meanOf(base), meanOf(treated)
	if mt < mb+1.0 {
		t.Fatalf("forcing >1M LoC moved mean only %.2f -> %.2f", mb, mt)
	}
	// The override is reflected in the background answers.
	for _, r := range treated.Dataset.Responses[:20] {
		if r.Answer(quiz.BGContribSize).Choice != ">1,000,000 lines of code" {
			t.Fatal("override not recorded in responses")
		}
	}
	// Nil override is exactly GenerateMain.
	again := GenerateMainWith(123, 100, nil)
	plain := GenerateMain(123, 100)
	if again.Dataset.Responses[5].Answers[quiz.BGArea].Choice != plain.Dataset.Responses[5].Answers[quiz.BGArea].Choice {
		t.Fatal("nil override diverged from GenerateMain")
	}
}

func TestStudentDatasetShape(t *testing.T) {
	ds := GenerateStudents(9, 52)
	if len(ds.Responses) != 52 {
		t.Fatalf("%d students", len(ds.Responses))
	}
	for _, r := range ds.Responses {
		if len(r.Answers) != 5 {
			t.Fatalf("student answered %d questions, want 5 (suspicion only)", len(r.Answers))
		}
	}
}
