package respondent

import (
	"fmt"
	"os"
	"testing"

	"fpstudy/internal/paperdata"
	"fpstudy/internal/parallel"
	"fpstudy/internal/quiz"
)

// benchSizes are the cohort sizes the per-stage benchmarks run at. The
// 1M case takes seconds per rep and is gated behind FPSTUDY_BENCH_LARGE=1,
// matching the top-level BenchmarkStudyPipeline convention.
var benchSizes = []int{10000, 1000000}

func skipLarge(b *testing.B, n int) {
	if n >= 1000000 && os.Getenv("FPSTUDY_BENCH_LARGE") == "" {
		b.Skip("set FPSTUDY_BENCH_LARGE=1 to run the 1M-respondent benchmark")
	}
}

// benchProfiles draws an n-respondent profile cohort once (setup, not
// timed by the callers).
func benchProfiles(n int) []Profile {
	profiles := make([]Profile, n)
	drawProfileBlocks(0, 42, profiles, nil, nil)
	return profiles
}

// BenchmarkCalibrateModels times the calibration stage in isolation:
// building the ability kernels and bisecting every question model's
// difficulty offset against the paper's Figure 14/15 targets. Reported
// per respondent of the calibration cohort (capped at calibrationCap).
func BenchmarkCalibrateModels(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			skipLarge(b, n)
			profiles := benchProfiles(n)
			cohort := len(profiles)
			if cohort > calibrationCap {
				cohort = calibrationCap
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				models := calibrateModels(0, profiles, Instrumentation{})
				if len(models) == 0 {
					b.Fatal("calibration produced no models")
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(cohort), "ns/respondent")
		})
	}
}

// BenchmarkSampleResponses times the sampling stage in isolation:
// column-major block sampling of every answer column into a
// pre-allocated dataset, with models already calibrated. Reported per
// respondent.
func BenchmarkSampleResponses(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			skipLarge(b, n)
			profiles := benchProfiles(n)
			models := calibrateModels(0, profiles, Instrumentation{})
			d := quiz.Columns().NewDataset("1.0", n)
			cs := newColSampler(d, models, paperdata.Figure22Main)
			coreAbil := abilitiesOf(profiles, false)
			optAbil := abilitiesOf(profiles, true)
			rng := parallel.NewXRand()
			b.ReportAllocs()
			b.ResetTimer()
			// Blocks mirror the generator's fixed shard width, so the
			// benchmark exercises the same reseed cadence.
			const blockN = 4096
			for i := 0; i < b.N; i++ {
				for lo := 0; lo < n; lo += blockN {
					hi := lo + blockN
					if hi > n {
						hi = n
					}
					cs.sampleBlock(rng, 42, lo, hi, profiles, coreAbil, optAbil)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/respondent")
		})
	}
}
