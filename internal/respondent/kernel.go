package respondent

import (
	"math"

	"fpstudy/internal/parallel"
)

// calibrationCap bounds the number of abilities the bisection
// integrates per step. Profiles are i.i.d. across indices, so a
// deterministic prefix is an unbiased sample of the cohort; capping
// keeps calibration O(1) as n grows to millions while leaving every
// cohort up to the cap calibrated exactly as before.
const calibrationCap = 1 << 16

// abilityKernel is the batched calibration kernel for one ability
// distribution. Bisection evaluates E[invlogit(offset + a_i)] weighted
// by the answer/don't-know gates; writing
//
//	invlogit(offset + a) = 1 / (1 + exp(-offset) · exp(-a))
//
// lets the per-ability exp(-a_i) be computed once per cohort and shared
// by every question and every bisection step. Each step then costs one
// exp for the offset plus a multiply-divide sweep over the cohort —
// versus one exp per ability per step in the unbatched form (~30
// questions × 60 steps × |cohort| exp calls).
type abilityKernel struct {
	abil   []float64
	expNeg []float64 // expNeg[i] = exp(-abil[i])
}

// newAbilityKernel precomputes the per-cohort exp array (capped at
// calibrationCap abilities) with a deterministic parallel fill.
func newAbilityKernel(workers int, abil []float64) *abilityKernel {
	if len(abil) > calibrationCap {
		abil = abil[:calibrationCap]
	}
	k := &abilityKernel{abil: abil, expNeg: make([]float64, len(abil))}
	parallel.ForEach(workers, len(abil), func(i int) {
		k.expNeg[i] = math.Exp(-abil[i])
	})
	return k
}

// weights fills w[i] = (1-pUn)·(1-dkProb(a_i)) — the probability that
// respondent i answers question qm at all. It is offset-independent, so
// it is computed once per question, outside the bisection loop.
func (k *abilityKernel) weights(qm questionModel, w []float64) {
	for i, a := range k.abil {
		w[i] = (1 - qm.pUn) * (1 - qm.dkProb(a))
	}
}

// expectCorrect evaluates the expected correct fraction at the given
// offset: one exp, then a fused multiply-divide sweep accumulated with
// the fixed-shard deterministic sum (bit-identical at any worker
// count).
func (k *abilityKernel) expectCorrect(workers int, w []float64, offset float64) float64 {
	t := math.Exp(-offset)
	en := k.expNeg
	s := parallel.SumShards(workers, len(en), func(lo, hi int) float64 {
		sub := 0.0
		for i := lo; i < hi; i++ {
			sub += w[i] / (1 + t*en[i])
		}
		return sub
	})
	return s / float64(len(en))
}

// calibrate finds the logit offset at which the expected fraction of
// respondents answering correctly equals target. w is caller-provided
// scratch of len(k.abil) so concurrent per-question calibrations don't
// share buffers.
func (k *abilityKernel) calibrate(workers int, qm questionModel, target float64, w []float64) float64 {
	k.weights(qm, w)
	lo, hi := -12.0, 12.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if k.expectCorrect(workers, w, mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
