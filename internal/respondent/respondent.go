// Package respondent is the synthetic-population substitute for the
// paper's 199 human developers (and 52 students). The paper's analysis
// pipeline consumes anonymous response records; this package generates
// such records from a calibrated latent-ability model:
//
//  1. Background profiles are drawn from the paper's published
//     marginals (Figures 1-11).
//  2. Each respondent gets a latent floating point ability derived from
//     background factors with effect sizes digitized from Figures
//     16-19 (codebase size strongest, then area, role, training) plus
//     individual noise.
//  3. Per-question response behaviour (correct / incorrect / don't know
//     / unanswered) follows an item-response model whose per-question
//     offsets are calibrated by bisection so the population reproduces
//     the paper's per-question breakdowns (Figures 14-15), while the
//     ability structure reproduces the factor effects.
//  4. Suspicion answers are drawn from the digitized Figure 22
//     distributions.
//
// Everything is deterministic given a seed. Generation is
// shard-splittable: each respondent owns RNG streams derived from
// (seed, stream, index) via internal/parallel, so cohorts are generated
// concurrently with output bit-identical to sequential generation at
// any worker count.
package respondent

import (
	"math"
	"math/rand"

	"fpstudy/internal/colstore"
	"fpstudy/internal/paperdata"
	"fpstudy/internal/parallel"
	"fpstudy/internal/quiz"
	"fpstudy/internal/survey"
	"fpstudy/internal/telemetry"
)

// Instrumentation carries the optional telemetry handles for one
// generation run. The zero value disables all instrumentation; every
// field is nil-safe, so generation code uses the handles
// unconditionally. Instrumentation observes only — it never draws
// randomness or moves shard boundaries, so the generated dataset is
// bit-identical with or without it (pinned by
// internal/core.TestGoldenParallelDeterminism).
type Instrumentation struct {
	// Span is the parent span for this generation; stage children
	// (draw-profiles, calibrate, sample-responses) are attached to it.
	Span *telemetry.Span
	// Progress is advanced once per pipeline item: once when a
	// respondent's profile is drawn and once when its responses are
	// sampled, so a full main-cohort generation advances it by 2n (the
	// student cohort, which has no profile stage, advances it by n).
	// fpgen -progress streams this counter to stderr.
	Progress *telemetry.Counter
}

// RNG stream identifiers. Each respondent index owns one independent
// stream per phase, which is what makes generation order-independent:
// respondent i's draws never depend on how many respondents came
// before it.
const (
	streamProfile  uint64 = 10 // background + ability noise
	streamResponse uint64 = 2  // quiz answers + suspicion
	streamStudent  uint64 = 3  // student suspicion answers
)

// Profile is one synthetic participant's background.
type Profile struct {
	Position       string
	Area           string
	FormalTraining string
	Informal       []string
	Role           string
	FPLanguages    []string
	ArbPrec        []string
	ContribSize    string
	ContribExtent  string
	InvolvedSize   string
	InvolvedExtent string

	// Ability is the latent core-quiz skill in logit units (0 =
	// population average).
	Ability float64
	// OptAbility is the latent optimization-quiz skill.
	OptAbility float64
}

// Population is a generated cohort. Cols is the primary storage: the
// columnar dataset the respondents were sampled directly into (see
// internal/colstore). Dataset is the row view (one map[string]Answer
// per respondent); the Generate* entry points materialize it for
// compatibility, while the *Columnar entry points leave it nil so
// million-respondent pipelines never pay for a map per respondent.
type Population struct {
	Profiles []Profile
	Cols     *colstore.Dataset
	Dataset  *survey.Dataset
}

// MaterializeDataset fills in the row view from the columns (no-op if
// already present) and returns it.
func (p *Population) MaterializeDataset(workers int) *survey.Dataset {
	if p.Dataset == nil {
		p.Dataset = p.Cols.ToSurveyWorkers(workers)
	}
	return p.Dataset
}

// Effect sizes in core-quiz score points (digitized from Figures
// 16-19). They are centered against the population marginals at model
// construction, so they encode differences, not absolute levels.
var (
	contribSizeEffect = map[string]float64{
		"<100 lines of code":                 -1.3,
		"100 to 1,000 lines of code":         -0.9,
		"1,001 to 10,000 lines of code":      -0.4,
		"10,001 to 100,000 lines of code":    0.5,
		"100,001 to 1,000,000 lines of code": 1.3,
		">1,000,000 lines of code":           2.2,
	}
	areaEffect = map[string]float64{
		"Electrical Engineering":       2.2,
		"Computer Science":             1.5,
		"Computer Engineering":         1.5,
		"CS&CE":                        1.5,
		"CS&Math":                      1.5,
		"Mathematics":                  0.5,
		"Other Physical Science Field": -1.0,
		"Other Engineering Field":      -1.0,
	}
	areaEffectDefault = -0.7 // all remaining small-n areas
	roleEffect        = map[string]float64{
		"My main role is as a software engineer":                       1.0,
		"My main role is to manage software engineers":                 0.5,
		"I manage others who develop software to support my main role": 0.0,
		"I develop software to support my main role":                   -0.3,
	}
	trainingEffect = map[string]float64{
		"One or more courses":               0.7,
		"One or more weeks within a course": 0.4,
		"One or more lectures in course":    0.0,
		"None":                              -0.5,
	}
	// Working on numeric correctness yourself or in your team adds a
	// small amount (the paper: ~2/15 relative to non-intrinsic FP).
	correctnessBonus = 0.8

	// "Very short lists predict bad scores": respondents reporting at
	// most one floating point language, or no informal training at
	// all, sit lower (the paper found the content of the lists did
	// not matter, only their nonemptiness).
	shortListPenalty = 0.7

	// Optimization-quiz effects (Figures 20-21), in opt-score points.
	optRoleEffect = map[string]float64{
		"My main role is as a software engineer":                       0.55,
		"My main role is to manage software engineers":                 0.3,
		"I manage others who develop software to support my main role": -0.05,
		"I develop software to support my main role":                   -0.15,
	}
	optAreaEffect = map[string]float64{
		"Electrical Engineering":       0.45,
		"Computer Science":             0.35,
		"Computer Engineering":         0.35,
		"CS&CE":                        0.35,
		"CS&Math":                      0.35,
		"Mathematics":                  0.0,
		"Other Physical Science Field": -0.25,
		"Other Engineering Field":      -0.25,
	}
	optAreaEffectDefault = -0.2
)

// pointsPerLogit converts score points to logit-scale ability: the
// derivative of expected core score with respect to ability, roughly
// sum over questions of p(1-p) on answered questions.
const pointsPerLogit = 2.9

// optPointsPerLogit is the same conversion for the optimization quiz
// (3 scored T/F questions, mostly unanswered/DK, so the slope is small).
const optPointsPerLogit = 0.55

// weightedChoice draws a label proportional to the published counts.
func weightedChoice(rng *rand.Rand, entries []paperdata.CountEntry) string {
	total := paperdata.Total(entries)
	r := rng.Intn(total)
	for _, e := range entries {
		r -= e.N
		if r < 0 {
			return e.Label
		}
	}
	return entries[len(entries)-1].Label
}

// multiSelect includes each option independently with its marginal
// probability.
func multiSelect(rng *rand.Rand, entries []paperdata.CountEntry, denom int) []string {
	var out []string
	for _, e := range entries {
		if rng.Float64() < float64(e.N)/float64(denom) {
			out = append(out, e.Label)
		}
	}
	return out
}

// centeredEffect looks up an effect and subtracts the population mean
// of the effect under the given marginals.
func centeredEffect(effects map[string]float64, def float64, level string, marginals []paperdata.CountEntry) float64 {
	get := func(l string) float64 {
		if v, ok := effects[l]; ok {
			return v
		}
		return def
	}
	total := 0
	mean := 0.0
	for _, e := range marginals {
		total += e.N
		mean += float64(e.N) * get(e.Label)
	}
	mean /= float64(total)
	return get(level) - mean
}

// drawProfile generates one background profile and its latent
// abilities.
func drawProfile(rng *rand.Rand) Profile {
	return drawProfileWith(rng, nil)
}

// drawProfileWith draws a background, applies an optional override to
// the background factors, and then derives abilities — so an
// intervention (forcing a factor level) feeds through the ability model
// exactly as the fitted effects dictate.
func drawProfileWith(rng *rand.Rand, override func(*Profile)) Profile {
	p := drawBackground(rng)
	if override != nil {
		override(&p)
	}
	assignAbilities(&p, rng.NormFloat64(), rng.NormFloat64())
	return p
}

func drawBackground(rng *rand.Rand) Profile {
	return Profile{
		Position:       weightedChoice(rng, paperdata.Figure1Positions),
		Area:           weightedChoice(rng, paperdata.Figure2Areas),
		FormalTraining: weightedChoice(rng, paperdata.Figure3FormalTraining),
		Informal:       multiSelect(rng, paperdata.Figure4InformalTraining, paperdata.NMain),
		Role:           weightedChoice(rng, paperdata.Figure5Roles),
		FPLanguages:    multiSelect(rng, paperdata.Figure6FPLanguages, paperdata.NMain),
		ArbPrec:        multiSelect(rng, paperdata.Figure7ArbPrec, paperdata.NMain),
		ContribSize:    weightedChoice(rng, paperdata.Figure8ContribSize),
		ContribExtent:  weightedChoice(rng, paperdata.Figure9ContribExtent),
		InvolvedSize:   weightedChoice(rng, paperdata.Figure10InvolvedSize),
		InvolvedExtent: weightedChoice(rng, paperdata.Figure11InvolvedExtent),
	}
}

// assignAbilities derives the latent skills from the background factors
// plus individual noise (passed in so intervention overrides reuse the
// same draws).
func assignAbilities(p *Profile, noiseCore, noiseOpt float64) {
	points := centeredEffect(contribSizeEffect, 0, p.ContribSize, paperdata.Figure8ContribSize) +
		centeredEffect(areaEffect, areaEffectDefault, p.Area, paperdata.Figure2Areas) +
		centeredEffect(roleEffect, 0, p.Role, paperdata.Figure5Roles) +
		centeredEffect(trainingEffect, 0, p.FormalTraining, paperdata.Figure3FormalTraining)
	if isCorrectnessFocused(p.ContribExtent) || isCorrectnessFocused(p.InvolvedExtent) {
		points += correctnessBonus
	}
	// The paper's observation about list-valued factors: "very short
	// lists predict bad scores" (having reported *some* informal
	// training or language breadth matters; which one does not).
	if len(p.FPLanguages) <= 1 {
		points -= shortListPenalty
	}
	if len(p.Informal) == 0 {
		points -= shortListPenalty
	}
	points += noiseCore * 1.2
	p.Ability = points / pointsPerLogit

	optPoints := centeredEffect(optRoleEffect, 0, p.Role, paperdata.Figure5Roles) +
		centeredEffect(optAreaEffect, optAreaEffectDefault, p.Area, paperdata.Figure2Areas)
	optPoints += noiseOpt * 0.25
	p.OptAbility = optPoints / optPointsPerLogit
}

func isCorrectnessFocused(extent string) bool {
	return extent == "FP intrinsic, I did numerical correctness" ||
		extent == "FP intrinsic, my team did numeric correctness"
}

func invlogit(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// questionModel captures the calibrated response behaviour of one quiz
// question.
type questionModel struct {
	id         string
	pUn        float64 // probability of no answer
	pDK        float64 // baseline probability of "don't know"
	offset     float64 // calibrated logit offset for correctness
	correct    string  // the correct answer string
	choiceSet  []string
	abilityOpt bool // use OptAbility instead of Ability
}

// dkProb is the respondent-specific don't-know probability: higher
// ability reduces willingness to punt, mildly.
func (qm questionModel) dkProb(ability float64) float64 {
	p := qm.pDK * (1 - 0.25*ability)
	if p < 0 {
		return 0
	}
	if p > 0.95 {
		return 0.95
	}
	return p
}

// calibrationCap bounds the number of abilities the bisection
// integrates per step. Profiles are i.i.d. across indices, so a
// deterministic prefix is an unbiased sample of the cohort; capping
// keeps calibration O(1) as n grows to millions while leaving every
// cohort up to the cap calibrated exactly as before.
const calibrationCap = 1 << 16

// calibrate finds the logit offset such that the expected fraction of
// respondents answering correctly equals target. The expectation sum
// runs sharded via parallel.SumShards, whose fixed shard boundaries and
// ordered fan-in make the result bit-identical at any worker count.
func calibrate(workers int, abilities []float64, qm questionModel, target float64) float64 {
	if len(abilities) > calibrationCap {
		abilities = abilities[:calibrationCap]
	}
	n := len(abilities)
	expectCorrect := func(offset float64) float64 {
		s := parallel.SumShards(workers, n, func(lo, hi int) float64 {
			sub := 0.0
			for i := lo; i < hi; i++ {
				a := abilities[i]
				pAns := (1 - qm.pUn) * (1 - qm.dkProb(a))
				sub += pAns * invlogit(offset+a)
			}
			return sub
		})
		return s / float64(n)
	}
	lo, hi := -12.0, 12.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if expectCorrect(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// GenerateMain builds the main cohort: n respondents with full
// background, core, optimization, and suspicion answers, calibrated
// against the paper's published aggregates. It parallelizes across
// GOMAXPROCS workers; the output is identical at any worker count.
func GenerateMain(seed int64, n int) *Population {
	return GenerateMainWithWorkers(seed, n, 0, nil)
}

// GenerateMainWorkers is GenerateMain with an explicit worker count
// (workers <= 0 means GOMAXPROCS). The worker count never affects the
// generated data, only the wall-clock time.
func GenerateMainWorkers(seed int64, n, workers int) *Population {
	return GenerateMainWithWorkers(seed, n, workers, nil)
}

// GenerateMainWith is GenerateMain with a background override applied
// to every profile before abilities are derived — the hook for policy
// experiments ("what if everyone had a full course of floating point
// training?"). The calibration step re-fits on the modified cohort's
// ability distribution only for the *observed* world; interventions
// reuse the observed-world question offsets so the treated cohort is
// scored by the same instrument response model. To achieve that, the
// override world is generated with offsets calibrated on an unmodified
// cohort drawn from the same seed.
func GenerateMainWith(seed int64, n int, override func(*Profile)) *Population {
	return GenerateMainWithWorkers(seed, n, 0, override)
}

// GenerateMainWithWorkers is GenerateMainWith with an explicit worker
// count.
func GenerateMainWithWorkers(seed int64, n, workers int, override func(*Profile)) *Population {
	return GenerateMainInstrumented(seed, n, workers, override, Instrumentation{})
}

// GenerateMainInstrumented is the fully parameterized main-cohort
// generator: explicit worker count, optional background override, and
// optional telemetry. The instrumentation records the stage span tree
// (draw-profiles → calibrate → sample-responses) and streams per-item
// progress; it never affects the generated data. The row view is
// materialized; use GenerateMainColumnar to skip it.
func GenerateMainInstrumented(seed int64, n, workers int, override func(*Profile), inst Instrumentation) *Population {
	p := GenerateMainColumnar(seed, n, workers, override, inst)
	p.MaterializeDataset(workers)
	return p
}

// newWorkerRNG allocates the per-worker reusable rand.Rand for
// ForEachWith fan-outs. The seed is irrelevant: the generator reseeds
// it per index (parallel.Reseed), which makes the draws bit-identical
// to a freshly allocated per-index RNG.
func newWorkerRNG() *rand.Rand { return rand.New(rand.NewSource(0)) }

// GenerateMainColumnar generates the main cohort directly into columns,
// with no row view: respondent i's answers are a handful of indexed
// stores into per-question code columns, so the per-respondent sampling
// loop performs zero heap allocations.
func GenerateMainColumnar(seed int64, n, workers int, override func(*Profile), inst Instrumentation) *Population {
	workers = parallel.Workers(workers, n)
	sp := inst.Span.StartChild("draw-profiles")
	profiles := make([]Profile, n)
	parallel.ForEachWith(workers, n, newWorkerRNG, func(rng *rand.Rand, i int) {
		parallel.Reseed(rng, seed, streamProfile, int64(i))
		profiles[i] = drawProfileWith(rng, override)
		inst.Progress.Inc()
	})
	sp.AddItems(int64(n))
	sp.End()
	calib := profiles
	if override != nil {
		// Calibrate against the untreated world so the intervention
		// measures a real shift rather than being normalized away.
		// Each base profile replays the same per-index stream the
		// treated profile consumed, minus the override — a paired
		// (common-random-numbers) design.
		calib = make([]Profile, n)
		parallel.ForEachWith(workers, n, newWorkerRNG, func(rng *rand.Rand, i int) {
			parallel.Reseed(rng, seed, streamProfile, int64(i))
			calib[i] = drawProfile(rng)
		})
	}
	return generateFromProfiles(workers, seed, profiles, calib, inst)
}

// generateFromProfiles calibrates the question models against the
// calib cohort's abilities and then samples responses for profiles,
// one independent RNG stream per respondent.
func generateFromProfiles(workers int, seed int64, profiles, calib []Profile, inst Instrumentation) *Population {
	models := calibrateModels(workers, calib, inst)

	ssp := inst.Span.StartChild("sample-responses")
	d := quiz.Columns().NewDataset("1.0", len(profiles))
	cs := newColSampler(d, models, paperdata.Figure22Main)
	parallel.ForEachWith(workers, len(profiles), newWorkerRNG, func(rng *rand.Rand, i int) {
		parallel.Reseed(rng, seed, streamResponse, int64(i))
		cs.sample(rng, i, &profiles[i])
		inst.Progress.Inc()
	})
	ssp.AddItems(int64(len(profiles)))
	ssp.End()
	return &Population{Profiles: profiles, Cols: d}
}

// calibrateModels builds the per-question response models with
// calibration targets from Figures 14/15 and bisects each question's
// difficulty offset against the calib cohort's ability distribution.
func calibrateModels(workers int, calib []Profile, inst Instrumentation) []questionModel {
	// The oracle-backed answer key is computed once (cached in quiz) and
	// shared read-only by every worker.
	coreAbil := abilitiesOf(calib, false)
	optAbil := abilitiesOf(calib, true)
	type modelSpec struct {
		qm      questionModel
		target  float64
		optAbil bool
	}
	var specs []modelSpec
	for i, q := range quiz.CoreQuestions() {
		row := paperdata.Figure14Core[i]
		specs = append(specs, modelSpec{
			qm: questionModel{
				id:      q.ID,
				pUn:     row.Unanswered / 100,
				pDK:     row.DontKnow / 100,
				correct: quiz.CoreAnswer(q.ID),
			},
			target: row.Correct / 100,
		})
	}
	for i, q := range quiz.OptQuestions() {
		row := paperdata.Figure15Opt[i]
		qm := questionModel{
			id:         q.ID,
			pUn:        row.Unanswered / 100,
			pDK:        row.DontKnow / 100,
			correct:    quiz.OptAnswer(q.ID),
			abilityOpt: true,
		}
		if !q.IsTrueFalse() {
			qm.choiceSet = q.Choices
		}
		specs = append(specs, modelSpec{qm: qm, target: row.Correct / 100, optAbil: true})
	}
	// Calibrate the questions concurrently; each bisection is
	// independent and deterministic.
	csp := inst.Span.StartChild("calibrate")
	models := parallel.Map(workers, len(specs), func(i int) questionModel {
		s := specs[i]
		abil := coreAbil
		if s.optAbil {
			abil = optAbil
		}
		qm := s.qm
		qm.offset = calibrate(1, abil, qm, s.target)
		return qm
	})
	csp.AddItems(int64(len(specs)))
	csp.End()
	return models
}

func abilitiesOf(ps []Profile, opt bool) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		if opt {
			out[i] = p.OptAbility
		} else {
			out[i] = p.Ability
		}
	}
	return out
}

// colModel is a questionModel bound to its column: answer strings are
// resolved to codes once at sampler construction, so drawing one answer
// is a couple of RNG calls and a single indexed store.
type colModel struct {
	questionModel
	ci int
	// True/false codes (choiceSet empty): the correct answer and its
	// flip.
	correctTF uint8
	wrongTF   uint8
	// Single-choice codes (choiceSet nonempty).
	correctCode int32
	dkCode      int32
	csCodes     []int32 // codes of choiceSet, same order
}

// sampleInto draws one answer and stores it. The RNG draw sequence is
// exactly the historical row-path sequence (unanswered gate, don't-know
// gate, correctness gate, then the wrong-choice retry loop for choice
// questions), so columnar generation is bit-identical to the map-based
// generator it replaced.
func (m *colModel) sampleInto(d *colstore.Dataset, rng *rand.Rand, i int, ability float64) {
	if rng.Float64() < m.pUn {
		return // columns are zero-initialized: unanswered
	}
	if rng.Float64() < m.dkProb(ability) {
		if m.csCodes == nil {
			d.SetTF(m.ci, i, colstore.TFDontKnow)
		} else {
			d.SetSingle(m.ci, i, m.dkCode)
		}
		return
	}
	pc := invlogit(m.offset + ability)
	if rng.Float64() < pc {
		if m.csCodes == nil {
			d.SetTF(m.ci, i, m.correctTF)
		} else {
			d.SetSingle(m.ci, i, m.correctCode)
		}
		return
	}
	// Incorrect: for T/F flip the answer; for choice pick a wrong
	// option uniformly.
	if m.csCodes == nil {
		d.SetTF(m.ci, i, m.wrongTF)
		return
	}
	for {
		k := rng.Intn(len(m.csCodes))
		if m.csCodes[k] != m.correctCode {
			d.SetSingle(m.ci, i, m.csCodes[k])
			return
		}
	}
}

// bgCol is one background question's column handle.
type bgCol struct {
	ci  int
	col *colstore.Col
}

// colSampler writes whole respondents straight into a columnar dataset.
// Everything string-shaped (question IDs, option labels, answer keys)
// is resolved to column indices and codes at construction; the per-
// respondent sample path allocates nothing.
type colSampler struct {
	d *colstore.Dataset

	position, area, training, role bgCol
	contribSize, contribExtent     bgCol
	involvedSize, involvedExtent   bgCol
	informal, languages, arbprec   bgCol

	models []colModel

	suspCI []int
	dists  []paperdata.SuspicionDist
}

// newColSampler binds the calibrated question models and the background
// and suspicion questions to d's columns.
func newColSampler(d *colstore.Dataset, models []questionModel, dists []paperdata.SuspicionDist) *colSampler {
	s := d.Schema
	bind := func(id string) bgCol {
		ci := s.MustColumnIndex(id)
		return bgCol{ci: ci, col: s.Column(ci)}
	}
	cs := &colSampler{
		d:              d,
		position:       bind(quiz.BGPosition),
		area:           bind(quiz.BGArea),
		training:       bind(quiz.BGFormalTraining),
		role:           bind(quiz.BGRole),
		contribSize:    bind(quiz.BGContribSize),
		contribExtent:  bind(quiz.BGContribExtent),
		involvedSize:   bind(quiz.BGInvolvedSize),
		involvedExtent: bind(quiz.BGInvolvedExtent),
		informal:       bind(quiz.BGInformal),
		languages:      bind(quiz.BGFPLanguages),
		arbprec:        bind(quiz.BGArbPrec),
		dists:          dists,
	}
	for _, qm := range models {
		ci := s.MustColumnIndex(qm.id)
		m := colModel{questionModel: qm, ci: ci}
		if len(qm.choiceSet) == 0 {
			if qm.correct == survey.AnswerTrue {
				m.correctTF, m.wrongTF = colstore.TFTrue, colstore.TFFalse
			} else {
				m.correctTF, m.wrongTF = colstore.TFFalse, colstore.TFTrue
			}
		} else {
			col := s.Column(ci)
			m.correctCode = col.MustOptionCode(qm.correct)
			m.dkCode = col.MustOptionCode(survey.AnswerDontKnow)
			m.csCodes = make([]int32, len(qm.choiceSet))
			for k, c := range qm.choiceSet {
				m.csCodes[k] = col.MustOptionCode(c)
			}
		}
		cs.models = append(cs.models, m)
	}
	for _, it := range quiz.SuspicionItems() {
		cs.suspCI = append(cs.suspCI, s.MustColumnIndex(it.ID))
	}
	return cs
}

// maskOf folds a drawn multi-select list into its option bitset. Drawn
// lists come from the same tables the option lists are built from, in
// table order, so the mask reproduces the identical choices list.
func maskOf(c *colstore.Col, labels []string) uint64 {
	var mask uint64
	for _, l := range labels {
		mask |= 1 << uint(c.MustOptionCode(l)-1)
	}
	return mask
}

// sample writes respondent i — background, quiz answers, suspicion —
// into the dataset. Only element i of each column is touched, so
// distinct respondents sample concurrently (the shard-splittability
// contract), and the whole path performs zero heap allocations.
func (cs *colSampler) sample(rng *rand.Rand, i int, p *Profile) {
	d := cs.d
	d.SetSingle(cs.position.ci, i, cs.position.col.MustOptionCode(p.Position))
	d.SetSingle(cs.area.ci, i, cs.area.col.MustOptionCode(p.Area))
	d.SetSingle(cs.training.ci, i, cs.training.col.MustOptionCode(p.FormalTraining))
	d.SetSingle(cs.role.ci, i, cs.role.col.MustOptionCode(p.Role))
	d.SetSingle(cs.contribSize.ci, i, cs.contribSize.col.MustOptionCode(p.ContribSize))
	d.SetSingle(cs.contribExtent.ci, i, cs.contribExtent.col.MustOptionCode(p.ContribExtent))
	d.SetSingle(cs.involvedSize.ci, i, cs.involvedSize.col.MustOptionCode(p.InvolvedSize))
	d.SetSingle(cs.involvedExtent.ci, i, cs.involvedExtent.col.MustOptionCode(p.InvolvedExtent))
	d.SetMultiMask(cs.informal.ci, i, maskOf(cs.informal.col, p.Informal))
	d.SetMultiMask(cs.languages.ci, i, maskOf(cs.languages.col, p.FPLanguages))
	d.SetMultiMask(cs.arbprec.ci, i, maskOf(cs.arbprec.col, p.ArbPrec))
	for k := range cs.models {
		m := &cs.models[k]
		a := p.Ability
		if m.abilityOpt {
			a = p.OptAbility
		}
		m.sampleInto(d, rng, i, a)
	}
	for k, ci := range cs.suspCI {
		d.SetLikert(ci, i, drawLikert(rng, cs.dists[k].Percent))
	}
}

func drawLikert(rng *rand.Rand, percent [5]float64) int {
	total := 0.0
	for _, p := range percent {
		total += p
	}
	x := rng.Float64() * total
	for i, p := range percent {
		x -= p
		if x < 0 {
			return i + 1
		}
	}
	return 5
}

// GenerateStudents builds the student cohort: suspicion answers only
// (the paper's student group took just the suspicion quiz as an exam
// problem).
func GenerateStudents(seed int64, n int) *survey.Dataset {
	return GenerateStudentsWorkers(seed, n, 0)
}

// GenerateStudentsWorkers is GenerateStudents with an explicit worker
// count (workers <= 0 means GOMAXPROCS).
func GenerateStudentsWorkers(seed int64, n, workers int) *survey.Dataset {
	return GenerateStudentsInstrumented(seed, n, workers, Instrumentation{})
}

// GenerateStudentsInstrumented is GenerateStudentsWorkers with
// telemetry handles (see Instrumentation; the student cohort has a
// single sample-responses stage).
func GenerateStudentsInstrumented(seed int64, n, workers int, inst Instrumentation) *survey.Dataset {
	return GenerateStudentsColumnar(seed, n, workers, inst).ToSurveyWorkers(workers)
}

// GenerateStudentsColumnar generates the student cohort directly into
// columns: five Likert stores per respondent, no maps.
func GenerateStudentsColumnar(seed int64, n, workers int, inst Instrumentation) *colstore.Dataset {
	sp := inst.Span.StartChild("sample-responses")
	d := quiz.Columns().NewDataset("1.0-student", n)
	var suspCI []int
	for _, it := range quiz.SuspicionItems() {
		suspCI = append(suspCI, d.Schema.MustColumnIndex(it.ID))
	}
	dists := paperdata.Figure22Student
	parallel.ForEachWith(workers, n, newWorkerRNG, func(rng *rand.Rand, i int) {
		parallel.Reseed(rng, seed, streamStudent, int64(i))
		for k, ci := range suspCI {
			d.SetLikert(ci, i, drawLikert(rng, dists[k].Percent))
		}
		inst.Progress.Inc()
	})
	sp.AddItems(int64(n))
	sp.End()
	return d
}
