// Package respondent is the synthetic-population substitute for the
// paper's 199 human developers (and 52 students). The paper's analysis
// pipeline consumes anonymous response records; this package generates
// such records from a calibrated latent-ability model:
//
//  1. Background profiles are drawn from the paper's published
//     marginals (Figures 1-11).
//  2. Each respondent gets a latent floating point ability derived from
//     background factors with effect sizes digitized from Figures
//     16-19 (codebase size strongest, then area, role, training) plus
//     individual noise.
//  3. Per-question response behaviour (correct / incorrect / don't know
//     / unanswered) follows an item-response model whose per-question
//     offsets are calibrated by bisection so the population reproduces
//     the paper's per-question breakdowns (Figures 14-15), while the
//     ability structure reproduces the factor effects.
//  4. Suspicion answers are drawn from the digitized Figure 22
//     distributions.
//
// Everything is deterministic given a seed. Generation is
// shard-splittable: each respondent owns RNG streams derived from
// (seed, stream, index) via internal/parallel, so cohorts are generated
// concurrently with output bit-identical to sequential generation at
// any worker count.
//
// The hot path is batched (see DESIGN.md "Generation hot path"):
// profiles and responses are produced in fixed 4096-respondent blocks,
// responses column-major within a block, with one xoshiro generator per
// worker repositioned per (respondent, column) sub-stream.
package respondent

import (
	"math"
	"math/bits"
	"time"

	"fpstudy/internal/colstore"
	"fpstudy/internal/paperdata"
	"fpstudy/internal/parallel"
	"fpstudy/internal/quiz"
	"fpstudy/internal/survey"
	"fpstudy/internal/telemetry"
)

// Instrumentation carries the optional telemetry handles for one
// generation run. The zero value disables all instrumentation; every
// field is nil-safe, so generation code uses the handles
// unconditionally. Instrumentation observes only — it never draws
// randomness or moves shard boundaries, so the generated dataset is
// bit-identical with or without it (pinned by
// internal/core.TestGoldenParallelDeterminism).
type Instrumentation struct {
	// Span is the parent span for this generation; stage children
	// (draw-profiles, calibrate, sample-responses) are attached to it.
	Span *telemetry.Span
	// Progress advances by the block size as each fixed block of
	// respondents clears a pipeline stage; a full main-cohort generation
	// advances it by 2n in total (profiles + responses; the student
	// cohort, which has no profile stage, advances it by n). fpgen
	// -progress streams this counter to stderr.
	Progress *telemetry.Counter
}

// RNG stream identifiers. Each respondent index owns one independent
// stream per phase, which is what makes generation order-independent:
// respondent i's draws never depend on how many respondents came
// before it. Within the response and student streams, the index is
// packed as (respondent << subStreamBits | column), giving every
// (respondent, question) cell its own stream — the property that lets
// the sampler traverse blocks column-major.
const (
	streamProfile  uint64 = 10 // background + ability noise
	streamResponse uint64 = 2  // quiz answers + suspicion
	streamStudent  uint64 = 3  // student suspicion answers
)

// subStreamBits is the width of the per-column sub-stream field packed
// into the low bits of a response-stream index: up to 32 columns per
// respondent (15 core + 4 opt + 5 suspicion used today).
const subStreamBits = 5

// profileIdx caches each single-choice factor's entry index in its
// paperdata table (= its bgTables entry), resolved at draw time and
// re-derived when an override rewrites the labels. The sampler and the
// ability model address tables by these indices instead of hashing
// label strings per respondent.
type profileIdx struct {
	position, area, training, role int16
	contribSize, contribExtent     int16
	involvedSize, involvedExtent   int16
}

// Profile is one synthetic participant's background.
type Profile struct {
	Position       string
	Area           string
	FormalTraining string
	Role           string
	ContribSize    string
	ContribExtent  string
	InvolvedSize   string
	InvolvedExtent string

	// The multi-select factors as option bitsets over their schema
	// columns (bit j = option with code j+1, table order). The paper's
	// analysis only ever consumes these lists by size ("very short
	// lists predict bad scores") and by serialized choice set, both of
	// which the mask carries without a per-respondent allocation.
	InformalMask    uint64
	FPLanguagesMask uint64
	ArbPrecMask     uint64

	// Ability is the latent core-quiz skill in logit units (0 =
	// population average).
	Ability float64
	// OptAbility is the latent optimization-quiz skill.
	OptAbility float64

	idx profileIdx
}

// Population is a generated cohort. Cols is the primary storage: the
// columnar dataset the respondents were sampled directly into (see
// internal/colstore). Dataset is the row view (one map[string]Answer
// per respondent); the Generate* entry points materialize it for
// compatibility, while the *Columnar entry points leave it nil so
// million-respondent pipelines never pay for a map per respondent.
type Population struct {
	Profiles []Profile
	Cols     *colstore.Dataset
	Dataset  *survey.Dataset
}

// MaterializeDataset fills in the row view from the columns (no-op if
// already present) and returns it.
func (p *Population) MaterializeDataset(workers int) *survey.Dataset {
	if p.Dataset == nil {
		p.Dataset = p.Cols.ToSurveyWorkers(workers)
	}
	return p.Dataset
}

// Effect sizes in core-quiz score points (digitized from Figures
// 16-19). They are centered against the population marginals at model
// construction, so they encode differences, not absolute levels.
var (
	contribSizeEffect = map[string]float64{
		"<100 lines of code":                 -1.3,
		"100 to 1,000 lines of code":         -0.9,
		"1,001 to 10,000 lines of code":      -0.4,
		"10,001 to 100,000 lines of code":    0.5,
		"100,001 to 1,000,000 lines of code": 1.3,
		">1,000,000 lines of code":           2.2,
	}
	areaEffect = map[string]float64{
		"Electrical Engineering":       2.2,
		"Computer Science":             1.5,
		"Computer Engineering":         1.5,
		"CS&CE":                        1.5,
		"CS&Math":                      1.5,
		"Mathematics":                  0.5,
		"Other Physical Science Field": -1.0,
		"Other Engineering Field":      -1.0,
	}
	areaEffectDefault = -0.7 // all remaining small-n areas
	roleEffect        = map[string]float64{
		"My main role is as a software engineer":                       1.0,
		"My main role is to manage software engineers":                 0.5,
		"I manage others who develop software to support my main role": 0.0,
		"I develop software to support my main role":                   -0.3,
	}
	trainingEffect = map[string]float64{
		"One or more courses":               0.7,
		"One or more weeks within a course": 0.4,
		"One or more lectures in course":    0.0,
		"None":                              -0.5,
	}
	// Working on numeric correctness yourself or in your team adds a
	// small amount (the paper: ~2/15 relative to non-intrinsic FP).
	correctnessBonus = 0.8

	// "Very short lists predict bad scores": respondents reporting at
	// most one floating point language, or no informal training at
	// all, sit lower (the paper found the content of the lists did
	// not matter, only their nonemptiness).
	shortListPenalty = 0.7

	// Optimization-quiz effects (Figures 20-21), in opt-score points.
	optRoleEffect = map[string]float64{
		"My main role is as a software engineer":                       0.55,
		"My main role is to manage software engineers":                 0.3,
		"I manage others who develop software to support my main role": -0.05,
		"I develop software to support my main role":                   -0.15,
	}
	optAreaEffect = map[string]float64{
		"Electrical Engineering":       0.45,
		"Computer Science":             0.35,
		"Computer Engineering":         0.35,
		"CS&CE":                        0.35,
		"CS&Math":                      0.35,
		"Mathematics":                  0.0,
		"Other Physical Science Field": -0.25,
		"Other Engineering Field":      -0.25,
	}
	optAreaEffectDefault = -0.2
)

// pointsPerLogit converts score points to logit-scale ability: the
// derivative of expected core score with respect to ability, roughly
// sum over questions of p(1-p) on answered questions.
const pointsPerLogit = 2.9

// optPointsPerLogit is the same conversion for the optimization quiz
// (3 scored T/F questions, mostly unanswered/DK, so the slope is small).
const optPointsPerLogit = 0.55

// centeredEffect looks up an effect and subtracts the population mean
// of the effect under the given marginals. Used once per table entry at
// bgTables construction; the hot path reads the precomputed arrays.
func centeredEffect(effects map[string]float64, def float64, level string, marginals []paperdata.CountEntry) float64 {
	get := func(l string) float64 {
		if v, ok := effects[l]; ok {
			return v
		}
		return def
	}
	total := 0
	mean := 0.0
	for _, e := range marginals {
		total += e.N
		mean += float64(e.N) * get(e.Label)
	}
	mean /= float64(total)
	return get(level) - mean
}

// drawProfile generates one background profile and its latent
// abilities.
func drawProfile(rng *parallel.XRand) Profile {
	return drawProfileWith(rng, nil)
}

// drawProfileWith draws a background, applies an optional override to
// the background factors, and then derives abilities — so an
// intervention (forcing a factor level) feeds through the ability model
// exactly as the fitted effects dictate.
func drawProfileWith(rng *parallel.XRand, override func(*Profile)) Profile {
	p := drawBackground(rng)
	if override != nil {
		override(&p)
		reindexProfile(&p)
	}
	noiseCore, noiseOpt := rng.NormPair()
	assignAbilities(&p, noiseCore, noiseOpt)
	return p
}

func drawBackground(rng *parallel.XRand) Profile {
	t := tables()
	var p Profile
	p.idx.position = t.position.draw(rng)
	p.Position = t.position.labels[p.idx.position]
	p.idx.area = t.area.draw(rng)
	p.Area = t.area.labels[p.idx.area]
	p.idx.training = t.training.draw(rng)
	p.FormalTraining = t.training.labels[p.idx.training]
	p.InformalMask = t.informal.draw(rng)
	p.idx.role = t.role.draw(rng)
	p.Role = t.role.labels[p.idx.role]
	p.FPLanguagesMask = t.languages.draw(rng)
	p.ArbPrecMask = t.arbprec.draw(rng)
	p.idx.contribSize = t.contribSize.draw(rng)
	p.ContribSize = t.contribSize.labels[p.idx.contribSize]
	p.idx.contribExtent = t.contribExtent.draw(rng)
	p.ContribExtent = t.contribExtent.labels[p.idx.contribExtent]
	p.idx.involvedSize = t.involvedSize.draw(rng)
	p.InvolvedSize = t.involvedSize.labels[p.idx.involvedSize]
	p.idx.involvedExtent = t.involvedExtent.draw(rng)
	p.InvolvedExtent = t.involvedExtent.labels[p.idx.involvedExtent]
	return p
}

// reindexProfile re-derives the cached entry indices from the label
// fields — the slow path taken only after an override has rewritten
// labels. Unknown labels panic: an intervention must force a level the
// instrument actually offers.
func reindexProfile(p *Profile) {
	t := tables()
	p.idx.position = t.position.index(quiz.BGPosition, p.Position)
	p.idx.area = t.area.index(quiz.BGArea, p.Area)
	p.idx.training = t.training.index(quiz.BGFormalTraining, p.FormalTraining)
	p.idx.role = t.role.index(quiz.BGRole, p.Role)
	p.idx.contribSize = t.contribSize.index(quiz.BGContribSize, p.ContribSize)
	p.idx.contribExtent = t.contribExtent.index(quiz.BGContribExtent, p.ContribExtent)
	p.idx.involvedSize = t.involvedSize.index(quiz.BGInvolvedSize, p.InvolvedSize)
	p.idx.involvedExtent = t.involvedExtent.index(quiz.BGInvolvedExtent, p.InvolvedExtent)
}

// assignAbilities derives the latent skills from the background factors
// plus individual noise (passed in so intervention overrides reuse the
// same draws). Effects are read from the precomputed centered tables by
// entry index — no map lookups, no per-call mean re-derivation.
func assignAbilities(p *Profile, noiseCore, noiseOpt float64) {
	t := tables()
	points := t.contribEff[p.idx.contribSize] +
		t.areaEff[p.idx.area] +
		t.roleEff[p.idx.role] +
		t.trainingEff[p.idx.training]
	if t.correctnessContrib[p.idx.contribExtent] || t.correctnessInvolved[p.idx.involvedExtent] {
		points += correctnessBonus
	}
	// The paper's observation about list-valued factors: "very short
	// lists predict bad scores" (having reported *some* informal
	// training or language breadth matters; which one does not).
	if bits.OnesCount64(p.FPLanguagesMask) <= 1 {
		points -= shortListPenalty
	}
	if p.InformalMask == 0 {
		points -= shortListPenalty
	}
	points += noiseCore * 1.2
	p.Ability = points / pointsPerLogit

	optPoints := t.optRoleEff[p.idx.role] + t.optAreaEff[p.idx.area]
	optPoints += noiseOpt * 0.25
	p.OptAbility = optPoints / optPointsPerLogit
}

func isCorrectnessFocused(extent string) bool {
	return extent == "FP intrinsic, I did numerical correctness" ||
		extent == "FP intrinsic, my team did numeric correctness"
}

func invlogit(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// questionModel captures the calibrated response behaviour of one quiz
// question.
type questionModel struct {
	id         string
	pUn        float64 // probability of no answer
	pDK        float64 // baseline probability of "don't know"
	offset     float64 // calibrated logit offset for correctness
	correct    string  // the correct answer string
	choiceSet  []string
	abilityOpt bool // use OptAbility instead of Ability
}

// dkProb is the respondent-specific don't-know probability: higher
// ability reduces willingness to punt, mildly.
func (qm questionModel) dkProb(ability float64) float64 {
	p := qm.pDK * (1 - 0.25*ability)
	if p < 0 {
		return 0
	}
	if p > 0.95 {
		return 0.95
	}
	return p
}

// GenerateMain builds the main cohort: n respondents with full
// background, core, optimization, and suspicion answers, calibrated
// against the paper's published aggregates. It parallelizes across
// GOMAXPROCS workers; the output is identical at any worker count.
func GenerateMain(seed int64, n int) *Population {
	return GenerateMainWithWorkers(seed, n, 0, nil)
}

// GenerateMainWorkers is GenerateMain with an explicit worker count
// (workers <= 0 means GOMAXPROCS). The worker count never affects the
// generated data, only the wall-clock time.
func GenerateMainWorkers(seed int64, n, workers int) *Population {
	return GenerateMainWithWorkers(seed, n, workers, nil)
}

// GenerateMainWith is GenerateMain with a background override applied
// to every profile before abilities are derived — the hook for policy
// experiments ("what if everyone had a full course of floating point
// training?"). The calibration step re-fits on the modified cohort's
// ability distribution only for the *observed* world; interventions
// reuse the observed-world question offsets so the treated cohort is
// scored by the same instrument response model. To achieve that, the
// override world is generated with offsets calibrated on an unmodified
// cohort drawn from the same seed.
func GenerateMainWith(seed int64, n int, override func(*Profile)) *Population {
	return GenerateMainWithWorkers(seed, n, 0, override)
}

// GenerateMainWithWorkers is GenerateMainWith with an explicit worker
// count.
func GenerateMainWithWorkers(seed int64, n, workers int, override func(*Profile)) *Population {
	return GenerateMainInstrumented(seed, n, workers, override, Instrumentation{})
}

// GenerateMainInstrumented is the fully parameterized main-cohort
// generator: explicit worker count, optional background override, and
// optional telemetry. The instrumentation records the stage span tree
// (draw-profiles → calibrate → sample-responses) and streams per-block
// progress; it never affects the generated data. The row view is
// materialized; use GenerateMainColumnar to skip it.
func GenerateMainInstrumented(seed int64, n, workers int, override func(*Profile), inst Instrumentation) *Population {
	p := GenerateMainColumnar(seed, n, workers, override, inst)
	p.MaterializeDataset(workers)
	return p
}

// drawProfileBlocks fills profiles by fixed 4096-respondent blocks,
// one xoshiro generator per worker repositioned per respondent.
func drawProfileBlocks(workers int, seed int64, profiles []Profile, override func(*Profile), progress *telemetry.Counter) {
	n := len(profiles)
	parallel.ForEachWith(workers, parallel.NumShards(n), parallel.NewXRand,
		func(rng *parallel.XRand, s int) {
			lo, hi := parallel.ShardBounds(s, n)
			for i := lo; i < hi; i++ {
				rng.SeedAt(seed, streamProfile, int64(i))
				profiles[i] = drawProfileWith(rng, override)
			}
			progress.Add(int64(hi - lo))
		})
}

// GenerateMainColumnar generates the main cohort directly into columns,
// with no row view: respondent i's answers are a handful of indexed
// stores into per-question code columns, so the per-respondent sampling
// loop performs zero heap allocations.
func GenerateMainColumnar(seed int64, n, workers int, override func(*Profile), inst Instrumentation) *Population {
	workers = parallel.Workers(workers, n)
	sp := inst.Span.StartChild("draw-profiles")
	profiles := make([]Profile, n)
	drawProfileBlocks(workers, seed, profiles, override, inst.Progress)
	sp.AddItems(int64(n))
	sp.End()
	calib := profiles
	if override != nil {
		// Calibrate against the untreated world so the intervention
		// measures a real shift rather than being normalized away.
		// Each base profile replays the same per-index stream the
		// treated profile consumed, minus the override — a paired
		// (common-random-numbers) design.
		calib = make([]Profile, n)
		drawProfileBlocks(workers, seed, calib, nil, nil)
	}
	return generateFromProfiles(workers, seed, profiles, calib, inst)
}

// generateFromProfiles calibrates the question models against the
// calib cohort's abilities and then samples responses for profiles,
// block by block with per-(respondent, column) RNG streams.
func generateFromProfiles(workers int, seed int64, profiles, calib []Profile, inst Instrumentation) *Population {
	models := calibrateModels(workers, calib, inst)

	ssp := inst.Span.StartChild("sample-responses")
	n := len(profiles)
	d := quiz.Columns().NewDataset("1.0", n)
	cs := newColSampler(d, models, paperdata.Figure22Main)
	coreAbil := abilitiesOf(profiles, false)
	optAbil := abilitiesOf(profiles, true)
	lh := latencyHook.Load()
	parallel.ForEachWith(workers, parallel.NumShards(n), parallel.NewXRand,
		func(rng *parallel.XRand, s int) {
			lo, hi := parallel.ShardBounds(s, n)
			if lh != nil && lh.SampleBlock != nil {
				t0 := time.Now()
				cs.sampleBlock(rng, seed, lo, hi, profiles, coreAbil, optAbil)
				lh.SampleBlock(s, hi-lo, time.Since(t0))
			} else {
				cs.sampleBlock(rng, seed, lo, hi, profiles, coreAbil, optAbil)
			}
			inst.Progress.Add(int64(hi - lo))
		})
	ssp.AddItems(int64(n))
	ssp.End()
	return &Population{Profiles: profiles, Cols: d}
}

// calibrateModels builds the per-question response models with
// calibration targets from Figures 14/15 and bisects each question's
// difficulty offset against the calib cohort's ability distribution,
// using one shared ability kernel per ability kind (the exp(-a) array
// is computed once and reused by all ~19 bisections).
func calibrateModels(workers int, calib []Profile, inst Instrumentation) []questionModel {
	return calibrateFromAbilities(workers, abilitiesOf(calib, false), abilitiesOf(calib, true), inst)
}

// calibrateFromAbilities is calibrateModels against raw ability
// arrays. Calibration is the pipeline's one global reduction — each
// bisection step sums invlogit terms over the whole cohort with the
// fixed-shard deterministic sums — so a distributed generation gathers
// every worker's abilities and calls this once on the coordinator,
// reproducing the single-process offsets bit for bit (the ability
// kernel and SumShards shard layout depend only on len(coreAbil)).
func calibrateFromAbilities(workers int, coreAbil, optAbil []float64, inst Instrumentation) []questionModel {
	// The oracle-backed answer key is computed once (cached in quiz) and
	// shared read-only by every worker.
	type modelSpec struct {
		qm      questionModel
		target  float64
		optAbil bool
	}
	var specs []modelSpec
	for i, q := range quiz.CoreQuestions() {
		row := paperdata.Figure14Core[i]
		specs = append(specs, modelSpec{
			qm: questionModel{
				id:      q.ID,
				pUn:     row.Unanswered / 100,
				pDK:     row.DontKnow / 100,
				correct: quiz.CoreAnswer(q.ID),
			},
			target: row.Correct / 100,
		})
	}
	for i, q := range quiz.OptQuestions() {
		row := paperdata.Figure15Opt[i]
		qm := questionModel{
			id:         q.ID,
			pUn:        row.Unanswered / 100,
			pDK:        row.DontKnow / 100,
			correct:    quiz.OptAnswer(q.ID),
			abilityOpt: true,
		}
		if !q.IsTrueFalse() {
			qm.choiceSet = q.Choices
		}
		specs = append(specs, modelSpec{qm: qm, target: row.Correct / 100, optAbil: true})
	}
	csp := inst.Span.StartChild("calibrate")
	coreKernel := newAbilityKernel(workers, coreAbil)
	optKernel := newAbilityKernel(workers, optAbil)
	// Calibrate the questions concurrently; each bisection is
	// independent and deterministic.
	lh := latencyHook.Load()
	models := parallel.Map(workers, len(specs), func(i int) questionModel {
		s := specs[i]
		k := coreKernel
		if s.optAbil {
			k = optKernel
		}
		qm := s.qm
		if lh != nil && lh.Calibrate != nil {
			t0 := time.Now()
			qm.offset = k.calibrate(1, qm, s.target, make([]float64, len(k.abil)))
			lh.Calibrate(i, time.Since(t0))
		} else {
			qm.offset = k.calibrate(1, qm, s.target, make([]float64, len(k.abil)))
		}
		return qm
	})
	csp.AddItems(int64(len(specs)))
	csp.End()
	return models
}

func abilitiesOf(ps []Profile, opt bool) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		if opt {
			out[i] = p.OptAbility
		} else {
			out[i] = p.Ability
		}
	}
	return out
}

// colModel is a questionModel bound to its column: answer strings are
// resolved to codes once at sampler construction, so drawing one answer
// is a couple of RNG calls and a single indexed store.
type colModel struct {
	questionModel
	ci  int
	sub uint64 // sub-stream index within the respondent's response stream
	// True/false codes (choiceSet empty): the correct answer and its
	// flip.
	correctTF uint8
	wrongTF   uint8
	// Single-choice codes (choiceSet nonempty).
	correctCode int32
	dkCode      int32
	csCodes     []int32 // codes of choiceSet, same order
}

// sampleInto draws one answer and stores it. The draw sequence per cell
// is: unanswered gate, don't-know gate, correctness gate, then the
// wrong-choice retry loop for choice questions — each cell on its own
// (respondent, column) RNG stream.
func (m *colModel) sampleInto(d *colstore.Dataset, rng *parallel.XRand, i int, ability float64) {
	if rng.Float64() < m.pUn {
		return // columns are zero-initialized: unanswered
	}
	if rng.Float64() < m.dkProb(ability) {
		if m.csCodes == nil {
			d.SetTF(m.ci, i, colstore.TFDontKnow)
		} else {
			d.SetSingle(m.ci, i, m.dkCode)
		}
		return
	}
	pc := invlogit(m.offset + ability)
	if rng.Float64() < pc {
		if m.csCodes == nil {
			d.SetTF(m.ci, i, m.correctTF)
		} else {
			d.SetSingle(m.ci, i, m.correctCode)
		}
		return
	}
	// Incorrect: for T/F flip the answer; for choice pick a wrong
	// option uniformly.
	if m.csCodes == nil {
		d.SetTF(m.ci, i, m.wrongTF)
		return
	}
	for {
		k := rng.Intn(len(m.csCodes))
		if m.csCodes[k] != m.correctCode {
			d.SetSingle(m.ci, i, m.csCodes[k])
			return
		}
	}
}

// colSampler writes whole blocks of respondents straight into a
// columnar dataset. Everything string-shaped (question IDs, option
// labels, answer keys) is resolved to column indices and codes at
// construction; the sampling path allocates nothing.
type colSampler struct {
	d  *colstore.Dataset
	bg *bgTables

	// base is the global index of d's row 0. The single-process path
	// leaves it 0; a distributed worker sampling respondents [lo, hi)
	// into a local hi-lo row dataset sets base=lo so every RNG stream
	// is still seeded at the respondent's global index — the property
	// that makes the merged output byte-identical to one process.
	base int

	models []colModel

	suspCI  []int
	suspSub []uint64
	suspCum [][5]float64 // cumulative Figure 22 percentages
}

// newColSampler binds the calibrated question models and the background
// and suspicion questions to d's columns, and assigns every quiz and
// suspicion column its sub-stream index.
func newColSampler(d *colstore.Dataset, models []questionModel, dists []paperdata.SuspicionDist) *colSampler {
	s := d.Schema
	cs := &colSampler{d: d, bg: tables()}
	for k, qm := range models {
		ci := s.MustColumnIndex(qm.id)
		m := colModel{questionModel: qm, ci: ci, sub: uint64(k)}
		if len(qm.choiceSet) == 0 {
			if qm.correct == survey.AnswerTrue {
				m.correctTF, m.wrongTF = colstore.TFTrue, colstore.TFFalse
			} else {
				m.correctTF, m.wrongTF = colstore.TFFalse, colstore.TFTrue
			}
		} else {
			col := s.Column(ci)
			m.correctCode = col.MustOptionCode(qm.correct)
			m.dkCode = col.MustOptionCode(survey.AnswerDontKnow)
			m.csCodes = make([]int32, len(qm.choiceSet))
			for k, c := range qm.choiceSet {
				m.csCodes[k] = col.MustOptionCode(c)
			}
		}
		cs.models = append(cs.models, m)
	}
	for k, it := range quiz.SuspicionItems() {
		cs.suspCI = append(cs.suspCI, s.MustColumnIndex(it.ID))
		cs.suspSub = append(cs.suspSub, uint64(len(models)+k))
		cs.suspCum = append(cs.suspCum, cumulative(dists[k].Percent))
	}
	if len(cs.models)+len(cs.suspCI) > 1<<subStreamBits {
		panic("respondent: sub-stream space exhausted; widen subStreamBits")
	}
	return cs
}

// cumulative converts a Likert percentage row to cumulative thresholds.
func cumulative(percent [5]float64) [5]float64 {
	var cum [5]float64
	run := 0.0
	for i, p := range percent {
		run += p
		cum[i] = run
	}
	return cum
}

// sampleBlock writes respondents [lo, hi): background codes row-major
// (pure indexed stores from the profile's cached entry indices), then
// quiz answers and suspicion answers column-major — one question column
// across the whole block at a time, the cache-friendly orientation.
// Only elements [lo, hi) of each column are touched, so distinct blocks
// sample concurrently, and the whole path performs zero heap
// allocations.
func (cs *colSampler) sampleBlock(rng *parallel.XRand, seed int64, lo, hi int, profiles []Profile, coreAbil, optAbil []float64) {
	d := cs.d
	t := cs.bg
	for i := lo; i < hi; i++ {
		p := &profiles[i]
		d.SetSingle(t.position.ci, i, t.position.codes[p.idx.position])
		d.SetSingle(t.area.ci, i, t.area.codes[p.idx.area])
		d.SetSingle(t.training.ci, i, t.training.codes[p.idx.training])
		d.SetSingle(t.role.ci, i, t.role.codes[p.idx.role])
		d.SetSingle(t.contribSize.ci, i, t.contribSize.codes[p.idx.contribSize])
		d.SetSingle(t.contribExtent.ci, i, t.contribExtent.codes[p.idx.contribExtent])
		d.SetSingle(t.involvedSize.ci, i, t.involvedSize.codes[p.idx.involvedSize])
		d.SetSingle(t.involvedExtent.ci, i, t.involvedExtent.codes[p.idx.involvedExtent])
		d.SetMultiMask(t.informal.ci, i, p.InformalMask)
		d.SetMultiMask(t.languages.ci, i, p.FPLanguagesMask)
		d.SetMultiMask(t.arbprec.ci, i, p.ArbPrecMask)
	}
	for k := range cs.models {
		m := &cs.models[k]
		abil := coreAbil
		if m.abilityOpt {
			abil = optAbil
		}
		for i := lo; i < hi; i++ {
			rng.SeedAt(seed, streamResponse, int64(cs.base+i)<<subStreamBits|int64(m.sub))
			m.sampleInto(d, rng, i, abil[i])
		}
	}
	for k, ci := range cs.suspCI {
		cum := &cs.suspCum[k]
		sub := cs.suspSub[k]
		for i := lo; i < hi; i++ {
			rng.SeedAt(seed, streamResponse, int64(cs.base+i)<<subStreamBits|int64(sub))
			d.SetLikert(ci, i, drawLikert(rng, cum))
		}
	}
}

// drawLikert draws a 1-based Likert level from cumulative thresholds.
func drawLikert(rng *parallel.XRand, cum *[5]float64) int {
	x := rng.Float64() * cum[4]
	for i, c := range cum {
		if x < c {
			return i + 1
		}
	}
	return 5
}

// GenerateStudents builds the student cohort: suspicion answers only
// (the paper's student group took just the suspicion quiz as an exam
// problem).
func GenerateStudents(seed int64, n int) *survey.Dataset {
	return GenerateStudentsWorkers(seed, n, 0)
}

// GenerateStudentsWorkers is GenerateStudents with an explicit worker
// count (workers <= 0 means GOMAXPROCS).
func GenerateStudentsWorkers(seed int64, n, workers int) *survey.Dataset {
	return GenerateStudentsInstrumented(seed, n, workers, Instrumentation{})
}

// GenerateStudentsInstrumented is GenerateStudentsWorkers with
// telemetry handles (see Instrumentation; the student cohort has a
// single sample-responses stage).
func GenerateStudentsInstrumented(seed int64, n, workers int, inst Instrumentation) *survey.Dataset {
	return GenerateStudentsColumnar(seed, n, workers, inst).ToSurveyWorkers(workers)
}

// GenerateStudentsColumnar generates the student cohort directly into
// columns: five Likert stores per respondent, sampled column-major per
// block with per-(respondent, condition) streams.
func GenerateStudentsColumnar(seed int64, n, workers int, inst Instrumentation) *colstore.Dataset {
	sp := inst.Span.StartChild("sample-responses")
	d := quiz.Columns().NewDataset("1.0-student", n)
	var suspCI []int
	var suspCum [][5]float64
	for _, it := range quiz.SuspicionItems() {
		suspCI = append(suspCI, d.Schema.MustColumnIndex(it.ID))
	}
	for _, dist := range paperdata.Figure22Student {
		suspCum = append(suspCum, cumulative(dist.Percent))
	}
	parallel.ForEachWith(workers, parallel.NumShards(n), parallel.NewXRand,
		func(rng *parallel.XRand, s int) {
			lo, hi := parallel.ShardBounds(s, n)
			for k, ci := range suspCI {
				cum := &suspCum[k]
				for i := lo; i < hi; i++ {
					rng.SeedAt(seed, streamStudent, int64(i)<<subStreamBits|int64(k))
					d.SetLikert(ci, i, drawLikert(rng, cum))
				}
			}
			inst.Progress.Add(int64(hi - lo))
		})
	sp.AddItems(int64(n))
	sp.End()
	return d
}
