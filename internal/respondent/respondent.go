// Package respondent is the synthetic-population substitute for the
// paper's 199 human developers (and 52 students). The paper's analysis
// pipeline consumes anonymous response records; this package generates
// such records from a calibrated latent-ability model:
//
//  1. Background profiles are drawn from the paper's published
//     marginals (Figures 1-11).
//  2. Each respondent gets a latent floating point ability derived from
//     background factors with effect sizes digitized from Figures
//     16-19 (codebase size strongest, then area, role, training) plus
//     individual noise.
//  3. Per-question response behaviour (correct / incorrect / don't know
//     / unanswered) follows an item-response model whose per-question
//     offsets are calibrated by bisection so the population reproduces
//     the paper's per-question breakdowns (Figures 14-15), while the
//     ability structure reproduces the factor effects.
//  4. Suspicion answers are drawn from the digitized Figure 22
//     distributions.
//
// Everything is deterministic given a seed. Generation is
// shard-splittable: each respondent owns RNG streams derived from
// (seed, stream, index) via internal/parallel, so cohorts are generated
// concurrently with output bit-identical to sequential generation at
// any worker count.
package respondent

import (
	"math"
	"math/rand"

	"fpstudy/internal/paperdata"
	"fpstudy/internal/parallel"
	"fpstudy/internal/quiz"
	"fpstudy/internal/survey"
	"fpstudy/internal/telemetry"
)

// Instrumentation carries the optional telemetry handles for one
// generation run. The zero value disables all instrumentation; every
// field is nil-safe, so generation code uses the handles
// unconditionally. Instrumentation observes only — it never draws
// randomness or moves shard boundaries, so the generated dataset is
// bit-identical with or without it (pinned by
// internal/core.TestGoldenParallelDeterminism).
type Instrumentation struct {
	// Span is the parent span for this generation; stage children
	// (draw-profiles, calibrate, sample-responses) are attached to it.
	Span *telemetry.Span
	// Progress is advanced once per pipeline item: once when a
	// respondent's profile is drawn and once when its responses are
	// sampled, so a full main-cohort generation advances it by 2n (the
	// student cohort, which has no profile stage, advances it by n).
	// fpgen -progress streams this counter to stderr.
	Progress *telemetry.Counter
}

// RNG stream identifiers. Each respondent index owns one independent
// stream per phase, which is what makes generation order-independent:
// respondent i's draws never depend on how many respondents came
// before it.
const (
	streamProfile  uint64 = 10 // background + ability noise
	streamResponse uint64 = 2  // quiz answers + suspicion
	streamStudent  uint64 = 3  // student suspicion answers
)

// Profile is one synthetic participant's background.
type Profile struct {
	Position       string
	Area           string
	FormalTraining string
	Informal       []string
	Role           string
	FPLanguages    []string
	ArbPrec        []string
	ContribSize    string
	ContribExtent  string
	InvolvedSize   string
	InvolvedExtent string

	// Ability is the latent core-quiz skill in logit units (0 =
	// population average).
	Ability float64
	// OptAbility is the latent optimization-quiz skill.
	OptAbility float64
}

// Population is a generated cohort with its survey dataset.
type Population struct {
	Profiles []Profile
	Dataset  *survey.Dataset
}

// Effect sizes in core-quiz score points (digitized from Figures
// 16-19). They are centered against the population marginals at model
// construction, so they encode differences, not absolute levels.
var (
	contribSizeEffect = map[string]float64{
		"<100 lines of code":                 -1.3,
		"100 to 1,000 lines of code":         -0.9,
		"1,001 to 10,000 lines of code":      -0.4,
		"10,001 to 100,000 lines of code":    0.5,
		"100,001 to 1,000,000 lines of code": 1.3,
		">1,000,000 lines of code":           2.2,
	}
	areaEffect = map[string]float64{
		"Electrical Engineering":       2.2,
		"Computer Science":             1.5,
		"Computer Engineering":         1.5,
		"CS&CE":                        1.5,
		"CS&Math":                      1.5,
		"Mathematics":                  0.5,
		"Other Physical Science Field": -1.0,
		"Other Engineering Field":      -1.0,
	}
	areaEffectDefault = -0.7 // all remaining small-n areas
	roleEffect        = map[string]float64{
		"My main role is as a software engineer":                       1.0,
		"My main role is to manage software engineers":                 0.5,
		"I manage others who develop software to support my main role": 0.0,
		"I develop software to support my main role":                   -0.3,
	}
	trainingEffect = map[string]float64{
		"One or more courses":               0.7,
		"One or more weeks within a course": 0.4,
		"One or more lectures in course":    0.0,
		"None":                              -0.5,
	}
	// Working on numeric correctness yourself or in your team adds a
	// small amount (the paper: ~2/15 relative to non-intrinsic FP).
	correctnessBonus = 0.8

	// "Very short lists predict bad scores": respondents reporting at
	// most one floating point language, or no informal training at
	// all, sit lower (the paper found the content of the lists did
	// not matter, only their nonemptiness).
	shortListPenalty = 0.7

	// Optimization-quiz effects (Figures 20-21), in opt-score points.
	optRoleEffect = map[string]float64{
		"My main role is as a software engineer":                       0.55,
		"My main role is to manage software engineers":                 0.3,
		"I manage others who develop software to support my main role": -0.05,
		"I develop software to support my main role":                   -0.15,
	}
	optAreaEffect = map[string]float64{
		"Electrical Engineering":       0.45,
		"Computer Science":             0.35,
		"Computer Engineering":         0.35,
		"CS&CE":                        0.35,
		"CS&Math":                      0.35,
		"Mathematics":                  0.0,
		"Other Physical Science Field": -0.25,
		"Other Engineering Field":      -0.25,
	}
	optAreaEffectDefault = -0.2
)

// pointsPerLogit converts score points to logit-scale ability: the
// derivative of expected core score with respect to ability, roughly
// sum over questions of p(1-p) on answered questions.
const pointsPerLogit = 2.9

// optPointsPerLogit is the same conversion for the optimization quiz
// (3 scored T/F questions, mostly unanswered/DK, so the slope is small).
const optPointsPerLogit = 0.55

// weightedChoice draws a label proportional to the published counts.
func weightedChoice(rng *rand.Rand, entries []paperdata.CountEntry) string {
	total := paperdata.Total(entries)
	r := rng.Intn(total)
	for _, e := range entries {
		r -= e.N
		if r < 0 {
			return e.Label
		}
	}
	return entries[len(entries)-1].Label
}

// multiSelect includes each option independently with its marginal
// probability.
func multiSelect(rng *rand.Rand, entries []paperdata.CountEntry, denom int) []string {
	var out []string
	for _, e := range entries {
		if rng.Float64() < float64(e.N)/float64(denom) {
			out = append(out, e.Label)
		}
	}
	return out
}

// centeredEffect looks up an effect and subtracts the population mean
// of the effect under the given marginals.
func centeredEffect(effects map[string]float64, def float64, level string, marginals []paperdata.CountEntry) float64 {
	get := func(l string) float64 {
		if v, ok := effects[l]; ok {
			return v
		}
		return def
	}
	total := 0
	mean := 0.0
	for _, e := range marginals {
		total += e.N
		mean += float64(e.N) * get(e.Label)
	}
	mean /= float64(total)
	return get(level) - mean
}

// drawProfile generates one background profile and its latent
// abilities.
func drawProfile(rng *rand.Rand) Profile {
	return drawProfileWith(rng, nil)
}

// drawProfileWith draws a background, applies an optional override to
// the background factors, and then derives abilities — so an
// intervention (forcing a factor level) feeds through the ability model
// exactly as the fitted effects dictate.
func drawProfileWith(rng *rand.Rand, override func(*Profile)) Profile {
	p := drawBackground(rng)
	if override != nil {
		override(&p)
	}
	assignAbilities(&p, rng.NormFloat64(), rng.NormFloat64())
	return p
}

func drawBackground(rng *rand.Rand) Profile {
	return Profile{
		Position:       weightedChoice(rng, paperdata.Figure1Positions),
		Area:           weightedChoice(rng, paperdata.Figure2Areas),
		FormalTraining: weightedChoice(rng, paperdata.Figure3FormalTraining),
		Informal:       multiSelect(rng, paperdata.Figure4InformalTraining, paperdata.NMain),
		Role:           weightedChoice(rng, paperdata.Figure5Roles),
		FPLanguages:    multiSelect(rng, paperdata.Figure6FPLanguages, paperdata.NMain),
		ArbPrec:        multiSelect(rng, paperdata.Figure7ArbPrec, paperdata.NMain),
		ContribSize:    weightedChoice(rng, paperdata.Figure8ContribSize),
		ContribExtent:  weightedChoice(rng, paperdata.Figure9ContribExtent),
		InvolvedSize:   weightedChoice(rng, paperdata.Figure10InvolvedSize),
		InvolvedExtent: weightedChoice(rng, paperdata.Figure11InvolvedExtent),
	}
}

// assignAbilities derives the latent skills from the background factors
// plus individual noise (passed in so intervention overrides reuse the
// same draws).
func assignAbilities(p *Profile, noiseCore, noiseOpt float64) {
	points := centeredEffect(contribSizeEffect, 0, p.ContribSize, paperdata.Figure8ContribSize) +
		centeredEffect(areaEffect, areaEffectDefault, p.Area, paperdata.Figure2Areas) +
		centeredEffect(roleEffect, 0, p.Role, paperdata.Figure5Roles) +
		centeredEffect(trainingEffect, 0, p.FormalTraining, paperdata.Figure3FormalTraining)
	if isCorrectnessFocused(p.ContribExtent) || isCorrectnessFocused(p.InvolvedExtent) {
		points += correctnessBonus
	}
	// The paper's observation about list-valued factors: "very short
	// lists predict bad scores" (having reported *some* informal
	// training or language breadth matters; which one does not).
	if len(p.FPLanguages) <= 1 {
		points -= shortListPenalty
	}
	if len(p.Informal) == 0 {
		points -= shortListPenalty
	}
	points += noiseCore * 1.2
	p.Ability = points / pointsPerLogit

	optPoints := centeredEffect(optRoleEffect, 0, p.Role, paperdata.Figure5Roles) +
		centeredEffect(optAreaEffect, optAreaEffectDefault, p.Area, paperdata.Figure2Areas)
	optPoints += noiseOpt * 0.25
	p.OptAbility = optPoints / optPointsPerLogit
}

func isCorrectnessFocused(extent string) bool {
	return extent == "FP intrinsic, I did numerical correctness" ||
		extent == "FP intrinsic, my team did numeric correctness"
}

func invlogit(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// questionModel captures the calibrated response behaviour of one quiz
// question.
type questionModel struct {
	id         string
	pUn        float64 // probability of no answer
	pDK        float64 // baseline probability of "don't know"
	offset     float64 // calibrated logit offset for correctness
	correct    string  // the correct answer string
	choiceSet  []string
	abilityOpt bool // use OptAbility instead of Ability
}

// dkProb is the respondent-specific don't-know probability: higher
// ability reduces willingness to punt, mildly.
func (qm questionModel) dkProb(ability float64) float64 {
	p := qm.pDK * (1 - 0.25*ability)
	if p < 0 {
		return 0
	}
	if p > 0.95 {
		return 0.95
	}
	return p
}

// calibrationCap bounds the number of abilities the bisection
// integrates per step. Profiles are i.i.d. across indices, so a
// deterministic prefix is an unbiased sample of the cohort; capping
// keeps calibration O(1) as n grows to millions while leaving every
// cohort up to the cap calibrated exactly as before.
const calibrationCap = 1 << 16

// calibrate finds the logit offset such that the expected fraction of
// respondents answering correctly equals target. The expectation sum
// runs sharded via parallel.SumShards, whose fixed shard boundaries and
// ordered fan-in make the result bit-identical at any worker count.
func calibrate(workers int, abilities []float64, qm questionModel, target float64) float64 {
	if len(abilities) > calibrationCap {
		abilities = abilities[:calibrationCap]
	}
	n := len(abilities)
	expectCorrect := func(offset float64) float64 {
		s := parallel.SumShards(workers, n, func(lo, hi int) float64 {
			sub := 0.0
			for i := lo; i < hi; i++ {
				a := abilities[i]
				pAns := (1 - qm.pUn) * (1 - qm.dkProb(a))
				sub += pAns * invlogit(offset+a)
			}
			return sub
		})
		return s / float64(n)
	}
	lo, hi := -12.0, 12.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if expectCorrect(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// GenerateMain builds the main cohort: n respondents with full
// background, core, optimization, and suspicion answers, calibrated
// against the paper's published aggregates. It parallelizes across
// GOMAXPROCS workers; the output is identical at any worker count.
func GenerateMain(seed int64, n int) *Population {
	return GenerateMainWithWorkers(seed, n, 0, nil)
}

// GenerateMainWorkers is GenerateMain with an explicit worker count
// (workers <= 0 means GOMAXPROCS). The worker count never affects the
// generated data, only the wall-clock time.
func GenerateMainWorkers(seed int64, n, workers int) *Population {
	return GenerateMainWithWorkers(seed, n, workers, nil)
}

// GenerateMainWith is GenerateMain with a background override applied
// to every profile before abilities are derived — the hook for policy
// experiments ("what if everyone had a full course of floating point
// training?"). The calibration step re-fits on the modified cohort's
// ability distribution only for the *observed* world; interventions
// reuse the observed-world question offsets so the treated cohort is
// scored by the same instrument response model. To achieve that, the
// override world is generated with offsets calibrated on an unmodified
// cohort drawn from the same seed.
func GenerateMainWith(seed int64, n int, override func(*Profile)) *Population {
	return GenerateMainWithWorkers(seed, n, 0, override)
}

// GenerateMainWithWorkers is GenerateMainWith with an explicit worker
// count.
func GenerateMainWithWorkers(seed int64, n, workers int, override func(*Profile)) *Population {
	return GenerateMainInstrumented(seed, n, workers, override, Instrumentation{})
}

// GenerateMainInstrumented is the fully parameterized main-cohort
// generator: explicit worker count, optional background override, and
// optional telemetry. The instrumentation records the stage span tree
// (draw-profiles → calibrate → sample-responses) and streams per-item
// progress; it never affects the generated data.
func GenerateMainInstrumented(seed int64, n, workers int, override func(*Profile), inst Instrumentation) *Population {
	workers = parallel.Workers(workers, n)
	sp := inst.Span.StartChild("draw-profiles")
	profiles := parallel.Map(workers, n, func(i int) Profile {
		p := drawProfileWith(parallel.RNG(seed, streamProfile, int64(i)), override)
		inst.Progress.Inc()
		return p
	})
	sp.AddItems(int64(n))
	sp.End()
	calib := profiles
	if override != nil {
		// Calibrate against the untreated world so the intervention
		// measures a real shift rather than being normalized away.
		// Each base profile replays the same per-index stream the
		// treated profile consumed, minus the override — a paired
		// (common-random-numbers) design.
		calib = parallel.Map(workers, n, func(i int) Profile {
			return drawProfile(parallel.RNG(seed, streamProfile, int64(i)))
		})
	}
	return generateFromProfiles(workers, seed, profiles, calib, inst)
}

// generateFromProfiles calibrates the question models against the
// calib cohort's abilities and then samples responses for profiles,
// one independent RNG stream per respondent.
func generateFromProfiles(workers int, seed int64, profiles, calib []Profile, inst Instrumentation) *Population {
	// Build question models with calibration targets from Figure 14/15.
	// The oracle-backed answer key is computed once (cached in quiz) and
	// shared read-only by every worker.
	coreAbil := abilitiesOf(calib, false)
	optAbil := abilitiesOf(calib, true)
	type modelSpec struct {
		qm      questionModel
		target  float64
		optAbil bool
	}
	var specs []modelSpec
	for i, q := range quiz.CoreQuestions() {
		row := paperdata.Figure14Core[i]
		specs = append(specs, modelSpec{
			qm: questionModel{
				id:      q.ID,
				pUn:     row.Unanswered / 100,
				pDK:     row.DontKnow / 100,
				correct: quiz.CoreAnswer(q.ID),
			},
			target: row.Correct / 100,
		})
	}
	for i, q := range quiz.OptQuestions() {
		row := paperdata.Figure15Opt[i]
		qm := questionModel{
			id:         q.ID,
			pUn:        row.Unanswered / 100,
			pDK:        row.DontKnow / 100,
			correct:    quiz.OptAnswer(q.ID),
			abilityOpt: true,
		}
		if !q.IsTrueFalse() {
			qm.choiceSet = q.Choices
		}
		specs = append(specs, modelSpec{qm: qm, target: row.Correct / 100, optAbil: true})
	}
	// Calibrate the questions concurrently; each bisection is
	// independent and deterministic.
	csp := inst.Span.StartChild("calibrate")
	models := parallel.Map(workers, len(specs), func(i int) questionModel {
		s := specs[i]
		abil := coreAbil
		if s.optAbil {
			abil = optAbil
		}
		qm := s.qm
		qm.offset = calibrate(1, abil, qm, s.target)
		return qm
	})
	csp.AddItems(int64(len(specs)))
	csp.End()

	ssp := inst.Span.StartChild("sample-responses")
	ds := &survey.Dataset{Instrument: quiz.Instrument().Title, Version: "1.0"}
	ds.Responses = parallel.Map(workers, len(profiles), func(i int) survey.Response {
		rng := parallel.RNG(seed, streamResponse, int64(i))
		p := profiles[i]
		r := survey.Response{Answers: map[string]survey.Answer{}}
		fillBackground(&r, p)
		for _, qm := range models {
			a := p.Ability
			if qm.abilityOpt {
				a = p.OptAbility
			}
			ans := qm.sample(rng, a)
			if !ans.IsUnanswered() {
				r.Answers[qm.id] = ans
			}
		}
		fillSuspicion(&r, rng, paperdata.Figure22Main)
		inst.Progress.Inc()
		return r
	})
	ssp.AddItems(int64(len(profiles)))
	ssp.End()
	ds.Anonymize()
	return &Population{Profiles: profiles, Dataset: ds}
}

func abilitiesOf(ps []Profile, opt bool) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		if opt {
			out[i] = p.OptAbility
		} else {
			out[i] = p.Ability
		}
	}
	return out
}

// sample draws one answer from the question model for a respondent with
// the given ability.
func (qm questionModel) sample(rng *rand.Rand, ability float64) survey.Answer {
	if rng.Float64() < qm.pUn {
		return survey.Answer{}
	}
	if rng.Float64() < qm.dkProb(ability) {
		return survey.Answer{Choice: survey.AnswerDontKnow}
	}
	pc := invlogit(qm.offset + ability)
	if rng.Float64() < pc {
		return survey.Answer{Choice: qm.correct}
	}
	// Incorrect: for T/F flip the answer; for choice pick a wrong
	// option uniformly.
	if len(qm.choiceSet) == 0 {
		wrong := survey.AnswerTrue
		if qm.correct == survey.AnswerTrue {
			wrong = survey.AnswerFalse
		}
		return survey.Answer{Choice: wrong}
	}
	for {
		c := qm.choiceSet[rng.Intn(len(qm.choiceSet))]
		if c != qm.correct {
			return survey.Answer{Choice: c}
		}
	}
}

// fillBackground records the profile as survey answers.
func fillBackground(r *survey.Response, p Profile) {
	set := func(id, choice string) {
		r.Answers[id] = survey.Answer{Choice: choice}
	}
	set(quiz.BGPosition, p.Position)
	set(quiz.BGArea, p.Area)
	set(quiz.BGFormalTraining, p.FormalTraining)
	set(quiz.BGRole, p.Role)
	set(quiz.BGContribSize, p.ContribSize)
	set(quiz.BGContribExtent, p.ContribExtent)
	set(quiz.BGInvolvedSize, p.InvolvedSize)
	set(quiz.BGInvolvedExtent, p.InvolvedExtent)
	if len(p.Informal) > 0 {
		r.Answers[quiz.BGInformal] = survey.Answer{Choices: p.Informal}
	}
	if len(p.FPLanguages) > 0 {
		r.Answers[quiz.BGFPLanguages] = survey.Answer{Choices: p.FPLanguages}
	}
	if len(p.ArbPrec) > 0 {
		r.Answers[quiz.BGArbPrec] = survey.Answer{Choices: p.ArbPrec}
	}
}

// fillSuspicion draws the five Likert answers from the published
// distributions.
func fillSuspicion(r *survey.Response, rng *rand.Rand, dists []paperdata.SuspicionDist) {
	items := quiz.SuspicionItems()
	for i, it := range items {
		d := dists[i]
		r.Answers[it.ID] = survey.Answer{Level: drawLikert(rng, d.Percent)}
	}
}

func drawLikert(rng *rand.Rand, percent [5]float64) int {
	total := 0.0
	for _, p := range percent {
		total += p
	}
	x := rng.Float64() * total
	for i, p := range percent {
		x -= p
		if x < 0 {
			return i + 1
		}
	}
	return 5
}

// GenerateStudents builds the student cohort: suspicion answers only
// (the paper's student group took just the suspicion quiz as an exam
// problem).
func GenerateStudents(seed int64, n int) *survey.Dataset {
	return GenerateStudentsWorkers(seed, n, 0)
}

// GenerateStudentsWorkers is GenerateStudents with an explicit worker
// count (workers <= 0 means GOMAXPROCS).
func GenerateStudentsWorkers(seed int64, n, workers int) *survey.Dataset {
	return GenerateStudentsInstrumented(seed, n, workers, Instrumentation{})
}

// GenerateStudentsInstrumented is GenerateStudentsWorkers with
// telemetry handles (see Instrumentation; the student cohort has a
// single sample-responses stage).
func GenerateStudentsInstrumented(seed int64, n, workers int, inst Instrumentation) *survey.Dataset {
	sp := inst.Span.StartChild("sample-responses")
	ds := &survey.Dataset{Instrument: quiz.Instrument().Title, Version: "1.0-student"}
	ds.Responses = parallel.Map(workers, n, func(i int) survey.Response {
		rng := parallel.RNG(seed, streamStudent, int64(i))
		r := survey.Response{Answers: map[string]survey.Answer{}}
		fillSuspicion(&r, rng, paperdata.Figure22Student)
		inst.Progress.Inc()
		return r
	})
	sp.AddItems(int64(n))
	sp.End()
	ds.Anonymize()
	return ds
}
