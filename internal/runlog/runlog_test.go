package runlog

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"fpstudy/internal/telemetry"
)

func TestAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	want := Record{
		Schema: Schema, Tool: "fpgen", Args: []string{"-n", "199"},
		Timestamp: "2026-08-08T00:00:00Z", Host: CurrentHost(),
		WallSeconds: 1.5, ExitStatus: 0,
		Stages:   []Stage{{Name: "generate", Seconds: 1.2, SelfSeconds: 1.2, Items: 199}},
		Counters: map[string]int64{"pipeline.respondents": 398},
		Golden:   map[string]string{"dataset": "deadbeef"},
	}
	for i := 0; i < 3; i++ {
		if err := Append(path, want); err != nil {
			t.Fatal(err)
		}
	}
	recs, skipped, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("skipped = %d, want 0", skipped)
	}
	if len(recs) != 3 {
		t.Fatalf("read %d records, want 3", len(recs))
	}
	got := recs[1]
	if got.Tool != want.Tool || got.WallSeconds != want.WallSeconds ||
		got.Counters["pipeline.respondents"] != 398 || got.Golden["dataset"] != "deadbeef" {
		t.Errorf("round trip mismatch: got %+v", got)
	}
	if got.Host != want.Host {
		t.Errorf("host mismatch: got %+v want %+v", got.Host, want.Host)
	}
}

// TestReadTolerance is the crashed-writer contract: blank lines,
// malformed lines, and a truncated final line are skipped and counted,
// never fatal.
func TestReadTolerance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	good := `{"schema":1,"tool":"fpgen","timestamp":"2026-08-08T00:00:00Z","host":{"goos":"linux","goarch":"amd64","num_cpu":8,"gomaxprocs":8,"go_version":"go1.24.0"},"wall_seconds":1,"exit_status":0}`
	content := good + "\n" +
		"\n" + // blank
		"not json at all\n" +
		good + "\n" +
		`{"schema":1,"tool":"fpbench","timestamp":"2026-0` // truncated mid-record, no newline
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, skipped, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Errorf("read %d records, want 2", len(recs))
	}
	if skipped != 2 {
		t.Errorf("skipped = %d, want 2 (malformed + truncated)", skipped)
	}
}

func TestReadEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, skipped, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || skipped != 0 {
		t.Errorf("empty file: recs=%d skipped=%d, want 0/0", len(recs), skipped)
	}
}

func TestFlattenSpansSelfTime(t *testing.T) {
	spans := []telemetry.SpanSnapshot{{
		Name: "run", Seconds: 10,
		Children: []telemetry.SpanSnapshot{
			{Name: "generate", Seconds: 6, Items: 100,
				Children: []telemetry.SpanSnapshot{{Name: "calibrate", Seconds: 2}}},
			{Name: "grade", Seconds: 3},
		},
	}}
	got := FlattenSpans(spans)
	want := []Stage{
		{Name: "run", Seconds: 10, SelfSeconds: 1},
		{Name: "run/generate", Seconds: 6, SelfSeconds: 4, Items: 100},
		{Name: "run/generate/calibrate", Seconds: 2, SelfSeconds: 2},
		{Name: "run/grade", Seconds: 3, SelfSeconds: 3},
	}
	if len(got) != len(want) {
		t.Fatalf("flattened %d stages, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("stage %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Children longer than the parent (clock skew) clamp self to zero.
	skew := FlattenSpans([]telemetry.SpanSnapshot{{
		Name: "p", Seconds: 1,
		Children: []telemetry.SpanSnapshot{{Name: "c", Seconds: 2}},
	}})
	if skew[0].SelfSeconds != 0 {
		t.Errorf("skewed parent self = %v, want 0", skew[0].SelfSeconds)
	}
}

// TestRunLifecycle drives the Start/SetGolden/Finish path a CLI uses
// and checks the appended record carries the telemetry state.
func TestRunLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	reg := telemetry.NewRegistry()
	trec := telemetry.NewRecorder(reg)
	reg.Counter("io.bytes_written").Add(42)
	reg.Counter("zero.counter") // stays 0: must be elided
	reg.Latency("latency.sample_block").Observe(3 * time.Millisecond)
	sp := trec.StartSpan("generate")
	sp.AddItems(7)
	sp.End()

	r := Start(path, "fpgen", []string{"-n", "7"}, reg, trec)
	r.SetGolden("dataset", "abc123")
	r.Finish(0)

	recs, skipped, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(recs) != 1 {
		t.Fatalf("recs=%d skipped=%d, want 1/0", len(recs), skipped)
	}
	rec := recs[0]
	if rec.Schema != Schema || rec.Tool != "fpgen" {
		t.Errorf("header: %+v", rec)
	}
	if rec.ExitStatus != 0 || rec.WallSeconds <= 0 {
		t.Errorf("wall/exit: %+v", rec)
	}
	if len(rec.Stages) != 1 || rec.Stages[0].Name != "generate" || rec.Stages[0].Items != 7 {
		t.Errorf("stages: %+v", rec.Stages)
	}
	if len(rec.Latency) != 1 || rec.Latency[0].Stage != "sample_block" || rec.Latency[0].Count != 1 {
		t.Errorf("latency: %+v", rec.Latency)
	}
	if rec.Counters["io.bytes_written"] != 42 {
		t.Errorf("counters: %+v", rec.Counters)
	}
	if _, ok := rec.Counters["zero.counter"]; ok {
		t.Errorf("zero counter not elided: %+v", rec.Counters)
	}
	if rec.Golden["dataset"] != "abc123" {
		t.Errorf("golden: %+v", rec.Golden)
	}
	if _, err := time.Parse(time.RFC3339, rec.Timestamp); err != nil {
		t.Errorf("timestamp %q: %v", rec.Timestamp, err)
	}
}

// TestNilRunNoOps pins the disabled-ledger contract: a "" path yields
// a nil Run whose whole method set is safe.
func TestNilRunNoOps(t *testing.T) {
	r := Start("", "fpgen", nil, nil, nil)
	if r != nil {
		t.Fatalf("Start with empty path = %v, want nil", r)
	}
	r.SetGolden("x", "y") // must not panic
	r.Finish(1)           // must not panic
}

func TestHostKey(t *testing.T) {
	h := Host{GOOS: "linux", GOARCH: "amd64", NumCPU: 4, GOMAXPROCS: 4, GoVersion: "go1.24.0"}
	if got := h.Key(); got != "linux/amd64 cpu=4 procs=4 go1.24.0" {
		t.Errorf("Key() = %q", got)
	}
	h.SerialHost = true
	if got := h.Key(); got != "linux/amd64 cpu=4 procs=4 go1.24.0 serial" {
		t.Errorf("serial Key() = %q", got)
	}
}
