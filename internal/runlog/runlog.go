// Package runlog is the structured run ledger of the pipeline CLIs:
// every invocation of fpgen, fpreport, fpsurvey, and fpbench appends
// one JSONL record — command and arguments, host fingerprint, VCS
// revision, wall and per-stage durations, latency quantiles, key
// counters, golden hashes when computed, and exit status — to a
// configurable ledger file. The ledger is what turns the perf gates
// from "exit 1" into evidence: `fpstat trend` reads it (plus
// BENCH_history.jsonl) to separate genuine drift from host noise, and
// `fpstat diff` / the fpbench forensics report attribute a regression
// to the stage that lost the time.
//
// # Determinism contract
//
// The ledger observes runs; it never participates in them. A record
// is assembled from telemetry snapshots after the pipeline output is
// complete and appended on exit, so ledger on/off cannot move a
// single output byte (internal/core.TestGoldenRunlogInvariance pins
// this, mirroring the telemetry-invariance gates).
//
// # File format
//
// One JSON object per line, append-only (O_APPEND, so concurrent
// writers interleave whole lines — the same contract as
// BENCH_history.jsonl). Readers must tolerate a truncated final line:
// a crashed writer may leave one, and a ledger is too valuable to
// abandon over its last record. Read skips unparsable lines and
// reports how many it skipped.
package runlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"fpstudy/internal/telemetry"
)

// Schema is the ledger record version this package writes. Readers
// accept any version (unknown fields are ignored; missing fields are
// zero), so mixed-version ledgers parse.
//
// History:
//
//	1 — initial: tool/args/timestamp/host/vcs/wall_seconds/stages/
//	    latency/counters/golden/exit_status.
const Schema = 1

// Host is the machine fingerprint stamped on every record, matching
// the fields of the run manifest and the benchcmp report host (same
// JSON names), so ledger records, manifests, and bench reports agree
// on provenance.
type Host struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	// SerialHost tags records taken with GOMAXPROCS=1, where every
	// worker count degenerates to a serial run (see benchcmp.Host).
	SerialHost bool `json:"serial_host,omitempty"`
}

// CurrentHost fingerprints the running machine.
func CurrentHost() Host {
	return Host{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		SerialHost: runtime.GOMAXPROCS(0) == 1,
	}
}

// Key renders the fingerprint compactly for grouping and display
// ("linux/amd64 cpu=8 procs=8 go1.24.0", with " serial" appended on
// serial hosts). Two hosts with equal keys are comparable for
// benchmarking purposes.
func (h Host) Key() string {
	k := fmt.Sprintf("%s/%s cpu=%d procs=%d %s", h.GOOS, h.GOARCH, h.NumCPU, h.GOMAXPROCS, h.GoVersion)
	if h.SerialHost {
		k += " serial"
	}
	return k
}

// Stage is one flattened span-tree node: Name is the slash-joined
// path from the root ("generate-main/draw-profiles"), Seconds its
// wall duration, SelfSeconds the duration not covered by children
// (what attribution ranks — see benchcmp.AttributeSpans), Items the
// processed-item count.
type Stage struct {
	Name        string  `json:"name"`
	Seconds     float64 `json:"seconds"`
	SelfSeconds float64 `json:"self_seconds"`
	Items       int64   `json:"items,omitempty"`
}

// StageLatency is the quantile summary of one latency histogram, the
// compact ledger twin of benchcmp.StageLatency (same JSON names).
type StageLatency struct {
	Stage  string  `json:"stage"`
	Count  int64   `json:"count"`
	P50NS  float64 `json:"p50_ns"`
	P90NS  float64 `json:"p90_ns"`
	P99NS  float64 `json:"p99_ns"`
	P999NS float64 `json:"p999_ns"`
}

// Record is one ledger line: everything needed to audit what a CLI
// invocation did, where it ran, and how its time was spent.
type Record struct {
	Schema    int      `json:"schema"`
	Tool      string   `json:"tool"`
	Args      []string `json:"args,omitempty"`
	Timestamp string   `json:"timestamp"` // RFC3339, invocation start
	Host      Host     `json:"host"`
	// VCS identifies the source revision the binary was built from
	// (runtime/debug.ReadBuildInfo); nil when the binary carries no VCS
	// stamp (go run, test binaries).
	VCS         *VCS    `json:"vcs,omitempty"`
	WallSeconds float64 `json:"wall_seconds"`
	ExitStatus  int     `json:"exit_status"`
	// Stages is the flattened span tree of the run (depth-first,
	// slash-joined paths).
	Stages []Stage `json:"stages,omitempty"`
	// Latency carries every latency-histogram quantile table the run
	// recorded, stage names without their "latency." prefix.
	Latency []StageLatency `json:"latency,omitempty"`
	// Counters is the final value of every nonzero registry counter.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Golden holds content hashes computed during the run (e.g. the
	// sha256 of a dataset fpgen emitted), keyed by artifact name, so a
	// ledger line can later prove two runs produced identical bytes.
	Golden map[string]string `json:"golden,omitempty"`
	// Topology is set by distributed runs (fpgen/fpreport -distribute):
	// the process fan-out that produced the output. Readers use it to
	// avoid misattributing multi-process wall times to host drift —
	// output bytes are topology-invariant, wall times are not.
	Topology *Topology `json:"topology,omitempty"`
}

// Topology describes a distributed run's process fan-out.
type Topology struct {
	Procs          int `json:"procs"`
	WorkersPerProc int `json:"workers_per_proc"`
	// WorkerWallSeconds is each worker process's own accumulated leg
	// wall time (index-aligned with worker processes).
	WorkerWallSeconds []float64 `json:"worker_wall_seconds,omitempty"`
}

// FlattenSpans converts a span forest into depth-first Stage rows
// with slash-joined paths. SelfSeconds subtracts the children's
// seconds (clamped at zero against clock skew), so summing SelfSeconds
// over a subtree approximates its root without double counting.
func FlattenSpans(spans []telemetry.SpanSnapshot) []Stage {
	var out []Stage
	var walk func(prefix string, s telemetry.SpanSnapshot)
	walk = func(prefix string, s telemetry.SpanSnapshot) {
		name := s.Name
		if prefix != "" {
			name = prefix + "/" + s.Name
		}
		self := s.Seconds
		for _, c := range s.Children {
			self -= c.Seconds
		}
		if self < 0 {
			self = 0
		}
		out = append(out, Stage{Name: name, Seconds: s.Seconds, SelfSeconds: self, Items: s.Items})
		for _, c := range s.Children {
			walk(name, c)
		}
	}
	for _, s := range spans {
		walk("", s)
	}
	return out
}

// latencyRows converts a snapshot's latency map into sorted ledger
// rows, dropping empty histograms and the "latency." prefix.
func latencyRows(lats map[string]telemetry.LatencySnapshot) []StageLatency {
	names := make([]string, 0, len(lats))
	for name := range lats {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []StageLatency
	for _, name := range names {
		ls := lats[name]
		if ls.Count == 0 {
			continue
		}
		out = append(out, StageLatency{
			Stage: strings.TrimPrefix(name, "latency."), Count: ls.Count,
			P50NS: ls.P50NS, P90NS: ls.P90NS, P99NS: ls.P99NS, P999NS: ls.P999NS,
		})
	}
	return out
}

// Run accumulates one CLI invocation's ledger record. Start it first
// thing in main, call SetGolden as artifacts are hashed, and Finish
// exactly once on every exit path (the CLIs route os.Exit through a
// helper that does). The nil *Run accepts every method as a no-op, so
// an invocation with no ledger configured costs nothing.
type Run struct {
	path  string
	rec   Record
	start time.Time
	reg   *telemetry.Registry
	trec  *telemetry.Recorder
}

// Start opens a ledger run for the tool. path is the ledger file
// ("" disables: returns nil, and every later call no-ops). args are
// the invocation's command-line arguments. reg/trec supply the
// counters, latency tables, and span forest at Finish time; either
// may be nil.
func Start(path, tool string, args []string, reg *telemetry.Registry, trec *telemetry.Recorder) *Run {
	if path == "" {
		return nil
	}
	return &Run{
		path: path,
		rec: Record{
			Schema:    Schema,
			Tool:      tool,
			Args:      args,
			Timestamp: time.Now().UTC().Format(time.RFC3339),
			Host:      CurrentHost(),
			VCS:       CurrentVCS(),
		},
		start: time.Now(),
		reg:   reg,
		trec:  trec,
	}
}

// SetGolden records a content hash computed during the run (no-op on
// nil).
func (r *Run) SetGolden(name, hash string) {
	if r == nil {
		return
	}
	if r.rec.Golden == nil {
		r.rec.Golden = map[string]string{}
	}
	r.rec.Golden[name] = hash
}

// SetTopology records the distributed fan-out of the run (no-op on
// nil).
func (r *Run) SetTopology(t *Topology) {
	if r == nil {
		return
	}
	r.rec.Topology = t
}

// Finish assembles the record (wall time, exit status, stage tree,
// latency quantiles, nonzero counters) and appends it to the ledger.
// Errors go to stderr rather than the caller: a full disk must not
// turn a successful pipeline run into a failure. No-op on nil; safe
// to call at most once per Run.
func (r *Run) Finish(exitStatus int) {
	if r == nil {
		return
	}
	r.rec.WallSeconds = time.Since(r.start).Seconds()
	r.rec.ExitStatus = exitStatus
	r.rec.Stages = FlattenSpans(r.trec.Spans())
	snap := r.reg.Snapshot()
	r.rec.Latency = latencyRows(snap.Latencies)
	if len(snap.Counters) > 0 {
		counters := make(map[string]int64, len(snap.Counters))
		for name, v := range snap.Counters {
			if v != 0 {
				counters[name] = v
			}
		}
		if len(counters) > 0 {
			r.rec.Counters = counters
		}
	}
	if err := Append(r.path, r.rec); err != nil {
		fmt.Fprintf(os.Stderr, "runlog: %v\n", err)
	}
}

// Append writes one record as a JSONL line (O_APPEND: concurrent
// appenders interleave whole lines; an existing ledger is never
// rewritten).
func Append(path string, rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(append(line, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// Read parses a ledger file, oldest first, tolerantly: blank lines,
// malformed lines, and a truncated final line (no trailing newline,
// e.g. from a crashed writer) are skipped and counted, never fatal —
// a ledger accretes across many runs and one bad line must not make
// the rest unreadable. Only open/scan I/O errors are returned.
func Read(path string) (recs []Record, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			skipped++
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return recs, skipped, nil
}
