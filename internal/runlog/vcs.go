package runlog

import (
	"runtime/debug"
	"sync"
)

// VCS identifies the source revision a binary was built from, read
// from the build-info stamp the Go toolchain embeds when building
// inside a version-controlled checkout.
type VCS struct {
	// Revision is the full VCS commit hash.
	Revision string `json:"revision"`
	// Time is the commit timestamp (RFC3339), when stamped.
	Time string `json:"time,omitempty"`
	// Modified marks builds from a dirty working tree: the revision
	// alone does not identify the code that actually ran.
	Modified bool `json:"modified,omitempty"`
}

var (
	vcsOnce sync.Once
	vcsInfo *VCS
)

// CurrentVCS returns the build's VCS stamp, or nil when the binary
// carries none (`go run` of a single file, test binaries, builds
// outside a checkout). Read once per process — build info is
// immutable.
func CurrentVCS() *VCS {
	vcsOnce.Do(func() {
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		var v VCS
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				v.Revision = s.Value
			case "vcs.time":
				v.Time = s.Value
			case "vcs.modified":
				v.Modified = s.Value == "true"
			}
		}
		if v.Revision != "" {
			vcsInfo = &v
		}
	})
	return vcsInfo
}
