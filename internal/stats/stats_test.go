package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceMedian(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean %v", Mean(xs))
	}
	if !close(Variance(xs), 32.0/7, 1e-12) {
		t.Fatalf("variance %v", Variance(xs))
	}
	if Median(xs) != 4.5 {
		t.Fatalf("median %v", Median(xs))
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 || Median(nil) != 0 {
		t.Fatal("empty-input conventions")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 1, 2.4, 2.6, 15, -3, 99}, 15)
	if h.Total != 8 {
		t.Fatalf("total %d", h.Total)
	}
	if h.Counts[0] != 2 { // 0 and -3 clamped
		t.Fatalf("bin0 %d", h.Counts[0])
	}
	if h.Counts[1] != 2 || h.Counts[2] != 1 || h.Counts[3] != 1 {
		t.Fatalf("bins %v", h.Counts)
	}
	if h.Counts[15] != 2 { // 15 and 99 clamped
		t.Fatalf("bin15 %d", h.Counts[15])
	}
	if h.Mode() != 0 && h.Mode() != 1 && h.Mode() != 15 {
		t.Fatalf("mode %d", h.Mode())
	}
	r := h.Render(20)
	if !strings.Contains(r, "#") || !strings.Contains(r, "15 |") {
		t.Fatalf("render:\n%s", r)
	}
}

func TestGroupMeans(t *testing.T) {
	gs := GroupMeans(
		[]string{"a", "b", "a", "b", "c"},
		[]float64{1, 10, 3, 20, 7},
	)
	if len(gs) != 3 {
		t.Fatalf("groups %v", gs)
	}
	if gs[0].Group != "a" || gs[0].Mean != 2 || gs[0].N != 2 {
		t.Fatalf("group a: %+v", gs[0])
	}
	if gs[1].Group != "b" || gs[1].Mean != 15 {
		t.Fatalf("group b: %+v", gs[1])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	GroupMeans([]string{"a"}, []float64{1, 2})
}

func TestLikertDist(t *testing.T) {
	d := NewLikertDist([]int{1, 1, 3, 5, 5, 5, 99, 0}, 5)
	if d.N != 6 {
		t.Fatalf("n %d", d.N)
	}
	if !close(d.Percent[0], 100.0/3, 1e-9) || !close(d.Percent[4], 50, 1e-9) {
		t.Fatalf("percent %v", d.Percent)
	}
	want := (1.0*2 + 3 + 5*3) / 6
	if !close(d.MeanLevel(), want, 1e-9) {
		t.Fatalf("mean level %v want %v", d.MeanLevel(), want)
	}
}

func TestChiSquare(t *testing.T) {
	// Perfect fit: statistic 0.
	stat, df := ChiSquareGOF([]int{25, 25, 25, 25}, []float64{1, 1, 1, 1})
	if stat != 0 || df != 3 {
		t.Fatalf("stat %v df %d", stat, df)
	}
	// Known example: observed 40/60 vs fair coin => chi2 = 4.
	stat, df = ChiSquareGOF([]int{40, 60}, []float64{0.5, 0.5})
	if !close(stat, 4, 1e-9) || df != 1 {
		t.Fatalf("stat %v df %d", stat, df)
	}
	if stat < ChiSquareCritical05(1) {
		t.Fatal("chi2=4 should exceed 3.841")
	}
	if !close(ChiSquareCritical05(5), 11.07, 0.01) {
		t.Fatal("critical table")
	}
	if ChiSquareCritical05(40) < 50 || ChiSquareCritical05(40) > 62 {
		t.Fatalf("WH approx df=40: %v", ChiSquareCritical05(40))
	}
}

func TestBinomialTest(t *testing.T) {
	// 199 participants averaging 8.5/15 on T/F: test a single
	// participant count: 113/199 questions... use aggregate: k
	// correct of n at p=0.5.
	z := BinomialTestAboveChance(113, 199, 0.5)
	if z < 1.5 || z > 2.5 {
		t.Fatalf("z = %v", z)
	}
	if BinomialTestAboveChance(50, 100, 0.5) != 0 {
		t.Fatal("exactly chance should be z=0")
	}
	if BinomialTestAboveChance(0, 0, 0.5) != 0 {
		t.Fatal("n=0")
	}
}

func TestBootstrapCI(t *testing.T) {
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i % 10)
	}
	lo, hi := BootstrapMeanCI(xs, 0.95, 2000, 1)
	m := Mean(xs)
	if !(lo < m && m < hi) {
		t.Fatalf("CI [%v, %v] should contain %v", lo, hi, m)
	}
	if hi-lo > 1.5 {
		t.Fatalf("CI too wide: [%v, %v]", lo, hi)
	}
	// Deterministic.
	lo2, hi2 := BootstrapMeanCI(xs, 0.95, 2000, 1)
	if lo != lo2 || hi != hi2 {
		t.Fatal("bootstrap not deterministic")
	}
}

func TestCramersV(t *testing.T) {
	// Perfect association.
	v := CramersV([][]int{{50, 0}, {0, 50}})
	if !close(v, 1, 1e-9) {
		t.Fatalf("perfect V = %v", v)
	}
	// Independence.
	v = CramersV([][]int{{25, 25}, {25, 25}})
	if !close(v, 0, 1e-9) {
		t.Fatalf("independent V = %v", v)
	}
	if CramersV(nil) != 0 || CramersV([][]int{{0, 0}}) != 0 {
		t.Fatal("degenerate tables")
	}
}

func TestPointBiserial(t *testing.T) {
	// Group 1 clearly higher.
	b := []int{1, 1, 1, 0, 0, 0}
	v := []float64{10, 11, 12, 1, 2, 3}
	r := PointBiserial(b, v)
	if r < 0.9 {
		t.Fatalf("r = %v", r)
	}
	// No difference.
	r = PointBiserial([]int{1, 0, 1, 0}, []float64{5, 5, 5, 5})
	if r != 0 {
		t.Fatalf("flat r = %v", r)
	}
}

func TestSpearmanAndPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if !close(Pearson(xs, ys), 1, 1e-12) {
		t.Fatal("perfect pearson")
	}
	if !close(SpearmanRank(xs, ys), 1, 1e-12) {
		t.Fatal("perfect spearman")
	}
	// Monotone but nonlinear: spearman 1, pearson < 1.
	ys2 := []float64{1, 8, 27, 64, 125}
	if !close(SpearmanRank(xs, ys2), 1, 1e-12) {
		t.Fatal("monotone spearman")
	}
	if Pearson(xs, ys2) >= 1 {
		t.Fatal("nonlinear pearson")
	}
	// Reversed: -1.
	ys3 := []float64{5, 4, 3, 2, 1}
	if !close(SpearmanRank(xs, ys3), -1, 1e-12) {
		t.Fatal("reversed spearman")
	}
	// Ties get average ranks.
	r := ranks([]float64{1, 2, 2, 3})
	if r[1] != 2.5 || r[2] != 2.5 {
		t.Fatalf("tie ranks %v", r)
	}
}

func TestMeanPropertyShift(t *testing.T) {
	// Property: Mean(xs + c) == Mean(xs) + c.
	prop := func(raw []uint8, shift uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		c := float64(shift)
		for i, v := range raw {
			xs[i] = float64(v)
			ys[i] = float64(v) + c
		}
		return close(Mean(ys), Mean(xs)+c, 1e-9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVariancePropertyShiftInvariant(t *testing.T) {
	prop := func(raw []uint8, shift uint8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			ys[i] = float64(v) + float64(shift)
		}
		return close(Variance(ys), Variance(xs), 1e-6)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
