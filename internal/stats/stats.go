// Package stats provides the descriptive and inferential statistics the
// survey analysis needs: summaries, histograms, grouped means, Likert
// distributions, chi-square tests, binomial tests against chance, and
// bootstrap confidence intervals. Stdlib only; deterministic where
// seeded.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Summary bundles the standard descriptive statistics.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Mean = Mean(xs)
	s.StdDev = StdDev(xs)
	s.Median = Median(xs)
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	return s
}

// Histogram counts integer-valued observations into bins [0..max].
type Histogram struct {
	Counts []int
	Total  int
}

// NewHistogram bins xs (rounded to nearest int, clamped to [0, max]).
func NewHistogram(xs []float64, max int) Histogram {
	h := Histogram{Counts: make([]int, max+1)}
	for _, x := range xs {
		i := int(math.Round(x))
		if i < 0 {
			i = 0
		}
		if i > max {
			i = max
		}
		h.Counts[i]++
		h.Total++
	}
	return h
}

// Mode returns the bin with the largest count.
func (h Histogram) Mode() int {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return best
}

// Render draws an ASCII bar chart of the histogram.
func (h Histogram) Render(width int) string {
	maxC := 1
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	out := ""
	for i, c := range h.Counts {
		bar := ""
		n := c * width / maxC
		for j := 0; j < n; j++ {
			bar += "#"
		}
		out += fmt.Sprintf("%3d | %-*s %d\n", i, width, bar, c)
	}
	return out
}

// GroupedMeans computes the mean of values per group label, returning
// groups in first-seen order.
type GroupMean struct {
	Group string
	N     int
	Mean  float64
	SD    float64
}

// GroupMeans aggregates values by their group label.
func GroupMeans(groups []string, values []float64) []GroupMean {
	if len(groups) != len(values) {
		panic("stats: groups and values length mismatch")
	}
	order := []string{}
	byGroup := map[string][]float64{}
	for i, g := range groups {
		if _, ok := byGroup[g]; !ok {
			order = append(order, g)
		}
		byGroup[g] = append(byGroup[g], values[i])
	}
	out := make([]GroupMean, 0, len(order))
	for _, g := range order {
		vs := byGroup[g]
		out = append(out, GroupMean{Group: g, N: len(vs), Mean: Mean(vs), SD: StdDev(vs)})
	}
	return out
}

// LikertDist is the percentage distribution over levels 1..Scale.
type LikertDist struct {
	Scale   int
	Percent []float64 // index 0 = level 1
	N       int
}

// NewLikertDist tabulates levels (1-based; out-of-range ignored).
func NewLikertDist(levels []int, scale int) LikertDist {
	d := LikertDist{Scale: scale, Percent: make([]float64, scale)}
	for _, l := range levels {
		if l >= 1 && l <= scale {
			d.Percent[l-1]++
			d.N++
		}
	}
	if d.N > 0 {
		for i := range d.Percent {
			d.Percent[i] = 100 * d.Percent[i] / float64(d.N)
		}
	}
	return d
}

// LikertDistFromCounts tabulates a distribution from per-level counts
// (counts[i] = level i+1). It is bit-identical to NewLikertDist over
// the expanded level sequence: integer counts are exact in float64, so
// starting from the count instead of unit increments changes nothing.
func LikertDistFromCounts(counts []int64, scale int) LikertDist {
	d := LikertDist{Scale: scale, Percent: make([]float64, scale)}
	for i, c := range counts {
		if i >= scale {
			break
		}
		d.Percent[i] = float64(c)
		d.N += int(c)
	}
	if d.N > 0 {
		for i := range d.Percent {
			d.Percent[i] = 100 * d.Percent[i] / float64(d.N)
		}
	}
	return d
}

// MeanLevel returns the mean Likert level.
func (d LikertDist) MeanLevel() float64 {
	if d.N == 0 {
		return 0
	}
	s := 0.0
	for i, p := range d.Percent {
		s += float64(i+1) * p
	}
	return s / 100
}

// ChiSquareGOF computes the chi-square goodness-of-fit statistic of
// observed counts against expected proportions (which are normalized).
// It returns the statistic and degrees of freedom. Bins with expected
// count zero are skipped.
func ChiSquareGOF(observed []int, expectedProp []float64) (stat float64, df int) {
	if len(observed) != len(expectedProp) {
		panic("stats: chi-square length mismatch")
	}
	total := 0
	for _, o := range observed {
		total += o
	}
	psum := 0.0
	for _, p := range expectedProp {
		psum += p
	}
	for i, o := range observed {
		if expectedProp[i] <= 0 || psum == 0 {
			continue
		}
		e := float64(total) * expectedProp[i] / psum
		d := float64(o) - e
		stat += d * d / e
		df++
	}
	if df > 0 {
		df--
	}
	return stat, df
}

// ChiSquareCritical05 returns the 5% critical value for small degrees
// of freedom (table lookup; df > 30 uses the Wilson-Hilferty
// approximation).
func ChiSquareCritical05(df int) float64 {
	table := []float64{0, 3.841, 5.991, 7.815, 9.488, 11.070, 12.592,
		14.067, 15.507, 16.919, 18.307, 19.675, 21.026, 22.362, 23.685,
		24.996, 26.296, 27.587, 28.869, 30.144, 31.410}
	if df <= 0 {
		return math.Inf(1)
	}
	if df < len(table) {
		return table[df]
	}
	// Wilson-Hilferty: chi2_p(df) ~ df * (1 - 2/(9df) + z_p sqrt(2/(9df)))^3.
	z := 1.6449 // z_{0.95}
	k := float64(df)
	return k * math.Pow(1-2/(9*k)+z*math.Sqrt(2/(9*k)), 3)
}

// BinomialTestAboveChance tests whether k successes in n trials exceed
// probability p by more than luck, using the normal approximation.
// Returns the z statistic; z > 1.645 is significant at 5% (one-sided).
func BinomialTestAboveChance(k, n int, p float64) float64 {
	if n == 0 {
		return 0
	}
	mean := float64(n) * p
	sd := math.Sqrt(float64(n) * p * (1 - p))
	if sd == 0 {
		return 0
	}
	return (float64(k) - mean) / sd
}

// BootstrapMeanCI returns a percentile bootstrap confidence interval
// for the mean at the given level (e.g. 0.95), using iters resamples
// with a deterministic seed.
func BootstrapMeanCI(xs []float64, level float64, iters int, seed int64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, iters)
	for i := 0; i < iters; i++ {
		s := 0.0
		for j := 0; j < len(xs); j++ {
			s += xs[rng.Intn(len(xs))]
		}
		means[i] = s / float64(len(xs))
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	loIdx := int(alpha * float64(iters))
	hiIdx := int((1 - alpha) * float64(iters))
	if hiIdx >= iters {
		hiIdx = iters - 1
	}
	return means[loIdx], means[hiIdx]
}

// CramersV measures association between two categorical variables given
// a contingency table (rows x cols of counts).
func CramersV(table [][]int) float64 {
	rows := len(table)
	if rows == 0 {
		return 0
	}
	cols := len(table[0])
	rowSum := make([]float64, rows)
	colSum := make([]float64, cols)
	total := 0.0
	for i := range table {
		for j := range table[i] {
			rowSum[i] += float64(table[i][j])
			colSum[j] += float64(table[i][j])
			total += float64(table[i][j])
		}
	}
	if total == 0 {
		return 0
	}
	chi2 := 0.0
	for i := range table {
		for j := range table[i] {
			e := rowSum[i] * colSum[j] / total
			if e > 0 {
				d := float64(table[i][j]) - e
				chi2 += d * d / e
			}
		}
	}
	k := math.Min(float64(rows-1), float64(cols-1))
	if k <= 0 {
		return 0
	}
	return math.Sqrt(chi2 / (total * k))
}

// PointBiserial computes the correlation between a binary variable
// (encoded 0/1) and a continuous one.
func PointBiserial(binary []int, values []float64) float64 {
	if len(binary) != len(values) || len(values) < 2 {
		return 0
	}
	var g1, g0 []float64
	for i, b := range binary {
		if b == 1 {
			g1 = append(g1, values[i])
		} else {
			g0 = append(g0, values[i])
		}
	}
	n := float64(len(values))
	n1, n0 := float64(len(g1)), float64(len(g0))
	if n1 == 0 || n0 == 0 {
		return 0
	}
	sd := math.Sqrt(Variance(values) * (n - 1) / n) // population sd
	if sd == 0 {
		return 0
	}
	return (Mean(g1) - Mean(g0)) / sd * math.Sqrt(n1*n0/(n*n))
}

// SpearmanRank computes Spearman's rank correlation between two
// equal-length slices (average ranks for ties).
func SpearmanRank(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	rx := ranks(xs)
	ry := ranks(ys)
	return pearson(rx, ry)
}

func ranks(xs []float64) []float64 {
	type iv struct {
		i int
		v float64
	}
	s := make([]iv, len(xs))
	for i, v := range xs {
		s[i] = iv{i, v}
	}
	sort.Slice(s, func(a, b int) bool { return s[a].v < s[b].v })
	r := make([]float64, len(xs))
	for i := 0; i < len(s); {
		j := i
		for j < len(s) && s[j].v == s[i].v {
			j++
		}
		avg := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			r[s[k].i] = avg
		}
		i = j
	}
	return r
}

func pearson(xs, ys []float64) float64 {
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Pearson computes the Pearson correlation coefficient.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	return pearson(xs, ys)
}
