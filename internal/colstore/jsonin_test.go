package colstore_test

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"

	"fpstudy/internal/colstore"
	"fpstudy/internal/quiz"
	"fpstudy/internal/survey"
)

// TestDecodeJSONRoundTrip streams seeded-random row JSON into columns
// and requires WriteJSON to reproduce the input byte-for-byte — the
// streaming ingest must be lossless against the whole-document path.
func TestDecodeJSONRoundTrip(t *testing.T) {
	schema := quiz.Columns()
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		ds := randomDataset(rng, rng.Intn(30), false)
		want, err := survey.EncodeDataset(ds)
		if err != nil {
			t.Fatalf("trial %d: EncodeDataset: %v", trial, err)
		}
		cols, err := colstore.DecodeJSON(schema, bytes.NewReader(want))
		if err != nil {
			t.Fatalf("trial %d: DecodeJSON: %v", trial, err)
		}
		if cols.Schema != schema {
			t.Fatalf("trial %d: decoded dataset does not reuse the caller's schema", trial)
		}
		var got bytes.Buffer
		if err := cols.WriteJSON(&got); err != nil {
			t.Fatalf("trial %d: WriteJSON: %v", trial, err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("trial %d: JSON round trip diverged", trial)
		}
	}
}

// TestDecodeJSONToBinaryChain pins the full acceptance chain:
// JSON → columns → binary → columns → WriteJSON equals the source JSON.
func TestDecodeJSONToBinaryChain(t *testing.T) {
	schema := quiz.Columns()
	rng := rand.New(rand.NewSource(37))
	ds := randomDataset(rng, 60, false)
	src, err := survey.EncodeDataset(ds)
	if err != nil {
		t.Fatalf("EncodeDataset: %v", err)
	}
	cols, err := colstore.DecodeJSON(schema, bytes.NewReader(src))
	if err != nil {
		t.Fatalf("DecodeJSON: %v", err)
	}
	var bin bytes.Buffer
	if err := cols.EncodeBinary(&bin, colstore.IOOptions{}); err != nil {
		t.Fatalf("EncodeBinary: %v", err)
	}
	back, err := colstore.DecodeBinary(schema, bytes.NewReader(bin.Bytes()), colstore.IOOptions{})
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	var got bytes.Buffer
	if err := back.WriteJSON(&got); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.Equal(got.Bytes(), src) {
		t.Fatalf("JSON→binary→JSON chain diverged from the source document")
	}
}

// TestDecodeJSONNilVsEmpty pins the null-vs-[] responses distinction
// through the streaming path.
func TestDecodeJSONNilVsEmpty(t *testing.T) {
	schema := quiz.Columns()
	ins := quiz.Instrument()
	for _, responses := range [][]survey.Response{nil, {}} {
		ds := &survey.Dataset{Instrument: ins.Title, Version: "1.0", Responses: responses}
		want, err := survey.EncodeDataset(ds)
		if err != nil {
			t.Fatalf("EncodeDataset: %v", err)
		}
		cols, err := colstore.DecodeJSON(schema, bytes.NewReader(want))
		if err != nil {
			t.Fatalf("nil=%v: DecodeJSON: %v", responses == nil, err)
		}
		var got bytes.Buffer
		if err := cols.WriteJSON(&got); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("nil=%v: round trip diverged:\n got %q\nwant %q", responses == nil, got.Bytes(), want)
		}
	}
}

// TestDecodeJSONErrors checks the failure modes name the offending
// location: wrong instrument, unknown question, out-of-range level,
// wrong answer shape, truncation.
func TestDecodeJSONErrors(t *testing.T) {
	schema := quiz.Columns()
	likertID := ""
	tfID := ""
	for i := 0; i < len(quiz.Instrument().Questions()); i++ {
		c := schema.Column(i)
		if c.Kind == survey.Likert && likertID == "" {
			likertID = c.ID
		}
		if c.Kind == survey.TrueFalse && tfID == "" {
			tfID = c.ID
		}
	}
	mk := func(answers string) string {
		return `{"instrument":"` + quiz.Instrument().Title + `","version":"1.0","responses":[` +
			`{"token":"r0001","answers":{}},{"token":"r0002","answers":{` + answers + `}}]}`
	}
	cases := []struct {
		name, in, want string
	}{
		{"wrong instrument", `{"instrument":"nope","responses":[]}`, `dataset is for "nope"`},
		{"unknown question", mk(`"zz.bogus":{"choice":"x"}`), `response 1 answers unknown question "zz.bogus"`},
		{"bad level", mk(`"` + likertID + `":{"level":99}`), "response 1"},
		{"fractional level", mk(`"` + likertID + `":{"level":1.5}`), "want an integer"},
		{"wrong shape", mk(`"` + tfID + `":{"level":2}`), "response 1"},
		{"truncated", `{"instrument":"` + quiz.Instrument().Title + `","responses":[{"token":"r00`, "truncated"},
		{"not an object", `[1,2,3]`, "dataset"},
	}
	for _, tc := range cases {
		_, err := colstore.DecodeJSON(schema, strings.NewReader(tc.in))
		if err == nil {
			t.Fatalf("%s: decoded without error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want it to mention %q", tc.name, err, tc.want)
		}
	}
}

// TestDecodeJSONBoundedBuffering is a behavioural proxy for the
// streaming contract: the decoder reads from a reader that forbids
// whole-file buffering by yielding tiny chunks, and still round-trips.
func TestDecodeJSONBoundedBuffering(t *testing.T) {
	schema := quiz.Columns()
	rng := rand.New(rand.NewSource(41))
	ds := randomDataset(rng, 10, false)
	want, err := survey.EncodeDataset(ds)
	if err != nil {
		t.Fatalf("EncodeDataset: %v", err)
	}
	cols, err := colstore.DecodeJSON(schema, &drip{data: want})
	if err != nil {
		t.Fatalf("DecodeJSON over dripping reader: %v", err)
	}
	var got bytes.Buffer
	if err := cols.WriteJSON(&got); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("dripped decode diverged")
	}
}

// drip yields at most 7 bytes per Read.
type drip struct {
	data []byte
	off  int
}

func (d *drip) Read(p []byte) (int, error) {
	if d.off >= len(d.data) {
		return 0, io.EOF
	}
	n := copy(p[:min(len(p), 7)], d.data[d.off:])
	d.off += n
	return n, nil
}
