package colstore

import "fmt"

// Splice copies every respondent of src into rows [at, at+src.Len())
// of d. It is the distributed pipeline's merge step: each worker
// returns its block-aligned range as a self-contained dataset, and the
// coordinator splices them back at their global offsets. Because a
// splice is a pure element-wise copy of code columns, the assembled
// dataset is bit-identical to one generated in a single process —
// there is no re-encoding, re-interning, or float arithmetic on the
// merge path.
//
// Splice is deliberately restricted to the shapes generation produces:
// both datasets must share the same schema and version, use automatic
// anonymous tokens, and carry no string arena or extras (generated
// cohorts never intern strings). Distinct target ranges may be spliced
// concurrently — each call touches only rows [at, at+src.Len()).
func (d *Dataset) Splice(src *Dataset, at int) error {
	if src.Schema != d.Schema {
		return fmt.Errorf("colstore: splice: schema mismatch")
	}
	if src.Version != d.Version {
		return fmt.Errorf("colstore: splice: version %q into %q", src.Version, d.Version)
	}
	if at < 0 || at+src.n > d.n {
		return fmt.Errorf("colstore: splice: range [%d,%d) outside dataset of %d respondents", at, at+src.n, d.n)
	}
	if d.tokens != nil || src.tokens != nil {
		return fmt.Errorf("colstore: splice: only auto-token datasets can be spliced")
	}
	if len(src.strtab.strs) != 0 {
		return fmt.Errorf("colstore: splice: source has %d interned strings", len(src.strtab.strs))
	}
	for ci := range src.extras {
		if len(src.extras[ci]) != 0 {
			return fmt.Errorf("colstore: splice: source column %d has extras", ci)
		}
	}
	if src.nilResponses != d.nilResponses {
		return fmt.Errorf("colstore: splice: nil-responses flag mismatch")
	}
	for ci := range d.Schema.cols {
		switch {
		case d.u8[ci] != nil:
			copy(d.u8[ci][at:at+src.n], src.u8[ci])
		case d.code[ci] != nil:
			copy(d.code[ci][at:at+src.n], src.code[ci])
		case d.bits[ci] != nil:
			copy(d.bits[ci][at:at+src.n], src.bits[ci])
		}
	}
	return nil
}
