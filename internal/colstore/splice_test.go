package colstore

import (
	"strings"
	"testing"

	"fpstudy/internal/survey"
)

func spliceSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(&survey.Instrument{
		Title:   "splice-test",
		Version: "v",
		Sections: []survey.Section{{
			ID: "s",
			Questions: []survey.Question{
				{ID: "tf", Kind: survey.TrueFalse},
				{ID: "sc", Kind: survey.SingleChoice, Options: []string{"a", "b"}},
				{ID: "mc", Kind: survey.MultiChoice, Options: []string{"x", "y"}},
				{ID: "lk", Kind: survey.Likert, Scale: 5},
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSpliceCopiesEveryColumnKind(t *testing.T) {
	s := spliceSchema(t)
	dst := s.NewDataset("v", 10)
	src := s.NewDataset("v", 3)
	for i := 0; i < 3; i++ {
		src.SetTF(0, i, TFTrue)
		src.SetSingle(1, i, src.Schema.Column(1).MustOptionCode("b"))
		src.SetMultiMask(2, i, 0b11)
		src.SetLikert(3, i, i+1)
	}
	if err := dst.Splice(src, 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if dst.u8[0][4+i] != TFTrue || dst.bits[2][4+i] != 0b11 || dst.u8[3][4+i] != uint8(i+1) {
			t.Fatalf("row %d not spliced", 4+i)
		}
		if dst.code[1][4+i] != src.code[1][i] {
			t.Fatalf("single-choice row %d not spliced", 4+i)
		}
	}
	// Neighbours untouched.
	if dst.u8[0][3] != 0 || dst.u8[0][7] != 0 {
		t.Fatal("splice touched rows outside the target range")
	}
}

func TestSpliceRejectsUnsafeShapes(t *testing.T) {
	s := spliceSchema(t)
	dst := s.NewDataset("v", 10)
	cases := []struct {
		name string
		src  *Dataset
		at   int
		want string
	}{
		{"schema", spliceSchema(t).NewDataset("v", 2), 0, "schema"},
		{"version", s.NewDataset("other", 2), 0, "version"},
		{"overflow", s.NewDataset("v", 4), 8, "outside"},
		{"negative", s.NewDataset("v", 2), -1, "outside"},
	}
	for _, c := range cases {
		err := dst.Splice(c.src, c.at)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
	// Explicit tokens (non-anonymized cohorts) cannot be spliced.
	tok := s.NewDataset("v", 2)
	tok.tokens = []string{"alice", "bob"}
	if err := dst.Splice(tok, 0); err == nil {
		t.Error("splice accepted a dataset with explicit tokens")
	}
	// Interned strings (free-text answers) cannot be spliced.
	arena := s.NewDataset("v", 2)
	arena.strtab.intern("free text")
	if err := dst.Splice(arena, 0); err == nil {
		t.Error("splice accepted a dataset with an arena")
	}
}
