package colstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"
	"sort"
	"time"

	"fpstudy/internal/parallel"
	"fpstudy/internal/survey"
	"fpstudy/internal/telemetry"
)

// This file is the FPDS binary shard format: the columnar on-disk twin
// of the in-memory Dataset. Where the JSON form serializes one
// respondent at a time (row-major, ~600 bytes each), FPDS writes each
// column as a run of fixed-width blocks (column-major, 1-13 bytes per
// respondent for the paper's instrument), so a dataset round-trips at
// memory-copy speed instead of JSON-token speed.
//
// # Layout (all integers little-endian)
//
//	magic    "FPDS"
//	uint16   format version (currently 1)
//	uint16   flags (bit 0: auto tokens; bit 1: nil responses slice)
//	section  header — title, dataset version, n, interned question table
//	section  string arena — count, offsets, blob
//	section  tokens — offsets, blob (present only without auto tokens)
//	blocks   per column, in schema order: ceil(n/8192) blocks of
//	         raw codes (uint8 / int32 / uint64 by kind), each
//	         followed by its CRC32
//	section  extras — the multi-choice spill records
//	magic    "SDPF" (end marker: detects truncation after the last CRC)
//
// A "section" is a uint32 length, the payload, and the payload's
// CRC32 (IEEE). Column blocks carry no length prefix: their sizes are
// fully determined by n and the column kind, which is what lets the
// codec address blocks independently and in parallel.
//
// # Parallel codec contract
//
// Block boundaries depend only on n (blockRespondents is a format
// constant), never on the worker count, and every block encodes into —
// or decodes out of — a disjoint byte range computed from its index
// alone. Encoding is therefore byte-identical at any parallelism, and
// decoding writes each column element exactly once (the same
// index-addressed contract the generation path relies on).
//
// # Integrity
//
// Every payload in the file is covered by a CRC32: a flipped bit
// anywhere is reported with the section (or column and block) that
// failed, and a truncated file fails with a clear error rather than a
// short dataset. Decoding also validates every code against the schema
// (truefalse codes <= 3, Likert levels within scale, option codes and
// arena references in range), so a corrupted-but-CRC-valid file cannot
// plant out-of-range indices that would surface later as panics.

const (
	// binMagic opens every FPDS file; binEndMagic closes it.
	binMagic    = "FPDS"
	binEndMagic = "SDPF"

	// BinaryVersion is the FPDS format version this package writes.
	// Readers reject files with a newer version.
	BinaryVersion = 1

	// blockRespondents is the number of respondents per codec block — a
	// format constant (it shapes the file), not a tuning knob: changing
	// it changes the bytes.
	blockRespondents = 8192

	// BlockRespondents is the exported block size: the unit of
	// block-at-a-time streaming (ShardReader reads, query-engine scans).
	BlockRespondents = blockRespondents

	// Header flag bits.
	flagAutoTokens   = 1 << 0
	flagNilResponses = 1 << 1

	// maxSectionBytes bounds any single framed section (header, arena,
	// tokens, extras), so a corrupted length field fails cleanly instead
	// of attempting a huge allocation.
	maxSectionBytes = 1 << 31

	// maxBinaryRespondents bounds the declared respondent count.
	maxBinaryRespondents = 1 << 31
)

// IOOptions configures the binary codec. The zero value is valid:
// default parallelism and no instrumentation.
type IOOptions struct {
	// Workers bounds the codec parallelism (<= 0 means GOMAXPROCS). The
	// worker count never affects the bytes produced or the dataset
	// decoded.
	Workers int
	// BytesWritten / BytesRead, when non-nil, are advanced by the number
	// of bytes the codec writes or reads (the io.bytes_written /
	// io.bytes_read pipeline counters). Purely observational.
	BytesWritten *telemetry.Counter
	BytesRead    *telemetry.Counter
}

// kindCode maps a survey question kind to its wire code.
func kindCode(k survey.Kind) (uint8, error) {
	switch k {
	case survey.TrueFalse:
		return 1, nil
	case survey.Likert:
		return 2, nil
	case survey.SingleChoice:
		return 3, nil
	case survey.MultiChoice:
		return 4, nil
	}
	return 0, fmt.Errorf("colstore: unencodable question kind %q", k)
}

// kindFromCode is the inverse of kindCode.
func kindFromCode(c uint8) (survey.Kind, error) {
	switch c {
	case 1:
		return survey.TrueFalse, nil
	case 2:
		return survey.Likert, nil
	case 3:
		return survey.SingleChoice, nil
	case 4:
		return survey.MultiChoice, nil
	}
	return "", fmt.Errorf("colstore: unknown question kind code %d", c)
}

// colWidth is the per-respondent byte width of a column kind.
func colWidth(k survey.Kind) int {
	switch k {
	case survey.TrueFalse, survey.Likert:
		return 1
	case survey.SingleChoice:
		return 4
	case survey.MultiChoice:
		return 8
	}
	return 0
}

// numBlocks returns the number of codec blocks covering n respondents.
func numBlocks(n int) int { return (n + blockRespondents - 1) / blockRespondents }

// blockBounds returns the half-open respondent range of block b.
func blockBounds(b, n int) (lo, hi int) {
	lo = b * blockRespondents
	hi = lo + blockRespondents
	if hi > n {
		hi = n
	}
	return lo, hi
}

// blockOffset returns the byte offset of block b inside a column's
// encoded region (payloads plus per-block CRCs).
func blockOffset(b, width int) int { return b * (blockRespondents*width + 4) }

// colDataBytes returns the total encoded size of one column: n values
// of the given width plus one CRC per block.
func colDataBytes(n, width int) int {
	return n*width + numBlocks(n)*4
}

// --- little-endian append helpers (encode side).

func appendU16(buf []byte, v uint16) []byte {
	return append(buf, byte(v), byte(v>>8))
}

func appendU32(buf []byte, v uint32) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(buf []byte, v uint64) []byte {
	buf = appendU32(buf, uint32(v))
	return appendU32(buf, uint32(v>>32))
}

func appendStr(buf []byte, s string) []byte {
	buf = appendU32(buf, uint32(len(s)))
	return append(buf, s...)
}

// writeSection frames payload as length + payload + CRC32.
func writeSection(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(hdr[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(hdr[:])
	return err
}

// autoTokens reports whether every token follows the sequential
// anonymous scheme ("r0001", ...), in which case the file omits the
// token arena and the decoder regenerates them on demand.
func (d *Dataset) autoTokens() bool {
	if d.tokens == nil {
		return true
	}
	var buf []byte
	for i, tok := range d.tokens {
		buf = appendToken(buf[:0], i)
		if string(buf) != tok {
			return false
		}
	}
	return true
}

// countingWriter advances a byte counter alongside the wrapped writer.
type countingWriter struct {
	w io.Writer
	c *telemetry.Counter
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.c.Add(int64(n))
	return n, err
}

// EncodeBinary writes the dataset in FPDS form. The encoding is
// byte-identical at any opt.Workers (block boundaries and offsets are
// format constants); memory stays bounded by one column's encoded size
// (≤ ~8 MB per million respondents) regardless of n.
func (d *Dataset) EncodeBinary(w io.Writer, opt IOOptions) error {
	cw := &countingWriter{w: w, c: opt.BytesWritten}
	bw := bufio.NewWriterSize(cw, 1<<20)

	auto := d.autoTokens()
	var flags uint16
	if auto {
		flags |= flagAutoTokens
	}
	if d.nilResponses {
		flags |= flagNilResponses
	}
	pre := make([]byte, 0, 8)
	pre = append(pre, binMagic...)
	pre = appendU16(pre, BinaryVersion)
	pre = appendU16(pre, flags)
	if _, err := bw.Write(pre); err != nil {
		return err
	}

	// Header: identity and the interned question table.
	hdr := make([]byte, 0, 1<<12)
	hdr = appendStr(hdr, d.Schema.Title)
	hdr = appendStr(hdr, d.Version)
	hdr = appendU64(hdr, uint64(d.n))
	hdr = appendU32(hdr, uint32(len(d.Schema.cols)))
	for ci := range d.Schema.cols {
		c := &d.Schema.cols[ci]
		kc, err := kindCode(c.Kind)
		if err != nil {
			return err
		}
		hdr = appendStr(hdr, c.ID)
		hdr = append(hdr, kc)
		hdr = appendU16(hdr, uint16(c.Scale))
		if c.AllowOther {
			hdr = append(hdr, 1)
		} else {
			hdr = append(hdr, 0)
		}
		hdr = appendU32(hdr, uint32(len(c.Options)))
		for _, o := range c.Options {
			hdr = appendStr(hdr, o)
		}
	}
	if err := writeSection(bw, hdr); err != nil {
		return err
	}

	// String arena: offsets into one contiguous blob.
	if err := writeSection(bw, appendArena(nil, d.strtab.strs)); err != nil {
		return err
	}

	// Tokens (only when they carry information beyond the auto scheme).
	if !auto {
		if err := writeSection(bw, appendArena(nil, d.tokens)); err != nil {
			return err
		}
	}

	// Column blocks. One scratch buffer holds the widest column's
	// encoded region; blocks encode into disjoint ranges of it in
	// parallel, then the whole region is written in one call.
	nb := numBlocks(d.n)
	scratch := make([]byte, colDataBytes(d.n, 8))
	lh := latencyHook.Load()
	for ci := range d.Schema.cols {
		c := &d.Schema.cols[ci]
		width := colWidth(c.Kind)
		region := scratch[:colDataBytes(d.n, width)]
		u8col := d.u8[ci]
		i32col := d.code[ci]
		u64col := d.bits[ci]
		parallel.ForEach(opt.Workers, nb, func(b int) {
			var t0 time.Time
			if lh != nil && lh.EncodeBlock != nil {
				t0 = time.Now()
			}
			lo, hi := blockBounds(b, d.n)
			off := blockOffset(b, width)
			payload := region[off : off+(hi-lo)*width]
			switch width {
			case 1:
				copy(payload, u8col[lo:hi])
			case 4:
				for i := lo; i < hi; i++ {
					binary.LittleEndian.PutUint32(payload[(i-lo)*4:], uint32(i32col[i]))
				}
			case 8:
				for i := lo; i < hi; i++ {
					binary.LittleEndian.PutUint64(payload[(i-lo)*8:], u64col[i])
				}
			}
			binary.LittleEndian.PutUint32(region[off+(hi-lo)*width:], crc32.ChecksumIEEE(payload))
			if lh != nil && lh.EncodeBlock != nil {
				lh.EncodeBlock(b, hi-lo, time.Since(t0))
			}
		})
		if _, err := bw.Write(region); err != nil {
			return err
		}
	}

	// Extras: multi-choice spill records, sorted by respondent index so
	// the encoding is deterministic (the in-memory form is a map).
	ext := make([]byte, 0, 256)
	for ci := range d.Schema.cols {
		m := d.extras[ci]
		ext = appendU32(ext, uint32(len(m)))
		if len(m) == 0 {
			continue
		}
		idxs := make([]int, 0, len(m))
		for i := range m {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			e := m[i]
			ext = appendU32(ext, uint32(i))
			if e.verbatim {
				ext = append(ext, 1)
			} else {
				ext = append(ext, 0)
			}
			ext = appendU32(ext, uint32(len(e.refs)))
			for _, ref := range e.refs {
				ext = appendU32(ext, uint32(ref))
			}
		}
	}
	if err := writeSection(bw, ext); err != nil {
		return err
	}

	if _, err := bw.WriteString(binEndMagic); err != nil {
		return err
	}
	return bw.Flush()
}

// appendArena encodes a string list as count + offsets + blob.
func appendArena(buf []byte, strs []string) []byte {
	buf = appendU32(buf, uint32(len(strs)))
	off := uint32(0)
	buf = appendU32(buf, 0)
	for _, s := range strs {
		off += uint32(len(s))
		buf = appendU32(buf, off)
	}
	for _, s := range strs {
		buf = append(buf, s...)
	}
	return buf
}

// --- Decode side.

// binReader is a cursor over one section payload.
type binReader struct {
	data []byte
	off  int
}

var errShortSection = fmt.Errorf("colstore: decode binary: section payload too short")

func (r *binReader) u8() (uint8, error) {
	if r.off+1 > len(r.data) {
		return 0, errShortSection
	}
	v := r.data[r.off]
	r.off++
	return v, nil
}

func (r *binReader) u16() (uint16, error) {
	if r.off+2 > len(r.data) {
		return 0, errShortSection
	}
	v := binary.LittleEndian.Uint16(r.data[r.off:])
	r.off += 2
	return v, nil
}

func (r *binReader) u32() (uint32, error) {
	if r.off+4 > len(r.data) {
		return 0, errShortSection
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, nil
}

func (r *binReader) u64() (uint64, error) {
	if r.off+8 > len(r.data) {
		return 0, errShortSection
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v, nil
}

func (r *binReader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if r.off+int(n) > len(r.data) {
		return "", errShortSection
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

// countingReader advances a byte counter alongside the wrapped reader
// and keeps a local tally for load summaries.
type countingReader struct {
	r io.Reader
	c *telemetry.Counter
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	cr.c.Add(int64(n))
	return n, err
}

// readFull is io.ReadFull with truncation reported as such.
func readFull(r io.Reader, buf []byte, what string) error {
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("colstore: decode binary: truncated file: %s cut short", what)
		}
		return fmt.Errorf("colstore: decode binary: %s: %w", what, err)
	}
	return nil
}

// readSection reads one framed section (length + payload + CRC) and
// verifies the checksum.
func readSection(r io.Reader, what string) ([]byte, error) {
	var hdr [4]byte
	if err := readFull(r, hdr[:], what+" length"); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxSectionBytes {
		return nil, fmt.Errorf("colstore: decode binary: %s section claims %d bytes (corrupted length?)", what, n)
	}
	payload := make([]byte, int(n))
	if err := readFull(r, payload, what+" payload"); err != nil {
		return nil, err
	}
	if err := readFull(r, hdr[:], what+" checksum"); err != nil {
		return nil, err
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(hdr[:]); got != want {
		return nil, fmt.Errorf("colstore: decode binary: %s section checksum mismatch (corrupted file?)", what)
	}
	return payload, nil
}

// readArena decodes a count + offsets + blob string list.
func readArena(r *binReader, what string) ([]string, error) {
	count, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int(count) > len(r.data) {
		return nil, fmt.Errorf("colstore: decode binary: %s arena claims %d strings (corrupted count?)", what, count)
	}
	offs := make([]uint32, count+1)
	for i := range offs {
		if offs[i], err = r.u32(); err != nil {
			return nil, err
		}
	}
	blobLen := len(r.data) - r.off
	if int(offs[count]) != blobLen {
		return nil, fmt.Errorf("colstore: decode binary: %s arena blob is %d bytes, offsets claim %d", what, blobLen, offs[count])
	}
	blob := string(r.data[r.off:])
	r.off = len(r.data)
	out := make([]string, count)
	for i := range out {
		if offs[i] > offs[i+1] {
			return nil, fmt.Errorf("colstore: decode binary: %s arena offsets not monotonic", what)
		}
		out[i] = blob[offs[i]:offs[i+1]]
	}
	return out, nil
}

// schemaMismatch builds the error for a file whose question table does
// not match the caller's schema.
func schemaMismatch(detail string, args ...any) error {
	return fmt.Errorf("colstore: decode binary: file schema does not match the expected schema: "+detail, args...)
}

// decodedHeader is the parsed header section.
type decodedHeader struct {
	title   string
	version string
	n       int
	qs      []survey.Question
}

// parseHeader decodes the header payload into its question table.
func parseHeader(payload []byte) (*decodedHeader, error) {
	r := &binReader{data: payload}
	h := &decodedHeader{}
	var err error
	if h.title, err = r.str(); err != nil {
		return nil, err
	}
	if h.version, err = r.str(); err != nil {
		return nil, err
	}
	n64, err := r.u64()
	if err != nil {
		return nil, err
	}
	if n64 > maxBinaryRespondents {
		return nil, fmt.Errorf("colstore: decode binary: file claims %d respondents (corrupted header?)", n64)
	}
	h.n = int(n64)
	ncols, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int(ncols) > len(payload) {
		return nil, fmt.Errorf("colstore: decode binary: file claims %d columns (corrupted header?)", ncols)
	}
	h.qs = make([]survey.Question, ncols)
	for qi := range h.qs {
		q := &h.qs[qi]
		if q.ID, err = r.str(); err != nil {
			return nil, err
		}
		kc, err := r.u8()
		if err != nil {
			return nil, err
		}
		if q.Kind, err = kindFromCode(kc); err != nil {
			return nil, err
		}
		scale, err := r.u16()
		if err != nil {
			return nil, err
		}
		q.Scale = int(scale)
		ao, err := r.u8()
		if err != nil {
			return nil, err
		}
		q.AllowOther = ao != 0
		nopts, err := r.u32()
		if err != nil {
			return nil, err
		}
		if int(nopts) > len(payload) {
			return nil, fmt.Errorf("colstore: decode binary: question %q claims %d options (corrupted header?)", q.ID, nopts)
		}
		for k := 0; k < int(nopts); k++ {
			o, err := r.str()
			if err != nil {
				return nil, err
			}
			q.Options = append(q.Options, o)
		}
	}
	return h, nil
}

// schemaFor resolves the schema a decoded file uses: the caller's
// schema when it matches the file's question table exactly, or a
// schema built from the file when the caller passed nil.
func schemaFor(s *Schema, h *decodedHeader) (*Schema, error) {
	if s == nil {
		ins := &survey.Instrument{
			Title:    h.title,
			Version:  h.version,
			Sections: []survey.Section{{ID: "data", Title: h.title, Questions: h.qs}},
		}
		return NewSchema(ins)
	}
	if s.Title != h.title {
		return nil, schemaMismatch("file instrument is %q, want %q", h.title, s.Title)
	}
	if len(h.qs) != len(s.cols) {
		return nil, schemaMismatch("file has %d questions, want %d", len(h.qs), len(s.cols))
	}
	for qi, q := range h.qs {
		c := &s.cols[qi]
		if q.ID != c.ID || q.Kind != c.Kind || q.Scale != c.Scale || q.AllowOther != c.AllowOther {
			return nil, schemaMismatch("question %d is %q (%s), want %q (%s)", qi, q.ID, q.Kind, c.ID, c.Kind)
		}
		if len(q.Options) != len(c.Options) {
			return nil, schemaMismatch("question %q has %d options, want %d", q.ID, len(q.Options), len(c.Options))
		}
		for k, o := range q.Options {
			if o != c.Options[k] {
				return nil, schemaMismatch("question %q option %d is %q, want %q", q.ID, k, o, c.Options[k])
			}
		}
	}
	return s, nil
}

// DecodeBinary reads an FPDS dataset. When s is non-nil the file's
// question table must match it exactly and the returned dataset hangs
// off s (so cached per-schema grading tables hit); when s is nil the
// schema is rebuilt from the file. Block checksums are verified and
// every code validated against the schema; decoding is sharded across
// opt.Workers with identical results at any worker count.
func DecodeBinary(s *Schema, r io.Reader, opt IOOptions) (*Dataset, error) {
	br := bufio.NewReaderSize(&countingReader{r: r, c: opt.BytesRead}, 1<<20)

	pre := make([]byte, 8)
	if err := readFull(br, pre, "file preamble"); err != nil {
		return nil, err
	}
	if string(pre[:4]) != binMagic {
		return nil, fmt.Errorf("colstore: decode binary: not an FPDS file (bad magic %q)", pre[:4])
	}
	if v := binary.LittleEndian.Uint16(pre[4:6]); v != BinaryVersion {
		return nil, fmt.Errorf("colstore: decode binary: unsupported format version %d (this build reads version %d)", v, BinaryVersion)
	}
	flags := binary.LittleEndian.Uint16(pre[6:8])

	hdrPayload, err := readSection(br, "header")
	if err != nil {
		return nil, err
	}
	h, err := parseHeader(hdrPayload)
	if err != nil {
		return nil, err
	}
	schema, err := schemaFor(s, h)
	if err != nil {
		return nil, err
	}

	d := schema.NewDataset(h.version, h.n)
	d.nilResponses = flags&flagNilResponses != 0

	arenaPayload, err := readSection(br, "string arena")
	if err != nil {
		return nil, err
	}
	ar := &binReader{data: arenaPayload}
	strs, err := readArena(ar, "string")
	if err != nil {
		return nil, err
	}
	if len(strs) > 0 {
		d.strtab.strs = strs
		d.strtab.idx = make(map[string]int32, len(strs))
		for i, str := range strs {
			if _, dup := d.strtab.idx[str]; !dup {
				d.strtab.idx[str] = int32(i)
			}
		}
	}

	if flags&flagAutoTokens == 0 {
		tokPayload, err := readSection(br, "tokens")
		if err != nil {
			return nil, err
		}
		tr := &binReader{data: tokPayload}
		toks, err := readArena(tr, "token")
		if err != nil {
			return nil, err
		}
		if len(toks) != h.n {
			return nil, fmt.Errorf("colstore: decode binary: token arena has %d entries, want %d", len(toks), h.n)
		}
		d.tokens = toks
	}

	if err := d.decodeColumns(br, opt.Workers); err != nil {
		return nil, err
	}

	extPayload, err := readSection(br, "extras")
	if err != nil {
		return nil, err
	}
	if err := d.decodeExtras(extPayload); err != nil {
		return nil, err
	}

	end := make([]byte, 4)
	if err := readFull(br, end, "end marker"); err != nil {
		return nil, err
	}
	if string(end) != binEndMagic {
		return nil, fmt.Errorf("colstore: decode binary: bad end marker %q (truncated or corrupted file?)", end)
	}
	return d, nil
}

// decodeColumns reads and validates every column's block run.
func (d *Dataset) decodeColumns(r io.Reader, workers int) error {
	nb := numBlocks(d.n)
	buf := make([]byte, colDataBytes(d.n, 8))
	arena := len(d.strtab.strs)
	lh := latencyHook.Load()
	for ci := range d.Schema.cols {
		c := &d.Schema.cols[ci]
		width := colWidth(c.Kind)
		region := buf[:colDataBytes(d.n, width)]
		if err := readFull(r, region, fmt.Sprintf("column %q data", c.ID)); err != nil {
			return err
		}
		u8col := d.u8[ci]
		i32col := d.code[ci]
		u64col := d.bits[ci]
		errs := parallel.Map(workers, nb, func(b int) error {
			var t0 time.Time
			if lh != nil && lh.DecodeBlock != nil {
				t0 = time.Now()
			}
			lo, hi := blockBounds(b, d.n)
			off := blockOffset(b, width)
			payload := region[off : off+(hi-lo)*width]
			crcWant := binary.LittleEndian.Uint32(region[off+(hi-lo)*width:])
			var u8d []uint8
			var i32d []int32
			var u64d []uint64
			switch c.Kind {
			case survey.TrueFalse, survey.Likert:
				u8d = u8col[lo:hi]
			case survey.SingleChoice:
				i32d = i32col[lo:hi]
			case survey.MultiChoice:
				u64d = u64col[lo:hi]
			}
			if err := decodeBlockInto(c, arena, payload, crcWant, b, lo, u8d, i32d, u64d); err != nil {
				return err
			}
			if lh != nil && lh.DecodeBlock != nil {
				lh.DecodeBlock(b, hi-lo, time.Since(t0))
			}
			return nil
		})
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// decodeBlockInto verifies one column block's checksum and decodes its
// payload into the destination slice matching the column kind (the
// other two destinations are nil), validating every code against the
// schema. lo is the global respondent index of the block's first row
// (for error messages); destinations are indexed from 0. Shared by the
// whole-file decoder and the streaming ShardReader so both paths apply
// identical integrity and validation rules.
func decodeBlockInto(c *Col, arenaLen int, payload []byte, crcWant uint32, b, lo int, u8d []uint8, i32d []int32, u64d []uint64) error {
	if got := crc32.ChecksumIEEE(payload); got != crcWant {
		return fmt.Errorf("colstore: decode binary: column %q block %d: checksum mismatch (corrupted file?)", c.ID, b)
	}
	switch c.Kind {
	case survey.TrueFalse:
		for j := range u8d {
			v := payload[j]
			if v > TFDontKnow {
				return fmt.Errorf("colstore: decode binary: column %q respondent %d: bad truefalse code %d", c.ID, lo+j, v)
			}
			u8d[j] = v
		}
	case survey.Likert:
		for j := range u8d {
			v := payload[j]
			if int(v) > c.Scale {
				return fmt.Errorf("colstore: decode binary: column %q respondent %d: level %d out of 1..%d", c.ID, lo+j, v, c.Scale)
			}
			u8d[j] = v
		}
	case survey.SingleChoice:
		for j := range i32d {
			v := int32(binary.LittleEndian.Uint32(payload[j*4:]))
			if int(v) > len(c.Options) || (v < 0 && int(-v-1) >= arenaLen) {
				return fmt.Errorf("colstore: decode binary: column %q respondent %d: option code %d out of range", c.ID, lo+j, v)
			}
			i32d[j] = v
		}
	case survey.MultiChoice:
		valid := uint64(0)
		if len(c.Options) > 0 {
			valid = ^uint64(0) >> uint(64-len(c.Options))
		}
		for j := range u64d {
			v := binary.LittleEndian.Uint64(payload[j*8:])
			if v&^valid != 0 {
				return fmt.Errorf("colstore: decode binary: column %q respondent %d: bitset selects option %d of %d", c.ID, lo+j, bits.Len64(v&^valid)-1, len(c.Options))
			}
			u64d[j] = v
		}
	}
	return nil
}

// parseSpills decodes the extras section payload into per-column spill
// maps without touching a Dataset (the streaming reader keeps them as a
// side table). n bounds respondent indices; arenaLen bounds references.
func parseSpills(s *Schema, n, arenaLen int, payload []byte) ([]map[int]extra, error) {
	r := &binReader{data: payload}
	out := make([]map[int]extra, len(s.cols))
	for ci := range s.cols {
		c := &s.cols[ci]
		count, err := r.u32()
		if err != nil {
			return nil, err
		}
		if count == 0 {
			continue
		}
		if c.Kind != survey.MultiChoice {
			return nil, fmt.Errorf("colstore: decode binary: column %q (%s) carries %d spill records (only multi-choice columns may)", c.ID, c.Kind, count)
		}
		if int(count) > n {
			return nil, fmt.Errorf("colstore: decode binary: column %q claims %d spill records for %d respondents", c.ID, count, n)
		}
		m := make(map[int]extra, count)
		prev := -1
		for k := 0; k < int(count); k++ {
			idx, err := r.u32()
			if err != nil {
				return nil, err
			}
			if int(idx) >= n || int(idx) <= prev {
				return nil, fmt.Errorf("colstore: decode binary: column %q spill record %d: respondent index %d out of order or range", c.ID, k, idx)
			}
			prev = int(idx)
			vb, err := r.u8()
			if err != nil {
				return nil, err
			}
			nrefs, err := r.u32()
			if err != nil {
				return nil, err
			}
			if int(nrefs) > len(payload) {
				return nil, fmt.Errorf("colstore: decode binary: column %q spill record %d claims %d references", c.ID, k, nrefs)
			}
			refs := make([]int32, nrefs)
			for j := range refs {
				ref, err := r.u32()
				if err != nil {
					return nil, err
				}
				if int(ref) >= arenaLen {
					return nil, fmt.Errorf("colstore: decode binary: column %q respondent %d: arena reference %d out of range (%d strings)", c.ID, idx, ref, arenaLen)
				}
				refs[j] = int32(ref)
			}
			m[int(idx)] = extra{refs: refs, verbatim: vb != 0}
		}
		out[ci] = m
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("colstore: decode binary: %d trailing bytes after extras", len(payload)-r.off)
	}
	return out, nil
}

// decodeExtras parses the multi-choice spill records into the dataset.
func (d *Dataset) decodeExtras(payload []byte) error {
	spills, err := parseSpills(d.Schema, d.n, len(d.strtab.strs), payload)
	if err != nil {
		return err
	}
	for ci, m := range spills {
		for idx, e := range m {
			if e.verbatim && d.bits[ci][idx] != 0 {
				return fmt.Errorf("colstore: decode binary: column %q respondent %d: verbatim spill alongside a nonzero bitset", d.Schema.cols[ci].ID, idx)
			}
			d.putExtra(ci, idx, e)
		}
	}
	return nil
}

// Anonymize drops explicit respondent tokens, reverting to the
// sequential anonymous scheme ("r0001", ...) — the same tokens
// survey.Dataset.Anonymize assigns, so the row views agree.
func (d *Dataset) Anonymize() { d.tokens = nil }
