package colstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"fpstudy/internal/survey"
)

// DecodeJSON parses an fpgen-shaped JSON dataset (the survey row form)
// straight into columns, token by token: no []survey.Response, no
// per-respondent answer maps, no whole-file buffer. Memory is bounded
// by the columns themselves plus one respondent's worth of decoder
// state, so legacy JSON datasets load without the map-heavy hot path
// the columnar layout exists to avoid.
//
// The file's instrument title must match s.Title (answers are resolved
// against s's option tables), and every answer must fit its column kind
// — the same contract as FromSurvey, with the same normalizations
// (explicitly-present-but-empty answers drop, a null answers object
// becomes empty). Errors name the first offending respondent index and
// question ID.
func DecodeJSON(s *Schema, r io.Reader) (*Dataset, error) {
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<16))
	if err := expectDelim(dec, '{', "dataset"); err != nil {
		return nil, err
	}
	d := s.NewDataset("", 0)
	sawResponses := false
	for dec.More() {
		key, err := stringToken(dec, "dataset key")
		if err != nil {
			return nil, err
		}
		switch key {
		case "instrument":
			title, err := stringToken(dec, `"instrument"`)
			if err != nil {
				return nil, err
			}
			if title != s.Title {
				return nil, fmt.Errorf("colstore: decode json: dataset is for %q, not %q", title, s.Title)
			}
		case "version":
			if d.Version, err = stringToken(dec, `"version"`); err != nil {
				return nil, err
			}
		case "responses":
			if sawResponses {
				return nil, fmt.Errorf(`colstore: decode json: duplicate "responses" key`)
			}
			sawResponses = true
			if err := d.decodeResponses(dec); err != nil {
				return nil, err
			}
		default:
			if err := skipValue(dec); err != nil {
				return nil, fmt.Errorf("colstore: decode json: key %q: %w", key, err)
			}
		}
	}
	if err := expectDelim(dec, '}', "dataset"); err != nil {
		return nil, err
	}
	if !sawResponses {
		d.nilResponses = true
	}
	return d, nil
}

// decodeResponses parses the "responses" value: null, or an array of
// response objects appended row by row.
func (d *Dataset) decodeResponses(dec *json.Decoder) error {
	tok, err := dec.Token()
	if err != nil {
		return fmt.Errorf(`colstore: decode json: "responses": %w`, err)
	}
	if tok == nil {
		d.nilResponses = true
		return nil
	}
	if delim, ok := tok.(json.Delim); !ok || delim != '[' {
		return fmt.Errorf(`colstore: decode json: "responses" is %v, want an array or null`, tok)
	}
	var scratch survey.Answer
	for dec.More() {
		i := d.appendRow()
		if err := d.decodeResponse(dec, i, &scratch); err != nil {
			return err
		}
	}
	if err := expectDelim(dec, ']', `"responses"`); err != nil {
		return err
	}
	return nil
}

// appendRow grows every column by one zero (unanswered) respondent and
// returns the new row index.
func (d *Dataset) appendRow() int {
	i := d.n
	d.n++
	for ci := range d.Schema.cols {
		switch d.Schema.cols[ci].Kind {
		case survey.TrueFalse, survey.Likert:
			d.u8[ci] = append(d.u8[ci], 0)
		case survey.SingleChoice:
			d.code[ci] = append(d.code[ci], 0)
		case survey.MultiChoice:
			d.bits[ci] = append(d.bits[ci], 0)
		}
	}
	d.tokens = append(d.tokens, "")
	return i
}

// decodeResponse parses one response object into row i.
func (d *Dataset) decodeResponse(dec *json.Decoder, i int, scratch *survey.Answer) error {
	wrap := func(err error) error {
		return fmt.Errorf("colstore: decode json: response %d: %w", i, err)
	}
	if err := expectDelim(dec, '{', "response"); err != nil {
		return wrap(err)
	}
	for dec.More() {
		key, err := stringToken(dec, "response key")
		if err != nil {
			return wrap(err)
		}
		switch key {
		case "token":
			if d.tokens[i], err = stringToken(dec, `"token"`); err != nil {
				return wrap(err)
			}
		case "answers":
			if err := d.decodeAnswers(dec, i, scratch); err != nil {
				return err
			}
		default:
			if err := skipValue(dec); err != nil {
				return wrap(fmt.Errorf("key %q: %w", key, err))
			}
		}
	}
	if err := expectDelim(dec, '}', "response"); err != nil {
		return wrap(err)
	}
	return nil
}

// decodeAnswers parses the answers object of row i (null means empty).
func (d *Dataset) decodeAnswers(dec *json.Decoder, i int, scratch *survey.Answer) error {
	tok, err := dec.Token()
	if err != nil {
		return fmt.Errorf("colstore: decode json: response %d: answers: %w", i, err)
	}
	if tok == nil {
		return nil
	}
	if delim, ok := tok.(json.Delim); !ok || delim != '{' {
		return fmt.Errorf("colstore: decode json: response %d: answers is %v, want an object or null", i, tok)
	}
	for dec.More() {
		id, err := stringToken(dec, "question id")
		if err != nil {
			return fmt.Errorf("colstore: decode json: response %d: %w", i, err)
		}
		ci, ok := d.Schema.byID[id]
		if !ok {
			return fmt.Errorf("colstore: decode json: response %d answers unknown question %q", i, id)
		}
		*scratch = survey.Answer{Choices: scratch.Choices[:0]}
		if err := decodeAnswer(dec, scratch); err != nil {
			return fmt.Errorf("colstore: decode json: response %d: question %q: %w", i, id, err)
		}
		if err := d.setAnswer(ci, i, *scratch); err != nil {
			return fmt.Errorf("colstore: decode json: response %d: %w", i, err)
		}
	}
	if err := expectDelim(dec, '}', "answers"); err != nil {
		return fmt.Errorf("colstore: decode json: response %d: %w", i, err)
	}
	return nil
}

// decodeAnswer parses one answer object into a (reused) scratch value.
// The scratch's Choices backing array is reused across answers; the
// column writers never retain the slice, only the interned strings.
func decodeAnswer(dec *json.Decoder, a *survey.Answer) error {
	if err := expectDelim(dec, '{', "answer"); err != nil {
		return err
	}
	for dec.More() {
		key, err := stringToken(dec, "answer key")
		if err != nil {
			return err
		}
		switch key {
		case "choice":
			if a.Choice, err = stringToken(dec, `"choice"`); err != nil {
				return err
			}
		case "choices":
			tok, err := dec.Token()
			if err != nil {
				return err
			}
			if tok == nil {
				break
			}
			if delim, ok := tok.(json.Delim); !ok || delim != '[' {
				return fmt.Errorf(`"choices" is %v, want an array or null`, tok)
			}
			for dec.More() {
				c, err := stringToken(dec, "choice entry")
				if err != nil {
					return err
				}
				a.Choices = append(a.Choices, c)
			}
			if err := expectDelim(dec, ']', `"choices"`); err != nil {
				return err
			}
		case "level":
			tok, err := dec.Token()
			if err != nil {
				return err
			}
			f, ok := tok.(float64)
			if !ok || f != float64(int(f)) {
				return fmt.Errorf(`"level" is %v, want an integer`, tok)
			}
			a.Level = int(f)
		default:
			if err := skipValue(dec); err != nil {
				return fmt.Errorf("key %q: %w", key, err)
			}
		}
	}
	return expectDelim(dec, '}', "answer")
}

// expectDelim consumes one token and requires it to be the delimiter.
func expectDelim(dec *json.Decoder, want json.Delim, what string) error {
	tok, err := dec.Token()
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("colstore: decode json: truncated input: %s not closed", what)
		}
		return fmt.Errorf("colstore: decode json: %s: %w", what, err)
	}
	if delim, ok := tok.(json.Delim); !ok || delim != want {
		return fmt.Errorf("colstore: decode json: %s: got %v, want %q", what, tok, want)
	}
	return nil
}

// stringToken consumes one token and requires it to be a string.
func stringToken(dec *json.Decoder, what string) (string, error) {
	tok, err := dec.Token()
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return "", fmt.Errorf("truncated input at %s", what)
		}
		return "", err
	}
	s, ok := tok.(string)
	if !ok {
		return "", fmt.Errorf("%s is %v, want a string", what, tok)
	}
	return s, nil
}

// skipValue consumes one complete JSON value of any shape.
func skipValue(dec *json.Decoder) error {
	depth := 0
	for {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		if delim, ok := tok.(json.Delim); ok {
			switch delim {
			case '{', '[':
				depth++
			case '}', ']':
				depth--
			}
		}
		if depth == 0 {
			return nil
		}
	}
}
