// Package colstore is the columnar storage layer under the study
// pipeline: a structure-of-arrays representation of survey datasets in
// which question IDs are interned once into dense column indices and
// answers are stored as compact per-question code columns instead of
// one map[string]Answer per respondent.
//
// # Why columns
//
// The row representation (survey.Response) costs one map allocation
// plus ~30 string-hash insertions per respondent. At n=1M that is
// gigabytes of short-lived garbage and a hard allocation wall in the
// generation and grading hot loops. The columnar layout stores one
// contiguous slice per question:
//
//	true/false   []uint8   0=unanswered 1=true 2=false 3=don't know
//	likert       []uint8   0=unanswered, else the 1-based level
//	single       []int32   0=unanswered, 1..k = option index+1,
//	                       negative = free text ("other") reference
//	multi        []uint64  bitset over the option list (bit j =
//	                       option j selected); free-text additions and
//	                       non-canonical lists spill to a side table
//
// so the per-respondent write path is a handful of indexed stores with
// zero allocations, and whole-cohort scans (grading, figure tallies)
// are linear walks over dense arrays.
//
// # Determinism and sharding contract
//
// All per-respondent state is index-addressed: writing respondent i
// touches only element i of each column, so columns are shard-splittable
// exactly like the per-index RNG streams in internal/parallel — any
// partition of [0, n) across workers produces the same dataset.
// The spill paths (free text, verbatim choice lists) are NOT safe for
// concurrent use and are reserved for sequential conversion
// (FromSurvey); generated cohorts never take them.
//
// # Fidelity contract
//
// A Dataset converts losslessly to and from the row form with two
// documented normalizations: explicitly-present-but-empty answers
// normalize to absent (semantically identical — IsUnanswered — though
// the row form would have serialized the empty answer as "id": {}),
// and a nil Answers map normalizes to an empty one. ToSurvey output is
// deeply equal to the FromSurvey input up to those normalizations, and
// WriteJSON emits byte-for-byte the same document as
// survey.WriteDataset on the normalized row form (identical to the
// original whenever it carried no explicitly-empty answers — generated
// cohorts never do).
package colstore

import (
	"encoding/json"
	"fmt"

	"fpstudy/internal/survey"
)

// True/false and don't-know codes for truefalse columns.
const (
	TFUnanswered uint8 = 0
	TFTrue       uint8 = 1
	TFFalse      uint8 = 2
	TFDontKnow   uint8 = 3
)

// MaxMultiOptions is the option-list bound for multi-choice columns:
// one bitset word per respondent.
const MaxMultiOptions = 64

// Col is one interned question: its identity, kind, and the option
// code table.
type Col struct {
	ID   string
	Kind survey.Kind
	// Options lists the declared options of single/multi questions, in
	// instrument order. Option j has code int32(j+1) (single) or bit j
	// (multi).
	Options []string
	// Scale is the Likert bound (1..Scale).
	Scale      int
	AllowOther bool

	optCode map[string]int32 // option label -> 1-based code
	// jsonID and jsonOptions are the JSON-encoded (escaped, quoted)
	// forms, precomputed so serialization is a pure buffer append.
	jsonID      []byte
	jsonOptions [][]byte
}

// OptionCode returns the 1-based code of an option label.
func (c *Col) OptionCode(label string) (int32, bool) {
	v, ok := c.optCode[label]
	return v, ok
}

// MustOptionCode returns the 1-based code of a declared option and
// panics if the label is not in the column's option list. Generation
// uses it for labels that come from the same tables the instrument's
// option lists are built from.
func (c *Col) MustOptionCode(label string) int32 {
	v, ok := c.optCode[label]
	if !ok {
		panic(fmt.Sprintf("colstore: column %q has no option %q", c.ID, label))
	}
	return v
}

// Schema is an interned survey instrument: question IDs mapped to dense
// column indices, with per-column option code tables. Build one per
// instrument (NewSchema) and share it read-only; all methods are safe
// for concurrent use after construction.
type Schema struct {
	Title string
	cols  []Col
	byID  map[string]int
	// emitOrder is the column order used for JSON serialization:
	// sorted by question ID, matching encoding/json's sorted map keys.
	emitOrder []int
}

// NewSchema interns an instrument. It fails on multi-choice questions
// with more than MaxMultiOptions options (no such instrument exists in
// this repository) and Likert scales beyond 255.
func NewSchema(ins *survey.Instrument) (*Schema, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	s := &Schema{Title: ins.Title, byID: map[string]int{}}
	for _, q := range ins.Questions() {
		switch q.Kind {
		case survey.MultiChoice:
			if len(q.Options) > MaxMultiOptions {
				return nil, fmt.Errorf("colstore: question %q has %d options (max %d)",
					q.ID, len(q.Options), MaxMultiOptions)
			}
		case survey.Likert:
			if q.Scale > 255 {
				return nil, fmt.Errorf("colstore: question %q scale %d exceeds 255", q.ID, q.Scale)
			}
		}
		c := Col{
			ID:         q.ID,
			Kind:       q.Kind,
			Options:    q.Options,
			Scale:      q.Scale,
			AllowOther: q.AllowOther,
			optCode:    make(map[string]int32, len(q.Options)),
			jsonID:     mustJSON(q.ID),
		}
		for j, o := range q.Options {
			c.optCode[o] = int32(j + 1)
			c.jsonOptions = append(c.jsonOptions, mustJSON(o))
		}
		s.byID[q.ID] = len(s.cols)
		s.cols = append(s.cols, c)
	}
	s.emitOrder = make([]int, len(s.cols))
	for i := range s.emitOrder {
		s.emitOrder[i] = i
	}
	// Insertion sort by ID; the instrument has a few dozen questions.
	for i := 1; i < len(s.emitOrder); i++ {
		for j := i; j > 0 && s.cols[s.emitOrder[j]].ID < s.cols[s.emitOrder[j-1]].ID; j-- {
			s.emitOrder[j], s.emitOrder[j-1] = s.emitOrder[j-1], s.emitOrder[j]
		}
	}
	return s, nil
}

// MustSchema is NewSchema for instruments known valid at build time.
func MustSchema(ins *survey.Instrument) *Schema {
	s, err := NewSchema(ins)
	if err != nil {
		panic(err)
	}
	return s
}

// NumColumns returns the number of interned questions.
func (s *Schema) NumColumns() int { return len(s.cols) }

// Column returns the interned column ci.
func (s *Schema) Column(ci int) *Col { return &s.cols[ci] }

// ColumnIndex returns the dense index of a question ID.
func (s *Schema) ColumnIndex(id string) (int, bool) {
	ci, ok := s.byID[id]
	return ci, ok
}

// MustColumnIndex returns the dense index of a question ID known to be
// in the schema.
func (s *Schema) MustColumnIndex(id string) int {
	ci, ok := s.byID[id]
	if !ok {
		panic(fmt.Sprintf("colstore: schema has no question %q", id))
	}
	return ci
}

// mustJSON encodes a string exactly as encoding/json does (including
// HTML escaping of <, >, &), for precomputed serialization literals.
func mustJSON(s string) []byte {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	return b
}
