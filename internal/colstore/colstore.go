package colstore

import (
	"fmt"
	"math/bits"
	"strconv"

	"fpstudy/internal/survey"
)

// strTable is an arena-style interning table for the rare string
// payloads a column cannot encode as a code: free-text "other" answers
// and verbatim (non-canonical) multi-choice lists. Identical strings
// share one entry. Not safe for concurrent mutation; the hot generation
// path never touches it.
type strTable struct {
	strs []string
	idx  map[string]int32
}

func (t *strTable) intern(s string) int32 {
	if t.idx == nil {
		t.idx = map[string]int32{}
	}
	if i, ok := t.idx[s]; ok {
		return i
	}
	i := int32(len(t.strs))
	t.strs = append(t.strs, s)
	t.idx[s] = i
	return i
}

// extra is the spill record for one (column, respondent) cell: string
// table references. For multi-choice cells, verbatim means refs hold
// the entire choices list in original order (the bitset is ignored);
// otherwise refs are free-text additions emitted after the bitset
// options.
type extra struct {
	refs     []int32
	verbatim bool
}

// Dataset is a columnar cohort: one compact code column per question,
// plus a string arena for the payloads codes cannot carry.
type Dataset struct {
	Schema  *Schema
	Version string

	n      int
	tokens []string // nil => auto tokens "r%04d" (i+1), the Anonymize scheme

	u8     [][]uint8       // truefalse + likert columns; nil for other kinds
	code   [][]int32       // single choice
	bits   [][]uint64      // multi choice
	extras []map[int]extra // per column, lazily allocated; sequential only
	strtab strTable

	// nilResponses preserves the row form's nil-vs-empty Responses
	// slice distinction (they serialize differently).
	nilResponses bool
}

// NewDataset allocates an n-respondent dataset over the schema with
// every answer unanswered and auto-generated anonymous tokens.
func (s *Schema) NewDataset(version string, n int) *Dataset {
	d := &Dataset{Schema: s, Version: version, n: n}
	d.u8 = make([][]uint8, len(s.cols))
	d.code = make([][]int32, len(s.cols))
	d.bits = make([][]uint64, len(s.cols))
	d.extras = make([]map[int]extra, len(s.cols))
	for ci := range s.cols {
		switch s.cols[ci].Kind {
		case survey.TrueFalse, survey.Likert:
			d.u8[ci] = make([]uint8, n)
		case survey.SingleChoice:
			d.code[ci] = make([]int32, n)
		case survey.MultiChoice:
			d.bits[ci] = make([]uint64, n)
		}
	}
	return d
}

// Len returns the number of respondents.
func (d *Dataset) Len() int { return d.n }

// InternedStrings returns the number of distinct strings in the arena
// (free-text answers and verbatim lists; zero for generated cohorts).
func (d *Dataset) InternedStrings() int { return len(d.strtab.strs) }

// Token returns respondent i's anonymous token.
func (d *Dataset) Token(i int) string {
	if d.tokens != nil {
		return d.tokens[i]
	}
	return string(appendToken(nil, i))
}

// appendToken appends the auto token for respondent i ("r%04d" of i+1,
// the survey.Anonymize scheme) to buf.
func appendToken(buf []byte, i int) []byte {
	buf = append(buf, 'r')
	v := i + 1
	digits := 1
	for p := 10; v >= p && p <= 1000; p *= 10 {
		digits++
	}
	for ; digits < 4; digits++ {
		buf = append(buf, '0')
	}
	return strconv.AppendInt(buf, int64(v), 10)
}

// --- Hot-path writers. All are index-addressed: writing respondent i
// touches only element i, so distinct indices may be written
// concurrently (the shard-splittability contract).

// SetTF stores a truefalse code (TFUnanswered/TFTrue/TFFalse/TFDontKnow).
func (d *Dataset) SetTF(ci, i int, code uint8) { d.u8[ci][i] = code }

// SetLikert stores a 1-based Likert level (0 = unanswered).
func (d *Dataset) SetLikert(ci, i, level int) { d.u8[ci][i] = uint8(level) }

// SetSingle stores a 1-based option code (0 = unanswered).
func (d *Dataset) SetSingle(ci, i int, code int32) { d.code[ci][i] = code }

// SetMultiMask stores a multi-choice bitset (bit j = option j chosen).
func (d *Dataset) SetMultiMask(ci, i int, mask uint64) { d.bits[ci][i] = mask }

// --- Readers.

// TF returns the truefalse code of (column, respondent).
func (d *Dataset) TF(ci, i int) uint8 { return d.u8[ci][i] }

// LikertLevel returns the 1-based level (0 = unanswered).
func (d *Dataset) LikertLevel(ci, i int) int { return int(d.u8[ci][i]) }

// SingleCode returns the single-choice code: 0 unanswered, positive =
// option index+1, negative = free-text reference.
func (d *Dataset) SingleCode(ci, i int) int32 { return d.code[ci][i] }

// MultiMask returns the multi-choice bitset.
func (d *Dataset) MultiMask(ci, i int) uint64 { return d.bits[ci][i] }

// SingleLabel resolves a single-choice answer to its label ("" when
// unanswered). Free-text codes resolve through the string arena.
func (d *Dataset) SingleLabel(ci, i int) string {
	c := d.code[ci][i]
	switch {
	case c == 0:
		return ""
	case c > 0:
		return d.Schema.cols[ci].Options[c-1]
	default:
		return d.strtab.strs[-c-1]
	}
}

// --- Raw column views. These expose the dense code slices for
// whole-column scans (the query engine's block kernels). The returned
// slices are the live backing arrays: callers must treat them as
// read-only.

// RawU8 returns the dense code column of a truefalse or Likert
// question (nil for other kinds).
func (d *Dataset) RawU8(ci int) []uint8 { return d.u8[ci] }

// RawI32 returns the dense code column of a single-choice question.
func (d *Dataset) RawI32(ci int) []int32 { return d.code[ci] }

// RawU64 returns the dense bitset column of a multi-choice question.
func (d *Dataset) RawU64(ci int) []uint64 { return d.bits[ci] }

// ArenaStrings returns the string arena (free-text answers and
// verbatim lists; empty for generated cohorts). Read-only.
func (d *Dataset) ArenaStrings() []string { return d.strtab.strs }

// MultiSpill is the exported view of one multi-choice spill record:
// arena references for the cell's free-text additions, or — when
// Verbatim — the entire choices list in original order (the bitset is
// zero and ignored).
type MultiSpill struct {
	Refs     []int32
	Verbatim bool
}

// MultiSpills returns the spill records of one multi-choice column,
// keyed by respondent index (nil when the column has none — always the
// case for generated cohorts).
func (d *Dataset) MultiSpills(ci int) map[int]MultiSpill {
	m := d.extras[ci]
	if len(m) == 0 {
		return nil
	}
	out := make(map[int]MultiSpill, len(m))
	for i, e := range m {
		out[i] = MultiSpill{Refs: e.refs, Verbatim: e.verbatim}
	}
	return out
}

// cellExtra returns the spill record for (column, respondent), if any.
func (d *Dataset) cellExtra(ci, i int) (extra, bool) {
	m := d.extras[ci]
	if m == nil {
		return extra{}, false
	}
	e, ok := m[i]
	return e, ok
}

// MultiUnanswered reports whether a multi-choice cell holds no choices.
func (d *Dataset) MultiUnanswered(ci, i int) bool {
	if d.bits[ci][i] != 0 {
		return false
	}
	_, ok := d.cellExtra(ci, i)
	return !ok
}

// MultiChoices materializes the choice list of a multi-choice cell in
// canonical order (nil when unanswered). The slice is freshly
// allocated; hot paths should use MultiMask/ForEachMultiChoice instead.
func (d *Dataset) MultiChoices(ci, i int) []string {
	var out []string
	d.ForEachMultiChoice(ci, i, func(label string) {
		out = append(out, label)
	})
	return out
}

// ForEachMultiChoice calls fn for every selected choice of a
// multi-choice cell, in stored order, without allocating.
func (d *Dataset) ForEachMultiChoice(ci, i int, fn func(label string)) {
	e, hasExtra := d.cellExtra(ci, i)
	if hasExtra && e.verbatim {
		for _, ref := range e.refs {
			fn(d.strtab.strs[ref])
		}
		return
	}
	c := &d.Schema.cols[ci]
	mask := d.bits[ci][i]
	for mask != 0 {
		j := bits.TrailingZeros64(mask)
		fn(c.Options[j])
		mask &^= 1 << uint(j)
	}
	if hasExtra {
		for _, ref := range e.refs {
			fn(d.strtab.strs[ref])
		}
	}
}

// --- Sequential (conversion-path) writers. These may intern strings
// and allocate spill records, so they must not run concurrently.

// setSingleOther stores a free-text single-choice answer.
func (d *Dataset) setSingleOther(ci, i int, text string) {
	d.code[ci][i] = -(d.strtab.intern(text) + 1)
}

// setMultiChoices stores an arbitrary choices list. Lists that are the
// canonical order (declared options in option order, then free text)
// become bitset + refs; anything else is kept verbatim so ToSurvey
// reproduces it exactly.
func (d *Dataset) setMultiChoices(ci, i int, choices []string) {
	c := &d.Schema.cols[ci]
	var mask uint64
	var others []string
	canonical := true
	lastOpt := int32(0)
	for _, ch := range choices {
		if code, ok := c.optCode[ch]; ok {
			if len(others) > 0 || code <= lastOpt {
				canonical = false
				break
			}
			lastOpt = code
			mask |= 1 << uint(code-1)
		} else {
			others = append(others, ch)
		}
	}
	if !canonical {
		refs := make([]int32, len(choices))
		for k, ch := range choices {
			refs[k] = d.strtab.intern(ch)
		}
		d.putExtra(ci, i, extra{refs: refs, verbatim: true})
		d.bits[ci][i] = 0
		return
	}
	d.bits[ci][i] = mask
	if len(others) > 0 {
		refs := make([]int32, len(others))
		for k, ch := range others {
			refs[k] = d.strtab.intern(ch)
		}
		d.putExtra(ci, i, extra{refs: refs})
	}
}

func (d *Dataset) putExtra(ci, i int, e extra) {
	if d.extras[ci] == nil {
		d.extras[ci] = map[int]extra{}
	}
	d.extras[ci][i] = e
}

// setAnswer stores one row-form answer into its column. Empty answers
// normalize to absent. It rejects answers whose shape does not fit the
// column kind (those would not survive a round trip).
func (d *Dataset) setAnswer(ci, i int, a survey.Answer) error {
	if a.IsUnanswered() {
		return nil
	}
	c := &d.Schema.cols[ci]
	shapeErr := func() error {
		return fmt.Errorf("colstore: question %q (%s): answer %+v does not fit the column kind",
			c.ID, c.Kind, a)
	}
	switch c.Kind {
	case survey.TrueFalse:
		if len(a.Choices) != 0 || a.Level != 0 {
			return shapeErr()
		}
		switch a.Choice {
		case survey.AnswerTrue:
			d.u8[ci][i] = TFTrue
		case survey.AnswerFalse:
			d.u8[ci][i] = TFFalse
		case survey.AnswerDontKnow:
			d.u8[ci][i] = TFDontKnow
		default:
			return fmt.Errorf("colstore: question %q: bad truefalse answer %q", c.ID, a.Choice)
		}
	case survey.Likert:
		if len(a.Choices) != 0 || a.Choice != "" {
			return shapeErr()
		}
		if a.Level < 1 || a.Level > c.Scale {
			return fmt.Errorf("colstore: question %q: level %d out of 1..%d", c.ID, a.Level, c.Scale)
		}
		d.u8[ci][i] = uint8(a.Level)
	case survey.SingleChoice:
		if len(a.Choices) != 0 || a.Level != 0 {
			return shapeErr()
		}
		if code, ok := c.optCode[a.Choice]; ok {
			d.code[ci][i] = code
		} else {
			d.setSingleOther(ci, i, a.Choice)
		}
	case survey.MultiChoice:
		if a.Choice != "" || a.Level != 0 {
			return shapeErr()
		}
		d.setMultiChoices(ci, i, a.Choices)
	}
	return nil
}

// FromSurvey converts a row-form dataset into columns. Responses must
// answer only questions in the schema; answer shapes must fit their
// column kinds. Conversion is sequential (it may intern strings).
func FromSurvey(s *Schema, ds *survey.Dataset) (*Dataset, error) {
	d := s.NewDataset(ds.Version, len(ds.Responses))
	d.nilResponses = ds.Responses == nil
	d.tokens = make([]string, len(ds.Responses))
	for i := range ds.Responses {
		r := &ds.Responses[i]
		d.tokens[i] = r.Token
		for id, a := range r.Answers {
			ci, ok := s.byID[id]
			if !ok {
				return nil, fmt.Errorf("colstore: response %d answers unknown question %q", i, id)
			}
			if err := d.setAnswer(ci, i, a); err != nil {
				return nil, fmt.Errorf("colstore: response %d: %w", i, err)
			}
		}
	}
	return d, nil
}

// Response materializes respondent i in row form.
func (d *Dataset) Response(i int) survey.Response {
	r := survey.Response{Token: d.Token(i), Answers: map[string]survey.Answer{}}
	for ci := range d.Schema.cols {
		c := &d.Schema.cols[ci]
		switch c.Kind {
		case survey.TrueFalse:
			switch d.u8[ci][i] {
			case TFTrue:
				r.Answers[c.ID] = survey.Answer{Choice: survey.AnswerTrue}
			case TFFalse:
				r.Answers[c.ID] = survey.Answer{Choice: survey.AnswerFalse}
			case TFDontKnow:
				r.Answers[c.ID] = survey.Answer{Choice: survey.AnswerDontKnow}
			}
		case survey.Likert:
			if lv := d.u8[ci][i]; lv != 0 {
				r.Answers[c.ID] = survey.Answer{Level: int(lv)}
			}
		case survey.SingleChoice:
			if d.code[ci][i] != 0 {
				r.Answers[c.ID] = survey.Answer{Choice: d.SingleLabel(ci, i)}
			}
		case survey.MultiChoice:
			if cs := d.MultiChoices(ci, i); cs != nil {
				r.Answers[c.ID] = survey.Answer{Choices: cs}
			}
		}
	}
	return r
}

// ToSurvey materializes the whole dataset in row form, sequentially.
// Use ToSurveyWorkers for large cohorts.
func (d *Dataset) ToSurvey() *survey.Dataset { return d.ToSurveyWorkers(1) }

// responsesInto fills out[i] = d.Response(i) for i in [lo, hi); the
// caller shards the index space (Response is read-only on d, so
// distinct indices are safe concurrently).
func (d *Dataset) responsesInto(out []survey.Response, lo, hi int) {
	for i := lo; i < hi; i++ {
		out[i] = d.Response(i)
	}
}
