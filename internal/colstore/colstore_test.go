package colstore_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"fpstudy/internal/colstore"
	"fpstudy/internal/quiz"
	"fpstudy/internal/survey"
)

// randomAnswer draws a random answer for q, exercising every storage
// path the column kinds have: codes, free text ("other") references,
// verbatim (shuffled) multi lists, free-text multi additions, and —
// when allowEmpty is set — explicitly-present-but-empty answers.
func randomAnswer(rng *rand.Rand, q survey.Question, allowEmpty bool) (survey.Answer, bool) {
	if allowEmpty && rng.Intn(10) == 0 {
		return survey.Answer{}, true // present but empty
	}
	switch q.Kind {
	case survey.TrueFalse:
		tf := []string{survey.AnswerTrue, survey.AnswerFalse, survey.AnswerDontKnow}
		return survey.Answer{Choice: tf[rng.Intn(len(tf))]}, true
	case survey.Likert:
		return survey.Answer{Level: 1 + rng.Intn(q.Scale)}, true
	case survey.SingleChoice:
		if rng.Intn(8) == 0 {
			// Free text: not in the option list, spills to the arena.
			return survey.Answer{Choice: "write-in option &<js>"}, true
		}
		return survey.Answer{Choice: q.Options[rng.Intn(len(q.Options))]}, true
	case survey.MultiChoice:
		var choices []string
		for _, o := range q.Options {
			if rng.Intn(3) == 0 {
				choices = append(choices, o)
			}
		}
		switch rng.Intn(4) {
		case 0:
			if len(choices) > 1 {
				// Verbatim path: a non-canonical order must round-trip
				// exactly as given.
				j := rng.Intn(len(choices) - 1)
				choices[j], choices[j+1] = choices[j+1], choices[j]
			}
		case 1:
			// Canonical prefix plus free-text additions.
			choices = append(choices, "Befunge-93", "INTERCAL")
		}
		if choices == nil {
			return survey.Answer{}, false // unanswered: omit entirely
		}
		return survey.Answer{Choices: choices}, true
	}
	return survey.Answer{}, false
}

// randomDataset builds a row-form dataset over the quiz instrument with
// seeded-random answers. When allowEmpty is set some answers are
// explicitly present but empty (the documented normalization case).
func randomDataset(rng *rand.Rand, n int, allowEmpty bool) *survey.Dataset {
	ins := quiz.Instrument()
	d := &survey.Dataset{Instrument: ins.Title, Version: ins.Version,
		Responses: make([]survey.Response, n)}
	for i := range d.Responses {
		r := &d.Responses[i]
		r.Answers = map[string]survey.Answer{}
		for _, q := range ins.Questions() {
			if rng.Intn(5) == 0 {
				continue // unanswered: absent from the map
			}
			if a, ok := randomAnswer(rng, q, allowEmpty); ok {
				r.Answers[q.ID] = a
			}
		}
	}
	d.Anonymize()
	return d
}

// normalize applies the two documented colstore normalizations to a
// row-form dataset: explicitly-empty answers become absent, and nil
// Answers maps become empty ones.
func normalize(d *survey.Dataset) *survey.Dataset {
	out := &survey.Dataset{Instrument: d.Instrument, Version: d.Version}
	if d.Responses != nil {
		out.Responses = make([]survey.Response, len(d.Responses))
	}
	for i, r := range d.Responses {
		nr := survey.Response{Token: r.Token, Answers: map[string]survey.Answer{}}
		for id, a := range r.Answers {
			if !a.IsUnanswered() {
				nr.Answers[id] = a
			}
		}
		out.Responses[i] = nr
	}
	return out
}

// TestRoundTripProperty converts seeded-random row datasets to columns
// and back, asserting deep equality up to the documented
// normalizations. Covers free-text single answers, verbatim
// (non-canonical) multi lists, free-text multi additions, explicitly
// empty answers, and unanswered questions.
func TestRoundTripProperty(t *testing.T) {
	schema := quiz.Columns()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		ds := randomDataset(rng, 1+rng.Intn(8), true)
		cols, err := colstore.FromSurvey(schema, ds)
		if err != nil {
			t.Fatalf("trial %d: FromSurvey: %v", trial, err)
		}
		back := cols.ToSurvey()
		want := normalize(ds)
		if !reflect.DeepEqual(back, want) {
			t.Fatalf("trial %d: round trip diverged\n got: %+v\nwant: %+v", trial, back, want)
		}
	}
}

// TestRoundTripNilAnswers checks the nil-map normalization and the
// nil-vs-empty Responses distinction.
func TestRoundTripNilAnswers(t *testing.T) {
	schema := quiz.Columns()
	ins := quiz.Instrument()
	ds := &survey.Dataset{Instrument: ins.Title, Version: "1.0",
		Responses: []survey.Response{{Token: "r0001", Answers: nil}}}
	cols, err := colstore.FromSurvey(schema, ds)
	if err != nil {
		t.Fatalf("FromSurvey: %v", err)
	}
	back := cols.ToSurvey()
	if back.Responses[0].Answers == nil {
		t.Fatalf("nil Answers map should normalize to an empty map")
	}
	if len(back.Responses[0].Answers) != 0 {
		t.Fatalf("empty response grew answers: %+v", back.Responses[0].Answers)
	}

	for _, responses := range [][]survey.Response{nil, {}} {
		ds := &survey.Dataset{Instrument: ins.Title, Version: "1.0", Responses: responses}
		cols, err := colstore.FromSurvey(schema, ds)
		if err != nil {
			t.Fatalf("FromSurvey: %v", err)
		}
		want, err := survey.EncodeDataset(ds)
		if err != nil {
			t.Fatalf("EncodeDataset: %v", err)
		}
		var buf bytes.Buffer
		if err := cols.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("nil=%v: WriteJSON diverged from EncodeDataset:\n got %q\nwant %q",
				responses == nil, buf.Bytes(), want)
		}
	}
}

// TestWriteJSONByteIdentity asserts WriteJSON emits byte-for-byte what
// survey.EncodeDataset produces on the row form, for seeded-random
// datasets with every answer shape the encoder supports (free text with
// characters that hit encoding/json's HTML escaping included).
func TestWriteJSONByteIdentity(t *testing.T) {
	schema := quiz.Columns()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		// No explicitly-empty answers: those serialize as "id": {} in the
		// row form and are normalized to absent by colstore (see the
		// package fidelity contract).
		ds := randomDataset(rng, 1+rng.Intn(8), false)
		cols, err := colstore.FromSurvey(schema, ds)
		if err != nil {
			t.Fatalf("trial %d: FromSurvey: %v", trial, err)
		}
		want, err := survey.EncodeDataset(ds)
		if err != nil {
			t.Fatalf("trial %d: EncodeDataset: %v", trial, err)
		}
		var buf bytes.Buffer
		if err := cols.WriteJSON(&buf); err != nil {
			t.Fatalf("trial %d: WriteJSON: %v", trial, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			a, b := buf.Bytes(), want
			i := 0
			for i < len(a) && i < len(b) && a[i] == b[i] {
				i++
			}
			lo := i - 60
			if lo < 0 {
				lo = 0
			}
			t.Fatalf("trial %d: WriteJSON diverged from EncodeDataset at byte %d:\n got ...%s\nwant ...%s",
				trial, i, a[lo:min(i+60, len(a))], b[lo:min(i+60, len(b))])
		}
	}
}

// TestInternedStrings checks arena accounting: identical free-text
// payloads share one entry.
func TestInternedStrings(t *testing.T) {
	schema := quiz.Columns()
	ins := quiz.Instrument()
	var single string
	for _, q := range ins.Questions() {
		if q.Kind == survey.SingleChoice {
			single = q.ID
			break
		}
	}
	ds := &survey.Dataset{Instrument: ins.Title, Version: "1.0",
		Responses: []survey.Response{
			{Token: "r0001", Answers: map[string]survey.Answer{single: {Choice: "write-in"}}},
			{Token: "r0002", Answers: map[string]survey.Answer{single: {Choice: "write-in"}}},
		}}
	cols, err := colstore.FromSurvey(schema, ds)
	if err != nil {
		t.Fatalf("FromSurvey: %v", err)
	}
	if got := cols.InternedStrings(); got != 1 {
		t.Fatalf("InternedStrings = %d, want 1 (identical payloads share an entry)", got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
