package colstore

import (
	"bufio"
	"io"
	"strconv"

	"fpstudy/internal/survey"
)

// WriteJSON streams the dataset as indented JSON, producing exactly the
// bytes survey.WriteDataset (and survey.EncodeDataset) would emit for
// the row form — without materializing a single map. Answers are
// emitted in sorted question-ID order (encoding/json's sorted map
// keys); option labels and question IDs use JSON literals precomputed
// at schema build time, so serializing one respondent is a pure buffer
// append.
func (d *Dataset) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	bw.WriteString("{\n  \"instrument\": ")
	bw.Write(mustJSON(d.Schema.Title))
	bw.WriteString(",\n  \"version\": ")
	bw.Write(mustJSON(d.Version))
	bw.WriteString(",\n  \"responses\": ")
	if d.n == 0 {
		// Match encoding/json: nil slice encodes as null, empty as [].
		if d.nilResponses {
			bw.WriteString("null\n}")
		} else {
			bw.WriteString("[]\n}")
		}
		return bw.Flush()
	}
	bw.WriteString("[\n")
	buf := make([]byte, 0, 1<<12)
	for i := 0; i < d.n; i++ {
		buf = append(buf[:0], "    "...)
		buf = d.appendResponse(buf, i)
		if i < d.n-1 {
			buf = append(buf, ',')
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	bw.WriteString("  ]\n}")
	return bw.Flush()
}

// answered reports whether respondent i answered column ci.
func (d *Dataset) answered(ci, i int) bool {
	switch d.Schema.cols[ci].Kind {
	case survey.TrueFalse, survey.Likert:
		return d.u8[ci][i] != 0
	case survey.SingleChoice:
		return d.code[ci][i] != 0
	case survey.MultiChoice:
		return !d.MultiUnanswered(ci, i)
	}
	return false
}

// Precomputed JSON literals for the truefalse answer strings.
var (
	jsonTrue     = mustJSON(survey.AnswerTrue)
	jsonFalse    = mustJSON(survey.AnswerFalse)
	jsonDontKnow = mustJSON(survey.AnswerDontKnow)
)

// appendResponse appends respondent i exactly as
// json.MarshalIndent(&survey.Response{...}, "    ", "  ") renders it.
func (d *Dataset) appendResponse(buf []byte, i int) []byte {
	buf = append(buf, "{\n      \"token\": "...)
	if d.tokens != nil {
		buf = append(buf, mustJSON(d.tokens[i])...)
	} else {
		buf = append(buf, '"')
		buf = appendToken(buf, i)
		buf = append(buf, '"')
	}
	buf = append(buf, ",\n      \"answers\": "...)

	// Find the last answered column so commas land correctly.
	last := -1
	for k := len(d.Schema.emitOrder) - 1; k >= 0; k-- {
		if d.answered(d.Schema.emitOrder[k], i) {
			last = k
			break
		}
	}
	if last < 0 {
		return append(buf, "{}\n    }"...)
	}
	buf = append(buf, "{\n"...)
	for k := 0; k <= last; k++ {
		ci := d.Schema.emitOrder[k]
		if !d.answered(ci, i) {
			continue
		}
		c := &d.Schema.cols[ci]
		buf = append(buf, "        "...)
		buf = append(buf, c.jsonID...)
		buf = append(buf, ": {\n"...)
		switch c.Kind {
		case survey.TrueFalse:
			buf = append(buf, "          \"choice\": "...)
			switch d.u8[ci][i] {
			case TFTrue:
				buf = append(buf, jsonTrue...)
			case TFFalse:
				buf = append(buf, jsonFalse...)
			default:
				buf = append(buf, jsonDontKnow...)
			}
			buf = append(buf, '\n')
		case survey.Likert:
			buf = append(buf, "          \"level\": "...)
			buf = strconv.AppendInt(buf, int64(d.u8[ci][i]), 10)
			buf = append(buf, '\n')
		case survey.SingleChoice:
			buf = append(buf, "          \"choice\": "...)
			if code := d.code[ci][i]; code > 0 {
				buf = append(buf, c.jsonOptions[code-1]...)
			} else {
				buf = append(buf, mustJSON(d.strtab.strs[-code-1])...)
			}
			buf = append(buf, '\n')
		case survey.MultiChoice:
			buf = append(buf, "          \"choices\": [\n"...)
			first := true
			d.ForEachMultiChoiceJSON(ci, i, func(lit []byte) {
				if !first {
					buf = append(buf, ",\n"...)
				}
				first = false
				buf = append(buf, "            "...)
				buf = append(buf, lit...)
			})
			buf = append(buf, "\n          ]\n"...)
		}
		buf = append(buf, "        }"...)
		if k < last {
			buf = append(buf, ',')
		}
		buf = append(buf, '\n')
	}
	return append(buf, "      }\n    }"...)
}

// ForEachMultiChoiceJSON is ForEachMultiChoice over precomputed JSON
// literals (free-text entries are encoded on the fly).
func (d *Dataset) ForEachMultiChoiceJSON(ci, i int, fn func(lit []byte)) {
	e, hasExtra := d.cellExtra(ci, i)
	if hasExtra && e.verbatim {
		for _, ref := range e.refs {
			fn(mustJSON(d.strtab.strs[ref]))
		}
		return
	}
	c := &d.Schema.cols[ci]
	mask := d.bits[ci][i]
	for j := 0; mask != 0; j++ {
		if mask&1 != 0 {
			fn(c.jsonOptions[j])
		}
		mask >>= 1
	}
	if hasExtra {
		for _, ref := range e.refs {
			fn(mustJSON(d.strtab.strs[ref]))
		}
	}
}
