package colstore

import (
	"sync/atomic"
	"time"
)

// LatencyHook receives per-block FPDS codec timings: one callback per
// fixed 8192-respondent block of each column as it encodes or decodes.
// Observation only — the hook cannot affect bytes produced or datasets
// decoded. Callbacks must be safe for concurrent use (the codecs shard
// blocks across workers).
type LatencyHook struct {
	// EncodeBlock fires after a column block is encoded and
	// checksummed, with the block index, its respondent count, and
	// duration.
	EncodeBlock func(block, items int, d time.Duration)
	// DecodeBlock fires after a column block is checksum-verified and
	// decoded, with the block index, its respondent count, and
	// duration.
	DecodeBlock func(block, items int, d time.Duration)
}

// latencyHook holds the installed hook; one atomic load per codec call
// plus a branch per block when uninstalled.
var latencyHook atomic.Pointer[LatencyHook]

// SetLatencyHook installs h as the process-wide codec latency hook
// (nil uninstalls). Called by the telemetry wiring
// (internal/core.InstallPipelineTelemetry); installing mid-run affects
// only subsequently started codec calls.
func SetLatencyHook(h *LatencyHook) { latencyHook.Store(h) }
