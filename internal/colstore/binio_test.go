package colstore_test

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"

	"fpstudy/internal/colstore"
	"fpstudy/internal/quiz"
	"fpstudy/internal/survey"
)

// encodeBinary is the test shorthand: encode at a worker count, fatal
// on error.
func encodeBinary(t *testing.T, d *colstore.Dataset, workers int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.EncodeBinary(&buf, colstore.IOOptions{Workers: workers}); err != nil {
		t.Fatalf("EncodeBinary: %v", err)
	}
	return buf.Bytes()
}

// TestBinaryRoundTripProperty pins the acceptance chain on seeded-random
// datasets: rows → columns → binary → columns → WriteJSON must equal the
// direct row-form JSON byte-for-byte (free text with HTML-escaped
// characters and verbatim multi lists included).
func TestBinaryRoundTripProperty(t *testing.T) {
	schema := quiz.Columns()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		ds := randomDataset(rng, 1+rng.Intn(40), false)
		cols, err := colstore.FromSurvey(schema, ds)
		if err != nil {
			t.Fatalf("trial %d: FromSurvey: %v", trial, err)
		}
		enc := encodeBinary(t, cols, 0)
		back, err := colstore.DecodeBinary(schema, bytes.NewReader(enc), colstore.IOOptions{})
		if err != nil {
			t.Fatalf("trial %d: DecodeBinary: %v", trial, err)
		}
		if back.Schema != schema {
			t.Fatalf("trial %d: decoded dataset does not reuse the caller's schema", trial)
		}
		want, err := survey.EncodeDataset(ds)
		if err != nil {
			t.Fatalf("trial %d: EncodeDataset: %v", trial, err)
		}
		var got bytes.Buffer
		if err := back.WriteJSON(&got); err != nil {
			t.Fatalf("trial %d: WriteJSON: %v", trial, err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("trial %d: binary round trip diverged from the row JSON", trial)
		}
	}
}

// TestBinaryParallelByteIdentity pins the parallel-codec contract: the
// encoded file is byte-identical at workers 1/4/16, and decoding at any
// of those worker counts reproduces the same dataset.
func TestBinaryParallelByteIdentity(t *testing.T) {
	schema := quiz.Columns()
	rng := rand.New(rand.NewSource(23))
	// Cross a block boundary so multiple blocks actually exist.
	ds := randomDataset(rng, 9000, false)
	cols, err := colstore.FromSurvey(schema, ds)
	if err != nil {
		t.Fatalf("FromSurvey: %v", err)
	}
	base := encodeBinary(t, cols, 1)
	for _, w := range []int{4, 16} {
		if enc := encodeBinary(t, cols, w); !bytes.Equal(enc, base) {
			t.Fatalf("workers=%d: encoding differs from workers=1", w)
		}
	}
	var baseJSON bytes.Buffer
	if err := cols.WriteJSON(&baseJSON); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	for _, w := range []int{1, 4, 16} {
		back, err := colstore.DecodeBinary(schema, bytes.NewReader(base), colstore.IOOptions{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: DecodeBinary: %v", w, err)
		}
		var got bytes.Buffer
		if err := back.WriteJSON(&got); err != nil {
			t.Fatalf("workers=%d: WriteJSON: %v", w, err)
		}
		if !bytes.Equal(got.Bytes(), baseJSON.Bytes()) {
			t.Fatalf("workers=%d: decoded dataset differs", w)
		}
	}
}

// TestBinaryAutoTokens checks the token-arena elision: sequential
// anonymous tokens are regenerated, not stored, and a single
// out-of-scheme token forces the arena back in.
func TestBinaryAutoTokens(t *testing.T) {
	schema := quiz.Columns()
	rng := rand.New(rand.NewSource(5))
	ds := randomDataset(rng, 50, false) // Anonymize gives r0001.. tokens
	cols, err := colstore.FromSurvey(schema, ds)
	if err != nil {
		t.Fatalf("FromSurvey: %v", err)
	}
	auto := encodeBinary(t, cols, 0)

	ds.Responses[17].Token = "participant-17"
	cols2, err := colstore.FromSurvey(schema, ds)
	if err != nil {
		t.Fatalf("FromSurvey: %v", err)
	}
	explicit := encodeBinary(t, cols2, 0)
	if len(explicit) <= len(auto) {
		t.Fatalf("explicit tokens (%d bytes) should cost more than auto tokens (%d bytes)", len(explicit), len(auto))
	}
	back, err := colstore.DecodeBinary(schema, bytes.NewReader(auto), colstore.IOOptions{})
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	if got := back.Token(17); got != "r0018" {
		t.Fatalf("auto token 17 = %q, want r0018", got)
	}
	back2, err := colstore.DecodeBinary(schema, bytes.NewReader(explicit), colstore.IOOptions{})
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	if got := back2.Token(17); got != "participant-17" {
		t.Fatalf("explicit token 17 = %q, want participant-17", got)
	}
}

// TestBinaryEmptyDatasets pins the nil-vs-empty Responses distinction
// through the binary form (they serialize to different JSON).
func TestBinaryEmptyDatasets(t *testing.T) {
	schema := quiz.Columns()
	ins := quiz.Instrument()
	for _, responses := range [][]survey.Response{nil, {}} {
		ds := &survey.Dataset{Instrument: ins.Title, Version: "1.0", Responses: responses}
		cols, err := colstore.FromSurvey(schema, ds)
		if err != nil {
			t.Fatalf("FromSurvey: %v", err)
		}
		enc := encodeBinary(t, cols, 0)
		back, err := colstore.DecodeBinary(schema, bytes.NewReader(enc), colstore.IOOptions{})
		if err != nil {
			t.Fatalf("nil=%v: DecodeBinary: %v", responses == nil, err)
		}
		want, err := survey.EncodeDataset(ds)
		if err != nil {
			t.Fatalf("EncodeDataset: %v", err)
		}
		var got bytes.Buffer
		if err := back.WriteJSON(&got); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("nil=%v: round trip diverged:\n got %q\nwant %q", responses == nil, got.Bytes(), want)
		}
	}
}

// TestBinaryNilSchemaRebuild checks decoding without a caller schema:
// the question table is rebuilt from the file and the data survives.
func TestBinaryNilSchemaRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := randomDataset(rng, 12, false)
	cols, err := colstore.FromSurvey(quiz.Columns(), ds)
	if err != nil {
		t.Fatalf("FromSurvey: %v", err)
	}
	enc := encodeBinary(t, cols, 0)
	back, err := colstore.DecodeBinary(nil, bytes.NewReader(enc), colstore.IOOptions{})
	if err != nil {
		t.Fatalf("DecodeBinary(nil schema): %v", err)
	}
	if back.Schema == quiz.Columns() {
		t.Fatalf("nil-schema decode should build a fresh schema")
	}
	var got, want bytes.Buffer
	if err := cols.WriteJSON(&want); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := back.WriteJSON(&got); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("nil-schema decode diverged from the source dataset")
	}
}

// TestBinarySchemaMismatch checks that a file for a different
// instrument is rejected with a schema error, not mis-decoded.
func TestBinarySchemaMismatch(t *testing.T) {
	other := colstore.MustSchema(&survey.Instrument{
		Title:   "Some Other Survey",
		Version: "9",
		Sections: []survey.Section{{ID: "s", Title: "s", Questions: []survey.Question{
			{ID: "q1", Kind: survey.Likert, Scale: 5},
		}}},
	})
	enc := encodeBinary(t, other.NewDataset("9", 3), 0)
	_, err := colstore.DecodeBinary(quiz.Columns(), bytes.NewReader(enc), colstore.IOOptions{})
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("mismatched schema decode: err = %v, want schema mismatch", err)
	}
}

// TestBinaryTruncation cuts a valid file at every framing boundary (and
// a few interior points) and requires a clean error, never a panic or a
// silently short dataset.
func TestBinaryTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds := randomDataset(rng, 40, false)
	cols, err := colstore.FromSurvey(quiz.Columns(), ds)
	if err != nil {
		t.Fatalf("FromSurvey: %v", err)
	}
	enc := encodeBinary(t, cols, 0)
	cuts := []int{0, 3, 4, 7, 8, 10, len(enc) / 4, len(enc) / 2, len(enc) - 5, len(enc) - 1}
	for _, cut := range cuts {
		_, err := colstore.DecodeBinary(quiz.Columns(), bytes.NewReader(enc[:cut]), colstore.IOOptions{})
		if err == nil {
			t.Fatalf("cut=%d: truncated file decoded without error", cut)
		}
	}
}

// TestBinaryCorruption flips single bytes across the file and requires
// every corruption to be caught (CRC or validation), with the column
// named when the damage is inside a block.
func TestBinaryCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ds := randomDataset(rng, 64, false)
	cols, err := colstore.FromSurvey(quiz.Columns(), ds)
	if err != nil {
		t.Fatalf("FromSurvey: %v", err)
	}
	enc := encodeBinary(t, cols, 0)
	// Skip the magic (its own error) and flip a byte every stride.
	for off := 8; off < len(enc); off += 97 {
		bad := append([]byte(nil), enc...)
		bad[off] ^= 0xFF
		d, err := colstore.DecodeBinary(quiz.Columns(), bytes.NewReader(bad), colstore.IOOptions{})
		if err != nil {
			continue
		}
		// A flip that survives decoding must not have changed the data
		// (e.g. a flip inside the length field caught as truncation is an
		// error above; a flip that lands in padding cannot happen — every
		// byte is covered — so require byte-identical JSON).
		var got, want bytes.Buffer
		if err := d.WriteJSON(&got); err != nil {
			t.Fatalf("off=%d: WriteJSON after surviving flip: %v", off, err)
		}
		if err := cols.WriteJSON(&want); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("off=%d: corrupted file decoded to different data without error", off)
		}
	}
}

// TestBinaryCorruptBlockCRC targets a column block payload specifically
// and requires the error to name the column and block.
func TestBinaryCorruptBlockCRC(t *testing.T) {
	schema := quiz.Columns()
	cols := schema.NewDataset("1.0", 20)
	// Answer the first truefalse column so its block is nonzero.
	ci := -1
	for i := 0; i < len(quiz.Instrument().Questions()); i++ {
		if schema.Column(i).Kind == survey.TrueFalse {
			ci = i
			break
		}
	}
	if ci < 0 {
		t.Fatal("no truefalse column in the quiz schema")
	}
	for i := 0; i < 20; i++ {
		cols.SetTF(ci, i, colstore.TFTrue)
	}
	enc := encodeBinary(t, cols, 0)
	// The first column's first data byte: locate it by re-encoding with
	// one answer changed and finding the first differing offset.
	cols.SetTF(ci, 0, colstore.TFFalse)
	enc2 := encodeBinary(t, cols, 0)
	off := 0
	for off < len(enc) && enc[off] == enc2[off] {
		off++
	}
	bad := append([]byte(nil), enc...)
	bad[off] ^= 0x55
	_, err := colstore.DecodeBinary(schema, bytes.NewReader(bad), colstore.IOOptions{})
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("corrupt block decode: err = %v, want a block checksum mismatch", err)
	}
	if !strings.Contains(err.Error(), "block 0") {
		t.Fatalf("corrupt block error should name the block: %v", err)
	}
}

// TestBinaryEncodeAllocsPerRespondent pins the steady-state allocation
// budget: encoding allocates a fixed set of buffers (scratch, section
// builders, writer), not per-respondent garbage.
func TestBinaryEncodeAllocsPerRespondent(t *testing.T) {
	const n = 20000 // > 2 blocks
	schema := quiz.Columns()
	cols := schema.NewDataset("1.0", n)
	allocs := testing.AllocsPerRun(3, func() {
		if err := cols.EncodeBinary(io.Discard, colstore.IOOptions{Workers: 1}); err != nil {
			t.Fatalf("EncodeBinary: %v", err)
		}
	})
	if perResp := allocs / n; perResp > 0.01 {
		t.Fatalf("EncodeBinary allocates %.0f times for %d respondents (%.3f/respondent), want ~0/respondent",
			allocs, n, perResp)
	}
}

// TestBinaryDecodeAllocsPerRespondent pins the decode side the same
// way: the allocation count is a fixed per-file overhead (sections,
// column arrays, codec bookkeeping), not a function of n — growing the
// cohort 20x must not grow the count materially.
func TestBinaryDecodeAllocsPerRespondent(t *testing.T) {
	schema := quiz.Columns()
	decodeAllocs := func(n int) float64 {
		cols := schema.NewDataset("1.0", n)
		var buf bytes.Buffer
		if err := cols.EncodeBinary(&buf, colstore.IOOptions{Workers: 1}); err != nil {
			t.Fatalf("EncodeBinary: %v", err)
		}
		enc := buf.Bytes()
		return testing.AllocsPerRun(3, func() {
			if _, err := colstore.DecodeBinary(schema, bytes.NewReader(enc), colstore.IOOptions{Workers: 1}); err != nil {
				t.Fatalf("DecodeBinary: %v", err)
			}
		})
	}
	small, big := decodeAllocs(2000), decodeAllocs(40000)
	if big > small*1.25+50 {
		t.Fatalf("DecodeBinary allocations scale with n: %.0f at n=2000 vs %.0f at n=40000", small, big)
	}
}

// FuzzDecodeBinary feeds arbitrary bytes to the binary decoder: it must
// never panic, and anything it accepts must re-encode and WriteJSON
// without error (i.e. validation admits only well-formed datasets).
func FuzzDecodeBinary(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	schema := quiz.Columns()
	for _, n := range []int{0, 1, 7} {
		ds := randomDataset(rng, n, false)
		cols, err := colstore.FromSurvey(schema, ds)
		if err != nil {
			f.Fatalf("FromSurvey: %v", err)
		}
		var buf bytes.Buffer
		if err := cols.EncodeBinary(&buf, colstore.IOOptions{}); err != nil {
			f.Fatalf("EncodeBinary: %v", err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("FPDS"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := colstore.DecodeBinary(nil, bytes.NewReader(data), colstore.IOOptions{})
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := d.EncodeBinary(&buf, colstore.IOOptions{}); err != nil {
			t.Fatalf("re-encode of accepted file failed: %v", err)
		}
		if err := d.WriteJSON(io.Discard); err != nil {
			t.Fatalf("WriteJSON of accepted file failed: %v", err)
		}
	})
}

// TestLoadSniffing checks the format-sniffing loader on both
// serializations of the same dataset.
func TestLoadSniffing(t *testing.T) {
	schema := quiz.Columns()
	rng := rand.New(rand.NewSource(17))
	ds := randomDataset(rng, 25, false)
	cols, err := colstore.FromSurvey(schema, ds)
	if err != nil {
		t.Fatalf("FromSurvey: %v", err)
	}
	var wantJSON bytes.Buffer
	if err := cols.WriteJSON(&wantJSON); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	bin := encodeBinary(t, cols, 0)

	for _, tc := range []struct {
		name   string
		data   []byte
		format colstore.Format
	}{
		{"binary", bin, colstore.FormatBinary},
		{"json", wantJSON.Bytes(), colstore.FormatJSON},
	} {
		d, info, err := colstore.Load(schema, bytes.NewReader(tc.data), colstore.IOOptions{})
		if err != nil {
			t.Fatalf("%s: Load: %v", tc.name, err)
		}
		if info.Format != tc.format {
			t.Fatalf("%s: sniffed %v, want %v", tc.name, info.Format, tc.format)
		}
		if info.Bytes < int64(len(tc.data)) {
			t.Fatalf("%s: LoadInfo.Bytes = %d, want >= %d", tc.name, info.Bytes, len(tc.data))
		}
		var got bytes.Buffer
		if err := d.WriteJSON(&got); err != nil {
			t.Fatalf("%s: WriteJSON: %v", tc.name, err)
		}
		if !bytes.Equal(got.Bytes(), wantJSON.Bytes()) {
			t.Fatalf("%s: loaded dataset diverged", tc.name)
		}
	}

	if _, _, err := colstore.Load(schema, strings.NewReader("garbage"), colstore.IOOptions{}); err == nil {
		t.Fatal("Load accepted unrecognizable input")
	}
	if f := colstore.DetectFormat([]byte("  {")); f != colstore.FormatJSON {
		t.Fatalf("DetectFormat(whitespace JSON) = %v", f)
	}
	if f := colstore.DetectFormat([]byte("FPDSxxxx")); f != colstore.FormatBinary {
		t.Fatalf("DetectFormat(FPDS) = %v", f)
	}
}

// TestBinarySizeAdvantage documents the point of the format: the
// binary form of a generated-style cohort is far smaller than its JSON.
func TestBinarySizeAdvantage(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	ds := randomDataset(rng, 500, false)
	cols, err := colstore.FromSurvey(quiz.Columns(), ds)
	if err != nil {
		t.Fatalf("FromSurvey: %v", err)
	}
	var js bytes.Buffer
	if err := cols.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	bin := encodeBinary(t, cols, 0)
	if ratio := float64(js.Len()) / float64(len(bin)); ratio < 5 {
		t.Fatalf("binary is only %.1fx smaller than JSON (%d vs %d bytes)", ratio, len(bin), js.Len())
	}
	t.Logf("n=500: json %d bytes, binary %d bytes (%.1fx)", js.Len(), len(bin),
		float64(js.Len())/float64(len(bin)))
}
