package colstore

import (
	"fpstudy/internal/parallel"

	"fpstudy/internal/survey"
)

// ToSurveyWorkers materializes the dataset in row form, sharding the
// respondent space across workers (<= 0 means GOMAXPROCS). Reading
// columns is index-addressed, so the result is identical at any worker
// count.
func (d *Dataset) ToSurveyWorkers(workers int) *survey.Dataset {
	ds := &survey.Dataset{Instrument: d.Schema.Title, Version: d.Version}
	if d.n == 0 {
		if !d.nilResponses {
			ds.Responses = []survey.Response{}
		}
		return ds
	}
	out := make([]survey.Response, d.n)
	parallel.MapShards(workers, d.n, func(lo, hi int) struct{} {
		d.responsesInto(out, lo, hi)
		return struct{}{}
	})
	ds.Responses = out
	return ds
}
