package colstore

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"time"
)

// Format identifies a dataset serialization.
type Format int

const (
	// FormatUnknown is returned when sniffing fails.
	FormatUnknown Format = iota
	// FormatJSON is the row-oriented survey JSON form.
	FormatJSON
	// FormatBinary is the columnar FPDS shard form.
	FormatBinary
)

// String names the format the way the tools spell it in flags.
func (f Format) String() string {
	switch f {
	case FormatJSON:
		return "json"
	case FormatBinary:
		return "binary"
	}
	return "unknown"
}

// BinaryExt is the conventional file extension for FPDS shards.
const BinaryExt = ".fpds"

// DetectFormat sniffs a dataset's serialization from its leading bytes:
// the FPDS magic means binary, anything starting with JSON whitespace
// or '{' means JSON.
func DetectFormat(head []byte) Format {
	if len(head) >= len(binMagic) && string(head[:len(binMagic)]) == binMagic {
		return FormatBinary
	}
	for _, b := range head {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		case '{':
			return FormatJSON
		default:
			return FormatUnknown
		}
	}
	return FormatUnknown
}

// LoadInfo describes one completed dataset load.
type LoadInfo struct {
	Format  Format
	Bytes   int64
	Elapsed time.Duration
}

// Load sniffs r's format and decodes it with the matching codec (see
// DecodeBinary for the schema contract; pass a nil schema to accept
// whatever instrument the file declares — JSON loading then fails,
// since the row form cannot be interpreted without one).
func Load(s *Schema, r io.Reader, opt IOOptions) (*Dataset, LoadInfo, error) {
	start := time.Now()
	cr := &countingReader{r: r, c: opt.BytesRead}
	br := bufio.NewReaderSize(cr, 1<<20)
	head, err := br.Peek(len(binMagic))
	if err != nil && err != io.EOF {
		return nil, LoadInfo{}, fmt.Errorf("colstore: load: %w", err)
	}
	info := LoadInfo{Format: DetectFormat(head)}
	var d *Dataset
	switch info.Format {
	case FormatBinary:
		// The counting/buffering wrappers are already in place here, so
		// hand DecodeBinary the plain reader.
		d, err = DecodeBinary(s, br, IOOptions{Workers: opt.Workers})
	case FormatJSON:
		if s == nil {
			return nil, LoadInfo{}, fmt.Errorf("colstore: load: JSON datasets need a schema to decode against")
		}
		d, err = DecodeJSON(s, br)
	default:
		return nil, LoadInfo{}, fmt.Errorf("colstore: load: unrecognized dataset format (leading bytes %q)", head)
	}
	if err != nil {
		return nil, LoadInfo{}, err
	}
	info.Bytes = cr.n
	info.Elapsed = time.Since(start)
	return d, info, nil
}

// LoadFile opens path and Loads it, reporting the exact on-disk size
// (Load's own count reflects read-ahead buffering).
func LoadFile(s *Schema, path string, opt IOOptions) (*Dataset, LoadInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, LoadInfo{}, err
	}
	defer f.Close()
	d, info, err := Load(s, f, opt)
	if err != nil {
		return nil, LoadInfo{}, fmt.Errorf("%s: %w", path, err)
	}
	if st, err := f.Stat(); err == nil {
		info.Bytes = st.Size()
	}
	return d, info, nil
}
