package colstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"

	"fpstudy/internal/survey"
	"fpstudy/internal/telemetry"
)

// ShardReader is random block-at-a-time access to an FPDS shard on
// disk: the out-of-core twin of DecodeBinary. Opening a shard parses
// only the small sections (header, string arena, tokens, spill
// records) and computes the byte offset of every column block from the
// format's fixed layout; column data is then read on demand, one
// 8192-respondent block at a time, with the same CRC verification and
// code validation as the whole-file decoder. A query over an n=10M
// cohort therefore touches disk only for the columns it binds and
// holds only workers × bound-columns × one block in memory.
//
// ShardReader is safe for concurrent ReadBlock calls (it reads through
// an io.ReaderAt and mutates nothing after Open).
type ShardReader struct {
	r      io.ReaderAt
	closer io.Closer

	schema  *Schema
	version string
	n       int
	arena   []string
	spills  []map[int]extra // per column; nil when none
	colOff  []int64         // file offset of each column's block region

	bytesRead *telemetry.Counter
}

// OpenShard opens an FPDS file for streaming block reads. When s is
// non-nil the file's question table must match it exactly (as in
// DecodeBinary); the returned reader must be closed.
func OpenShard(s *Schema, path string, opt IOOptions) (*ShardReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	sr, err := NewShardReader(s, f, fi.Size(), opt)
	if err != nil {
		f.Close()
		return nil, err
	}
	sr.closer = f
	return sr, nil
}

// NewShardReader builds a streaming reader over size bytes of FPDS
// data accessible through r. It parses the header, string arena,
// token, and extras sections eagerly (they are small), verifies the
// end marker and total size, and computes every column's block-region
// offset; no column data is read until ReadBlock.
func NewShardReader(s *Schema, r io.ReaderAt, size int64, opt IOOptions) (*ShardReader, error) {
	cr := &countingReader{r: bufio.NewReaderSize(io.NewSectionReader(r, 0, size), 1<<16), c: opt.BytesRead}

	pre := make([]byte, 8)
	if err := readFull(cr, pre, "file preamble"); err != nil {
		return nil, err
	}
	if string(pre[:4]) != binMagic {
		return nil, fmt.Errorf("colstore: decode binary: not an FPDS file (bad magic %q)", pre[:4])
	}
	if v := binary.LittleEndian.Uint16(pre[4:6]); v != BinaryVersion {
		return nil, fmt.Errorf("colstore: decode binary: unsupported format version %d (this build reads version %d)", v, BinaryVersion)
	}
	flags := binary.LittleEndian.Uint16(pre[6:8])

	hdrPayload, err := readSection(cr, "header")
	if err != nil {
		return nil, err
	}
	h, err := parseHeader(hdrPayload)
	if err != nil {
		return nil, err
	}
	schema, err := schemaFor(s, h)
	if err != nil {
		return nil, err
	}

	sr := &ShardReader{r: r, schema: schema, version: h.version, n: h.n, bytesRead: opt.BytesRead}

	arenaPayload, err := readSection(cr, "string arena")
	if err != nil {
		return nil, err
	}
	ar := &binReader{data: arenaPayload}
	if sr.arena, err = readArena(ar, "string"); err != nil {
		return nil, err
	}

	if flags&flagAutoTokens == 0 {
		// Tokens carry no analytical content; a streaming reader only
		// needs to skip past them (still checksum-verified).
		tokPayload, err := readSection(cr, "tokens")
		if err != nil {
			return nil, err
		}
		tr := &binReader{data: tokPayload}
		toks, err := readArena(tr, "token")
		if err != nil {
			return nil, err
		}
		if len(toks) != h.n {
			return nil, fmt.Errorf("colstore: decode binary: token arena has %d entries, want %d", len(toks), h.n)
		}
	}

	// The column regions start where the head sections end; every block
	// offset inside them is a pure function of n and the column kinds.
	off := cr.n
	sr.colOff = make([]int64, len(schema.cols))
	for ci := range schema.cols {
		sr.colOff[ci] = off
		off += int64(colDataBytes(h.n, colWidth(schema.cols[ci].Kind)))
	}

	extPayload, err := readSection(io.NewSectionReader(r, off, size-off), "extras")
	if err != nil {
		return nil, err
	}
	if sr.spills, err = parseSpills(schema, h.n, len(sr.arena), extPayload); err != nil {
		return nil, err
	}
	if opt.BytesRead != nil {
		opt.BytesRead.Add(int64(len(extPayload)) + 8)
	}
	off += int64(len(extPayload)) + 8

	end := make([]byte, 4)
	if _, err := r.ReadAt(end, off); err != nil {
		return nil, fmt.Errorf("colstore: decode binary: truncated file: end marker cut short")
	}
	if string(end) != binEndMagic {
		return nil, fmt.Errorf("colstore: decode binary: bad end marker %q (truncated or corrupted file?)", end)
	}
	if got := off + 4; got != size {
		return nil, fmt.Errorf("colstore: decode binary: file is %d bytes, layout expects %d", size, got)
	}
	return sr, nil
}

// Close releases the underlying file (no-op for readers constructed
// over a caller-owned io.ReaderAt).
func (sr *ShardReader) Close() error {
	if sr.closer != nil {
		return sr.closer.Close()
	}
	return nil
}

// Schema returns the shard's schema (the caller's when it matched).
func (sr *ShardReader) Schema() *Schema { return sr.schema }

// Len returns the number of respondents in the shard.
func (sr *ShardReader) Len() int { return sr.n }

// Version returns the dataset version recorded in the header.
func (sr *ShardReader) Version() string { return sr.version }

// ArenaStrings returns the shard's string arena. Read-only.
func (sr *ShardReader) ArenaStrings() []string { return sr.arena }

// MultiSpills returns the spill records of one multi-choice column,
// keyed by respondent index (nil when the column has none).
func (sr *ShardReader) MultiSpills(ci int) map[int]MultiSpill {
	m := sr.spills[ci]
	if len(m) == 0 {
		return nil
	}
	out := make(map[int]MultiSpill, len(m))
	for i, e := range m {
		out[i] = MultiSpill{Refs: e.refs, Verbatim: e.verbatim}
	}
	return out
}

// BlockScratchBytes is the raw-buffer size ReadBlock needs: one block
// of the widest column plus its CRC.
const BlockScratchBytes = blockRespondents*8 + 4

// ReadBlock reads, verifies, and decodes block b of column ci into the
// destination slice matching the column's kind (u8d for truefalse and
// Likert, i32d for single choice, u64d for multi choice; the others
// may be nil), returning the number of respondents decoded. raw is the
// caller's scratch for the on-disk bytes (≥ BlockScratchBytes; reuse
// it across calls). Safe for concurrent use with distinct scratch.
func (sr *ShardReader) ReadBlock(ci, b int, u8d []uint8, i32d []int32, u64d []uint64, raw []byte) (int, error) {
	var t0 time.Time
	lh := latencyHook.Load()
	if lh != nil && lh.DecodeBlock != nil {
		t0 = time.Now()
	}
	c := &sr.schema.cols[ci]
	width := colWidth(c.Kind)
	lo, hi := blockBounds(b, sr.n)
	if lo >= hi {
		return 0, fmt.Errorf("colstore: shard read: column %q block %d out of range", c.ID, b)
	}
	nb := (hi-lo)*width + 4
	buf := raw[:nb]
	if _, err := sr.r.ReadAt(buf, sr.colOff[ci]+int64(blockOffset(b, width))); err != nil {
		return 0, fmt.Errorf("colstore: shard read: column %q block %d: %w", c.ID, b, err)
	}
	if sr.bytesRead != nil {
		sr.bytesRead.Add(int64(nb))
	}
	payload := buf[:(hi-lo)*width]
	crcWant := binary.LittleEndian.Uint32(buf[(hi-lo)*width:])
	switch c.Kind {
	case survey.TrueFalse, survey.Likert:
		u8d = u8d[:hi-lo]
		i32d, u64d = nil, nil
	case survey.SingleChoice:
		i32d = i32d[:hi-lo]
		u8d, u64d = nil, nil
	case survey.MultiChoice:
		u64d = u64d[:hi-lo]
		u8d, i32d = nil, nil
	}
	if err := decodeBlockInto(c, len(sr.arena), payload, crcWant, b, lo, u8d, i32d, u64d); err != nil {
		return 0, err
	}
	if lh != nil && lh.DecodeBlock != nil {
		lh.DecodeBlock(b, hi-lo, time.Since(t0))
	}
	return hi - lo, nil
}
