package distrib

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"fpstudy/internal/colstore"
	"fpstudy/internal/core"
	"fpstudy/internal/quiz"
	"fpstudy/internal/report"
	"fpstudy/internal/respondent"
)

const (
	// EnvWorker marks a spawned process as a protocol worker; the
	// coordinator sets it on every child. WorkerBootstrap checks it
	// before any flag parsing, so worker processes never touch the
	// host CLI's flags, ledger, or stdout.
	EnvWorker = "FPSTUDY_DISTRIB_WORKER"
	// EnvFault is a test hook: "<leg>:<index>" makes worker <index>
	// exit with FaultExitCode the moment it receives that request
	// type, simulating a crash mid-leg.
	EnvFault = "FPSTUDY_DISTRIB_FAULT"
	// FaultExitCode is the exit status of a fault-injected crash.
	FaultExitCode = 3
)

// WorkerBootstrap hijacks the process into worker mode when it was
// spawned by a Coordinator (EnvWorker set, or an explicit first
// argument "-worker"). It must be the first statement of every CLI
// main() that offers -distribute: in worker mode it serves the
// protocol on stdin/stdout and exits without returning.
func WorkerBootstrap() {
	if os.Getenv(EnvWorker) == "1" || (len(os.Args) > 1 && os.Args[1] == "-worker") {
		os.Exit(WorkerMain(os.Stdin, os.Stdout))
	}
}

// workerState is one worker's retained context between legs: its
// assigned range, drawn profiles, and generated local cohorts, so the
// sample and grade legs never re-derive what an earlier leg produced.
type workerState struct {
	index    int
	workers  int
	lo, hi   int
	profiles []respondent.Profile
	main     *colstore.Dataset
	fault    string
}

func (st *workerState) maybeFault(leg string) {
	if st.fault != "" && st.fault == fmt.Sprintf("%s:%d", leg, st.index) {
		os.Exit(FaultExitCode)
	}
}

// WorkerMain serves the worker side of the protocol: a strict
// request/response loop until EOF on r (the coordinator closing the
// pipe is the shutdown signal). Returns the process exit status.
func WorkerMain(r io.Reader, w io.Writer) int {
	br := bufio.NewReaderSize(r, 1<<20)
	bw := bufio.NewWriterSize(w, 1<<20)
	st := &workerState{fault: os.Getenv(EnvFault)}
	for {
		req, err := readRequest(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return 0
			}
			fmt.Fprintf(os.Stderr, "distrib worker %d: read: %v\n", st.index, err)
			return 1
		}
		st.maybeFault(req.Type)
		t0 := time.Now()
		bin, tables, herr := st.handle(req, br)
		resp := response{Type: req.Type, WallSeconds: time.Since(t0).Seconds(), Tables: tables}
		if herr != nil {
			resp.Err = herr.Error()
			bin = nil
		}
		resp.Binary = bin != nil
		err = writeJSONFrame(bw, &resp)
		if err == nil && bin != nil {
			err = writeFrame(bw, frameBinary, bin)
		}
		if err == nil {
			err = bw.Flush()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "distrib worker %d: write: %v\n", st.index, err)
			return 1
		}
	}
}

// handle runs one leg. A returned non-nil []byte becomes a trailing
// binary frame; tables travel in the JSON response.
func (st *workerState) handle(req *request, br *bufio.Reader) ([]byte, []report.Table, error) {
	switch req.Type {
	case legHello:
		if req.Proto != Proto {
			return nil, nil, fmt.Errorf("protocol version %d, worker speaks %d", req.Proto, Proto)
		}
		st.index = req.Index
		st.workers = req.Workers
		return nil, nil, nil

	case legProfiles:
		st.lo, st.hi = req.Lo, req.Hi
		st.profiles = respondent.DrawProfilesRange(req.Seed, req.Lo, req.Hi, st.workers)
		coreAbil, optAbil := respondent.ProfileAbilities(st.profiles)
		return packAbilities(coreAbil, optAbil), nil, nil

	case legSample:
		if st.profiles == nil && st.hi > st.lo {
			return nil, nil, fmt.Errorf("sample before profiles")
		}
		st.main = respondent.SampleRange(req.Seed, st.lo, st.profiles, req.Models, st.workers)
		return encodeDataset(st.main, st.workers)

	case legStudents:
		d := respondent.SampleStudentsRange(req.Seed, req.Lo, req.Hi, st.workers)
		return encodeDataset(d, st.workers)

	case legGrade:
		if st.main == nil {
			return nil, nil, fmt.Errorf("grade before sample")
		}
		g := quiz.ScoreAllColumns(st.main, st.workers)
		return packGrades(g), nil, nil

	case legFigures:
		mainBytes, err := readFrame(br, frameBinary)
		if err != nil {
			return nil, nil, fmt.Errorf("figures main payload: %w", err)
		}
		studentBytes, err := readFrame(br, frameBinary)
		if err != nil {
			return nil, nil, fmt.Errorf("figures student payload: %w", err)
		}
		opt := colstore.IOOptions{Workers: st.workers}
		main, err := colstore.DecodeBinary(quiz.Columns(), bytes.NewReader(mainBytes), opt)
		if err != nil {
			return nil, nil, fmt.Errorf("figures main decode: %w", err)
		}
		students, err := colstore.DecodeBinary(quiz.Columns(), bytes.NewReader(studentBytes), opt)
		if err != nil {
			return nil, nil, fmt.Errorf("figures student decode: %w", err)
		}
		study := core.Study{Seed: req.Seed, Workers: st.workers, ColumnarOnly: true}
		res, err := study.ResultsFromColumns(main, students)
		if err != nil {
			return nil, nil, err
		}
		tables := make([]report.Table, 0, len(req.Figures))
		for _, f := range req.Figures {
			tables = append(tables, res.Figure(f))
		}
		return nil, tables, nil
	}
	return nil, nil, fmt.Errorf("unknown request type %q", req.Type)
}

// encodeDataset serializes a local dataset as FPDS bytes — the same
// CRC-framed shard format files use, so every worker-to-coordinator
// dataset transfer is covered by per-block CRCs end to end.
func encodeDataset(d *colstore.Dataset, workers int) ([]byte, []report.Table, error) {
	var buf bytes.Buffer
	if err := d.EncodeBinary(&buf, colstore.IOOptions{Workers: workers}); err != nil {
		return nil, nil, err
	}
	return buf.Bytes(), nil, nil
}
