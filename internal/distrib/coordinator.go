package distrib

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"

	"fpstudy/internal/colstore"
	"fpstudy/internal/quiz"
	"fpstudy/internal/report"
	"fpstudy/internal/respondent"
)

// Options configures a Coordinator.
type Options struct {
	// Procs is the number of worker processes to spawn (min 1).
	Procs int
	// Workers is the in-process worker count each worker process uses
	// (<= 0 means the child's GOMAXPROCS). When positive it is also
	// exported as the child's GOMAXPROCS so the in-process pool is not
	// clamped below the requested fan-out.
	Workers int
	// Exe is the worker binary; empty means os.Executable() — the
	// coordinator re-execs itself.
	Exe string
	// Args are extra child arguments (the env var alone selects worker
	// mode; "-worker" as Args[0] makes worker processes self-describing
	// in ps output).
	Args []string
	// Env entries are appended to the child environment.
	Env []string
	// Stderr receives worker stderr; nil means the parent's stderr.
	Stderr io.Writer
}

// WorkerError is the structured failure report of a distributed leg:
// which worker, which leg, and which global respondent range was in
// flight. A worker crash (exit, kill, truncated frame) surfaces as a
// WorkerError rather than a hang — pipe EOF/EPIPE ends every pending
// read and write.
type WorkerError struct {
	Index  int    // worker process index
	Lo, Hi int    // global respondent range the worker was assigned
	Leg    string // pipeline leg that failed
	Err    error
	// ExitStatus is the worker's exit status when it could be
	// collected, -1 when unknown (e.g. killed after a protocol error).
	ExitStatus int
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("distrib: worker %d (respondents [%d,%d)) failed during %s leg (exit status %d): %v",
		e.Index, e.Lo, e.Hi, e.Leg, e.ExitStatus, e.Err)
}

func (e *WorkerError) Unwrap() error { return e.Err }

// Stats summarizes a run's topology for the run ledger.
type Stats struct {
	Procs          int
	WorkersPerProc int
	// WorkerWallSeconds is each worker's accumulated self-reported leg
	// wall time.
	WorkerWallSeconds []float64
}

type workerProc struct {
	index    int
	cmd      *exec.Cmd
	in       io.WriteCloser
	out      *bufio.Reader
	lo, hi   int // current main-cohort range
	wall     float64
	waitOnce sync.Once
	exit     int
}

// wait collects the worker's exit status exactly once.
func (w *workerProc) wait() int {
	w.waitOnce.Do(func() {
		err := w.cmd.Wait()
		w.exit = 0
		if err != nil {
			w.exit = -1
			var ee *exec.ExitError
			if errors.As(err, &ee) {
				w.exit = ee.ExitCode()
			}
		}
	})
	return w.exit
}

// call does one strict request/response exchange: the request frame,
// optional binary payload frames, then the response frame and its
// optional trailing binary frame.
func (w *workerProc) call(req request, extra ...[]byte) (*response, []byte, error) {
	if err := writeJSONFrame(w.in, &req); err != nil {
		return nil, nil, fmt.Errorf("send %s: %w", req.Type, err)
	}
	for _, p := range extra {
		if err := writeFrame(w.in, frameBinary, p); err != nil {
			return nil, nil, fmt.Errorf("send %s payload: %w", req.Type, err)
		}
	}
	resp, err := readResponse(w.out)
	if err != nil {
		return nil, nil, err
	}
	if resp.Err != "" {
		return nil, nil, errors.New(resp.Err)
	}
	var bin []byte
	if resp.Binary {
		if bin, err = readFrame(w.out, frameBinary); err != nil {
			return nil, nil, err
		}
	}
	w.wall += resp.WallSeconds
	return resp, bin, nil
}

// Coordinator owns a set of worker processes and runs pipeline legs
// across them. Legs must be called from one goroutine; within a leg
// the coordinator fans out to all workers concurrently.
type Coordinator struct {
	opt        Options
	ws         []*workerProc
	mainRanges []Range
	mainN      int
	seed       int64
}

// Start spawns the worker processes and completes the hello round.
func Start(opt Options) (*Coordinator, error) {
	if opt.Procs < 1 {
		opt.Procs = 1
	}
	exe := opt.Exe
	if exe == "" {
		var err error
		if exe, err = os.Executable(); err != nil {
			return nil, fmt.Errorf("distrib: resolve worker binary: %w", err)
		}
	}
	stderr := opt.Stderr
	if stderr == nil {
		stderr = os.Stderr
	}
	c := &Coordinator{opt: opt}
	for i := 0; i < opt.Procs; i++ {
		cmd := exec.Command(exe, opt.Args...)
		cmd.Env = append(os.Environ(), EnvWorker+"=1")
		if opt.Workers > 0 {
			cmd.Env = append(cmd.Env, fmt.Sprintf("GOMAXPROCS=%d", opt.Workers))
		}
		cmd.Env = append(cmd.Env, opt.Env...)
		cmd.Stderr = stderr
		in, err := cmd.StdinPipe()
		if err != nil {
			c.Close()
			return nil, err
		}
		out, err := cmd.StdoutPipe()
		if err != nil {
			c.Close()
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			c.Close()
			return nil, fmt.Errorf("distrib: spawn worker %d: %w", i, err)
		}
		c.ws = append(c.ws, &workerProc{index: i, cmd: cmd, in: in, out: bufio.NewReaderSize(out, 1<<20)})
	}
	err := c.leg(legHello, func(w *workerProc) error {
		_, _, err := w.call(request{Type: legHello, Proto: Proto, Index: w.index, Workers: opt.Workers})
		return err
	})
	if err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// leg runs fn against every worker concurrently and waits for all of
// them. The first failure (lowest worker index) is returned as a
// WorkerError carrying that worker's range and exit status; the
// failed worker is killed so a wedged process cannot outlive its
// error.
func (c *Coordinator) leg(name string, fn func(w *workerProc) error) error {
	errs := make([]error, len(c.ws))
	var wg sync.WaitGroup
	for _, w := range c.ws {
		wg.Add(1)
		go func(w *workerProc) {
			defer wg.Done()
			errs[w.index] = fn(w)
		}(w)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			continue
		}
		w := c.ws[i]
		w.cmd.Process.Kill()
		return &WorkerError{Index: i, Lo: w.lo, Hi: w.hi, Leg: name, Err: err, ExitStatus: w.wait()}
	}
	return nil
}

// GenerateMain runs the distributed main-cohort generation: profile
// draw + ability gather on the workers, calibration once on the
// coordinator, model broadcast, range sampling on the workers, and a
// block-aligned splice of the returned FPDS shards. The result is
// bit-identical to respondent.GenerateMainColumnar(seed, n, ...).
func (c *Coordinator) GenerateMain(seed int64, n int) (*colstore.Dataset, error) {
	c.mainRanges = PartitionBlocks(n, len(c.ws))
	c.mainN = n
	c.seed = seed
	coreAbil := make([]float64, n)
	optAbil := make([]float64, n)
	err := c.leg(legProfiles, func(w *workerProc) error {
		r := c.mainRanges[w.index]
		w.lo, w.hi = r.Lo, r.Hi
		_, bin, err := w.call(request{Type: legProfiles, Seed: seed, Lo: r.Lo, Hi: r.Hi})
		if err != nil {
			return err
		}
		return unpackAbilitiesInto(bin, coreAbil[r.Lo:r.Hi], optAbil[r.Lo:r.Hi])
	})
	if err != nil {
		return nil, err
	}

	models := respondent.CalibrateFromAbilities(c.opt.Workers, coreAbil, optAbil)

	full := quiz.Columns().NewDataset("1.0", n)
	err = c.leg(legSample, func(w *workerProc) error {
		r := c.mainRanges[w.index]
		_, bin, err := w.call(request{Type: legSample, Seed: seed, Models: models})
		if err != nil {
			return err
		}
		d, err := colstore.DecodeBinary(quiz.Columns(), bytes.NewReader(bin), colstore.IOOptions{})
		if err != nil {
			return err
		}
		if d.Len() != r.Len() {
			return fmt.Errorf("worker returned %d respondents, assigned %d", d.Len(), r.Len())
		}
		return full.Splice(d, r.Lo)
	})
	if err != nil {
		return nil, err
	}
	return full, nil
}

// GenerateStudents runs the distributed student-cohort generation;
// bit-identical to respondent.GenerateStudentsColumnar(seed, n, ...).
func (c *Coordinator) GenerateStudents(seed int64, n int) (*colstore.Dataset, error) {
	ranges := PartitionBlocks(n, len(c.ws))
	full := quiz.Columns().NewDataset("1.0-student", n)
	return full, c.leg(legStudents, func(w *workerProc) error {
		r := ranges[w.index]
		_, bin, err := w.call(request{Type: legStudents, Seed: seed, Lo: r.Lo, Hi: r.Hi})
		if err != nil {
			return err
		}
		d, err := colstore.DecodeBinary(quiz.Columns(), bytes.NewReader(bin), colstore.IOOptions{})
		if err != nil {
			return err
		}
		if d.Len() != r.Len() {
			return fmt.Errorf("worker returned %d respondents, assigned %d", d.Len(), r.Len())
		}
		return full.Splice(d, r.Lo)
	})
}

// Grade scores each worker's retained main range in place and
// concatenates the per-respondent tallies in range order — identical
// to quiz.ScoreAllColumns over the merged dataset, because grading is
// a pure per-respondent function.
func (c *Coordinator) Grade() (quiz.Grades, error) {
	n := c.mainN
	g := quiz.Grades{
		Core:      make([]quiz.Tally, n),
		OptScored: make([]quiz.Tally, n),
		OptAll:    make([]quiz.Tally, n),
	}
	return g, c.leg(legGrade, func(w *workerProc) error {
		r := c.mainRanges[w.index]
		_, bin, err := w.call(request{Type: legGrade})
		if err != nil {
			return err
		}
		return unpackGradesInto(bin, g, r.Lo, r.Hi)
	})
}

// Figures renders the requested figure tables on the workers
// (round-robin assignment) from the merged cohorts, which are
// broadcast once as FPDS frames. Each table is a pure function of the
// merged columns, so worker-rendered tables are byte-identical to
// in-process rendering. The returned slice is index-aligned with figs.
func (c *Coordinator) Figures(main, students *colstore.Dataset, figs []int) ([]report.Table, error) {
	if len(figs) == 0 {
		return nil, nil
	}
	opt := colstore.IOOptions{Workers: c.opt.Workers}
	var mb, sb bytes.Buffer
	if err := main.EncodeBinary(&mb, opt); err != nil {
		return nil, err
	}
	if err := students.EncodeBinary(&sb, opt); err != nil {
		return nil, err
	}
	assign := make([][]int, len(c.ws))
	slot := make(map[int]int, len(figs))
	for k, f := range figs {
		assign[k%len(c.ws)] = append(assign[k%len(c.ws)], f)
		slot[f] = k
	}
	out := make([]report.Table, len(figs))
	return out, c.leg(legFigures, func(w *workerProc) error {
		if len(assign[w.index]) == 0 {
			return nil
		}
		resp, _, err := w.call(request{Type: legFigures, Seed: c.seed, Figures: assign[w.index]},
			mb.Bytes(), sb.Bytes())
		if err != nil {
			return err
		}
		if len(resp.Tables) != len(assign[w.index]) {
			return fmt.Errorf("worker returned %d tables, want %d", len(resp.Tables), len(assign[w.index]))
		}
		for j, f := range assign[w.index] {
			out[slot[f]] = resp.Tables[j]
		}
		return nil
	})
}

// Stats reports the run topology and per-worker wall times.
func (c *Coordinator) Stats() Stats {
	s := Stats{Procs: len(c.ws), WorkersPerProc: c.opt.Workers}
	for _, w := range c.ws {
		s.WorkerWallSeconds = append(s.WorkerWallSeconds, w.wall)
	}
	return s
}

// Close shuts the workers down by closing their stdin pipes (EOF is
// the shutdown signal) and collects their exit statuses, killing any
// worker that does not exit within a grace period. The first nonzero
// exit becomes the returned error.
func (c *Coordinator) Close() error {
	var firstErr error
	for _, w := range c.ws {
		if w.in != nil {
			w.in.Close()
		}
	}
	for _, w := range c.ws {
		if w.cmd.Process == nil {
			continue
		}
		done := make(chan int, 1)
		go func(w *workerProc) { done <- w.wait() }(w)
		var status int
		select {
		case status = <-done:
		case <-time.After(10 * time.Second):
			w.cmd.Process.Kill()
			status = <-done
		}
		if status != 0 && firstErr == nil {
			firstErr = fmt.Errorf("distrib: worker %d exited with status %d", w.index, status)
		}
	}
	return firstErr
}
