package distrib

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"fpstudy/internal/colstore"
	"fpstudy/internal/core"
)

// TestMain lets the test binary serve as its own worker: the
// coordinator re-execs os.Executable() with EnvWorker set, which
// WorkerBootstrap intercepts before any test runs.
func TestMain(m *testing.M) {
	WorkerBootstrap()
	os.Exit(m.Run())
}

func TestPartitionBlocks(t *testing.T) {
	cases := []struct {
		n, procs int
		want     []Range
	}{
		{0, 2, []Range{{0, 0}, {0, 0}}},
		{100, 1, []Range{{0, 100}}},
		{100, 2, []Range{{0, 100}, {100, 100}}},
		{20000, 2, []Range{{0, 16384}, {16384, 20000}}},
		{20000, 4, []Range{{0, 8192}, {8192, 16384}, {16384, 20000}, {20000, 20000}}},
		{3 * BlockRows, 3, []Range{{0, 8192}, {8192, 16384}, {16384, 24576}}},
	}
	for _, c := range cases {
		got := PartitionBlocks(c.n, c.procs)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("PartitionBlocks(%d, %d) = %v, want %v", c.n, c.procs, got, c.want)
		}
		// Ranges must be contiguous, block-aligned, and cover [0, n).
		lo := 0
		for _, r := range got {
			if r.Lo != lo || r.Hi < r.Lo {
				t.Fatalf("PartitionBlocks(%d, %d): non-contiguous range %v", c.n, c.procs, r)
			}
			if r.Lo%BlockRows != 0 && r.Lo != c.n {
				t.Fatalf("PartitionBlocks(%d, %d): range %v not block-aligned", c.n, c.procs, r)
			}
			lo = r.Hi
		}
		if lo != c.n {
			t.Fatalf("PartitionBlocks(%d, %d): covers [0,%d), want [0,%d)", c.n, c.procs, lo, c.n)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("the quick brown fox")
	if err := writeFrame(&buf, frameBinary, payload); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf, frameBinary)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip = %q, want %q", got, payload)
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameJSON, []byte(`{"type":"hello"}`)); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[frameHeaderLen+3] ^= 0x40 // flip a payload bit
	if _, err := readFrame(bytes.NewReader(b), frameJSON); err == nil {
		t.Fatal("corrupted frame passed CRC verification")
	}
	// A truncated frame must error, not block.
	if _, err := readFrame(bytes.NewReader(b[:len(b)-2]), frameJSON); err == nil {
		t.Fatal("truncated frame did not error")
	}
	if _, err := readFrame(bytes.NewReader([]byte("XX")), frameJSON); err == nil {
		t.Fatal("bad magic did not error")
	}
}

func sha(b []byte) [32]byte { return sha256.Sum256(b) }

func encodeHash(t *testing.T, d *colstore.Dataset) [32]byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.EncodeBinary(&buf, colstore.IOOptions{}); err != nil {
		t.Fatal(err)
	}
	return sha(buf.Bytes())
}

// TestGoldenDistributedInvariance is the distributed analogue of the
// core worker-count golden tests: the merged datasets, grades, and
// all 22 figures must be byte-identical to the single-process run at
// every (processes x workers-per-process) topology. n=20000 spans 3
// FPDS blocks, so multi-process topologies genuinely split the cohort.
func TestGoldenDistributedInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed golden run in -short mode")
	}
	const (
		seed     = int64(42)
		nMain    = 20000
		nStudent = 2000
	)
	ref := core.Study{Seed: seed, NMain: nMain, NStudent: nStudent, Workers: 1, ColumnarOnly: true}
	want := ref.Run()
	wantMain := encodeHash(t, want.Main.Cols)
	wantStudents := encodeHash(t, want.StudentCols)
	var wantFigs [22]string
	for f := 1; f <= 22; f++ {
		wantFigs[f-1] = want.Figure(f).String()
	}
	allFigs := make([]int, 22)
	for i := range allFigs {
		allFigs[i] = i + 1
	}

	for _, topo := range []struct{ procs, workers int }{{1, 1}, {2, 4}, {4, 2}} {
		t.Run(fmt.Sprintf("procs=%d_workers=%d", topo.procs, topo.workers), func(t *testing.T) {
			c, err := Start(Options{Procs: topo.procs, Workers: topo.workers})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			main, err := c.GenerateMain(seed, nMain)
			if err != nil {
				t.Fatal(err)
			}
			students, err := c.GenerateStudents(seed+1, nStudent)
			if err != nil {
				t.Fatal(err)
			}
			if got := encodeHash(t, main); got != wantMain {
				t.Errorf("main dataset bytes differ from single-process run")
			}
			if got := encodeHash(t, students); got != wantStudents {
				t.Errorf("student dataset bytes differ from single-process run")
			}
			g, err := c.Grade()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(g.Core, want.CoreTallies) ||
				!reflect.DeepEqual(g.OptScored, want.OptTallies) ||
				!reflect.DeepEqual(g.OptAll, want.OptAllTallies) {
				t.Errorf("distributed grades differ from single-process run")
			}
			tables, err := c.Figures(main, students, allFigs)
			if err != nil {
				t.Fatal(err)
			}
			for i, f := range allFigs {
				if got := tables[i].String(); got != wantFigs[f-1] {
					t.Errorf("figure %d differs from single-process run:\ngot:\n%s\nwant:\n%s", f, got, wantFigs[f-1])
				}
			}
			// Non-vacuity: multi-process topologies must have actually
			// fanned out — more than one worker held a nonempty range
			// and reported leg wall time.
			st := c.Stats()
			if st.Procs != topo.procs {
				t.Fatalf("Stats().Procs = %d, want %d", st.Procs, topo.procs)
			}
			if topo.procs > 1 {
				busy := 0
				for i, r := range PartitionBlocks(nMain, topo.procs) {
					if r.Len() > 0 && st.WorkerWallSeconds[i] > 0 {
						busy++
					}
				}
				if busy < 2 {
					t.Fatalf("only %d worker processes did work; distribution is vacuous", busy)
				}
			}
			if err := c.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		})
	}
}

// TestWorkerFaultMidLeg kills worker 1 via the EnvFault hook the
// moment it receives the sample request. The coordinator must come
// back with a structured WorkerError naming the worker, its block
// range, the leg, and the injected exit status — and must never hang.
func TestWorkerFaultMidLeg(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	const n = 20000
	c, err := Start(Options{Procs: 2, Env: []string{EnvFault + "=" + legSample + ":1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.GenerateMain(7, n)
		done <- err
	}()
	select {
	case err = <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("coordinator did not return after worker death")
	}
	if err == nil {
		t.Fatal("GenerateMain succeeded despite a dead worker")
	}
	var we *WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("error is %T (%v), want *WorkerError", err, err)
	}
	ranges := PartitionBlocks(n, 2)
	if we.Index != 1 || we.Leg != legSample {
		t.Errorf("WorkerError = worker %d leg %s, want worker 1 leg %s", we.Index, we.Leg, legSample)
	}
	if we.Lo != ranges[1].Lo || we.Hi != ranges[1].Hi {
		t.Errorf("WorkerError range [%d,%d), want [%d,%d)", we.Lo, we.Hi, ranges[1].Lo, ranges[1].Hi)
	}
	if we.ExitStatus != FaultExitCode {
		t.Errorf("WorkerError.ExitStatus = %d, want %d", we.ExitStatus, FaultExitCode)
	}
}

// TestWorkerErrorAtHello pins the fail-fast path: a protocol version
// skew must be reported before any generation work happens.
func TestProtoSkewFailsFast(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSONFrame(&buf, &request{Type: legHello, Proto: Proto + 1}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if status := WorkerMain(&buf, &out); status != 0 {
		t.Fatalf("WorkerMain = %d after hello skew, want 0 (error travels in the response)", status)
	}
	resp, err := readResponse(&out)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" {
		t.Fatal("worker accepted a mismatched protocol version")
	}
}
