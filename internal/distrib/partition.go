// Package distrib runs the generation/grading/figure pipeline across
// multiple local worker processes with byte-identical output to the
// single-process run at any topology.
//
// A Coordinator spawns P copies of the current binary in a hidden
// worker mode (see WorkerBootstrap) and speaks a length-prefixed,
// CRC-framed request/response protocol over each worker's
// stdin/stdout pipes. Work is partitioned along the FPDS format's
// fixed 8192-respondent block boundaries, so every worker's local
// dataset starts on a shard-block edge and the merged cohort has
// exactly the blocks (and per-block CRCs) of a single-process run.
//
// # Determinism
//
// Three properties make the merged output bit-identical at any
// (processes x workers-per-process) topology:
//
//  1. Generation is range-splittable: respondent i's draws depend only
//     on (seed, stream, global index i) — workers seed every RNG
//     stream at the global index (respondent.SampleRange's base
//     offset), so a worker's rows equal the same rows of one process.
//  2. The one global reduction, question calibration, is not
//     distributed: workers ship raw per-respondent abilities, the
//     coordinator assembles the full arrays in range order and runs
//     the same fixed-shard deterministic sums as a single process,
//     then broadcasts the models (float64s survive the JSON round
//     trip exactly).
//  3. Merging is copying, not arithmetic: datasets are spliced by
//     element-wise copy at block-aligned offsets, grades are
//     per-respondent and concatenated in range order, and figures are
//     rendered by workers from the full merged dataset (a pure
//     function of its columns). No float is ever re-summed across a
//     process boundary outside the fixed-shard order.
package distrib

import "fpstudy/internal/colstore"

// BlockRows is the partitioning unit: the FPDS shard format's fixed
// respondents-per-block count. Partitioning on block boundaries means
// every worker's local dataset encodes to whole shard blocks, and the
// merged dataset's block layout (and per-block CRCs) is identical to
// a single-process encode.
const BlockRows = colstore.BlockRespondents

// Range is a half-open global respondent range [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// Len returns the number of respondents in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// PartitionBlocks splits an n-respondent cohort across procs workers
// in contiguous block-aligned ranges: ceil(n/BlockRows) blocks dealt
// as evenly as possible, earlier workers first. Trailing workers may
// receive empty ranges when there are fewer blocks than workers.
func PartitionBlocks(n, procs int) []Range {
	if procs < 1 {
		procs = 1
	}
	nb := (n + BlockRows - 1) / BlockRows
	base, rem := nb/procs, nb%procs
	out := make([]Range, procs)
	lo := 0
	for i := range out {
		b := base
		if i < rem {
			b++
		}
		hi := lo + b*BlockRows
		if hi > n {
			hi = n
		}
		out[i] = Range{Lo: lo, Hi: hi}
		lo = hi
	}
	return out
}
