package distrib

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"fpstudy/internal/quiz"
	"fpstudy/internal/report"
	"fpstudy/internal/respondent"
)

// Proto is the coordinator/worker protocol version, exchanged in the
// hello leg so a binary skew fails fast instead of mis-parsing.
const Proto = 1

// Frame layout: 2-byte magic "FD", kind byte, reserved zero byte,
// big-endian uint32 payload length, payload, big-endian uint32
// CRC32 (IEEE) of the payload. Control messages are JSON frames;
// bulk data (FPDS datasets, ability and tally arrays) rides in binary
// frames so it is never base64'd through JSON.
const (
	frameJSON   = 'J'
	frameBinary = 'B'

	frameHeaderLen  = 8
	maxFramePayload = 1 << 30
)

func writeFrame(w io.Writer, kind byte, payload []byte) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("distrib: frame payload %d bytes exceeds limit", len(payload))
	}
	var hdr [frameHeaderLen]byte
	hdr[0], hdr[1] = 'F', 'D'
	hdr[2] = kind
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var tr [4]byte
	binary.BigEndian.PutUint32(tr[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(tr[:])
	return err
}

// readFrame reads one frame and verifies magic, kind, and CRC. A
// short read anywhere (worker death mid-frame) surfaces as
// io.ErrUnexpectedEOF — truncation is an error, never a hang.
func readFrame(r io.Reader, wantKind byte) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != 'F' || hdr[1] != 'D' {
		return nil, fmt.Errorf("distrib: bad frame magic %q", hdr[:2])
	}
	if hdr[2] != wantKind {
		return nil, fmt.Errorf("distrib: frame kind %q, want %q", hdr[2], wantKind)
	}
	n := binary.BigEndian.Uint32(hdr[4:8])
	if n > maxFramePayload {
		return nil, fmt.Errorf("distrib: frame payload %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("distrib: truncated frame: %w", err)
	}
	var tr [4]byte
	if _, err := io.ReadFull(r, tr[:]); err != nil {
		return nil, fmt.Errorf("distrib: truncated frame CRC: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(tr[:]); got != want {
		return nil, fmt.Errorf("distrib: frame CRC mismatch: got %08x, want %08x", got, want)
	}
	return payload, nil
}

// Leg names: each request type is one pipeline leg. The protocol is
// strict request -> response per worker pipe; bulk payloads follow
// the JSON frame as binary frames (request: legFigures ships two FPDS
// frames; response: Binary flags one trailing frame).
const (
	legHello    = "hello"
	legProfiles = "profiles"
	legSample   = "sample"
	legStudents = "students"
	legGrade    = "grade"
	legFigures  = "figures"
)

type request struct {
	Type    string             `json:"type"`
	Proto   int                `json:"proto,omitempty"`
	Index   int                `json:"index,omitempty"`
	Workers int                `json:"workers,omitempty"`
	Seed    int64              `json:"seed,omitempty"`
	Lo      int                `json:"lo,omitempty"`
	Hi      int                `json:"hi,omitempty"`
	Models  []respondent.Model `json:"models,omitempty"`
	Figures []int              `json:"figures,omitempty"`
}

type response struct {
	Type        string         `json:"type"`
	Err         string         `json:"err,omitempty"`
	WallSeconds float64        `json:"wall_seconds,omitempty"`
	Binary      bool           `json:"binary,omitempty"`
	Tables      []report.Table `json:"tables,omitempty"`
}

func writeJSONFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return writeFrame(w, frameJSON, payload)
}

func readRequest(r io.Reader) (*request, error) {
	payload, err := readFrame(r, frameJSON)
	if err != nil {
		return nil, err
	}
	req := new(request)
	if err := json.Unmarshal(payload, req); err != nil {
		return nil, fmt.Errorf("distrib: bad request frame: %w", err)
	}
	return req, nil
}

func readResponse(r io.Reader) (*response, error) {
	payload, err := readFrame(r, frameJSON)
	if err != nil {
		return nil, err
	}
	resp := new(response)
	if err := json.Unmarshal(payload, resp); err != nil {
		return nil, fmt.Errorf("distrib: bad response frame: %w", err)
	}
	return resp, nil
}

// packAbilities serializes a range's (core, opt) ability arrays as
// little-endian float64 bit patterns — exact by construction.
func packAbilities(core, opt []float64) []byte {
	out := make([]byte, 16*len(core))
	for i, v := range core {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	off := 8 * len(core)
	for i, v := range opt {
		binary.LittleEndian.PutUint64(out[off+8*i:], math.Float64bits(v))
	}
	return out
}

// unpackAbilitiesInto decodes a packAbilities payload into the global
// arrays' [lo:hi) windows.
func unpackAbilitiesInto(payload []byte, core, opt []float64) error {
	if len(payload) != 16*len(core) || len(core) != len(opt) {
		return fmt.Errorf("distrib: ability payload is %d bytes, want %d", len(payload), 16*len(core))
	}
	for i := range core {
		core[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	off := 8 * len(core)
	for i := range opt {
		opt[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off+8*i:]))
	}
	return nil
}

// packGrades serializes per-respondent tallies as three n x 4 byte
// sections (core, opt-scored, opt-all); every count is at most the
// question count (~15), far below 256.
func packGrades(g quiz.Grades) []byte {
	n := len(g.Core)
	out := make([]byte, 0, 12*n)
	for _, sec := range [][]quiz.Tally{g.Core, g.OptScored, g.OptAll} {
		for _, t := range sec {
			out = append(out, byte(t.Correct), byte(t.Incorrect), byte(t.DontKnow), byte(t.Unanswered))
		}
	}
	return out
}

// unpackGradesInto decodes a packGrades payload into rows [lo, hi) of
// the full-cohort grade slices.
func unpackGradesInto(payload []byte, g quiz.Grades, lo, hi int) error {
	n := hi - lo
	if len(payload) != 12*n {
		return fmt.Errorf("distrib: grade payload is %d bytes, want %d", len(payload), 12*n)
	}
	for s, sec := range [][]quiz.Tally{g.Core[lo:hi], g.OptScored[lo:hi], g.OptAll[lo:hi]} {
		base := 4 * n * s
		for i := range sec {
			p := payload[base+4*i : base+4*i+4]
			sec[i] = quiz.Tally{
				Correct:    int(p[0]),
				Incorrect:  int(p[1]),
				DontKnow:   int(p[2]),
				Unanswered: int(p[3]),
			}
		}
	}
	return nil
}
