package optsim

import (
	"strings"
	"testing"

	"fpstudy/internal/expr"
	"fpstudy/internal/ieee754"
)

func TestVectorizeSumShape(t *testing.T) {
	n := expr.SumChain(expr.V("a"), expr.V("b"), expr.V("c"), expr.V("d"),
		expr.V("e"), expr.V("f"), expr.V("g"), expr.V("h"))
	out, changed := VectorizeSum(n, 4)
	if !changed {
		t.Fatal("no vectorization")
	}
	// 4 lanes over 8 terms: ((a+e) + (b+f)) + ... structure; same
	// variable set, same op count.
	if len(expr.Vars(out)) != 8 {
		t.Fatalf("vars: %v", expr.Vars(out))
	}
	if expr.CountOps(out) != expr.CountOps(n) {
		t.Fatalf("op count changed: %d vs %d", expr.CountOps(out), expr.CountOps(n))
	}
	if expr.Equal(out, n) {
		t.Fatal("vectorization produced the identical tree")
	}
	// Too few terms: unchanged.
	small := expr.SumChain(expr.V("a"), expr.V("b"), expr.V("c"))
	if _, changed := VectorizeSum(small, 4); changed {
		t.Fatal("small chain vectorized")
	}
	// Non-sum: unchanged.
	if _, changed := VectorizeSum(expr.MustParse("a*b"), 2); changed {
		t.Fatal("product vectorized")
	}
}

func TestVectorizeSumPreservesExactCases(t *testing.T) {
	// With small integers the sum is exact, so lanes cannot change it.
	n := expr.SumChain(expr.C(1), expr.C(2), expr.C(3), expr.C(4),
		expr.C(5), expr.C(6), expr.C(7), expr.C(8))
	out, _ := VectorizeSum(n, 4)
	var e1, e2 ieee754.Env
	a := expr.Eval(ieee754.Binary64, &e1, n, nil)
	b := expr.Eval(ieee754.Binary64, &e2, out, nil)
	if a != b || ieee754.Binary64.ToFloat64(a) != 36 {
		t.Fatalf("exact sums differ: %v vs %v",
			ieee754.Binary64.ToFloat64(a), ieee754.Binary64.ToFloat64(b))
	}
}

func TestSumChainDivergence(t *testing.T) {
	frac, example := SumChainDivergence(ieee754.Binary64, 16, 4, 2000, 3)
	if frac == 0 {
		t.Fatal("vectorized summation never diverged — implausible with mixed magnitudes")
	}
	if frac > 0.99 {
		t.Fatalf("divergence fraction %v suspicious", frac)
	}
	if example == nil {
		t.Fatal("no witness captured")
	}
	if example.Strict == example.Optimized {
		t.Fatal("witness does not diverge")
	}
	// The fraction is deterministic for a fixed seed.
	frac2, _ := SumChainDivergence(ieee754.Binary64, 16, 4, 2000, 3)
	if frac != frac2 {
		t.Fatal("divergence measurement not deterministic")
	}
}

func TestComplianceMatrix(t *testing.T) {
	progs := []expr.Node{
		expr.MustParse("a*b + c"),
		expr.MustParse("(a + b) + c"),
	}
	tab := ComplianceMatrix(ieee754.Binary64, progs, 500, 9)
	s := tab.String()
	if !strings.Contains(s, "-O2") || !strings.Contains(s, "fast-math") {
		t.Fatalf("matrix headers:\n%s", s)
	}
	if !strings.Contains(s, "DIVERGES") || !strings.Contains(s, "compliant") {
		t.Fatalf("matrix verdicts:\n%s", s)
	}
	if !strings.Contains(s, "highest fully compliant level: -O2") {
		t.Fatalf("matrix note:\n%s", s)
	}
	if len(tab.Rows) != 2 || len(tab.Rows[0]) != 6 {
		t.Fatalf("matrix shape: %dx%d", len(tab.Rows), len(tab.Rows[0]))
	}
}
